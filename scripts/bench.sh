#!/usr/bin/env bash
# bench.sh — measure BenchmarkFig1Cell (the single-cell hot-path benchmark)
# and regenerate BENCH_fig1.json at the repository root.
#
# Usage: scripts/bench.sh [reps]
#
# The benchmark is run `reps` times (default 5) with -benchmem under
# GOMAXPROCS=1 (the repo's convention for committed numbers), and the
# minimum ns/op run is recorded: the minimum is the least-noise estimator
# on shared machines — every source of interference only ever slows a run
# down. B/op and allocs/op are effectively deterministic and are taken
# from the same run.
#
# The "pre" block pins the seed commit's numbers (measured the same way on
# the same container class) so the JSON file documents the delta, and CI's
# bench-smoke job gates allocs/op against the committed "post" value.
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-5}"

# Seed-commit baseline (commit 8892cab, measured with this script's method
# in the same session window as the committed post numbers).
pre_ns=262579806
pre_bytes=38477376
pre_allocs=24507

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
for _ in $(seq 1 "$reps"); do
  GOMAXPROCS=1 go test -run '^$' -bench 'BenchmarkFig1Cell$' -benchtime 4x -benchmem . |
    awk '$1 == "BenchmarkFig1Cell" { print }' >>"$tmp"
done

read -r ns bytes allocs <<EOF
$(awk '
  {
    for (i = 1; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i-1)
      if ($i == "B/op") bytes = $(i-1)
      if ($i == "allocs/op") allocs = $(i-1)
    }
    if (best == "" || ns + 0 < best + 0) { best = ns; bbytes = bytes; ballocs = allocs }
  }
  END { print best, bbytes, ballocs }
' "$tmp")
EOF

imp=$(awk -v a="$pre_ns" -v b="$ns" 'BEGIN { printf "%.1f", 100 * (1 - b / a) }')

cat >BENCH_fig1.json <<EOF
{
  "benchmark": "BenchmarkFig1Cell",
  "cell": "xeon/default/MediaWiki(rw)/8 cores, scale 64, warmup 1, measure 2",
  "method": "min of $reps interleavable runs, go test -benchtime 4x -benchmem, GOMAXPROCS=1",
  "pre": {
    "commit": "seed (8892cab)",
    "ns_per_op": $pre_ns,
    "bytes_per_op": $pre_bytes,
    "allocs_per_op": $pre_allocs
  },
  "post": {
    "ns_per_op": $ns,
    "bytes_per_op": $bytes,
    "allocs_per_op": $allocs
  },
  "improvement_pct": $imp
}
EOF

echo "BENCH_fig1.json: ${ns} ns/op, ${bytes} B/op, ${allocs} allocs/op (${imp}% vs seed)"
