#!/usr/bin/env bash
# bench.sh — measure the committed hot-path benchmarks and regenerate
# BENCH_fig1.json at the repository root.
#
# Usage: scripts/bench.sh [reps]
#
# Four benchmarks are tracked:
#   fig1_full    BenchmarkFig1Cell        single Figure-1 cell, full fidelity
#   fig1_sampled BenchmarkFig1CellSampled long-measure cell, sampled fidelity
#   l2_heavy     BenchmarkCellL2Heavy     8-core Niagara cell (L2-bound)
#   dram_cell    BenchmarkDRAMCell        fig1_full over the DRAM model (frfcfs)
#
# Each is run `reps` times (default 5) with -benchmem under GOMAXPROCS=1
# (the repo's convention for committed numbers) and the minimum ns/op run is
# recorded: the minimum is the least-noise estimator on shared machines —
# every source of interference only ever slows a run down. B/op and
# allocs/op are effectively deterministic and are taken from the same run.
#
# The "pre" block pins the previous commit's numbers, measured with this
# method in the SAME session window as the committed post numbers by
# interleaving runs of prebuilt pre/post test binaries (shared hosts drift
# by tens of percent across hours, so only paired same-window runs are
# comparable). CI's bench-smoke job gates allocs/op and B/op against the
# committed fig1_full post values.
set -euo pipefail
cd "$(dirname "$0")/.."

reps="${1:-5}"

# Paired baseline: commit 0d19ea7, interleaved with the post measurements.
pre_commit="0d19ea7"
pre_fig1_full="202233552 16941856 24245"
pre_fig1_sampled="1277126496 32386516 132573"
pre_l2_heavy="1008271706 66910628 97303"

# measure <bench-regex> -> "ns bytes allocs" (min-ns rep)
measure() {
  local tmp
  tmp="$(mktemp)"
  for _ in $(seq 1 "$reps"); do
    GOMAXPROCS=1 go test -run '^$' -bench "^${1}\$" -benchtime 4x -benchmem . |
      awk -v b="$1" '$1 == b { print }' >>"$tmp"
  done
  awk '
    {
      for (i = 1; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i-1)
        if ($i == "B/op") bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
      }
      if (best == "" || ns + 0 < best + 0) { best = ns; bbytes = bytes; ballocs = allocs }
    }
    END { print best, bbytes, ballocs }
  ' "$tmp"
  rm -f "$tmp"
}

# block_new <key> <bench> <note> <post "ns bytes allocs"> [,]
# For benchmarks introduced in the current change: no paired pre exists, so
# the entry records only the post numbers and a note naming its reference.
block_new() {
  local key="$1" bench="$2" note="$3" comma="${5:-}"
  read -r ns bytes allocs <<<"$4"
  cat <<EOF
    "$key": {
      "benchmark": "$bench",
      "note": "$note",
      "post": {
        "ns_per_op": $ns,
        "bytes_per_op": $bytes,
        "allocs_per_op": $allocs
      }
    }$comma
EOF
}

# block <key> <bench> <pre "ns bytes allocs"> <post "ns bytes allocs"> [,]
block() {
  local key="$1" bench="$2" comma="${5:-}"
  read -r pns pbytes pallocs <<<"$3"
  read -r ns bytes allocs <<<"$4"
  local imp
  imp=$(awk -v a="$pns" -v b="$ns" 'BEGIN { printf "%.1f", 100 * (1 - b / a) }')
  cat <<EOF
    "$key": {
      "benchmark": "$bench",
      "pre": {
        "commit": "$pre_commit",
        "ns_per_op": $pns,
        "bytes_per_op": $pbytes,
        "allocs_per_op": $pallocs
      },
      "post": {
        "ns_per_op": $ns,
        "bytes_per_op": $bytes,
        "allocs_per_op": $allocs
      },
      "improvement_pct": $imp
    }$comma
EOF
}

full=$(measure BenchmarkFig1Cell)
sampled=$(measure BenchmarkFig1CellSampled)
l2=$(measure BenchmarkCellL2Heavy)
dram=$(measure BenchmarkDRAMCell)

{
  cat <<EOF
{
  "method": "min of $reps runs each, go test -benchtime 4x -benchmem, GOMAXPROCS=1; pre = commit $pre_commit measured interleaved in the same session window",
  "cells": {
    "fig1_full": "xeon/default/MediaWiki(rw)/8 cores, scale 64, warmup 1, measure 2",
    "fig1_sampled": "xeon/default/MediaWiki(rw)/8 cores, scale 32, warmup 1, measure 64, fidelity sampled",
    "l2_heavy": "niagara/default/MediaWiki(rw)/8 cores, scale 64, warmup 1, measure 2",
    "dram_cell": "fig1_full with memsched frfcfs: the banked DRAM model under the same cell"
  },
  "benchmarks": {
EOF
  block fig1_full BenchmarkFig1Cell "$pre_fig1_full" "$full" ,
  read -r full_ns _ <<<"$full"
  read -r dram_ns _ <<<"$dram"
  dram_note="new in the memsys change: no pre; the reference is fig1_full.post measured in the same session (${full_ns} ns), the delta is the DRAM recording + window-replay overhead"
  block_new dram_cell BenchmarkDRAMCell "$dram_note" "$dram" ,
  block fig1_sampled BenchmarkFig1CellSampled "$pre_fig1_sampled" "$sampled" ,
  block l2_heavy BenchmarkCellL2Heavy "$pre_l2_heavy" "$l2"
  cat <<EOF
  }
}
EOF
} >BENCH_fig1.json

read -r ns bytes allocs <<<"$full"
echo "BENCH_fig1.json: fig1_full ${ns} ns/op, ${bytes} B/op, ${allocs} allocs/op"
