package webmm_test

import (
	"testing"

	"webmm"
)

func TestSandboxAllocatorRoundTrip(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Xeon(), 1)
	for _, info := range webmm.Allocators() {
		a, err := sb.NewAllocator(info.Name)
		if err != nil {
			t.Fatalf("NewAllocator(%q): %v", info.Name, err)
		}
		p := a.Malloc(128)
		if p == 0 {
			t.Fatalf("%s: null pointer", info.Name)
		}
		sb.Touch(p, 128, true)
		if a.SupportsFree() {
			a.Free(p)
		}
	}
	sb.Measure()
	res := sb.Result()
	if res.Totals.Instr == 0 {
		t.Fatal("no instructions measured through the sandbox")
	}
}

func TestSandboxDDmallocOptions(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Niagara(), 2)
	dd := sb.NewDDmalloc(webmm.DDOptions{SegmentSize: 64 * 1024, LargePages: true, PID: 3})
	p := dd.Malloc(100)
	q := dd.Malloc(100)
	if q-p != 104 {
		t.Fatalf("objects %d apart, want 104 (headerless class packing)", q-p)
	}
}

func TestSandboxMeasureProducesThroughput(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Xeon(), 3)
	dd := sb.NewDDmalloc(webmm.DDOptions{})
	for txn := 0; txn < 2; txn++ {
		for i := 0; i < 500; i++ {
			p := dd.Malloc(64)
			sb.Touch(p, 64, true)
			sb.Work(100)
			dd.Free(p)
		}
		dd.FreeAll()
		if txn == 0 {
			sb.Warm()
		} else {
			sb.Measure()
		}
	}
	res := sb.Result()
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.CyclesPerTxn() <= 0 {
		t.Fatal("no cycles attributed")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	wls := webmm.Workloads()
	if len(wls) != 7 {
		t.Fatalf("got %d workloads, want the paper's 7", len(wls))
	}
	for _, w := range wls {
		got, err := webmm.WorkloadByName(w.Name)
		if err != nil || got.Mallocs != w.Mallocs {
			t.Errorf("WorkloadByName(%q) mismatch: %v", w.Name, err)
		}
	}
}

func TestSizeClassesExposed(t *testing.T) {
	classes := webmm.SizeClasses()
	if len(classes) == 0 || classes[0] != 8 {
		t.Fatalf("size classes = %v", classes)
	}
	if webmm.RoundedSize(100) != 104 {
		t.Fatalf("RoundedSize(100) = %d, want 104", webmm.RoundedSize(100))
	}
}

func TestStudyCompare(t *testing.T) {
	study, err := webmm.NewStudy(
		webmm.WithScale(64),
		webmm.WithRounds(1, 1),
		webmm.WithJobs(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := study.CompareAllocators("phpBB", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 3 {
		t.Fatalf("CompareAllocators returned %d allocators, want 3", len(rel))
	}
	if rel[webmm.AllocDefault] != 1.0 {
		t.Fatalf("default relative throughput = %v, want 1.0", rel[webmm.AllocDefault])
	}
	for name, v := range rel {
		if v <= 0 {
			t.Errorf("%s relative throughput %v", name, v)
		}
	}
}

func TestStudyOptionValidation(t *testing.T) {
	if _, err := webmm.NewStudy(webmm.WithScale(48)); err == nil {
		t.Error("WithScale(48) accepted; want power-of-two error")
	}
	if _, err := webmm.NewStudy(webmm.WithPlatform("pdp11")); err == nil {
		t.Error("WithPlatform(pdp11) accepted; want unknown-platform error")
	}
	if _, err := webmm.NewStudy(webmm.WithFaults("bogus:1")); err == nil {
		t.Error("WithFaults(bogus:1) accepted; want parse error")
	}
	if _, err := webmm.NewStudy(webmm.WithRounds(0, 0)); err == nil {
		t.Error("WithRounds(0,0) accepted; want at least one measured round")
	}
	if _, err := webmm.NewStudy(webmm.WithMemorySystem("hbm")); err == nil {
		t.Error("WithMemorySystem(hbm) accepted; want unknown-memory-system error")
	}
	if _, err := webmm.NewStudy(webmm.WithMemSchedPolicy("fifo")); err == nil {
		t.Error("WithMemSchedPolicy(fifo) accepted; want unknown-policy error")
	}
}

func TestStudyMemSchedCell(t *testing.T) {
	study, err := webmm.NewStudy(
		webmm.WithScale(1024),
		webmm.WithRounds(1, 1),
		webmm.WithJobs(1),
		webmm.WithMemSchedPolicy(webmm.MemSchedFRFCFS),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := webmm.CellSpec{Alloc: webmm.AllocRegion, Workload: "phpBB", Cores: 2}

	// The study default (frfcfs) applies when the spec is silent...
	dram, err := study.Cell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dram.Machine.Mem == nil || dram.Machine.Mem.Policy != "frfcfs" {
		t.Fatalf("DRAM cell carries no frfcfs stats: %+v", dram.Machine.Mem)
	}
	if total := dram.Machine.Mem.Total(); total == 0 {
		t.Error("DRAM cell recorded no transactions")
	}

	// ...and "bus" opts one cell back out.
	spec.MemSched = "bus"
	bus, err := study.Cell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if bus.Machine.Mem != nil {
		t.Fatalf("bus cell carries memory-system stats: %+v", bus.Machine.Mem)
	}

	spec.MemSched = "fifo"
	if _, err := study.Cell(spec); err == nil {
		t.Error("Cell with unknown policy accepted; want registry error")
	}

	if got := webmm.MemSchedPolicies(); len(got) != 4 || got[0].Name != webmm.MemSchedFRFCFS {
		t.Errorf("MemSchedPolicies() = %+v", got)
	}
}

func TestStudyCellAndExperiment(t *testing.T) {
	study, err := webmm.NewStudy(
		webmm.WithScale(1024),
		webmm.WithRounds(1, 1),
		webmm.WithSeed(11),
		webmm.WithJobs(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := study.Cell(webmm.CellSpec{Alloc: webmm.AllocDDmalloc, Workload: "MediaWiki(ro)", Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Machine.Throughput <= 0 || out.Footprint <= 0 || out.Calls.Mallocs == 0 {
		t.Fatalf("cell outcome incomplete: %+v", out)
	}

	ruby, err := study.Cell(webmm.CellSpec{Alloc: webmm.AllocGlibc, Ruby: true, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ruby.Machine.Throughput <= 0 {
		t.Fatalf("ruby cell outcome incomplete: %+v", ruby)
	}

	res, err := study.RunExperiment(webmm.ExpFig1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || res.Tables[0].String() == "" {
		t.Fatalf("fig1 output incomplete: %+v", res)
	}
	if _, err := study.RunExperiment("fig99"); err == nil {
		t.Error("RunExperiment(fig99) accepted; want unknown-experiment error")
	}
	if err := study.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRegistriesExposed(t *testing.T) {
	allocs := webmm.Allocators()
	if len(allocs) != 8 {
		t.Fatalf("got %d allocators, want 8", len(allocs))
	}
	studies := map[string]bool{}
	for _, a := range allocs {
		if a.Doc == "" || a.Study == "" {
			t.Errorf("allocator %s missing doc or study", a.Name)
		}
		studies[a.Study] = true
	}
	for _, want := range []string{"php", "ruby", "extra"} {
		if !studies[want] {
			t.Errorf("no allocator belongs to the %q study", want)
		}
	}

	exps := webmm.Experiments()
	if len(exps) != 14 {
		t.Fatalf("got %d experiments, want the paper's 12 plus the heap-limit and memsched extensions", len(exps))
	}
	if exps[0].Name != webmm.ExpFig1 || exps[len(exps)-1].Name != webmm.ExpMemSched {
		t.Errorf("experiment order wrong: first %s last %s", exps[0].Name, exps[len(exps)-1].Name)
	}
	for _, e := range exps {
		if e.Ref == "" || e.Doc == "" || e.Example == "" {
			t.Errorf("experiment %s missing ref, doc, or example", e.Name)
		}
		extra := e.Name == webmm.ExpHeapLimit || e.Name == webmm.ExpMemSched
		if e.Extra != extra {
			t.Errorf("experiment %s Extra = %v; only the extensions should be extra", e.Name, e.Extra)
		}
	}
}

func TestStudyGlobalBudgetAndCellBudget(t *testing.T) {
	spec := webmm.CellSpec{Alloc: webmm.AllocDefault, Workload: "phpBB", Cores: 1}

	free, err := webmm.NewStudy(webmm.WithScale(64), webmm.WithRounds(1, 1), webmm.WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := free.Cell(spec)
	if err != nil {
		t.Fatal(err)
	}

	// A global budget the load never presses against must leave every
	// number bit-identical to the unbudgeted study.
	budgeted, err := webmm.NewStudy(
		webmm.WithScale(64),
		webmm.WithRounds(1, 1),
		webmm.WithJobs(1),
		webmm.WithGlobalBudget(4<<30),
		webmm.WithPressurePolicy(webmm.PressurePolicy{DegradeAt: 0.7, QueueAt: 0.85, ShedAt: 0.95}),
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := budgeted.Cell(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("unpressured outcome diverged under a slack global budget:\n got %+v\nwant %+v", got, want)
	}
	if err := budgeted.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}

	// A static per-cell budget above the allocator's memory floor succeeds...
	roomy := spec
	roomy.Budget = 2 << 20
	if out, err := free.Cell(roomy); err != nil {
		t.Fatalf("Cell with 2MiB budget: %v", err)
	} else if out.Machine.Throughput != want.Machine.Throughput {
		t.Errorf("2MiB budget changed throughput: %v vs %v", out.Machine.Throughput, want.Machine.Throughput)
	}

	// ...and one below it is a deterministic error, not zeros.
	tight := spec
	tight.Budget = 256 << 10
	if _, err := free.Cell(tight); err == nil {
		t.Error("Cell with a 256KiB budget succeeded; want the allocator's construction to fail")
	}
}
