package webmm_test

import (
	"testing"

	"webmm"
)

func TestSandboxAllocatorRoundTrip(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Xeon(), 1)
	for _, name := range webmm.AllocatorNames() {
		a, err := sb.NewAllocator(name)
		if err != nil {
			t.Fatalf("NewAllocator(%q): %v", name, err)
		}
		p := a.Malloc(128)
		if p == 0 {
			t.Fatalf("%s: null pointer", name)
		}
		sb.Touch(p, 128, true)
		if a.SupportsFree() {
			a.Free(p)
		}
	}
	sb.Measure()
	res := sb.Result()
	if res.Totals.Instr == 0 {
		t.Fatal("no instructions measured through the sandbox")
	}
}

func TestSandboxDDmallocOptions(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Niagara(), 2)
	dd := sb.NewDDmalloc(webmm.DDOptions{SegmentSize: 64 * 1024, LargePages: true, PID: 3})
	p := dd.Malloc(100)
	q := dd.Malloc(100)
	if q-p != 104 {
		t.Fatalf("objects %d apart, want 104 (headerless class packing)", q-p)
	}
}

func TestSandboxMeasureProducesThroughput(t *testing.T) {
	sb := webmm.NewSandbox(webmm.Xeon(), 3)
	dd := sb.NewDDmalloc(webmm.DDOptions{})
	for txn := 0; txn < 2; txn++ {
		for i := 0; i < 500; i++ {
			p := dd.Malloc(64)
			sb.Touch(p, 64, true)
			sb.Work(100)
			dd.Free(p)
		}
		dd.FreeAll()
		if txn == 0 {
			sb.Warm()
		} else {
			sb.Measure()
		}
	}
	res := sb.Result()
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
	if res.CyclesPerTxn() <= 0 {
		t.Fatal("no cycles attributed")
	}
}

func TestWorkloadRegistry(t *testing.T) {
	wls := webmm.Workloads()
	if len(wls) != 7 {
		t.Fatalf("got %d workloads, want the paper's 7", len(wls))
	}
	for _, w := range wls {
		got, err := webmm.WorkloadByName(w.Name)
		if err != nil || got.Mallocs != w.Mallocs {
			t.Errorf("WorkloadByName(%q) mismatch: %v", w.Name, err)
		}
	}
}

func TestSizeClassesExposed(t *testing.T) {
	classes := webmm.SizeClasses()
	if len(classes) == 0 || classes[0] != 8 {
		t.Fatalf("size classes = %v", classes)
	}
	if webmm.RoundedSize(100) != 104 {
		t.Fatalf("RoundedSize(100) = %d, want 104", webmm.RoundedSize(100))
	}
}

func TestStudyCompare(t *testing.T) {
	cfg := webmm.DefaultStudyConfig()
	cfg.Scale = 64
	cfg.Warmup, cfg.Measure = 1, 1
	study := webmm.NewStudy(cfg)
	rel := study.Compare("xeon", "phpBB", 1)
	if len(rel) != 3 {
		t.Fatalf("Compare returned %d allocators, want 3", len(rel))
	}
	if rel["default"] != 1.0 {
		t.Fatalf("default relative throughput = %v, want 1.0", rel["default"])
	}
	for name, v := range rel {
		if v <= 0 {
			t.Errorf("%s relative throughput %v", name, v)
		}
	}
}
