// Package apprt models the application runtimes that host the allocators:
// the PHP runtime (one transaction per request, freeAll at request end —
// §4.2) and the Ruby runtime (no freeAll, long-lived processes with
// periodic restarts — §4.4). Each runtime implements machine.Driver for one
// runtime process pinned to one hardware thread.
package apprt

import (
	"fmt"

	"webmm/internal/alloc/dlm"
	"webmm/internal/alloc/hoard"
	"webmm/internal/alloc/obstack"
	"webmm/internal/alloc/reap"
	"webmm/internal/alloc/region"
	"webmm/internal/alloc/tcm"
	"webmm/internal/alloc/zend"
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// AllocOptions configure allocator construction.
type AllocOptions struct {
	// LargePages enables DDmalloc's large-page heap (§3.3 optimization
	// 2; the paper enables it on Niagara, disables it on Xeon).
	LargePages bool
	// PID is the process id used for DDmalloc's metadata displacement
	// (§3.3 optimization 1).
	PID int
}

// AllocatorDesc describes one allocator of the study: its report name (used
// by the CLI, the figures, and the public API), which study it belongs to,
// a one-line description, and its constructor.
type AllocatorDesc struct {
	Name string
	// Study is "php" for the PHP comparison (Figures 1, 5-9), "ruby" for
	// the Rails comparison (Figures 10-12), or "extra" for allocators
	// available to cell runs but not part of a headline figure.
	Study string
	Doc   string
	New   func(env *sim.Env, opts AllocOptions) heap.Allocator
}

// allocators is the single source of truth for allocator selection,
// PHP-study allocators first (report order).
var allocators = []AllocatorDesc{
	{
		Name: "default", Study: "php",
		Doc: "PHP's Zend-style per-request allocator (free lists, freeAll at request end)",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return zend.New(env) },
	},
	{
		Name: "region", Study: "php",
		Doc: "region-based bump allocation; memory reclaimed wholesale per request",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return region.New(env) },
	},
	{
		Name: "ddmalloc", Study: "php",
		Doc: "the paper's DDmalloc: size-class free lists with the locality optimizations of §3.3",
		New: func(env *sim.Env, opts AllocOptions) heap.Allocator {
			ddOpts := core.DefaultOptions()
			ddOpts.LargePages = opts.LargePages
			ddOpts.PID = opts.PID
			return core.New(env, ddOpts)
		},
	},
	{
		Name: "obstack", Study: "extra",
		Doc: "GNU obstack-style stack allocator (LIFO frees only)",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return obstack.New(env, 0) },
	},
	{
		Name: "reap", Study: "extra",
		Doc: "Reap-style hybrid of region allocation with individual frees",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return reap.New(env) },
	},
	{
		Name: "glibc", Study: "ruby",
		Doc: "dlmalloc-style general-purpose allocator (glibc's malloc lineage)",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return dlm.New(env) },
	},
	{
		Name: "hoard", Study: "ruby",
		Doc: "Hoard-style allocator with per-processor heaps",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return hoard.New(env) },
	},
	{
		Name: "tcmalloc", Study: "ruby",
		Doc: "thread-caching malloc with central spans and per-thread free lists",
		New: func(env *sim.Env, _ AllocOptions) heap.Allocator { return tcm.New(env) },
	},
}

// Allocators returns the allocator descriptors in report order. The slice is
// a copy; the registry itself is immutable.
func Allocators() []AllocatorDesc {
	out := make([]AllocatorDesc, len(allocators))
	copy(out, allocators)
	return out
}

// AllocatorByName looks an allocator up by report name.
func AllocatorByName(name string) (AllocatorDesc, error) {
	for _, d := range allocators {
		if d.Name == name {
			return d, nil
		}
	}
	return AllocatorDesc{}, fmt.Errorf("apprt: unknown allocator %q (valid: %v)", name, AllocatorNames())
}

// AllocatorNames lists the valid names for NewAllocator, PHP-study
// allocators first.
func AllocatorNames() []string {
	out := make([]string, len(allocators))
	for i, d := range allocators {
		out[i] = d.Name
	}
	return out
}

// AllocCodeSize returns the simulated code footprint of the named
// allocator, used to build the machine's code layout before any runtime
// exists.
func AllocCodeSize(name string) (uint64, error) {
	as := mem.NewAddressSpace(0, 1<<36, mem.LargePageShiftXeon)
	env := sim.NewEnv(as, sim.NewCodeLayout(4096, 4096), 0)
	a, err := NewAllocator(name, env, AllocOptions{})
	if err != nil {
		return 0, err
	}
	return a.CodeSize(), nil
}

// NewAllocator constructs an allocator by report name.
func NewAllocator(name string, env *sim.Env, opts AllocOptions) (heap.Allocator, error) {
	d, err := AllocatorByName(name)
	if err != nil {
		return nil, err
	}
	return d.New(env, opts), nil
}
