// Package apprt models the application runtimes that host the allocators:
// the PHP runtime (one transaction per request, freeAll at request end —
// §4.2) and the Ruby runtime (no freeAll, long-lived processes with
// periodic restarts — §4.4). Each runtime implements machine.Driver for one
// runtime process pinned to one hardware thread.
package apprt

import (
	"fmt"

	"webmm/internal/alloc/dlm"
	"webmm/internal/alloc/hoard"
	"webmm/internal/alloc/obstack"
	"webmm/internal/alloc/reap"
	"webmm/internal/alloc/region"
	"webmm/internal/alloc/tcm"
	"webmm/internal/alloc/zend"
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// AllocOptions configure allocator construction.
type AllocOptions struct {
	// LargePages enables DDmalloc's large-page heap (§3.3 optimization
	// 2; the paper enables it on Niagara, disables it on Xeon).
	LargePages bool
	// PID is the process id used for DDmalloc's metadata displacement
	// (§3.3 optimization 1).
	PID int
}

// AllocatorNames lists the valid names for NewAllocator, PHP-study
// allocators first.
func AllocatorNames() []string {
	return []string{"default", "region", "ddmalloc", "obstack", "reap", "glibc", "hoard", "tcmalloc"}
}

// AllocCodeSize returns the simulated code footprint of the named
// allocator, used to build the machine's code layout before any runtime
// exists.
func AllocCodeSize(name string) (uint64, error) {
	as := mem.NewAddressSpace(0, 1<<36, mem.LargePageShiftXeon)
	env := sim.NewEnv(as, sim.NewCodeLayout(4096, 4096), 0)
	a, err := NewAllocator(name, env, AllocOptions{})
	if err != nil {
		return 0, err
	}
	return a.CodeSize(), nil
}

// NewAllocator constructs an allocator by report name.
func NewAllocator(name string, env *sim.Env, opts AllocOptions) (heap.Allocator, error) {
	switch name {
	case "default":
		return zend.New(env), nil
	case "region":
		return region.New(env), nil
	case "ddmalloc":
		ddOpts := core.DefaultOptions()
		ddOpts.LargePages = opts.LargePages
		ddOpts.PID = opts.PID
		return core.New(env, ddOpts), nil
	case "obstack":
		return obstack.New(env, 0), nil
	case "reap":
		return reap.New(env), nil
	case "glibc":
		return dlm.New(env), nil
	case "hoard":
		return hoard.New(env), nil
	case "tcmalloc":
		return tcm.New(env), nil
	default:
		return nil, fmt.Errorf("apprt: unknown allocator %q (valid: %v)", name, AllocatorNames())
	}
}
