package apprt

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// sliceSteps bounds how many allocation steps a runtime generates per
// machine pricing slice, keeping event buffers small at paper scale.
const sliceSteps = 4096

// PHPRuntime is one PHP runtime process serving transactions: allocate
// through the transaction, then bulk-free everything with the allocator's
// freeAll, exactly as the PHP runtime does with its custom allocator for
// transaction-scoped objects (paper §3.1).
type PHPRuntime struct {
	env   *sim.Env
	alloc heap.Allocator
	gen   *workload.Generator

	footSum uint64
	footN   uint64
}

// NewPHP builds a PHP runtime process using the named allocator.
func NewPHP(env *sim.Env, allocName string, prof workload.Profile, scale int, opts AllocOptions) (*PHPRuntime, error) {
	alloc, err := NewAllocator(allocName, env, opts)
	if err != nil {
		return nil, err
	}
	if !alloc.SupportsFreeAll() {
		return nil, fmt.Errorf("apprt: allocator %q lacks freeAll; the PHP runtime requires bulk free", allocName)
	}
	r := &PHPRuntime{
		env:   env,
		alloc: alloc,
		gen:   workload.NewGenerator(env, alloc, prof, scale),
	}
	r.alloc.ResetPeak()
	return r, nil
}

// Allocator exposes the runtime's allocator (for reports).
func (r *PHPRuntime) Allocator() heap.Allocator { return r.alloc }

// Generator exposes the runtime's workload generator (for Table 3 stats).
func (r *PHPRuntime) Generator() *workload.Generator { return r.gen }

// StepTransaction implements machine.Driver.
func (r *PHPRuntime) StepTransaction() bool {
	if !r.gen.RunSlice(sliceSteps) {
		if !r.gen.OOMPending() {
			return false
		}
		// Allocation failure: bail the request out the way the PHP
		// engine does ("allowed memory size exhausted"), reclaim every
		// transaction-scoped object with freeAll, and serve the error
		// page. The stream keeps running; the failed transaction counts
		// as served.
		r.gen.Bailout()
		r.alloc.FreeAll()
		r.alloc.ResetPeak()
		r.env.Instr(2000, sim.ClassApp)
		return true
	}
	// End of request: sample memory consumption at its transaction peak,
	// then reclaim all transaction-scoped objects at once.
	r.footSum += r.alloc.PeakFootprint()
	r.footN++
	r.gen.EndTransaction(true)
	r.alloc.FreeAll()
	r.alloc.ResetPeak()
	// Request teardown/accept of the next request.
	r.env.Instr(2000, sim.ClassApp)
	return true
}

// AvgFootprint returns the average per-transaction peak memory consumption
// (Figure 9's quantity).
func (r *PHPRuntime) AvgFootprint() float64 {
	if r.footN == 0 {
		return 0
	}
	return float64(r.footSum) / float64(r.footN)
}

// ResetFootprint restarts footprint averaging (call after warmup).
func (r *PHPRuntime) ResetFootprint() { r.footSum, r.footN = 0, 0 }
