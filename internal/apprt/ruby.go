package apprt

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// Default Ruby-study lifetime parameters: a small fraction of each
// transaction's objects (sessions, caches, interned data) survives for
// several transactions, which is what gradually fragments a heap that is
// never bulk-freed.
const (
	// Survivors accumulate slowly and live long (sessions, caches,
	// interned strings): heap aging keeps worsening over hundreds of
	// transactions, which is why the paper's sweet spot for restarts is
	// as high as 500 transactions.
	defaultSurvivorFrac = 0.015
	defaultSurvivorLife = 120

	// restartInstr is the full-scale instruction cost of restarting a
	// Ruby runtime process (interpreter boot, Rails framework load —
	// a fraction of a second of CPU). The sweep in Figure 12 trades
	// this cost against the locality the fresh heap restores.
	restartInstr = 600_000_000
)

// RubyRuntime is one Ruby runtime process of the §4.4 study. Ruby "does not
// call freeAll at the end of each Web transaction": every object is
// eventually freed per-object, some live across transactions, and the whole
// process restarts every RestartEvery transactions to shed fragmentation.
type RubyRuntime struct {
	env       *sim.Env
	alloc     heap.Allocator
	allocName string
	opts      AllocOptions
	gen       *workload.Generator
	scale     int

	// RestartEvery is the process lifetime in transactions (Figure 12's
	// sweep parameter); 0 disables restarts.
	RestartEvery int

	// RestartCost is the instruction cost of one process restart
	// (interpreter boot, framework load). NewRuby defaults it to the
	// full-scale cost divided by the workload scale; harnesses that also
	// scale the restart *period* adjust it to keep the overhead fraction
	// faithful (see internal/experiments).
	RestartCost uint64

	txnsSinceStart int
	restarts       uint64

	footSum uint64
	footN   uint64
}

// NewRuby builds a Ruby runtime process using the named allocator (which
// must not require freeAll: glibc/hoard/tcmalloc/ddmalloc all qualify —
// DDmalloc is exercised here exactly as the paper does, *without* its
// freeAll advantage).
func NewRuby(env *sim.Env, allocName string, prof workload.Profile, scale, restartEvery int, opts AllocOptions) (*RubyRuntime, error) {
	if !isSupportedRubyAlloc(allocName) {
		return nil, fmt.Errorf("apprt: allocator %q is not in the Ruby study", allocName)
	}
	alloc, err := NewAllocator(allocName, env, opts)
	if err != nil {
		return nil, err
	}
	r := &RubyRuntime{
		env:       env,
		alloc:     alloc,
		allocName: allocName,
		opts:      opts,
		gen:       workload.NewGenerator(env, alloc, prof, scale),
		scale:     scale,

		RestartEvery: restartEvery,
	}
	r.RestartCost = restartInstr / uint64(scale)
	r.gen.SurvivorFrac = defaultSurvivorFrac
	r.gen.SurvivorLife = defaultSurvivorLife
	r.alloc.ResetPeak()
	return r, nil
}

func isSupportedRubyAlloc(name string) bool {
	switch name {
	case "glibc", "hoard", "tcmalloc", "ddmalloc":
		return true
	}
	return false
}

// Allocator exposes the current process's allocator.
func (r *RubyRuntime) Allocator() heap.Allocator { return r.alloc }

// Generator exposes the workload generator.
func (r *RubyRuntime) Generator() *workload.Generator { return r.gen }

// Restarts reports how many process restarts have occurred.
func (r *RubyRuntime) Restarts() uint64 { return r.restarts }

// StepTransaction implements machine.Driver.
func (r *RubyRuntime) StepTransaction() bool {
	if !r.gen.RunSlice(sliceSteps) {
		if !r.gen.OOMPending() {
			return false
		}
		// Allocation failure: a Ruby process has no request-scoped
		// bail-out, so the supervisor kills and restarts it (the Rails
		// deployment's answer to a bloated process). The failed request
		// is served as an error page and the stream keeps running.
		r.gen.Bailout()
		r.restart()
		r.env.Instr(2000, sim.ClassApp)
		return true
	}
	r.footSum += r.alloc.PeakFootprint()
	r.footN++
	// Ruby tears the request down object by object (GC finalization):
	// no bulk free exists.
	r.gen.EndTransaction(false)
	r.alloc.ResetPeak()
	r.env.Instr(2000, sim.ClassApp)

	r.txnsSinceStart++
	if r.RestartEvery > 0 && r.txnsSinceStart >= r.RestartEvery {
		r.restart()
	}
	return true
}

// restart replaces the process: the old heap vanishes, a fresh allocator
// starts on cold addresses, and the interpreter boot cost is paid.
func (r *RubyRuntime) restart() {
	r.restarts++
	r.txnsSinceStart = 0
	r.env.Instr(r.RestartCost, sim.ClassOS)
	r.gen.RestartProcess()
	alloc, err := NewAllocator(r.allocName, r.env, r.opts)
	if err != nil {
		// Construction succeeded before, so this only fires when the
		// address space itself is exhausted (tiny budget, injected
		// fault). The process genuinely cannot come back; the panic is
		// recovered into a CellError by the experiment runner.
		panic(err)
	}
	r.alloc = alloc
	r.gen.SetAllocator(alloc)
	r.alloc.ResetPeak()
}

// AvgFootprint returns the average per-transaction peak memory consumption.
func (r *RubyRuntime) AvgFootprint() float64 {
	if r.footN == 0 {
		return 0
	}
	return float64(r.footSum) / float64(r.footN)
}

// ResetFootprint restarts footprint averaging (call after warmup).
func (r *RubyRuntime) ResetFootprint() { r.footSum, r.footN = 0, 0 }
