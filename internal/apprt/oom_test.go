package apprt

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/mem"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// oomProfile allocates objects so large (mean 24 MiB) that every allocator
// family must map fresh address space mid-transaction, giving the fault
// injector a target on every request.
func oomProfile() workload.Profile {
	return workload.Profile{
		Name: "oom-test", Mallocs: 24, Frees: 12, Reallocs: 2,
		AvgSize:      float64(24 * mem.MiB),
		AppInstr:     10_000,
		AppDataBytes: 64 * mem.KiB,
		OutputKB:     1,
	}
}

// armOneShot makes the next address-space Map fail, once. Armed after
// construction, it hits a steady-state allocation and leaves recovery paths
// (PHP freeAll, Ruby process restart) free to map again.
func armOneShot(env *sim.Env) {
	fired := false
	env.AS.SetFaultInjector(func(uint64) bool {
		if fired {
			return false
		}
		fired = true
		return true
	})
}

func runRubyTxns(t *testing.T, r *RubyRuntime, env *sim.Env, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for !r.StepTransaction() {
			env.Drain()
		}
		env.Drain()
	}
}

// TestPHPSurvivesInjectedOOM: for every PHP-capable allocator family, an
// injected mapping failure mid-transaction must bail the request out (one
// Bailout counted, stream keeps serving) and the following transactions
// must complete normally.
func TestPHPSurvivesInjectedOOM(t *testing.T) {
	for _, name := range []string{"default", "region", "ddmalloc", "obstack", "reap"} {
		t.Run(name, func(t *testing.T) {
			env := alloctest.NewEnv(21)
			r, err := NewPHP(env, name, oomProfile(), 1, AllocOptions{})
			if err != nil {
				t.Fatal(err)
			}
			// Arm before the first transaction: it must grow the heap
			// beyond the constructor's initial mapping, so the injected
			// failure lands mid-request. (After warm-up, recycling
			// allocators like DDmalloc stop mapping altogether.)
			armOneShot(env)
			runPHPTxns(t, r, env, 4)
			if got := r.Generator().Stats().Bailouts; got != 1 {
				t.Fatalf("Bailouts = %d after one injected OOM, want 1", got)
			}

			// Post-bailout transactions must complete without further
			// bailouts, on a heap freeAll has made consistent again.
			mallocsBefore := r.Generator().Stats().Mallocs
			runPHPTxns(t, r, env, 2)
			s := r.Generator().Stats()
			if s.Bailouts != 1 {
				t.Errorf("post-bailout transactions bailed again: %d", s.Bailouts)
			}
			if s.Mallocs <= mallocsBefore {
				t.Error("post-bailout transactions allocated nothing")
			}
		})
	}
}

// TestRubySurvivesInjectedOOM: the Ruby runtimes have no request-scoped
// freeAll; an allocation failure costs the whole process, which the
// supervisor restarts. The stream keeps serving.
func TestRubySurvivesInjectedOOM(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tcmalloc", "ddmalloc"} {
		t.Run(name, func(t *testing.T) {
			env := alloctest.NewEnv(22)
			r, err := NewRuby(env, name, oomProfile(), 1, 0, AllocOptions{})
			if err != nil {
				t.Fatal(err)
			}
			runRubyTxns(t, r, env, 2)

			armOneShot(env)
			restartsBefore := r.Restarts()
			runRubyTxns(t, r, env, 4)
			if got := r.Generator().Stats().Bailouts; got != 1 {
				t.Fatalf("Bailouts = %d after one injected OOM, want 1", got)
			}
			if r.Restarts() != restartsBefore+1 {
				t.Errorf("Restarts = %d, want %d (bail-out restarts the process)",
					r.Restarts(), restartsBefore+1)
			}

			mallocsBefore := r.Generator().Stats().Mallocs
			runRubyTxns(t, r, env, 2)
			if got := r.Generator().Stats().Mallocs; got <= mallocsBefore {
				t.Error("post-restart transactions allocated nothing")
			}
		})
	}
}

// TestPHPTinyBudgetKeepsServing: under a budget every mapping exceeds, every
// transaction bails out — and the runtime still serves all of them as error
// pages rather than wedging or crashing.
func TestPHPTinyBudgetKeepsServing(t *testing.T) {
	env := alloctest.NewEnv(23)
	r, err := NewPHP(env, "default", oomProfile(), 1, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	env.AS.SetBudget(1) // far below what is already mapped: every Map fails
	const txns = 4
	runPHPTxns(t, r, env, txns)
	if got := r.Generator().Stats().Bailouts; got != txns {
		t.Fatalf("Bailouts = %d, want %d (every transaction must bail and be served)", got, txns)
	}
}
