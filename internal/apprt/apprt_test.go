package apprt

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

func runPHPTxns(t *testing.T, r *PHPRuntime, env *sim.Env, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for !r.StepTransaction() {
			env.Drain()
		}
		env.Drain()
	}
}

func TestNewAllocatorRegistry(t *testing.T) {
	for _, name := range AllocatorNames() {
		env := alloctest.NewEnv(1)
		a, err := NewAllocator(name, env, AllocOptions{})
		if err != nil {
			t.Errorf("NewAllocator(%q): %v", name, err)
			continue
		}
		if p := a.Malloc(64); p == 0 {
			t.Errorf("allocator %q returned null", name)
		}
	}
	if _, err := NewAllocator("jemalloc", alloctest.NewEnv(1), AllocOptions{}); err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestPHPRuntimeCallsFreeAllPerTransaction(t *testing.T) {
	env := alloctest.NewEnv(2)
	r, err := NewPHP(env, "ddmalloc", workload.PhpBB(), 8, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runPHPTxns(t, r, env, 3)
	if got := r.Allocator().Stats().FreeAlls; got != 3 {
		t.Fatalf("FreeAlls = %d, want 3 (one per transaction)", got)
	}
}

func TestPHPRuntimeRejectsAllocatorsWithoutFreeAll(t *testing.T) {
	for _, name := range []string{"glibc", "hoard", "tcmalloc"} {
		if _, err := NewPHP(alloctest.NewEnv(3), name, workload.PhpBB(), 8, AllocOptions{}); err == nil {
			t.Errorf("PHP runtime accepted %q, which lacks freeAll", name)
		}
	}
}

func TestPHPFootprintSampling(t *testing.T) {
	env := alloctest.NewEnv(4)
	r, err := NewPHP(env, "region", workload.PhpBB(), 8, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	runPHPTxns(t, r, env, 2)
	fp := r.AvgFootprint()
	// The region allocator's footprint is the bytes allocated during the
	// transaction: ~5870 mallocs * ~56 bytes rounded to 8.
	if fp < 250_000 || fp > 2_000_000 {
		t.Fatalf("region avg footprint = %.0f, want a few hundred KiB", fp)
	}
	r.ResetFootprint()
	if r.AvgFootprint() != 0 {
		t.Fatal("ResetFootprint did not reset")
	}
}

func TestRubyRuntimeRestartsOnSchedule(t *testing.T) {
	env := alloctest.NewEnv(5)
	r, err := NewRuby(env, "glibc", workload.Rails(), 64, 2, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := r.Allocator()
	for i := 0; i < 5; i++ {
		for !r.StepTransaction() {
			env.Drain()
		}
		env.Drain()
	}
	if got := r.Restarts(); got != 2 {
		t.Fatalf("restarts = %d after 5 txns with RestartEvery=2, want 2", got)
	}
	if r.Allocator() == first {
		t.Fatal("allocator not replaced by restart")
	}
}

func TestRubyNoRestartWhenDisabled(t *testing.T) {
	env := alloctest.NewEnv(6)
	r, err := NewRuby(env, "tcmalloc", workload.Rails(), 64, 0, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for !r.StepTransaction() {
			env.Drain()
		}
		env.Drain()
	}
	if r.Restarts() != 0 {
		t.Fatalf("restarts = %d with RestartEvery=0", r.Restarts())
	}
}

func TestRubyRejectsRegionFamily(t *testing.T) {
	for _, name := range []string{"region", "obstack", "default"} {
		if _, err := NewRuby(alloctest.NewEnv(7), name, workload.Rails(), 64, 500, AllocOptions{}); err == nil {
			t.Errorf("Ruby runtime accepted %q", name)
		}
	}
}

func TestRubySurvivorsAgeTheHeap(t *testing.T) {
	env := alloctest.NewEnv(8)
	r, err := NewRuby(env, "ddmalloc", workload.Rails(), 64, 0, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for !r.StepTransaction() {
			env.Drain()
		}
		env.Drain()
	}
	if r.Generator().LiveObjects() == 0 {
		t.Fatal("no cross-transaction survivors in the Ruby model")
	}
}

func TestRubyRestartCostIsOSWork(t *testing.T) {
	env := alloctest.NewEnv(9)
	r, err := NewRuby(env, "glibc", workload.Rails(), 64, 1, AllocOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for !r.StepTransaction() {
		env.Drain()
	}
	instr := env.Instructions()
	if instr[sim.ClassOS] < restartInstr/64 {
		t.Fatalf("OS instructions %d after restart, want >= %d", instr[sim.ClassOS], restartInstr/64)
	}
}

func TestDDmallocLargePagesOptionReachesAllocator(t *testing.T) {
	env := alloctest.NewEnv(10)
	a, err := NewAllocator("ddmalloc", env, AllocOptions{LargePages: true})
	if err != nil {
		t.Fatal(err)
	}
	p := a.Malloc(64)
	if env.AS.PageShift(p) == 12 {
		t.Fatal("large-page option did not reach DDmalloc")
	}
}
