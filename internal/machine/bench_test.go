package machine

import (
	"testing"

	"webmm/internal/mem"
	"webmm/internal/sim"
)

// BenchmarkMachinePrice measures the event-pricing hot path end to end:
// every stream of an 8-core Xeon emits a transaction-shaped slice of events
// (instruction runs, small reads/writes, a large copy) and the machine
// prices them. ns/op is the cost of one such round across all streams.
func BenchmarkMachinePrice(b *testing.B) {
	m := New(Xeon(), 8, 64*mem.KiB, 192*mem.KiB, 1)
	streams := m.Streams()
	heaps := make([]mem.Mapping, len(streams))
	for i, s := range streams {
		heaps[i] = s.Env.AS.Map(4*mem.MiB, 0, mem.SmallPages)
	}
	var events int
	for i := 0; i < b.N; i++ {
		for j, s := range streams {
			base := heaps[j].Base + mem.Addr(uint64(i*392+j*64)%(2*mem.MiB))
			s.Env.Instr(48, sim.ClassApp)
			s.Env.Read(base, 48, sim.ClassApp)
			s.Env.Write(base+64, 24, sim.ClassAlloc)
			s.Env.Instr(12, sim.ClassAlloc)
			s.Env.Copy(base+8192, base, 1024, sim.ClassApp)
			s.Env.Read(base+256*mem.KiB, 8, sim.ClassApp)
			events += 8 // approx: two fetch runs + 4 data events + copy pair
		}
		m.PriceSetup()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
