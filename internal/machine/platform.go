// Package machine assembles the simulated evaluation platforms — the
// two 8-core machines of the paper's Section 4.1 — and runs allocator/
// workload drivers on them, pricing every recorded memory access through
// the cache hierarchy and the shared-bus queueing model.
package machine

import (
	"fmt"
	"strings"

	"webmm/internal/bus"
	"webmm/internal/cache"
	"webmm/internal/cpu"
	"webmm/internal/mem"
	"webmm/internal/memsys"
)

// PrefetchConfig sizes a hardware stream prefetcher; nil means none.
type PrefetchConfig struct {
	Trackers int
	Depth    int
}

// Platform describes one evaluation machine.
type Platform struct {
	Name string

	// Topology.
	MaxCores       int
	ThreadsPerCore int
	CoresPerL2     int // cores sharing each L2 cache

	// Cache geometry.
	L1D, L1I   cache.Config
	L2         cache.Config
	TLBEntries int

	// Large-page support (the page shift used for LargePages mappings).
	LargePageShift uint8

	Prefetch *PrefetchConfig

	Core cpu.Model

	// Mem is the memory system below the caches. Both stock platforms use
	// the paper's shared-bus model (memsys.Bus); experiments swap in a
	// DRAM model (memsys.DRAM) built around the same link to study
	// row-buffer locality and scheduling policies.
	Mem memsys.Model
}

// Threads returns the hardware threads available with nCores active cores.
func (p Platform) Threads(nCores int) int { return nCores * p.ThreadsPerCore }

// Validate panics if the platform is inconsistent; used by constructors.
func (p Platform) validate() Platform {
	if p.MaxCores%p.CoresPerL2 != 0 {
		panic(fmt.Sprintf("machine %s: %d cores not divisible into L2 clusters of %d",
			p.Name, p.MaxCores, p.CoresPerL2))
	}
	if p.Mem == nil {
		panic(fmt.Sprintf("machine %s: no memory system", p.Name))
	}
	return p
}

// Xeon returns the Intel Xeon E5320 "Clovertown" configuration of the paper:
// two quad-core 1.86 GHz sockets (eight cores, one thread each), 32 KiB L1I
// and L1D per core, a 4 MiB L2 shared by each core pair, an aggressive
// hardware stream prefetcher, out-of-order cores that overlap most store and
// much load latency, and a front-side bus whose bandwidth is modest relative
// to the compute it feeds — which is exactly the bottleneck the paper
// exposes. Large pages (2 MiB) exist but are disabled by default, matching
// the paper's Linux configuration.
func Xeon() Platform {
	return Platform{
		Name:           "xeon",
		MaxCores:       8,
		ThreadsPerCore: 1,
		CoresPerL2:     2,
		L1D:            cache.Config{Name: "L1D", Size: 32 * mem.KiB, Ways: 8},
		L1I:            cache.Config{Name: "L1I", Size: 32 * mem.KiB, Ways: 8},
		L2:             cache.Config{Name: "L2", Size: 4 * mem.MiB, Ways: 16},
		TLBEntries:     256,
		LargePageShift: mem.LargePageShiftXeon,
		Prefetch:       &PrefetchConfig{Trackers: 16, Depth: 4},
		Core: cpu.Model{
			FreqHz: 1.86e9, CPI: 0.75,
			L2HitLat: 14, MemLat: 220, TLBMissLat: 30,
			ReadExpose: 0.60, WriteExpose: 0.15, IFetchExpose: 0.30,
			SMTHideCoeff: 0, SnoopPerCore: 3,
		},
		// Dual 1066 MT/s FSBs sustain ~8 GB/s in practice; at the
		// 1.86 GHz core clock that is ~4.3 bytes per cycle.
		Mem: memsys.NewBus(bus.Model{BytesPerCycle: 4.3, BytesPerTxn: mem.LineSize, MaxUtil: 0.93}),
	}.validate()
}

// Niagara returns the Sun UltraSPARC T1 configuration: one 1.2 GHz chip with
// eight in-order cores of four hardware threads each (32 threads), tiny
// per-core L1 caches shared by the four threads, a single 3 MiB L2 shared by
// all cores, no hardware prefetcher, software-assisted TLB fill (expensive
// misses), and a memory system whose bandwidth is high relative to the
// compute — the paper's explanation for why the region allocator degrades
// less here. Large pages are 4 MiB and the paper's runs use them.
func Niagara() Platform {
	return Platform{
		Name:           "niagara",
		MaxCores:       8,
		ThreadsPerCore: 4,
		CoresPerL2:     8,
		L1D:            cache.Config{Name: "L1D", Size: 8 * mem.KiB, Ways: 4},
		L1I:            cache.Config{Name: "L1I", Size: 16 * mem.KiB, Ways: 4},
		L2:             cache.Config{Name: "L2", Size: 3 * mem.MiB, Ways: 12},
		TLBEntries:     64,
		LargePageShift: mem.LargePageShiftNiagara,
		Prefetch:       nil,
		Core: cpu.Model{
			FreqHz: 1.2e9, CPI: 1.15,
			L2HitLat: 22, MemLat: 130, TLBMissLat: 140,
			ReadExpose: 1.0, WriteExpose: 1.0, IFetchExpose: 0.60,
			SMTHideCoeff: 2.0, SnoopPerCore: 0,
		},
		// Four DDR2-533 channels peak at ~17 GB/s; ~10 GB/s sustained
		// at the 1.2 GHz core clock is ~8.5 bytes per cycle — still far
		// more headroom relative to compute than the Xeon FSB, which is
		// the paper's explanation for the milder region degradation.
		Mem: memsys.NewBus(bus.Model{BytesPerCycle: 7.5, BytesPerTxn: mem.LineSize, MaxUtil: 0.93}),
	}.validate()
}

// PlatformDesc describes one registered platform; the table drives name
// resolution, CLI usage and catalogue output, so a new platform cannot
// drift out of any of them.
type PlatformDesc struct {
	Name string
	// Doc is the one-line hardware summary shown in usage and -list.
	Doc string
	// New constructs a fresh Platform value.
	New func() Platform
}

// platformRegistry is the authoritative platform table, in presentation
// order.
var platformRegistry = []PlatformDesc{
	{
		Name: "xeon",
		Doc:  "Intel Xeon E5320: 8 OoO cores, paired 4 MiB L2s, prefetcher, modest FSB",
		New:  Xeon,
	},
	{
		Name: "niagara",
		Doc:  "Sun UltraSPARC T1: 8 in-order cores x 4 threads, shared 3 MiB L2, wide memory",
		New:  Niagara,
	},
}

// Platforms returns the registered platform descriptors in presentation
// order. The slice is a copy; callers may not mutate the registry.
func Platforms() []PlatformDesc {
	out := make([]PlatformDesc, len(platformRegistry))
	copy(out, platformRegistry)
	return out
}

// PlatformNames returns the registered platform names in presentation order.
func PlatformNames() []string {
	out := make([]string, len(platformRegistry))
	for i, d := range platformRegistry {
		out[i] = d.Name
	}
	return out
}

// PlatformByName returns the named platform, with the registered candidates
// in the error so the message can never drift from the registry.
func PlatformByName(name string) (Platform, error) {
	for _, d := range platformRegistry {
		if d.Name == name {
			return d.New(), nil
		}
	}
	return Platform{}, fmt.Errorf("machine: unknown platform %q (valid: %v)", name, PlatformNames())
}

// UsagePlatforms renders the platform table for CLI -h output, one line per
// platform, matching the experiment registry's usage format.
func UsagePlatforms() string {
	var b strings.Builder
	for _, d := range platformRegistry {
		fmt.Fprintf(&b, "  %-8s %s\n", d.Name, d.Doc)
	}
	return b.String()
}
