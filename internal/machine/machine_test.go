package machine

import (
	"context"
	"math"
	"testing"

	"webmm/internal/cpu"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// streamingDriver writes fresh memory every transaction and never reuses it,
// like the region allocator: all traffic is compulsory misses.
type streamingDriver struct {
	env  *sim.Env
	next mem.Mapping
	off  uint64
	work uint64 // bytes written per transaction
}

func newStreamingDriver(env *sim.Env, work uint64) *streamingDriver {
	return &streamingDriver{env: env, next: env.AS.Map(256*mem.MiB, 0, mem.SmallPages), work: work}
}

func (d *streamingDriver) StepTransaction() bool {
	for i := uint64(0); i < d.work; i += 64 {
		if d.off+64 > d.next.Size {
			d.next = d.env.AS.Map(256*mem.MiB, 0, mem.SmallPages)
			d.off = 0
		}
		d.env.Write(d.next.Base+mem.Addr(d.off), 64, sim.ClassApp)
		d.env.Instr(8, sim.ClassApp)
		d.off += 64
	}
	return true
}

// reusingDriver touches the same small working set every transaction, like
// DDmalloc's LIFO reuse: warm after the first pass.
type reusingDriver struct {
	env  *sim.Env
	base mem.Addr
	work uint64
}

func newReusingDriver(env *sim.Env, work uint64) *reusingDriver {
	m := env.AS.Map(work+mem.KiB, 0, mem.SmallPages)
	return &reusingDriver{env: env, base: m.Base, work: work}
}

func (d *reusingDriver) StepTransaction() bool {
	for i := uint64(0); i < d.work; i += 64 {
		d.env.Write(d.base+mem.Addr(i), 64, sim.ClassApp)
		d.env.Instr(8, sim.ClassApp)
	}
	return true
}

func runDrivers(t *testing.T, p Platform, nCores int, mk func(*sim.Env) Driver, warm, meas int) Result {
	t.Helper()
	m := New(p, nCores, 8*mem.KiB, 128*mem.KiB, 42)
	var drivers []Driver
	for _, s := range m.Streams() {
		drivers = append(drivers, mk(s.Env))
	}
	m.PriceSetup()
	m.Run(drivers, warm, meas)
	return m.Solve()
}

// TestRunContextCancellation: a cancelled context stops the round loop at
// its next checkpoint and surfaces the context's error; an uncancellable
// context runs to completion with a nil error and results identical to Run.
func TestRunContextCancellation(t *testing.T) {
	build := func() (*Machine, []Driver) {
		m := New(Xeon(), 4, 8*mem.KiB, 128*mem.KiB, 42)
		var drivers []Driver
		for _, s := range m.Streams() {
			drivers = append(drivers, newStreamingDriver(s.Env, 64*mem.KiB))
		}
		m.PriceSetup()
		return m, drivers
	}

	m, drivers := build()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.RunContext(ctx, drivers, 2, 3); err != context.Canceled {
		t.Fatalf("RunContext on a cancelled context returned %v, want context.Canceled", err)
	}

	m2, d2 := build()
	if err := m2.RunContext(context.Background(), d2, 2, 3); err != nil {
		t.Fatalf("uncancellable RunContext returned %v", err)
	}
	m3, d3 := build()
	m3.Run(d3, 2, 3)
	r2, r3 := m2.Solve(), m3.Solve()
	if r2.Throughput != r3.Throughput || r2.Totals != r3.Totals {
		t.Fatal("RunContext(Background) differs from Run")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func(env *sim.Env) Driver { return newStreamingDriver(env, 64*mem.KiB) }
	r1 := runDrivers(t, Xeon(), 4, mk, 2, 3)
	r2 := runDrivers(t, Xeon(), 4, mk, 2, 3)
	if r1.Throughput != r2.Throughput || r1.Totals != r2.Totals {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", r1, r2)
	}
}

func TestStreamingGeneratesMoreBusTrafficThanReuse(t *testing.T) {
	work := uint64(256 * mem.KiB)
	stream := runDrivers(t, Xeon(), 2, func(e *sim.Env) Driver { return newStreamingDriver(e, work) }, 2, 4)
	reuse := runDrivers(t, Xeon(), 2, func(e *sim.Env) Driver { return newReusingDriver(e, 16*mem.KiB) }, 2, 4)

	sBus := stream.PerTxn(stream.Totals.BusTxns())
	rBus := reuse.PerTxn(reuse.Totals.BusTxns())
	if sBus < 4*rBus {
		t.Fatalf("streaming bus/txn %.0f not >> reuse %.0f", sBus, rBus)
	}
	if reuse.Totals.L1DMiss*20 > reuse.Totals.L1DAcc {
		t.Fatalf("reusing driver L1D miss rate too high: %d/%d",
			reuse.Totals.L1DMiss, reuse.Totals.L1DAcc)
	}
}

func TestBusUtilizationGrowsWithCores(t *testing.T) {
	mk := func(e *sim.Env) Driver { return newStreamingDriver(e, 256*mem.KiB) }
	u1 := runDrivers(t, Xeon(), 1, mk, 1, 3).BusUtil
	u8 := runDrivers(t, Xeon(), 8, mk, 1, 3).BusUtil
	if u8 <= u1 {
		t.Fatalf("bus utilization did not grow with cores: 1-core %.3f, 8-core %.3f", u1, u8)
	}
	if u8 < 0.3 {
		t.Fatalf("8 streaming cores should load the Xeon bus heavily, got %.3f", u8)
	}
}

func TestMemoryBoundScalesWorseThanCacheFriendly(t *testing.T) {
	mkStream := func(e *sim.Env) Driver { return newStreamingDriver(e, 256*mem.KiB) }
	mkReuse := func(e *sim.Env) Driver { return newReusingDriver(e, 24*mem.KiB) }

	s1 := runDrivers(t, Xeon(), 1, mkStream, 1, 3).Throughput
	s8 := runDrivers(t, Xeon(), 8, mkStream, 1, 3).Throughput
	r1 := runDrivers(t, Xeon(), 1, mkReuse, 1, 3).Throughput
	r8 := runDrivers(t, Xeon(), 8, mkReuse, 1, 3).Throughput

	streamSpeedup := s8 / s1
	reuseSpeedup := r8 / r1
	if streamSpeedup >= reuseSpeedup {
		t.Fatalf("bandwidth-bound speedup %.2fx should trail cache-friendly %.2fx",
			streamSpeedup, reuseSpeedup)
	}
	if reuseSpeedup < 4.5 {
		t.Fatalf("cache-friendly workload speedup %.2fx too low", reuseSpeedup)
	}
}

func TestNiagaraThreadsPerCore(t *testing.T) {
	m := New(Niagara(), 2, 8*mem.KiB, 128*mem.KiB, 1)
	if got := m.NumStreams(); got != 8 {
		t.Fatalf("2 Niagara cores expose %d streams, want 8", got)
	}
	mx := New(Xeon(), 2, 8*mem.KiB, 128*mem.KiB, 1)
	if got := mx.NumStreams(); got != 2 {
		t.Fatalf("2 Xeon cores expose %d streams, want 2", got)
	}
}

func TestStreamsHaveDisjointAddressSpaces(t *testing.T) {
	m := New(Xeon(), 8, 8*mem.KiB, 128*mem.KiB, 1)
	type span struct{ lo, hi mem.Addr }
	var spans []span
	for _, s := range m.Streams() {
		mp := s.Env.AS.Map(1*mem.MiB, 0, mem.SmallPages)
		spans = append(spans, span{mp.Base, mp.End()})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("streams %d and %d overlap: %+v %+v", i, j, spans[i], spans[j])
			}
		}
	}
}

func TestClassAttributionSeparatesAllocFromApp(t *testing.T) {
	p := Xeon()
	m := New(p, 1, 8*mem.KiB, 128*mem.KiB, 7)
	env := m.Streams()[0].Env
	d := driverFunc(func() {
		env.Instr(1000, sim.ClassAlloc)
		env.Instr(3000, sim.ClassApp)
	})
	m.Run([]Driver{d}, 1, 4)
	r := m.Solve()
	if r.ByClass[sim.ClassAlloc].Instr != 4000 {
		t.Fatalf("alloc instr = %d, want 4000", r.ByClass[sim.ClassAlloc].Instr)
	}
	if r.ByClass[sim.ClassApp].Instr != 12000 {
		t.Fatalf("app instr = %d, want 12000", r.ByClass[sim.ClassApp].Instr)
	}
	if r.ByClass[sim.ClassAlloc].Cycles <= 0 || r.ByClass[sim.ClassApp].Cycles <= r.ByClass[sim.ClassAlloc].Cycles {
		t.Fatalf("cycle attribution wrong: %+v", r.ByClass)
	}
	if r.Txns != 4 {
		t.Fatalf("measured %d txns, want 4", r.Txns)
	}
}

type driverFunc func()

func (f driverFunc) StepTransaction() bool { f(); return true }

func TestSolveConverges(t *testing.T) {
	r := runDrivers(t, Xeon(), 8, func(e *sim.Env) Driver { return newStreamingDriver(e, 512*mem.KiB) }, 1, 2)
	if math.IsNaN(r.Throughput) || math.IsInf(r.Throughput, 0) || r.Throughput <= 0 {
		t.Fatalf("throughput = %v", r.Throughput)
	}
	if r.BusMult < 1 || r.BusMult > 1/(1-Xeon().Mem.Link().MaxUtil)+1e-9 {
		t.Fatalf("bus multiplier %v out of range", r.BusMult)
	}
}

func TestWarmupExcludedFromCounters(t *testing.T) {
	p := Xeon()
	mk := func() (*Machine, Result) {
		m := New(p, 1, 8*mem.KiB, 128*mem.KiB, 5)
		d := newReusingDriver(m.Streams()[0].Env, 32*mem.KiB)
		m.Run([]Driver{d}, 5, 2)
		return m, m.Solve()
	}
	_, r := mk()
	// After 5 warmup passes over a 32 KiB set, measured misses should be
	// nearly zero (the set fits in L1D).
	if r.Totals.L1DMiss*50 > r.Totals.L1DAcc {
		t.Fatalf("warmup leaked into measurement: %d misses / %d accesses",
			r.Totals.L1DMiss, r.Totals.L1DAcc)
	}
}

// TestSamplerDeltasAndNoPerturbation checks the telemetry hook: round
// samples arrive once per round, their deltas sum to the measured totals,
// and attaching a sampler leaves the solved result bit-identical.
func TestSamplerDeltasAndNoPerturbation(t *testing.T) {
	run := func(sampler func(RoundSample)) (Result, int) {
		m := New(Xeon(), 2, 8*mem.KiB, 128*mem.KiB, 42)
		m.Sampler = sampler
		var drivers []Driver
		for _, s := range m.Streams() {
			drivers = append(drivers, newStreamingDriver(s.Env, 64*mem.KiB))
		}
		m.PriceSetup()
		m.Run(drivers, 2, 3)
		return m.Solve(), m.sampleRound
	}

	base, _ := run(nil)

	var samples []RoundSample
	sampled, rounds := run(func(s RoundSample) { samples = append(samples, s) })

	if sampled.Throughput != base.Throughput || sampled.Totals != base.Totals {
		t.Fatalf("sampler perturbed the simulation:\n%+v\n%+v", sampled, base)
	}
	if len(samples) != 5 || rounds != 5 {
		t.Fatalf("got %d samples over %d rounds, want 5 (2 warmup + 3 measured)", len(samples), rounds)
	}
	var sum [sim.NumClasses]cpu.Counters
	for i, s := range samples {
		if s.Round != i {
			t.Fatalf("samples[%d].Round = %d", i, s.Round)
		}
		wantMeasuring := i >= 2
		if s.Measuring != wantMeasuring {
			t.Fatalf("samples[%d].Measuring = %v", i, s.Measuring)
		}
		if !wantMeasuring && s.ByClass[sim.ClassApp].Instr != 0 {
			t.Fatalf("warmup sample %d carries measured instructions", i)
		}
		for cls := 0; cls < sim.NumClasses; cls++ {
			sum[cls].Add(s.ByClass[cls])
		}
	}
	for cls := 0; cls < sim.NumClasses; cls++ {
		if sum[cls].Instr != sampled.ByClass[cls].Instr {
			t.Fatalf("class %d sample deltas sum to %d instr, Solve says %d",
				cls, sum[cls].Instr, sampled.ByClass[cls].Instr)
		}
	}
	var total cpu.Counters
	for cls := 0; cls < sim.NumClasses; cls++ {
		total.Add(sum[cls])
	}
	if total != sampled.Totals {
		t.Fatalf("sample deltas do not sum to totals:\n%+v\n%+v", total, sampled.Totals)
	}
}

func TestPlatformByName(t *testing.T) {
	if _, err := PlatformByName("xeon"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("niagara"); err != nil {
		t.Fatal(err)
	}
	if _, err := PlatformByName("power6"); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
