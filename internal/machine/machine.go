package machine

import (
	"context"
	"fmt"

	"webmm/internal/cache"
	"webmm/internal/cpu"
	"webmm/internal/mem"
	"webmm/internal/memsys"
	"webmm/internal/sim"
)

// Driver produces the work of one runtime process (one hardware thread). A
// driver is constructed around the Env the machine hands it (the Env is the
// process's address space and event recorder) and generates web
// transactions in bounded slices so event buffers stay small at full
// workload scale.
type Driver interface {
	// StepTransaction generates the next slice of the current
	// transaction into the stream's Env, returning true when the
	// transaction is complete. The machine prices the emitted events
	// between calls.
	StepTransaction() bool
}

// Stream is one hardware thread running one runtime process.
type Stream struct {
	ID   int
	Core int
	Env  *sim.Env

	// core and l2 are the stream's fixed position in the hierarchy,
	// resolved once at construction so pricing never re-derives them.
	core *coreState
	l2   *l2State

	// counters accumulate measured (post-warmup) events by class.
	counters [sim.NumClasses]cpu.Counters
	txns     uint64

	// Page-shift region cache: the last PageShiftRegion answer from the
	// stream's address space. Consecutive events in the same large
	// mapping (or the same gap between large mappings) skip the
	// binary search; LargeEpoch revalidates after any Map/Unmap of a
	// large mapping.
	psEpoch uint64
	psLo    mem.Addr
	psHi    mem.Addr
	psShift uint8
}

// pageShiftOf resolves the page size backing a, serving repeats from the
// cached region.
func (s *Stream) pageShiftOf(a mem.Addr) uint8 {
	as := s.Env.AS
	if e := as.LargeEpoch(); e == s.psEpoch && s.psLo <= a && a < s.psHi {
		return s.psShift
	}
	shift, lo, hi := as.PageShiftRegion(a)
	s.psEpoch, s.psLo, s.psHi, s.psShift = as.LargeEpoch(), lo, hi, shift
	return shift
}

// coreState holds the per-core private structures (shared by the core's
// hardware threads, as on Niagara).
type coreState struct {
	l1d, l1i *cache.Cache
	tlb      *cache.TLB

	// lastData is the line of the core's previous data event when that
	// event was single-line, 0 otherwise (line 0 is never used). A repeat
	// of the same line is necessarily an L1D hit on the set's MRU way and
	// a TLB hit on the TLB's MRU entry — neither lookup changes any
	// replacement state — so priceData prices it as bare counter bumps.
	// Nothing but priceData touches the L1D or D-TLB (the prefetcher
	// feeds the L2, and instruction fetch has its own cache), so the memo
	// cannot go stale between data events.
	lastData uint64

	// tlbKey is the key of the core's previous TLB access. The TLB's MRU
	// entry always holds the last-accessed key, and a repeat MRU hit
	// changes nothing but the hit counter, so a key match skips the
	// lookup call outright. 0 is never a key (the page shift occupies the
	// low bits and is never 0).
	tlbKey uint64
}

// l2State is one L2 cache cluster with its prefetcher.
type l2State struct {
	c  *cache.Cache
	pf *cache.Prefetcher
}

// RoundSample is one pricing round's per-class hardware-counter delta,
// delivered to a Machine's Sampler. It is the telemetry layer's window into
// per-component cycle and miss attribution over time: each sample covers
// exactly one round, so a consumer can plot counter traffic per round or
// aggregate windows of any width.
type RoundSample struct {
	// Round numbers the samples from 0 across the machine's lifetime.
	Round int
	// Measuring reports whether the round was measured (post-warmup).
	// Warmup rounds deliver zero deltas because only measured rounds
	// accumulate counters.
	Measuring bool
	// ByClass is the counter delta of this round, by event class.
	ByClass [sim.NumClasses]cpu.Counters
}

// Machine wires streams, cores, L2 clusters and the bus together and prices
// event streams deterministically.
type Machine struct {
	Plat   Platform
	NCores int

	// Sampler, when non-nil, receives one RoundSample after every pricing
	// round (Run rounds and PriceMeasured calls). The delta computation
	// runs only when a sampler is attached, so the nil case costs one
	// branch per round.
	Sampler func(RoundSample)

	streams []*Stream
	cores   []*coreState
	l2s     []*l2State

	// memRec is the memory system's miss-traffic observer, resolved once
	// at construction. The default bus model observes nothing, so this is
	// nil and the measured pricing path pays one nil check per bus
	// transaction; warm rounds never record (their counters are discarded,
	// and a DRAM model must see exactly the traffic the bus is billed for).
	memRec memsys.Recorder

	// Sampler bookkeeping: the round counter, running per-class totals
	// maintained incrementally as pricing flushes counter deltas, and the
	// totals at the previous sample. Keeping classTotals up to date as a
	// side effect of the per-turn flush makes sample() O(classes) instead
	// of O(streams × classes), so sampling cost stays flat as -scale grows.
	// The totals are only maintained while a Sampler is attached; attach
	// one before the first pricing round.
	sampleRound int
	classTotals [sim.NumClasses]cpu.Counters
	lastClass   [sim.NumClasses]cpu.Counters

	// quantum is the pricing budget each stream contributes per
	// round-robin turn, approximating concurrent execution in the shared
	// caches. It is counted in line-equivalents: one unit per data event
	// and one per instruction-fetch line, so a fetch run emitted as a
	// single event splits across turns exactly where the per-line event
	// stream used to.
	quantum int

	measuring bool

	// cursors, done and runScratch are scratch reused across priceRound
	// and Run calls, keeping the per-round pricing path allocation-free
	// (a full experiment prices tens of thousands of rounds).
	cursors    []evCursor
	done       []bool
	runScratch []cache.RunMiss
}

// evCursor walks one stream's buffered event columns during priceRound.
// lineOff is the number of lines of the fetch-run event at pos that earlier
// turns already priced, so a long run resumes mid-run at its quantum split.
type evCursor struct {
	addrs   []mem.Addr
	sizes   []uint32
	meta    []uint8
	pos     int
	lineOff uint64
}

// streamSpan is the address-space span reserved per stream (per process).
const streamSpan = 1 << 40

// New builds a machine with nCores active cores of the platform. The
// allocCode/appCode sizes configure the per-class code footprints (the
// allocator under test reports its own code size). seed derives every
// stream's RNG.
func New(p Platform, nCores int, allocCode, appCode uint64, seed uint64) *Machine {
	if nCores < 1 || nCores > p.MaxCores {
		panic(fmt.Sprintf("machine: nCores %d out of range 1..%d", nCores, p.MaxCores))
	}
	m := &Machine{Plat: p, NCores: nCores, quantum: 64, memRec: p.Mem.Recorder()}
	code := sim.NewCodeLayout(allocCode, appCode)
	root := sim.NewRNG(seed)

	nThreads := p.Threads(nCores)
	for i := 0; i < nThreads; i++ {
		as := mem.NewAddressSpace(mem.Addr(uint64(i+2)<<40), streamSpan, p.LargePageShift)
		env := sim.NewEnv(as, code, root.Uint64())
		m.streams = append(m.streams, &Stream{
			ID: i, Core: i / p.ThreadsPerCore, Env: env,
		})
	}
	for c := 0; c < nCores; c++ {
		m.cores = append(m.cores, &coreState{
			l1d: cache.New(p.L1D),
			l1i: cache.New(p.L1I),
			tlb: cache.NewTLB(p.TLBEntries),
		})
	}
	nL2 := (nCores + p.CoresPerL2 - 1) / p.CoresPerL2
	for i := 0; i < nL2; i++ {
		s := &l2State{c: cache.New(p.L2)}
		if p.Prefetch != nil {
			s.pf = cache.NewPrefetcher(p.Prefetch.Trackers, p.Prefetch.Depth)
		}
		m.l2s = append(m.l2s, s)
	}
	for _, s := range m.streams {
		s.core = m.cores[s.Core]
		s.l2 = m.l2ForCore(s.Core)
	}
	m.cursors = make([]evCursor, len(m.streams))
	m.done = make([]bool, len(m.streams))
	m.runScratch = make([]cache.RunMiss, 0, 64)
	return m
}

// Streams returns the machine's streams, one per hardware thread. Callers
// construct a Driver around each stream's Env before calling Run.
func (m *Machine) Streams() []*Stream { return m.streams }

// NumStreams returns the number of hardware threads.
func (m *Machine) NumStreams() int { return len(m.streams) }

// PriceSetup prices the events emitted during driver construction (allocator
// initialization) without measuring them, so setup cost warms the caches but
// does not pollute per-transaction statistics.
func (m *Machine) PriceSetup() {
	m.measuring = false
	m.priceRound()
}

// PriceMeasured prices all buffered events into the measured counters and
// counts one transaction per stream. It serves callers that drive the
// streams' Envs directly (e.g. the webmm.Sandbox) rather than through Run.
func (m *Machine) PriceMeasured() {
	m.measuring = true
	for _, s := range m.streams {
		s.txns++
	}
	m.priceRound()
	m.measuring = false
	m.sample(true)
}

// Run executes warmup+measure transactions on every stream. Warmup rounds
// warm caches, TLBs and allocator free lists; measured rounds accumulate the
// per-class hardware counters used by Solve. Within a round, drivers
// generate slices that are priced interleaved, modelling the concurrent
// execution of the runtime processes.
func (m *Machine) Run(drivers []Driver, warmup, measure int) {
	_ = m.RunContext(context.Background(), drivers, warmup, measure)
}

// RunContext is Run with cooperative cancellation: between pricing rounds
// the loop polls ctx through a sim.Checkpoint and returns ctx's error once
// it is cancelled, leaving the machine's counters at whatever the completed
// rounds accumulated. A cancelled machine must not be Solved or reused —
// the caller reports the cell failed and discards it. An uncancellable ctx
// (context.Background) makes the guard a nil *Checkpoint, so the hot loop
// pays one nil check per pricing round — BenchmarkFig1Cell cannot tell the
// difference.
func (m *Machine) RunContext(ctx context.Context, drivers []Driver, warmup, measure int) error {
	if len(drivers) != len(m.streams) {
		panic(fmt.Sprintf("machine: %d drivers for %d streams", len(drivers), len(m.streams)))
	}
	cp := sim.NewCheckpoint(ctx)
	done := m.done
	for round := 0; round < warmup+measure; round++ {
		m.measuring = round >= warmup
		for i := range done {
			done[i] = false
		}
		remaining := len(drivers)
		for remaining > 0 {
			if cp.Hit() {
				return cp.Err()
			}
			for i, d := range drivers {
				if done[i] {
					continue
				}
				if d.StepTransaction() {
					done[i] = true
					remaining--
					if m.measuring {
						m.streams[i].txns++
					}
				}
			}
			m.priceRound()
		}
		m.sample(m.measuring)
	}
	return nil
}

// sample delivers one RoundSample — the per-class counter delta since the
// previous sample — to the attached Sampler. With no Sampler attached, the
// whole computation is skipped; pricing itself is untouched either way, so
// sampling can never perturb simulation results. The per-class totals are
// maintained incrementally by the pricing flush, so this is a constant-size
// computation regardless of stream count.
func (m *Machine) sample(measuring bool) {
	if m.Sampler == nil {
		return
	}
	totals := m.classTotals
	out := RoundSample{Round: m.sampleRound, Measuring: measuring, ByClass: totals}
	for cls := 0; cls < sim.NumClasses; cls++ {
		out.ByClass[cls].Sub(m.lastClass[cls])
	}
	m.lastClass = totals
	m.sampleRound++
	m.Sampler(out)
}

// priceRound prices all buffered events, interleaving streams round-robin in
// fixed quanta so that concurrent cache sharing and bus pressure are
// represented, then drains every Env. Unmeasured rounds (warmup, setup, and
// sampled-fidelity warming rounds) take the warm-only turn variant: the
// cache, TLB and prefetcher state transitions are the same calls in the same
// order, but the measured-counter plumbing — the turn-local delta array, the
// per-event counter classification, the flush — is skipped outright instead
// of being branched around per event, since every value it would produce is
// discarded.
func (m *Machine) priceRound() {
	cursors := m.cursors
	remaining := 0
	for i, s := range m.streams {
		b := s.Env.Buf()
		cursors[i] = evCursor{addrs: b.Addrs(), sizes: b.Sizes(), meta: b.Meta()}
		if b.Len() > 0 {
			remaining++
		}
	}
	meas := m.measuring
	for remaining > 0 {
		for i := range cursors {
			c := &cursors[i]
			if c.pos >= len(c.meta) {
				continue
			}
			if meas {
				m.priceTurn(m.streams[i], c)
			} else {
				m.priceTurnWarm(m.streams[i], c)
			}
			if c.pos >= len(c.meta) {
				remaining--
			}
		}
	}
	sampling := m.Sampler != nil
	for _, s := range m.streams {
		instr := s.Env.Drain()
		if meas {
			for cls := 0; cls < sim.NumClasses; cls++ {
				s.counters[cls].Instr += instr[cls]
				if sampling {
					m.classTotals[cls].Instr += instr[cls]
				}
			}
		}
	}
}

// priceTurn prices one stream's quantum: up to quantum line-equivalents of
// the cursor's remaining events. Counter deltas accumulate in a turn-local
// array that lives in registers and cache, and are flushed to the stream's
// (and, when sampling, the machine's) counters once per turn instead of
// once per line.
func (m *Machine) priceTurn(s *Stream, c *evCursor) {
	meas := m.measuring
	budget := m.quantum
	n := len(c.meta)
	var d [sim.NumClasses]cpu.Counters
	var touched uint8
	for budget > 0 && c.pos < n {
		i := c.pos
		mt := c.meta[i]
		cls := sim.MetaClass(mt)
		touched |= 1 << cls
		ctr := &d[cls]
		if k := sim.MetaKind(mt); k == sim.IFetch {
			first := mem.LineOf(c.addrs[i]) + c.lineOff
			take := uint64(c.sizes[i])/mem.LineSize - c.lineOff
			if take > uint64(budget) {
				// Quantum boundary mid-run: price the budgeted prefix now
				// and resume at the split next turn, exactly where the
				// per-line event stream used to hand over.
				take = uint64(budget)
				c.lineOff += take
			} else {
				c.pos++
				c.lineOff = 0
			}
			budget -= int(take)
			m.priceIFetchRun(s, ctr, first, take, meas)
		} else {
			m.priceData(s, ctr, c.addrs[i], c.sizes[i], k == sim.Write, meas)
			budget--
			c.pos++
		}
	}
	if !meas {
		return
	}
	sampling := m.Sampler != nil
	for cls := 0; cls < sim.NumClasses; cls++ {
		if touched&(1<<cls) == 0 || d[cls].IsZero() {
			continue
		}
		s.counters[cls].Add(d[cls])
		if sampling {
			m.classTotals[cls].Add(d[cls])
		}
	}
}

// priceIFetchRun prices a run of nLines sequential instruction fetches
// through the stream's L1 I-cache and, per miss, the shared L2.
func (m *Machine) priceIFetchRun(s *Stream, ctr *cpu.Counters, first, nLines uint64, meas bool) {
	misses := s.core.l1i.AccessRun(first, nLines, false, m.runScratch[:0])
	m.runScratch = misses
	l2 := s.l2
	for j := range misses {
		// Instruction lines are never dirty, so L1I victims need no
		// writeback.
		m.l2Access(l2, ctr, s.Core, misses[j].Line, false, true, meas)
	}
	if meas {
		ctr.L1IAcc += nLines
		ctr.L1IMiss += uint64(len(misses))
	}
}

// priceData prices one data event: a TLB lookup (one per event —
// page-crossing objects are rare and a second lookup would not change the
// shape of anything), an L1D run over the touched lines, and per L1 miss
// the dirty-victim writeback and shared-L2 access. The batched L1 sweep is
// bit-identical to the interleaved per-line loop it replaced: L1 outcomes
// never depend on L2 state, and the L2 operations replay in the original
// per-miss order.
func (m *Machine) priceData(s *Stream, ctr *cpu.Counters, addr mem.Addr, size uint32, write, meas bool) {
	first := mem.LineOf(addr)
	nLines := mem.LinesTouched(addr, uint64(size))
	core := s.core
	if nLines == 1 && first == core.lastData {
		// Repeat of the core's previous data line (about a quarter of the
		// data stream: write-then-reread of the newest object): both
		// lookups are hits that change no state beyond their counters.
		core.tlb.Hits++
		core.l1d.HitAgain(first, write)
		if meas {
			ctr.L1DAcc++
		}
		return
	}
	if nLines == 1 {
		core.lastData = first
	} else {
		core.lastData = 0
	}

	if key := cache.Key(uint64(addr), s.pageShiftOf(addr)); key == core.tlbKey {
		core.tlb.Hits++
	} else {
		core.tlbKey = key
		if !core.tlb.Access(key) && meas {
			ctr.TLBMiss++
		}
	}

	l2 := s.l2
	if nLines == 1 {
		// Single-line accesses are the bulk of the data stream; skip the
		// run machinery and price the one line directly.
		hit, _, victim := s.core.l1d.Access(first, write)
		if !hit {
			if victim.Valid && victim.Dirty {
				wbVictim := l2.c.WriteBack(victim.Line)
				if wbVictim.Valid && wbVictim.Dirty && meas {
					ctr.BusWrite++
					if m.memRec != nil {
						m.memRec.Record(wbVictim.Line, s.Core, memsys.Writeback)
					}
				}
			}
			m.l2Access(l2, ctr, s.Core, first, write, false, meas)
		}
		if meas {
			ctr.L1DAcc++
			if !hit {
				ctr.L1DMiss++
			}
		}
		return
	}
	misses := s.core.l1d.AccessRun(first, nLines, write, m.runScratch[:0])
	m.runScratch = misses
	for j := range misses {
		rm := &misses[j]
		if v := rm.Victim; v.Valid && v.Dirty {
			// Dirty L1 eviction drains into the L2.
			wbVictim := l2.c.WriteBack(v.Line)
			if wbVictim.Valid && wbVictim.Dirty && meas {
				ctr.BusWrite++
				if m.memRec != nil {
					m.memRec.Record(wbVictim.Line, s.Core, memsys.Writeback)
				}
			}
		}
		m.l2Access(l2, ctr, s.Core, rm.Line, write, false, meas)
	}
	if meas {
		ctr.L1DAcc += nLines
		ctr.L1DMiss += uint64(len(misses))
	}
}

func (m *Machine) l2ForCore(coreID int) *l2State {
	return m.l2s[coreID/m.Plat.CoresPerL2]
}

// l2Access performs the shared-L2 lookup and, on a miss, the memory fetch,
// prefetcher consultation and writeback accounting. The caller resolves the
// stream's L2 cluster once per event rather than once per line; core is the
// issuing core, attributed to every memory-system transaction so scheduling
// policies can classify cores.
func (m *Machine) l2Access(l2 *l2State, ctr *cpu.Counters, core int, line uint64, write, ifetch, meas bool) {
	hit, wasPrefetched, victim := l2.c.Access(line, write)
	if hit {
		if meas {
			switch {
			case ifetch:
				ctr.L2HitIF++
			case write:
				ctr.L2HitWr++
			default:
				ctr.L2HitRd++
			}
			if wasPrefetched {
				ctr.PfHit++
			}
		}
		return
	}
	if meas {
		switch {
		case ifetch:
			ctr.L2MissIF++
		case write:
			ctr.L2MissWr++
		default:
			ctr.L2MissRd++
		}
		ctr.BusRead++
		if m.memRec != nil {
			m.memRec.Record(line, core, memsys.Read)
		}
		if victim.Valid && victim.Dirty {
			ctr.BusWrite++
			if m.memRec != nil {
				m.memRec.Record(victim.Line, core, memsys.Writeback)
			}
		}
	}
	if l2.pf != nil {
		for _, pl := range l2.pf.OnMiss(line) {
			installed, v := l2.c.Install(pl, true)
			if installed && meas {
				ctr.BusPf++
				if m.memRec != nil {
					m.memRec.Record(pl, core, memsys.Prefetch)
					if v.Valid && v.Dirty {
						m.memRec.Record(v.Line, core, memsys.Writeback)
					}
				}
				if v.Valid && v.Dirty {
					ctr.BusWrite++
				}
			}
		}
	}
}

// priceTurnWarm is priceTurn for unmeasured rounds. It performs the same
// cache, TLB and prefetcher calls in the same order — warmup must leave the
// hierarchy in exactly the state the per-event path would — but carries no
// counter-delta array, no per-event class decode, and no flush, because an
// unmeasured turn's counters are discarded wholesale. Keeping this a
// separate function (rather than more meas branches in priceTurn) keeps the
// measured path's register pressure unchanged and lets warmup skip the
// 384-byte delta zeroing per turn.
func (m *Machine) priceTurnWarm(s *Stream, c *evCursor) {
	budget := m.quantum
	n := len(c.meta)
	for budget > 0 && c.pos < n {
		i := c.pos
		mt := c.meta[i]
		if k := sim.MetaKind(mt); k == sim.IFetch {
			first := mem.LineOf(c.addrs[i]) + c.lineOff
			take := uint64(c.sizes[i])/mem.LineSize - c.lineOff
			if take > uint64(budget) {
				take = uint64(budget)
				c.lineOff += take
			} else {
				c.pos++
				c.lineOff = 0
			}
			budget -= int(take)
			misses := s.core.l1i.AccessRun(first, take, false, m.runScratch[:0])
			m.runScratch = misses
			for j := range misses {
				m.l2AccessWarm(s.l2, misses[j].Line, false)
			}
		} else {
			m.priceDataWarm(s, c.addrs[i], c.sizes[i], k == sim.Write)
			budget--
			c.pos++
		}
	}
}

// priceDataWarm is priceData without the measured-counter plumbing. Every
// state-changing call (TLB fill, L1D access/run, writeback drain, L2 access)
// is the same call in the same order as the measured path, so warmup leaves
// bit-identical cache state.
func (m *Machine) priceDataWarm(s *Stream, addr mem.Addr, size uint32, write bool) {
	first := mem.LineOf(addr)
	nLines := mem.LinesTouched(addr, uint64(size))
	core := s.core
	if nLines == 1 && first == core.lastData {
		core.tlb.Hits++
		core.l1d.HitAgain(first, write)
		return
	}
	if nLines == 1 {
		core.lastData = first
	} else {
		core.lastData = 0
	}

	if key := cache.Key(uint64(addr), s.pageShiftOf(addr)); key == core.tlbKey {
		core.tlb.Hits++
	} else {
		core.tlbKey = key
		core.tlb.Access(key)
	}

	l2 := s.l2
	if nLines == 1 {
		hit, _, victim := s.core.l1d.Access(first, write)
		if !hit {
			if victim.Valid && victim.Dirty {
				l2.c.WriteBack(victim.Line)
			}
			m.l2AccessWarm(l2, first, write)
		}
		return
	}
	misses := s.core.l1d.AccessRun(first, nLines, write, m.runScratch[:0])
	m.runScratch = misses
	for j := range misses {
		rm := &misses[j]
		if v := rm.Victim; v.Valid && v.Dirty {
			l2.c.WriteBack(v.Line)
		}
		m.l2AccessWarm(l2, rm.Line, write)
	}
}

// l2AccessWarm is l2Access without counter attribution: the L2 lookup, the
// prefetcher consultation and the prefetch installs still happen — they are
// state transitions warmup exists to produce — but hit/miss class counting
// and bus accounting are dropped.
func (m *Machine) l2AccessWarm(l2 *l2State, line uint64, write bool) {
	hit, _, _ := l2.c.Access(line, write)
	if hit {
		return
	}
	if l2.pf != nil {
		for _, pl := range l2.pf.OnMiss(line) {
			l2.c.Install(pl, true)
		}
	}
}
