package machine

import (
	"context"
	"fmt"

	"webmm/internal/cache"
	"webmm/internal/cpu"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// Driver produces the work of one runtime process (one hardware thread). A
// driver is constructed around the Env the machine hands it (the Env is the
// process's address space and event recorder) and generates web
// transactions in bounded slices so event buffers stay small at full
// workload scale.
type Driver interface {
	// StepTransaction generates the next slice of the current
	// transaction into the stream's Env, returning true when the
	// transaction is complete. The machine prices the emitted events
	// between calls.
	StepTransaction() bool
}

// Stream is one hardware thread running one runtime process.
type Stream struct {
	ID   int
	Core int
	Env  *sim.Env

	// core and l2 are the stream's fixed position in the hierarchy,
	// resolved once at construction so pricing never re-derives them.
	core *coreState
	l2   *l2State

	// counters accumulate measured (post-warmup) events by class.
	counters [sim.NumClasses]cpu.Counters
	txns     uint64

	// Page-shift region cache: the last PageShiftRegion answer from the
	// stream's address space. Consecutive events in the same large
	// mapping (or the same gap between large mappings) skip the
	// binary search; LargeEpoch revalidates after any Map/Unmap of a
	// large mapping.
	psEpoch uint64
	psLo    mem.Addr
	psHi    mem.Addr
	psShift uint8
}

// pageShiftOf resolves the page size backing a, serving repeats from the
// cached region.
func (s *Stream) pageShiftOf(a mem.Addr) uint8 {
	as := s.Env.AS
	if e := as.LargeEpoch(); e == s.psEpoch && s.psLo <= a && a < s.psHi {
		return s.psShift
	}
	shift, lo, hi := as.PageShiftRegion(a)
	s.psEpoch, s.psLo, s.psHi, s.psShift = as.LargeEpoch(), lo, hi, shift
	return shift
}

// coreState holds the per-core private structures (shared by the core's
// hardware threads, as on Niagara).
type coreState struct {
	l1d, l1i *cache.Cache
	tlb      *cache.TLB
}

// l2State is one L2 cache cluster with its prefetcher.
type l2State struct {
	c  *cache.Cache
	pf *cache.Prefetcher
}

// RoundSample is one pricing round's per-class hardware-counter delta,
// delivered to a Machine's Sampler. It is the telemetry layer's window into
// per-component cycle and miss attribution over time: each sample covers
// exactly one round, so a consumer can plot counter traffic per round or
// aggregate windows of any width.
type RoundSample struct {
	// Round numbers the samples from 0 across the machine's lifetime.
	Round int
	// Measuring reports whether the round was measured (post-warmup).
	// Warmup rounds deliver zero deltas because only measured rounds
	// accumulate counters.
	Measuring bool
	// ByClass is the counter delta of this round, by event class.
	ByClass [sim.NumClasses]cpu.Counters
}

// Machine wires streams, cores, L2 clusters and the bus together and prices
// event streams deterministically.
type Machine struct {
	Plat   Platform
	NCores int

	// Sampler, when non-nil, receives one RoundSample after every pricing
	// round (Run rounds and PriceMeasured calls). The delta computation
	// runs only when a sampler is attached, so the nil case costs one
	// branch per round.
	Sampler func(RoundSample)

	streams []*Stream
	cores   []*coreState
	l2s     []*l2State

	// Sampler bookkeeping: the round counter and the class totals at the
	// previous sample, for delta computation.
	sampleRound int
	lastClass   [sim.NumClasses]cpu.Counters

	// quantum is how many events each stream contributes per round-robin
	// turn while pricing, approximating concurrent execution in the
	// shared caches.
	quantum int

	measuring bool

	// cursors and done are scratch reused across priceRound and Run
	// calls, keeping the per-round pricing path allocation-free (a full
	// experiment prices tens of thousands of rounds).
	cursors []evCursor
	done    []bool
}

// evCursor walks one stream's buffered events during priceRound.
type evCursor struct {
	ev  []sim.Event
	pos int
}

// streamSpan is the address-space span reserved per stream (per process).
const streamSpan = 1 << 40

// New builds a machine with nCores active cores of the platform. The
// allocCode/appCode sizes configure the per-class code footprints (the
// allocator under test reports its own code size). seed derives every
// stream's RNG.
func New(p Platform, nCores int, allocCode, appCode uint64, seed uint64) *Machine {
	if nCores < 1 || nCores > p.MaxCores {
		panic(fmt.Sprintf("machine: nCores %d out of range 1..%d", nCores, p.MaxCores))
	}
	m := &Machine{Plat: p, NCores: nCores, quantum: 64}
	code := sim.NewCodeLayout(allocCode, appCode)
	root := sim.NewRNG(seed)

	nThreads := p.Threads(nCores)
	for i := 0; i < nThreads; i++ {
		as := mem.NewAddressSpace(mem.Addr(uint64(i+2)<<40), streamSpan, p.LargePageShift)
		env := sim.NewEnv(as, code, root.Uint64())
		m.streams = append(m.streams, &Stream{
			ID: i, Core: i / p.ThreadsPerCore, Env: env,
		})
	}
	for c := 0; c < nCores; c++ {
		m.cores = append(m.cores, &coreState{
			l1d: cache.New(p.L1D),
			l1i: cache.New(p.L1I),
			tlb: cache.NewTLB(p.TLBEntries),
		})
	}
	nL2 := (nCores + p.CoresPerL2 - 1) / p.CoresPerL2
	for i := 0; i < nL2; i++ {
		s := &l2State{c: cache.New(p.L2)}
		if p.Prefetch != nil {
			s.pf = cache.NewPrefetcher(p.Prefetch.Trackers, p.Prefetch.Depth)
		}
		m.l2s = append(m.l2s, s)
	}
	for _, s := range m.streams {
		s.core = m.cores[s.Core]
		s.l2 = m.l2ForCore(s.Core)
	}
	m.cursors = make([]evCursor, len(m.streams))
	m.done = make([]bool, len(m.streams))
	return m
}

// Streams returns the machine's streams, one per hardware thread. Callers
// construct a Driver around each stream's Env before calling Run.
func (m *Machine) Streams() []*Stream { return m.streams }

// NumStreams returns the number of hardware threads.
func (m *Machine) NumStreams() int { return len(m.streams) }

// PriceSetup prices the events emitted during driver construction (allocator
// initialization) without measuring them, so setup cost warms the caches but
// does not pollute per-transaction statistics.
func (m *Machine) PriceSetup() {
	m.measuring = false
	m.priceRound()
}

// PriceMeasured prices all buffered events into the measured counters and
// counts one transaction per stream. It serves callers that drive the
// streams' Envs directly (e.g. the webmm.Sandbox) rather than through Run.
func (m *Machine) PriceMeasured() {
	m.measuring = true
	for _, s := range m.streams {
		s.txns++
	}
	m.priceRound()
	m.measuring = false
	m.sample(true)
}

// Run executes warmup+measure transactions on every stream. Warmup rounds
// warm caches, TLBs and allocator free lists; measured rounds accumulate the
// per-class hardware counters used by Solve. Within a round, drivers
// generate slices that are priced interleaved, modelling the concurrent
// execution of the runtime processes.
func (m *Machine) Run(drivers []Driver, warmup, measure int) {
	_ = m.RunContext(context.Background(), drivers, warmup, measure)
}

// RunContext is Run with cooperative cancellation: between pricing rounds
// the loop polls ctx through a sim.Checkpoint and returns ctx's error once
// it is cancelled, leaving the machine's counters at whatever the completed
// rounds accumulated. A cancelled machine must not be Solved or reused —
// the caller reports the cell failed and discards it. An uncancellable ctx
// (context.Background) makes the guard a nil *Checkpoint, so the hot loop
// pays one nil check per pricing round — BenchmarkFig1Cell cannot tell the
// difference.
func (m *Machine) RunContext(ctx context.Context, drivers []Driver, warmup, measure int) error {
	if len(drivers) != len(m.streams) {
		panic(fmt.Sprintf("machine: %d drivers for %d streams", len(drivers), len(m.streams)))
	}
	cp := sim.NewCheckpoint(ctx)
	done := m.done
	for round := 0; round < warmup+measure; round++ {
		m.measuring = round >= warmup
		for i := range done {
			done[i] = false
		}
		remaining := len(drivers)
		for remaining > 0 {
			if cp.Hit() {
				return cp.Err()
			}
			for i, d := range drivers {
				if done[i] {
					continue
				}
				if d.StepTransaction() {
					done[i] = true
					remaining--
					if m.measuring {
						m.streams[i].txns++
					}
				}
			}
			m.priceRound()
		}
		m.sample(m.measuring)
	}
	return nil
}

// sample delivers one RoundSample — the per-class counter delta since the
// previous sample — to the attached Sampler. With no Sampler attached, the
// whole computation is skipped; pricing itself is untouched either way, so
// sampling can never perturb simulation results.
func (m *Machine) sample(measuring bool) {
	if m.Sampler == nil {
		return
	}
	var totals [sim.NumClasses]cpu.Counters
	for _, s := range m.streams {
		for cls := 0; cls < sim.NumClasses; cls++ {
			totals[cls].Add(s.counters[cls])
		}
	}
	out := RoundSample{Round: m.sampleRound, Measuring: measuring, ByClass: totals}
	for cls := 0; cls < sim.NumClasses; cls++ {
		out.ByClass[cls].Sub(m.lastClass[cls])
	}
	m.lastClass = totals
	m.sampleRound++
	m.Sampler(out)
}

// priceRound prices all buffered events, interleaving streams round-robin in
// fixed quanta so that concurrent cache sharing and bus pressure are
// represented, then drains every Env.
func (m *Machine) priceRound() {
	cursors := m.cursors
	remaining := 0
	for i, s := range m.streams {
		cursors[i] = evCursor{ev: s.Env.Events()}
		if len(cursors[i].ev) > 0 {
			remaining++
		}
	}
	for remaining > 0 {
		for i := range cursors {
			c := &cursors[i]
			if c.pos >= len(c.ev) {
				continue
			}
			end := c.pos + m.quantum
			if end >= len(c.ev) {
				end = len(c.ev)
				remaining--
			}
			s := m.streams[i]
			for _, ev := range c.ev[c.pos:end] {
				m.price(s, ev)
			}
			c.pos = end
		}
	}
	for _, s := range m.streams {
		instr := s.Env.Drain()
		if m.measuring {
			for cls := 0; cls < sim.NumClasses; cls++ {
				s.counters[cls].Instr += instr[cls]
			}
		}
	}
}

// price routes one event through the stream's cache hierarchy. This is the
// hottest function in the simulator: an event can touch many lines (large
// copies, long fetch runs), so everything that is constant across the run of
// lines — the stream's core and L2 cluster, the counter pointer, and the
// measured-counter branches themselves — is resolved or accumulated outside
// the per-line loop. Misses are tallied into a register and flushed to the
// counters once per event.
func (m *Machine) price(s *Stream, ev sim.Event) {
	core := s.core
	l2 := s.l2
	ctr := &s.counters[ev.Class]
	meas := m.measuring

	first := mem.LineOf(ev.Addr)
	nLines := mem.LinesTouched(ev.Addr, uint64(ev.Size))

	if ev.Kind == sim.IFetch {
		l1i := core.l1i
		var miss uint64
		for l := uint64(0); l < nLines; l++ {
			line := first + l
			hit, _, _ := l1i.Access(line, false)
			if hit {
				continue // instruction lines are never dirty
			}
			miss++
			m.l2Access(l2, ctr, line, false, true, meas)
		}
		if meas {
			ctr.L1IAcc += nLines
			ctr.L1IMiss += miss
		}
		return
	}

	// Data access: one TLB lookup per event (page-crossing objects are
	// rare and a second lookup would not change the shape of anything).
	pageShift := s.pageShiftOf(ev.Addr)
	if !core.tlb.Access(cache.Key(uint64(ev.Addr), pageShift)) && meas {
		ctr.TLBMiss++
	}

	write := ev.Kind == sim.Write
	l1d := core.l1d
	var miss uint64
	for l := uint64(0); l < nLines; l++ {
		line := first + l
		hit, _, victim := l1d.Access(line, write)
		if hit {
			continue
		}
		miss++
		if victim.Valid && victim.Dirty {
			// Dirty L1 eviction drains into the L2.
			wbVictim := l2.c.WriteBack(victim.Line)
			if wbVictim.Valid && wbVictim.Dirty && meas {
				ctr.BusWrite++
			}
		}
		m.l2Access(l2, ctr, line, write, false, meas)
	}
	if meas {
		ctr.L1DAcc += nLines
		ctr.L1DMiss += miss
	}
}

func (m *Machine) l2ForCore(coreID int) *l2State {
	return m.l2s[coreID/m.Plat.CoresPerL2]
}

// l2Access performs the shared-L2 lookup and, on a miss, the memory fetch,
// prefetcher consultation and writeback accounting. The caller resolves the
// stream's L2 cluster once per event rather than once per line.
func (m *Machine) l2Access(l2 *l2State, ctr *cpu.Counters, line uint64, write, ifetch, meas bool) {
	hit, wasPrefetched, victim := l2.c.Access(line, write)
	if hit {
		if meas {
			switch {
			case ifetch:
				ctr.L2HitIF++
			case write:
				ctr.L2HitWr++
			default:
				ctr.L2HitRd++
			}
			if wasPrefetched {
				ctr.PfHit++
			}
		}
		return
	}
	if meas {
		switch {
		case ifetch:
			ctr.L2MissIF++
		case write:
			ctr.L2MissWr++
		default:
			ctr.L2MissRd++
		}
		ctr.BusRead++
		if victim.Valid && victim.Dirty {
			ctr.BusWrite++
		}
	}
	if l2.pf != nil {
		for _, pl := range l2.pf.OnMiss(line) {
			installed, v := l2.c.Install(pl, true)
			if installed && meas {
				ctr.BusPf++
				if v.Valid && v.Dirty {
					ctr.BusWrite++
				}
			}
		}
	}
}
