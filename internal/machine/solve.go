package machine

import (
	"math"

	"webmm/internal/cpu"
	"webmm/internal/memsys"
	"webmm/internal/sim"
)

// ClassTime is the cycle and instruction attribution of one software
// component (the paper's Figure 6/11 breakdown).
type ClassTime struct {
	Cycles float64
	Instr  uint64
}

// Result is the solved outcome of a Run.
type Result struct {
	Platform string
	Cores    int
	Threads  int

	// Txns is the total number of measured transactions across streams.
	Txns uint64

	// WallCycles is the busy time of the slowest core; WallSeconds the
	// same in seconds at the platform clock.
	WallCycles  float64
	WallSeconds float64

	// Throughput is measured transactions per second.
	Throughput float64

	// BusUtil is the converged link utilization; BusMult the average
	// memory latency multiplier it implies. (The names predate the
	// memory-system seam and are kept for result compatibility; for the
	// bus model they mean exactly what they say.)
	BusUtil float64
	BusMult float64

	// Mem carries the memory system's observed statistics when the
	// platform runs one that keeps any (the DRAM model); nil — and absent
	// from the JSON encoding — for the default bus model, which is what
	// keeps pre-seam result fingerprints byte-identical.
	Mem *memsys.Stats `json:",omitempty"`

	// ByClass attributes cycles and instructions to memory management,
	// application, and OS work.
	ByClass [sim.NumClasses]ClassTime

	// Totals sums the hardware counters over all streams and classes;
	// ClassTotals keeps the per-class split.
	Totals      cpu.Counters
	ClassTotals [sim.NumClasses]cpu.Counters
}

// IPC returns retired instructions per attributed cycle over everything
// measured — the headline fidelity metric the sampled mode's error bound is
// stated against: both numerator and denominator come from the same measured
// rounds, so it is comparable between full and sampled runs.
func (r Result) IPC() float64 {
	var cycles float64
	for _, ct := range r.ByClass {
		cycles += ct.Cycles
	}
	if cycles == 0 {
		return 0
	}
	return float64(r.Totals.Instr) / cycles
}

// CyclesPerTxn returns total attributed cycles per measured transaction.
func (r Result) CyclesPerTxn() float64 {
	var total float64
	for _, ct := range r.ByClass {
		total += ct.Cycles
	}
	if r.Txns == 0 {
		return 0
	}
	return total / float64(r.Txns)
}

// ClassCyclesPerTxn returns the per-transaction cycles of one class.
func (r Result) ClassCyclesPerTxn(c sim.Class) float64 {
	if r.Txns == 0 {
		return 0
	}
	return r.ByClass[c].Cycles / float64(r.Txns)
}

// PerTxn divides a raw event count by the number of measured transactions.
func (r Result) PerTxn(count uint64) float64 {
	if r.Txns == 0 {
		return 0
	}
	return float64(count) / float64(r.Txns)
}

// Solve converges the timing fixed point: stalls depend on the memory
// latency multiplier, the multiplier depends on utilization, and utilization
// depends on wall time, which depends on stalls. The load counters never
// change, so damped iteration converges quickly.
//
// The memory system contributes two fixed, pre-converged quantities on top
// of the utilization feedback: an average service factor folded into
// LatencyMultiplier (row-buffer economics) and a per-core factor (scheduling
// favoritism) that scales each core's multiplier. Both are exactly 1 for the
// bus model, making this arithmetic bit-identical to the pre-seam solver.
func (m *Machine) Solve() Result {
	p := m.Plat
	msys := p.Mem
	nStreams := len(m.streams)

	// Per-core relative latency factors are frozen before iteration; the
	// bus model returns exactly 1, and mult*1 is exact in IEEE arithmetic.
	coreFactor := make([]float64, m.NCores)
	for c := range coreFactor {
		coreFactor[c] = msys.CoreFactor(c)
	}

	// Per-stream per-class instruction cycles are constant.
	instrCyc := make([][sim.NumClasses]float64, nStreams)
	var busTxns, totalTxns uint64
	var totals cpu.Counters
	var classTotals [sim.NumClasses]cpu.Counters
	for i, s := range m.streams {
		for cls := 0; cls < sim.NumClasses; cls++ {
			instrCyc[i][cls] = p.Core.InstrCycles(s.counters[cls])
			totals.Add(s.counters[cls])
			busTxns += s.counters[cls].BusTxns()
			classTotals[cls].Add(s.counters[cls])
		}
		totalTxns += s.txns
	}

	mult := 1.0
	var wall, util float64
	stall := make([][sim.NumClasses]float64, nStreams)
	for iter := 0; iter < 60; iter++ {
		for i, s := range m.streams {
			coreMult := mult * coreFactor[s.Core]
			for cls := 0; cls < sim.NumClasses; cls++ {
				stall[i][cls] = p.Core.StallCycles(s.counters[cls], coreMult, m.NCores)
			}
		}
		wall = 0
		for c := 0; c < m.NCores; c++ {
			var ic, st []float64
			for i := range m.streams {
				if m.streams[i].Core != c {
					continue
				}
				ic = append(ic, sum3(instrCyc[i]))
				st = append(st, sum3(stall[i]))
			}
			if t := p.Core.CoreTime(ic, st); t > wall {
				wall = t
			}
		}
		util = msys.Utilization(busTxns, wall)
		next := msys.LatencyMultiplier(util)
		if math.Abs(next-mult) < 1e-9 {
			mult = next
			break
		}
		mult = 0.5*mult + 0.5*next
	}

	res := Result{
		Platform:   p.Name,
		Cores:      m.NCores,
		Threads:    len(m.streams),
		Txns:        totalTxns,
		WallCycles:  wall,
		BusUtil:     math.Min(util, msys.Link().MaxUtil),
		BusMult:     mult,
		Mem:         msys.Stats(),
		Totals:      totals,
		ClassTotals: classTotals,
	}
	if wall > 0 {
		res.WallSeconds = wall / p.Core.FreqHz
		res.Throughput = float64(totalTxns) / res.WallSeconds
	}

	// Attribute cycles per class. The SMT hide factor discounts stall
	// time uniformly, matching how a profiler would see it (the core is
	// busy with another thread during hidden stalls).
	hide := p.Core.HideFactor(p.ThreadsPerCore)
	for i, s := range m.streams {
		for cls := 0; cls < sim.NumClasses; cls++ {
			res.ByClass[cls].Cycles += instrCyc[i][cls] + stall[i][cls]*hide
			res.ByClass[cls].Instr += s.counters[cls].Instr
		}
	}
	return res
}

// StreamCounters returns the measured per-class counters of stream i (for
// tests and detailed reports).
func (m *Machine) StreamCounters(i int) [sim.NumClasses]cpu.Counters {
	return m.streams[i].counters
}

func sum3(a [sim.NumClasses]float64) float64 {
	var t float64
	for _, v := range a {
		t += v
	}
	return t
}
