package machine

import (
	"context"
	"fmt"

	"webmm/internal/sim"
)

// SamplePlan shapes RunSampled's SMARTS-style round schedule (Wunderlich et
// al., ISCA 2003). Each period of Period transaction rounds begins with
// Detail rounds that are generated, priced, and measured, and ends with Warm
// rounds that are generated and priced but not measured — they re-warm the
// caches, TLBs and allocator state immediately before the next period's
// detail rounds. Every round in between is skipped outright.
//
// Skipping a round means the transactions it would have run never happen —
// neither generated nor priced. This is transaction-population sampling, not
// trace fast-forwarding: event generation is a quarter of the simulator's
// runtime, so a mode that still generated every skipped transaction could
// never reach the speedups sampling exists for. Per-transaction statistics
// stay unbiased because measured counters and the transaction count come
// from exactly the same detail rounds; the cost is that long-horizon state
// drift (e.g. slow heap growth across thousands of transactions) is sampled
// at period granularity rather than continuously.
type SamplePlan struct {
	// Period is the schedule's cycle length in transaction rounds.
	Period int
	// Detail is the number of measured rounds at the start of each period.
	Detail int
	// Warm is the number of unmeasured warming rounds at the end of each
	// period (adjacent to the next period's detail rounds).
	Warm int
}

// DefaultSamplePlan is the study's sampled-fidelity schedule: 2 executed
// rounds per 16 (one measured, one warming), an 8x round-count reduction.
func DefaultSamplePlan() SamplePlan {
	return SamplePlan{Period: 16, Detail: 1, Warm: 1}
}

// Validate checks the plan's internal consistency.
func (p SamplePlan) Validate() error {
	if p.Period < 1 || p.Detail < 1 || p.Warm < 0 {
		return fmt.Errorf("machine: invalid sample plan %+v", p)
	}
	if p.Detail+p.Warm > p.Period {
		return fmt.Errorf("machine: sample plan %+v overcommits its period", p)
	}
	return nil
}

// RunSampled executes the measurement phase of a run under plan's sampling
// schedule: detail rounds are priced and measured exactly as RunContext's
// measured rounds are, warming rounds are priced unmeasured, and skipped
// rounds cost nothing at all. measure counts scheduled rounds — the
// full-fidelity equivalent — so a caller switching fidelity modes changes
// only how many of those rounds execute, not the schedule's span. Warmup
// belongs to the caller (run RunContext(ctx, drivers, warmup, 0) first),
// matching how the experiment runner phases its cells.
//
// The machine's counters afterwards describe only the detail rounds, and
// Solve's per-transaction quantities are unbiased for the same reason; its
// absolute Throughput and WallCycles describe the sampled transaction
// population, not the full schedule.
func (m *Machine) RunSampled(ctx context.Context, drivers []Driver, measure int, plan SamplePlan) error {
	if err := plan.Validate(); err != nil {
		return err
	}
	if len(drivers) != len(m.streams) {
		panic(fmt.Sprintf("machine: %d drivers for %d streams", len(drivers), len(m.streams)))
	}
	cp := sim.NewCheckpoint(ctx)
	done := m.done
	for round := 0; round < measure; round++ {
		q := round % plan.Period
		detail := q < plan.Detail
		if !detail && q < plan.Period-plan.Warm {
			continue // fast-forward: no generation, no pricing
		}
		m.measuring = detail
		for i := range done {
			done[i] = false
		}
		remaining := len(drivers)
		for remaining > 0 {
			if cp.Hit() {
				return cp.Err()
			}
			for i, d := range drivers {
				if done[i] {
					continue
				}
				if d.StepTransaction() {
					done[i] = true
					remaining--
					if detail {
						m.streams[i].txns++
					}
				}
			}
			m.priceRound()
		}
		m.sample(detail)
	}
	return nil
}
