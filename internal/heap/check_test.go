package heap

import "testing"

// stubAlloc is a minimal in-test Allocator: bump addresses, free-list reuse
// of the most recently freed object, enough behaviour to exercise every
// Checked path without importing a real allocator (which would cycle).
type stubAlloc struct {
	next     Ptr
	freeList []Ptr
	freeAll  bool
	perFree  bool
	oomAt    uint64 // Malloc fails once next reaches this address (0 = never)
	stats    Stats
}

func newStub() *stubAlloc {
	return &stubAlloc{next: 0x1000, perFree: true, freeAll: true}
}

func (s *stubAlloc) Name() string          { return "stub" }
func (s *stubAlloc) CodeSize() uint64      { return 1024 }
func (s *stubAlloc) SupportsFree() bool    { return s.perFree }
func (s *stubAlloc) SupportsFreeAll() bool { return s.freeAll }
func (s *stubAlloc) PeakFootprint() uint64 { return 0 }
func (s *stubAlloc) ResetPeak()            {}
func (s *stubAlloc) Stats() Stats          { return s.stats }

func (s *stubAlloc) Malloc(size uint64) Ptr {
	s.stats.Mallocs++
	if n := len(s.freeList); n > 0 {
		p := s.freeList[n-1]
		s.freeList = s.freeList[:n-1]
		return p
	}
	if s.oomAt != 0 && uint64(s.next) >= s.oomAt {
		return 0
	}
	p := s.next
	s.next += Ptr((size + 15) &^ 7)
	return p
}

func (s *stubAlloc) Free(p Ptr) {
	s.stats.Frees++
	s.freeList = append(s.freeList, p)
}

func (s *stubAlloc) Realloc(p Ptr, oldSize, newSize uint64) Ptr {
	s.stats.Reallocs++
	if p == 0 {
		return s.Malloc(newSize)
	}
	np := s.Malloc(newSize)
	if np == 0 {
		return 0
	}
	s.Free(p)
	return np
}

func (s *stubAlloc) FreeAll() {
	s.stats.FreeAlls++
	s.freeList = s.freeList[:0]
}

func TestCheckedCleanTrace(t *testing.T) {
	c := NewChecked(newStub())
	p := c.Malloc(32)
	q := c.Malloc(64)
	if p == 0 || q == 0 {
		t.Fatal("malloc failed")
	}
	q2 := c.Realloc(q, 64, 128)
	if q2 == 0 {
		t.Fatal("realloc failed")
	}
	c.Free(p)
	c.Free(q2)
	c.FreeAll()
	if err := c.Err(); err != nil {
		t.Fatalf("clean trace reported %v", err)
	}
}

func TestCheckedDoubleFree(t *testing.T) {
	c := NewChecked(newStub())
	p := c.Malloc(16)
	c.Free(p)
	c.Free(p)
	errs := c.Errors()
	if len(errs) != 1 || errs[0].Kind != ErrDoubleFree {
		t.Fatalf("want one ErrDoubleFree, got %v", errs)
	}
	// The inner allocator saw only one free: the misuse was contained.
	if got := c.Inner().Stats().Frees; got != 1 {
		t.Fatalf("inner saw %d frees, want 1", got)
	}
}

func TestCheckedInvalidFree(t *testing.T) {
	c := NewChecked(newStub())
	c.Malloc(16)
	c.Free(0xdead0)
	errs := c.Errors()
	if len(errs) != 1 || errs[0].Kind != ErrInvalidFree {
		t.Fatalf("want one ErrInvalidFree, got %v", errs)
	}
}

func TestCheckedReallocMisuse(t *testing.T) {
	c := NewChecked(newStub())
	p := c.Malloc(16)
	c.Free(p)
	if np := c.Realloc(p, 16, 32); np != 0 {
		t.Fatalf("realloc-after-free returned %#x, want 0", np)
	}
	if np := c.Realloc(0xdead0, 16, 32); np != 0 {
		t.Fatalf("realloc of unknown pointer returned %#x, want 0", np)
	}
	q := c.Malloc(40)
	if np := c.Realloc(q, 999, 80); np != 0 {
		t.Fatalf("realloc with wrong oldSize returned %#x, want 0", np)
	}
	kinds := map[ErrKind]int{}
	for _, e := range c.Errors() {
		kinds[e.Kind]++
	}
	if kinds[ErrReallocAfterFree] != 1 || kinds[ErrInvalidRealloc] != 2 {
		t.Fatalf("unexpected error mix: %v", c.Errors())
	}
	// q must still be valid after the rejected realloc.
	c.Free(q)
	if n := len(c.Errors()); n != 3 {
		t.Fatalf("freeing q after rejected realloc added errors: %v", c.Errors())
	}
}

func TestCheckedAddressReuseIsNotDoubleFree(t *testing.T) {
	c := NewChecked(newStub())
	p := c.Malloc(16)
	c.Free(p)
	p2 := c.Malloc(16) // stub reuses the freed address LIFO
	if p2 != p {
		t.Fatalf("stub did not reuse address: %#x vs %#x", p2, p)
	}
	c.Free(p2)
	if err := c.Err(); err != nil {
		t.Fatalf("legitimate reuse flagged: %v", err)
	}
}

func TestCheckedLeakAtFreeAll(t *testing.T) {
	c := NewChecked(newStub())
	c.CheckLeaks = true
	c.Malloc(16)
	c.Malloc(32)
	c.FreeAll()
	leaks := 0
	for _, e := range c.Errors() {
		if e.Kind == ErrLeak {
			leaks++
		}
	}
	if leaks != 2 {
		t.Fatalf("want 2 leaks, got %v", c.Errors())
	}
	// After FreeAll the slate is clean: fresh allocations are fine.
	p := c.Malloc(8)
	c.Free(p)
	if len(c.Errors()) != 2 {
		t.Fatalf("post-FreeAll activity added errors: %v", c.Errors())
	}
}

func TestCheckedOOMPropagates(t *testing.T) {
	s := newStub()
	s.oomAt = uint64(s.next) // every fresh mapping fails
	c := NewChecked(s)
	if p := c.Malloc(16); p != 0 {
		t.Fatalf("expected OOM, got %#x", p)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("OOM is not misuse, but got %v", err)
	}
}

func TestCheckedErrorCap(t *testing.T) {
	c := NewChecked(newStub())
	for i := 0; i < maxHeapErrors+10; i++ {
		c.Free(Ptr(0xbad000 + i*8))
	}
	if len(c.Errors()) != maxHeapErrors {
		t.Fatalf("cap not applied: %d errors", len(c.Errors()))
	}
	if c.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", c.Dropped())
	}
}
