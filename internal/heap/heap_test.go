package heap

import (
	"testing"
	"testing/quick"
)

func TestSizeToClassPaperRule(t *testing.T) {
	// Paper §3.2: multiples of 8 below 128, multiples of 32 below 512,
	// powers of two above.
	cases := []struct {
		size    uint64
		rounded uint64
	}{
		{1, 8}, {7, 8}, {8, 8}, {9, 16}, {24, 24}, {120, 120}, {127, 128}, {128, 128},
		{129, 160}, {160, 160}, {161, 192}, {500, 512}, {512, 512},
		{513, 1024}, {1024, 1024}, {1025, 2048}, {4000, 4096}, {10000, 16384}, {16384, 16384},
	}
	for _, tc := range cases {
		c := SizeToClass(tc.size)
		if got := ClassSize(c); got != tc.rounded {
			t.Errorf("size %d -> class %d size %d, want %d", tc.size, c, got, tc.rounded)
		}
	}
}

func TestClassSizeMonotone(t *testing.T) {
	prev := uint64(0)
	for c := 0; c < NumClasses; c++ {
		s := ClassSize(c)
		if s <= prev {
			t.Fatalf("class %d size %d not greater than previous %d", c, s, prev)
		}
		prev = s
	}
	if prev != MaxClassSize {
		t.Fatalf("largest class size %d, want %d", prev, MaxClassSize)
	}
}

func TestSizeToClassRoundTripProperty(t *testing.T) {
	f := func(raw uint16) bool {
		size := uint64(raw%MaxClassSize) + 1
		c := SizeToClass(size)
		if c < 0 || c >= NumClasses {
			return false
		}
		cs := ClassSize(c)
		if cs < size {
			return false // class must fit the request
		}
		// The class must be the smallest that fits.
		return c == 0 || ClassSize(c-1) < size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRoundedSizeLargeObjects(t *testing.T) {
	if got := RoundedSize(MaxClassSize + 1); got != 20480 {
		t.Errorf("RoundedSize(16385) = %d, want 20480 (page rounded)", got)
	}
	if got := RoundedSize(100000); got%4096 != 0 || got < 100000 {
		t.Errorf("RoundedSize(100000) = %d, want page-rounded >= request", got)
	}
}

func TestSizeToClassPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SizeToClass(0) did not panic")
		}
	}()
	SizeToClass(0)
}

func TestFreeListLIFO(t *testing.T) {
	var f FreeList
	f.Push(100)
	f.Push(200)
	f.Push(300)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if p := f.Peek(); p != 300 {
		t.Fatalf("Peek = %d, want 300 (LIFO)", p)
	}
	for _, want := range []Ptr{300, 200, 100} {
		if got := f.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if got := f.Pop(); got != 0 {
		t.Fatalf("Pop on empty = %d, want 0", got)
	}
}

func TestFreeListPopTailFIFO(t *testing.T) {
	var f FreeList
	f.Push(1)
	f.Push(2)
	f.Push(3)
	if got := f.PopTail(); got != 1 {
		t.Fatalf("PopTail = %d, want oldest (1)", got)
	}
	if got := f.Pop(); got != 3 {
		t.Fatalf("Pop after PopTail = %d, want 3", got)
	}
}

func TestFreeListReset(t *testing.T) {
	var f FreeList
	for i := Ptr(1); i <= 10; i++ {
		f.Push(i * 64)
	}
	f.Reset()
	if f.Len() != 0 || f.Pop() != 0 {
		t.Fatal("Reset did not empty the list")
	}
}

func TestStatsAvgAllocSize(t *testing.T) {
	s := Stats{Mallocs: 4, BytesRequested: 250}
	if got := s.AvgAllocSize(); got != 62.5 {
		t.Fatalf("AvgAllocSize = %g, want 62.5", got)
	}
	if got := (Stats{}).AvgAllocSize(); got != 0 {
		t.Fatalf("empty AvgAllocSize = %g, want 0", got)
	}
}
