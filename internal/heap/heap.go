// Package heap defines the allocator service-provider interface shared by
// every memory allocator in the study, plus the machinery they have in
// common: size-class maps, free lists whose links live inside the simulated
// objects, and per-allocator statistics.
//
// The paper compares three allocator families for transaction-scoped
// objects (its Table 1):
//
//   - general-purpose allocators supporting bulk freeing (per-object free,
//     bulk free, defragmentation; high malloc/free cost, low bandwidth need)
//   - region-based allocators (bulk free only; lowest cost, high bandwidth)
//   - the defrag-dodging allocator (per-object free, bulk free, *no*
//     defragmentation; low cost, low bandwidth)
//
// All of them implement Allocator. Allocators operate on a simulated
// address space and emit every data-structure touch into a sim.Env so the
// memory-hierarchy simulator can price it.
package heap

import "webmm/internal/mem"

// Ptr is a simulated object address; 0 is the null pointer.
type Ptr = mem.Addr

// Stats counts the allocator API traffic, matching the statistics of the
// paper's Table 3.
type Stats struct {
	Mallocs  uint64
	Frees    uint64
	Reallocs uint64
	FreeAlls uint64

	// BytesRequested sums the sizes the application asked for;
	// BytesAllocated sums the sizes after size-class rounding.
	BytesRequested uint64
	BytesAllocated uint64

	// Bailouts counts transactions abandoned mid-flight because an
	// allocation failed (the PHP engine's "allowed memory size exhausted"
	// bail-out, the Rails process restart). Zero in fault-free runs;
	// omitted from JSON then so existing goldens stay byte-identical.
	Bailouts uint64 `json:",omitempty"`
}

// AvgAllocSize returns the mean requested allocation size, as in Table 3's
// rightmost column (realloc new sizes included via the caller's counting).
func (s Stats) AvgAllocSize() float64 {
	if s.Mallocs == 0 {
		return 0
	}
	return float64(s.BytesRequested) / float64(s.Mallocs)
}

// Allocator is the interface under study. All addresses are simulated; the
// implementations emit their memory touches to the sim.Env they were
// constructed with.
type Allocator interface {
	// Name identifies the allocator in reports ("DDmalloc",
	// "region-based", "default", ...).
	Name() string

	// CodeSize is the simulated instruction footprint of the allocator's
	// code, in bytes. The paper attributes part of DDmalloc's L1I-miss
	// reduction to its smaller code.
	CodeSize() uint64

	// Malloc allocates size bytes and returns the object address.
	Malloc(size uint64) Ptr

	// Free releases one object. Allocators that do not support
	// per-object free (the region family) treat it as a no-op and the
	// runtime is expected not to call it (the paper's Step-1..3
	// modification removes those calls).
	Free(p Ptr)

	// Realloc resizes an object, copying min(oldSize,newSize) payload
	// bytes if it must move. oldSize is supplied by the runtime (our
	// runtimes track object sizes; see DESIGN.md §6).
	Realloc(p Ptr, oldSize, newSize uint64) Ptr

	// FreeAll deallocates every transaction-scoped object at once, as
	// called by the PHP runtime at end of transaction. Allocators
	// without bulk-free support (glibc/Hoard/TCmalloc models) panic.
	FreeAll()

	// SupportsFree reports per-object free capability (Table 1).
	SupportsFree() bool
	// SupportsFreeAll reports bulk-free capability (Table 1).
	SupportsFreeAll() bool

	// PeakFootprint returns the peak memory consumption, in bytes, since
	// the last ResetPeak, using the paper's Figure 9 definition for each
	// family (bytes obtained from the underlying allocator; segments +
	// metadata for DDmalloc; bytes allocated during the transaction for
	// the region allocator).
	PeakFootprint() uint64
	// ResetPeak restarts peak-footprint tracking.
	ResetPeak()

	// Stats returns cumulative API statistics.
	Stats() Stats
}

// FreeList is a LIFO free list whose links are threaded through the first
// word of each free object, exactly as DDmalloc and the thread caches of
// TCmalloc keep them. Push writes the object's link word; Pop reads it.
// The Go-side slice mirrors the list so the simulator does not need backing
// storage for the simulated heap.
type FreeList struct {
	items []Ptr
}

// Len returns the number of free objects on the list.
func (f *FreeList) Len() int { return len(f.items) }

// Push chains p onto the head of the list. The caller is responsible for
// emitting the link-word write (see PushCost) so different allocators can
// attribute it differently.
func (f *FreeList) Push(p Ptr) { f.items = append(f.items, p) }

// Pop removes and returns the head object, or 0 if the list is empty.
func (f *FreeList) Pop() Ptr {
	n := len(f.items)
	if n == 0 {
		return 0
	}
	p := f.items[n-1]
	f.items = f.items[:n-1]
	return p
}

// Peek returns the head object without removing it, or 0 if empty.
func (f *FreeList) Peek() Ptr {
	if n := len(f.items); n > 0 {
		return f.items[n-1]
	}
	return 0
}

// PopTail removes and returns the *oldest* object (FIFO end). Central free
// lists returning memory to spans release old objects first.
func (f *FreeList) PopTail() Ptr {
	if len(f.items) == 0 {
		return 0
	}
	p := f.items[0]
	f.items = f.items[1:]
	return p
}

// Reset drops every entry (bulk free).
func (f *FreeList) Reset() { f.items = f.items[:0] }
