package heap

import "fmt"

// ErrKind classifies a heap-misuse detection by the Checked wrapper.
type ErrKind int

const (
	// ErrDoubleFree: Free of a pointer that was already freed.
	ErrDoubleFree ErrKind = iota
	// ErrInvalidFree: Free of a pointer this heap never returned (or that
	// has been bulk-freed).
	ErrInvalidFree
	// ErrInvalidRealloc: Realloc of a pointer this heap never returned,
	// or with an oldSize that contradicts the recorded allocation.
	ErrInvalidRealloc
	// ErrReallocAfterFree: Realloc of a pointer that was already freed.
	ErrReallocAfterFree
	// ErrLeak: an object still live when FreeAll ran with leak checking
	// enabled.
	ErrLeak
)

func (k ErrKind) String() string {
	switch k {
	case ErrDoubleFree:
		return "double free"
	case ErrInvalidFree:
		return "invalid free"
	case ErrInvalidRealloc:
		return "invalid realloc"
	case ErrReallocAfterFree:
		return "realloc after free"
	case ErrLeak:
		return "leak at freeAll"
	}
	return "unknown heap error"
}

// HeapError is one detected heap misuse. The underlying allocator never
// sees the offending call, so detection is side-effect free: the simulated
// heap stays consistent and the caller keeps running.
type HeapError struct {
	Kind ErrKind
	Op   string // "free", "realloc", "freeAll"
	Ptr  Ptr
	Size uint64 // recorded object size where known
}

func (e *HeapError) Error() string {
	return fmt.Sprintf("heap: %s: %s(%#x) size=%d", e.Kind, e.Op, uint64(e.Ptr), e.Size)
}

// maxHeapErrors caps how many errors a Checked wrapper records; a misuse
// storm (a fuzzer at full tilt) should not grow memory without bound.
const maxHeapErrors = 64

// Checked wraps any Allocator with misuse detection: double free, free of
// an unknown pointer, realloc after free or of an unknown pointer, and —
// when CheckLeaks is set — objects still live at FreeAll. Misuse is
// recorded as a typed *HeapError and NOT forwarded to the inner allocator
// (whose own bookkeeping would otherwise corrupt or panic), so a hardened
// heap degrades gracefully where the bare one dies.
//
// The wrapper is opt-in and costs Go-side map bookkeeping per call; the
// paper-reproduction experiments never wrap, so their numbers are
// untouched.
type Checked struct {
	inner Allocator

	// CheckLeaks makes FreeAll record an ErrLeak for objects that were
	// never freed per-object. Off by default: PHP-style runtimes
	// legitimately abandon everything to freeAll.
	CheckLeaks bool

	live  map[Ptr]uint64 // object -> requested size
	freed map[Ptr]bool   // freed per-object and not yet reused
	errs  []*HeapError
	drops uint64 // errors not recorded because of the cap
}

// NewChecked wraps inner with misuse detection.
func NewChecked(inner Allocator) *Checked {
	return &Checked{
		inner: inner,
		live:  make(map[Ptr]uint64),
		freed: make(map[Ptr]bool),
	}
}

// Inner returns the wrapped allocator.
func (c *Checked) Inner() Allocator { return c.inner }

// Err returns the first recorded misuse, or nil if the trace was clean.
func (c *Checked) Err() error {
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs[0]
}

// Errors returns every recorded misuse (capped; Dropped counts the rest).
func (c *Checked) Errors() []*HeapError { return c.errs }

// Dropped reports how many errors were discarded once the cap was hit.
func (c *Checked) Dropped() uint64 { return c.drops }

// LiveObjects reports how many objects are currently tracked as live.
func (c *Checked) LiveObjects() int { return len(c.live) }

func (c *Checked) record(e *HeapError) {
	if len(c.errs) >= maxHeapErrors {
		c.drops++
		return
	}
	c.errs = append(c.errs, e)
}

// Name implements Allocator.
func (c *Checked) Name() string { return c.inner.Name() + "+checked" }

// CodeSize implements Allocator.
func (c *Checked) CodeSize() uint64 { return c.inner.CodeSize() }

// SupportsFree implements Allocator.
func (c *Checked) SupportsFree() bool { return c.inner.SupportsFree() }

// SupportsFreeAll implements Allocator.
func (c *Checked) SupportsFreeAll() bool { return c.inner.SupportsFreeAll() }

// PeakFootprint implements Allocator.
func (c *Checked) PeakFootprint() uint64 { return c.inner.PeakFootprint() }

// ResetPeak implements Allocator.
func (c *Checked) ResetPeak() { c.inner.ResetPeak() }

// Stats implements Allocator.
func (c *Checked) Stats() Stats { return c.inner.Stats() }

// Malloc implements Allocator.
func (c *Checked) Malloc(size uint64) Ptr {
	p := c.inner.Malloc(size)
	if p != 0 {
		c.live[p] = size
		// The allocator may legitimately hand back a previously freed
		// address; it is live again now.
		delete(c.freed, p)
	}
	return p
}

// Free implements Allocator: misuse is recorded and swallowed; a valid
// free is forwarded.
func (c *Checked) Free(p Ptr) {
	if p == 0 {
		return // free(NULL) is defined as a no-op
	}
	if !c.inner.SupportsFree() {
		// Region-family Free is a no-op by contract; any pointer is
		// equally (in)valid, so there is nothing to check.
		c.inner.Free(p)
		return
	}
	if c.freed[p] {
		c.record(&HeapError{Kind: ErrDoubleFree, Op: "free", Ptr: p})
		return
	}
	size, ok := c.live[p]
	if !ok {
		c.record(&HeapError{Kind: ErrInvalidFree, Op: "free", Ptr: p})
		return
	}
	delete(c.live, p)
	c.freed[p] = true
	c.inner.Free(p)
	_ = size
}

// Realloc implements Allocator. The recorded size is authoritative: a
// caller-supplied oldSize that contradicts it marks the call invalid
// rather than corrupting the inner allocator's copy length.
func (c *Checked) Realloc(p Ptr, oldSize, newSize uint64) Ptr {
	if p == 0 {
		np := c.inner.Realloc(0, 0, newSize)
		if np != 0 {
			c.live[np] = newSize
			delete(c.freed, np)
		}
		return np
	}
	if c.freed[p] {
		c.record(&HeapError{Kind: ErrReallocAfterFree, Op: "realloc", Ptr: p})
		return 0
	}
	rec, ok := c.live[p]
	if !ok {
		c.record(&HeapError{Kind: ErrInvalidRealloc, Op: "realloc", Ptr: p})
		return 0
	}
	if oldSize != rec {
		c.record(&HeapError{Kind: ErrInvalidRealloc, Op: "realloc", Ptr: p, Size: rec})
		return 0
	}
	np := c.inner.Realloc(p, rec, newSize)
	if np == 0 {
		return 0 // OOM: p stays live
	}
	if np != p {
		delete(c.live, p)
		if c.inner.SupportsFree() {
			c.freed[p] = true
		}
	}
	c.live[np] = newSize
	delete(c.freed, np)
	return np
}

// FreeAll implements Allocator: with CheckLeaks set, every object still
// live is recorded as a leak before the bulk free runs. Either way the
// wrapper's tracking resets — the heap is empty afterwards and old
// addresses may be reused.
func (c *Checked) FreeAll() {
	if c.CheckLeaks {
		for p, size := range c.live {
			c.record(&HeapError{Kind: ErrLeak, Op: "freeAll", Ptr: p, Size: size})
		}
	}
	c.inner.FreeAll()
	c.live = make(map[Ptr]uint64)
	c.freed = make(map[Ptr]bool)
}
