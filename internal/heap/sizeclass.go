package heap

// Size-class map used by DDmalloc, quoted from the paper (§3.2):
//
//	"Our current implementation 1) rounds up the requested size to a
//	multiple of 8 bytes if the size is smaller than 128 bytes, 2) rounds
//	up to a multiple of 32 bytes if the size is smaller than 512 bytes,
//	and 3) rounds up to the nearest power of two for larger sizes."
//
// With a 32 KiB segment, objects above half a segment (16 KiB) are "large"
// and bypass the class map.

const (
	// SmallCutoff and MidCutoff delimit the three rounding regimes.
	SmallCutoff = 128
	MidCutoff   = 512

	numSmall = SmallCutoff / 8             // classes 8,16,...,128
	numMid   = (MidCutoff - SmallCutoff) / 32 // classes 160,192,...,512

	// NumClasses is the total number of size classes for a 32 KiB
	// segment (power-of-two classes run 1 KiB .. 16 KiB).
	NumClasses = numSmall + numMid + 5
)

// SizeToClass maps a request size to its size-class index. It panics on
// size 0 or on sizes above MaxClassSize (large objects are the caller's
// problem, as in DDmalloc).
func SizeToClass(size uint64) int {
	switch {
	case size == 0:
		panic("heap: SizeToClass(0)")
	case size <= SmallCutoff:
		return int((size+7)/8) - 1
	case size <= MidCutoff:
		return numSmall + int((size-SmallCutoff+31)/32) - 1
	case size <= MaxClassSize:
		// Power-of-two classes: 1024, 2048, 4096, 8192, 16384.
		c := numSmall + numMid
		for s := uint64(1024); s < size; s <<= 1 {
			c++
		}
		return c
	default:
		panic("heap: SizeToClass beyond MaxClassSize")
	}
}

// MaxClassSize is the largest size served from a size class (half of
// DDmalloc's 32 KiB segment).
const MaxClassSize = 16 * 1024

// ClassSize returns the rounded object size of class c.
func ClassSize(c int) uint64 {
	switch {
	case c < 0 || c >= NumClasses:
		panic("heap: ClassSize out of range")
	case c < numSmall:
		return uint64(c+1) * 8
	case c < numSmall+numMid:
		return SmallCutoff + uint64(c-numSmall+1)*32
	default:
		return 1024 << uint(c-numSmall-numMid)
	}
}

// RoundedSize returns the allocated size for a request (the class size, or
// the page-rounded size for large objects).
func RoundedSize(size uint64) uint64 {
	if size > MaxClassSize {
		return (size + 4095) &^ 4095
	}
	return ClassSize(SizeToClass(size))
}
