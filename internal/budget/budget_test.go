package budget

import (
	"math"
	"sync"
	"testing"
	"time"

	"webmm/internal/mem"
	"webmm/internal/telemetry"
)

func newSpace() *mem.AddressSpace {
	return mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
}

func mapBytes(t *testing.T, as *mem.AddressSpace, n uint64) {
	t.Helper()
	if _, err := as.TryMap(n, 0, mem.SmallPages); err != nil {
		t.Fatalf("TryMap(%d): %v", n, err)
	}
}

// TestSqrtRuleApportionment pins the MemBalancer math against hand-computed
// fixtures: limit_i = live_i + headroom × √rate_i / Σ√rate_j.
func TestSqrtRuleApportionment(t *testing.T) {
	c := New(5*mem.MiB, Policy{})
	asA, asB := newSpace(), newSpace()
	la := c.Admit("a", []*mem.AddressSpace{asA})
	lb := c.Admit("b", []*mem.AddressSpace{asB})

	mapBytes(t, asA, 1*mem.MiB)
	mapBytes(t, asB, 1*mem.MiB)

	// Rates over a 1s tick: A allocates 1 MiB/s, B 4 MiB/s. Sizes above
	// heap.MaxClassSize land in the exact large-bytes counter, so the
	// fixture math is exact.
	la.RecordAlloc(1 * mem.MiB)
	lb.RecordAlloc(4 * mem.MiB)
	c.Tick(time.Second)

	// weights: √(2^20)=1024, √(2^22)=2048; headroom = 5−2 = 3 MiB.
	// A: 1 MiB + 3 MiB × 1024/3072 = 2 MiB; B: 1 MiB + 2 MiB = 3 MiB.
	if got := la.Limit(); got != 2*mem.MiB {
		t.Errorf("limit A = %d, want %d", got, 2*mem.MiB)
	}
	if got := lb.Limit(); got != 3*mem.MiB {
		t.Errorf("limit B = %d, want %d", got, 3*mem.MiB)
	}
	// Limits were pushed down to the spaces.
	if got := asA.Budget(); got != 2*mem.MiB {
		t.Errorf("pushed budget A = %d, want %d", got, 2*mem.MiB)
	}
	if got := asB.Budget(); got != 3*mem.MiB {
		t.Errorf("pushed budget B = %d, want %d", got, 3*mem.MiB)
	}
	// Compositional: limits sum to the global budget when no floor kicks in.
	if la.Limit()+lb.Limit() != c.Total() {
		t.Errorf("limits sum to %d, want total %d", la.Limit()+lb.Limit(), c.Total())
	}

	// EWMA: a quiet second halves the estimate (alpha = 0.5).
	c.Tick(time.Second)
	if got := la.Rate(); got != 512*mem.KiB {
		t.Errorf("rate A after quiet tick = %v, want %v", got, 512*mem.KiB)
	}
}

// TestEqualSplitWithoutRateSignal: tenants with no samples yet weigh in
// equally rather than starving.
func TestEqualSplitWithoutRateSignal(t *testing.T) {
	c := New(6*mem.MiB, Policy{})
	var leases []*Lease
	var spaces []*mem.AddressSpace
	for i := 0; i < 3; i++ {
		as := newSpace()
		spaces = append(spaces, as)
		leases = append(leases, c.Admit("t", []*mem.AddressSpace{as}))
	}
	for _, as := range spaces {
		mapBytes(t, as, 1*mem.MiB)
	}
	c.Tick(time.Second)
	for i, l := range leases {
		if got := l.Limit(); got != 2*mem.MiB {
			t.Errorf("lease %d limit = %d, want %d", i, got, 2*mem.MiB)
		}
	}
}

// TestFloorGuaranteesProgress: with headroom nearly gone, every tenant
// still gets the policy floor above its live bytes (bounded overshoot
// beats a zero-progress spin).
func TestFloorGuaranteesProgress(t *testing.T) {
	c := New(2*mem.MiB+100*mem.KiB, Policy{})
	asA, asB := newSpace(), newSpace()
	la := c.Admit("a", []*mem.AddressSpace{asA})
	lb := c.Admit("b", []*mem.AddressSpace{asB})
	mapBytes(t, asA, 1*mem.MiB)
	mapBytes(t, asB, 1*mem.MiB)
	c.Tick(time.Second)
	want := uint64(1*mem.MiB + 256*mem.KiB) // live + default floor
	if got := la.Limit(); got != want {
		t.Errorf("limit A = %d, want %d", got, want)
	}
	if got := lb.Limit(); got != want {
		t.Errorf("limit B = %d, want %d", got, want)
	}
}

// TestSqueezeForcesDenials: capping a tenant below its live bytes scales
// its space budgets down and its next map is refused — the dynamic-budget
// fault path.
func TestSqueezeForcesDenials(t *testing.T) {
	c := New(16*mem.MiB, Policy{})
	as := newSpace()
	l := c.Admit("victim", []*mem.AddressSpace{as})
	mapBytes(t, as, 2*mem.MiB)

	l.Squeeze(0.5)
	if got := as.Budget(); got != 1*mem.MiB {
		t.Errorf("squeezed budget = %d, want %d", got, 1*mem.MiB)
	}
	if _, err := as.TryMap(1*mem.MiB, 0, mem.SmallPages); err == nil {
		t.Fatal("map beyond squeezed budget succeeded")
	}
	if got := l.Denials(); got != 1 {
		t.Errorf("lease denials = %d, want 1", got)
	}
	if got := c.Denials(); got != 1 {
		t.Errorf("controller denials = %d, want 1", got)
	}

	// Release lifts the budget and keeps the denial tally.
	l.Release()
	if got := as.Budget(); got != 0 {
		t.Errorf("budget after release = %d, want 0 (unlimited)", got)
	}
	if got := c.Denials(); got != 1 {
		t.Errorf("controller denials after release = %d, want 1", got)
	}
	l.Release() // idempotent
	if got := c.Denials(); got != 1 {
		t.Errorf("double release double-counted denials: %d", got)
	}
}

// TestPressureLadder pins the level thresholds and the live/peak tracking.
func TestPressureLadder(t *testing.T) {
	c := New(4*mem.MiB, Policy{})
	for _, tc := range []struct {
		p    float64
		want Level
	}{
		{0, Nominal}, {0.69, Nominal}, {0.70, Degrade}, {0.84, Degrade},
		{0.85, Queue}, {0.94, Queue}, {0.95, Shed}, {1.2, Shed},
	} {
		if got := c.LevelFor(tc.p); got != tc.want {
			t.Errorf("LevelFor(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}

	as := newSpace()
	l := c.Admit("t", []*mem.AddressSpace{as})
	mapBytes(t, as, 3*mem.MiB)
	if got := c.Pressure(); got != 0.75 {
		t.Errorf("pressure = %v, want 0.75", got)
	}
	if got := c.Level(); got != Degrade {
		t.Errorf("level = %v, want degrade", got)
	}
	l.Release()
	if got := c.PeakLive(); got != 3*mem.MiB {
		t.Errorf("peak live = %d, want %d", got, 3*mem.MiB)
	}
	// Unbudgeted controller reports zero pressure.
	c0 := New(0, Policy{})
	if got := c0.Pressure(); got != 0 {
		t.Errorf("unbudgeted pressure = %v, want 0", got)
	}
}

// TestSetTotalRebalances: shrinking the global budget mid-run immediately
// retargets the pushed limits.
func TestSetTotalRebalances(t *testing.T) {
	c := New(8*mem.MiB, Policy{})
	as := newSpace()
	c.Admit("t", []*mem.AddressSpace{as})
	mapBytes(t, as, 1*mem.MiB)
	c.Tick(time.Second)
	if got := as.Budget(); got != 8*mem.MiB {
		t.Errorf("budget = %d, want %d", got, 8*mem.MiB)
	}
	c.SetTotal(2 * mem.MiB)
	if got := as.Budget(); got != 2*mem.MiB {
		t.Errorf("budget after SetTotal = %d, want %d", got, 2*mem.MiB)
	}
	if got := c.Total(); got != 2*mem.MiB {
		t.Errorf("total = %d, want %d", got, 2*mem.MiB)
	}
}

// TestSqueezeSpacesHelper covers the controller-free squeeze path.
func TestSqueezeSpacesHelper(t *testing.T) {
	budgeted, unbudgeted, empty := newSpace(), newSpace(), newSpace()
	budgeted.SetBudget(4 * mem.MiB)
	mapBytes(t, unbudgeted, 2*mem.MiB)
	SqueezeSpaces([]*mem.AddressSpace{budgeted, unbudgeted, empty}, 0.5)
	if got := budgeted.Budget(); got != 2*mem.MiB {
		t.Errorf("budgeted: %d, want %d", got, 2*mem.MiB)
	}
	if got := unbudgeted.Budget(); got != 1*mem.MiB {
		t.Errorf("unbudgeted: %d, want %d", got, 1*mem.MiB)
	}
	if got := empty.Budget(); got != 0 {
		t.Errorf("empty space must stay unlimited, got %d", got)
	}
}

// TestMetricsPublished: the controller exports its state through the
// telemetry registry, and a nil registry is a no-op.
func TestMetricsPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(4*mem.MiB, Policy{})
	c.PublishTo(reg)
	as := newSpace()
	l := c.Admit("t", []*mem.AddressSpace{as})
	mapBytes(t, as, 1*mem.MiB)
	c.Tick(time.Second)
	if got := reg.Gauge("webmm_budget_live_bytes", "", nil).Value(); got != float64(1*mem.MiB) {
		t.Errorf("live gauge = %v, want %v", got, float64(1*mem.MiB))
	}
	if got := reg.Gauge("webmm_budget_pressure", "", nil).Value(); got != 0.25 {
		t.Errorf("pressure gauge = %v, want 0.25", got)
	}
	l.Squeeze(0.25)
	if _, err := as.TryMap(1*mem.MiB, 0, mem.SmallPages); err == nil {
		t.Fatal("squeezed map succeeded")
	}
	c.Tick(time.Second)
	if got := reg.Counter("webmm_budget_denials_total", "", nil).Value(); got != 1 {
		t.Errorf("denials counter = %v, want 1", got)
	}

	// No registry: all instruments are nil, nothing panics.
	c2 := New(1*mem.MiB, Policy{})
	c2.PublishTo(nil)
	c2.Tick(time.Second)
}

// TestStartCloseLifecycle: the background sampler starts, samples, and
// shuts down cleanly; Close without Start is fine too.
func TestStartCloseLifecycle(t *testing.T) {
	c := New(4*mem.MiB, Policy{Interval: time.Millisecond})
	as := newSpace()
	c.Admit("t", []*mem.AddressSpace{as})
	mapBytes(t, as, 1*mem.MiB)
	c.Start()
	c.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for as.Budget() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if as.Budget() == 0 {
		t.Error("sampler never pushed a budget")
	}
	c.Close()
	c.Close() // idempotent

	New(0, Policy{}).Close() // Close without Start
}

// TestConcurrentControlPlane hammers Admit/Tick/Release/Pressure from
// several goroutines while tenants map — meaningful under -race (CI runs
// this package in the race job).
func TestConcurrentControlPlane(t *testing.T) {
	c := New(64*mem.MiB, Policy{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				as := newSpace()
				l := c.Admit("t", []*mem.AddressSpace{as})
				l.RecordAlloc(64 * mem.KiB)
				if m, err := as.TryMap(256*mem.KiB, 0, mem.SmallPages); err == nil {
					as.Unmap(m)
				}
				if i%3 == 0 {
					l.Squeeze(0.5)
				}
				l.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			c.Tick(time.Millisecond)
			_ = c.Pressure()
			_ = c.Denials()
			_ = c.Level()
		}
	}()
	wg.Wait()
	if got := c.Tenants(); got != 0 {
		t.Errorf("tenants after all released = %d, want 0", got)
	}
	if math.IsNaN(c.Pressure()) {
		t.Error("pressure is NaN")
	}
}
