// Package budget apportions one global byte budget across concurrently
// running cells, in the style of MemBalancer ("Optimal Heap Limits for
// Reducing Browser Memory Use"): each tenant's limit is its live footprint
// plus a share of the global headroom proportional to the square root of
// its live allocation rate. The √-rule is compositional — the per-tenant
// limits always sum to (at most) the global budget plus the configured
// per-tenant progress floor — so one controller instance can govern any mix
// of cells without re-tuning.
//
// The controller is pure control plane: tenants allocate on their own
// goroutines against mem.AddressSpace budgets, and the controller retargets
// those budgets from the outside (AddressSpace's budget word is atomic and
// every TryMap re-reads it, so a pushed limit takes effect at the tenant's
// next arena-map boundary). Allocation rates come from the same per-size-
// class counters the telemetry layer records: a Lease embeds a
// telemetry.AllocProfile and plugs in wherever a sim.AllocRecorder goes.
package budget

import (
	"math"
	"sync"
	"time"

	"webmm/internal/mem"
	"webmm/internal/telemetry"
)

// Level is a rung of the pressure ladder. Higher is worse.
type Level int

const (
	// Nominal: plenty of headroom, admit everything as requested.
	Nominal Level = iota
	// Degrade: admit new work, but force it to sampled fidelity.
	Degrade
	// Queue: stop growing the in-flight set; new work waits or is turned
	// away with a Retry-After.
	Queue
	// Shed: refuse new work outright until pressure falls.
	Shed
)

func (l Level) String() string {
	switch l {
	case Nominal:
		return "nominal"
	case Degrade:
		return "degrade"
	case Queue:
		return "queue"
	case Shed:
		return "shed"
	}
	return "unknown"
}

// Policy tunes the controller. The zero value means "use the defaults
// below"; any field left zero is filled in.
type Policy struct {
	// DegradeAt, QueueAt and ShedAt are global utilization thresholds
	// (live/total) for the pressure ladder. Defaults 0.70, 0.85, 0.95.
	DegradeAt float64
	QueueAt   float64
	ShedAt    float64
	// Interval is the background rebalance period. Default 50ms.
	Interval time.Duration
	// Floor is the minimum headroom granted to every tenant above its
	// live bytes, so no tenant is ever starved into a zero-progress spin
	// (the global budget is a target, not a hard wall: total overshoot is
	// bounded by tenants × Floor). Default 256 KiB. A squeezed lease
	// (Lease.Squeeze) bypasses the floor — squeezing exists precisely to
	// force denials.
	Floor uint64
	// Alpha is the EWMA smoothing factor for the allocation-rate
	// estimate: rate = Alpha·instant + (1−Alpha)·previous. Default 0.5.
	Alpha float64
}

func (p Policy) withDefaults() Policy {
	if p.DegradeAt == 0 {
		p.DegradeAt = 0.70
	}
	if p.QueueAt == 0 {
		p.QueueAt = 0.85
	}
	if p.ShedAt == 0 {
		p.ShedAt = 0.95
	}
	if p.Interval == 0 {
		p.Interval = 50 * time.Millisecond
	}
	if p.Floor == 0 {
		p.Floor = 256 * mem.KiB
	}
	if p.Alpha == 0 {
		p.Alpha = 0.5
	}
	return p
}

// Controller apportions a global byte budget across admitted leases. All
// methods are safe for concurrent use. New does not start the background
// sampler; call Start for wall-clock operation or drive Tick by hand for
// deterministic tests.
type Controller struct {
	policy Policy

	mu              sync.Mutex
	total           uint64
	leases          map[*Lease]struct{}
	peakLive        uint64
	releasedDenials uint64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
	started  bool

	// Optional metrics (nil-safe telemetry instruments).
	mTotal    *telemetry.Gauge
	mLive     *telemetry.Gauge
	mPressure *telemetry.Gauge
	mTenants  *telemetry.Gauge
	mDenials  *telemetry.Counter
	mRebal    *telemetry.Counter
	lastDen   uint64
}

// New returns a controller for the given global budget (bytes). A zero
// total disables budget enforcement: leases are tracked for observability
// but no limits are pushed.
func New(total uint64, policy Policy) *Controller {
	return &Controller{
		policy: policy.withDefaults(),
		total:  total,
		leases: make(map[*Lease]struct{}),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// PublishTo registers the controller's gauges and counters on a telemetry
// registry. A nil registry is fine (instruments become no-ops).
func (c *Controller) PublishTo(r *telemetry.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mTotal = r.Gauge("webmm_budget_total_bytes", "Global memory budget.", nil)
	c.mLive = r.Gauge("webmm_budget_live_bytes", "Sum of admitted tenants' mapped bytes.", nil)
	c.mPressure = r.Gauge("webmm_budget_pressure", "live/total utilization (0 when unbudgeted).", nil)
	c.mTenants = r.Gauge("webmm_budget_tenants", "Currently admitted leases.", nil)
	c.mDenials = r.Counter("webmm_budget_denials_total", "TryMap calls refused by a pushed budget.", nil)
	c.mRebal = r.Counter("webmm_budget_rebalances_total", "Controller rebalance passes.", nil)
	c.mTotal.Set(float64(c.total))
}

// Start launches the background sampler. Safe to call once; pair with
// Close.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.policy.Interval)
		defer t.Stop()
		last := time.Now()
		for {
			select {
			case <-c.stop:
				return
			case now := <-t.C:
				c.Tick(now.Sub(last))
				last = now
			}
		}
	}()
}

// Close stops the background sampler (if started) and waits for it to
// exit. Idempotent.
func (c *Controller) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	started := c.started
	c.mu.Unlock()
	if started {
		<-c.done
	}
}

// Admit registers a tenant's address spaces with the controller and
// immediately rebalances so the new tenant starts with a pushed limit.
// The returned lease is the tenant's allocation recorder; release it when
// the tenant's work completes.
func (c *Controller) Admit(name string, spaces []*mem.AddressSpace) *Lease {
	l := &Lease{c: c, name: name, spaces: spaces}
	c.mu.Lock()
	c.leases[l] = struct{}{}
	c.rebalanceLocked()
	c.mu.Unlock()
	return l
}

// Tick advances the controller by one control interval: refresh each
// lease's allocation-rate estimate over dt, recompute √-rule limits, and
// push them down. Exposed so tests (and the fault injector) can drive the
// controller deterministically without wall-clock time.
func (c *Controller) Tick(dt time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if secs := dt.Seconds(); secs > 0 {
		for l := range c.leases {
			cur := l.ApproxBytes()
			inst := float64(cur-l.lastBytes) / secs
			if !l.seeded {
				l.rate = inst
				l.seeded = true
			} else {
				l.rate = c.policy.Alpha*inst + (1-c.policy.Alpha)*l.rate
			}
			l.lastBytes = cur
		}
	}
	c.rebalanceLocked()
}

// rebalanceLocked recomputes and pushes per-tenant limits. Caller holds
// c.mu.
//
// MemBalancer's rule: limit_i = live_i + headroom × √rate_i / Σ_j √rate_j,
// with headroom = max(0, total − Σ live). A tenant with no rate signal yet
// weighs in at √1 so it is never starved before its first sample.
func (c *Controller) rebalanceLocked() {
	var live uint64
	var sumW float64
	for l := range c.leases {
		l.live = 0
		for _, as := range l.spaces {
			l.live += as.Mapped()
		}
		live += l.live
		l.weight = math.Sqrt(math.Max(l.rate, 1))
		sumW += l.weight
	}
	if live > c.peakLive {
		c.peakLive = live
	}
	if c.total > 0 {
		var headroom uint64
		if c.total > live {
			headroom = c.total - live
		}
		for l := range c.leases {
			share := uint64(float64(headroom) * l.weight / sumW)
			if share < c.policy.Floor {
				share = c.policy.Floor
			}
			limit := l.live + share
			if s := l.squeeze; s > 0 {
				if cap := uint64(s * float64(l.live)); cap < limit {
					limit = cap
				}
			}
			l.pushLocked(limit)
		}
	}
	c.mRebal.Inc()
	c.mLive.Set(float64(live))
	c.mTenants.Set(float64(len(c.leases)))
	c.mTotal.Set(float64(c.total))
	c.mPressure.Set(c.pressureOf(live))
	den := c.denialsLocked()
	if d := den - c.lastDen; d > 0 {
		c.mDenials.Add(d)
		c.lastDen = den
	}
}

func (c *Controller) pressureOf(live uint64) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(live) / float64(c.total)
}

// Pressure returns current global utilization, live/total (0 when the
// controller has no budget).
func (c *Controller) Pressure() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var live uint64
	for l := range c.leases {
		for _, as := range l.spaces {
			live += as.Mapped()
		}
	}
	if live > c.peakLive {
		c.peakLive = live
	}
	return c.pressureOf(live)
}

// LevelFor maps a utilization reading to its rung on the pressure ladder.
func (c *Controller) LevelFor(pressure float64) Level {
	switch {
	case pressure >= c.policy.ShedAt:
		return Shed
	case pressure >= c.policy.QueueAt:
		return Queue
	case pressure >= c.policy.DegradeAt:
		return Degrade
	}
	return Nominal
}

// Level samples current pressure and returns its ladder rung.
func (c *Controller) Level() Level { return c.LevelFor(c.Pressure()) }

// Total returns the global budget.
func (c *Controller) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// SetTotal retargets the global budget mid-run (the chaos path: shrink and
// watch the ladder climb) and rebalances immediately.
func (c *Controller) SetTotal(total uint64) {
	c.mu.Lock()
	c.total = total
	c.rebalanceLocked()
	c.mu.Unlock()
}

// PeakLive returns the largest total live footprint observed at any
// rebalance or pressure sample — the "unconstrained peak" a calibrating
// caller halves to pick a squeeze budget.
func (c *Controller) PeakLive() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peakLive
}

// Denials returns the cumulative budget denials across all leases this
// controller has ever admitted.
func (c *Controller) Denials() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.denialsLocked()
}

func (c *Controller) denialsLocked() uint64 {
	d := c.releasedDenials
	for l := range c.leases {
		d += l.denials()
	}
	return d
}

// Tenants returns the number of currently admitted leases.
func (c *Controller) Tenants() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leases)
}

// Lease is one admitted tenant: the address spaces the controller governs
// plus the allocation profile that feeds its rate estimate. It implements
// sim.AllocRecorder via the embedded AllocProfile, so wiring it as a
// stream's recorder is all the integration a tenant needs.
type Lease struct {
	telemetry.AllocProfile
	c      *Controller
	name   string
	spaces []*mem.AddressSpace

	// Guarded by c.mu.
	lastBytes uint64
	rate      float64
	seeded    bool
	live      uint64
	weight    float64
	limit     uint64
	squeeze   float64
	released  bool
}

// pushLocked distributes a tenant limit across the lease's spaces: each
// space keeps what it has mapped plus an equal slice of the tenant's
// headroom; a deficit (squeeze below live) scales every space down
// proportionally. Budgets are pinned ≥ 1 byte because SetBudget(0) means
// unlimited. Caller holds c.mu.
func (l *Lease) pushLocked(limit uint64) {
	l.limit = limit
	n := uint64(len(l.spaces))
	if n == 0 {
		return
	}
	if limit >= l.live {
		per := (limit - l.live) / n
		for _, as := range l.spaces {
			as.SetBudget(maxU64(as.Mapped()+per, 1))
		}
		return
	}
	scale := float64(limit) / float64(maxU64(l.live, 1))
	for _, as := range l.spaces {
		as.SetBudget(maxU64(uint64(scale*float64(as.Mapped())), 1))
	}
}

// Release hands the lease's accounting back to the controller, lifts the
// pushed budgets (the tenant is done; any final frees shouldn't trip a
// stale limit), and rebalances the survivors. Idempotent.
func (l *Lease) Release() {
	c := l.c
	c.mu.Lock()
	if !l.released {
		l.released = true
		c.releasedDenials += l.denials()
		delete(c.leases, l)
		for _, as := range l.spaces {
			as.SetBudget(0)
		}
		c.rebalanceLocked()
	}
	c.mu.Unlock()
}

// Squeeze caps this tenant's limit at factor × its live bytes from the
// next rebalance on (factor < 1 forces denials on the tenant's next arena
// map — the dynamic-budget fault mode). A zero factor clears the cap.
func (l *Lease) Squeeze(factor float64) {
	c := l.c
	c.mu.Lock()
	l.squeeze = factor
	c.rebalanceLocked()
	c.mu.Unlock()
}

// Live returns the tenant's mapped bytes as of the last rebalance.
func (l *Lease) Live() uint64 {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.live
}

// Limit returns the tenant limit pushed at the last rebalance (0 until
// the controller has a budget).
func (l *Lease) Limit() uint64 {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.limit
}

// Rate returns the tenant's smoothed allocation rate in bytes/second.
func (l *Lease) Rate() float64 {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.rate
}

// Denials returns budget denials across the lease's spaces — nonzero
// means the controller constrained this tenant and its results reflect
// degraded (bailout/restart) execution.
func (l *Lease) Denials() uint64 {
	l.c.mu.Lock()
	defer l.c.mu.Unlock()
	return l.denials()
}

func (l *Lease) denials() uint64 {
	var d uint64
	for _, as := range l.spaces {
		d += as.BudgetDenials()
	}
	return d
}

// SqueezeSpaces shrinks each space's budget to factor × its current
// ceiling (the configured budget, or the mapped bytes when unbudgeted) —
// the controller-free path for the squeeze fault mode in one-shot runs.
// Results are deterministic: it reads only the spaces' own state.
func SqueezeSpaces(spaces []*mem.AddressSpace, factor float64) {
	for _, as := range spaces {
		base := as.Budget()
		if base == 0 {
			base = as.Mapped()
		}
		if base == 0 {
			continue
		}
		as.SetBudget(maxU64(uint64(factor*float64(base)), 1))
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
