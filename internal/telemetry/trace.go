package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records spans and counter samples as Chrome-trace events, one JSON
// object per line (JSONL). Each event follows the Trace Event Format
// (ph "X" complete events for spans, ph "C" counter events for sampled
// series), so the file loads in chrome://tracing and Perfetto and is trivial
// to post-process line by line.
//
// A nil *Tracer is valid and records nothing; every method on it (and on the
// nil *Span) is an allocation-free no-op. That nil is the whole
// disabled-path story: hot code holds a possibly-nil tracer and calls it
// unconditionally.
type Tracer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closed bool // under mu; set by Close, makes write drop events
	epoch  time.Time

	nextTID  atomic.Uint64
	nextSpan atomic.Uint64
	events   atomic.Uint64
	dropped  atomic.Uint64
}

// traceEvent is one Chrome Trace Event Format record.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since the tracer epoch
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer writing JSONL trace events to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: bufio.NewWriter(w), epoch: time.Now()}
}

// Span is one timed, named region of work. Spans on the same trace thread
// (tid) nest by time containment, which is how Chrome renders parent/child
// relationships; Child therefore reuses the parent's tid while StartSpan
// claims a fresh one. Span ids and the parent id are recorded in args so the
// hierarchy is machine-readable even without the timing containment.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	tid    uint64
	name   string
	cat    string
	start  time.Time
	mu     sync.Mutex
	args   map[string]any
}

// StartSpan opens a top-level span on a fresh trace thread. Returns nil on a
// nil tracer.
func (t *Tracer) StartSpan(name, cat string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:   t,
		id:   t.nextSpan.Add(1),
		tid:  t.nextTID.Add(1),
		name: name,
		cat:  cat,
		start: time.Now(),
	}
}

// Child opens a sub-span on the parent's trace thread. Returns nil on a nil
// span.
func (s *Span) Child(name, cat string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tr:     s.tr,
		id:     s.tr.nextSpan.Add(1),
		parent: s.id,
		tid:    s.tid,
		name:   name,
		cat:    cat,
		start:  time.Now(),
	}
}

// Arg attaches one key/value annotation to the span (cache hit, retry count,
// fault kind, ...). No-op on a nil span.
func (s *Span) Arg(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
	s.mu.Unlock()
}

// End emits the span as a complete ("X") trace event. No-op on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	args := s.args
	s.mu.Unlock()
	if args == nil {
		args = map[string]any{}
	}
	args["span"] = s.id
	if s.parent != 0 {
		args["parent"] = s.parent
	}
	s.tr.write(traceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   float64(s.start.Sub(s.tr.epoch)) / float64(time.Microsecond),
		Dur:  float64(now.Sub(s.start)) / float64(time.Microsecond),
		PID:  1,
		TID:  s.tid,
		Args: args,
	})
}

// TID returns the span's trace-thread id (for Counter samples that should
// render alongside the span). Zero on a nil span.
func (s *Span) TID() uint64 {
	if s == nil {
		return 0
	}
	return s.tid
}

// Counter emits a ph "C" counter sample: one named multi-series data point
// at the current time on the given trace thread. Chrome renders successive
// samples of the same name as a stacked area chart, which is how the
// per-component miss/cycle attribution over time windows is visualized.
// No-op on a nil tracer.
func (t *Tracer) Counter(tid uint64, name string, series map[string]float64) {
	if t == nil {
		return
	}
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	t.write(traceEvent{
		Name: name,
		Ph:   "C",
		TS:   float64(time.Since(t.epoch)) / float64(time.Microsecond),
		PID:  1,
		TID:  tid,
		Args: args,
	})
}

// Events returns the number of trace events written so far.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	return t.events.Load()
}

// Dropped returns the number of events discarded because they arrived
// after Close.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

func (t *Tracer) write(ev traceEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	t.w.Write(data)
	t.w.WriteByte('\n')
	t.mu.Unlock()
	t.events.Add(1)
}

// Flush drains buffered events to the underlying writer. After Close it is
// a no-op.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	return t.w.Flush()
}

// Close flushes buffered events and marks the tracer closed: any event
// arriving afterwards — a span ended by a cell that outlived its run, a
// stray counter sample — is counted in Dropped and discarded instead of
// being written through a buffer whose file the owner is about to (or
// already did) close. Close is idempotent and safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.w.Flush()
}
