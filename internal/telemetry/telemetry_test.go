package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestNopIsAllocationFree locks in the zero-cost-when-disabled contract:
// every operation on the nil Telemetry and its nil instruments allocates
// nothing.
func TestNopIsAllocationFree(t *testing.T) {
	tel := Nop
	if tel.Enabled() {
		t.Fatal("Nop reports enabled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tel.Tracer().StartSpan("cell", "runner")
		child := sp.Child("solve", "phase")
		child.Arg("cached", true)
		child.End()
		sp.End()
		tel.Tracer().Counter(0, "hw", nil)
		tel.Metrics().Counter("c", "", nil).Add(3)
		tel.Metrics().Gauge("g", "", nil).Set(1.5)
		tel.Metrics().Histogram("h", "", nil, nil).Observe(2)
		tel.AllocSizes()
		tel.SetManifest(nil)
	})
	if allocs != 0 {
		t.Fatalf("Nop path allocates %.1f times per op, want 0", allocs)
	}
	if err := tel.Close(); err != nil {
		t.Fatalf("Nop Close: %v", err)
	}
}

// TestTraceRoundTrip writes nested spans and a counter sample and checks the
// file validates as Chrome-trace JSONL with the expected event count and
// parent linkage.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tel, err := New(Options{TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	root := tel.Tracer().StartSpan("cell xeon/default", "cell")
	root.Arg("platform", "xeon")
	child := root.Child("solve", "phase")
	child.End()
	tel.Tracer().Counter(root.TID(), "hw.l2miss", map[string]float64{"mm": 12, "app": 30})
	root.End()
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := ValidateTraceFile(path)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if events != 3 {
		t.Fatalf("got %d trace events, want 3", events)
	}
	data, _ := os.ReadFile(path)
	text := string(data)
	if !strings.Contains(text, `"parent":1`) {
		t.Errorf("child span lost its parent link:\n%s", text)
	}
	if !strings.Contains(text, `"ph":"C"`) {
		t.Errorf("counter sample missing:\n%s", text)
	}
}

// TestTracerCloseRacesLateEvents races cell teardown (span End, counter
// samples) against Tracer.Close, the shape a server shutdown takes when a
// cancelled cell's trace spans unwind while telemetry is being torn down.
// Under -race this proves the closed flag is properly synchronized; the
// assertions prove late events are dropped and counted, never written, and
// that the file still validates.
func TestTracerCloseRacesLateEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	tel, err := New(Options{TracePath: path})
	if err != nil {
		t.Fatal(err)
	}
	tr := tel.Tracer()
	// One event before the race so the file is never empty (an empty trace
	// fails validation) even if Close wins against every writer.
	tr.StartSpan("setup", "cell").End()

	const writers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(writers)
	for i := 0; i < writers; i++ {
		go func() {
			defer wg.Done()
			<-start
			for j := 0; j < 100; j++ {
				sp := tr.StartSpan("cell", "cell")
				sp.Child("solve", "phase").End()
				tr.Counter(sp.TID(), "hw", map[string]float64{"mm": 1})
				sp.End()
			}
		}()
	}
	close(start)
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got := tr.Events() + tr.Dropped(); got != writers*300+1 {
		t.Fatalf("events (%d) + dropped (%d) = %d, want %d",
			tr.Events(), tr.Dropped(), got, writers*300+1)
	}
	// Everything that made it into the file must be well formed: Close won
	// the race cleanly, no half-written lines.
	events, err := ValidateTraceFile(path)
	if err != nil {
		t.Fatalf("trace does not validate after racing close: %v", err)
	}
	if uint64(events) != tr.Events() {
		t.Fatalf("file holds %d events, tracer wrote %d", events, tr.Events())
	}
	// Close is idempotent and a late Flush is a no-op.
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsExports exercises all three instrument kinds through both
// export formats and the validators.
func TestMetricsExports(t *testing.T) {
	r := NewRegistry()
	r.Counter("webmm_cells_total", "simulated cells", nil).Add(7)
	r.Counter("webmm_class_l2_miss_total", "", Labels{"class": "mm"}).Add(11)
	r.Counter("webmm_class_l2_miss_total", "", Labels{"class": "app"}).Add(22)
	r.Gauge("webmm_cache_hit_ratio", "", nil).Set(0.25)
	h := r.Histogram("webmm_cell_seconds", "", []float64{0.1, 1, 10}, nil)
	h.Observe(0.05)
	h.Observe(3)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE webmm_cells_total counter",
		"webmm_cells_total 7",
		`webmm_class_l2_miss_total{class="app"} 22`,
		`webmm_class_l2_miss_total{class="mm"} 11`,
		"webmm_cache_hit_ratio 0.25",
		`webmm_cell_seconds_bucket{le="10"} 2`,
		`webmm_cell_seconds_bucket{le="+Inf"} 2`,
		"webmm_cell_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus export missing %q:\n%s", want, text)
		}
	}

	dir := t.TempDir()
	promPath := filepath.Join(dir, "m.prom")
	os.WriteFile(promPath, []byte(text), 0o644)
	if n, err := ValidateMetricsFile(promPath); err != nil || n == 0 {
		t.Fatalf("prometheus export does not validate: n=%d err=%v", n, err)
	}

	var csv strings.Builder
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "m.csv")
	os.WriteFile(csvPath, []byte(csv.String()), 0o644)
	if n, err := ValidateMetricsFile(csvPath); err != nil || n == 0 {
		t.Fatalf("CSV export does not validate: n=%d err=%v", n, err)
	}
	if !strings.Contains(csv.String(), `webmm_class_l2_miss_total,"{class=""mm""}",11`) {
		t.Errorf("CSV export malformed:\n%s", csv.String())
	}
}

// TestSameInstrumentReturned checks (name, labels) identity.
func TestSameInstrumentReturned(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "", Labels{"k": "v"})
	b := r.Counter("x", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x", "", Labels{"k": "w"})
	if a == c {
		t.Fatal("distinct labels returned the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared counter not shared")
	}
}

// TestAllocProfile checks class bucketing including the large bucket.
func TestAllocProfile(t *testing.T) {
	var p AllocProfile
	p.RecordAlloc(8)
	p.RecordAlloc(7) // same class as 8
	p.RecordAlloc(100)
	p.RecordAlloc(1 << 20) // large
	snap := p.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot %+v, want 3 classes", snap)
	}
	if snap[0].Bytes != 8 || snap[0].Count != 2 {
		t.Errorf("class 8: %+v", snap[0])
	}
	if snap[1].Bytes != 104 || snap[1].Count != 1 {
		t.Errorf("class 104: %+v", snap[1])
	}
	if snap[2].Bytes != 0 || snap[2].Count != 1 {
		t.Errorf("large bucket: %+v", snap[2])
	}
	if p.Total() != 4 {
		t.Errorf("total %d, want 4", p.Total())
	}
	// ApproxBytes: small classes round up to class size, the large bucket
	// is exact.
	want := uint64(2*8 + 104 + 1<<20)
	if got := p.ApproxBytes(); got != want {
		t.Errorf("ApproxBytes %d, want %d", got, want)
	}
}

// TestHistogramQuantile pins the linear-interpolation estimate against
// hand-computed values, including the empty, +Inf-bucket and nil cases.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "", []float64{1, 10, 100}, nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", got)
	}
	// 4 samples in (1,10], 4 in (10,100].
	for _, v := range []float64{2, 4, 6, 8, 20, 40, 60, 80} {
		h.Observe(v)
	}
	// p50: rank 4 falls exactly on the end of bucket (1,10] → 10.
	if got := h.Quantile(0.5); got != 10 {
		t.Errorf("p50 = %v, want 10", got)
	}
	// p25: rank 2 is halfway through (1,10] → 1 + 9*2/4 = 5.5.
	if got := h.Quantile(0.25); got != 5.5 {
		t.Errorf("p25 = %v, want 5.5", got)
	}
	// p100 clamps into the last finite bucket.
	if got := h.Quantile(1); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
	// Samples beyond every bound clamp to the highest finite bound.
	h2 := r.Histogram("q_test2", "", []float64{1}, nil)
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("overflow-bucket p50 = %v, want 1", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil p50 = %v, want 0", got)
	}
}

// TestManifestValidate round-trips a manifest through disk and the
// validator, covering the canonicalization used by the golden test.
func TestManifestValidate(t *testing.T) {
	m := &Manifest{
		Tool:          "webmm",
		FormatVersion: ManifestFormatVersion,
		SimVersion:    2,
		GoVersion:     "go1.22",
		Config:        ManifestConfig{Scale: 32, Warmup: 2, Measure: 3, Seed: 1},
		Experiments:   []string{"fig1"},
		Cells: []ManifestCell{
			{Platform: "xeon", Alloc: "default", Workload: "w", Cores: 8, WallMS: 12.5, Throughput: 100, Txns: 24},
			{Platform: "xeon", Alloc: "region", Workload: "w", Cores: 8, Failed: true},
		},
		CacheHits: 1, CacheMisses: 3, CacheHitRatio: 0.25,
		Failures: []ManifestFailure{{Cell: "xeon/region/w/8", Error: "boom", Attempts: 2}},
	}
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ValidateManifestFile(path)
	if err != nil {
		t.Fatalf("manifest does not validate: %v", err)
	}
	if got.Cells[0].Throughput != 100 {
		t.Errorf("round trip lost throughput: %+v", got.Cells[0])
	}

	canon := m.Canonical()
	if canon.GoVersion != "" || canon.Cells[0].WallMS != 0 {
		t.Errorf("Canonical left volatile fields: %+v", canon)
	}
	if m.Cells[0].WallMS == 0 {
		t.Error("Canonical mutated the original manifest")
	}

	// Inconsistent accounting must be rejected.
	m.CacheHitRatio = 0.9
	m.WriteFile(path)
	if _, err := ValidateManifestFile(path); err == nil {
		t.Fatal("validator accepted inconsistent cache_hit_ratio")
	}
}
