package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// ManifestFormatVersion identifies the manifest JSON schema. Bump when a
// field changes meaning or is removed; adding fields is compatible.
const ManifestFormatVersion = 1

// Manifest is the machine-readable record of one run: what was simulated,
// with which configuration, how long each cell took, how the cache behaved,
// and what failed. It is written alongside the results so a run is
// reproducible and auditable from its outputs alone.
type Manifest struct {
	Tool          string `json:"tool"`
	FormatVersion int    `json:"format_version"`
	// SimVersion is the simulator's cell-format version (the cell cache's
	// invalidation key); two manifests with equal SimVersion, Config and
	// Seed describe bit-identical simulations.
	SimVersion int    `json:"simulator_version"`
	GoVersion  string `json:"go_version,omitempty"`

	StartedAt   string  `json:"started_at,omitempty"`  // RFC 3339
	FinishedAt  string  `json:"finished_at,omitempty"` // RFC 3339
	WallSeconds float64 `json:"wall_seconds,omitempty"`

	Config      ManifestConfig `json:"config"`
	Experiments []string       `json:"experiments"`
	Cells       []ManifestCell `json:"cells"`

	// Disk cell-cache accounting (zero when no cache was configured) and
	// in-process memoization hits.
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	MemoHits      uint64  `json:"memo_hits"`

	Failures []ManifestFailure `json:"failures,omitempty"`
}

// ManifestConfig records the run's knobs: the simulation configuration plus
// the CLI-level execution parameters.
type ManifestConfig struct {
	Scale          int    `json:"scale"`
	Warmup         int    `json:"warmup"`
	Measure        int    `json:"measure"`
	Seed           uint64 `json:"seed"`
	XeonLargePages bool   `json:"xeon_large_pages,omitempty"`
	// Fidelity is empty for full fidelity, "sampled" for SMARTS-style
	// sampled measurement; omitempty keeps full-fidelity manifests
	// byte-identical to builds that predate the mode.
	Fidelity     string `json:"fidelity,omitempty"`
	Jobs         int    `json:"jobs,omitempty"`
	Faults       string `json:"faults,omitempty"`
	Timeout      string `json:"timeout,omitempty"`
	CellCacheDir string `json:"cell_cache_dir,omitempty"`
}

// ManifestCell is one simulated cell's record.
type ManifestCell struct {
	Platform     string  `json:"platform"`
	Alloc        string  `json:"alloc"`
	Workload     string  `json:"workload"`
	Cores        int     `json:"cores"`
	Ruby         bool    `json:"ruby,omitempty"`
	RestartEvery int     `json:"restart_every,omitempty"`
	WallMS       float64 `json:"wall_ms,omitempty"` // volatile; from-cache cells report load time
	Cached       bool    `json:"cached,omitempty"`  // served from the disk cell cache
	Failed       bool    `json:"failed,omitempty"`
	Throughput   float64 `json:"throughput,omitempty"`
	Txns         uint64  `json:"txns,omitempty"`
}

// ManifestFailure is one failed cell's report.
type ManifestFailure struct {
	Cell     string `json:"cell"`
	Error    string `json:"error"`
	Attempts int    `json:"attempts"`
}

// Stamp fills the volatile wall-clock fields from start to now.
func (m *Manifest) Stamp(start time.Time) {
	now := time.Now()
	m.StartedAt = start.UTC().Format(time.RFC3339Nano)
	m.FinishedAt = now.UTC().Format(time.RFC3339Nano)
	m.WallSeconds = now.Sub(start).Seconds()
}

// Canonical returns a copy with every volatile field (wall-clock times and
// durations, toolchain version) zeroed, leaving only the deterministic
// content. Two runs of the same configuration and simulator version produce
// byte-identical canonical manifests — the property the golden manifest test
// locks in.
func (m Manifest) Canonical() Manifest {
	m.GoVersion = ""
	m.StartedAt = ""
	m.FinishedAt = ""
	m.WallSeconds = 0
	cells := make([]ManifestCell, len(m.Cells))
	copy(cells, m.Cells)
	for i := range cells {
		cells[i].WallMS = 0
	}
	m.Cells = cells
	return m
}

// MarshalIndent renders the manifest as indented JSON.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteFile writes the manifest as indented JSON to path.
func (m *Manifest) WriteFile(path string) error {
	data, err := m.MarshalIndent()
	if err != nil {
		return fmt.Errorf("telemetry: marshal manifest: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
