// Package telemetry is the simulator's observability layer: span-based
// tracing (Chrome-trace JSONL), a metrics registry (Prometheus text and CSV
// export), a per-run manifest, and a per-size-class allocation profile.
//
// The layer is zero-cost when disabled. The disabled state is the nil
// *Telemetry (the package-level Nop): every accessor on it returns a nil
// instrument, and every method on those nil instruments is an
// allocation-free no-op. Instrumented code therefore threads one possibly-
// nil handle through and calls it unconditionally — no "is telemetry on"
// branches beyond the nil checks the instruments do themselves, and no
// allocations on the hot paths the simulator benchmarks.
package telemetry

import (
	"fmt"
	"os"
	"strings"
)

// Options selects the outputs of one telemetry session. Empty paths disable
// the corresponding output; all-empty Options mean telemetry is off and New
// returns Nop.
type Options struct {
	// TracePath receives Chrome-trace JSONL span and counter events.
	TracePath string
	// MetricsPath receives the metrics registry on Close; a ".csv" suffix
	// selects CSV export, anything else the Prometheus text format.
	MetricsPath string
	// ManifestPath receives the run manifest JSON on Close.
	ManifestPath string
}

// Enabled reports whether any output is selected.
func (o Options) Enabled() bool {
	return o.TracePath != "" || o.MetricsPath != "" || o.ManifestPath != ""
}

// Nop is the disabled telemetry layer: the nil *Telemetry, on which every
// method is an allocation-free no-op.
var Nop *Telemetry

// Telemetry bundles one run's tracer, metrics registry, allocation profile
// and manifest sink. Obtain one with New; share it between the runner, the
// machines and the CLI; Close it once at end of run to flush files.
type Telemetry struct {
	opts      Options
	tracer    *Tracer
	traceFile *os.File
	metrics   *Registry
	alloc     *AllocProfile
	manifest  *Manifest
}

// New opens a telemetry session for the given outputs. All-empty Options
// return Nop with no error.
func New(opts Options) (*Telemetry, error) {
	if !opts.Enabled() {
		return Nop, nil
	}
	t := &Telemetry{opts: opts, metrics: NewRegistry(), alloc: &AllocProfile{}}
	if opts.TracePath != "" {
		f, err := os.Create(opts.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		t.traceFile = f
		t.tracer = NewTracer(f)
	}
	return t, nil
}

// NewLive returns a session with a live metrics registry and allocation
// profile but no file outputs. It serves long-running processes (webmm
// serve) that expose the registry over HTTP instead of writing files at
// exit; Close flushes nothing and never fails.
func NewLive() *Telemetry {
	return &Telemetry{metrics: NewRegistry(), alloc: &AllocProfile{}}
}

// Enabled reports whether this is a live session (false for Nop).
func (t *Telemetry) Enabled() bool { return t != nil }

// Tracer returns the span tracer, or nil when tracing is off. The nil
// tracer is safe to use.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// Metrics returns the metrics registry, or nil when telemetry is off. The
// nil registry is safe to use.
func (t *Telemetry) Metrics() *Registry {
	if t == nil {
		return nil
	}
	return t.metrics
}

// AllocSizes returns the per-size-class allocation profile, or nil when
// telemetry is off. Callers wiring it into a sim.Env must skip the nil (a
// typed nil in the Env's interface field would defeat its nil check).
func (t *Telemetry) AllocSizes() *AllocProfile {
	if t == nil {
		return nil
	}
	return t.alloc
}

// SetManifest registers the manifest to write on Close.
func (t *Telemetry) SetManifest(m *Manifest) {
	if t == nil {
		return
	}
	t.manifest = m
}

// Close flushes the trace and writes the metrics and manifest files. Safe on
// Nop. The allocation profile is appended to the metrics output as the
// webmm_alloc_sizeclass_total family.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if t.tracer != nil {
		// Close (not just Flush) the tracer first: once the file is
		// closed, a straggling span or counter sample must be dropped by
		// the tracer, not written into a closed descriptor.
		keep(t.tracer.Close())
		keep(t.traceFile.Close())
	}
	if t.opts.MetricsPath != "" {
		t.exportAllocProfile()
		f, err := os.Create(t.opts.MetricsPath)
		keep(err)
		if err == nil {
			if strings.HasSuffix(t.opts.MetricsPath, ".csv") {
				keep(t.metrics.WriteCSV(f))
			} else {
				keep(t.metrics.WritePrometheus(f))
			}
			keep(f.Close())
		}
	}
	if t.opts.ManifestPath != "" && t.manifest != nil {
		keep(t.manifest.WriteFile(t.opts.ManifestPath))
	}
	return firstErr
}

// exportAllocProfile snapshots the allocation profile into the registry so
// it exports with the other metrics.
func (t *Telemetry) exportAllocProfile() {
	for _, cc := range t.alloc.Snapshot() {
		bytes := "large"
		if cc.Bytes > 0 {
			bytes = fmt.Sprintf("%d", cc.Bytes)
		}
		t.metrics.Counter("webmm_alloc_sizeclass_total",
			"allocation requests per DDmalloc size class (rounded object bytes; \"large\" = above the class map)",
			Labels{"bytes": bytes}).Add(cc.Count)
	}
}
