package telemetry

import (
	"sync/atomic"

	"webmm/internal/heap"
)

// AllocProfile counts allocator API traffic per DDmalloc size class (plus
// one bucket for large objects above heap.MaxClassSize), the fine-grained
// allocator-phase evidence SpeedMalloc-style studies report. It implements
// the sim.Env AllocRecorder hook; every allocator's Malloc reports its
// request size here when telemetry is enabled.
//
// Recording is a single atomic add into a fixed array: allocation-free and
// safe for the concurrent streams of a parallel cell fan-out.
type AllocProfile struct {
	classes    [heap.NumClasses + 1]atomic.Uint64
	largeBytes atomic.Uint64
}

// RecordAlloc counts one allocation request of the given size.
func (p *AllocProfile) RecordAlloc(size uint64) {
	if size == 0 || size > heap.MaxClassSize {
		p.classes[heap.NumClasses].Add(1)
		p.largeBytes.Add(size)
		return
	}
	p.classes[heap.SizeToClass(size)].Add(1)
}

// ClassCount is one size class's traffic.
type ClassCount struct {
	// Bytes is the class's rounded object size; 0 marks the large-object
	// bucket.
	Bytes uint64
	Count uint64
}

// Snapshot returns the per-class counts, smallest class first, large-object
// bucket last. Classes with zero traffic are skipped.
func (p *AllocProfile) Snapshot() []ClassCount {
	var out []ClassCount
	for c := 0; c < heap.NumClasses; c++ {
		if n := p.classes[c].Load(); n > 0 {
			out = append(out, ClassCount{Bytes: heap.ClassSize(c), Count: n})
		}
	}
	if n := p.classes[heap.NumClasses].Load(); n > 0 {
		out = append(out, ClassCount{Bytes: 0, Count: n})
	}
	return out
}

// ApproxBytes returns the total bytes requested so far: exact for the
// large-object bucket (sizes are summed as they arrive) and rounded up to
// class size for everything else — the same rounding the allocators
// themselves apply, so this tracks the heap traffic a budget controller
// cares about. Like the counters it reads, it is a lock-free snapshot:
// concurrent recording may make it momentarily stale but never backwards
// between two calls on a quiescent profile.
func (p *AllocProfile) ApproxBytes() uint64 {
	var t uint64
	for c := 0; c < heap.NumClasses; c++ {
		t += p.classes[c].Load() * heap.ClassSize(c)
	}
	return t + p.largeBytes.Load()
}

// Total returns the total recorded allocations.
func (p *AllocProfile) Total() uint64 {
	var t uint64
	for i := range p.classes {
		t += p.classes[i].Load()
	}
	return t
}
