package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families — counters, gauges and histograms —
// and renders them as Prometheus text exposition or CSV. A nil *Registry is
// valid and hands out nil instruments, whose methods are allocation-free
// no-ops, so instrumented code never branches on "is telemetry on".
//
// Instruments are identified by (name, labels); asking twice returns the
// same instrument. Families keep registration order for output stability;
// series within a family sort by label string.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// Labels are the label pairs of one series. Rendered sorted by key.
type Labels map[string]string

type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          map[string]metric // key: rendered label string
}

type metric interface {
	labelString() string
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) getFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: make(map[string]metric)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// labelString renders labels in canonical (sorted) order: `{a="1",b="2"}`,
// or "" for no labels.
func labelString(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing uint64 instrument.
type Counter struct {
	labels string
	v      atomic.Uint64
}

func (c *Counter) labelString() string { return c.labels }

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter returns (creating on first use) the counter (name, labels).
// Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "counter")
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Counter)
	}
	c := &Counter{labels: ls}
	f.series[ls] = c
	return c
}

// Gauge is a float64 instrument that can go up and down.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

func (g *Gauge) labelString() string { return g.labels }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge returns (creating on first use) the gauge (name, labels). Returns
// nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "gauge")
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Gauge)
	}
	g := &Gauge{labels: ls}
	f.series[ls] = g
	return g
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus semantics:
// each bucket counts observations <= its upper bound, plus an implicit +Inf
// bucket, a sum and a count).
type Histogram struct {
	labels  string
	bounds  []float64
	mu      sync.Mutex
	buckets []uint64 // len(bounds)+1; last is +Inf
	sum     float64
	count   uint64
}

func (h *Histogram) labelString() string { return h.labels }

// Observe records one sample. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts, interpolating linearly inside the bucket the quantile lands in
// (Prometheus histogram_quantile semantics). Samples in the +Inf bucket
// clamp to the highest finite bound. Returns 0 on nil or with no
// observations — callers treat that as "no signal yet".
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, bound := range h.bounds {
		prev := cum
		cum += h.buckets[i]
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if h.buckets[i] == 0 {
				return bound
			}
			return lo + (bound-lo)*(rank-float64(prev))/float64(h.buckets[i])
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Histogram returns (creating on first use) the histogram (name, labels)
// with the given ascending bucket upper bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name, help string, bounds []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	f := r.getFamily(name, help, "histogram")
	ls := labelString(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[ls]; ok {
		return m.(*Histogram)
	}
	h := &Histogram{labels: ls, bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
	f.series[ls] = h
	return h
}

// sortedSeries returns a family's series sorted by label string.
func (f *family) sortedSeries() []metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]metric, 0, len(f.series))
	for _, m := range f.series {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labelString() < out[j].labelString() })
	return out
}

// fnum renders a float the way Prometheus text format expects.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. Stable: families in registration order, series sorted by labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, m := range f.sortedSeries() {
			switch m := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, m.labels, m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, m.labels, fnum(m.Value()))
			case *Histogram:
				m.mu.Lock()
				var cum uint64
				for i, bound := range m.bounds {
					cum += m.buckets[i]
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
						mergeLabel(m.labels, "le", fnum(bound)), cum)
				}
				cum += m.buckets[len(m.bounds)]
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					mergeLabel(m.labels, "le", "+Inf"), cum)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, m.labels, fnum(m.sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, m.labels, m.count)
				m.mu.Unlock()
			}
		}
	}
	return nil
}

// mergeLabel inserts one extra label pair into a rendered label string.
func mergeLabel(labels, key, val string) string {
	extra := fmt.Sprintf("%s=%q", key, val)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WriteCSV renders every series as "metric,labels,value" rows (histograms as
// their _sum and _count). The header row makes the file self-describing.
func (r *Registry) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	fmt.Fprintln(w, "metric,labels,value")
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	csvField := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for _, f := range fams {
		for _, m := range f.sortedSeries() {
			switch m := m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s,%s,%d\n", f.name, csvField(m.labels), m.Value())
			case *Gauge:
				fmt.Fprintf(w, "%s,%s,%s\n", f.name, csvField(m.labels), fnum(m.Value()))
			case *Histogram:
				m.mu.Lock()
				fmt.Fprintf(w, "%s_sum,%s,%s\n", f.name, csvField(m.labels), fnum(m.sum))
				fmt.Fprintf(w, "%s_count,%s,%d\n", f.name, csvField(m.labels), m.count)
				m.mu.Unlock()
			}
		}
	}
	return nil
}
