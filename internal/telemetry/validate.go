package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Validators for the three telemetry outputs. The CLI's -validate-telemetry
// mode and the CI telemetry-smoke job call these to assert that a run's
// trace, metrics and manifest files parse and carry the required structure.

// ValidateTraceFile checks that every line of a trace file is a well-formed
// Chrome trace event (valid JSON with name, ph, pid/tid and a timestamp) and
// returns the number of events.
func ValidateTraceFile(path string) (events int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var ev struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			PID  *int     `json:"pid"`
			TID  *uint64  `json:"tid"`
		}
		if err := json.Unmarshal(text, &ev); err != nil {
			return events, fmt.Errorf("%s:%d: bad trace event: %w", path, line, err)
		}
		switch {
		case ev.Name == "":
			return events, fmt.Errorf("%s:%d: trace event without name", path, line)
		case ev.Ph == "":
			return events, fmt.Errorf("%s:%d: trace event without ph", path, line)
		case ev.TS == nil:
			return events, fmt.Errorf("%s:%d: trace event without ts", path, line)
		case ev.PID == nil || ev.TID == nil:
			return events, fmt.Errorf("%s:%d: trace event without pid/tid", path, line)
		}
		events++
	}
	if err := sc.Err(); err != nil {
		return events, err
	}
	if events == 0 {
		return 0, fmt.Errorf("%s: empty trace", path)
	}
	return events, nil
}

// ValidateMetricsFile checks a metrics export — Prometheus text or CSV,
// chosen by the ".csv" suffix as on write — and returns the number of
// sample lines.
func ValidateMetricsFile(path string) (samples int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if strings.HasSuffix(path, ".csv") {
		return validateMetricsCSV(path, string(data))
	}
	return validateMetricsProm(path, string(data))
}

func validateMetricsProm(path, text string) (int, error) {
	samples := 0
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if !strings.HasPrefix(rest, "HELP ") && !strings.HasPrefix(rest, "TYPE ") {
				return samples, fmt.Errorf("%s:%d: unknown comment %q", path, i+1, line)
			}
			continue
		}
		// A sample is "name[{labels}] value": the value after the last
		// space must parse as a number and the name must be before any
		// '{'.
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return samples, fmt.Errorf("%s:%d: malformed sample %q", path, i+1, line)
		}
		val := line[sp+1:]
		var f float64
		if val != "+Inf" && val != "-Inf" && val != "NaN" {
			if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
				return samples, fmt.Errorf("%s:%d: bad sample value %q", path, i+1, val)
			}
		}
		name := line[:sp]
		if b := strings.IndexByte(name, '{'); b >= 0 {
			if !strings.HasSuffix(name, "}") {
				return samples, fmt.Errorf("%s:%d: unclosed label set in %q", path, i+1, line)
			}
			name = name[:b]
		}
		if name == "" {
			return samples, fmt.Errorf("%s:%d: sample without metric name", path, i+1)
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("%s: no samples", path)
	}
	return samples, nil
}

func validateMetricsCSV(path, text string) (int, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[0] != "metric,labels,value" {
		return 0, fmt.Errorf("%s: missing metric,labels,value header", path)
	}
	if len(lines) == 1 {
		return 0, fmt.Errorf("%s: no samples", path)
	}
	return len(lines) - 1, nil
}

// ValidateManifestFile checks that a manifest file is valid JSON with the
// required schema fields and internally consistent cache accounting, and
// returns the parsed manifest.
func ValidateManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case m.Tool == "":
		return nil, fmt.Errorf("%s: missing tool", path)
	case m.FormatVersion != ManifestFormatVersion:
		return nil, fmt.Errorf("%s: format_version %d, want %d", path, m.FormatVersion, ManifestFormatVersion)
	case m.SimVersion == 0:
		return nil, fmt.Errorf("%s: missing simulator_version", path)
	case m.Config.Scale == 0:
		return nil, fmt.Errorf("%s: missing config.scale", path)
	case len(m.Experiments) == 0:
		return nil, fmt.Errorf("%s: no experiments recorded", path)
	}
	var failed int
	for i, c := range m.Cells {
		if c.Platform == "" || c.Alloc == "" || c.Workload == "" || c.Cores == 0 {
			return nil, fmt.Errorf("%s: cells[%d] incomplete: %+v", path, i, c)
		}
		if c.Failed {
			failed++
		}
	}
	if failed != len(m.Failures) {
		return nil, fmt.Errorf("%s: %d failed cells but %d failure records", path, failed, len(m.Failures))
	}
	if total := m.CacheHits + m.CacheMisses; total > 0 {
		want := float64(m.CacheHits) / float64(total)
		if diff := m.CacheHitRatio - want; diff > 1e-9 || diff < -1e-9 {
			return nil, fmt.Errorf("%s: cache_hit_ratio %g inconsistent with hits/misses (want %g)",
				path, m.CacheHitRatio, want)
		}
	}
	return &m, nil
}
