package core_test

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

// TestConformance runs the shared allocator suite against DDmalloc with the
// paper's configuration and with the §3.3 optimizations enabled.
func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator {
		return core.New(env, core.DefaultOptions())
	})
}

func TestConformanceLargePagesAndPID(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator {
		return core.New(env, core.Options{LargePages: true, PID: 17})
	})
}

func TestConformanceSmallSegments(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator {
		return core.New(env, core.Options{SegmentSize: 8 * 1024})
	})
}
