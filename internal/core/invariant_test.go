package core

import (
	"testing"
	"testing/quick"

	"webmm/internal/heap"
	"webmm/internal/sim"
)

// TestLiveObjectsNeverOverlapProperty drives DDmalloc with random
// malloc/free/realloc/freeAll sequences and checks the fundamental heap
// invariant: the byte ranges of live objects are pairwise disjoint.
func TestLiveObjectsNeverOverlapProperty(t *testing.T) {
	type op struct {
		Kind byte
		Size uint16
	}
	f := func(seed uint64, ops []op) bool {
		d, env := newDD(t, DefaultOptions())
		rng := sim.NewRNG(seed)
		live := map[heap.Ptr]uint64{} // ptr -> rounded size
		check := func() bool {
			type span struct{ lo, hi uint64 }
			var spans []span
			for p, sz := range live {
				spans = append(spans, span{uint64(p), uint64(p) + sz})
			}
			for i := range spans {
				for j := i + 1; j < len(spans); j++ {
					if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
						return false
					}
				}
			}
			return true
		}
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0, 1: // malloc-heavy mix
				size := uint64(o.Size)%4000 + 1
				p := d.Malloc(size)
				if _, dup := live[p]; dup {
					return false
				}
				live[p] = heap.RoundedSize(size)
			case 2:
				if len(live) == 0 {
					continue
				}
				for p := range live {
					if rng.Bool(0.5) {
						d.Free(p)
						delete(live, p)
						break
					}
				}
			case 3:
				if len(live) == 0 || !rng.Bool(0.3) {
					continue
				}
				for p, sz := range live {
					newSize := uint64(o.Size)%2000 + 1
					np := d.Realloc(p, sz, newSize)
					delete(live, p)
					if _, dup := live[np]; dup {
						return false
					}
					live[np] = heap.RoundedSize(newSize)
					break
				}
			}
			env.Drain()
		}
		if !check() {
			return false
		}
		d.FreeAll()
		return d.UsedSegments() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSegmentClassConsistencyProperty checks that every live object's
// segment is dedicated to exactly that object's size class.
func TestSegmentClassConsistencyProperty(t *testing.T) {
	d, env := newDD(t, DefaultOptions())
	rng := sim.NewRNG(99)
	type rec struct {
		p    heap.Ptr
		size uint64
	}
	var live []rec
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && rng.Bool(0.45) {
			k := rng.Intn(len(live))
			d.Free(live[k].p)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := rng.Uint64n(8000) + 1
		live = append(live, rec{d.Malloc(size), size})
		env.Drain()
	}
	classes := d.SegmentClasses()
	segSize := DefaultOptions().SegmentSize
	for _, r := range live {
		if r.size > segSize/2 || r.size > heap.MaxClassSize {
			continue // large objects are marked classLarge
		}
		si := d.segIndexOf(r.p)
		want := heap.SizeToClass(r.size)
		if int(classes[si]) != want {
			t.Fatalf("object %#x (size %d, class %d) lives in segment %d of class %d",
				r.p, r.size, want, si, classes[si])
		}
	}
}

// TestFootprintNeverExceedsAddressSpaceUse ties the allocator's own
// accounting to the OS-level accounting underneath it.
func TestFootprintNeverExceedsAddressSpaceUse(t *testing.T) {
	d, env := newDD(t, DefaultOptions())
	for i := 0; i < 30000; i++ {
		d.Malloc(uint64(8 + i%2000))
		if i%1000 == 0 {
			env.Drain()
		}
	}
	if fp, mapped := d.PeakFootprint(), env.AS.HighWater(); fp > mapped {
		t.Fatalf("allocator claims %d bytes footprint but only %d were ever mapped", fp, mapped)
	}
}
