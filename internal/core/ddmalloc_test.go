package core

import (
	"testing"
	"testing/quick"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

func newDD(t testing.TB, opt Options) (*DDmalloc, *sim.Env) {
	t.Helper()
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := sim.NewEnv(as, sim.NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)
	return New(env, opt), env
}

func TestMallocReturnsAlignedDistinctAddresses(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	seen := map[heap.Ptr]bool{}
	for i := 0; i < 1000; i++ {
		p := d.Malloc(48)
		if p == 0 {
			t.Fatal("Malloc returned null")
		}
		if uint64(p)%8 != 0 {
			t.Fatalf("object %#x not 8-byte aligned", p)
		}
		if seen[p] {
			t.Fatalf("address %#x returned twice while live", p)
		}
		seen[p] = true
	}
}

func TestObjectsOfOneClassPackWithoutHeaders(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	// Objects of the same class carved from one segment must be exactly
	// classSize apart: no per-object header (paper §3.2).
	a := d.Malloc(64)
	b := d.Malloc(64)
	if b-a != 64 {
		t.Fatalf("consecutive 64-byte objects %d bytes apart, want 64 (headerless)", b-a)
	}
}

func TestFreeReuseLIFO(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	p1 := d.Malloc(100)
	p2 := d.Malloc(100)
	d.Free(p1)
	d.Free(p2)
	// LIFO: the most recently freed object is reused first (paper
	// Figure 3: "the freed objects are reused in LIFO order").
	if got := d.Malloc(100); got != p2 {
		t.Fatalf("first realloc = %#x, want most recently freed %#x", got, p2)
	}
	if got := d.Malloc(100); got != p1 {
		t.Fatalf("second realloc = %#x, want %#x", got, p1)
	}
}

func TestSegmentAlignmentRecoversSizeClass(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	sizes := []uint64{8, 24, 64, 128, 160, 512, 1024, 16384}
	ptrs := make([]heap.Ptr, len(sizes))
	for i, s := range sizes {
		ptrs[i] = d.Malloc(s)
	}
	// Free them all; each must land on its own class list and be reused
	// for the same class.
	for _, p := range ptrs {
		d.Free(p)
	}
	for i := len(sizes) - 1; i >= 0; i-- {
		if got := d.Malloc(sizes[i]); got != ptrs[i] {
			t.Fatalf("size %d: reuse returned %#x, want %#x", sizes[i], got, ptrs[i])
		}
	}
}

func TestDifferentClassesUseDifferentSegments(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	segSize := DefaultOptions().SegmentSize
	a := d.Malloc(8)
	b := d.Malloc(4096)
	if a&^heap.Ptr(segSize-1) == b&^heap.Ptr(segSize-1) {
		t.Fatal("two size classes share a segment")
	}
}

func TestLargeObjects(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	segSize := DefaultOptions().SegmentSize
	p := d.Malloc(3 * segSize) // 3-segment large object
	if p == 0 || uint64(p)%segSize != 0 {
		t.Fatalf("large object at %#x, want segment-aligned", p)
	}
	before := d.UsedSegments()
	d.Free(p)
	if d.UsedSegments() != before-3 {
		t.Fatalf("large free released %d segments, want 3", before-d.UsedSegments())
	}
	// The freed run is recycled for an equal-sized request.
	if q := d.Malloc(3 * segSize); q != p {
		t.Fatalf("large run not recycled: got %#x, want %#x", q, p)
	}
}

func TestFreeAllResetsHeapToInitialState(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	first := d.Malloc(64)
	for i := 0; i < 5000; i++ {
		d.Malloc(uint64(8 + 8*(i%50)))
	}
	d.FreeAll()
	if d.UsedSegments() != 0 {
		t.Fatalf("UsedSegments after FreeAll = %d, want 0", d.UsedSegments())
	}
	// The next transaction recarves the same (warm) segments from the
	// bottom of the arena: the very first allocation repeats.
	if got := d.Malloc(64); got != first {
		t.Fatalf("first post-FreeAll malloc = %#x, want %#x (warm reuse)", got, first)
	}
}

func TestFreeAllCostIsMetadataOnly(t *testing.T) {
	d, env := newDD(t, DefaultOptions())
	for i := 0; i < 20000; i++ {
		d.Malloc(64)
	}
	env.Drain()
	d.FreeAll()
	var bytes uint64
	for _, ev := range env.Events() {
		bytes += uint64(ev.Size)
	}
	heapBytes := uint64(20000 * 64)
	if bytes*20 > heapBytes {
		t.Fatalf("FreeAll touched %d bytes for a %d-byte heap; metadata-only reset expected",
			bytes, heapBytes)
	}
}

func TestReallocSameClassInPlace(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	p := d.Malloc(100) // class size 104
	if q := d.Realloc(p, 100, 103); q != p {
		t.Fatalf("same-class realloc moved %#x -> %#x", p, q)
	}
	q := d.Realloc(p, 103, 300) // class changes
	if q == p {
		t.Fatal("cross-class realloc did not move")
	}
}

func TestReallocCopiesPayload(t *testing.T) {
	d, env := newDD(t, DefaultOptions())
	p := d.Malloc(100)
	env.Drain()
	d.Realloc(p, 100, 5000)
	var sawCopyRead bool
	for _, ev := range env.Events() {
		if ev.Kind == sim.Read && ev.Addr == p && ev.Size == 100 {
			sawCopyRead = true
		}
	}
	if !sawCopyRead {
		t.Fatal("moving realloc did not read the old payload")
	}
}

func TestStatsCounting(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	p := d.Malloc(10)
	q := d.Malloc(20)
	d.Free(p)
	d.Realloc(q, 20, 600)
	d.FreeAll()
	s := d.Stats()
	if s.Mallocs != 3 { // 2 explicit + 1 inside realloc
		t.Errorf("Mallocs = %d, want 3", s.Mallocs)
	}
	if s.Frees != 2 { // 1 explicit + 1 inside realloc
		t.Errorf("Frees = %d, want 2", s.Frees)
	}
	if s.Reallocs != 1 || s.FreeAlls != 1 {
		t.Errorf("Reallocs/FreeAlls = %d/%d, want 1/1", s.Reallocs, s.FreeAlls)
	}
	if s.BytesRequested != 10+20+600 {
		t.Errorf("BytesRequested = %d, want 630", s.BytesRequested)
	}
}

func TestPeakFootprintTracksSegmentsPlusMetadata(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	base := d.PeakFootprint()
	if base == 0 {
		t.Fatal("metadata footprint missing")
	}
	for i := 0; i < 10000; i++ {
		d.Malloc(512)
	}
	grown := d.PeakFootprint()
	want := uint64(10000 * 512)
	if grown-base < want {
		t.Fatalf("footprint grew by %d for %d bytes of objects", grown-base, want)
	}
	d.FreeAll()
	d.ResetPeak()
	if got := d.PeakFootprint(); got != base {
		t.Fatalf("footprint after FreeAll+ResetPeak = %d, want %d", got, base)
	}
}

func TestMallocFreeInstructionBudget(t *testing.T) {
	// Defrag dodging means the malloc/free fast paths stay a handful of
	// instructions. Warm up a free list, then measure a pop+push pair.
	d, env := newDD(t, DefaultOptions())
	p := d.Malloc(64)
	d.Free(p)
	env.Drain()
	q := d.Malloc(64)
	d.Free(q)
	instr := env.Drain()
	if instr[sim.ClassAlloc] > 40 {
		t.Fatalf("warm malloc+free cost %d instructions, want <= 40", instr[sim.ClassAlloc])
	}
}

func TestPIDOffsetSeparatesMetadata(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	cl := sim.NewCodeLayout(4*mem.KiB, 128*mem.KiB)
	d0 := New(sim.NewEnv(as, cl, 1), Options{PID: 0})
	d1 := New(sim.NewEnv(as, cl, 2), Options{PID: 1})
	set := func(a mem.Addr) uint64 { return (uint64(a) / 64) % 64 }
	if set(d0.headsArr) == set(d1.headsArr) {
		t.Fatalf("metadata of pid 0 and 1 map to the same cache set %d", set(d0.headsArr))
	}
}

func TestLargePagesOption(t *testing.T) {
	d, env := newDD(t, Options{LargePages: true})
	p := d.Malloc(64)
	if got := env.AS.PageShift(p); got != mem.LargePageShiftXeon {
		t.Fatalf("heap page shift = %d, want large page %d", got, mem.LargePageShiftXeon)
	}
}

func TestQuickMallocFreeNeverDoubleAllocates(t *testing.T) {
	d, _ := newDD(t, DefaultOptions())
	rng := sim.NewRNG(7)
	live := map[heap.Ptr]uint64{}
	f := func() bool {
		for i := 0; i < 200; i++ {
			if len(live) > 0 && rng.Bool(0.45) {
				for p := range live {
					delete(live, p)
					d.Free(p)
					break
				}
				continue
			}
			size := rng.Uint64n(2000) + 1
			p := d.Malloc(size)
			if _, dup := live[p]; dup {
				return false
			}
			live[p] = size
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSegmentSizeOptionRespected(t *testing.T) {
	d, _ := newDD(t, Options{SegmentSize: 64 * mem.KiB})
	p := d.Malloc(20 * mem.KiB) // below half of 64 KiB: class allocation
	if p == 0 {
		t.Fatal("null")
	}
	if d.UsedSegments() != 1 {
		t.Fatalf("UsedSegments = %d, want 1", d.UsedSegments())
	}
}
