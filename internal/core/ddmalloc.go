// Package core implements DDmalloc, the defrag-dodging memory allocator
// that is the central contribution of the paper (§3).
//
// DDmalloc is a segregated-storage allocator built on three decisions:
//
//  1. The heap is an array of fixed-size, size-aligned *segments* (32 KiB by
//     default). A segment is carved into equal objects of one size class;
//     the object's segment — and therefore its size — is recovered from its
//     address alone, so objects carry *no per-object header*.
//  2. malloc and free do nothing but free-list maintenance: freed objects
//     are pushed LIFO onto a per-class list threaded through the objects
//     themselves; allocation pops the head. There is no coalescing, no
//     splitting, no sorting — the defragmentation work of general-purpose
//     allocators is eliminated entirely, not merely deferred (contrast
//     TCmalloc, which postpones it until a threshold).
//  3. freeAll re-initializes only the metadata (the free-list head array
//     and the per-segment size-class byte array), which is tiny compared to
//     the heap, so bulk freeing at end-of-transaction is almost free.
//
// The per-object free capability this preserves is what distinguishes
// defrag-dodging from region-based allocation on multicore machines: freed
// objects are reused LIFO while their cache lines are still warm, so the
// allocator adds no bus traffic as cores scale (paper §4.3, Figure 8).
//
// The implementation also carries the paper's §3.3 optimizations: the
// metadata block is displaced by a per-process offset to spread metadata
// across cache sets (vital on Niagara, where four threads share a tiny L1),
// and the heap can be backed by large pages to cut D-TLB misses.
package core

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// Instruction costs of the DDmalloc paths, in simulated instructions. The
// fast paths are a handful of ALU operations and the touches emitted
// alongside them; these constants are the "cost of maintenance of the free
// lists" the paper keeps and the only cost it keeps.
const (
	costMallocFast = 12 // class map + list pop
	costCarve      = 10 // bump within a segment
	costNewSeg     = 38 // acquire and initialize a segment
	costFree       = 11 // segment lookup + list push
	costLarge      = 30 // large-object segment marking
	costFreeAllFix = 60 // freeAll fixed overhead
	costReallocIP  = 14 // realloc satisfied in place

	// codeSize is DDmalloc's simulated code footprint. The whole
	// allocator is a few small functions (this file), far below the
	// ~20 KiB of a defragmenting allocator.
	codeSize = 4 * mem.KiB
)

// Options configure a DDmalloc heap.
type Options struct {
	// SegmentSize is the segment granule; the paper chose 32 KiB after a
	// throughput sweep (§3.2) and it must be a power of two.
	SegmentSize uint64
	// ArenaSegments is how many segments each arena mapping reserves.
	ArenaSegments int
	// LargePages backs the heap with large pages (§3.3 optimization 2;
	// on in the paper's Niagara runs, off on Xeon for fairness).
	LargePages bool
	// PID displaces the metadata block by (PID mod 61) cache lines to
	// avoid associativity overflows between processes sharing a cache
	// (§3.3 optimization 1).
	PID int
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{SegmentSize: 32 * mem.KiB, ArenaSegments: 2048}
}

func (o Options) withDefaults() Options {
	if o.SegmentSize == 0 {
		o.SegmentSize = 32 * mem.KiB
	}
	if o.SegmentSize&(o.SegmentSize-1) != 0 {
		panic(fmt.Sprintf("ddmalloc: segment size %d not a power of two", o.SegmentSize))
	}
	if o.ArenaSegments == 0 {
		o.ArenaSegments = 2048
	}
	return o
}

// segment mirrors the Go-side state of one heap segment. The simulated heap
// has no backing storage, so the authoritative metadata (size-class byte,
// free-list heads) lives at simulated addresses that DDmalloc touches, while
// this mirror lets the implementation act on it.
type segment struct {
	base mem.Addr
	// class is the size class carved into this segment; classUnused
	// marks an unused segment and classLarge a segment of a multi-
	// segment large object.
	class int16
	// remaining counts the never-yet-allocated objects at the segment
	// top; bump is the address of the first of them. DDmalloc stores the
	// count *in* the first unallocated object (paper Figure 3), so
	// carving reads and rewrites that word.
	remaining int
	bump      mem.Addr
}

const (
	classUnused int16 = -1
	classLarge  int16 = -2
)

// DDmalloc is the defrag-dodging allocator. It is not safe for concurrent
// use: the paper gives each runtime thread its own heap precisely so that no
// allocator locks are needed (§3.3 optimization 3).
type DDmalloc struct {
	env *sim.Env
	opt Options

	arenas   []mem.Mapping
	segments []segment
	// nextFresh indexes the first never-used segment; freeSegs lists
	// segments returned by large-object frees or freeAll.
	nextFresh int
	freeSegs  []int
	// largeRuns recycles multi-segment runs by length.
	largeRuns map[int][]int

	free [heap.NumClasses]heap.FreeList
	cur  [heap.NumClasses]int // index into segments, -1 if none

	// Simulated metadata addresses.
	metaBase  mem.Addr
	headsArr  mem.Addr // NumClasses free-list head pointers
	classArr  mem.Addr // one size-class byte per segment
	largeMeta mem.Addr

	usedSegs     int
	peakUsedSegs int
	metaBytes    uint64
	stats        heap.Stats

	// large tracks live large objects: start segment index and run length.
	large map[mem.Addr]largeObj
}

type largeObj struct {
	startSeg int
	nSegs    int
}

// New builds a DDmalloc heap drawing memory from env's address space.
func New(env *sim.Env, opt Options) *DDmalloc {
	opt = opt.withDefaults()
	d := &DDmalloc{
		env:       env,
		opt:       opt,
		largeRuns: make(map[int][]int),
		large:     make(map[mem.Addr]largeObj),
	}
	for i := range d.cur {
		d.cur[i] = -1
	}
	// Metadata mapping: heads array + class byte array + large-object
	// table, displaced by the PID offset.
	pidOff := uint64(opt.PID%61) * mem.LineSize
	metaSize := uint64(heap.NumClasses*8) + uint64(opt.ArenaSegments*8) + 4*mem.KiB + pidOff
	m := env.AS.Map(metaSize, 0, mem.SmallPages)
	d.metaBase = m.Base + mem.Addr(pidOff)
	d.headsArr = d.metaBase
	d.classArr = d.metaBase + heap.NumClasses*8
	d.largeMeta = d.classArr + mem.Addr(opt.ArenaSegments)
	d.metaBytes = metaSize
	if !d.addArena() {
		panic("ddmalloc: cannot map initial arena")
	}
	return d
}

// addArena maps another run of segments, aligned to the segment size so
// that address arithmetic can locate an object's segment. It reports false
// when the address space refuses (OOM).
func (d *DDmalloc) addArena() bool {
	kind := mem.SmallPages
	if d.opt.LargePages {
		kind = mem.LargePages
	}
	a, err := d.env.AS.TryMap(uint64(d.opt.ArenaSegments)*d.opt.SegmentSize, d.opt.SegmentSize, kind)
	if err != nil {
		return false
	}
	d.env.Instr(400, sim.ClassOS) // mmap syscall
	d.arenas = append(d.arenas, a)
	base := len(d.segments)
	for i := 0; i < d.opt.ArenaSegments; i++ {
		d.segments = append(d.segments, segment{
			base:  a.Base + mem.Addr(uint64(i)*d.opt.SegmentSize),
			class: classUnused,
		})
	}
	if base == 0 {
		d.nextFresh = 0
	}
	return true
}

// Name implements heap.Allocator.
func (d *DDmalloc) Name() string { return "DDmalloc" }

// CodeSize implements heap.Allocator.
func (d *DDmalloc) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator: per-object free is the point.
func (d *DDmalloc) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator.
func (d *DDmalloc) SupportsFreeAll() bool { return true }

// Stats implements heap.Allocator.
func (d *DDmalloc) Stats() heap.Stats { return d.stats }

// headAddr returns the simulated address of class c's free-list head.
func (d *DDmalloc) headAddr(c int) mem.Addr { return d.headsArr + mem.Addr(c*8) }

// classByteAddr returns the simulated address of segment i's class byte.
func (d *DDmalloc) classByteAddr(i int) mem.Addr { return d.classArr + mem.Addr(i) }

// isLarge reports whether a request bypasses the size classes: above half a
// segment (paper §3.2), or above the largest class the map covers when the
// segment size is tuned upward.
func (d *DDmalloc) isLarge(size uint64) bool {
	return size > d.opt.SegmentSize/2 || size > heap.MaxClassSize
}

// segIndexOf locates the segment containing p via alignment arithmetic
// (possible only because segments are size-aligned — the design that lets
// DDmalloc omit per-object headers).
func (d *DDmalloc) segIndexOf(p mem.Addr) int {
	segBase := p &^ mem.Addr(d.opt.SegmentSize-1)
	for ai, a := range d.arenas {
		if a.Contains(p) {
			return ai*d.opt.ArenaSegments + int((segBase-a.Base)/mem.Addr(d.opt.SegmentSize))
		}
	}
	panic(fmt.Sprintf("ddmalloc: address %#x outside every arena", p))
}

// Malloc implements heap.Allocator.
func (d *DDmalloc) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	d.env.RecordAlloc(size)
	d.stats.Mallocs++
	d.stats.BytesRequested += size
	if d.isLarge(size) {
		return d.mallocLarge(size)
	}
	cls := heap.SizeToClass(size)
	d.stats.BytesAllocated += heap.ClassSize(cls)
	d.env.Instr(costMallocFast, sim.ClassAlloc)

	// Check the free list for the class (one metadata read).
	d.env.Read(d.headAddr(cls), 8, sim.ClassAlloc)
	if p := d.free[cls].Pop(); p != 0 {
		// Pop: read the link word stored in the object, store the
		// new head.
		d.env.Read(p, 8, sim.ClassAlloc)
		d.env.Write(d.headAddr(cls), 8, sim.ClassAlloc)
		return p
	}
	return d.carve(cls)
}

// carve takes the next never-allocated object from the class's current
// segment, acquiring a segment if needed.
func (d *DDmalloc) carve(cls int) heap.Ptr {
	si := d.cur[cls]
	if si < 0 || d.segments[si].remaining == 0 {
		si = d.acquireSegment(cls)
		if si < 0 {
			return 0 // OOM: no segment available and no arena mappable
		}
		d.cur[cls] = si
	}
	seg := &d.segments[si]
	objSize := heap.ClassSize(cls)
	p := seg.bump

	d.env.Instr(costCarve, sim.ClassAlloc)
	// The count of unallocated objects lives at the top of the
	// unallocated area (paper Figure 3): read it here, rewrite it at the
	// next object.
	d.env.Read(p, 8, sim.ClassAlloc)
	seg.remaining--
	seg.bump += mem.Addr(objSize)
	if seg.remaining > 0 {
		d.env.Write(seg.bump, 8, sim.ClassAlloc)
	}
	return p
}

// acquireSegment obtains an unused segment and dedicates it to class cls,
// or returns -1 on OOM.
func (d *DDmalloc) acquireSegment(cls int) int {
	si := d.takeSegment()
	if si < 0 {
		return -1
	}
	seg := &d.segments[si]
	objSize := heap.ClassSize(cls)
	seg.class = int16(cls)
	seg.remaining = int(d.opt.SegmentSize / objSize)
	seg.bump = seg.base

	d.env.Instr(costNewSeg, sim.ClassAlloc)
	// Record the size class in the metadata array and seed the
	// unallocated count at the segment top.
	d.env.Write(d.classByteAddr(si), 1, sim.ClassAlloc)
	d.env.Write(seg.base, 8, sim.ClassAlloc)
	return si
}

// takeSegment returns an unused segment index, preferring recycled ones
// (warm), then fresh ones, mapping a new arena as a last resort. Returns
// -1 on OOM.
func (d *DDmalloc) takeSegment() int {
	if n := len(d.freeSegs); n > 0 {
		si := d.freeSegs[n-1]
		d.freeSegs = d.freeSegs[:n-1]
		d.usedSegs++
		if d.usedSegs > d.peakUsedSegs {
			d.peakUsedSegs = d.usedSegs
		}
		return si
	}
	if d.nextFresh >= len(d.segments) {
		if !d.addArena() {
			return -1
		}
	}
	si := d.nextFresh
	d.nextFresh++
	d.usedSegs++
	if d.usedSegs > d.peakUsedSegs {
		d.peakUsedSegs = d.usedSegs
	}
	return si
}

// mallocLarge serves objects bigger than half a segment by dedicating a run
// of contiguous segments, marked in the class array (paper §3.2).
func (d *DDmalloc) mallocLarge(size uint64) heap.Ptr {
	nSegs := int((size + d.opt.SegmentSize - 1) / d.opt.SegmentSize)
	d.stats.BytesAllocated += uint64(nSegs) * d.opt.SegmentSize
	d.env.Instr(costLarge, sim.ClassAlloc)

	var start int
	if runs := d.largeRuns[nSegs]; len(runs) > 0 {
		start = runs[len(runs)-1]
		d.largeRuns[nSegs] = runs[:len(runs)-1]
		d.usedSegs += nSegs
		if d.usedSegs > d.peakUsedSegs {
			d.peakUsedSegs = d.usedSegs
		}
	} else {
		// Fresh contiguous run; individual recycled segments cannot be
		// assumed adjacent.
		if d.nextFresh+nSegs > len(d.segments) {
			// Skip to freshly mapped whole arenas so the run is
			// contiguous (back-to-back mappings from the bump address
			// space); an object bigger than one arena takes several.
			// The leftover fresh segments stay available individually.
			newStart := len(d.segments)
			for len(d.segments) < newStart+nSegs {
				if !d.addArena() {
					// OOM: arenas already added stay as fresh
					// segments for future allocations.
					return 0
				}
			}
			for i := d.nextFresh; i < newStart; i++ {
				d.freeSegs = append(d.freeSegs, i)
			}
			d.nextFresh = newStart
		}
		start = d.nextFresh
		d.nextFresh += nSegs
		d.usedSegs += nSegs
		if d.usedSegs > d.peakUsedSegs {
			d.peakUsedSegs = d.usedSegs
		}
	}
	for i := 0; i < nSegs; i++ {
		d.segments[start+i].class = classLarge
		d.env.Write(d.classByteAddr(start+i), 1, sim.ClassAlloc)
	}
	p := d.segments[start].base
	d.large[p] = largeObj{startSeg: start, nSegs: nSegs}
	return p
}

// Free implements heap.Allocator: push the object onto its class's LIFO
// free list. No coalescing, no sorting — this is the entire free path.
func (d *DDmalloc) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	d.stats.Frees++
	if lo, ok := d.large[p]; ok {
		d.freeLarge(p, lo)
		return
	}
	si := d.segIndexOf(p)
	seg := &d.segments[si]
	if seg.class < 0 {
		panic(fmt.Sprintf("ddmalloc: free of %#x in unused segment %d", p, si))
	}
	cls := int(seg.class)

	d.env.Instr(costFree, sim.ClassAlloc)
	// Read the class byte, chain the object (write its link word), and
	// store the new head.
	d.env.Read(d.classByteAddr(si), 1, sim.ClassAlloc)
	d.env.Write(p, 8, sim.ClassAlloc)
	d.env.Write(d.headAddr(cls), 8, sim.ClassAlloc)
	d.free[cls].Push(p)
}

func (d *DDmalloc) freeLarge(p mem.Addr, lo largeObj) {
	d.env.Instr(costLarge, sim.ClassAlloc)
	for i := 0; i < lo.nSegs; i++ {
		d.segments[lo.startSeg+i].class = classUnused
		d.env.Write(d.classByteAddr(lo.startSeg+i), 1, sim.ClassAlloc)
	}
	d.largeRuns[lo.nSegs] = append(d.largeRuns[lo.nSegs], lo.startSeg)
	d.usedSegs -= lo.nSegs
	delete(d.large, p)
}

// Realloc implements heap.Allocator. A request that stays within the same
// size class is satisfied in place; otherwise allocate-copy-free.
func (d *DDmalloc) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	d.stats.Reallocs++
	if p == 0 {
		return d.Malloc(newSize)
	}
	if newSize > 0 && !d.isLarge(oldSize) && !d.isLarge(newSize) {
		si := d.segIndexOf(p)
		cls := int(d.segments[si].class)
		d.env.Instr(costReallocIP, sim.ClassAlloc)
		d.env.Read(d.classByteAddr(si), 1, sim.ClassAlloc)
		if cls >= 0 && heap.SizeToClass(newSize) == cls {
			return p
		}
	}
	np := d.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	d.env.Copy(np, p, n, sim.ClassAlloc)
	d.Free(p)
	return np
}

// FreeAll implements heap.Allocator: reinitialize the metadata — and only
// the metadata. The heap contents are abandoned in place; every segment
// becomes unused and will be recarved (warm) by the next transaction.
func (d *DDmalloc) FreeAll() {
	d.stats.FreeAlls++
	touched := d.highestTouchedSeg()
	// Clearing the class-byte array and free-list heads is the whole
	// cost (paper: "the overhead of freeAll is almost negligible").
	d.env.Instr(costFreeAllFix+uint64(touched)/8, sim.ClassAlloc)
	d.env.Write(d.headsArr, heap.NumClasses*8, sim.ClassAlloc)
	if touched > 0 {
		d.env.Write(d.classArr, uint64(touched), sim.ClassAlloc)
	}

	for i := range d.free {
		d.free[i].Reset()
		d.cur[i] = -1
	}
	for i := 0; i < touched; i++ {
		d.segments[i].class = classUnused
		d.segments[i].remaining = 0
	}
	d.freeSegs = d.freeSegs[:0]
	d.largeRuns = make(map[int][]int)
	d.large = make(map[mem.Addr]largeObj)
	d.nextFresh = 0
	d.usedSegs = 0
}

// highestTouchedSeg returns how many low segment slots have ever been used
// since the last FreeAll (freeAll only needs to clear those bytes).
func (d *DDmalloc) highestTouchedSeg() int {
	n := d.nextFresh
	if n > len(d.segments) {
		n = len(d.segments)
	}
	return n
}

// PeakFootprint implements heap.Allocator: allocated segments plus metadata
// (the paper's Figure 9 definition for DDmalloc).
func (d *DDmalloc) PeakFootprint() uint64 {
	return uint64(d.peakUsedSegs)*d.opt.SegmentSize + d.metaBytes
}

// ResetPeak implements heap.Allocator.
func (d *DDmalloc) ResetPeak() { d.peakUsedSegs = d.usedSegs }

// UsedSegments reports the segments currently dedicated to a class or large
// object (for tests).
func (d *DDmalloc) UsedSegments() int { return d.usedSegs }

// SegmentClasses returns a snapshot of every segment's size class in heap
// order (-1 unused, -2 large object) — the simulated class-byte array, used
// by the heapmap visualizer.
func (d *DDmalloc) SegmentClasses() []int16 {
	out := make([]int16, len(d.segments))
	for i := range d.segments {
		out[i] = d.segments[i].class
	}
	return out
}
