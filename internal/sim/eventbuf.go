package sim

import "webmm/internal/mem"

// EventBuf is the struct-of-arrays event buffer behind an Env. The paper's
// own lesson — data layout decides cache behaviour — applies to the
// simulator pricing its events: the machine's hot loop reads addresses,
// sizes and meta bytes in separate streaks, so keeping them in parallel
// slices instead of an []Event array-of-structs turns each pricing pass
// into three dense sequential scans (8 B + 4 B + 1 B per event instead of a
// padded 16 B record), and the meta scan that drives dispatch fits ~64
// events per host cache line.
//
// Kind and class are packed into one meta byte (kind in the low two bits,
// class above) so event dispatch needs a single byte load.
// The columns are kept at full backing length with one shared fill cursor
// (n), rather than as three len-tracked append targets: a push then writes
// three slots and bumps one integer instead of updating three slice lengths,
// and the generated code keeps the columns' base pointers in registers
// across the run-emission loops.
type EventBuf struct {
	addrs []mem.Addr
	sizes []uint32
	meta  []uint8
	n     int
}

const (
	metaKindMask   = 0b11
	metaClassShift = 2
)

// PackMeta packs an event's kind and class into one meta byte.
func PackMeta(k Kind, c Class) uint8 {
	return uint8(k) | uint8(c)<<metaClassShift
}

// MetaKind unpacks the kind from a meta byte.
func MetaKind(m uint8) Kind { return Kind(m & metaKindMask) }

// MetaClass unpacks the class from a meta byte.
func MetaClass(m uint8) Class { return Class(m >> metaClassShift) }

// Len returns the number of buffered events.
func (b *EventBuf) Len() int { return b.n }

// Cap returns the buffer's current capacity in events.
func (b *EventBuf) Cap() int { return len(b.meta) }

// Addrs returns the address column. The slice is owned by the buffer and
// invalidated by the next Reset.
func (b *EventBuf) Addrs() []mem.Addr { return b.addrs[:b.n] }

// Sizes returns the size column (bytes per event).
func (b *EventBuf) Sizes() []uint32 { return b.sizes[:b.n] }

// Meta returns the packed kind+class column; decode with MetaKind/MetaClass.
func (b *EventBuf) Meta() []uint8 { return b.meta[:b.n] }

// At decodes event i into the Event record form (tests and inspection; the
// pricing path walks the columns directly).
func (b *EventBuf) At(i int) Event {
	m := b.meta[i]
	return Event{
		Addr:  b.addrs[i],
		Size:  b.sizes[i],
		Kind:  MetaKind(m),
		Class: MetaClass(m),
	}
}

// push appends one event. The columns grow together and Reset retains their
// backing arrays, so once the buffer has reached a round's high-water mark
// every push writes in place — steady-state emission is allocation-free.
// Growth doubles explicitly: a round buffers hundreds of thousands of
// events, and append's ~1.25× regime above 1024 elements would reallocate
// and copy the columns ~5× their final size on the way up.
func (b *EventBuf) push(a mem.Addr, size uint32, meta uint8) {
	n := b.n
	if n == len(b.meta) {
		b.grow(1)
	}
	b.addrs[n] = a
	b.sizes[n] = size
	b.meta[n] = meta
	b.n = n + 1
}

// grow resizes the columns so at least need more events fit.
func (b *EventBuf) grow(need int) {
	c := 2 * len(b.meta)
	if c == 0 {
		c = 1024
	}
	for c < b.n+need {
		c *= 2
	}
	addrs := make([]mem.Addr, c)
	sizes := make([]uint32, c)
	meta := make([]uint8, c)
	copy(addrs, b.addrs[:b.n])
	copy(sizes, b.sizes[:b.n])
	copy(meta, b.meta[:b.n])
	b.addrs, b.sizes, b.meta = addrs, sizes, meta
}

// Reset empties the buffer, retaining capacity.
func (b *EventBuf) Reset() {
	b.n = 0
}

func newEventBuf(capacity int) EventBuf {
	return EventBuf{
		addrs: make([]mem.Addr, capacity),
		sizes: make([]uint32, capacity),
		meta:  make([]uint8, capacity),
	}
}
