package sim

import (
	"context"
	"time"
)

// checkpointStride is how many Hit calls one context poll covers. Polling a
// context's done channel is a synchronized load, so the simulation loops
// amortize it: the round loop stays within a handful of instructions per
// round on the uncancellable path and one channel poll per stride rounds on
// the cancellable one.
const checkpointStride = 4

// Checkpoint is a cooperative-cancellation guard for simulation loops. The
// simulator has no preemption points — a cell runs on its caller's
// goroutine until it finishes — so bounded cancellation latency comes from
// the loops themselves polling a Checkpoint between rounds.
//
// Deadlines are checked against the clock, not just the context's done
// channel: context.WithTimeout fires through a runtime timer, and a tight
// simulation loop can keep that timer from being serviced until after the
// cell would have finished. Comparing time.Now against ctx.Deadline makes
// an expired budget fire at the next poll regardless of timer delivery.
//
// A nil *Checkpoint is valid and never fires; NewCheckpoint returns nil for
// contexts that can never be cancelled (context.Background and friends), so
// an uncancellable run pays only a nil check per poll. A Checkpoint is
// owned by one goroutine; it is not safe for concurrent use.
type Checkpoint struct {
	ctx      context.Context
	done     <-chan struct{}
	deadline time.Time
	hasDL    bool
	count    uint32
	fired    bool
}

// NewCheckpoint returns a guard polling ctx, or nil when ctx can never be
// cancelled.
func NewCheckpoint(ctx context.Context) *Checkpoint {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	cp := &Checkpoint{ctx: ctx, done: done}
	cp.deadline, cp.hasDL = ctx.Deadline()
	return cp
}

// Hit reports whether the context has been cancelled or its deadline has
// passed, actually polling once every checkpointStride calls. Once it has
// fired it keeps returning true without polling again.
func (c *Checkpoint) Hit() bool {
	if c == nil {
		return false
	}
	if c.fired {
		return true
	}
	if c.count++; c.count < checkpointStride {
		return false
	}
	c.count = 0
	select {
	case <-c.done:
		c.fired = true
		return true
	default:
	}
	if c.hasDL && !time.Now().Before(c.deadline) {
		c.fired = true
		return true
	}
	return false
}

// Err returns the cancellation cause after Hit has fired, nil before. When
// the deadline passed before the context's own timer was serviced, the
// context still reports no error; the guard reports DeadlineExceeded itself
// so an expired budget is never mistaken for success.
func (c *Checkpoint) Err() error {
	if c == nil || !c.fired {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}
