package sim

import (
	"testing"

	"webmm/internal/mem"
)

// TestEnvSteadyStateEmissionDoesNotAllocate locks in the hot-path guarantee
// that once an Env's event buffer has grown to a round's high-water mark,
// emitting the same round again — reads, writes, copies, and Instr fetch
// runs — allocates nothing: Drain retains the backing array and every
// emission path writes in place.
func TestEnvSteadyStateEmissionDoesNotAllocate(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(16*mem.KiB, 128*mem.KiB), 1)
	m := as.Map(1*mem.MiB, 0, mem.SmallPages)

	round := func() {
		for i := 0; i < 200; i++ {
			a := m.Base + mem.Addr(i*512)
			env.Instr(40, ClassApp)
			env.Read(a, 48, ClassApp)
			env.Write(a+64, 24, ClassAlloc)
			env.Copy(a+8192, a, 512, ClassApp)
			env.RecordAlloc(48)
		}
		env.Drain()
	}
	// Warm to the high-water mark. The RNG advances every round, so run
	// several to cover Instr's varying fetch-run starts.
	for i := 0; i < 8; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(20, round); allocs != 0 {
		t.Fatalf("steady-state emission allocates %.1f times per round, want 0", allocs)
	}
}

type countingRecorder struct{ n, bytes uint64 }

func (r *countingRecorder) RecordAlloc(size uint64) { r.n++; r.bytes += size }

// TestEnvRecordAlloc checks the recorder hook: sizes reach an attached
// recorder, and with a recorder attached the call still allocates nothing
// (the hook sits on every allocator's Malloc path).
func TestEnvRecordAlloc(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)

	env.RecordAlloc(64) // no recorder: dropped
	rec := &countingRecorder{}
	env.AllocRec = rec
	env.RecordAlloc(8)
	env.RecordAlloc(24)
	if rec.n != 2 || rec.bytes != 32 {
		t.Fatalf("recorder saw n=%d bytes=%d, want 2/32", rec.n, rec.bytes)
	}
	if allocs := testing.AllocsPerRun(100, func() { env.RecordAlloc(48) }); allocs != 0 {
		t.Fatalf("RecordAlloc with recorder allocates %.1f times, want 0", allocs)
	}
}

// TestEnvDrainRetainsCapacity verifies the mechanism behind the guarantee:
// the buffer's capacity survives Drain.
func TestEnvDrainRetainsCapacity(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)
	m := as.Map(4096, 0, mem.SmallPages)

	for i := 0; i < 10000; i++ {
		env.Read(m.Base, 8, ClassApp)
	}
	grown := env.Buf().Cap()
	if grown < 10000 {
		t.Fatalf("buffer cap %d after 10000 events", grown)
	}
	env.Drain()
	if got := env.Buf().Cap(); got != grown {
		t.Fatalf("Drain shrank the buffer: cap %d, want %d", got, grown)
	}
	if env.Buf().Len() != 0 {
		t.Fatalf("Drain left %d events", env.Buf().Len())
	}
}
