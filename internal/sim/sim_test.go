package sim

import (
	"testing"
	"testing/quick"

	"webmm/internal/mem"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const buckets = 16
	var counts [buckets]int
	const n = 160000
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	for b, c := range counts {
		// Each bucket expects n/buckets = 10000; allow 5%.
		if c < 9500 || c > 10500 {
			t.Errorf("bucket %d: %d draws, want ~10000", b, c)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnvRecordsAccesses(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)
	m := as.Map(4096, 0, mem.SmallPages)

	env.Write(m.Base, 64, ClassAlloc)
	env.Read(m.Base+128, 8, ClassApp)

	ev := env.Events()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Kind != Write || ev[0].Class != ClassAlloc || ev[0].Addr != m.Base {
		t.Errorf("event 0 = %+v", ev[0])
	}
	if ev[1].Kind != Read || ev[1].Class != ClassApp || ev[1].Size != 8 {
		t.Errorf("event 1 = %+v", ev[1])
	}
}

func TestEnvInstrEmitsFetchesWithinFootprint(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	const allocCode = 2 * mem.KiB
	env := NewEnv(as, NewCodeLayout(allocCode, 128*mem.KiB), 1)

	for i := 0; i < 100; i++ {
		env.Instr(20, ClassAlloc)
	}
	instr := env.Instructions()
	if instr[ClassAlloc] != 2000 {
		t.Fatalf("instr count = %d, want 2000", instr[ClassAlloc])
	}
	for _, ev := range env.Events() {
		if ev.Kind != IFetch {
			t.Fatalf("unexpected non-fetch event %+v", ev)
		}
		off := uint64(ev.Addr - codeBaseAlloc)
		if off >= allocCode {
			t.Fatalf("fetch at offset %d outside %d-byte footprint", off, allocCode)
		}
	}
}

func TestEnvSmallerCodeFootprintFetchesFewerDistinctLines(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	distinct := func(code uint64) int {
		env := NewEnv(as, NewCodeLayout(code, 128*mem.KiB), 99)
		for i := 0; i < 2000; i++ {
			env.Instr(12, ClassAlloc)
		}
		seen := map[mem.Addr]bool{}
		for _, ev := range env.Events() {
			seen[ev.Addr] = true
		}
		return len(seen)
	}
	small, large := distinct(1*mem.KiB), distinct(64*mem.KiB)
	if small >= large {
		t.Fatalf("small footprint touched %d lines, large %d; want small < large", small, large)
	}
}

func TestEnvDrainResets(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)
	env.Instr(10, ClassApp)
	env.Write(mem.Addr(1<<33), 8, ClassApp)

	instr := env.Drain()
	if instr[ClassApp] != 10 {
		t.Fatalf("drained instr = %d, want 10", instr[ClassApp])
	}
	if len(env.Events()) != 0 {
		t.Fatalf("events not cleared by Drain: %d left", len(env.Events()))
	}
	if env.Instructions()[ClassApp] != 0 {
		t.Fatalf("instr counter not cleared by Drain")
	}
}

func TestCopyEmitsReadAndWrite(t *testing.T) {
	as := mem.NewAddressSpace(0, 1<<40, mem.LargePageShiftXeon)
	env := NewEnv(as, NewCodeLayout(4*mem.KiB, 128*mem.KiB), 1)
	src, dst := mem.Addr(1<<33), mem.Addr(1<<33+4096)
	env.Copy(dst, src, 256, ClassAlloc)

	var gotRead, gotWrite bool
	for _, ev := range env.Events() {
		switch {
		case ev.Kind == Read && ev.Addr == src && ev.Size == 256:
			gotRead = true
		case ev.Kind == Write && ev.Addr == dst && ev.Size == 256:
			gotWrite = true
		}
	}
	if !gotRead || !gotWrite {
		t.Fatalf("copy events missing: read=%v write=%v", gotRead, gotWrite)
	}
	if env.Instructions()[ClassAlloc] == 0 {
		t.Fatalf("copy recorded no instructions")
	}
}
