package sim

import "webmm/internal/mem"

// Code-region bases. All processes run the same binary and shared libraries,
// so instruction addresses are shared machine-wide (the OS shares the text
// pages); the simulator exploits this by giving every stream the same code
// addresses.
const (
	codeBaseAlloc = mem.Addr(0x0800_0000)
	codeBaseApp   = mem.Addr(0x1000_0000)
	codeBaseOS    = mem.Addr(0x1800_0000)

	// bytesPerInstr approximates average instruction size for fetch
	// purposes (x86 averages ~3.5-4 bytes; SPARC is 4).
	bytesPerInstr = 4

	// maxFetchLines caps the sequential fetch run of a single Instr
	// call: real code takes a branch at least every couple of KiB.
	maxFetchLines = 32
)

// CodeLayout fixes the simulated address and footprint of each component's
// code. The allocator footprint varies per allocator (the paper attributes
// part of DDmalloc's L1I improvement to its smaller code), so it is set per
// run; application and OS footprints model the PHP/Ruby interpreter and
// kernel paths.
type CodeLayout struct {
	base [NumClasses]mem.Addr
	size [NumClasses]uint64
}

// NewCodeLayout builds a layout with the given allocator code footprint and
// application (interpreter + compiled script) code footprint, in bytes.
func NewCodeLayout(allocCode, appCode uint64) *CodeLayout {
	cl := &CodeLayout{}
	cl.base[ClassAlloc] = codeBaseAlloc
	cl.base[ClassApp] = codeBaseApp
	cl.base[ClassOS] = codeBaseOS
	cl.size[ClassAlloc] = max64(allocCode, mem.LineSize)
	cl.size[ClassApp] = max64(appCode, mem.LineSize)
	cl.size[ClassOS] = 32 * mem.KiB
	return cl
}

// AllocRecorder observes allocator API traffic. The telemetry layer's
// per-size-class profile implements it; sim stays free of a telemetry
// dependency by seeing only this interface.
type AllocRecorder interface {
	RecordAlloc(size uint64)
}

// Env is the generation-side context handed to allocators, runtimes and
// workloads. It records every memory access and retired instruction into a
// buffer that the machine later prices against the cache hierarchy.
type Env struct {
	// AS is the process's simulated address space.
	AS *mem.AddressSpace
	// Rand is the stream's private random source.
	Rand RNG
	// AllocRec, when non-nil, observes every allocation request's size.
	// Callers must leave it nil rather than storing a nil concrete pointer:
	// a typed nil would defeat RecordAlloc's check.
	AllocRec AllocRecorder

	code  *CodeLayout
	buf   EventBuf
	instr [NumClasses]uint64
}

// RecordAlloc reports one allocation request of the given size to the
// attached recorder, if any. With no recorder this is a single nil check.
func (e *Env) RecordAlloc(size uint64) {
	if e.AllocRec != nil {
		e.AllocRec.RecordAlloc(size)
	}
}

// NewEnv returns an Env drawing addresses from as and randomness from a
// generator seeded with seed.
func NewEnv(as *mem.AddressSpace, code *CodeLayout, seed uint64) *Env {
	return &Env{AS: as, Rand: NewRNG(seed), code: code, buf: newEventBuf(4096)}
}

// Read records a data load of size bytes at a.
func (e *Env) Read(a mem.Addr, size uint64, c Class) {
	e.buf.push(a, uint32(size), PackMeta(Read, c))
}

// Write records a data store of size bytes at a.
func (e *Env) Write(a mem.Addr, size uint64, c Class) {
	e.buf.push(a, uint32(size), PackMeta(Write, c))
}

// Copy records a memcpy of n bytes from src to dst (realloc's copy,
// attributed to class c, with its instruction cost).
func (e *Env) Copy(dst, src mem.Addr, n uint64, c Class) {
	if n == 0 {
		return
	}
	e.Instr(4+n/8, c) // ~1 instruction per 8-byte word plus setup
	e.Read(src, n, c)
	e.Write(dst, n, c)
}

// Instr records n retired instructions of class c and the instruction
// fetches they cause. Each call starts at a pseudo-random line inside the
// component's code region (hot-biased) and fetches sequentially, modelling a
// basic-block run; bigger code footprints therefore miss more in the L1
// I-cache, which is how the paper's allocator-code-size effect arises.
func (e *Env) Instr(n uint64, c Class) {
	if n == 0 {
		return
	}
	e.instr[c] += n
	footprint := e.code.size[c]
	lines := footprint / mem.LineSize
	if lines == 0 {
		lines = 1
	}
	// Concentrate fetches on the "hot" low region of the code (u^4: the
	// hottest sixteenth of the footprint takes half the fetches), as
	// real instruction profiles do.
	u := e.Rand.Float64()
	u *= u
	u *= u
	start := uint64(u * float64(lines))
	if start >= lines {
		start = lines - 1
	}
	nlines := (n*bytesPerInstr + mem.LineSize - 1) / mem.LineSize
	if nlines > maxFetchLines {
		nlines = maxFetchLines
	}
	base := e.code.base[c]
	m := PackMeta(IFetch, c)
	// Emit the whole sequential run as one event per contiguous segment
	// (two once it wraps the footprint, more only for footprints smaller
	// than the run). The line sequence is identical to per-line emission —
	// the machine walks Size/LineSize consecutive lines from Addr — but
	// the simulator's most frequent emission path now costs one push per
	// run instead of one per line.
	pos := start
	for rem := nlines; rem > 0; {
		seg := lines - pos
		if seg > rem {
			seg = rem
		}
		e.buf.push(base+mem.Addr(pos*mem.LineSize), uint32(seg*mem.LineSize), m)
		rem -= seg
		pos = 0
	}
}

// Instructions returns the per-class retired-instruction counters since the
// last Drain.
func (e *Env) Instructions() [NumClasses]uint64 { return e.instr }

// Buf returns the Env's event buffer for column-wise walking. The buffer is
// owned by the Env and invalidated by the next Drain.
func (e *Env) Buf() *EventBuf { return &e.buf }

// Events decodes the buffered events since the last Drain into record form.
// It allocates; it exists for tests and inspection — the pricing path walks
// Buf's columns directly.
func (e *Env) Events() []Event {
	out := make([]Event, e.buf.Len())
	for i := range out {
		out[i] = e.buf.At(i)
	}
	return out
}

// Drain resets the event buffer and instruction counters, returning the
// counters that were accumulated. The buffer's backing arrays are retained,
// so an Env reaches a steady state where event emission never allocates.
func (e *Env) Drain() (instr [NumClasses]uint64) {
	instr = e.instr
	e.instr = [NumClasses]uint64{}
	e.buf.Reset()
	return instr
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
