// Package sim defines the event vocabulary that connects the allocators and
// workloads (which *generate* memory activity) to the memory-hierarchy
// simulator (which *prices* it).
//
// Every logical memory touch an allocator or application performs — a
// free-list node read, a boundary-tag write, an object initialization, a
// realloc copy — is emitted as an Event. Instruction execution is emitted as
// instruction-fetch events against a per-component code region plus a
// per-class retired-instruction counter. The event stream is a pure function
// of allocator/workload state and the seeded RNG; cache and bus state never
// feed back into behaviour, which keeps every simulation bit-reproducible.
package sim

import (
	"fmt"

	"webmm/internal/mem"
)

// Class attributes an event to a software component, mirroring the paper's
// OProfile breakdown of CPU time into "memory management" and "others"
// (Figures 6 and 11).
type Class uint8

const (
	// ClassAlloc is work inside malloc/free/realloc/freeAll.
	ClassAlloc Class = iota
	// ClassApp is application work: the PHP/Ruby program and runtime
	// executing the transaction.
	ClassApp
	// ClassOS is operating-system work: mapping chunks, process restart.
	ClassOS

	NumClasses = 3
)

// String returns the class name used in reports.
func (c Class) String() string {
	switch c {
	case ClassAlloc:
		return "memory management"
	case ClassApp:
		return "others"
	case ClassOS:
		return "os"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Kind is the type of a memory access.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// IFetch is an instruction fetch (goes to the L1 I-cache).
	IFetch
)

// Event is one memory access. Size is in bytes; accesses larger than a cache
// line are split by the cache model.
type Event struct {
	Addr  mem.Addr
	Size  uint32
	Kind  Kind
	Class Class
}

// RNG is a SplitMix64 pseudo-random generator. It is the only source of
// randomness in the whole simulator; a run is a pure function of its seeds.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) RNG { return RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n).
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with n == 0")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator, so subsystems can draw without
// perturbing each other's sequences.
func (r *RNG) Fork() RNG { return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03) }
