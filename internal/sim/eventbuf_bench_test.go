package sim

import (
	"testing"

	"webmm/internal/mem"
)

// BenchmarkEventBufPush measures steady-state event emission: a warm buffer
// refilled with a realistic kind mix. Every experiment's generation half
// funnels through push, so this is the floor on emission cost per event.
func BenchmarkEventBufPush(b *testing.B) {
	buf := newEventBuf(0)
	const round = 1 << 16
	metas := [4]uint8{
		PackMeta(Read, ClassApp),
		PackMeta(Write, ClassApp),
		PackMeta(IFetch, ClassApp),
		PackMeta(Read, ClassAlloc),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf.Len() == round {
			buf.Reset()
		}
		j := uint64(i)
		buf.push(mem.Addr(j*64), uint32(8+j%56), metas[j%4])
	}
	if buf.Cap() > round*2 {
		b.Fatalf("buffer grew past its high-water mark: cap %d", buf.Cap())
	}
}
