package workload

import (
	"math"
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func newGen(t testing.TB, prof Profile, scale int) (*Generator, *sim.Env, heap.Allocator) {
	t.Helper()
	env := alloctest.NewEnv(11)
	alloc := core.New(env, core.DefaultOptions())
	g := NewGenerator(env, alloc, prof, scale)
	return g, env, alloc
}

func runTxn(g *Generator, env *sim.Env, bulk bool) {
	for !g.RunSlice(4096) {
		env.Drain()
	}
	g.EndTransaction(bulk)
	env.Drain()
}

func TestTable3CountsRegenerate(t *testing.T) {
	// At scale 1 the generator must reproduce the paper's Table 3
	// malloc/free/realloc counts per transaction (±2% for frees, which
	// are rate-driven).
	for _, prof := range Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			scale := 8 // keep the test fast; counts scale exactly
			g, env, _ := newGen(t, prof, scale)
			runTxn(g, env, true)
			s := g.Stats()
			wantM := uint64(prof.Mallocs / scale)
			if s.Mallocs != wantM {
				t.Errorf("mallocs = %d, want %d", s.Mallocs, wantM)
			}
			wantF := float64(prof.Frees / scale)
			if math.Abs(float64(s.Frees)-wantF) > wantF*0.02+2 {
				t.Errorf("frees = %d, want ~%.0f", s.Frees, wantF)
			}
			wantR := float64(prof.Reallocs / scale)
			if math.Abs(float64(s.Reallocs)-wantR) > wantR*0.15+2 {
				t.Errorf("reallocs = %d, want ~%.0f", s.Reallocs, wantR)
			}
		})
	}
}

func TestTable3AvgSizeRegenerates(t *testing.T) {
	for _, prof := range Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			g, env, _ := newGen(t, prof, 4)
			for i := 0; i < 3; i++ {
				runTxn(g, env, true)
			}
			got := g.Stats().AvgAllocSize()
			if math.Abs(got-prof.AvgSize) > prof.AvgSize*0.10 {
				t.Errorf("avg alloc size = %.1f, want %.1f +/- 10%%", got, prof.AvgSize)
			}
		})
	}
}

func TestFreeRatioMatchesPaperRange(t *testing.T) {
	// Paper: "The number of free calls is 7.9% to 27.3% (15.3% on
	// average) less than that of malloc."
	var sum float64
	for _, p := range Profiles() {
		r := 1 - p.FreeRatio()
		if r < 0.079-0.005 || r > 0.273+0.005 {
			t.Errorf("%s: free deficit %.3f outside the paper's 7.9%%..27.3%%", p.Name, r)
		}
		sum += r
	}
	avg := sum / float64(len(Profiles()))
	if math.Abs(avg-0.153) > 0.02 {
		t.Errorf("average free deficit %.3f, want ~0.153", avg)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() heap.Stats {
		g, env, _ := newGen(t, PhpBB(), 8)
		runTxn(g, env, true)
		return g.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different streams:\n%+v\n%+v", a, b)
	}
}

func TestSlicingProducesSameStreamAsOneShot(t *testing.T) {
	collect := func(slice int) heap.Stats {
		g, env, _ := newGen(t, PhpBB(), 8)
		for !g.RunSlice(slice) {
			env.Drain()
		}
		g.EndTransaction(true)
		return g.Stats()
	}
	if small, big := collect(64), collect(1<<20); small != big {
		t.Fatalf("slice size changed the stream:\n%+v\n%+v", small, big)
	}
}

func TestEndTransactionPerObjectFreesEverything(t *testing.T) {
	g, env, alloc := newGen(t, PhpBB(), 8)
	g.SurvivorFrac = 0
	runTxn(g, env, false)
	if g.LiveObjects() != 0 {
		t.Fatalf("%d objects live after per-object cleanup", g.LiveObjects())
	}
	s := alloc.Stats()
	if s.Frees != s.Mallocs {
		t.Fatalf("allocator saw %d frees for %d mallocs; per-object cleanup must free all",
			s.Frees, s.Mallocs)
	}
}

func TestSurvivorsOutliveTransactions(t *testing.T) {
	g, env, _ := newGen(t, PhpBB(), 8)
	g.SurvivorFrac = 0.5
	g.SurvivorLife = 3
	runTxn(g, env, false)
	if g.LiveObjects() == 0 {
		t.Fatal("no survivors with SurvivorFrac=0.5")
	}
	// After SurvivorLife more transactions all old survivors are gone
	// (replaced by newer generations, so count stays bounded).
	counts := make([]int, 6)
	for i := range counts {
		runTxn(g, env, false)
		counts[i] = g.LiveObjects()
	}
	if counts[5] > 4*counts[1]+100 {
		t.Fatalf("survivor population keeps growing: %v", counts)
	}
}

func TestBulkEndLeavesFreeAllToCaller(t *testing.T) {
	g, env, alloc := newGen(t, PhpBB(), 8)
	runTxn(g, env, true)
	s := alloc.Stats()
	if s.FreeAlls != 0 {
		t.Fatal("generator called FreeAll; that is the runtime's job")
	}
	if s.Frees >= s.Mallocs {
		t.Fatalf("bulk path freed everything per-object (%d frees / %d mallocs)",
			s.Frees, s.Mallocs)
	}
}

func TestAppWorkEmitsApplicationClass(t *testing.T) {
	g, env, _ := newGen(t, MediaWikiRO(), 32)
	for !g.RunSlice(512) {
		break
	}
	instr := env.Instructions()
	if instr[sim.ClassApp] == 0 {
		t.Fatal("no application instructions emitted")
	}
	if instr[sim.ClassAlloc] == 0 {
		t.Fatal("no allocator instructions emitted")
	}
	if instr[sim.ClassApp] < 10*instr[sim.ClassAlloc] {
		t.Errorf("app/alloc instruction ratio %d/%d; PHP work must dwarf the allocator",
			instr[sim.ClassApp], instr[sim.ClassAlloc])
	}
}

func TestScaleDividesWork(t *testing.T) {
	g1, env1, _ := newGen(t, PhpBB(), 4)
	runTxn(g1, env1, true)
	g2, env2, _ := newGen(t, PhpBB(), 8)
	runTxn(g2, env2, true)
	diff := int64(g1.Stats().Mallocs) - 2*int64(g2.Stats().Mallocs)
	if diff < -2 || diff > 2 {
		t.Fatalf("scale 4 made %d mallocs, scale 8 made %d; want 2x within rounding",
			g1.Stats().Mallocs, g2.Stats().Mallocs)
	}
}

func TestByName(t *testing.T) {
	for _, p := range append(Profiles(), Rails()) {
		got, err := ByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ByName(%q) = %v, %v", p.Name, got.Name, err)
		}
	}
	if _, err := ByName("WordPress"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRegionSkipsFreeCalls(t *testing.T) {
	// The paper's modification for region-based management removes the
	// per-object free calls; the generator honours SupportsFree.
	env := alloctest.NewEnv(12)
	alloc := noFreeAlloc{heap.Allocator(core.New(env, core.DefaultOptions()))}
	g := NewGenerator(env, alloc, PhpBB(), 8)
	for !g.RunSlice(1 << 20) {
	}
	g.EndTransaction(true)
	if g.Stats().Frees != 0 {
		t.Fatalf("generator issued %d frees to a no-free allocator", g.Stats().Frees)
	}
}

// noFreeAlloc wraps an allocator, reporting no per-object free support.
type noFreeAlloc struct{ heap.Allocator }

func (noFreeAlloc) SupportsFree() bool { return false }
