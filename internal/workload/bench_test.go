package workload

import (
	"testing"

	"webmm/internal/core"

	"webmm/internal/alloctest"
)

// BenchmarkGeneratorStep prices nothing: it isolates the generation side —
// size draws, RNG, live-object bookkeeping, allocator calls and event
// emission — which is the producer half of every experiment's hot loop.
func BenchmarkGeneratorStep(b *testing.B) {
	env := alloctest.NewEnv(11)
	alloc := core.New(env, core.DefaultOptions())
	g := NewGenerator(env, alloc, MediaWikiRW(), 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.RunSlice(1) {
			g.EndTransaction(false) // per-object frees keep the heap bounded
		}
		if g.OOMPending() {
			b.Fatal("generator hit OOM")
		}
		if env.Buf().Len() > 1<<16 {
			env.Drain()
		}
	}
}
