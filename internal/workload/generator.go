package workload

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// Object-size mixture weights. The components model PHP's allocation mix:
// mostly zvals/strings below the mean, a band of hash buckets and medium
// strings, occasional arrays, and rare large buffers. The mixture is scaled
// so its analytic mean equals the profile's Table 3 mean.
const (
	wSmall = 0.80   // uniform [8, a]
	wMid   = 0.1695 // uniform [a, 3a]
	wBig   = 0.03   // uniform [3a, 20a]
	wHuge  = 0.0005 // uniform [4 KiB, 64 KiB]
)

// instrChunk is the granularity at which accumulated application
// instructions are emitted; it bounds the straight-line fetch run like the
// interpreter's dispatch loop does.
const instrChunk = 1500

// Mixture-component codes for the drawSize bucket table.
const (
	compSmall = iota
	compMid
	compBig
	compHuge
	// compSlow marks a bucket that straddles a component boundary; draws
	// landing there take the original compare chain.
	compSlow
)

// sizeTab maps the top 8 bits of a size draw to its mixture component.
// RNG.Float64 returns k·2⁻⁵³ with k = Uint64()>>11, so u*256 is an exact
// exponent shift and int(u*256) == k>>45: the bucket index is an exact
// function of the draw, and any bucket lying wholly inside one component
// selects that component exactly as the cumulative-weight compare chain
// would. Only the 3 buckets containing a boundary (of 256) fall back to the
// chain, so component selection is bit-for-bit unchanged while ~99% of
// draws skip the float compares.
var sizeTab = func() (t [256]uint8) {
	for b := range t {
		lo := float64(b) / 256
		hi := float64(b+1) / 256
		switch {
		case hi <= wSmall:
			t[b] = compSmall
		case lo >= wSmall && hi <= wSmall+wMid:
			t[b] = compMid
		case lo >= wSmall+wMid && hi <= wSmall+wMid+wBig:
			t[b] = compBig
		case lo >= wSmall+wMid+wBig:
			t[b] = compHuge
		default:
			t[b] = compSlow
		}
	}
	return
}()

type obj struct {
	p    heap.Ptr
	size uint64
}

type survivor struct {
	obj
	dies int // transaction count at which it is freed
}

// Generator drives one allocator with one workload profile. It is bound to
// a stream's Env and produces the transaction's memory behaviour in bounded
// slices. The generator issues the allocator API calls; the runtime
// (internal/apprt) decides what happens at transaction boundaries.
type Generator struct {
	env   *sim.Env
	alloc heap.Allocator
	prof  Profile
	rng   sim.RNG

	// Scaled per-transaction counts.
	nMalloc, nFree, nRealloc int
	appInstrPerStep          float64
	outBytesPerStep          float64
	sizeScale                float64

	appData mem.Mapping
	outBuf  mem.Mapping
	outOff  uint64

	live      []obj
	freeDebt  float64
	instrDebt float64
	outDebt   float64
	cursor    int
	txns      int

	// oomPending is set when the allocator returned null mid-transaction;
	// the runtime observes it via OOMPending and must Bailout (or abandon
	// the process) before the generator will make progress again.
	oomPending bool

	// Cross-transaction survivors (Ruby study): fraction of the objects
	// alive at transaction end that live on for several transactions,
	// punching the holes that age the heap.
	SurvivorFrac float64
	SurvivorLife int
	survivors    []survivor

	stats heap.Stats // API calls issued by this generator (Table 3 view)
}

// NewGenerator builds a generator for prof running against alloc at the
// given scale divisor (1 = paper scale; larger values shrink the
// transaction proportionally, see DESIGN.md §5.4).
func NewGenerator(env *sim.Env, alloc heap.Allocator, prof Profile, scale int) *Generator {
	if scale < 1 {
		panic("workload: scale must be >= 1")
	}
	g := &Generator{
		env:   env,
		alloc: alloc,
		prof:  prof,
		rng:   env.Rand.Fork(),

		nMalloc:      maxInt(prof.Mallocs/scale, 8),
		nFree:        prof.Frees / scale,
		nRealloc:     prof.Reallocs / scale,
		SurvivorFrac: 0,
		SurvivorLife: 12,
	}
	g.appInstrPerStep = float64(prof.AppInstr) / float64(scale) / float64(g.nMalloc)
	g.outBytesPerStep = float64(prof.OutputKB*1024) / float64(scale) / float64(g.nMalloc)

	// Solve the mixture scale so the analytic mean hits AvgSize.
	a := prof.AvgSize
	analytic := wSmall*(4+a/2) + wMid*2*a + wBig*11.5*a + wHuge*(4096+65536)/2
	g.sizeScale = a / analytic

	dataBytes := maxU64(prof.AppDataBytes/uint64(scale), 256*mem.KiB)
	g.appData = env.AS.Map(dataBytes, 0, mem.SmallPages)
	g.outBuf = env.AS.Map(maxU64(uint64(prof.OutputKB)*1024+4096, 64*mem.KiB), 0, mem.SmallPages)
	return g
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// Stats returns the allocator API calls issued by the generator — the
// regeneration of the paper's Table 3.
func (g *Generator) Stats() heap.Stats { return g.stats }

// StepsPerTransaction returns the scaled malloc count (the slice loop
// bound).
func (g *Generator) StepsPerTransaction() int { return g.nMalloc }

// drawSize samples the object-size mixture. Component selection goes
// through sizeTab on the draw's top 8 bits; the per-component value
// expressions are kept verbatim (including evaluation order) so every
// float rounding — and therefore every sampled size — matches the original
// compare chain bit for bit.
func (g *Generator) drawSize() uint64 {
	a := g.prof.AvgSize
	u := g.rng.Float64()
	var s float64
	comp := sizeTab[int(u*256)]
	if comp == compSlow {
		switch {
		case u < wSmall:
			comp = compSmall
		case u < wSmall+wMid:
			comp = compMid
		case u < wSmall+wMid+wBig:
			comp = compBig
		default:
			comp = compHuge
		}
	}
	switch comp {
	case compSmall:
		s = 8 + g.rng.Float64()*(a-8)
	case compMid:
		s = a + g.rng.Float64()*2*a
	case compBig:
		s = 3*a + g.rng.Float64()*17*a
	default:
		s = 4096 + g.rng.Float64()*(65536-4096)
	}
	size := uint64(s * g.sizeScale)
	if size == 0 {
		size = 1
	}
	return size
}

// RunSlice advances the current transaction by up to maxSteps allocation
// steps, returning true when the transaction's allocation phase is
// complete. The caller then finishes the transaction with EndTransaction
// (and, for PHP-style runtimes, the allocator's FreeAll). A false return
// with OOMPending set means an allocation failed mid-slice: the runtime
// must Bailout (PHP) or restart the process (Ruby) before continuing.
func (g *Generator) RunSlice(maxSteps int) (done bool) {
	if g.oomPending {
		return false
	}
	if g.cursor == 0 {
		g.beginTransaction()
	}
	end := g.cursor + maxSteps
	if end > g.nMalloc {
		end = g.nMalloc
	}
	for ; g.cursor < end; g.cursor++ {
		g.step()
		if g.oomPending {
			return false
		}
	}
	return g.cursor >= g.nMalloc
}

// OOMPending reports whether the current transaction hit an allocation
// failure and is waiting to be bailed out.
func (g *Generator) OOMPending() bool { return g.oomPending }

// Bailout abandons the in-flight transaction after an allocation failure:
// object tracking is dropped (the caller reclaims the heap with FreeAll or
// a process restart) and the failure is counted in Stats().Bailouts. This
// is the PHP engine's "allowed memory size exhausted" bail-out — the
// stream serves an error page and keeps running.
func (g *Generator) Bailout() {
	g.stats.Bailouts++
	g.oomPending = false
	g.live = g.live[:0]
	g.cursor = 0
}

func (g *Generator) beginTransaction() {
	// Free survivors whose time has come (Ruby study: expired sessions
	// and caches release their memory in later transactions).
	if g.alloc.SupportsFree() && len(g.survivors) > 0 {
		kept := g.survivors[:0]
		for _, s := range g.survivors {
			if s.dies <= g.txns {
				g.env.Read(s.p, 8, sim.ClassApp)
				g.alloc.Free(s.p)
				g.stats.Frees++
			} else {
				kept = append(kept, s)
			}
		}
		g.survivors = kept
	}
}

func (g *Generator) step() {
	g.appWork()

	// Allocate and initialize an object.
	size := g.drawSize()
	p := g.alloc.Malloc(size)
	g.stats.Mallocs++
	g.stats.BytesRequested += size
	g.stats.BytesAllocated += heap.RoundedSize(size)
	if p == 0 {
		// OOM: the attempt is counted, but there is no object to
		// initialize. The runtime bails the transaction out.
		g.oomPending = true
		return
	}
	g.env.Write(p, size, sim.ClassApp)
	g.live = append(g.live, obj{p, size})

	// Re-read a recently created object (the script works on it).
	if g.rng.Bool(0.35) && len(g.live) > 1 {
		idx := len(g.live) - 1 - g.rng.Intn(minInt(8, len(g.live)))
		o := g.live[idx]
		g.env.Read(o.p, minU64(o.size, 64), sim.ClassApp)
	}

	// Revisit older live objects: scripts traverse arrays, symbol tables
	// and strings built earlier in the transaction. The depth is
	// recency-biased (u^2 from the top of the live stack) — most reads
	// touch recent data, but the occasional deep read is what punishes
	// an allocator that never reuses memory: the old objects of a
	// bump-pointer heap have long since left the caches, while a reusing
	// allocator keeps its working set compact.
	if g.rng.Bool(0.5) && len(g.live) > 0 {
		u := g.rng.Float64()
		depth := int(u * u * float64(len(g.live)))
		if depth >= len(g.live) {
			depth = len(g.live) - 1
		}
		o := g.live[len(g.live)-1-depth]
		g.env.Read(o.p, minU64(o.size, 64), sim.ClassApp)
		if g.rng.Bool(0.2) {
			g.env.Write(o.p, minU64(o.size, 16), sim.ClassApp)
		}
	}

	// Per-object frees at the Table 3 rate, mostly LIFO.
	if g.alloc.SupportsFree() {
		g.freeDebt += float64(g.nFree) / float64(g.nMalloc)
		for g.freeDebt >= 1 && len(g.live) > 0 {
			g.freeDebt--
			g.freeOne()
		}
	}

	// Reallocs at the Table 3 rate (growing buffers/arrays).
	if g.nRealloc > 0 && g.cursor%maxInt(g.nMalloc/g.nRealloc, 1) == 0 && len(g.live) > 0 {
		g.reallocOne()
	}

	g.writeOutput()
}

// appWork emits the application's interpreter work: instructions in
// dispatch-loop chunks and reads of the interpreter/script data region with
// a hot bias.
func (g *Generator) appWork() {
	g.instrDebt += g.appInstrPerStep
	for g.instrDebt >= instrChunk {
		g.instrDebt -= instrChunk
		g.env.Instr(instrChunk, sim.ClassApp)
	}
	for i := 0; i < 2; i++ {
		g.env.Read(g.appData.Base+mem.Addr(g.hotOffset()), 32, sim.ClassApp)
	}
	if g.rng.Bool(0.25) {
		g.env.Write(g.appData.Base+mem.Addr(g.hotOffset()), 16, sim.ClassApp)
	}
}

// hotOffset draws a strongly hot-biased offset into the interpreter data
// region (u^4: the hottest half of the region takes ~84% of the accesses,
// matching the skew of interpreter structures and caches).
func (g *Generator) hotOffset() uint64 {
	u := g.rng.Float64()
	u *= u
	u *= u
	return uint64(u*float64(g.appData.Size-64)) &^ 7
}

// freeOne releases a mostly-LIFO victim: the destructor reads the object,
// then the allocator reclaims it.
func (g *Generator) freeOne() {
	depth := 0
	for depth < len(g.live)-1 && g.rng.Bool(0.4) {
		depth++
	}
	idx := len(g.live) - 1 - depth
	o := g.live[idx]
	copy(g.live[idx:], g.live[idx+1:])
	g.live = g.live[:len(g.live)-1]

	g.env.Read(o.p, 8, sim.ClassApp) // refcount check
	g.alloc.Free(o.p)
	g.stats.Frees++
}

// reallocOne grows a recent object (PHP's erealloc on strings and hash
// tables).
func (g *Generator) reallocOne() {
	idx := len(g.live) - 1 - g.rng.Intn(minInt(16, len(g.live)))
	o := &g.live[idx]
	newSize := o.size + o.size/2 + 8
	np := g.alloc.Realloc(o.p, o.size, newSize)
	g.stats.Reallocs++
	if np == 0 {
		// Failed realloc keeps the old object valid (C semantics); the
		// transaction still bails out.
		g.oomPending = true
		return
	}
	o.p = np
	o.size = newSize
}

// writeOutput streams the response buffer (reused across transactions).
func (g *Generator) writeOutput() {
	g.outDebt += g.outBytesPerStep
	for g.outDebt >= 256 {
		g.outDebt -= 256
		if g.outOff+256 > g.outBuf.Size {
			g.outOff = 0
		}
		g.env.Write(g.outBuf.Base+mem.Addr(g.outOff), 256, sim.ClassApp)
		g.env.Instr(40, sim.ClassApp)
		g.outOff += 256
	}
}

// EndTransaction completes the transaction's lifetime bookkeeping.
//
// With bulk=true (PHP runtimes) the remaining live objects are abandoned to
// the caller's FreeAll. With bulk=false (Ruby runtimes) every remaining
// object is freed per-object except the SurvivorFrac fraction, which lives
// on for SurvivorLife transactions.
func (g *Generator) EndTransaction(bulk bool) {
	if g.cursor < g.nMalloc {
		panic(fmt.Sprintf("workload: EndTransaction with %d/%d steps done", g.cursor, g.nMalloc))
	}
	if bulk {
		g.live = g.live[:0]
	} else {
		for _, o := range g.live {
			if g.SurvivorFrac > 0 && g.rng.Bool(g.SurvivorFrac) {
				g.survivors = append(g.survivors, survivor{
					obj:  o,
					dies: g.txns + 1 + g.rng.Intn(g.SurvivorLife),
				})
				continue
			}
			g.env.Read(o.p, 8, sim.ClassApp)
			g.alloc.Free(o.p)
			g.stats.Frees++
		}
		g.live = g.live[:0]
	}
	g.cursor = 0
	g.txns++
}

// LiveObjects reports the objects currently alive (mid-transaction) plus
// survivors.
func (g *Generator) LiveObjects() int { return len(g.live) + len(g.survivors) }

// AbandonState drops all object tracking without freeing (used when a Ruby
// process restarts: the dying process's heap simply disappears).
func (g *Generator) AbandonState() {
	g.live = g.live[:0]
	g.survivors = g.survivors[:0]
	g.cursor = 0
}

// SetAllocator rebinds the generator to a fresh allocator (process restart).
func (g *Generator) SetAllocator(a heap.Allocator) { g.alloc = a }

// RestartProcess models a process restart from the generator's side: all
// object state is abandoned and the interpreter/script data and output
// buffer move to fresh (cold) addresses, since the new process's memory
// shares nothing with the old one.
func (g *Generator) RestartProcess() {
	g.AbandonState()
	g.appData = g.env.AS.Map(g.appData.Size, 0, mem.SmallPages)
	g.outBuf = g.env.AS.Map(g.outBuf.Size, 0, mem.SmallPages)
	g.outOff = 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
