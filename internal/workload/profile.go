// Package workload synthesizes the allocation behaviour of the paper's
// seven PHP workloads (Table 2) plus the Ruby on Rails application of the
// §4.4 study.
//
// The paper characterizes each workload by its allocator traffic — Table 3
// gives malloc/free/realloc calls per transaction and the mean allocation
// size — and those numbers parameterize our generators directly, so running
// a generator against an allocator regenerates Table 3. Everything else
// (object lifetimes, application instructions, data touched) is synthetic
// but shaped by what the paper reports: more than 80 % of objects die by
// per-object free during the transaction, the remainder at freeAll; PHP
// application code dwarfs the allocator (Figure 6's "others" share); and
// SPECweb2005 does comparatively little allocation but streams static file
// content, which is why it is insensitive to the allocator.
package workload

import (
	"fmt"

	"webmm/internal/mem"
)

// Profile describes one workload's per-transaction behaviour at full
// (paper) scale.
type Profile struct {
	// Name and Desc echo the paper's Table 2.
	Name    string
	Version string
	Desc    string

	// Table 3 statistics (per transaction).
	Mallocs  int
	Frees    int
	Reallocs int
	AvgSize  float64

	// AppInstr is the application (non-allocator) instruction count per
	// transaction, calibrated so the default allocator on one Xeon core
	// reproduces the paper's Table 4 absolute throughput.
	AppInstr uint64

	// AppDataBytes sizes the per-process interpreter/script/cache data
	// region the application reads while executing.
	AppDataBytes uint64

	// OutputKB is the response payload written per transaction (HTML or
	// file content). SPECweb's large value models its static-file
	// serving share.
	OutputKB int

	// PaperXeon1Core is the paper's Table 4 throughput for the default
	// allocator with one Xeon core, kept for calibration checks.
	PaperXeon1Core float64
}

// FreeRatio returns the fraction of objects freed per-object during the
// transaction (the paper reports 72.7%-92.1%, 84.7% on average).
func (p Profile) FreeRatio() float64 {
	if p.Mallocs == 0 {
		return 0
	}
	return float64(p.Frees) / float64(p.Mallocs)
}

// Profiles returns the paper's PHP workloads in Table 2 order.
func Profiles() []Profile {
	return []Profile{
		MediaWikiRO(), MediaWikiRW(), SugarCRM(), EZPublish(),
		PhpBB(), CakePHP(), SPECweb(),
	}
}

// ByName returns the named profile (case-sensitive, as printed in reports).
func ByName(name string) (Profile, error) {
	for _, p := range append(Profiles(), Rails()) {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q", name)
}

// MediaWikiRO is the MediaWiki read-only scenario: reading randomly
// selected articles from a 1,000-article wiki backed by memcached.
func MediaWikiRO() Profile {
	return Profile{
		Name: "MediaWiki(ro)", Version: "1.9.3",
		Desc:    "wiki server, read-only article views",
		Mallocs: 151770, Frees: 129141, Reallocs: 6147, AvgSize: 62.1,
		AppInstr:     52_000_000,
		AppDataBytes: 8 * mem.MiB,
		OutputKB:     64,
		PaperXeon1Core: 25.3,
	}
}

// MediaWikiRW is the MediaWiki read/write scenario: 20% of transactions
// open an article for editing and save it.
func MediaWikiRW() Profile {
	return Profile{
		Name: "MediaWiki(rw)", Version: "1.9.3",
		Desc:    "wiki server, 20% of transactions edit articles",
		Mallocs: 404983, Frees: 354775, Reallocs: 22371, AvgSize: 66.7,
		AppInstr:     112_000_000,
		AppDataBytes: 8 * mem.MiB,
		OutputKB:     72,
		PaperXeon1Core: 11.7,
	}
}

// SugarCRM is the customer-relationship-management system: AJAX requests
// for customer data against 512 user accounts.
func SugarCRM() Profile {
	return Profile{
		Name: "SugarCRM", Version: "4.5.1",
		Desc:    "CRM system, AJAX customer lookups",
		Mallocs: 276853, Frees: 225800, Reallocs: 3120, AvgSize: 49.3,
		AppInstr:     66_000_000,
		AppDataBytes: 6 * mem.MiB,
		OutputKB:     32,
		PaperXeon1Core: 19.4,
	}
}

// EZPublish is the content-management system reading blog articles.
func EZPublish() Profile {
	return Profile{
		Name: "eZPublish", Version: "4.0.0",
		Desc:    "CMS, random article reads with sessions",
		Mallocs: 123019, Frees: 109856, Reallocs: 4646, AvgSize: 78.6,
		AppInstr:     46_000_000,
		AppDataBytes: 8 * mem.MiB,
		OutputKB:     56,
		PaperXeon1Core: 28.5,
	}
}

// PhpBB is the forum reading randomly selected posts.
func PhpBB() Profile {
	return Profile{
		Name: "phpBB", Version: "3.0.1",
		Desc:    "web forum, reading posts",
		Mallocs: 46965, Frees: 43267, Reallocs: 1003, AvgSize: 56.3,
		AppInstr:     20_500_000,
		AppDataBytes: 4 * mem.MiB,
		OutputKB:     40,
		PaperXeon1Core: 62.6,
	}
}

// CakePHP is the telephone-directory application built on the framework:
// list, select, update.
func CakePHP() Profile {
	return Profile{
		Name: "CakePHP", Version: "1.2.0.7296",
		Desc:    "framework app: list/select/update records",
		Mallocs: 99195, Frees: 82645, Reallocs: 3574, AvgSize: 68.6,
		AppInstr:     46_000_000,
		AppDataBytes: 4 * mem.MiB,
		OutputKB:     24,
		PaperXeon1Core: 28.3,
	}
}

// SPECweb is SPECweb2005's eCommerce scenario: little PHP allocation, much
// static content.
func SPECweb() Profile {
	return Profile{
		Name: "SPECweb2005", Version: "1.10",
		Desc:    "industry benchmark, eCommerce scenario",
		Mallocs: 3277, Frees: 2383, Reallocs: 106, AvgSize: 175.6,
		AppInstr:     6_500_000,
		AppDataBytes: 2 * mem.MiB,
		OutputKB:     128,
		PaperXeon1Core: 188.6,
	}
}

// Rails is the Ruby on Rails telephone-directory application of §4.4,
// built to mirror the CakePHP scenario. Ruby allocates more aggressively
// than PHP per unit of work and its runtime is slower.
func Rails() Profile {
	return Profile{
		Name: "RubyOnRails", Version: "1.2.3",
		Desc:    "Rails telephone directory (Ruby study)",
		Mallocs: 120000, Frees: 99600, Reallocs: 2400, AvgSize: 58.0,
		AppInstr:     58_000_000,
		AppDataBytes: 10 * mem.MiB,
		OutputKB:     24,
		PaperXeon1Core: 0, // the paper reports only 8-core bars for Ruby
	}
}
