package mem

import (
	"testing"
	"testing/quick"
)

func TestMapAlignmentAndDisjointness(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	var prev Mapping
	for i, size := range []uint64{1, 4095, 4096, 4097, 32 * KiB, 256 * MiB} {
		m := as.Map(size, 0, SmallPages)
		if m.Base == 0 {
			t.Fatalf("mapping %d: base is the null address", i)
		}
		if uint64(m.Base)%(1<<SmallPageShift) != 0 {
			t.Errorf("mapping %d: base %#x not page aligned", i, m.Base)
		}
		if m.Size < size {
			t.Errorf("mapping %d: size %d < requested %d", i, m.Size, size)
		}
		if i > 0 && m.Base < prev.End() {
			t.Errorf("mapping %d overlaps previous: [%#x,%#x) then [%#x,%#x)",
				i, prev.Base, prev.End(), m.Base, m.End())
		}
		prev = m
	}
}

func TestMapCustomAlignment(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	// DDmalloc requires segments aligned to the segment size (32 KiB).
	for i := 0; i < 10; i++ {
		m := as.Map(32*KiB, 32*KiB, SmallPages)
		if uint64(m.Base)%(32*KiB) != 0 {
			t.Fatalf("segment %d at %#x not 32 KiB aligned", i, m.Base)
		}
	}
}

func TestFootprintAccounting(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftNiagara)
	a := as.Map(1*MiB, 0, SmallPages)
	b := as.Map(2*MiB, 0, SmallPages)
	if got, want := as.Mapped(), uint64(3*MiB); got != want {
		t.Fatalf("Mapped = %d, want %d", got, want)
	}
	as.Unmap(a)
	if got, want := as.Mapped(), uint64(2*MiB); got != want {
		t.Fatalf("Mapped after unmap = %d, want %d", got, want)
	}
	if got, want := as.HighWater(), uint64(3*MiB); got != want {
		t.Fatalf("HighWater = %d, want %d", got, want)
	}
	as.Unmap(b)
	if as.Mapped() != 0 {
		t.Fatalf("Mapped after unmapping all = %d, want 0", as.Mapped())
	}
	if as.MapCalls() != 2 {
		t.Fatalf("MapCalls = %d, want 2", as.MapCalls())
	}
}

func TestPageShiftLargePages(t *testing.T) {
	as := NewAddressSpace(0, 1<<41, LargePageShiftNiagara)
	small := as.Map(1*MiB, 0, SmallPages)
	large := as.Map(8*MiB, 0, LargePages)
	small2 := as.Map(1*MiB, 0, SmallPages)

	if got := as.PageShift(small.Base); got != SmallPageShift {
		t.Errorf("PageShift(small) = %d, want %d", got, SmallPageShift)
	}
	if got := as.PageShift(large.Base + 5*MiB); got != LargePageShiftNiagara {
		t.Errorf("PageShift(large interior) = %d, want %d", got, LargePageShiftNiagara)
	}
	if got := as.PageShift(small2.Base); got != SmallPageShift {
		t.Errorf("PageShift(small2) = %d, want %d", got, SmallPageShift)
	}
	// Large-page mapping size must be a multiple of the large page.
	if large.Size%(1<<LargePageShiftNiagara) != 0 {
		t.Errorf("large mapping size %d not multiple of 4 MiB", large.Size)
	}
	as.Unmap(large)
	if got := as.PageShift(large.Base); got != SmallPageShift {
		t.Errorf("PageShift after Unmap = %d, want small", got)
	}
}

func TestLinesTouched(t *testing.T) {
	tests := []struct {
		addr Addr
		size uint64
		want uint64
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 64, 1},
		{0, 65, 2},
		{63, 1, 1},
		{63, 2, 2},
		{64, 64, 1},
		{100, 200, 4},
	}
	for _, tc := range tests {
		if got := LinesTouched(tc.addr, tc.size); got != tc.want {
			t.Errorf("LinesTouched(%d,%d) = %d, want %d", tc.addr, tc.size, got, tc.want)
		}
	}
}

func TestRoundUpProperty(t *testing.T) {
	f := func(n uint32, shift uint8) bool {
		to := uint64(1) << (shift % 20)
		r := RoundUp(uint64(n), to)
		return r >= uint64(n) && r%to == 0 && r-uint64(n) < to
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMapNeverReusesAddresses(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	m1 := as.Map(64*KiB, 0, SmallPages)
	as.Unmap(m1)
	m2 := as.Map(64*KiB, 0, SmallPages)
	if m2.Base < m1.End() {
		t.Fatalf("address reuse after Unmap: first [%#x,%#x), second base %#x",
			m1.Base, m1.End(), m2.Base)
	}
}

func TestTryMapBudget(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	as.SetBudget(64 * KiB)
	if _, err := as.TryMap(48*KiB, 0, SmallPages); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	_, err := as.TryMap(32*KiB, 0, SmallPages)
	oom, ok := err.(*OOMError)
	if !ok {
		t.Fatalf("over budget returned %v, want *OOMError", err)
	}
	if oom.Injected || oom.Budget != 64*KiB || oom.Mapped != 48*KiB {
		t.Errorf("OOMError = %+v", oom)
	}
	if as.Mapped() != 48*KiB {
		t.Errorf("failed TryMap changed footprint: %d mapped", as.Mapped())
	}
	// Lifting the budget (or freeing) lets the same request through.
	as.SetBudget(0)
	if _, err := as.TryMap(32*KiB, 0, SmallPages); err != nil {
		t.Errorf("after lifting budget: %v", err)
	}
}

func TestTryMapFaultInjector(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	var sizes []uint64
	as.SetFaultInjector(func(size uint64) bool {
		sizes = append(sizes, size)
		return len(sizes) == 1 // only the first call fails
	})
	_, err := as.TryMap(10*KiB, 0, SmallPages)
	oom, ok := err.(*OOMError)
	if !ok || !oom.Injected {
		t.Fatalf("injected failure returned %v, want injected *OOMError", err)
	}
	if len(sizes) != 1 || sizes[0] != 12*KiB {
		t.Errorf("injector saw sizes %v, want one page-rounded 12KiB request", sizes)
	}
	if as.Mapped() != 0 || as.MapCalls() != 0 {
		t.Error("injected failure leaked into the accounting")
	}
	if _, err := as.TryMap(10*KiB, 0, SmallPages); err != nil {
		t.Errorf("injector disarmed but TryMap still fails: %v", err)
	}
	as.SetFaultInjector(nil)
	if _, err := as.TryMap(10*KiB, 0, SmallPages); err != nil {
		t.Errorf("nil injector: %v", err)
	}
}
