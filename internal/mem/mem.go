// Package mem provides the simulated 64-bit address space that every
// allocator in this repository manages.
//
// The paper's allocators (PLDI'09, Inoue et al.) are C libraries that obtain
// memory from the operating system with mmap/brk and hand out raw pointers.
// Go has neither raw pointers into an OS heap nor manual free, so this
// package substitutes a *simulated* address space: allocators request
// aligned chunks ("mappings") and compute object addresses inside them, and
// the memory-hierarchy simulator (internal/cache, internal/machine) observes
// the resulting access streams. No backing storage exists; only addresses
// and sizes are tracked.
//
// The address space also remembers which mappings use large pages, because
// the D-TLB model needs the page size of an arbitrary address (the paper's
// DDmalloc uses 4 MB pages on Niagara and, optionally, large pages on Xeon).
package mem

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Addr is a simulated virtual address. Address 0 is the null pointer and is
// never returned by a mapping.
type Addr uint64

// Common size constants.
const (
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30

	// LineSize is the cache-line size used throughout the simulator.
	// Both evaluation machines in the paper use 64-byte lines.
	LineSize = 64

	// SmallPageShift is the base page size (4 KiB) used by both platforms.
	SmallPageShift = 12
	// LargePageShiftXeon is the 2 MiB large page available on x86-64.
	LargePageShiftXeon = 21
	// LargePageShiftNiagara is the 4 MiB large page the paper uses on
	// Solaris/Niagara.
	LargePageShiftNiagara = 22
)

// PageKind selects the page size backing a mapping.
type PageKind uint8

const (
	// SmallPages backs a mapping with the platform's 4 KiB base pages.
	SmallPages PageKind = iota
	// LargePages backs a mapping with the platform's large pages
	// (2 MiB on Xeon, 4 MiB on Niagara).
	LargePages
)

// Mapping describes one contiguous region returned by Map.
type Mapping struct {
	Base Addr
	Size uint64
	Kind PageKind
}

// End returns the first address past the mapping.
func (m Mapping) End() Addr { return m.Base + Addr(m.Size) }

// Contains reports whether a falls inside the mapping.
func (m Mapping) Contains(a Addr) bool { return a >= m.Base && a < m.End() }

// AddressSpace hands out non-overlapping, aligned mappings from a private
// region of the simulated 64-bit address space. It is the model of the
// operating system's mmap underneath every allocator.
//
// Concurrency contract: mapping operations (Map/TryMap/Unmap/PageShift and
// friends) belong to one owner goroutine — the simulator is single-threaded
// by design so that runs are reproducible. The budget, however, is a control
// plane: SetBudget, Budget, Mapped, HighWater and BudgetDenials are safe to
// call from other goroutines concurrently with the owner, which is how the
// adaptive budget controller (internal/budget) retargets a running cell's
// limit mid-flight. Every TryMap re-reads the budget, so an allocator
// crossing an arena-map boundary observes the latest limit.
type AddressSpace struct {
	base       Addr
	next       Addr
	limit      Addr
	largeShift uint8 // page shift used for LargePages mappings

	mapped    atomic.Uint64 // bytes currently mapped
	highWater atomic.Uint64 // peak of mapped
	mapCalls  uint64
	unmaps    uint64

	// denials counts TryMap failures caused by the byte budget (injected
	// faults and span exhaustion are not denials). The adaptive controller
	// and the heap-limit sweep read it to report OOM pressure per process.
	denials atomic.Uint64

	// large holds LargePages mappings sorted by base so PageShift can
	// find the page size of an address with a binary search. Small-page
	// mappings are not recorded individually: small is the default.
	large []Mapping

	// largeEpoch counts mutations of the large-mapping list, so callers
	// that cache a PageShiftRegion answer can tell when it may be stale.
	largeEpoch uint64

	// budget, when nonzero, caps the bytes that may be simultaneously
	// mapped: TryMap fails (and Map panics) once mapped+size would exceed
	// it. This models an OS memory limit (ulimit/cgroup) independent of
	// the address-space span. Atomic so a budget controller can retarget
	// it while the owner goroutine maps.
	budget atomic.Uint64

	// inject, when non-nil, is consulted by TryMap before anything else;
	// returning true fails the call with an injected OOM. Fault-injection
	// hook for the -faults framework.
	inject func(size uint64) bool
}

// OOMError reports a failed TryMap: either the configured byte budget was
// exceeded, the address-space span was exhausted, or a fault injector
// forced the failure.
type OOMError struct {
	Need     uint64 // bytes requested (after page rounding)
	Budget   uint64 // configured budget (0 = unlimited)
	Mapped   uint64 // bytes mapped at the time of the failure
	Injected bool   // true when a fault injector forced the failure
}

func (e *OOMError) Error() string {
	if e.Injected {
		return fmt.Sprintf("mem: injected map failure (%d bytes)", e.Need)
	}
	if e.Budget > 0 {
		return fmt.Sprintf("mem: budget exceeded: need %d bytes, %d of %d mapped",
			e.Need, e.Mapped, e.Budget)
	}
	return fmt.Sprintf("mem: address space exhausted: need %d bytes", e.Need)
}

// NewAddressSpace returns an address space serving mappings from
// [base, base+span). The largePageShift selects the platform's large-page
// size (use LargePageShiftXeon or LargePageShiftNiagara).
func NewAddressSpace(base Addr, span uint64, largePageShift uint8) *AddressSpace {
	if base == 0 {
		base = 1 << 32 // keep address 0 unmapped: 0 is the null pointer
	}
	return &AddressSpace{
		base:       base,
		next:       base,
		limit:      base + Addr(span),
		largeShift: largePageShift,
	}
}

// Map reserves size bytes aligned to align (which must be a power of two, or
// zero for page alignment) and returns the mapping. Map never reuses
// addresses: like a simulator's mmap it always moves upward, so a stale
// pointer can never alias a new mapping. Map panics when the space cannot
// satisfy the request; callers that must survive OOM use TryMap.
func (as *AddressSpace) Map(size, align uint64, kind PageKind) Mapping {
	m, err := as.TryMap(size, align, kind)
	if err != nil {
		panic(err.Error())
	}
	return m
}

// TryMap is Map with an error return: misuse (zero size, bad alignment)
// still panics — those are programming errors — but exhaustion of the
// span or the configured budget, and injected faults, return an *OOMError
// so allocators can surface OOM as a null pointer instead of dying.
func (as *AddressSpace) TryMap(size, align uint64, kind PageKind) (Mapping, error) {
	if size == 0 {
		panic("mem: Map with size 0")
	}
	pageSize := uint64(1) << SmallPageShift
	if kind == LargePages {
		pageSize = uint64(1) << as.largeShift
	}
	if align == 0 {
		align = pageSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: Map alignment %d is not a power of two", align))
	}
	if align < pageSize {
		align = pageSize
	}
	size = roundUp(size, pageSize)

	mapped := as.mapped.Load()
	if as.inject != nil && as.inject(size) {
		return Mapping{}, &OOMError{Need: size, Budget: as.budget.Load(), Mapped: mapped, Injected: true}
	}
	// The budget is re-read on every call: an allocator crossing an
	// arena-map boundary observes limits the controller shrank (or grew)
	// since its previous mapping.
	if budget := as.budget.Load(); budget > 0 && mapped+size > budget {
		as.denials.Add(1)
		return Mapping{}, &OOMError{Need: size, Budget: budget, Mapped: mapped}
	}
	base := Addr(roundUp(uint64(as.next), align))
	end := base + Addr(size)
	if end > as.limit {
		return Mapping{}, &OOMError{Need: size, Budget: as.budget.Load(), Mapped: mapped}
	}
	as.next = end
	mapped = as.mapped.Add(size)
	as.mapCalls++
	if mapped > as.highWater.Load() {
		as.highWater.Store(mapped)
	}
	m := Mapping{Base: base, Size: size, Kind: kind}
	if kind == LargePages {
		as.large = append(as.large, m)
		as.largeEpoch++
	}
	return m, nil
}

// SetBudget caps the bytes that may be simultaneously mapped (0 removes
// the cap). Takes effect on the next TryMap/Map call; already-mapped bytes
// are kept even if they exceed the new budget. Safe to call concurrently
// with the owner goroutine's mapping operations — this is the knob the
// adaptive budget controller turns mid-run.
func (as *AddressSpace) SetBudget(bytes uint64) { as.budget.Store(bytes) }

// Budget returns the configured byte budget (0 = unlimited). Safe for
// concurrent use.
func (as *AddressSpace) Budget() uint64 { return as.budget.Load() }

// BudgetDenials returns how many TryMap calls the byte budget has refused
// (injected faults and span exhaustion are not counted). Safe for
// concurrent use.
func (as *AddressSpace) BudgetDenials() uint64 { return as.denials.Load() }

// SetFaultInjector installs a hook consulted on every TryMap/Map with the
// page-rounded request size; returning true fails the call with an
// injected OOMError. Pass nil to disable.
func (as *AddressSpace) SetFaultInjector(f func(size uint64) bool) { as.inject = f }

// Unmap releases a mapping's bytes from the footprint accounting. The
// address range is never recycled (see Map), so a dangling simulated pointer
// stays detectably invalid.
func (as *AddressSpace) Unmap(m Mapping) {
	if m.Size > as.mapped.Load() {
		panic("mem: Unmap of more bytes than are mapped")
	}
	as.mapped.Add(^(m.Size - 1)) // atomic subtract
	as.unmaps++
	if m.Kind == LargePages {
		for i := range as.large {
			if as.large[i].Base == m.Base {
				as.large = append(as.large[:i], as.large[i+1:]...)
				as.largeEpoch++
				break
			}
		}
	}
}

// PageShift returns log2 of the page size backing address a. Addresses in a
// LargePages mapping use the platform large-page shift; everything else is a
// small page.
func (as *AddressSpace) PageShift(a Addr) uint8 {
	// Binary search the sorted large-mapping list. Unmap keeps order.
	i := sort.Search(len(as.large), func(i int) bool { return as.large[i].End() > a })
	if i < len(as.large) && as.large[i].Contains(a) {
		return as.largeShift
	}
	return SmallPageShift
}

// PageShiftRegion returns the page shift backing a together with the
// maximal half-open address range [lo, hi) containing a over which that
// shift is constant: a large mapping's extent, or the gap between two large
// mappings. Callers cache the triple and revalidate it with LargeEpoch,
// turning the per-access binary search into a two-comparison range check
// for consecutive same-region addresses.
func (as *AddressSpace) PageShiftRegion(a Addr) (shift uint8, lo, hi Addr) {
	i := sort.Search(len(as.large), func(i int) bool { return as.large[i].End() > a })
	if i < len(as.large) && as.large[i].Contains(a) {
		return as.largeShift, as.large[i].Base, as.large[i].End()
	}
	lo = 0
	if i > 0 {
		lo = as.large[i-1].End()
	}
	hi = Addr(^uint64(0))
	if i < len(as.large) {
		hi = as.large[i].Base
	}
	return SmallPageShift, lo, hi
}

// LargeEpoch returns a counter that changes whenever the set of large-page
// mappings changes; see PageShiftRegion.
func (as *AddressSpace) LargeEpoch() uint64 { return as.largeEpoch }

// LargePageShift returns the platform's large-page shift.
func (as *AddressSpace) LargePageShift() uint8 { return as.largeShift }

// Mapped returns the bytes currently mapped. Safe for concurrent use (the
// budget controller samples it while the owner maps).
func (as *AddressSpace) Mapped() uint64 { return as.mapped.Load() }

// HighWater returns the peak number of simultaneously mapped bytes. Safe
// for concurrent use.
func (as *AddressSpace) HighWater() uint64 { return as.highWater.Load() }

// MapCalls returns how many Map calls have been served (the paper counts
// system calls to obtain chunks; the region allocator's 256 MB chunks make
// this negligible and we can verify that).
func (as *AddressSpace) MapCalls() uint64 { return as.mapCalls }

// Remaining returns the bytes of address space not yet handed out.
func (as *AddressSpace) Remaining() uint64 { return uint64(as.limit - as.next) }

func roundUp(n, to uint64) uint64 {
	if to == 0 || to&(to-1) != 0 {
		panic(fmt.Sprintf("mem: roundUp to %d (not a power of two)", to))
	}
	return (n + to - 1) &^ (to - 1)
}

// RoundUp rounds n up to the next multiple of the power-of-two to.
func RoundUp(n, to uint64) uint64 { return roundUp(n, to) }

// LineOf returns the cache-line index of address a.
func LineOf(a Addr) uint64 { return uint64(a) / LineSize }

// LinesTouched returns how many distinct cache lines an access of size bytes
// at address a touches.
func LinesTouched(a Addr, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := uint64(a) / LineSize
	last := (uint64(a) + size - 1) / LineSize
	return last - first + 1
}
