package mem

import (
	"sync"
	"testing"
)

// TestConcurrentSetBudgetVsTryMap pins the address space's concurrency
// contract: one owner goroutine maps and unmaps while a controller
// goroutine retargets the budget and samples the footprint. Run under
// -race (CI does), this fails on any unsynchronized access to the budget
// control plane; without -race it still checks that every TryMap outcome
// is coherent (a denial only ever reports a nonzero budget).
func TestConcurrentSetBudgetVsTryMap(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)

	const iters = 20000
	var wg sync.WaitGroup
	wg.Add(2)

	// Controller: sweep the budget up and down, including "unlimited",
	// while reading the sampling surface.
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			switch i % 4 {
			case 0:
				as.SetBudget(64 * KiB)
			case 1:
				as.SetBudget(16 * MiB)
			case 2:
				as.SetBudget(0)
			case 3:
				as.SetBudget(as.Mapped() / 2)
			}
			_ = as.Budget()
			_ = as.Mapped()
			_ = as.HighWater()
			_ = as.BudgetDenials()
		}
	}()

	// Owner: the usual allocator pattern — map arenas, free some of them.
	go func() {
		defer wg.Done()
		var live []Mapping
		for i := 0; i < iters; i++ {
			m, err := as.TryMap(64*KiB, 0, SmallPages)
			if err == nil {
				live = append(live, m)
			} else if oom, ok := err.(*OOMError); !ok || oom.Budget == 0 && !oom.Injected {
				// A budget denial must carry the budget that refused it;
				// the span is far too large to exhaust here.
				t.Errorf("TryMap failed without a budget: %v", err)
				return
			}
			if len(live) > 32 {
				as.Unmap(live[0])
				live = live[1:]
			}
		}
	}()
	wg.Wait()

	if as.Mapped() > as.HighWater() {
		t.Errorf("mapped %d exceeds high water %d", as.Mapped(), as.HighWater())
	}
}

// TestBudgetDenialsCount pins the denial counter: exactly the TryMap calls
// the budget refuses are counted — injected faults and successes are not.
func TestBudgetDenialsCount(t *testing.T) {
	as := NewAddressSpace(0, 1<<40, LargePageShiftXeon)
	as.SetBudget(8 * KiB)

	if _, err := as.TryMap(4*KiB, 0, SmallPages); err != nil {
		t.Fatalf("first map under budget failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := as.TryMap(8*KiB, 0, SmallPages); err == nil {
			t.Fatal("map beyond budget succeeded")
		}
	}
	if got := as.BudgetDenials(); got != 3 {
		t.Errorf("BudgetDenials = %d, want 3", got)
	}

	// An injected failure is not a budget denial.
	as.SetFaultInjector(func(uint64) bool { return true })
	if _, err := as.TryMap(1*KiB, 0, SmallPages); err == nil {
		t.Fatal("injected map succeeded")
	}
	as.SetFaultInjector(nil)
	if got := as.BudgetDenials(); got != 3 {
		t.Errorf("BudgetDenials after injected fault = %d, want 3", got)
	}

	// Lifting the budget mid-stream is observed by the very next call.
	as.SetBudget(0)
	if _, err := as.TryMap(64*MiB, 0, SmallPages); err != nil {
		t.Fatalf("map after lifting budget failed: %v", err)
	}
}
