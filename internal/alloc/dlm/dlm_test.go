package dlm

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestNoFreeAll(t *testing.T) {
	a := New(alloctest.NewEnv(1))
	if a.SupportsFreeAll() {
		t.Fatal("glibc model must not support freeAll")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAll did not panic")
		}
	}()
	a.FreeAll()
}

func TestFastbinLIFOReuse(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	a.Free(p1)
	a.Free(p2)
	// Fastbins are LIFO and skip coalescing: exact reuse, newest first.
	if got := a.Malloc(64); got != p2 {
		t.Fatalf("fastbin reuse = %#x, want %#x", got, p2)
	}
	if got := a.Malloc(64); got != p1 {
		t.Fatalf("second fastbin reuse = %#x, want %#x", got, p1)
	}
}

func TestFastbinFreeIsCheapUntilConsolidation(t *testing.T) {
	env := alloctest.NewEnv(3)
	a := New(env)
	ptrs := make([]heap.Ptr, consolidateAt-2)
	for i := range ptrs {
		ptrs[i] = a.Malloc(64)
	}
	env.Drain()
	for _, p := range ptrs {
		a.Free(p)
	}
	instr := env.Drain()
	perFree := float64(instr[sim.ClassAlloc]) / float64(len(ptrs))
	if perFree > 20 {
		t.Fatalf("fastbin free cost %.1f instructions, want <= 20 (deferral is cheap)", perFree)
	}
}

func TestConsolidationSweepIsExpensive(t *testing.T) {
	// The deferred defragmentation arrives as a periodic sweep: free
	// enough small objects and one free suddenly costs a consolidation.
	env := alloctest.NewEnv(4)
	a := New(env)
	ptrs := make([]heap.Ptr, consolidateAt+8)
	for i := range ptrs {
		ptrs[i] = a.Malloc(64)
	}
	env.Drain()
	var maxCost uint64
	for _, p := range ptrs {
		before := env.Instructions()[sim.ClassAlloc]
		a.Free(p)
		cost := env.Instructions()[sim.ClassAlloc] - before
		if cost > maxCost {
			maxCost = cost
		}
	}
	if maxCost < uint64(consolidateAt)*20 {
		t.Fatalf("max single-free cost %d instructions; consolidation sweep missing", maxCost)
	}
}

func TestLargeFreeCoalescesImmediately(t *testing.T) {
	a := New(alloctest.NewEnv(5))
	p1 := a.Malloc(2000)
	p2 := a.Malloc(2000)
	guard := a.Malloc(64)
	_ = guard
	a.Free(p1)
	a.Free(p2) // merges with p1's chunk
	// A 4000-byte request fits only in the merged chunk.
	big := a.Malloc(4000)
	if big != p1 {
		t.Fatalf("merged allocation at %#x, want %#x", big, p1)
	}
}

func TestUnsortedBinServesRecentFrees(t *testing.T) {
	a := New(alloctest.NewEnv(6))
	p := a.Malloc(3000)
	guard := a.Malloc(64)
	_ = guard
	a.Free(p)
	if got := a.Malloc(3000); got != p {
		t.Fatalf("unsorted-bin reuse = %#x, want %#x", got, p)
	}
}

func TestHugeUsesMmap(t *testing.T) {
	a := New(alloctest.NewEnv(7))
	before := a.PeakFootprint()
	p := a.Malloc(512 * 1024)
	if a.PeakFootprint() < before+512*1024 {
		t.Fatal("huge allocation did not grow the footprint")
	}
	a.Free(p)
	a.ResetPeak()
	if a.PeakFootprint() >= before+512*1024 {
		t.Fatal("huge free did not unmap")
	}
}

func TestMallocIsCostlierThanTCmallocFastPath(t *testing.T) {
	// glibc's unsorted-bin churn must make its average malloc/free pair
	// pricier than a pure thread-cache design (paper Figure 11: glibc
	// spends the most time in memory operations).
	env := alloctest.NewEnv(8)
	a := New(env)
	rng := sim.NewRNG(9)
	var live []heap.Ptr
	// Mixed workload with churn.
	env.Drain()
	ops := 0
	for i := 0; i < 20000; i++ {
		if len(live) > 0 && rng.Bool(0.48) {
			k := rng.Intn(len(live))
			a.Free(live[k])
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			live = append(live, a.Malloc(rng.Uint64n(900)+1))
		}
		ops++
		if i%1000 == 0 {
			env.Drain()
		}
	}
	env.Drain()
	// No assertion on the exact value here — the cross-allocator
	// comparison lives in the experiments tests — but the model must
	// stay within a sane band.
	s := a.Stats()
	if s.Mallocs == 0 || s.Frees == 0 {
		t.Fatal("workload did not exercise malloc/free")
	}
}
