// Package dlm models glibc's ptmalloc/dlmalloc — "an allocator by Doug Lea
// ... which sorts all of the objects in the free lists in order of their
// size to easily find the best object to allocate for a request, coalesces
// multiple small objects into large objects, and splits large objects into
// small objects in response to requests" (paper §2.2). It is the baseline
// of the paper's Ruby study (§4.4, glibc-2.5).
//
// The model keeps dlmalloc's architecture and therefore its cost structure:
//
//   - boundary-tagged chunks with an 8-byte header (16 bytes effective
//     overhead for free-list links) carved from sbrk-style arenas;
//   - *fastbins*: tiny chunks are freed to LIFO bins without coalescing —
//     cheap, but only a deferral: malloc_consolidate later drains them,
//     coalescing every deferred chunk in one expensive sweep;
//   - an *unsorted bin*: ordinary frees coalesce with neighbours
//     immediately and park in the unsorted bin; each subsequent malloc
//     walks it, sorting chunks into their real bins (size-sorted insertion
//     for large bins — a pointer chase per list hop);
//   - best-fit searches over the binned chunks, with splitting.
//
// All of that is the defragmentation work DDmalloc dodges.
package dlm

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	arenaIncrement = mem.MiB // sbrk growth granule

	headerSize = 8
	minChunk   = 32

	fastbinMax  = 160 // chunks at or below free to fastbins
	numFastbins = fastbinMax / 8

	smallMax     = 1008
	numSmallBins = smallMax / 8
	numLargeBins = 8
	hugeCutoff   = 128 * mem.KiB // mmap threshold

	// consolidateAt drains fastbins once this many chunks accumulate
	// (glibc uses a byte threshold; a count keeps the model simple and
	// preserves the periodic-sweep behaviour).
	consolidateAt = 64

	costMallocFast  = 30
	costFastbinPush = 14
	costFastbinPop  = 16
	costUnsortedHop = 18
	costSortedHop   = 9
	costSplit       = 26
	costMerge       = 26
	costFreeBase    = 30
	costConsolidate = 40 // fixed part; per-chunk costs add up
	costHuge        = 70

	codeSize = 24 * mem.KiB
)

type chunk struct {
	addr mem.Addr
	size uint64
	free bool

	prevAdj, nextAdj *chunk

	// bin list links while free.
	binPrev, binNext *chunk
	bin              int // -1: unsorted, -2: fastbin, >=0: small/large bin
}

const (
	binUnsorted = -1
	binFast     = -2
)

// Allocator is the glibc model.
type Allocator struct {
	env *sim.Env

	arenas []mem.Mapping
	top    *chunk // the wilderness chunk of the newest arena

	fastbins [numFastbins]heap.FreeList
	fastMeta map[mem.Addr]*chunk // chunk records parked in fastbins
	nFast    int

	unsorted []*chunk
	bins     [numSmallBins + numLargeBins]*chunk
	binArr   mem.Addr

	byPayload map[mem.Addr]*chunk
	huge      map[mem.Addr]mem.Mapping

	mappedBytes uint64
	peakMapped  uint64
	stats       heap.Stats
}

// New returns a glibc-model heap with its first arena mapped.
func New(env *sim.Env) *Allocator {
	a := &Allocator{
		env:       env,
		fastMeta:  make(map[mem.Addr]*chunk),
		byPayload: make(map[mem.Addr]*chunk),
		huge:      make(map[mem.Addr]mem.Mapping),
	}
	meta := env.AS.Map(4*mem.KiB, 0, mem.SmallPages)
	a.binArr = meta.Base
	a.mappedBytes = meta.Size
	if !a.grow() {
		panic("dlm: cannot map initial arena")
	}
	a.peakMapped = a.mappedBytes
	return a
}

// grow extends the heap by one arena increment, creating a fresh top chunk.
// It reports false when the address space refuses (OOM).
func (a *Allocator) grow() bool {
	m, err := a.env.AS.TryMap(arenaIncrement, 0, mem.SmallPages)
	if err != nil {
		return false
	}
	a.env.Instr(400, sim.ClassOS)
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	a.arenas = append(a.arenas, m)
	a.top = &chunk{addr: m.Base, size: m.Size, free: true, bin: binUnsorted}
	a.env.Write(a.top.addr, headerSize, sim.ClassAlloc)
	return true
}

func binFor(size uint64) int {
	if size <= smallMax {
		b := int(size/8) - 1
		if b < 0 {
			b = 0
		}
		return b
	}
	b := numSmallBins
	for s := uint64(smallMax) * 2; s < size && b < numSmallBins+numLargeBins-1; s <<= 1 {
		b++
	}
	return b
}

func (a *Allocator) binHeadAddr(i int) mem.Addr { return a.binArr + mem.Addr(i*8) }

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "glibc" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator: glibc has no bulk free — this
// is exactly why the paper's Ruby study restarts processes instead.
func (a *Allocator) SupportsFreeAll() bool { return false }

// FreeAll implements heap.Allocator by panicking; callers must check
// SupportsFreeAll.
func (a *Allocator) FreeAll() { panic("dlm: glibc malloc has no freeAll") }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	trueSize := (size + headerSize + 7) &^ 7
	if trueSize < minChunk {
		trueSize = minChunk
	}
	if trueSize >= hugeCutoff {
		return a.mallocHuge(size)
	}
	a.stats.BytesAllocated += trueSize
	a.env.Instr(costMallocFast, sim.ClassAlloc)

	// Fastbin hit: the cheap path glibc takes for hot small sizes.
	if trueSize <= fastbinMax {
		fb := int(trueSize/8) - 1
		if p := a.fastbins[fb].Pop(); p != 0 {
			a.env.Instr(costFastbinPop, sim.ClassAlloc)
			a.env.Read(p, 8, sim.ClassAlloc) // link word
			c := a.fastMeta[p]
			delete(a.fastMeta, p)
			c.free = false
			a.byPayload[p] = c
			return p
		}
	}

	// Drain the unsorted bin: every chunk gets inspected and either
	// used (exact fit) or sorted into its bin.
	var hit *chunk
	for len(a.unsorted) > 0 {
		c := a.unsorted[0]
		a.unsorted = a.unsorted[1:]
		a.env.Instr(costUnsortedHop, sim.ClassAlloc)
		a.env.Read(c.addr, headerSize, sim.ClassAlloc)
		if hit == nil && c.size >= trueSize && c.size < trueSize+minChunk {
			hit = c // exact-enough fit: take it immediately
			break
		}
		a.enbin(c)
	}
	if hit == nil {
		hit = a.searchBins(trueSize)
	}
	if hit == nil {
		if hit = a.carveTop(trueSize); hit == nil {
			return 0 // OOM
		}
	}
	// Split the remainder back to the unsorted bin.
	if hit.size >= trueSize+minChunk {
		a.env.Instr(costSplit, sim.ClassAlloc)
		rest := &chunk{
			addr:    hit.addr + mem.Addr(trueSize),
			size:    hit.size - trueSize,
			free:    true,
			bin:     binUnsorted,
			prevAdj: hit,
			nextAdj: hit.nextAdj,
		}
		if hit.nextAdj != nil {
			hit.nextAdj.prevAdj = rest
			a.env.Write(hit.nextAdj.addr, 8, sim.ClassAlloc)
		}
		hit.nextAdj = rest
		hit.size = trueSize
		a.env.Write(rest.addr, headerSize, sim.ClassAlloc)
		a.unsorted = append(a.unsorted, rest)
	}
	hit.free = false
	a.env.Write(hit.addr, headerSize, sim.ClassAlloc)
	p := hit.addr + headerSize
	a.byPayload[p] = hit
	return p
}

// enbin sorts a chunk into its small or large bin. Large bins keep chunks
// size-sorted, costing one header read per hop — dlmalloc's signature
// "sorts all of the objects in the free lists".
func (a *Allocator) enbin(c *chunk) {
	i := binFor(c.size)
	c.bin = i
	a.env.Read(a.binHeadAddr(i), 8, sim.ClassAlloc)
	if i >= numSmallBins {
		// Sorted insertion.
		var prev *chunk
		for cur := a.bins[i]; cur != nil && cur.size < c.size; cur = cur.binNext {
			a.env.Instr(costSortedHop, sim.ClassAlloc)
			a.env.Read(cur.addr, headerSize, sim.ClassAlloc)
			prev = cur
		}
		if prev == nil {
			c.binNext = a.bins[i]
			if a.bins[i] != nil {
				a.bins[i].binPrev = c
				a.env.Write(a.bins[i].addr+headerSize, 8, sim.ClassAlloc)
			}
			a.bins[i] = c
			a.env.Write(a.binHeadAddr(i), 8, sim.ClassAlloc)
		} else {
			c.binNext = prev.binNext
			c.binPrev = prev
			if prev.binNext != nil {
				prev.binNext.binPrev = c
				a.env.Write(prev.binNext.addr+headerSize, 8, sim.ClassAlloc)
			}
			prev.binNext = c
			a.env.Write(prev.addr+headerSize, 8, sim.ClassAlloc)
		}
	} else {
		c.binNext = a.bins[i]
		if a.bins[i] != nil {
			a.bins[i].binPrev = c
			a.env.Write(a.bins[i].addr+headerSize, 8, sim.ClassAlloc)
		}
		a.bins[i] = c
		a.env.Write(a.binHeadAddr(i), 8, sim.ClassAlloc)
	}
	a.env.Write(c.addr+headerSize, 16, sim.ClassAlloc)
}

// unbin removes a chunk from its bin.
func (a *Allocator) unbin(c *chunk) {
	a.env.Read(c.addr+headerSize, 16, sim.ClassAlloc)
	if c.binPrev != nil {
		c.binPrev.binNext = c.binNext
		a.env.Write(c.binPrev.addr+headerSize, 8, sim.ClassAlloc)
	} else if c.bin >= 0 {
		a.bins[c.bin] = c.binNext
		a.env.Write(a.binHeadAddr(c.bin), 8, sim.ClassAlloc)
	}
	if c.binNext != nil {
		c.binNext.binPrev = c.binPrev
		a.env.Write(c.binNext.addr+headerSize, 8, sim.ClassAlloc)
	}
	c.binPrev, c.binNext = nil, nil
}

// searchBins best-fit searches the binned chunks.
func (a *Allocator) searchBins(trueSize uint64) *chunk {
	for i := binFor(trueSize); i < len(a.bins); i++ {
		if a.bins[i] == nil {
			continue
		}
		a.env.Read(a.binHeadAddr(i), 8, sim.ClassAlloc)
		for c := a.bins[i]; c != nil; c = c.binNext {
			a.env.Read(c.addr, headerSize, sim.ClassAlloc)
			a.env.Instr(costSortedHop, sim.ClassAlloc)
			if c.size >= trueSize {
				a.unbin(c)
				return c
			}
		}
	}
	return nil
}

// carveTop serves a request from the wilderness, growing it if needed; nil
// means the heap cannot grow (OOM).
func (a *Allocator) carveTop(trueSize uint64) *chunk {
	if a.top == nil || a.top.size < trueSize+minChunk {
		if !a.grow() {
			return nil
		}
	}
	c := &chunk{addr: a.top.addr, size: trueSize, free: true}
	a.top.addr += mem.Addr(trueSize)
	a.top.size -= trueSize
	c.nextAdj = a.top // top is always the next adjacent chunk
	// Note: adjacency links of carved chunks form a chain ending at top.
	if a.top.prevAdj != nil {
		// re-link: previous neighbour of top is now c's prev
		c.prevAdj = a.top.prevAdj
		c.prevAdj.nextAdj = c
	}
	a.top.prevAdj = c
	a.env.Write(c.addr, headerSize, sim.ClassAlloc)
	a.env.Write(a.top.addr, headerSize, sim.ClassAlloc)
	return c
}

func (a *Allocator) mallocHuge(size uint64) heap.Ptr {
	rounded := mem.RoundUp(size+headerSize, 4096)
	a.stats.BytesAllocated += rounded
	a.env.Instr(costHuge, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	m, err := a.env.AS.TryMap(rounded, 0, mem.SmallPages)
	if err != nil {
		return 0 // OOM
	}
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	a.env.Write(m.Base, headerSize, sim.ClassAlloc)
	p := m.Base + headerSize
	a.huge[p] = m
	return p
}

// Free implements heap.Allocator.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	if m, ok := a.huge[p]; ok {
		a.env.Instr(costHuge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.mappedBytes -= m.Size
		a.env.AS.Unmap(m)
		delete(a.huge, p)
		return
	}
	c, ok := a.byPayload[p]
	if !ok {
		panic(fmt.Sprintf("dlm: free of unknown payload %#x", p))
	}
	delete(a.byPayload, p)
	a.env.Read(c.addr, headerSize, sim.ClassAlloc)

	// Fastbin path: defer the defragmentation.
	if c.size <= fastbinMax {
		a.env.Instr(costFastbinPush, sim.ClassAlloc)
		a.env.Write(p, 8, sim.ClassAlloc) // link word
		fb := int(c.size/8) - 1
		a.fastbins[fb].Push(p)
		a.fastMeta[p] = c
		a.nFast++
		if a.nFast >= consolidateAt {
			a.consolidate()
		}
		return
	}
	a.env.Instr(costFreeBase, sim.ClassAlloc)
	a.coalesce(c)
}

// coalesce merges c with free neighbours and parks it in the unsorted bin.
func (a *Allocator) coalesce(c *chunk) {
	c.free = true
	if n := c.nextAdj; n != nil && n != a.top {
		a.env.Read(n.addr, headerSize, sim.ClassAlloc)
		if n.free {
			a.env.Instr(costMerge, sim.ClassAlloc)
			a.removeFree(n)
			c.size += n.size
			c.nextAdj = n.nextAdj
			if n.nextAdj != nil {
				n.nextAdj.prevAdj = c
				a.env.Write(n.nextAdj.addr, 8, sim.ClassAlloc)
			}
		}
	}
	// PREV_INUSE bit: the previous chunk's header is only touched when
	// it is actually free and a merge happens.
	if pr := c.prevAdj; pr != nil {
		if pr.free && pr != a.top {
			a.env.Read(pr.addr, headerSize, sim.ClassAlloc)
			a.env.Instr(costMerge, sim.ClassAlloc)
			a.removeFree(pr)
			pr.size += c.size
			pr.nextAdj = c.nextAdj
			if c.nextAdj != nil {
				c.nextAdj.prevAdj = pr
				a.env.Write(c.nextAdj.addr, 8, sim.ClassAlloc)
			}
			c = pr
		}
	}
	c.free = true
	c.bin = binUnsorted
	a.env.Write(c.addr, headerSize, sim.ClassAlloc)
	a.env.Write(c.addr+headerSize, 16, sim.ClassAlloc)
	a.unsorted = append(a.unsorted, c)
}

// removeFree detaches a free chunk from whichever structure holds it.
func (a *Allocator) removeFree(c *chunk) {
	switch {
	case c.bin == binUnsorted:
		for i, u := range a.unsorted {
			if u == c {
				a.unsorted = append(a.unsorted[:i], a.unsorted[i+1:]...)
				break
			}
		}
		a.env.Read(c.addr+headerSize, 16, sim.ClassAlloc)
	case c.bin == binFast:
		// Fastbin chunks are not coalesced until consolidation; they
		// are never removed from here.
	default:
		a.unbin(c)
	}
}

// consolidate drains every fastbin, fully coalescing each deferred chunk —
// glibc's malloc_consolidate. This is the "delayed, not eliminated"
// defragmentation the paper contrasts with DDmalloc.
func (a *Allocator) consolidate() {
	a.env.Instr(costConsolidate, sim.ClassAlloc)
	for fb := range a.fastbins {
		for {
			p := a.fastbins[fb].Pop()
			if p == 0 {
				break
			}
			a.env.Read(p, 8, sim.ClassAlloc)
			c := a.fastMeta[p]
			delete(a.fastMeta, p)
			a.env.Instr(costFreeBase, sim.ClassAlloc)
			a.coalesce(c)
		}
	}
	a.nFast = 0
}

// Realloc implements heap.Allocator.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	if c, ok := a.byPayload[p]; ok {
		trueSize := (newSize + headerSize + 7) &^ 7
		a.env.Instr(18, sim.ClassAlloc)
		a.env.Read(c.addr, headerSize, sim.ClassAlloc)
		if trueSize <= c.size && trueSize < hugeCutoff {
			return p
		}
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	a.Free(p)
	return np
}

// PeakFootprint implements heap.Allocator.
func (a *Allocator) PeakFootprint() uint64 { return a.peakMapped }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakMapped = a.mappedBytes }
