package zend

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

// BenchmarkZendMallocFree churns a mixed-size working set through the
// allocator: each iteration is one malloc plus one free of a random earlier
// object, the steady-state pattern of a request's slice loop. It exercises
// the small-size bins, the boundary-tag coalescer and — on every call — the
// pointer-map fast paths that register and unregister live objects.
func BenchmarkZendMallocFree(b *testing.B) {
	env := alloctest.NewEnv(7)
	a := New(env)
	rng := sim.NewRNG(13)
	live := make([]heap.Ptr, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		size := rng.Uint64n(1500) + 1
		p := a.Malloc(size)
		if p == 0 {
			b.Fatal("Malloc returned null")
		}
		live = append(live, p)
		if len(live) >= 4096 {
			j := int(rng.Uint64n(uint64(len(live))))
			a.Free(live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if env.Buf().Len() > 1<<16 {
			env.Drain()
		}
	}
}
