package zend

import (
	"testing"
	"testing/quick"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

// TestTilingInvariantProperty drives random malloc/free/realloc/freeAll
// sequences and verifies after every phase that the boundary-tag chain
// still tiles each segment exactly — the invariant every defragmenting
// allocator lives or dies by.
func TestTilingInvariantProperty(t *testing.T) {
	f := func(seed uint64, sizes []uint16) bool {
		env := alloctest.NewEnv(seed)
		a := New(env)
		rng := sim.NewRNG(seed)
		var live []heap.Ptr
		liveSize := map[heap.Ptr]uint64{}
		for _, raw := range sizes {
			size := uint64(raw)%3000 + 1
			switch {
			case len(live) > 0 && rng.Bool(0.4):
				k := rng.Intn(len(live))
				a.Free(live[k])
				delete(liveSize, live[k])
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			case len(live) > 0 && rng.Bool(0.15):
				k := rng.Intn(len(live))
				old := liveSize[live[k]]
				np := a.Realloc(live[k], old, size)
				delete(liveSize, live[k])
				live[k] = np
				liveSize[np] = size
			default:
				p := a.Malloc(size)
				live = append(live, p)
				liveSize[p] = size
			}
			env.Drain()
		}
		if err := a.CheckTiling(); err != nil {
			t.Logf("mid-run tiling violation: %v", err)
			return false
		}
		a.FreeAll()
		if err := a.CheckTiling(); err != nil {
			t.Logf("post-FreeAll tiling violation: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCacheFlushRestoresCoalescing floods the fast cache so it flushes,
// then verifies the flushed blocks merged back into coherent free space.
func TestCacheFlushRestoresCoalescing(t *testing.T) {
	env := alloctest.NewEnv(7)
	a := New(env)
	var ptrs []heap.Ptr
	for i := 0; i < 3000; i++ { // ~430 KiB of 128B blocks: several flushes
		ptrs = append(ptrs, a.Malloc(128))
	}
	for _, p := range ptrs {
		a.Free(p)
	}
	if err := a.CheckTiling(); err != nil {
		t.Fatal(err)
	}
	// After the churn, a large allocation must be servable from the
	// coalesced space without mapping another segment.
	segs := a.Segments()
	if p := a.Malloc(100 * 1024); p == 0 {
		t.Fatal("large malloc failed after coalescing")
	}
	if a.Segments() != segs {
		t.Fatalf("coalescing failed: large malloc needed a new segment (%d -> %d)",
			segs, a.Segments())
	}
}
