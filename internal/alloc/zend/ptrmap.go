package zend

import "webmm/internal/mem"

// ptrmap is an open-addressing hash map from payload address to block
// metadata, replacing a Go map on the Malloc/Free hot path. Every operation
// is a deterministic function of the keys (fibonacci hashing, linear
// probing, backward-shift deletion — no tombstones, no randomized probe
// seed), and lookups touch one contiguous key array instead of hashing
// through runtime map buckets. Key 0 marks an empty slot; payload addresses
// are always non-zero (every simulated address space starts far above zero).
type ptrmap struct {
	keys   []mem.Addr
	vals   []*block
	n      int
	mask   uint64
	growAt int // n threshold (3/4 load) above which put grows first
}

const ptrmapMinSize = 256 // power of two

func newPtrmap() *ptrmap {
	return &ptrmap{
		keys:   make([]mem.Addr, ptrmapMinSize),
		vals:   make([]*block, ptrmapMinSize),
		mask:   ptrmapMinSize - 1,
		growAt: ptrmapMinSize - ptrmapMinSize/4,
	}
}

// idx returns k's home slot: fibonacci hashing spreads the low entropy of
// aligned addresses across the table.
func (m *ptrmap) idx(k mem.Addr) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	return (x >> 32) & m.mask
}

// get returns the value stored for k, if any.
func (m *ptrmap) get(k mem.Addr) (*block, bool) {
	for i := m.idx(k); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case 0:
			return nil, false
		}
	}
}

// put stores v under k, replacing any existing value. The home-slot check
// mirrors take's shape: an empty home slot proves k is absent (its probe
// chain ends immediately), so the dominant case — inserting a fresh block
// into an uncrowded table — is one load, two stores and a counter bump,
// with no probe loop and no grow arithmetic.
func (m *ptrmap) put(k mem.Addr, v *block) {
	if i := m.idx(k); m.keys[i] == 0 && m.n < m.growAt {
		m.keys[i] = k
		m.vals[i] = v
		m.n++
		return
	}
	m.putSlow(k, v)
}

func (m *ptrmap) putSlow(k mem.Addr, v *block) {
	if m.n >= m.growAt {
		m.grow()
	}
	for i := m.idx(k); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case k:
			m.vals[i] = v
			return
		case 0:
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			return
		}
	}
}

// del removes k, compacting the probe chain behind it (backward-shift
// deletion) so lookups never need tombstones.
func (m *ptrmap) del(k mem.Addr) {
	i := m.idx(k)
	for {
		switch m.keys[i] {
		case k:
		case 0:
			return
		default:
			i = (i + 1) & m.mask
			continue
		}
		break
	}
	m.keys[i] = 0
	m.vals[i] = nil
	m.n--
	for j := (i + 1) & m.mask; m.keys[j] != 0; j = (j + 1) & m.mask {
		// Move j's entry into the hole unless it already sits within
		// [home(j), j] — i.e. the hole is outside its probe path.
		h := m.idx(m.keys[j])
		if (j-h)&m.mask >= (j-i)&m.mask {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			m.keys[j], m.vals[j] = 0, nil
			i = j
		}
	}
}

// take removes and returns k's value in one probe walk — get followed by
// del, without re-finding the slot. The Malloc fast-cache hit and every
// Free do exactly this pairing.
func (m *ptrmap) take(k mem.Addr) (*block, bool) {
	i := m.idx(k)
	for {
		switch m.keys[i] {
		case k:
		case 0:
			return nil, false
		default:
			i = (i + 1) & m.mask
			continue
		}
		break
	}
	v := m.vals[i]
	m.keys[i] = 0
	m.vals[i] = nil
	m.n--
	for j := (i + 1) & m.mask; m.keys[j] != 0; j = (j + 1) & m.mask {
		h := m.idx(m.keys[j])
		if (j-h)&m.mask >= (j-i)&m.mask {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			m.keys[j], m.vals[j] = 0, nil
			i = j
		}
	}
	return v, true
}

// each calls f for every entry, in slot (not insertion) order. Callers must
// not depend on the order beyond its determinism.
func (m *ptrmap) each(f func(mem.Addr, *block)) {
	for i, k := range m.keys {
		if k != 0 {
			f(k, m.vals[i])
		}
	}
}

func (m *ptrmap) grow() {
	oldKeys, oldVals := m.keys, m.vals
	size := len(oldKeys) * 2
	m.keys = make([]mem.Addr, size)
	m.vals = make([]*block, size)
	m.mask = uint64(size - 1)
	m.growAt = size - size/4
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			m.put(k, oldVals[i])
		}
	}
}
