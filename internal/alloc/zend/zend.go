// Package zend models the default memory allocator of the PHP runtime — the
// paper's primary baseline ("the default allocator of the PHP runtime,
// developed by Zend Technologies", §2.2).
//
// It is a general-purpose allocator with bulk-free support (Table 1 row
// one): boundary-tagged blocks carved from 256 KiB segments, per-size
// bucket free lists, and the full set of defragmentation activities the
// paper's defrag-dodging approach eliminates —
//
//   - every block carries a 16-byte header (size + previous-block size +
//     flags), paid on every object in both space and cache lines;
//   - free coalesces with both neighbours when they are free, which costs
//     header reads of adjacent blocks and unlink writes in their buckets;
//   - malloc splits oversized blocks, writing a second header and inserting
//     the remainder into a bucket;
//   - bucket misses scan upward for the first fitting size.
//
// freeAll (PHP calls it at end of request) resets every segment to a single
// wilderness block and clears the buckets — cheap, but the paper's point is
// that the *per-call* defragmentation above still dominates, because PHP
// performs hundreds of thousands of malloc/free calls per transaction.
package zend

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// SegmentSize matches ZEND_MM_SEG_SIZE's 256 KiB default.
	SegmentSize = 256 * mem.KiB

	headerSize = 16
	// minSplit is the smallest remainder worth splitting off.
	minSplit = headerSize + 16

	// hugeCutoff routes very large requests straight to the OS.
	hugeCutoff = SegmentSize / 2

	// Buckets: one per 8 bytes up to smallMax, then one per power of two.
	smallMax     = 1024
	numSmall     = smallMax / 8
	numLogBucket = 6 // 2 KiB, 4 KiB, ... 64 KiB
	numBuckets   = numSmall + numLogBucket + 1

	// The fast cache (ZEND_MM_CACHE in PHP 5.2): freed small blocks park
	// on a per-size LIFO list and are handed back without touching the
	// boundary-tag structure. The defragmentation work is batched: when
	// the cache exceeds its byte budget it is flushed through the full
	// coalescing free path.
	cacheMaxSize   = 512 + headerSize // block sizes served by the cache
	numCacheLists  = cacheMaxSize / 8
	cacheByteLimit = 32 * mem.KiB

	// Instruction costs of the defragmenting paths.
	costMallocCache = 12
	costFreeCache   = 10
	costMallocFast  = 20
	costBucketScan  = 8
	costSplit       = 16
	costCarve       = 14
	costNewSegment  = 60
	costFreeBase    = 16
	costMerge       = 14
	costCacheFlush  = 60
	costFreeAllBase = 120
	costPerSegReset = 24
	costHuge        = 50

	codeSize = 20 * mem.KiB
)

// block mirrors one boundary-tagged block. The simulated header lives at
// addr; the payload at addr+headerSize.
type block struct {
	addr mem.Addr
	size uint64 // total block size including header
	free bool

	// Address-ordered neighbours within the segment.
	prevAdj, nextAdj *block

	// Bucket list links (valid while free).
	bucketPrev, bucketNext *block
	bucket                 int
}

// bucketWild marks a segment's wilderness (top) block, which is never
// enlisted in a bucket: like dlmalloc's top chunk it is carved only when no
// recycled block fits, so reuse always wins over fresh memory.
const bucketWild = -3

type segment struct {
	m mem.Mapping
	// first block (address order).
	first *block
	// wild is the segment's wilderness block (nil once exhausted).
	wild *block
}

// Allocator is the Zend-like default allocator.
type Allocator struct {
	env *sim.Env

	segments []*segment
	buckets  [numBuckets]*block
	// bucketArr is the simulated address of the bucket-head array.
	bucketArr mem.Addr

	byPayload *ptrmap
	huge      map[mem.Addr]mem.Mapping

	// Fast cache: per-exact-size LIFO lists of parked blocks. cacheArr
	// is the simulated address of the cache head array; cacheMeta keeps
	// the parked blocks' records.
	cache      [numCacheLists]heap.FreeList
	cacheArr   mem.Addr
	cacheMeta  *ptrmap
	cacheBytes uint64

	mappedBytes uint64
	peakMapped  uint64
	stats       heap.Stats
}

// New returns a heap with one segment mapped.
func New(env *sim.Env) *Allocator {
	a := &Allocator{
		env:       env,
		byPayload: newPtrmap(),
		huge:      make(map[mem.Addr]mem.Mapping),
		cacheMeta: newPtrmap(),
	}
	meta := env.AS.Map(8*mem.KiB, 0, mem.SmallPages)
	a.bucketArr = meta.Base
	a.cacheArr = meta.Base + numBuckets*8
	a.mappedBytes = meta.Size
	if a.addSegment() == nil {
		panic("zend: cannot map initial segment")
	}
	a.peakMapped = a.mappedBytes
	return a
}

// addSegment maps a fresh segment, or returns nil when the address space
// refuses (OOM propagates to the caller as a null pointer).
func (a *Allocator) addSegment() *segment {
	m, err := a.env.AS.TryMap(SegmentSize, 0, mem.SmallPages)
	if err != nil {
		return nil
	}
	a.env.Instr(costNewSegment, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	s := &segment{m: m}
	wilderness := &block{addr: m.Base, size: m.Size, free: true, bucket: bucketWild}
	s.first = wilderness
	s.wild = wilderness
	a.segments = append(a.segments, s)
	// Write the wilderness header; the top chunk stays out of the
	// buckets and is carved only as a last resort.
	a.env.Write(wilderness.addr, headerSize, sim.ClassAlloc)
	return s
}

// bucketFor maps a total block size to its bucket index.
func bucketFor(size uint64) int {
	if size <= smallMax {
		b := int(size/8) - 1
		if b < 0 {
			b = 0
		}
		return b
	}
	b := numSmall
	for s := uint64(smallMax) * 2; s < size; s <<= 1 {
		b++
		if b >= numBuckets-1 {
			break
		}
	}
	return b
}

// bucketHeadAddr is the simulated address of bucket i's head pointer.
func (a *Allocator) bucketHeadAddr(i int) mem.Addr { return a.bucketArr + mem.Addr(i*8) }

// cacheHeadAddr is the simulated address of fast-cache list i's head.
func (a *Allocator) cacheHeadAddr(i int) mem.Addr { return a.cacheArr + mem.Addr(i*8) }

// enlist pushes a free block onto its bucket (head insertion), emitting the
// list-pointer writes.
func (a *Allocator) enlist(b *block) {
	i := bucketFor(b.size)
	b.bucket = i
	b.bucketPrev = nil
	b.bucketNext = a.buckets[i]
	if a.buckets[i] != nil {
		a.buckets[i].bucketPrev = b
		// Patch the old head's prev pointer (in its payload).
		a.env.Write(a.buckets[i].addr+headerSize, 8, sim.ClassAlloc)
	}
	a.buckets[i] = b
	// Write the block's own list node and the bucket head.
	a.env.Write(b.addr+headerSize, 16, sim.ClassAlloc)
	a.env.Write(a.bucketHeadAddr(i), 8, sim.ClassAlloc)
}

// unlink removes a free block from its bucket, emitting the pointer
// surgery reads/writes.
func (a *Allocator) unlink(b *block) {
	a.env.Read(b.addr+headerSize, 16, sim.ClassAlloc)
	if b.bucketPrev != nil {
		b.bucketPrev.bucketNext = b.bucketNext
		a.env.Write(b.bucketPrev.addr+headerSize, 8, sim.ClassAlloc)
	} else {
		a.buckets[b.bucket] = b.bucketNext
		a.env.Write(a.bucketHeadAddr(b.bucket), 8, sim.ClassAlloc)
	}
	if b.bucketNext != nil {
		b.bucketNext.bucketPrev = b.bucketPrev
		a.env.Write(b.bucketNext.addr+headerSize, 8, sim.ClassAlloc)
	}
	b.bucketPrev, b.bucketNext = nil, nil
}

// carveWild takes trueSize bytes from the front of a segment's wilderness,
// mapping a new segment if none has room (dlmalloc's carve-from-top).
func (a *Allocator) carveWild(trueSize uint64) *block {
	var s *segment
	for _, cand := range a.segments {
		if cand.wild != nil && cand.wild.size >= trueSize+headerSize {
			s = cand
			break
		}
	}
	if s == nil {
		if s = a.addSegment(); s == nil {
			return nil
		}
	}
	w := s.wild
	a.env.Instr(costCarve, sim.ClassAlloc)
	a.env.Read(w.addr, headerSize, sim.ClassAlloc)
	b := &block{addr: w.addr, size: trueSize, free: true, prevAdj: w.prevAdj, nextAdj: w}
	if w.prevAdj != nil {
		w.prevAdj.nextAdj = b
	}
	if s.first == w {
		s.first = b
	}
	w.prevAdj = b
	w.addr += mem.Addr(trueSize)
	w.size -= trueSize
	a.env.Write(w.addr, headerSize, sim.ClassAlloc)
	return b
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "default" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator.
func (a *Allocator) SupportsFreeAll() bool { return true }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	trueSize := (size + headerSize + 7) &^ 7
	if trueSize >= hugeCutoff {
		return a.mallocHuge(size)
	}
	a.stats.BytesAllocated += trueSize

	// Fast-cache hit: a parked block of the exact size is handed back
	// with two touches and no boundary-tag work (PHP 5.2's
	// ZEND_MM_CACHE path).
	if trueSize <= cacheMaxSize {
		ci := int(trueSize/8) - 1
		a.env.Instr(costMallocCache, sim.ClassAlloc)
		a.env.Read(a.cacheHeadAddr(ci), 8, sim.ClassAlloc)
		if p := a.cache[ci].Pop(); p != 0 {
			a.env.Read(p, 8, sim.ClassAlloc) // link word
			b, _ := a.cacheMeta.take(p)
			a.cacheBytes -= b.size
			a.byPayload.put(p, b)
			return p
		}
	}
	a.env.Instr(costMallocFast, sim.ClassAlloc)

	// Best-fit search: the bucket bitmap (one word read) locates the
	// first non-empty bucket at or above the exact one. Small buckets
	// hold a single size, so their head is the best fit; the coarse
	// upper buckets are walked best-fit (smallest block, then lowest
	// address) over a bounded number of candidates, as real
	// defragmenting allocators do.
	start := bucketFor(trueSize)
	var b *block
	for i := start; i < numBuckets; i++ {
		if a.buckets[i] == nil {
			continue
		}
		a.env.Instr(costBucketScan, sim.ClassAlloc)
		a.env.Read(a.bucketHeadAddr(i), 8, sim.ClassAlloc)
		if i < numSmall {
			if cand := a.buckets[i]; cand.size >= trueSize {
				a.env.Read(cand.addr, headerSize, sim.ClassAlloc)
				b = cand
				break
			}
			continue
		}
		scanned := 0
		for cand := a.buckets[i]; cand != nil && scanned < 16; cand = cand.bucketNext {
			a.env.Read(cand.addr, headerSize, sim.ClassAlloc)
			a.env.Instr(4, sim.ClassAlloc)
			scanned++
			if cand.size < trueSize {
				continue
			}
			if b == nil || cand.size < b.size || (cand.size == b.size && cand.addr < b.addr) {
				b = cand
			}
		}
		if b != nil {
			break
		}
	}
	if b == nil {
		if b = a.carveWild(trueSize); b == nil {
			return 0 // OOM
		}
	} else {
		a.unlink(b)
	}
	// Split if the remainder is worth keeping.
	if b.size >= trueSize+minSplit {
		a.env.Instr(costSplit, sim.ClassAlloc)
		rest := &block{
			addr:    b.addr + mem.Addr(trueSize),
			size:    b.size - trueSize,
			free:    true,
			prevAdj: b,
			nextAdj: b.nextAdj,
		}
		if b.nextAdj != nil {
			b.nextAdj.prevAdj = rest
			// Update the next block's prev-size field.
			a.env.Write(b.nextAdj.addr, 8, sim.ClassAlloc)
		}
		b.nextAdj = rest
		b.size = trueSize
		a.env.Write(rest.addr, headerSize, sim.ClassAlloc)
		a.enlist(rest)
	}
	b.free = false
	a.env.Write(b.addr, headerSize, sim.ClassAlloc)
	p := b.addr + headerSize
	a.byPayload.put(p, b)
	return p
}

func (a *Allocator) mallocHuge(size uint64) heap.Ptr {
	rounded := mem.RoundUp(size+headerSize, 4096)
	a.stats.BytesAllocated += rounded
	a.env.Instr(costHuge, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	m, err := a.env.AS.TryMap(rounded, 0, mem.SmallPages)
	if err != nil {
		return 0 // OOM
	}
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	a.env.Write(m.Base, headerSize, sim.ClassAlloc)
	p := m.Base + headerSize
	a.huge[p] = m
	return p
}

// Free implements heap.Allocator: read the header, coalesce with free
// neighbours (the defragmentation the paper's approach dodges), enlist.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	if m, ok := a.huge[p]; ok {
		a.env.Instr(costHuge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.mappedBytes -= m.Size
		a.env.AS.Unmap(m)
		delete(a.huge, p)
		return
	}
	b, ok := a.byPayload.take(p)
	if !ok {
		panic(fmt.Sprintf("zend: free of unknown payload %#x", p))
	}

	// Fast-cache path: park small blocks for exact-size reuse; the
	// boundary-tag free (with its coalescing) is deferred to the flush.
	if b.size <= cacheMaxSize {
		ci := int(b.size/8) - 1
		a.env.Instr(costFreeCache, sim.ClassAlloc)
		a.env.Read(b.addr, headerSize, sim.ClassAlloc)
		a.env.Write(p, 8, sim.ClassAlloc) // link word
		a.env.Write(a.cacheHeadAddr(ci), 8, sim.ClassAlloc)
		a.cache[ci].Push(p)
		a.cacheMeta.put(p, b)
		a.cacheBytes += b.size
		if a.cacheBytes > cacheByteLimit {
			a.flushCache()
		}
		return
	}
	a.freeBlock(b)
}

// flushCache drains the fast cache through the full coalescing free path —
// the batched defragmentation that the cache only postponed.
func (a *Allocator) flushCache() {
	a.env.Instr(costCacheFlush, sim.ClassAlloc)
	for ci := range a.cache {
		for {
			p := a.cache[ci].Pop()
			if p == 0 {
				break
			}
			a.env.Read(p, 8, sim.ClassAlloc)
			b, _ := a.cacheMeta.take(p)
			a.freeBlock(b)
		}
	}
	a.env.Write(a.cacheArr, numCacheLists*8, sim.ClassAlloc)
	a.cacheBytes = 0
}

// freeBlock is the boundary-tag free: read the header, coalesce with free
// neighbours, enlist in a bucket.
func (a *Allocator) freeBlock(b *block) {
	a.env.Instr(costFreeBase, sim.ClassAlloc)
	a.env.Read(b.addr, headerSize, sim.ClassAlloc)
	b.free = true

	// Coalesce with the next block. Merging with the wilderness grows
	// the top chunk (the block disappears into it); merging with an
	// ordinary free block absorbs it.
	if n := b.nextAdj; n != nil {
		a.env.Read(n.addr, headerSize, sim.ClassAlloc)
		if n.free && n.bucket == bucketWild {
			a.env.Instr(costMerge, sim.ClassAlloc)
			n.addr = b.addr
			n.size += b.size
			n.prevAdj = b.prevAdj
			if b.prevAdj != nil {
				b.prevAdj.nextAdj = n
			}
			for _, s := range a.segments {
				if s.first == b {
					s.first = n
				}
			}
			a.env.Write(n.addr, headerSize, sim.ClassAlloc)
			return
		}
		if n.free {
			a.env.Instr(costMerge, sim.ClassAlloc)
			a.unlink(n)
			b.size += n.size
			b.nextAdj = n.nextAdj
			if n.nextAdj != nil {
				n.nextAdj.prevAdj = b
				a.env.Write(n.nextAdj.addr, 8, sim.ClassAlloc)
			}
		}
	}
	// Coalesce with the previous block. The PREV_FREE flag in b's own
	// header (already read) says whether the previous block is free, so
	// its header is only touched when a merge actually happens — the
	// standard boundary-tag trick.
	if pr := b.prevAdj; pr != nil {
		if pr.free {
			a.env.Read(pr.addr, headerSize, sim.ClassAlloc)
			a.env.Instr(costMerge, sim.ClassAlloc)
			a.unlink(pr)
			pr.size += b.size
			pr.nextAdj = b.nextAdj
			if b.nextAdj != nil {
				b.nextAdj.prevAdj = pr
				a.env.Write(b.nextAdj.addr, 8, sim.ClassAlloc)
			}
			b = pr
		}
	}
	a.env.Write(b.addr, headerSize, sim.ClassAlloc)
	a.enlist(b)
}

// Realloc implements heap.Allocator: in place when the block already fits,
// expanding into a free next neighbour when possible, otherwise move.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	if _, isHuge := a.huge[p]; !isHuge {
		b, _ := a.byPayload.get(p)
		if b != nil {
			trueSize := (newSize + headerSize + 7) &^ 7
			a.env.Instr(20, sim.ClassAlloc)
			a.env.Read(b.addr, headerSize, sim.ClassAlloc)
			if trueSize <= b.size && trueSize < hugeCutoff {
				return p // fits in place
			}
			// Try expanding into a free next neighbour (but never
			// into the wilderness, which is carved via malloc).
			if n := b.nextAdj; n != nil && n.bucket != bucketWild {
				a.env.Read(n.addr, headerSize, sim.ClassAlloc)
				if n.free && b.size+n.size >= trueSize && trueSize < hugeCutoff {
					a.env.Instr(costMerge, sim.ClassAlloc)
					a.unlink(n)
					b.size += n.size
					b.nextAdj = n.nextAdj
					if n.nextAdj != nil {
						n.nextAdj.prevAdj = b
						a.env.Write(n.nextAdj.addr, 8, sim.ClassAlloc)
					}
					a.env.Write(b.addr, headerSize, sim.ClassAlloc)
					return p
				}
			}
		}
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	a.Free(p)
	return np
}

// FreeAll implements heap.Allocator: PHP's end-of-request shutdown resets
// every segment to a single wilderness block and clears the buckets.
func (a *Allocator) FreeAll() {
	a.stats.FreeAlls++
	a.env.Instr(costFreeAllBase, sim.ClassAlloc)
	a.env.Write(a.bucketArr, numBuckets*8, sim.ClassAlloc)
	a.env.Write(a.cacheArr, numCacheLists*8, sim.ClassAlloc)
	a.buckets = [numBuckets]*block{}
	a.byPayload = newPtrmap()
	for i := range a.cache {
		a.cache[i].Reset()
	}
	a.cacheMeta = newPtrmap()
	a.cacheBytes = 0
	for _, s := range a.segments {
		a.env.Instr(costPerSegReset, sim.ClassAlloc)
		w := &block{addr: s.m.Base, size: s.m.Size, free: true, bucket: bucketWild}
		s.first = w
		s.wild = w
		a.env.Write(w.addr, headerSize, sim.ClassAlloc)
	}
	for p, m := range a.huge {
		a.env.Instr(costHuge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.mappedBytes -= m.Size
		a.env.AS.Unmap(m)
		delete(a.huge, p)
	}
}

// PeakFootprint implements heap.Allocator: bytes obtained from the
// underlying allocator (the paper's Figure 9 definition for the default).
func (a *Allocator) PeakFootprint() uint64 { return a.peakMapped }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakMapped = a.mappedBytes }

// Segments reports how many segments are mapped (for tests).
func (a *Allocator) Segments() int { return len(a.segments) }

// CheckTiling verifies the boundary-tag invariant: within every segment the
// adjacency chain starts at the segment base, blocks abut exactly (no gaps,
// no overlap), the chain ends at the segment end, and no two free non-wild
// neighbours remain uncoalesced outside the fast cache. It exists for tests
// and debugging.
func (a *Allocator) CheckTiling() error {
	cached := make(map[mem.Addr]bool, a.cacheMeta.n)
	a.cacheMeta.each(func(p mem.Addr, _ *block) {
		cached[p] = true
	})
	for si, s := range a.segments {
		addr := s.m.Base
		var prev *block
		for b := s.first; b != nil; b = b.nextAdj {
			if b.addr != addr {
				return fmt.Errorf("segment %d: block at %#x, expected %#x (gap or overlap)",
					si, b.addr, addr)
			}
			if b.prevAdj != prev {
				return fmt.Errorf("segment %d: block %#x has wrong prevAdj", si, b.addr)
			}
			if prev != nil && prev.free && b.free &&
				prev.bucket != bucketWild && b.bucket != bucketWild &&
				!cached[prev.addr+headerSize] && !cached[b.addr+headerSize] {
				return fmt.Errorf("segment %d: uncoalesced free neighbours at %#x/%#x",
					si, prev.addr, b.addr)
			}
			addr += mem.Addr(b.size)
			prev = b
		}
		if addr != s.m.End() {
			return fmt.Errorf("segment %d: chain ends at %#x, want %#x", si, addr, s.m.End())
		}
	}
	return nil
}
