package zend

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestPerObjectHeaderOverhead(t *testing.T) {
	a := New(alloctest.NewEnv(1))
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	gap := uint64(p2 - p1)
	if gap < 64+headerSize {
		t.Fatalf("consecutive 64-byte objects %d bytes apart, want >= %d (boundary tag)",
			gap, 64+headerSize)
	}
}

func TestCoalescingMergesNeighbours(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	// Three adjacent blocks; freeing them all must merge into one block
	// that can serve a request bigger than any single one.
	p1 := a.Malloc(1000)
	p2 := a.Malloc(1000)
	p3 := a.Malloc(1000)
	// A guard block keeps the wilderness from absorbing the test blocks.
	guard := a.Malloc(64)
	_ = guard
	a.Free(p1)
	a.Free(p3)
	a.Free(p2) // middle last: merges with both sides
	big := a.Malloc(2900)
	if big != p1 {
		t.Fatalf("coalesced allocation at %#x, want the merged region at %#x", big, p1)
	}
}

func TestSplitLeavesUsableRemainder(t *testing.T) {
	a := New(alloctest.NewEnv(3))
	p := a.Malloc(4096)
	guard := a.Malloc(64)
	_ = guard
	a.Free(p)
	// A smaller allocation reuses the block and splits it; the
	// remainder serves the next request.
	q := a.Malloc(1024)
	if q != p {
		t.Fatalf("small malloc at %#x, want split of freed block %#x", q, p)
	}
	r := a.Malloc(1024)
	want := p + 1024 + headerSize
	if r != want {
		t.Fatalf("remainder allocation at %#x, want %#x", r, want)
	}
}

func TestFreeIsCostlierThanDDmalloc(t *testing.T) {
	// The defragmentation work (neighbour header reads, bucket surgery)
	// is batched behind the fast cache, but amortized it must still show
	// up as instruction cost well above DDmalloc's 11-instruction free:
	// this is Figure 6's "memory management" share for the default
	// allocator. Free enough objects that the cache flushes several
	// times.
	env := alloctest.NewEnv(4)
	a := New(env)
	const n = 2000
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		ptrs[i] = a.Malloc(128)
	}
	env.Drain()
	for _, p := range ptrs {
		a.Free(p)
	}
	instr := env.Drain()
	perFree := float64(instr[sim.ClassAlloc]) / n
	if perFree < 25 {
		t.Fatalf("default free cost %.1f instructions amortized, want >= 25 (batched defragmentation)", perFree)
	}
}

func TestFastCacheMakesWarmPairCheap(t *testing.T) {
	// The ZEND_MM_CACHE path: a free/malloc pair of a hot size must be
	// nearly as cheap as DDmalloc's, with the defragmentation deferred.
	env := alloctest.NewEnv(12)
	a := New(env)
	p := a.Malloc(64)
	a.Free(p)
	env.Drain()
	q := a.Malloc(64)
	if q != p {
		t.Fatalf("cache did not return the parked block: %#x vs %#x", q, p)
	}
	a.Free(q)
	instr := env.Drain()
	if instr[sim.ClassAlloc] > 40 {
		t.Fatalf("warm cached pair cost %d instructions, want <= 40", instr[sim.ClassAlloc])
	}
}

func TestFreeAllResetsSegmentsAndReuses(t *testing.T) {
	a := New(alloctest.NewEnv(5))
	first := a.Malloc(64)
	for i := 0; i < 20000; i++ {
		a.Malloc(100)
	}
	segs := a.Segments()
	a.FreeAll()
	if got := a.Malloc(64); got != first {
		t.Fatalf("post-FreeAll malloc = %#x, want %#x (heap reset)", got, first)
	}
	if a.Segments() != segs {
		t.Fatalf("segments changed across FreeAll: %d -> %d (they stay mapped)", segs, a.Segments())
	}
}

func TestHugeAllocationBypassesSegments(t *testing.T) {
	a := New(alloctest.NewEnv(6))
	segs := a.Segments()
	p := a.Malloc(1 << 20)
	if p == 0 {
		t.Fatal("huge malloc failed")
	}
	if a.Segments() != segs {
		t.Fatal("huge allocation consumed a segment")
	}
	before := a.PeakFootprint()
	a.Free(p)
	a.ResetPeak()
	if a.PeakFootprint() >= before {
		t.Fatal("huge free did not unmap")
	}
}

func TestReallocInPlaceWhenFits(t *testing.T) {
	a := New(alloctest.NewEnv(7))
	p := a.Malloc(1000)
	if q := a.Realloc(p, 1000, 500); q != p {
		t.Fatalf("shrinking realloc moved %#x -> %#x", p, q)
	}
}

func TestReallocExpandsIntoFreeNeighbour(t *testing.T) {
	a := New(alloctest.NewEnv(8))
	p := a.Malloc(1000)
	n := a.Malloc(1000)
	guard := a.Malloc(64)
	_ = guard
	a.Free(n)
	if q := a.Realloc(p, 1000, 1800); q != p {
		t.Fatalf("realloc into free neighbour moved %#x -> %#x", p, q)
	}
}

func TestBucketForMonotone(t *testing.T) {
	prev := -1
	for size := uint64(8); size <= SegmentSize; size *= 2 {
		b := bucketFor(size)
		if b < prev {
			t.Fatalf("bucketFor(%d) = %d < previous %d", size, b, prev)
		}
		if b >= numBuckets {
			t.Fatalf("bucketFor(%d) = %d out of range", size, b)
		}
		prev = b
	}
}
