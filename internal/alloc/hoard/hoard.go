// Package hoard models the Hoard allocator (Berger et al., ASPLOS 2000),
// one of the two "well known general-purpose allocators" of the paper's
// Ruby comparison (§4.4, hoard-3.7).
//
// Hoard organizes memory into fixed-size *superblocks* (8 KiB), each
// dedicated to one size class and owned by one per-thread heap. Allocation
// pops from the superblock's internal free list; free pushes back and
// updates the superblock's fullness accounting. Hoard's distinguishing
// overhead is maintaining its *emptiness invariant*: superblocks are kept
// on fullness-group lists, moved between groups as their occupancy crosses
// thresholds, and released to a global heap when sufficiently empty — list
// surgery and header writes on top of every malloc/free, which is why the
// paper finds it slower than TCmalloc's thread-cache fast path but faster
// than glibc's full coalescing.
package hoard

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// SuperblockSize matches Hoard's 8 KiB superblocks.
	SuperblockSize = 8 * mem.KiB

	superHeader = 32 // size class, owner, fullness counters, group links

	// largeCutoff: objects above half a superblock go straight to the OS.
	largeCutoff = SuperblockSize / 2

	// fullnessGroups partitions occupancy into quarters.
	fullnessGroups = 4

	costMallocFast = 24
	costFreeFast   = 22
	costGroupMove  = 30
	costNewSuper   = 90
	costLarge      = 70

	codeSize = 14 * mem.KiB
)

type superblock struct {
	base     mem.Addr
	class    int
	objSize  uint64
	capacity int
	inUse    int
	group    int
	freeList heap.FreeList
	bump     int // objects never yet allocated
}

// Allocator is the Hoard model (one heap: the paper's runtimes are
// single-threaded processes, so the per-thread/global heap distinction
// collapses to one heap plus the emptiness bookkeeping).
type Allocator struct {
	env *sim.Env

	// groups[class][fullness] holds superblocks ordered most-full-first
	// (Hoard allocates from nearly full superblocks to keep emptiness
	// concentrated).
	groups [heap.NumClasses][fullnessGroups][]*superblock
	cur    [heap.NumClasses]*superblock

	byBase map[mem.Addr]*superblock
	large  map[mem.Addr]mem.Mapping

	mappedBytes uint64
	peakMapped  uint64
	stats       heap.Stats
}

// New returns a Hoard-model heap.
func New(env *sim.Env) *Allocator {
	return &Allocator{
		env:    env,
		byBase: make(map[mem.Addr]*superblock),
		large:  make(map[mem.Addr]mem.Mapping),
	}
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "Hoard" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator: Hoard is malloc/free only.
func (a *Allocator) SupportsFreeAll() bool { return false }

// FreeAll implements heap.Allocator by panicking.
func (a *Allocator) FreeAll() { panic("hoard: no freeAll") }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

func fullnessOf(sb *superblock) int {
	g := sb.inUse * fullnessGroups / (sb.capacity + 1)
	if g >= fullnessGroups {
		g = fullnessGroups - 1
	}
	return g
}

// regroup moves a superblock to its current fullness group, modelling the
// emptiness-invariant bookkeeping (unlink + insert + header write).
func (a *Allocator) regroup(sb *superblock, oldGroup int) {
	g := fullnessOf(sb)
	if g == oldGroup {
		return
	}
	a.env.Instr(costGroupMove, sim.ClassAlloc)
	a.env.Write(sb.base, superHeader, sim.ClassAlloc)
	list := a.groups[sb.class][oldGroup]
	for i, s := range list {
		if s == sb {
			a.groups[sb.class][oldGroup] = append(list[:i], list[i+1:]...)
			break
		}
	}
	sb.group = g
	a.groups[sb.class][g] = append(a.groups[sb.class][g], sb)
}

// Malloc implements heap.Allocator.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	if size > largeCutoff {
		return a.mallocLarge(size)
	}
	cls := heap.SizeToClass(size)
	a.stats.BytesAllocated += heap.ClassSize(cls)
	a.env.Instr(costMallocFast, sim.ClassAlloc)

	sb := a.cur[cls]
	if sb == nil || sb.inUse == sb.capacity {
		sb = a.findSuperblock(cls)
		if sb == nil {
			return 0 // OOM: no superblock has room and none can be mapped
		}
		a.cur[cls] = sb
	}
	// Read the superblock header (fullness + free list head).
	a.env.Read(sb.base, superHeader, sim.ClassAlloc)
	old := fullnessOf(sb)
	var p heap.Ptr
	if p = sb.freeList.Pop(); p != 0 {
		a.env.Read(p, 8, sim.ClassAlloc) // link word
	} else {
		p = sb.base + mem.Addr(superHeader+uint64(sb.bump)*sb.objSize)
		sb.bump++
	}
	sb.inUse++
	a.env.Write(sb.base, 8, sim.ClassAlloc) // update counters
	a.regroup(sb, old)
	return p
}

// findSuperblock picks the fullest usable superblock of the class, mapping
// a fresh one if none has room; nil means the OS refused the mapping (OOM).
func (a *Allocator) findSuperblock(cls int) *superblock {
	for g := fullnessGroups - 2; g >= 0; g-- { // skip the completely-full group
		for _, sb := range a.groups[cls][g] {
			if sb.inUse < sb.capacity {
				a.env.Instr(10, sim.ClassAlloc)
				return sb
			}
		}
	}
	// Also check the top group: blocks there may still have one slot.
	for _, sb := range a.groups[cls][fullnessGroups-1] {
		if sb.inUse < sb.capacity {
			a.env.Instr(10, sim.ClassAlloc)
			return sb
		}
	}
	return a.newSuperblock(cls)
}

func (a *Allocator) newSuperblock(cls int) *superblock {
	m, err := a.env.AS.TryMap(SuperblockSize, SuperblockSize, mem.SmallPages)
	if err != nil {
		return nil
	}
	a.env.Instr(costNewSuper, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	objSize := heap.ClassSize(cls)
	sb := &superblock{
		base:     m.Base,
		class:    cls,
		objSize:  objSize,
		capacity: int((SuperblockSize - superHeader) / objSize),
	}
	if sb.capacity == 0 {
		panic(fmt.Sprintf("hoard: class %d objects too big for a superblock", cls))
	}
	a.env.Write(sb.base, superHeader, sim.ClassAlloc)
	a.byBase[m.Base] = sb
	a.groups[cls][0] = append(a.groups[cls][0], sb)
	return sb
}

// Free implements heap.Allocator: locate the superblock by alignment, push
// the object, update fullness.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	if m, ok := a.large[p]; ok {
		a.env.Instr(costLarge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.mappedBytes -= m.Size
		a.env.AS.Unmap(m)
		delete(a.large, p)
		return
	}
	base := p &^ mem.Addr(SuperblockSize-1)
	sb, ok := a.byBase[base]
	if !ok {
		panic(fmt.Sprintf("hoard: free of %#x outside any superblock", p))
	}
	a.env.Instr(costFreeFast, sim.ClassAlloc)
	a.env.Read(sb.base, superHeader, sim.ClassAlloc)
	old := fullnessOf(sb)
	a.env.Write(p, 8, sim.ClassAlloc) // link word
	sb.freeList.Push(p)
	sb.inUse--
	a.env.Write(sb.base, 8, sim.ClassAlloc)
	a.regroup(sb, old)
}

func (a *Allocator) mallocLarge(size uint64) heap.Ptr {
	rounded := mem.RoundUp(size, 4096)
	a.stats.BytesAllocated += rounded
	a.env.Instr(costLarge, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	m, err := a.env.AS.TryMap(rounded, 0, mem.SmallPages)
	if err != nil {
		return 0 // OOM
	}
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	a.large[m.Base] = m
	return m.Base
}

// Realloc implements heap.Allocator.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	if _, isLarge := a.large[p]; !isLarge && newSize > 0 && newSize <= largeCutoff && oldSize <= largeCutoff {
		a.env.Instr(16, sim.ClassAlloc)
		if heap.SizeToClass(newSize) == heap.SizeToClass(maxU64(oldSize, 1)) {
			return p
		}
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	a.Free(p)
	return np
}

// PeakFootprint implements heap.Allocator.
func (a *Allocator) PeakFootprint() uint64 { return a.peakMapped }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakMapped = a.mappedBytes }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
