package hoard

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestNoFreeAll(t *testing.T) {
	a := New(alloctest.NewEnv(1))
	if a.SupportsFreeAll() {
		t.Fatal("Hoard model must not support freeAll")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAll did not panic")
		}
	}()
	a.FreeAll()
}

func TestObjectsPackInsideSuperblock(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	if p2-p1 != 64 {
		t.Fatalf("objects %d bytes apart inside a superblock, want 64", p2-p1)
	}
	base1 := p1 &^ mem.Addr(SuperblockSize-1)
	base2 := p2 &^ mem.Addr(SuperblockSize-1)
	if base1 != base2 {
		t.Fatal("two small objects landed in different superblocks")
	}
}

func TestSuperblockPerClass(t *testing.T) {
	a := New(alloctest.NewEnv(3))
	p1 := a.Malloc(64)
	p2 := a.Malloc(1024)
	if p1&^mem.Addr(SuperblockSize-1) == p2&^mem.Addr(SuperblockSize-1) {
		t.Fatal("different size classes share a superblock")
	}
}

func TestFreeReusesWithinSuperblock(t *testing.T) {
	a := New(alloctest.NewEnv(4))
	p1 := a.Malloc(128)
	p2 := a.Malloc(128)
	a.Free(p2)
	a.Free(p1)
	if got := a.Malloc(128); got != p1 {
		t.Fatalf("LIFO reuse = %#x, want %#x", got, p1)
	}
}

func TestFullSuperblockSpawnsAnother(t *testing.T) {
	a := New(alloctest.NewEnv(5))
	objSize := uint64(1024)
	capacity := int((SuperblockSize - superHeader) / objSize)
	var last heap.Ptr
	for i := 0; i <= capacity; i++ {
		last = a.Malloc(objSize)
	}
	first := a.Malloc(objSize)
	_ = first
	// The over-capacity allocation must be in a second superblock.
	if a.PeakFootprint() < 2*SuperblockSize {
		t.Fatalf("footprint %d after overflowing a superblock, want >= 2 superblocks",
			a.PeakFootprint())
	}
	_ = last
}

func TestEmptinessBookkeepingCost(t *testing.T) {
	// Hoard's fullness-group moves must make its free path pricier than
	// TCmalloc's pure push (~13 instructions) on average.
	env := alloctest.NewEnv(6)
	a := New(env)
	var ptrs []heap.Ptr
	for i := 0; i < 500; i++ {
		ptrs = append(ptrs, a.Malloc(256))
	}
	env.Drain()
	for _, p := range ptrs {
		a.Free(p)
	}
	instr := env.Drain()
	perFree := float64(instr[sim.ClassAlloc]) / 500
	if perFree <= 13 {
		t.Fatalf("Hoard free cost %.1f instructions, want > 13 (fullness bookkeeping)", perFree)
	}
}

func TestLargeObjectsBypassSuperblocks(t *testing.T) {
	a := New(alloctest.NewEnv(7))
	p := a.Malloc(SuperblockSize) // > largeCutoff
	if p == 0 {
		t.Fatal("large malloc failed")
	}
	before := a.PeakFootprint()
	a.Free(p)
	a.ResetPeak()
	if a.PeakFootprint() >= before {
		t.Fatal("large free did not release the mapping")
	}
}
