package region

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestBumpPointerIsSequential(t *testing.T) {
	a := New(alloctest.NewEnv(1))
	p1 := a.Malloc(24)
	p2 := a.Malloc(24)
	p3 := a.Malloc(100)
	if p2-p1 != 24 {
		t.Fatalf("second object %d bytes after first, want 24 (pure bump)", p2-p1)
	}
	if p3-p2 != 24 {
		t.Fatalf("third object %d bytes after second, want 24", p3-p2)
	}
}

func TestRoundsToEightBytes(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	p1 := a.Malloc(3)
	p2 := a.Malloc(3)
	if p2-p1 != 8 {
		t.Fatalf("3-byte objects %d apart, want 8 (paper: rounds to multiple of 8)", p2-p1)
	}
}

func TestFreeDoesNotReuse(t *testing.T) {
	a := New(alloctest.NewEnv(3))
	p := a.Malloc(64)
	a.Free(p) // no-op by design
	q := a.Malloc(64)
	if q == p {
		t.Fatal("region allocator reused a freed object; per-object free must be a no-op")
	}
}

func TestFreeAllResetsToChunkStart(t *testing.T) {
	a := New(alloctest.NewEnv(4))
	first := a.Malloc(64)
	for i := 0; i < 10000; i++ {
		a.Malloc(512)
	}
	a.FreeAll()
	if got := a.Malloc(64); got != first {
		t.Fatalf("post-FreeAll malloc = %#x, want chunk start %#x", got, first)
	}
}

func TestSingleChunkSufficesForTypicalTransaction(t *testing.T) {
	// Paper: "One 256 MB chunk was large enough for most of the PHP
	// transactions and additional chunks were rarely needed."
	env := alloctest.NewEnv(5)
	a := New(env)
	for txn := 0; txn < 20; txn++ {
		for i := 0; i < 150000; i++ { // MediaWiki-scale malloc count
			a.Malloc(64)
		}
		a.FreeAll()
		env.Drain() // keep the event buffer bounded
	}
	if got := a.Chunks(); got != 1 {
		t.Fatalf("used %d chunks, want 1", got)
	}
}

func TestOverflowMapsSecondChunk(t *testing.T) {
	a := New(alloctest.NewEnv(6))
	// Allocate past 256 MB in one transaction.
	for i := uint64(0); i < ChunkSize/(64*mem.KiB)+2; i++ {
		a.Malloc(64 * mem.KiB)
	}
	if got := a.Chunks(); got != 2 {
		t.Fatalf("chunks = %d, want 2 after overflow", got)
	}
}

func TestPeakFootprintIsPerTransactionAllocation(t *testing.T) {
	a := New(alloctest.NewEnv(7))
	a.ResetPeak()
	for i := 0; i < 1000; i++ {
		a.Malloc(1024)
	}
	got := a.PeakFootprint()
	want := uint64(1000 * 1024)
	if got != want {
		t.Fatalf("PeakFootprint = %d, want %d (bytes allocated during the transaction)", got, want)
	}
	a.FreeAll()
	a.ResetPeak()
	if a.PeakFootprint() != 0 {
		t.Fatal("footprint not reset after FreeAll+ResetPeak")
	}
}

func TestMallocCostIsTiny(t *testing.T) {
	env := alloctest.NewEnv(8)
	a := New(env)
	env.Drain()
	a.Malloc(64)
	instr := env.Drain()
	if instr[sim.ClassAlloc] > 10 {
		t.Fatalf("region malloc cost %d instructions, want <= 10", instr[sim.ClassAlloc])
	}
}
