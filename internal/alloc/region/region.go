// Package region implements the region-based (bump-pointer) allocator the
// paper uses as its main comparison point (§4.1).
//
// The allocator obtains a 256 MB chunk from the operating system at startup
// and serves every allocation by rounding the size to a multiple of 8 bytes
// and incrementing a pointer. There is no per-object free: dead objects'
// memory is never reused during a transaction, and freeAll reclaims
// everything at once by resetting the pointer to the chunk base. Additional
// chunks are mapped only if a transaction overflows 256 MB, which the paper
// notes was rare enough to make the system-call overhead negligible.
//
// The cost structure is the paper's Table 1 row two: lowest malloc/free
// cost, no defragmentation — but the highest bandwidth requirement, because
// every allocation during a transaction streams through fresh cache lines
// and dead lines are written back without ever being reused.
package region

import (
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// ChunkSize is the paper's 256 MB chunk.
	ChunkSize = 256 * mem.MiB

	costMalloc  = 5  // round + bump
	costFreeAll = 18 // reset pointer
	codeSize    = 1 * mem.KiB
)

// Allocator is the region-based allocator.
type Allocator struct {
	env *sim.Env

	chunks []mem.Mapping
	cur    int      // index of the chunk being bumped
	next   mem.Addr // next allocation address
	// bumpAddr is the simulated location of the bump pointer itself (the
	// allocator's sole hot metadata word).
	bumpAddr mem.Addr

	txnAllocated uint64
	peakTxn      uint64
	stats        heap.Stats
}

// New maps the initial chunk and returns the allocator.
func New(env *sim.Env) *Allocator {
	a := &Allocator{env: env}
	meta := env.AS.Map(4*mem.KiB, 0, mem.SmallPages)
	a.bumpAddr = meta.Base
	if !a.addChunk() {
		panic("region: cannot map initial chunk")
	}
	return a
}

// addChunk maps a fresh chunk, reporting false on OOM.
func (a *Allocator) addChunk() bool {
	c, err := a.env.AS.TryMap(ChunkSize, 0, mem.SmallPages)
	if err != nil {
		return false
	}
	a.env.Instr(400, sim.ClassOS) // mmap syscall
	a.chunks = append(a.chunks, c)
	a.cur = len(a.chunks) - 1
	a.next = c.Base
	return true
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "region-based" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator: regions have no per-object free.
func (a *Allocator) SupportsFree() bool { return false }

// SupportsFreeAll implements heap.Allocator.
func (a *Allocator) SupportsFreeAll() bool { return true }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator: round to 8 bytes, bump, done.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	rounded := (size + 7) &^ 7
	a.stats.BytesAllocated += rounded

	a.env.Instr(costMalloc, sim.ClassAlloc)
	// The bump pointer is a single hot word: read, increment, write.
	a.env.Read(a.bumpAddr, 8, sim.ClassAlloc)
	if a.next+mem.Addr(rounded) > a.chunks[a.cur].End() {
		if !a.addChunk() {
			return 0 // OOM
		}
	}
	p := a.next
	a.next += mem.Addr(rounded)
	a.env.Write(a.bumpAddr, 8, sim.ClassAlloc)

	a.txnAllocated += rounded
	if a.txnAllocated > a.peakTxn {
		a.peakTxn = a.txnAllocated
	}
	return p
}

// Free implements heap.Allocator as a no-op: the paper's modification for
// region-based management removes the runtime's free calls entirely, so a
// stray call costs nothing and reclaims nothing.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
}

// Realloc implements heap.Allocator: regions cannot resize in place (the
// next object is already bump-allocated behind p), so always move and copy.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	return np
}

// FreeAll implements heap.Allocator: discard the whole region by resetting
// the bump pointer to the first chunk. Extra chunks stay mapped for reuse.
func (a *Allocator) FreeAll() {
	a.stats.FreeAlls++
	a.env.Instr(costFreeAll, sim.ClassAlloc)
	a.env.Write(a.bumpAddr, 8, sim.ClassAlloc)
	a.cur = 0
	a.next = a.chunks[0].Base
	a.txnAllocated = 0
}

// PeakFootprint implements heap.Allocator with the paper's Figure 9
// definition for regions: the total memory allocated during a transaction
// (dead objects are never reclaimed until freeAll, so they all count).
func (a *Allocator) PeakFootprint() uint64 { return a.peakTxn }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakTxn = a.txnAllocated }

// Chunks reports how many chunks have been mapped (the paper verifies one
// suffices for most transactions).
func (a *Allocator) Chunks() int { return len(a.chunks) }
