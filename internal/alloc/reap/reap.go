// Package reap models Reaps (Berger, Zorn & McKinley, "Reconsidering
// custom memory allocation", OOPSLA 2002), which the paper's related-work
// section positions precisely against defrag-dodging:
//
//	"Like our defrag-dodging approach or the custom allocator in the PHP
//	runtime, it supports both per-object free and bulk free for all of
//	the objects in a region. In contrast to ours, their allocator acts in
//	almost the same way as Doug Lea's allocator for per-object free and
//	does not focus on improving the performances of the per-object free.
//	Thus the Reaps also pays cost of the defragmentation activities,
//	which is excessive for short-lived transactions in Web-based
//	applications, like the default allocator of the PHP runtime."
//
// The model follows the published design: a reap allocates by bumping
// through large chunks while no object has been freed; the first free
// flips the reap into "heap mode", where freed objects carry boundary
// tags and go to size-binned free lists that subsequent mallocs search
// best-fit (with splitting) before falling back to the bump pointer.
// freeAll discards everything and returns to pure bump mode.
//
// Reaps therefore sits exactly between the region allocator and the
// default allocator in the study's cost space — bulk free and fast bump
// allocation, but Lea-style defragmentation on the per-object free path —
// and the ablation bench shows it inheriting the worse of both on
// multicore: header traffic like the default, plus region-like streaming
// whenever the free lists cannot satisfy a request.
package reap

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// ChunkSize is the bump arena granule.
	ChunkSize = 8 * mem.MiB

	headerSize = 16 // Lea-style boundary tag on every object
	hugeCutoff = 1 * mem.MiB

	numBins = 64 // size-binned free lists: 8-byte classes then log2

	costBump     = 7  // bump-mode allocation
	costBinHit   = 22 // free-list allocation (search + unlink)
	costSplit    = 18
	costFree     = 26 // Lea-style free: header + bin insertion
	costBinHop   = 6
	costFreeAll  = 30
	costHuge     = 60
	codeSize     = 18 * mem.KiB
)

type object struct {
	addr mem.Addr
	size uint64 // payload size (rounded)
}

// Allocator is the Reap model.
type Allocator struct {
	env *sim.Env

	chunks []mem.Mapping
	next   mem.Addr

	// bins hold freed objects by size class; binArr is the simulated
	// address of the bin-head array.
	bins    [numBins][]object
	binArr  mem.Addr
	binned  int
	byAddr  map[mem.Addr]uint64 // live payload -> rounded size
	huge    map[mem.Addr]mem.Mapping

	txnAllocated uint64
	peakTxn      uint64
	stats        heap.Stats
}

// New maps the first chunk and returns the reap.
func New(env *sim.Env) *Allocator {
	a := &Allocator{
		env:    env,
		byAddr: make(map[mem.Addr]uint64),
		huge:   make(map[mem.Addr]mem.Mapping),
	}
	meta := env.AS.Map(4*mem.KiB, 0, mem.SmallPages)
	a.binArr = meta.Base
	if !a.addChunk() {
		panic("reap: cannot map initial chunk")
	}
	return a
}

// addChunk maps a fresh bump chunk, reporting false on OOM.
func (a *Allocator) addChunk() bool {
	c, err := a.env.AS.TryMap(ChunkSize, 0, mem.SmallPages)
	if err != nil {
		return false
	}
	a.env.Instr(400, sim.ClassOS)
	a.chunks = append(a.chunks, c)
	a.next = c.Base
	return true
}

func binFor(size uint64) int {
	if size <= 256 {
		return int(size+7) / 8
	}
	b := 33
	for s := uint64(512); s < size && b < numBins-1; s <<= 1 {
		b++
	}
	return b
}

func (a *Allocator) binHeadAddr(i int) mem.Addr { return a.binArr + mem.Addr(i*8) }

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "reap" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator.
func (a *Allocator) SupportsFreeAll() bool { return true }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator: free-list best-fit when objects have
// been freed (the Lea-mode path, with its search and split costs),
// otherwise pure bump.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	rounded := (size + 7) &^ 7
	if rounded >= hugeCutoff {
		return a.mallocHuge(size)
	}
	a.stats.BytesAllocated += rounded + headerSize

	if a.binned > 0 {
		if p := a.searchBins(rounded); p != 0 {
			a.byAddr[p] = rounded
			a.bump(rounded + headerSize)
			return p
		}
	}
	// Bump mode: write the boundary tag, hand out the payload.
	a.env.Instr(costBump, sim.ClassAlloc)
	if a.next+mem.Addr(rounded+headerSize) > a.chunks[len(a.chunks)-1].End() {
		if !a.addChunk() {
			return 0 // OOM
		}
	}
	a.env.Write(a.next, headerSize, sim.ClassAlloc)
	p := a.next + headerSize
	a.next += mem.Addr(rounded + headerSize)
	a.byAddr[p] = rounded
	a.bump(rounded + headerSize)
	return p
}

// searchBins does the Lea-style best-fit over the size bins.
func (a *Allocator) searchBins(rounded uint64) heap.Ptr {
	for i := binFor(rounded); i < numBins; i++ {
		if len(a.bins[i]) == 0 {
			continue
		}
		a.env.Instr(costBinHit, sim.ClassAlloc)
		a.env.Read(a.binHeadAddr(i), 8, sim.ClassAlloc)
		// Walk the bin best-fit (bounded, like dlmalloc's bins).
		best := -1
		for k := 0; k < len(a.bins[i]) && k < 12; k++ {
			a.env.Instr(costBinHop, sim.ClassAlloc)
			a.env.Read(a.bins[i][k].addr-headerSize, headerSize, sim.ClassAlloc)
			if a.bins[i][k].size < rounded {
				continue
			}
			if best < 0 || a.bins[i][k].size < a.bins[i][best].size {
				best = k
			}
		}
		if best < 0 {
			continue
		}
		o := a.bins[i][best]
		a.bins[i] = append(a.bins[i][:best], a.bins[i][best+1:]...)
		a.binned--
		// Split the remainder back into a bin.
		if o.size >= rounded+headerSize+16 {
			a.env.Instr(costSplit, sim.ClassAlloc)
			rest := object{
				addr: o.addr + mem.Addr(rounded+headerSize),
				size: o.size - rounded - headerSize,
			}
			a.env.Write(rest.addr-headerSize, headerSize, sim.ClassAlloc)
			bi := binFor(rest.size)
			a.bins[bi] = append(a.bins[bi], rest)
			a.env.Write(a.binHeadAddr(bi), 8, sim.ClassAlloc)
			a.binned++
		}
		a.env.Write(o.addr-headerSize, headerSize, sim.ClassAlloc)
		return o.addr
	}
	return 0
}

func (a *Allocator) bump(n uint64) {
	a.txnAllocated += n
	if a.txnAllocated > a.peakTxn {
		a.peakTxn = a.txnAllocated
	}
}

// Free implements heap.Allocator: the Lea-mode path — read the boundary
// tag, thread the object into its size bin.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	if m, ok := a.huge[p]; ok {
		a.env.Instr(costHuge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.env.AS.Unmap(m)
		delete(a.huge, p)
		return
	}
	size, ok := a.byAddr[p]
	if !ok {
		panic(fmt.Sprintf("reap: free of unknown payload %#x", p))
	}
	delete(a.byAddr, p)
	a.env.Instr(costFree, sim.ClassAlloc)
	a.env.Read(p-headerSize, headerSize, sim.ClassAlloc)
	a.env.Write(p, 16, sim.ClassAlloc) // bin links in the payload
	bi := binFor(size)
	a.bins[bi] = append(a.bins[bi], object{addr: p, size: size})
	a.env.Write(a.binHeadAddr(bi), 8, sim.ClassAlloc)
	a.binned++
}

// Realloc implements heap.Allocator.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	if cur, ok := a.byAddr[p]; ok {
		a.env.Instr(14, sim.ClassAlloc)
		a.env.Read(p-headerSize, headerSize, sim.ClassAlloc)
		if (newSize+7)&^7 <= cur {
			return p
		}
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	a.Free(p)
	return np
}

// FreeAll implements heap.Allocator: discard the whole reap — reset the
// bump pointer and clear the bins (back to pure bump mode).
func (a *Allocator) FreeAll() {
	a.stats.FreeAlls++
	a.env.Instr(costFreeAll, sim.ClassAlloc)
	a.env.Write(a.binArr, numBins*8, sim.ClassAlloc)
	for i := range a.bins {
		a.bins[i] = a.bins[i][:0]
	}
	a.binned = 0
	a.byAddr = make(map[mem.Addr]uint64)
	for p, m := range a.huge {
		a.env.Instr(300, sim.ClassOS)
		a.env.AS.Unmap(m)
		delete(a.huge, p)
	}
	a.next = a.chunks[0].Base
	a.txnAllocated = 0
}

func (a *Allocator) mallocHuge(size uint64) heap.Ptr {
	rounded := mem.RoundUp(size+headerSize, 4096)
	a.stats.BytesAllocated += rounded
	a.env.Instr(costHuge, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	m, err := a.env.AS.TryMap(rounded, 0, mem.SmallPages)
	if err != nil {
		return 0 // OOM
	}
	a.env.Write(m.Base, headerSize, sim.ClassAlloc)
	p := m.Base + headerSize
	a.huge[p] = m
	a.bump(rounded)
	return p
}

// PeakFootprint implements heap.Allocator (region-style accounting: bytes
// allocated during the transaction, since the reap reuses only what its
// bins catch).
func (a *Allocator) PeakFootprint() uint64 { return a.peakTxn }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakTxn = a.txnAllocated }

// BinnedObjects reports the objects currently parked in bins (for tests).
func (a *Allocator) BinnedObjects() int { return a.binned }
