package reap

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestBumpModeUntilFirstFree(t *testing.T) {
	env := alloctest.NewEnv(1)
	a := New(env)
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	if p2-p1 != 64+headerSize {
		t.Fatalf("bump-mode objects %d apart, want %d (payload + boundary tag)",
			p2-p1, 64+headerSize)
	}
	if a.BinnedObjects() != 0 {
		t.Fatal("bins populated before any free")
	}
}

func TestFreeListReuseAfterFree(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	p := a.Malloc(128)
	a.Free(p)
	if a.BinnedObjects() != 1 {
		t.Fatalf("binned = %d, want 1", a.BinnedObjects())
	}
	if q := a.Malloc(128); q != p {
		t.Fatalf("freed object not reused: got %#x, want %#x", q, p)
	}
}

func TestBestFitSplits(t *testing.T) {
	a := New(alloctest.NewEnv(3))
	big := a.Malloc(4096)
	a.Free(big)
	small := a.Malloc(512)
	if small != big {
		t.Fatalf("best-fit did not take the freed block: %#x vs %#x", small, big)
	}
	// The split remainder serves another request without bumping.
	next := a.Malloc(512)
	if next < big || next > big+4096 {
		t.Fatalf("remainder not reused: %#x outside freed block [%#x,%#x)", next, big, big+4096)
	}
}

func TestFreeAllReturnsToBumpMode(t *testing.T) {
	a := New(alloctest.NewEnv(4))
	first := a.Malloc(64)
	for i := 0; i < 1000; i++ {
		p := a.Malloc(uint64(8 + i%300))
		if i%2 == 0 {
			a.Free(p)
		}
	}
	a.FreeAll()
	if a.BinnedObjects() != 0 {
		t.Fatal("bins survive FreeAll")
	}
	if got := a.Malloc(64); got != first {
		t.Fatalf("post-FreeAll bump at %#x, want chunk start %#x", got, first)
	}
}

func TestPerObjectFreeCostsLeaStyleWork(t *testing.T) {
	// The paper's point about Reaps: its per-object free path pays the
	// Lea-style defragmentation cost, unlike DDmalloc's 11-instruction
	// push.
	env := alloctest.NewEnv(5)
	a := New(env)
	var ptrs []heap.Ptr
	for i := 0; i < 200; i++ {
		ptrs = append(ptrs, a.Malloc(128))
	}
	env.Drain()
	for _, p := range ptrs {
		a.Free(p)
	}
	instr := env.Drain()
	perFree := float64(instr[sim.ClassAlloc]) / 200
	if perFree < 20 {
		t.Fatalf("reap free cost %.1f instructions, want >= 20 (Lea-style path)", perFree)
	}
}

func TestHeaderOverheadOnEveryObject(t *testing.T) {
	a := New(alloctest.NewEnv(6))
	before := a.Stats().BytesAllocated
	a.Malloc(8)
	if got := a.Stats().BytesAllocated - before; got != 8+headerSize {
		t.Fatalf("8-byte object consumed %d bytes, want %d (boundary tag)", got, 8+headerSize)
	}
}
