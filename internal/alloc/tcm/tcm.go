// Package tcm models TCmalloc (google-perf-tools 0.9.1), the strongest
// general-purpose competitor in the paper's Ruby study (§4.4).
//
// TCmalloc's fast path is nearly as lean as DDmalloc's: a per-thread cache
// of LIFO free lists per size class, popped and pushed with no locking and
// no coalescing. The paper's point (§3.2) is that TCmalloc *delays* rather
// than eliminates defragmentation: "TCmalloc reduces the overhead by
// delaying the defragmentation activities until the total size of the
// memory objects in the free lists exceeds a threshold. However TCmalloc
// still has costs for the delayed defragmentation activities and the costs
// matter for the overall performance." This model reproduces exactly that:
// when the thread cache exceeds its byte threshold, a scavenge pass walks
// half of every over-long list back to the central spans, touching every
// released object and the span bookkeeping; empty spans coalesce back into
// the page heap.
package tcm

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// SpanPages * pageSize is the unit central lists carve objects from.
	pageSize  = 8 * mem.KiB
	spanPages = 4
	spanSize  = spanPages * pageSize

	largeCutoff = 32 * mem.KiB // above this, page-heap allocation

	// cacheLimit is the thread-cache byte threshold that triggers the
	// scavenge (TCmalloc's per-thread 2 MB default).
	cacheLimit = 2 * mem.MiB

	batchSize = 32 // objects moved between thread cache and central list

	costMallocFast = 15
	costFreeFast   = 13
	costBatchFetch = 60
	costScavenge   = 120 // fixed part of a scavenge pass
	costPerRelease = 10  // per object returned to central
	costSpanOp     = 45
	costLarge      = 70

	codeSize = 16 * mem.KiB
)

type span struct {
	base    mem.Addr
	class   int
	live    int
	objects heap.FreeList
	carved  int
	cap     int
}

// Allocator is the TCmalloc model.
type Allocator struct {
	env *sim.Env

	// Thread cache: per-class LIFO lists plus the byte total that
	// triggers scavenging.
	cache      [heap.NumClasses]heap.FreeList
	cacheBytes uint64

	// Central lists: spans per class with available objects.
	central [heap.NumClasses][]*span
	byBase  map[mem.Addr]*span // span lookup by page-aligned base
	large   map[mem.Addr]mem.Mapping

	mappedBytes uint64
	peakMapped  uint64
	stats       heap.Stats
}

// New returns a TCmalloc-model heap.
func New(env *sim.Env) *Allocator {
	return &Allocator{
		env:    env,
		byBase: make(map[mem.Addr]*span),
		large:  make(map[mem.Addr]mem.Mapping),
	}
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "TCmalloc" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator.
func (a *Allocator) SupportsFreeAll() bool { return false }

// FreeAll implements heap.Allocator by panicking.
func (a *Allocator) FreeAll() { panic("tcm: TCmalloc has no freeAll") }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator: thread-cache pop, refilling from the
// central spans in batches.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	if size > largeCutoff || size > heap.MaxClassSize {
		return a.mallocLarge(size)
	}
	cls := heap.SizeToClass(size)
	objSize := heap.ClassSize(cls)
	a.stats.BytesAllocated += objSize
	a.env.Instr(costMallocFast, sim.ClassAlloc)

	if p := a.cache[cls].Pop(); p != 0 {
		a.env.Read(p, 8, sim.ClassAlloc) // link word
		a.cacheBytes -= objSize
		return p
	}
	a.fetchBatch(cls, objSize)
	p := a.cache[cls].Pop()
	if p == 0 {
		return 0 // OOM: the page heap could not produce a span
	}
	a.env.Read(p, 8, sim.ClassAlloc)
	a.cacheBytes -= objSize
	return p
}

// fetchBatch moves up to batchSize objects from the central list (carving a
// new span if needed) into the thread cache.
func (a *Allocator) fetchBatch(cls int, objSize uint64) {
	a.env.Instr(costBatchFetch, sim.ClassAlloc)
	moved := 0
	for moved < batchSize {
		sp := a.centralSpan(cls, objSize)
		if sp == nil {
			return // OOM: deliver whatever was already moved
		}
		for moved < batchSize {
			var p heap.Ptr
			if p = sp.objects.Pop(); p == 0 {
				if sp.carved < sp.cap {
					p = sp.base + mem.Addr(uint64(sp.carved)*objSize)
					sp.carved++
				} else {
					break
				}
			} else {
				a.env.Read(p, 8, sim.ClassAlloc)
			}
			sp.live++
			a.cache[cls].Push(p)
			a.env.Write(p, 8, sim.ClassAlloc) // thread-cache link
			a.cacheBytes += objSize
			moved++
		}
	}
}

// centralSpan returns a span of cls with objects available, mapping one from
// the page heap if necessary; nil means the page heap is out of memory.
func (a *Allocator) centralSpan(cls int, objSize uint64) *span {
	for _, sp := range a.central[cls] {
		if sp.objects.Len() > 0 || sp.carved < sp.cap {
			return sp
		}
	}
	a.env.Instr(costSpanOp, sim.ClassAlloc)
	m, err := a.env.AS.TryMap(spanSize, pageSize, mem.SmallPages)
	if err != nil {
		return nil
	}
	a.env.Instr(400, sim.ClassOS)
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	sp := &span{base: m.Base, class: cls, cap: int(spanSize / objSize)}
	if sp.cap == 0 {
		panic(fmt.Sprintf("tcm: class %d too big for a span", cls))
	}
	// Record the span in the page map (one write per page).
	for pg := uint64(0); pg < spanPages; pg++ {
		a.byBase[m.Base+mem.Addr(pg*pageSize)] = sp
	}
	a.env.Write(m.Base, 16, sim.ClassAlloc)
	a.central[cls] = append(a.central[cls], sp)
	return sp
}

// Free implements heap.Allocator: thread-cache push; scavenge past the
// threshold.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	if m, ok := a.large[p]; ok {
		a.env.Instr(costLarge, sim.ClassAlloc)
		a.env.Instr(300, sim.ClassOS)
		a.mappedBytes -= m.Size
		a.env.AS.Unmap(m)
		delete(a.large, p)
		return
	}
	sp := a.spanOf(p)
	cls := sp.class
	objSize := heap.ClassSize(cls)
	a.env.Instr(costFreeFast, sim.ClassAlloc)
	a.env.Write(p, 8, sim.ClassAlloc) // link word
	a.cache[cls].Push(p)
	a.cacheBytes += objSize
	sp.live-- // tracked Go-side; the modelled touch happens at scavenge

	if a.cacheBytes > cacheLimit {
		a.scavenge()
	}
}

func (a *Allocator) spanOf(p heap.Ptr) *span {
	base := p &^ mem.Addr(pageSize-1)
	sp, ok := a.byBase[base]
	if !ok {
		panic(fmt.Sprintf("tcm: free of %#x outside any span", p))
	}
	return sp
}

// scavenge returns half of every thread-cache list to the central spans —
// the delayed defragmentation pass. Each released object is touched (link
// rewrite) and span bookkeeping is updated.
func (a *Allocator) scavenge() {
	a.env.Instr(costScavenge, sim.ClassAlloc)
	for cls := range a.cache {
		release := a.cache[cls].Len() / 2
		if release == 0 {
			continue
		}
		objSize := heap.ClassSize(cls)
		for i := 0; i < release; i++ {
			p := a.cache[cls].PopTail() // oldest first
			a.env.Instr(costPerRelease, sim.ClassAlloc)
			a.env.Read(p, 8, sim.ClassAlloc)
			a.env.Write(p, 8, sim.ClassAlloc) // central list link
			sp := a.spanOf(p)
			sp.objects.Push(p)
			a.env.Write(sp.base, 8, sim.ClassAlloc) // span counters
			a.cacheBytes -= objSize
		}
	}
}

func (a *Allocator) mallocLarge(size uint64) heap.Ptr {
	rounded := mem.RoundUp(size, pageSize)
	a.stats.BytesAllocated += rounded
	a.env.Instr(costLarge, sim.ClassAlloc)
	a.env.Instr(400, sim.ClassOS)
	m, err := a.env.AS.TryMap(rounded, 0, mem.SmallPages)
	if err != nil {
		return 0 // OOM
	}
	a.mappedBytes += m.Size
	if a.mappedBytes > a.peakMapped {
		a.peakMapped = a.mappedBytes
	}
	a.large[m.Base] = m
	return m.Base
}

// Realloc implements heap.Allocator.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	if _, isLarge := a.large[p]; !isLarge && newSize > 0 && newSize <= heap.MaxClassSize &&
		oldSize > 0 && oldSize <= heap.MaxClassSize {
		a.env.Instr(14, sim.ClassAlloc)
		if heap.SizeToClass(newSize) == heap.SizeToClass(oldSize) {
			return p
		}
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid (C realloc semantics)
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	a.Free(p)
	return np
}

// PeakFootprint implements heap.Allocator.
func (a *Allocator) PeakFootprint() uint64 { return a.peakMapped }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakMapped = a.mappedBytes }

// CacheBytes reports the current thread-cache size (for tests).
func (a *Allocator) CacheBytes() uint64 { return a.cacheBytes }
