package tcm

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env) })
}

func TestNoFreeAll(t *testing.T) {
	a := New(alloctest.NewEnv(1))
	if a.SupportsFreeAll() {
		t.Fatal("TCmalloc model must not support freeAll")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAll did not panic")
		}
	}()
	a.FreeAll()
}

func TestThreadCacheLIFO(t *testing.T) {
	a := New(alloctest.NewEnv(2))
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	a.Free(p1)
	a.Free(p2)
	if got := a.Malloc(64); got != p2 {
		t.Fatalf("thread-cache reuse = %#x, want most recent %#x", got, p2)
	}
}

func TestFastPathCost(t *testing.T) {
	env := alloctest.NewEnv(3)
	a := New(env)
	p := a.Malloc(64)
	a.Free(p)
	env.Drain()
	q := a.Malloc(64) // cache hit
	a.Free(q)
	instr := env.Drain()
	if instr[sim.ClassAlloc] > 45 {
		t.Fatalf("warm malloc+free pair cost %d instructions, want <= 45", instr[sim.ClassAlloc])
	}
}

func TestScavengeTriggersAtThreshold(t *testing.T) {
	env := alloctest.NewEnv(4)
	a := New(env)
	// Allocate enough live objects that freeing them all must push the
	// thread cache past its 2 MB limit.
	n := int(cacheLimit/(16*1024)) + 16
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		ptrs[i] = a.Malloc(16 * 1024)
	}
	env.Drain()
	var maxCost uint64
	for _, p := range ptrs {
		before := env.Instructions()[sim.ClassAlloc]
		a.Free(p)
		if cost := env.Instructions()[sim.ClassAlloc] - before; cost > maxCost {
			maxCost = cost
		}
	}
	// The scavenge must have kept the cache at or below the limit...
	if a.CacheBytes() > cacheLimit {
		t.Fatalf("cache bytes %d exceed the %d limit; scavenge missing", a.CacheBytes(), cacheLimit)
	}
	// ...and one of the frees must have paid the sweep: the delayed
	// defragmentation the paper contrasts with DDmalloc.
	if maxCost < 500 {
		t.Fatalf("max single-free cost %d instructions; scavenge sweep not visible", maxCost)
	}
}

func TestBatchRefillFromCentral(t *testing.T) {
	a := New(alloctest.NewEnv(5))
	// First allocation of a class pulls a batch; the following
	// batchSize-1 allocations are cache hits carved from the same span.
	p1 := a.Malloc(64)
	for i := 1; i < batchSize; i++ {
		p := a.Malloc(64)
		if p == 0 {
			t.Fatal("null from cached batch")
		}
	}
	if p1 == 0 {
		t.Fatal("null first allocation")
	}
	s := a.Stats()
	if s.Mallocs != batchSize {
		t.Fatalf("Mallocs = %d, want %d", s.Mallocs, batchSize)
	}
}

func TestSpanRoundTrip(t *testing.T) {
	// Objects released by a scavenge must be reusable afterwards.
	a := New(alloctest.NewEnv(6))
	seen := map[heap.Ptr]bool{}
	var ptrs []heap.Ptr
	for i := 0; i < 2000; i++ {
		p := a.Malloc(2048)
		seen[p] = true
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		a.Free(p) // triggers scavenges along the way
	}
	reused := 0
	for i := 0; i < 2000; i++ {
		if seen[a.Malloc(2048)] {
			reused++
		}
	}
	if reused < 1900 {
		t.Fatalf("only %d/2000 objects reused after scavenge round trip", reused)
	}
}
