package obstack

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

func TestConformance(t *testing.T) {
	alloctest.Run(t, func(env *sim.Env) heap.Allocator { return New(env, 0) })
}

func TestChunkGrowthAndFreeAllShrink(t *testing.T) {
	a := New(alloctest.NewEnv(1), 0)
	for i := 0; i < 1000; i++ { // ~64 KiB across 4 KiB chunks
		a.Malloc(64)
	}
	grown := a.Chunks()
	if grown < 10 {
		t.Fatalf("chunks = %d, want many small chunks", grown)
	}
	a.FreeAll()
	if got := a.Chunks(); got != 1 {
		t.Fatalf("chunks after FreeAll = %d, want 1 (glibc frees all but the first)", got)
	}
}

func TestOversizedObjectGetsOwnChunk(t *testing.T) {
	a := New(alloctest.NewEnv(2), 0)
	p := a.Malloc(10000) // larger than the 4 KiB chunk
	if p == 0 {
		t.Fatal("oversized malloc failed")
	}
	q := a.Malloc(64) // bumping continues in a normal chunk
	if q == 0 {
		t.Fatal("small malloc after oversized failed")
	}
}

func TestCostlierThanPlainRegion(t *testing.T) {
	// The paper kept its own region allocator because it "outperformed
	// the obstack": the small chunks cost more instructions per byte.
	env := alloctest.NewEnv(3)
	a := New(env, 0)
	env.Drain()
	for i := 0; i < 1000; i++ {
		a.Malloc(64)
	}
	instr := env.Drain()
	perMalloc := float64(instr[sim.ClassAlloc]) / 1000
	if perMalloc <= 5 { // the plain region allocator costs 5
		t.Fatalf("obstack per-malloc cost %.1f, want > 5 (region's cost)", perMalloc)
	}
}

func TestCustomChunkSize(t *testing.T) {
	a := New(alloctest.NewEnv(4), 64*1024)
	for i := 0; i < 100; i++ {
		a.Malloc(64)
	}
	if got := a.Chunks(); got != 1 {
		t.Fatalf("chunks = %d, want 1 with a 64 KiB chunk", got)
	}
}
