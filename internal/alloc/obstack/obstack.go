// Package obstack models the GNU C library's obstack, the second
// region-style allocator the paper evaluated (§4.1): "We also evaluated the
// GNU obstack as another region-based allocator. However our own
// region-based allocator outperformed the obstack for the PHP applications."
//
// Obstacks allocate objects by bumping within modest chunks (4 KiB by
// default) linked into a list. Compared to the paper's 256 MB-chunk region
// allocator, the small chunks mean frequent chunk-boundary slow paths (map,
// link, header write) and a per-chunk header that costs locality; freeAll
// walks the chunk list. That overhead is why it loses to the plain region
// allocator, which this package exists to demonstrate (see the ablation
// bench).
package obstack

import (
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	// DefaultChunkSize matches the glibc obstack default.
	DefaultChunkSize = 4096

	chunkHeader = 16 // next pointer + limit, as in glibc's struct _obstack_chunk

	costMalloc   = 8
	costNewChunk = 60
	costFreeAll  = 25 // plus per-chunk walking
	codeSize     = 2 * mem.KiB
)

// Allocator is the obstack model.
type Allocator struct {
	env       *sim.Env
	chunkSize uint64

	chunks []mem.Mapping
	cur    int
	next   mem.Addr

	txnAllocated uint64
	peakTxn      uint64
	stats        heap.Stats
}

// New returns an obstack with the given chunk size (0 means the glibc
// default of 4 KiB).
func New(env *sim.Env, chunkSize uint64) *Allocator {
	if chunkSize == 0 {
		chunkSize = DefaultChunkSize
	}
	a := &Allocator{env: env, chunkSize: chunkSize}
	if !a.addChunk() {
		panic("obstack: cannot map initial chunk")
	}
	return a
}

// addChunk maps a fresh chunk, reporting false on OOM.
func (a *Allocator) addChunk() bool {
	c, err := a.env.AS.TryMap(a.chunkSize, 0, mem.SmallPages)
	if err != nil {
		return false
	}
	a.env.Instr(costNewChunk, sim.ClassAlloc)
	a.env.Instr(300, sim.ClassOS) // malloc/mmap for the chunk
	// Write the chunk header linking it to its predecessor.
	a.env.Write(c.Base, chunkHeader, sim.ClassAlloc)
	a.chunks = append(a.chunks, c)
	a.cur = len(a.chunks) - 1
	a.next = c.Base + chunkHeader
	return true
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "obstack" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator.
func (a *Allocator) SupportsFree() bool { return false }

// SupportsFreeAll implements heap.Allocator.
func (a *Allocator) SupportsFreeAll() bool { return true }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	rounded := (size + 7) &^ 7
	a.stats.BytesAllocated += rounded

	a.env.Instr(costMalloc, sim.ClassAlloc)
	// Bump state lives in the obstack header of the current chunk.
	hdr := a.chunks[a.cur].Base
	a.env.Read(hdr, 16, sim.ClassAlloc)
	if a.next+mem.Addr(rounded) > a.chunks[a.cur].End() {
		if rounded+chunkHeader > a.chunkSize {
			// Oversized object: dedicated chunk, as glibc does.
			c, err := a.env.AS.TryMap(rounded+chunkHeader, 0, mem.SmallPages)
			if err != nil {
				return 0 // OOM
			}
			a.env.Instr(costNewChunk, sim.ClassAlloc)
			a.env.Instr(300, sim.ClassOS)
			a.env.Write(c.Base, chunkHeader, sim.ClassAlloc)
			// Keep bumping in the old chunk afterwards: insert the
			// dedicated chunk behind the current one.
			a.chunks = append(a.chunks[:a.cur], append([]mem.Mapping{c}, a.chunks[a.cur:]...)...)
			a.cur++
			a.bump(rounded)
			return c.Base + chunkHeader
		}
		if !a.addChunk() {
			return 0 // OOM
		}
		hdr = a.chunks[a.cur].Base
	}
	p := a.next
	a.next += mem.Addr(rounded)
	a.env.Write(hdr, 8, sim.ClassAlloc)
	a.bump(rounded)
	return p
}

func (a *Allocator) bump(rounded uint64) {
	a.txnAllocated += rounded
	if a.txnAllocated > a.peakTxn {
		a.peakTxn = a.txnAllocated
	}
}

// Free implements heap.Allocator as a no-op (region semantics).
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
}

// Realloc implements heap.Allocator: move and copy, like any region.
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	if p == 0 {
		return a.Malloc(newSize)
	}
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid
	}
	n := oldSize
	if newSize < n {
		n = newSize
	}
	a.env.Copy(np, p, n, sim.ClassAlloc)
	return np
}

// FreeAll implements heap.Allocator: walk the chunk list, releasing every
// chunk but the first (glibc's obstack_free(obstack, NULL) behaviour).
func (a *Allocator) FreeAll() {
	a.stats.FreeAlls++
	a.env.Instr(costFreeAll, sim.ClassAlloc)
	for i := len(a.chunks) - 1; i >= 1; i-- {
		// Read each header to find its predecessor, then unmap.
		a.env.Read(a.chunks[i].Base, chunkHeader, sim.ClassAlloc)
		a.env.Instr(20, sim.ClassAlloc)
		a.env.Instr(200, sim.ClassOS) // free/munmap
		a.env.AS.Unmap(a.chunks[i])
	}
	a.chunks = a.chunks[:1]
	a.cur = 0
	a.next = a.chunks[0].Base + chunkHeader
	a.txnAllocated = 0
}

// PeakFootprint implements heap.Allocator (region definition: bytes
// allocated during the transaction).
func (a *Allocator) PeakFootprint() uint64 { return a.peakTxn }

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peakTxn = a.txnAllocated }

// Chunks reports the chunks currently held.
func (a *Allocator) Chunks() int { return len(a.chunks) }
