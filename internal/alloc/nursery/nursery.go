// Package nursery models the allocation behaviour of a copying-collector
// young generation, the paper's Section 5 discussion: "Many of these
// virtual machines, especially those using copying garbage collectors,
// allocate heap memory for newly created objects in a similar way to the
// region-based allocators ... allocated objects are not freed until the
// heap becomes full ... Hence the virtual machines may suffer from the
// increased bus traffic on multicore processors, just as the region-based
// allocator suffers in the PHP runtime."
//
// The model: objects bump-allocate in a nursery; Free is only a death note
// (the mutator dropped its reference — memory is NOT reused); when the
// nursery fills, a minor collection copies the still-live objects to the
// old generation and resets the bump pointer to the nursery base,
// *reusing the same addresses*. The crucial parameter is the nursery size:
//
//   - a nursery larger than the cache behaves like the region allocator —
//     every allocation streams through cold lines, dead objects are written
//     back uselessly, and bus traffic grows with core count;
//   - a small nursery (the paper cites MicroPhase's aggressive early
//     collection) is recycled while its lines are still cache-resident,
//     recovering most of DDmalloc's reuse advantage at the cost of more
//     frequent collections.
//
// The ablation bench over NurserySize regenerates exactly that trade-off.
package nursery

import (
	"fmt"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

const (
	costAlloc    = 6   // bump + class-free allocation
	costGCFixed  = 400 // collection setup/scan bookkeeping
	costPerCopy  = 24  // per surviving object: copy loop overhead
	costDeath    = 2   // death note (reference drop)
	oldGenChunk  = 4 * mem.MiB
	codeSize     = 6 * mem.KiB
)

// Allocator is the copying-nursery model. It implements heap.Allocator,
// with Free recording a death (no reuse) and FreeAll unsupported (the GC,
// not the application, empties the heap).
type Allocator struct {
	env *sim.Env

	nursery mem.Mapping
	next    mem.Addr

	// live objects in the nursery: address -> size.
	liveNursery map[heap.Ptr]uint64
	// oldGen tracks tenured bytes; old-generation collection is out of
	// scope (the paper's discussion concerns the nursery).
	oldChunks []mem.Mapping
	oldNext   mem.Addr
	oldUsed   uint64

	collections uint64
	tenured     uint64

	peak  uint64
	stats heap.Stats
}

// New builds a nursery of the given size (the §5 knob).
func New(env *sim.Env, nurserySize uint64) *Allocator {
	if nurserySize < 64*mem.KiB {
		panic(fmt.Sprintf("nursery: size %d too small", nurserySize))
	}
	a := &Allocator{
		env:         env,
		nursery:     env.AS.Map(nurserySize, 0, mem.SmallPages),
		liveNursery: make(map[heap.Ptr]uint64),
	}
	a.next = a.nursery.Base
	if !a.addOldChunk() {
		panic("nursery: cannot map initial old-generation chunk")
	}
	return a
}

func (a *Allocator) addOldChunk() bool {
	c, err := a.env.AS.TryMap(oldGenChunk, 0, mem.SmallPages)
	if err != nil {
		return false
	}
	a.env.Instr(400, sim.ClassOS)
	a.oldChunks = append(a.oldChunks, c)
	a.oldNext = c.Base
	return true
}

// Name implements heap.Allocator.
func (a *Allocator) Name() string { return "gc-nursery" }

// CodeSize implements heap.Allocator.
func (a *Allocator) CodeSize() uint64 { return codeSize }

// SupportsFree implements heap.Allocator: Free is accepted (a death note)
// but reclaims nothing until the next collection.
func (a *Allocator) SupportsFree() bool { return true }

// SupportsFreeAll implements heap.Allocator: there is no application-driven
// bulk free in a GC runtime — that is the paper's §5 point.
func (a *Allocator) SupportsFreeAll() bool { return false }

// FreeAll implements heap.Allocator by panicking.
func (a *Allocator) FreeAll() { panic("nursery: GC-managed heaps have no freeAll") }

// Stats implements heap.Allocator.
func (a *Allocator) Stats() heap.Stats { return a.stats }

// Malloc implements heap.Allocator: bump in the nursery, collecting when
// full. Objects above a quarter of the nursery tenure directly.
func (a *Allocator) Malloc(size uint64) heap.Ptr {
	if size == 0 {
		size = 1
	}
	a.env.RecordAlloc(size)
	a.stats.Mallocs++
	a.stats.BytesRequested += size
	rounded := (size + 7) &^ 7
	a.stats.BytesAllocated += rounded
	if rounded > a.nursery.Size/4 {
		return a.allocOld(rounded)
	}
	a.env.Instr(costAlloc, sim.ClassAlloc)
	if a.next+mem.Addr(rounded) > a.nursery.End() {
		if !a.Collect() {
			return 0 // OOM: the old generation cannot grow
		}
	}
	p := a.next
	a.next += mem.Addr(rounded)
	a.liveNursery[p] = rounded
	return p
}

// Free implements heap.Allocator as a death note: the object stops being
// live for the next collection, but its memory is not reused.
func (a *Allocator) Free(p heap.Ptr) {
	if p == 0 {
		return
	}
	a.stats.Frees++
	a.env.Instr(costDeath, sim.ClassAlloc)
	delete(a.liveNursery, p)
}

// Realloc implements heap.Allocator: always allocate-and-copy (arrays grow
// by copying in GC runtimes too).
func (a *Allocator) Realloc(p heap.Ptr, oldSize, newSize uint64) heap.Ptr {
	a.stats.Reallocs++
	np := a.Malloc(newSize)
	if np == 0 {
		return 0 // OOM: the old object stays valid
	}
	if p != 0 {
		n := oldSize
		if newSize < n {
			n = newSize
		}
		a.env.Copy(np, p, n, sim.ClassAlloc)
		a.Free(p)
	}
	return np
}

// Collect runs a minor collection: copy every live nursery object to the
// old generation, then reset the bump pointer to the nursery base. The
// nursery's addresses are reused immediately — warm if the nursery fits the
// cache, cold if it does not. It reports false when the old generation
// cannot grow to take the survivors (OOM): the collection aborts with the
// uncopied objects still live in the nursery, so it can be retried.
func (a *Allocator) Collect() bool {
	a.collections++
	a.env.Instr(costGCFixed, sim.ClassAlloc)
	for p, sz := range a.liveNursery {
		a.env.Instr(costPerCopy, sim.ClassAlloc)
		if a.oldNext+mem.Addr(sz) > a.oldChunks[len(a.oldChunks)-1].End() {
			if !a.addOldChunk() {
				return false
			}
		}
		a.env.Copy(a.oldNext, p, sz, sim.ClassAlloc)
		a.oldNext += mem.Addr(sz)
		a.oldUsed += sz
		a.tenured++
		delete(a.liveNursery, p)
	}
	a.next = a.nursery.Base
	if fp := a.footprint(); fp > a.peak {
		a.peak = fp
	}
	return true
}

func (a *Allocator) allocOld(rounded uint64) heap.Ptr {
	a.env.Instr(costAlloc*2, sim.ClassAlloc)
	if a.oldNext+mem.Addr(rounded) > a.oldChunks[len(a.oldChunks)-1].End() {
		if !a.addOldChunk() {
			return 0 // OOM
		}
	}
	p := a.oldNext
	a.oldNext += mem.Addr(rounded)
	a.oldUsed += rounded
	return p
}

func (a *Allocator) footprint() uint64 {
	return a.nursery.Size + a.oldUsed
}

// PeakFootprint implements heap.Allocator.
func (a *Allocator) PeakFootprint() uint64 {
	if fp := a.footprint(); fp > a.peak {
		a.peak = fp
	}
	return a.peak
}

// ResetPeak implements heap.Allocator.
func (a *Allocator) ResetPeak() { a.peak = a.footprint() }

// Collections reports minor-GC count; Tenured the objects copied out.
func (a *Allocator) Collections() uint64 { return a.collections }

// Tenured reports how many objects survived into the old generation.
func (a *Allocator) Tenured() uint64 { return a.tenured }
