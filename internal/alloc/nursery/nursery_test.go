package nursery

import (
	"testing"

	"webmm/internal/alloctest"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

func TestBumpAllocationAndDeathNotes(t *testing.T) {
	env := alloctest.NewEnv(1)
	a := New(env, 256*mem.KiB)
	p1 := a.Malloc(64)
	p2 := a.Malloc(64)
	if p2-p1 != 64 {
		t.Fatalf("objects %d apart, want 64 (bump)", p2-p1)
	}
	a.Free(p1)
	if q := a.Malloc(64); q == p1 {
		t.Fatal("freed nursery object reused before collection")
	}
}

func TestCollectionResetsNurseryAndTenuresSurvivors(t *testing.T) {
	env := alloctest.NewEnv(2)
	const size = 128 * mem.KiB
	a := New(env, size)
	first := a.Malloc(64)

	// Fill the nursery with objects, freeing 90% (transaction-scoped
	// deaths), keeping 10% live.
	var live []heap.Ptr
	for i := 1; a.Collections() == 0; i++ {
		p := a.Malloc(64)
		if i%10 == 0 {
			live = append(live, p)
		} else {
			a.Free(p)
		}
		env.Drain()
	}
	if a.Collections() != 1 {
		t.Fatalf("collections = %d, want 1", a.Collections())
	}
	if a.Tenured() == 0 {
		t.Fatal("no survivors were tenured")
	}
	// The nursery restarts at its base: the next allocations land back
	// on the recycled bottom of the nursery (the collection-triggering
	// malloc already took the base slot itself).
	if got := a.Malloc(64); got >= first+256 {
		t.Fatalf("post-GC allocation at %#x, want reuse near nursery base %#x", got, first)
	}
}

func TestNoFreeAll(t *testing.T) {
	a := New(alloctest.NewEnv(3), 128*mem.KiB)
	if a.SupportsFreeAll() {
		t.Fatal("GC nursery must not claim freeAll")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FreeAll did not panic")
		}
	}()
	a.FreeAll()
}

func TestBigObjectsTenureDirectly(t *testing.T) {
	env := alloctest.NewEnv(4)
	a := New(env, 128*mem.KiB)
	p := a.Malloc(64 * mem.KiB) // > nursery/4
	if a.nursery.Contains(p) {
		t.Fatal("oversized object placed in the nursery")
	}
}

// TestSection5NurserySizeTradeoff is the paper's Section 5 claim as a test:
// with equal application work, a cache-sized nursery produces far less bus
// traffic per transaction than a cache-busting one, because its lines are
// recycled while still resident.
func TestSection5NurserySizeTradeoff(t *testing.T) {
	busPerTxn := func(nurseryKiB uint64) float64 {
		m := machine.New(machine.Xeon(), 2, 8*mem.KiB, 64*mem.KiB, 9)
		drivers := make([]machine.Driver, m.NumStreams())
		for i, s := range m.Streams() {
			a := New(s.Env, nurseryKiB*mem.KiB)
			env := s.Env
			drivers[i] = driverFunc(func() bool {
				var keep []heap.Ptr
				for j := 0; j < 8000; j++ {
					p := a.Malloc(96)
					env.Write(p, 96, sim.ClassApp)
					if j%10 == 0 {
						keep = append(keep, p)
					} else {
						a.Free(p)
					}
					if len(keep) > 200 {
						a.Free(keep[0])
						keep = keep[1:]
					}
				}
				for _, p := range keep {
					a.Free(p)
				}
				return true
			})
		}
		m.PriceSetup()
		m.Run(drivers, 2, 3)
		res := m.Solve()
		return res.PerTxn(res.Totals.BusTxns())
	}
	// Xeon L2 here is 4 MiB per core pair: 512 KiB nursery fits two
	// streams comfortably; 16 MiB does not.
	small := busPerTxn(512)
	large := busPerTxn(16 * 1024)
	if large < 2*small {
		t.Fatalf("Section 5 trade-off missing: %.0f bus txns with a cache-busting nursery vs %.0f with a cache-sized one",
			large, small)
	}
}

type driverFunc func() bool

func (f driverFunc) StepTransaction() bool { return f() }

func TestFootprintAccounting(t *testing.T) {
	env := alloctest.NewEnv(5)
	a := New(env, 256*mem.KiB)
	a.ResetPeak()
	base := a.PeakFootprint()
	for i := 0; i < 30000; i++ {
		p := a.Malloc(64)
		if i%3 != 0 {
			a.Free(p)
		}
		if i%1000 == 0 {
			env.Drain()
		}
	}
	if a.PeakFootprint() <= base {
		t.Fatal("footprint did not grow despite tenured survivors")
	}
}
