// Package bus models the shared memory interconnect whose finite bandwidth
// is the paper's central multicore bottleneck.
//
// The paper (Section 1) attributes the region allocator's 8-core slowdown to
// "hidden costs of increased bus traffics": every bus transaction moves one
// cache line, and when the aggregate demand of all cores approaches the
// bus's transfer capacity, memory latency inflates for everyone. We model
// that with an open queueing approximation: the effective memory latency is
// the unloaded latency times 1/(1-u), where u is bus utilization, capped so
// the fixed-point solve stays stable.
package bus

// Model describes a shared front-side bus or memory interconnect.
type Model struct {
	// BytesPerCycle is the transfer capacity per core-clock cycle.
	// (Expressing bandwidth in core cycles keeps the solver unit-free:
	// utilization = busBytes / (BytesPerCycle * wallCycles).)
	BytesPerCycle float64
	// BytesPerTxn is the payload of one bus transaction (a cache line).
	BytesPerTxn float64
	// MaxUtil caps utilization in the queueing formula; beyond it the
	// bus is saturated and latency is pinned at the cap's multiplier.
	MaxUtil float64
}

// Utilization returns the fraction of bus capacity consumed by busTxns
// transactions over wallCycles cycles (uncapped; may exceed 1 when the
// offered load is infeasible, which the solver resolves by stretching time).
func (m Model) Utilization(busTxns uint64, wallCycles float64) float64 {
	if wallCycles <= 0 {
		return m.MaxUtil
	}
	return float64(busTxns) * m.BytesPerTxn / (m.BytesPerCycle * wallCycles)
}

// LatencyMultiplier converts a utilization into the factor by which queueing
// inflates memory latency: 1/(1-u) with u capped at MaxUtil.
func (m Model) LatencyMultiplier(util float64) float64 {
	u := util
	if u < 0 {
		u = 0
	}
	if u > m.MaxUtil {
		u = m.MaxUtil
	}
	return 1 / (1 - u)
}
