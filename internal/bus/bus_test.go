package bus

import (
	"math"
	"testing"
	"testing/quick"
)

func model() Model {
	return Model{BytesPerCycle: 5.4, BytesPerTxn: 64, MaxUtil: 0.93}
}

func TestUtilizationScalesWithTraffic(t *testing.T) {
	m := model()
	u1 := m.Utilization(1000, 1e6)
	u2 := m.Utilization(2000, 1e6)
	if math.Abs(u2-2*u1) > 1e-12 {
		t.Fatalf("utilization not linear in traffic: %g vs %g", u1, u2)
	}
	u3 := m.Utilization(1000, 2e6)
	if math.Abs(u3-u1/2) > 1e-12 {
		t.Fatalf("utilization not inverse in time: %g vs %g", u1, u3)
	}
}

func TestLatencyMultiplierMonotone(t *testing.T) {
	m := model()
	prev := 0.0
	for u := 0.0; u <= 1.5; u += 0.01 {
		mult := m.LatencyMultiplier(u)
		if mult < prev {
			t.Fatalf("multiplier decreased at u=%.2f: %g < %g", u, mult, prev)
		}
		prev = mult
	}
}

func TestLatencyMultiplierBounds(t *testing.T) {
	m := model()
	if got := m.LatencyMultiplier(0); got != 1 {
		t.Errorf("idle bus multiplier = %g, want 1", got)
	}
	capped := m.LatencyMultiplier(5.0)
	want := 1 / (1 - m.MaxUtil)
	if math.Abs(capped-want) > 1e-9 {
		t.Errorf("saturated multiplier = %g, want %g", capped, want)
	}
	if got := m.LatencyMultiplier(-1); got != 1 {
		t.Errorf("negative utilization multiplier = %g, want 1", got)
	}
}

func TestZeroWallClockSaturates(t *testing.T) {
	m := model()
	if u := m.Utilization(100, 0); u != m.MaxUtil {
		t.Errorf("zero-time utilization = %g, want MaxUtil", u)
	}
}

func TestMultiplierAlwaysAtLeastOneProperty(t *testing.T) {
	m := model()
	f := func(txns uint32, cycles uint32) bool {
		u := m.Utilization(uint64(txns), float64(cycles))
		return m.LatencyMultiplier(u) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
