package memsys

import (
	"fmt"

	"webmm/internal/bus"
	"webmm/internal/mem"
)

// DRAMConfig sizes a DRAM memory system. The zero value of any field means
// "use the default" (see defaultDRAMConfig), so callers normally set only
// Policy.
type DRAMConfig struct {
	// Geometry: Channels × RanksPerChannel × BanksPerRank independent
	// banks, each with one row buffer of RowBytes.
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	RowBytes        uint64

	// Window is the per-bank queue depth at which pending requests are
	// scheduled and replayed. Larger windows give the policy more
	// reordering freedom; 1 degenerates to FCFS regardless of policy.
	Window int

	// Policy names the scheduling policy (DefaultPolicy when empty).
	Policy PolicyName

	// Service-time factors relative to the platform's unloaded memory
	// latency: an open-row hit skips the activate, a closed bank pays it
	// (1.0 ≡ the bus model's flat latency), a conflict pays a precharge
	// on top.
	HitFactor      float64
	ClosedFactor   float64
	ConflictFactor float64
}

// defaultDRAMConfig is a modest DDR2-era part matching the paper's machines:
// 2 channels × 2 ranks × 8 banks (32 banks), 8 KiB rows, and the canonical
// ~0.55 / 1.0 / 1.4 hit/closed/conflict timing ratio (tCL vs tRCD+tCL vs
// tRP+tRCD+tCL).
var defaultDRAMConfig = DRAMConfig{
	Channels:        2,
	RanksPerChannel: 2,
	BanksPerRank:    8,
	RowBytes:        8 << 10,
	Window:          32,
	Policy:          DefaultPolicy,
	HitFactor:       0.55,
	ClosedFactor:    1.0,
	ConflictFactor:  1.4,
}

// rowClosed marks a precharged bank (no open row).
const rowClosed int64 = -1

// bank is one DRAM bank: its open row and its pending request queue
// (arrival-ordered; scheduled in windows).
type bank struct {
	openRow int64
	pending []request
}

// DRAM models a multi-bank memory behind the platform's transfer link. It
// records the measured miss stream into per-bank queues, replays each queue
// window under the configured scheduling policy to classify row-buffer
// outcomes and per-core queueing, and folds the result into the solver's
// latency multiplier:
//
//	multiplier(core) = RowFactor × 1/(1-u) × CoreFactor(core)
//
// where RowFactor is the request-weighted mean service factor (1.0 when
// every access pays the closed-row timing — the bus model's assumption) and
// CoreFactor redistributes latency between cores with request-weighted mean
// 1.0, so the aggregate bandwidth story stays the paper's queueing model.
type DRAM struct {
	cfg    DRAMConfig
	link   bus.Model
	nCores int
	sched  scheduler

	banks           []bank
	linesPerRow     uint64
	banksPerChannel int
	seq             uint64

	// Accumulated over all serviced requests.
	reads, writebacks, prefetches uint64
	hits, closed, conflicts       uint64
	queueSum, queueSamples        uint64
	maxQueue                      int
	coreScore                     []float64
	coreReqs                      []uint64

	// Lazily finalized on the first solver query: partial windows flush
	// and the derived factors freeze.
	finalized   bool
	rowFactor   float64
	coreFactors []float64
	stats       *Stats
}

// NewDRAM builds a DRAM memory system behind the given link for nCores
// cores. Zero-valued cfg fields take defaults; the policy name is validated
// here so every entry point gets the registry's helpful error.
func NewDRAM(cfg DRAMConfig, link bus.Model, nCores int) (*DRAM, error) {
	def := defaultDRAMConfig
	if cfg.Channels == 0 {
		cfg.Channels = def.Channels
	}
	if cfg.RanksPerChannel == 0 {
		cfg.RanksPerChannel = def.RanksPerChannel
	}
	if cfg.BanksPerRank == 0 {
		cfg.BanksPerRank = def.BanksPerRank
	}
	if cfg.RowBytes == 0 {
		cfg.RowBytes = def.RowBytes
	}
	if cfg.Window == 0 {
		cfg.Window = def.Window
	}
	if cfg.Policy == "" {
		cfg.Policy = def.Policy
	}
	if cfg.HitFactor == 0 {
		cfg.HitFactor = def.HitFactor
	}
	if cfg.ClosedFactor == 0 {
		cfg.ClosedFactor = def.ClosedFactor
	}
	if cfg.ConflictFactor == 0 {
		cfg.ConflictFactor = def.ConflictFactor
	}
	if _, err := PolicyByName(cfg.Policy); err != nil {
		return nil, err
	}
	if cfg.RowBytes%mem.LineSize != 0 || cfg.RowBytes < mem.LineSize {
		return nil, fmt.Errorf("memsys: row size %d not a multiple of the %d-byte line", cfg.RowBytes, mem.LineSize)
	}
	if nCores < 1 {
		return nil, fmt.Errorf("memsys: nCores %d out of range", nCores)
	}
	nBanks := cfg.Channels * cfg.RanksPerChannel * cfg.BanksPerRank
	d := &DRAM{
		cfg:             cfg,
		link:            link,
		nCores:          nCores,
		sched:           newScheduler(cfg.Policy, nCores),
		banks:           make([]bank, nBanks),
		linesPerRow:     cfg.RowBytes / mem.LineSize,
		banksPerChannel: cfg.RanksPerChannel * cfg.BanksPerRank,
		coreScore:       make([]float64, nCores),
		coreReqs:        make([]uint64, nCores),
	}
	for i := range d.banks {
		d.banks[i].openRow = rowClosed
	}
	return d, nil
}

func (d *DRAM) Name() string       { return "dram/" + string(d.cfg.Policy) }
func (d *DRAM) Recorder() Recorder { return d }
func (d *DRAM) Link() bus.Model    { return d.link }

// Record maps one bus transaction to its bank and row and enqueues it;
// when the bank's queue reaches the scheduling window it is serviced. The
// address map stripes lines across channels and consecutive rows across a
// channel's banks, so sequential sweeps enjoy row locality while
// independent heaps land on independent banks.
func (d *DRAM) Record(line uint64, core int, kind Kind) {
	if d.finalized {
		// Recording after the solver started reading would silently skew
		// the frozen factors; the machine never does this.
		panic("memsys: Record after finalize")
	}
	ch := int(line % uint64(d.cfg.Channels))
	rowGlobal := line / uint64(d.cfg.Channels) / d.linesPerRow
	bankID := ch*d.banksPerChannel + int(rowGlobal%uint64(d.banksPerChannel))
	row := int64(rowGlobal / uint64(d.banksPerChannel))

	b := &d.banks[bankID]
	b.pending = append(b.pending, request{row: row, seq: d.seq, core: int32(core), kind: kind})
	d.seq++
	switch kind {
	case Read:
		d.reads++
	case Writeback:
		d.writebacks++
	default:
		d.prefetches++
	}
	depth := len(b.pending)
	d.queueSum += uint64(depth)
	d.queueSamples++
	if depth > d.maxQueue {
		d.maxQueue = depth
	}
	if depth >= d.cfg.Window {
		d.serviceWindow(b)
	}
}

// serviceWindow drains one bank's pending queue under the scheduling
// policy: repeatedly pick, classify against the open row, charge the
// request its service factor plus the time already elapsed in the window
// (bank-level queueing), and update the row buffer.
func (d *DRAM) serviceWindow(b *bank) {
	elapsed := 0.0
	for len(b.pending) > 0 {
		idx := d.sched.pick(b.pending, b.openRow)
		r := b.pending[idx]
		var units float64
		switch {
		case r.row == b.openRow:
			units = d.cfg.HitFactor
			d.hits++
		case b.openRow == rowClosed:
			units = d.cfg.ClosedFactor
			d.closed++
		default:
			units = d.cfg.ConflictFactor
			d.conflicts++
		}
		b.openRow = r.row
		d.coreScore[r.core] += elapsed + units
		d.coreReqs[r.core]++
		elapsed += units
		d.sched.served(r.core, units)
		b.pending = append(b.pending[:idx], b.pending[idx+1:]...)
	}
}

// finalize flushes partial windows and freezes the derived factors. Called
// lazily by the first solver query; recording is over by then (the machine
// prices before it solves).
func (d *DRAM) finalize() {
	if d.finalized {
		return
	}
	d.finalized = true
	for i := range d.banks {
		if len(d.banks[i].pending) > 0 {
			d.serviceWindow(&d.banks[i])
		}
	}

	total := d.hits + d.closed + d.conflicts
	if total == 0 {
		d.rowFactor = 1
	} else {
		weighted := float64(d.hits)*d.cfg.HitFactor +
			float64(d.closed)*d.cfg.ClosedFactor +
			float64(d.conflicts)*d.cfg.ConflictFactor
		d.rowFactor = weighted / (float64(total) * d.cfg.ClosedFactor)
	}

	d.coreFactors = make([]float64, d.nCores)
	var totalScore float64
	var totalReqs uint64
	for c := 0; c < d.nCores; c++ {
		totalScore += d.coreScore[c]
		totalReqs += d.coreReqs[c]
	}
	for c := 0; c < d.nCores; c++ {
		if d.coreReqs[c] == 0 || totalScore == 0 {
			d.coreFactors[c] = 1
			continue
		}
		mean := totalScore / float64(totalReqs)
		d.coreFactors[c] = (d.coreScore[c] / float64(d.coreReqs[c])) / mean
	}

	s := &Stats{
		Model:        "dram",
		Policy:       string(d.cfg.Policy),
		Banks:        len(d.banks),
		Reads:        d.reads,
		Writebacks:   d.writebacks,
		Prefetches:   d.prefetches,
		RowHits:      d.hits,
		RowClosed:    d.closed,
		RowConflicts: d.conflicts,
		MaxQueueDepth: d.maxQueue,
		RowFactor:    d.rowFactor,
		CoreFactors:  d.coreFactors,
	}
	if d.queueSamples > 0 {
		s.AvgQueueDepth = float64(d.queueSum) / float64(d.queueSamples)
	}
	d.stats = s
}

func (d *DRAM) Utilization(busTxns uint64, wallCycles float64) float64 {
	return d.link.Utilization(busTxns, wallCycles)
}

func (d *DRAM) LatencyMultiplier(util float64) float64 {
	d.finalize()
	return d.rowFactor * d.link.LatencyMultiplier(util)
}

func (d *DRAM) CoreFactor(core int) float64 {
	d.finalize()
	if core < 0 || core >= len(d.coreFactors) {
		return 1
	}
	return d.coreFactors[core]
}

func (d *DRAM) Stats() *Stats {
	d.finalize()
	return d.stats
}
