package memsys

import (
	"reflect"
	"strings"
	"testing"

	"webmm/internal/bus"
)

func testLink() bus.Model {
	return bus.Model{BytesPerCycle: 4.3, BytesPerTxn: 64, MaxUtil: 0.93}
}

// The Bus adapter must be arithmetically indistinguishable from consulting
// the bus model directly — that is the default path's bit-identical
// contract.
func TestBusAdapterMatchesLink(t *testing.T) {
	link := testLink()
	b := NewBus(link)
	for _, txns := range []uint64{0, 1, 1000, 123456789} {
		for _, wall := range []float64{0, 1, 1e6, 3.7e9} {
			if got, want := b.Utilization(txns, wall), link.Utilization(txns, wall); got != want {
				t.Fatalf("Utilization(%d, %v) = %v, want %v", txns, wall, got, want)
			}
		}
	}
	for _, u := range []float64{-1, 0, 0.5, 0.93, 2} {
		if got, want := b.LatencyMultiplier(u), link.LatencyMultiplier(u); got != want {
			t.Fatalf("LatencyMultiplier(%v) = %v, want %v", u, got, want)
		}
	}
	if b.Recorder() != nil {
		t.Error("bus recorder should be nil (machine skips recording)")
	}
	if b.Stats() != nil {
		t.Error("bus stats should be nil (keeps result JSON unchanged)")
	}
	if b.CoreFactor(3) != 1 {
		t.Error("bus core factor must be exactly 1")
	}
	if b.Name() != "bus" {
		t.Errorf("Name() = %q", b.Name())
	}
	if b.Link() != link {
		t.Errorf("Link() = %+v", b.Link())
	}
}

func TestPolicyRegistry(t *testing.T) {
	names := PolicyNames()
	want := []PolicyName{PolicyFRFCFS, PolicyATLAS, PolicyTCM, PolicyBLISS}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("PolicyNames() = %v, want %v", names, want)
	}
	for _, d := range Policies() {
		if d.Doc == "" || d.Ref == "" {
			t.Errorf("policy %s missing doc or ref", d.Name)
		}
		got, err := PolicyByName(d.Name)
		if err != nil || got.Name != d.Name {
			t.Errorf("PolicyByName(%q): %v", d.Name, err)
		}
	}
	_, err := PolicyByName("fifo")
	if err == nil {
		t.Fatal("PolicyByName(fifo) succeeded")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), string(n)) {
			t.Errorf("unknown-policy error %q does not name candidate %s", err, n)
		}
	}
	if UsagePolicies() == "" || PoliciesMarkdown() == "" {
		t.Error("empty generated policy docs")
	}
}

// lcg is a tiny deterministic generator for synthetic miss streams.
type lcg uint64

func (l *lcg) next() uint64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return uint64(*l) >> 16
}

func feed(t *testing.T, d *DRAM, n int, cores int) {
	t.Helper()
	g := lcg(42)
	for i := 0; i < n; i++ {
		// Mix sequential sweeps (row locality) with random lines.
		var line uint64
		if i%3 != 0 {
			line = uint64(i) * 7 / 3
		} else {
			line = g.next() % (1 << 20)
		}
		kind := Kind(i % 3)
		d.Record(line, i%cores, kind)
	}
}

func TestDRAMDeterministic(t *testing.T) {
	for _, p := range PolicyNames() {
		a, err := NewDRAM(DRAMConfig{Policy: p}, testLink(), 4)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewDRAM(DRAMConfig{Policy: p}, testLink(), 4)
		if err != nil {
			t.Fatal(err)
		}
		feed(t, a, 5000, 4)
		feed(t, b, 5000, 4)
		if !reflect.DeepEqual(a.Stats(), b.Stats()) {
			t.Errorf("%s: same stream produced different stats:\n%+v\n%+v", p, a.Stats(), b.Stats())
		}
	}
}

func TestDRAMAccounting(t *testing.T) {
	d, err := NewDRAM(DRAMConfig{}, testLink(), 4)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, d, 5000, 4)
	s := d.Stats()
	if s.Total() != 5000 {
		t.Fatalf("total %d, want 5000", s.Total())
	}
	if s.RowHits+s.RowClosed+s.RowConflicts != 5000 {
		t.Fatalf("row outcomes %d+%d+%d don't sum to 5000", s.RowHits, s.RowClosed, s.RowConflicts)
	}
	if s.Reads == 0 || s.Writebacks == 0 || s.Prefetches == 0 {
		t.Errorf("kind split incomplete: %+v", s)
	}
	if s.MaxQueueDepth < 1 || s.AvgQueueDepth <= 0 {
		t.Errorf("queue stats missing: max %d avg %v", s.MaxQueueDepth, s.AvgQueueDepth)
	}
	if s.RowFactor <= 0 {
		t.Errorf("row factor %v", s.RowFactor)
	}
}

// A purely sequential sweep should be dominated by open-row hits under
// FR-FCFS; ping-ponging between two rows of the same bank with no
// reordering freedom (window 1) must conflict on every access after the
// first two.
func TestDRAMRowBufferBehavior(t *testing.T) {
	d, err := NewDRAM(DRAMConfig{}, testLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for line := uint64(0); line < 4096; line++ {
		d.Record(line, 0, Read)
	}
	if r := d.Stats().RowHitRate(); r < 0.8 {
		t.Errorf("sequential sweep row-hit rate %v, want > 0.8", r)
	}

	// Same channel (even lines), same bank (rowGlobal ≡ 0 mod banks),
	// different rows.
	fc, err := NewDRAM(DRAMConfig{Window: 1}, testLink(), 1)
	if err != nil {
		t.Fatal(err)
	}
	linesPerRow := fc.cfg.RowBytes / 64
	strideLines := uint64(fc.cfg.Channels) * linesPerRow * uint64(fc.banksPerChannel)
	for i := 0; i < 100; i++ {
		fc.Record(uint64(i%2)*strideLines, 0, Read)
	}
	s := fc.Stats()
	if s.RowConflicts != 99 || s.RowClosed != 1 {
		t.Errorf("ping-pong: conflicts %d closed %d hits %d, want 99/1/0", s.RowConflicts, s.RowClosed, s.RowHits)
	}
}

// Per-core factors must have request-weighted mean 1 (so redistributing
// latency between cores never changes the aggregate bandwidth story) and
// idle cores must get exactly 1.
func TestDRAMCoreFactorsNormalized(t *testing.T) {
	for _, p := range PolicyNames() {
		d, err := NewDRAM(DRAMConfig{Policy: p}, testLink(), 8)
		if err != nil {
			t.Fatal(err)
		}
		// Cores 0..3 active with skewed demand; cores 4..7 idle.
		g := lcg(7)
		for i := 0; i < 8000; i++ {
			core := 0
			switch {
			case i%8 < 4:
				core = 0 // heavy
			case i%8 < 6:
				core = 1
			case i%8 == 6:
				core = 2
			default:
				core = 3 // light
			}
			d.Record(g.next()%(1<<18), core, Read)
		}
		s := d.Stats()
		var weighted float64
		var reqs uint64
		for c := 0; c < 8; c++ {
			f := d.CoreFactor(c)
			if f <= 0 {
				t.Errorf("%s: core %d factor %v", p, c, f)
			}
			if c >= 4 && f != 1 {
				t.Errorf("%s: idle core %d factor %v, want exactly 1", p, c, f)
			}
			weighted += f * float64(d.coreReqs[c])
			reqs += d.coreReqs[c]
		}
		mean := weighted / float64(reqs)
		if mean < 0.999999 || mean > 1.000001 {
			t.Errorf("%s: request-weighted mean factor %v, want 1", p, mean)
		}
		if len(s.CoreFactors) != 8 {
			t.Errorf("%s: stats carry %d core factors, want 8", p, len(s.CoreFactors))
		}
	}
}

// With no recorded traffic the DRAM model must collapse to the bus model:
// multiplier identical, factors 1 — a cell whose measured rounds generate
// no misses prices the same either way.
func TestDRAMNoTrafficMatchesBus(t *testing.T) {
	link := testLink()
	d, err := NewDRAM(DRAMConfig{}, link, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.LatencyMultiplier(0.5), link.LatencyMultiplier(0.5); got != want {
		t.Errorf("multiplier %v, want %v", got, want)
	}
	if d.CoreFactor(0) != 1 || d.CoreFactor(1) != 1 {
		t.Error("idle core factors must be 1")
	}
	if s := d.Stats(); s.Total() != 0 || s.RowFactor != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestNewDRAMValidation(t *testing.T) {
	if _, err := NewDRAM(DRAMConfig{Policy: "lifo"}, testLink(), 1); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewDRAM(DRAMConfig{RowBytes: 100}, testLink(), 1); err == nil {
		t.Error("non-line-multiple row size accepted")
	}
	if _, err := NewDRAM(DRAMConfig{}, testLink(), 0); err == nil {
		t.Error("zero cores accepted")
	}
}

// ATLAS must favour the core with the least attained service: the light
// core's factor cannot exceed the heavy core's.
func TestATLASFavoursLightCore(t *testing.T) {
	d, err := NewDRAM(DRAMConfig{Policy: PolicyATLAS}, testLink(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g := lcg(3)
	for i := 0; i < 6000; i++ {
		core := 0
		if i%8 == 0 {
			core = 1 // light core: 1/8 of the traffic
		}
		d.Record(g.next()%(1<<16), core, Read)
	}
	heavy, light := d.CoreFactor(0), d.CoreFactor(1)
	if light > heavy {
		t.Errorf("ATLAS light-core factor %v > heavy-core %v", light, heavy)
	}
}
