// Package memsys is the memory-system seam below the cache hierarchy.
//
// The paper's model ends at a finite-bandwidth bus: every L2 miss is one bus
// transaction and queueing inflates memory latency by 1/(1-u). That is the
// right first-order story for the 2009 machines, but it cannot ask how
// allocator placement interacts with DRAM row-buffer locality or how a
// memory scheduler arbitrates between cores. This package turns the memory
// system into a pluggable design point, the same way internal/apprt does for
// allocators: a Model interface that the solver consults, a Bus
// implementation that reproduces the paper's bus bit-for-bit (the default),
// and a DRAM implementation (dram.go) with channels/ranks/banks, row-buffer
// state and a registry of scheduling policies (policy.go).
//
// The seam is deliberately analytic-solver shaped. A Model does not return
// per-request latencies; it observes the measured miss stream through a
// Recorder and then answers three questions the fixed point needs:
// utilization for a given wall time, the average latency multiplier that
// utilization implies, and a per-core relative factor (so policies that
// favour some cores can stretch the others). The Bus model answers 1/(1-u),
// 1.0 — exactly the numbers the solver used before this seam existed.
package memsys

import "webmm/internal/bus"

// Kind classifies one memory-system transaction. The three kinds mirror the
// three bus counters (BusRead/BusWrite/BusPf) so a Recorder sees exactly the
// traffic the bus model bills for.
type Kind uint8

const (
	// Read is a demand fetch (data or instruction) that missed the L2.
	Read Kind = iota
	// Writeback is a dirty line evicted from the L2.
	Writeback
	// Prefetch is a hardware-prefetcher line install.
	Prefetch
)

// Recorder observes the measured miss traffic, one call per bus transaction,
// in deterministic pricing order. line is the cache-line number (address /
// line size) and core the issuing core — per-core attribution is what lets
// policies like TCM and ATLAS classify cores. A nil Recorder (the bus
// model's) means the machine skips recording entirely.
type Recorder interface {
	Record(line uint64, core int, kind Kind)
}

// Model is the memory system below the caches. The solver calls Utilization
// and LatencyMultiplier inside its fixed-point loop and CoreFactor once per
// core; implementations must make all three deterministic and stable across
// calls once recording has stopped (the machine records only while pricing,
// which completes before Solve runs).
type Model interface {
	// Name identifies the model in results ("bus", "dram/frfcfs", ...).
	Name() string

	// Recorder returns the model's miss-traffic observer, or nil if the
	// model does not need per-request detail (the bus model).
	Recorder() Recorder

	// Link exposes the bandwidth parameters of the channel connecting the
	// chip to memory. Every model has one — DRAM banks sit behind the same
	// finite link the bus model prices — and the solver needs its MaxUtil
	// cap for reporting.
	Link() bus.Model

	// Utilization returns the fraction of link capacity consumed by
	// busTxns transactions over wallCycles cycles (uncapped).
	Utilization(busTxns uint64, wallCycles float64) float64

	// LatencyMultiplier converts a utilization into the average factor by
	// which the memory system inflates unloaded memory latency.
	LatencyMultiplier(util float64) float64

	// CoreFactor scales the latency multiplier for one core relative to
	// the average (request-weighted mean 1.0). The bus serves cores
	// indiscriminately, so its factor is always exactly 1; a scheduling
	// policy that favours latency-sensitive cores returns <1 for them and
	// >1 for the cores it delays.
	CoreFactor(core int) float64

	// Stats returns the model's observed statistics, or nil when it kept
	// none (the bus model). The pointer lands in machine.Result under
	// `json:",omitempty"`, so a nil here is what keeps default-path result
	// fingerprints byte-identical to the pre-seam encoding.
	Stats() *Stats
}

// Bus adapts the paper's shared-bus model to the Model interface. It is the
// default memory system of both platforms: no recorder, no stats, core
// factor exactly 1 — the solver's arithmetic is bit-identical to consulting
// bus.Model directly.
type Bus struct {
	link bus.Model
}

// NewBus wraps a bus model as the default memory system.
func NewBus(link bus.Model) Bus { return Bus{link: link} }

func (b Bus) Name() string        { return "bus" }
func (b Bus) Recorder() Recorder  { return nil }
func (b Bus) Link() bus.Model     { return b.link }
func (b Bus) Stats() *Stats       { return nil }
func (b Bus) CoreFactor(core int) float64 { return 1 }

func (b Bus) Utilization(busTxns uint64, wallCycles float64) float64 {
	return b.link.Utilization(busTxns, wallCycles)
}

func (b Bus) LatencyMultiplier(util float64) float64 {
	return b.link.LatencyMultiplier(util)
}

// Stats is what a stat-keeping memory system observed over the measured
// rounds. It is embedded (as a pointer) in machine.Result and serialized
// into cell results, so every field must be deterministic for a given seed.
type Stats struct {
	// Model and Policy identify what produced the numbers.
	Model  string
	Policy string

	// Banks is the total bank count (channels × ranks × banks/rank).
	Banks int

	// Requests by kind.
	Reads      uint64
	Writebacks uint64
	Prefetches uint64

	// Row-buffer outcomes. RowHits hit the open row, RowClosed found the
	// bank precharged, RowConflicts had to close another row first.
	RowHits      uint64
	RowClosed    uint64
	RowConflicts uint64

	// Queue pressure: depth of the issuing bank's pending queue sampled at
	// every enqueue (average and maximum).
	AvgQueueDepth float64
	MaxQueueDepth int

	// RowFactor is the request-weighted mean service-time factor relative
	// to a closed-row access (1.0 ≡ the bus model's flat latency); it is
	// the factor the model folds into LatencyMultiplier.
	RowFactor float64

	// CoreFactors are the per-core relative latency factors the scheduler
	// produced (request-weighted mean 1.0). Index = core id.
	CoreFactors []float64 `json:",omitempty"`
}

// Total returns the total request count.
func (s *Stats) Total() uint64 { return s.Reads + s.Writebacks + s.Prefetches }

// RowHitRate returns the fraction of requests that hit an open row.
func (s *Stats) RowHitRate() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.RowHits) / float64(t)
	}
	return 0
}

// RowConflictRate returns the fraction of requests that closed another row.
func (s *Stats) RowConflictRate() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.RowConflicts) / float64(t)
	}
	return 0
}
