package memsys

import (
	"fmt"
	"strings"
)

// PolicyName names a registered memory-scheduling policy. Typed like
// apprt's allocator names so call sites cannot silently pass arbitrary
// strings where a registry key is meant.
type PolicyName string

// The registered policies. All four are the classics the MemSchedSim
// lineage compares; each is reduced here to its ordering rule over a bank's
// pending window (see DESIGN.md §10 for the simplifications).
const (
	// PolicyFRFCFS is first-ready, first-come-first-served: row hits
	// first, then oldest. The de-facto hardware baseline.
	PolicyFRFCFS PolicyName = "frfcfs"
	// PolicyATLAS serves the core with the least attained service first
	// (long-term fairness via service accounting).
	PolicyATLAS PolicyName = "atlas"
	// PolicyTCM clusters cores into latency-sensitive vs
	// bandwidth-intensive by demand and prioritizes the former.
	PolicyTCM PolicyName = "tcm"
	// PolicyBLISS blacklists cores that streak (4 consecutive services)
	// and deprioritizes them until a periodic clear.
	PolicyBLISS PolicyName = "bliss"
)

// DefaultPolicy is the policy a DRAM memory system uses when none is named.
const DefaultPolicy = PolicyFRFCFS

// PolicyDesc describes one registered scheduling policy; the table drives
// CLI usage, -list output and the EXPERIMENTS.md policy table, the same way
// the allocator and experiment registries drive theirs.
type PolicyDesc struct {
	Name PolicyName
	// Ref cites the paper the policy comes from.
	Ref string
	// Doc is the one-line ordering rule.
	Doc string
}

// policyRegistry is the authoritative policy table. Order is presentation
// order everywhere (usage, -list, docs, experiment sweeps).
var policyRegistry = []PolicyDesc{
	{
		Name: PolicyFRFCFS,
		Ref:  "Rixner+ ISCA'00",
		Doc:  "first-ready FCFS: open-row hits first, then oldest request",
	},
	{
		Name: PolicyATLAS,
		Ref:  "Kim+ HPCA'10",
		Doc:  "least-attained-service core first; ties broken FR-FCFS",
	},
	{
		Name: PolicyTCM,
		Ref:  "Kim+ MICRO'10",
		Doc:  "latency-sensitive cluster (low demand) over bandwidth-intensive",
	},
	{
		Name: PolicyBLISS,
		Ref:  "Subramanian+ ICCD'14",
		Doc:  "blacklist cores after 4 consecutive services; periodic clear",
	},
}

// Policies returns the registered policy descriptors in presentation order.
// The slice is a copy; callers may not mutate the registry.
func Policies() []PolicyDesc {
	out := make([]PolicyDesc, len(policyRegistry))
	copy(out, policyRegistry)
	return out
}

// PolicyNames returns the registered policy names in presentation order.
func PolicyNames() []PolicyName {
	out := make([]PolicyName, len(policyRegistry))
	for i, d := range policyRegistry {
		out[i] = d.Name
	}
	return out
}

// PolicyByName resolves a policy name, with the valid candidates in the
// error so a typo at any entry point (CLI flag, serve JSON, Study option)
// names its own fix.
func PolicyByName(name PolicyName) (PolicyDesc, error) {
	for _, d := range policyRegistry {
		if d.Name == name {
			return d, nil
		}
	}
	return PolicyDesc{}, fmt.Errorf("memsys: unknown scheduling policy %q (valid: %v)", name, PolicyNames())
}

// UsagePolicies renders the policy table for CLI -h output, one line per
// policy, matching the experiment registry's usage format.
func UsagePolicies() string {
	var b strings.Builder
	for _, d := range policyRegistry {
		fmt.Fprintf(&b, "  %-8s %-22s %s\n", d.Name, d.Ref, d.Doc)
	}
	return b.String()
}

// PoliciesMarkdown renders the policy table as a Markdown table for
// EXPERIMENTS.md; a sync test pins the committed file to this output.
func PoliciesMarkdown() string {
	var b strings.Builder
	b.WriteString("| Policy | Reference | Ordering rule |\n")
	b.WriteString("|--------|-----------|---------------|\n")
	for _, d := range policyRegistry {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", d.Name, d.Ref, d.Doc)
	}
	return b.String()
}

// request is one pending transaction in a bank queue.
type request struct {
	row  int64
	seq  uint64
	core int32
	kind Kind
}

// scheduler orders one bank's pending window. pick returns the index (into
// pending, which is in arrival order) of the request to service next given
// the bank's open row (-1 = precharged); served notifies the scheduler of
// the service so it can maintain per-core state. Implementations must be
// deterministic: equal-priority ties always break to the oldest request.
type scheduler interface {
	pick(pending []request, openRow int64) int
	served(core int32, units float64)
}

// newScheduler builds the named policy's scheduler for nCores cores. The
// caller has already validated the name via PolicyByName.
func newScheduler(name PolicyName, nCores int) scheduler {
	switch name {
	case PolicyFRFCFS:
		return &frfcfs{}
	case PolicyATLAS:
		return &atlas{attained: make([]float64, nCores)}
	case PolicyTCM:
		return &tcm{epochReqs: make([]uint64, nCores), bwHeavy: make([]bool, nCores)}
	case PolicyBLISS:
		return &bliss{blacklisted: make([]bool, nCores)}
	default:
		panic(fmt.Sprintf("memsys: unregistered policy %q", name))
	}
}

// pickBest scans pending for the request with the lowest key; ties break to
// the earlier index, which is the older request (pending is arrival-ordered
// and seq increases monotonically). key layers priorities: callers compose
// (classPriority, !rowHit, seq) into a comparable triple via less().
func pickBest(pending []request, less func(a, b int) bool) int {
	best := 0
	for i := 1; i < len(pending); i++ {
		if less(i, best) {
			best = i
		}
	}
	return best
}

// frfcfs: row hits before row misses, oldest first within each class.
type frfcfs struct{}

func (f *frfcfs) pick(pending []request, openRow int64) int {
	return pickBest(pending, func(a, b int) bool {
		ha, hb := pending[a].row == openRow, pending[b].row == openRow
		if ha != hb {
			return ha
		}
		return pending[a].seq < pending[b].seq
	})
}

func (f *frfcfs) served(core int32, units float64) {}

// atlas: the core with the least attained service wins; within a core's
// requests, FR-FCFS rules apply. (The real ATLAS ages service over long
// quanta across all controllers; a single controller over one measured run
// reduces that to monotone per-core accounting.)
type atlas struct {
	attained []float64
}

func (a *atlas) pick(pending []request, openRow int64) int {
	return pickBest(pending, func(x, y int) bool {
		ax, ay := a.attained[pending[x].core], a.attained[pending[y].core]
		if ax != ay {
			return ax < ay
		}
		hx, hy := pending[x].row == openRow, pending[y].row == openRow
		if hx != hy {
			return hx
		}
		return pending[x].seq < pending[y].seq
	})
}

func (a *atlas) served(core int32, units float64) { a.attained[core] += units }

// tcmEpoch is the service count between TCM re-clusterings.
const tcmEpoch = 256

// tcm: every epoch, cores whose demand exceeded the fair share are marked
// bandwidth-intensive; latency-sensitive cores then beat them regardless of
// row state. (The real TCM also shuffles rank among the bandwidth cluster to
// spread slowdown; one rank order per epoch is deterministic and keeps the
// clustering effect, which is what the solver can observe.)
type tcm struct {
	epochReqs []uint64
	bwHeavy   []bool
	services  uint64
}

func (t *tcm) pick(pending []request, openRow int64) int {
	return pickBest(pending, func(a, b int) bool {
		ba, bb := t.bwHeavy[pending[a].core], t.bwHeavy[pending[b].core]
		if ba != bb {
			return !ba
		}
		ha, hb := pending[a].row == openRow, pending[b].row == openRow
		if ha != hb {
			return ha
		}
		return pending[a].seq < pending[b].seq
	})
}

func (t *tcm) served(core int32, units float64) {
	t.epochReqs[core]++
	t.services++
	if t.services%tcmEpoch != 0 {
		return
	}
	// Re-cluster: above fair share of the epoch's traffic = bandwidth-heavy.
	var total uint64
	active := 0
	for _, n := range t.epochReqs {
		total += n
		if n > 0 {
			active++
		}
	}
	if active == 0 {
		return
	}
	fair := total / uint64(active)
	for c, n := range t.epochReqs {
		t.bwHeavy[c] = n > fair
		t.epochReqs[c] = 0
	}
}

// blissStreak is the consecutive-service count that blacklists a core;
// blissClear is the service interval at which the blacklist resets. Both
// are the shape (not the cycle-accurate values) of the BLISS paper.
const (
	blissStreak = 4
	blissClear  = 512
)

// bliss: non-blacklisted cores beat blacklisted ones; FR-FCFS within each
// group. A core that gets blissStreak consecutive services is blacklisted
// until the periodic clear.
type bliss struct {
	blacklisted []bool
	streakCore  int32
	streak      int
	services    uint64
}

func (b *bliss) pick(pending []request, openRow int64) int {
	return pickBest(pending, func(x, y int) bool {
		bx, by := b.blacklisted[pending[x].core], b.blacklisted[pending[y].core]
		if bx != by {
			return !bx
		}
		hx, hy := pending[x].row == openRow, pending[y].row == openRow
		if hx != hy {
			return hx
		}
		return pending[x].seq < pending[y].seq
	})
}

func (b *bliss) served(core int32, units float64) {
	if core == b.streakCore {
		b.streak++
		if b.streak >= blissStreak {
			b.blacklisted[core] = true
		}
	} else {
		b.streakCore, b.streak = core, 1
	}
	b.services++
	if b.services%blissClear == 0 {
		for c := range b.blacklisted {
			b.blacklisted[c] = false
		}
	}
}
