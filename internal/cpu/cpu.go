// Package cpu holds the hardware-event counters and the core timing model
// that turn cache-simulation counts into cycles.
//
// The two evaluation machines differ exactly as the paper describes
// (Section 4.1): the Xeon is a high-frequency out-of-order core that
// overlaps much of its memory stall time with useful work, while the Niagara
// is a low-frequency in-order core that exposes stalls fully but hides them
// across four hardware threads per core. Both behaviours are captured here:
// exposure factors scale individual stalls, and an SMT hiding factor scales
// the summed stall time of the threads sharing a core.
package cpu

// Counters are the per-stream, per-attribution-class hardware event counts
// produced by the cache simulation. They correspond one-for-one to the
// OProfile events the paper reports in Figure 8: total instructions, L1I
// cache misses, L1D cache misses, D-TLB misses, L2 cache misses, and bus
// transactions.
type Counters struct {
	Instr uint64

	L1IAcc, L1IMiss uint64
	L1DAcc, L1DMiss uint64
	TLBMiss         uint64

	// Demand L2 traffic, split by direction because stores drain through
	// store buffers and expose far less latency than loads, and
	// instruction fetches are partially hidden by fetch-ahead.
	L2HitRd, L2HitWr   uint64
	L2MissRd, L2MissWr uint64
	L2HitIF, L2MissIF  uint64

	// PfHit counts demand hits on lines the prefetcher brought in (their
	// memory latency was hidden; they price as L2 hits).
	PfHit uint64

	// Bus transactions by cause: demand line fills, dirty writebacks,
	// and prefetch fills.
	BusRead, BusWrite, BusPf uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instr += o.Instr
	c.L1IAcc += o.L1IAcc
	c.L1IMiss += o.L1IMiss
	c.L1DAcc += o.L1DAcc
	c.L1DMiss += o.L1DMiss
	c.TLBMiss += o.TLBMiss
	c.L2HitRd += o.L2HitRd
	c.L2HitWr += o.L2HitWr
	c.L2MissRd += o.L2MissRd
	c.L2MissWr += o.L2MissWr
	c.L2HitIF += o.L2HitIF
	c.L2MissIF += o.L2MissIF
	c.PfHit += o.PfHit
	c.BusRead += o.BusRead
	c.BusWrite += o.BusWrite
	c.BusPf += o.BusPf
}

// Sub subtracts o from c, for deltas between two snapshots of cumulative
// counters. o must be an earlier snapshot of the same counters.
func (c *Counters) Sub(o Counters) {
	c.Instr -= o.Instr
	c.L1IAcc -= o.L1IAcc
	c.L1IMiss -= o.L1IMiss
	c.L1DAcc -= o.L1DAcc
	c.L1DMiss -= o.L1DMiss
	c.TLBMiss -= o.TLBMiss
	c.L2HitRd -= o.L2HitRd
	c.L2HitWr -= o.L2HitWr
	c.L2MissRd -= o.L2MissRd
	c.L2MissWr -= o.L2MissWr
	c.L2HitIF -= o.L2HitIF
	c.L2MissIF -= o.L2MissIF
	c.PfHit -= o.PfHit
	c.BusRead -= o.BusRead
	c.BusWrite -= o.BusWrite
	c.BusPf -= o.BusPf
}

// IsZero reports whether every counter is zero. The pricing kernel
// accumulates per-quantum deltas in a turn-local Counters array and uses
// this to skip flushing classes the quantum never touched.
func (c Counters) IsZero() bool { return c == Counters{} }

// BusTxns returns the total bus transactions (Figure 8's rightmost bar).
func (c Counters) BusTxns() uint64 { return c.BusRead + c.BusWrite + c.BusPf }

// L2Miss returns total demand L2 misses (data and instruction).
func (c Counters) L2Miss() uint64 { return c.L2MissRd + c.L2MissWr + c.L2MissIF }

// L2Demand returns total demand L2 accesses.
func (c Counters) L2Demand() uint64 {
	return c.L2HitRd + c.L2HitWr + c.L2MissRd + c.L2MissWr + c.L2HitIF + c.L2MissIF
}

// Model is the timing model of one core type.
type Model struct {
	// FreqHz is the core clock.
	FreqHz float64
	// CPI is the base cycles-per-instruction with a perfect memory
	// system (covers issue width and L1-hit latency).
	CPI float64

	// Latencies in core cycles.
	L2HitLat   float64
	MemLat     float64
	TLBMissLat float64

	// ReadExpose and WriteExpose are the fractions of load- and
	// store-miss latency the core actually stalls for. An out-of-order
	// core overlaps much of it (Xeon); an in-order core exposes loads
	// fully (Niagara). IFetchExpose covers instruction fetches, which
	// fetch-ahead hides better than loads.
	ReadExpose, WriteExpose, IFetchExpose float64

	// SMTHideCoeff controls how well extra hardware threads on a core
	// hide each other's stalls: the summed stall time of T threads is
	// scaled by 1/(1+coeff*(T-1)). Zero means no multithreading benefit.
	SMTHideCoeff float64

	// SnoopPerCore adds cycles to every memory access for each *other*
	// active core, modelling coherence/arbitration overhead on a snoopy
	// bus. It is what bends the region allocator's scaling curve past
	// saturation on Xeon.
	SnoopPerCore float64
}

// InstrCycles returns the base execution cycles for c.
func (m Model) InstrCycles(c Counters) float64 {
	return float64(c.Instr) * m.CPI
}

// StallCycles returns the exposed memory stall cycles for c, given the
// current bus latency multiplier and the number of active cores (for snoop
// overhead).
func (m Model) StallCycles(c Counters, busMult float64, activeCores int) float64 {
	snoop := m.SnoopPerCore * float64(activeCores-1)
	memLat := (m.MemLat + snoop) * busMult

	stall := float64(c.TLBMiss) * m.TLBMissLat * m.ReadExpose
	stall += float64(c.L2HitRd) * (m.L2HitLat + snoop/4) * m.ReadExpose
	stall += float64(c.L2HitWr) * (m.L2HitLat + snoop/4) * m.WriteExpose
	stall += float64(c.L2MissRd) * memLat * m.ReadExpose
	stall += float64(c.L2MissWr) * memLat * m.WriteExpose
	stall += float64(c.L2HitIF) * (m.L2HitLat + snoop/4) * m.IFetchExpose
	stall += float64(c.L2MissIF) * memLat * m.IFetchExpose
	return stall
}

// HideFactor returns the multiplier applied to the summed stall time of
// nThreads threads sharing one core.
func (m Model) HideFactor(nThreads int) float64 {
	if nThreads <= 1 || m.SMTHideCoeff <= 0 {
		return 1
	}
	return 1 / (1 + m.SMTHideCoeff*float64(nThreads-1))
}

// CoreTime combines the loads of the threads sharing one core into the
// core's busy time: instruction cycles serialize through the shared
// pipeline, while stalls overlap according to the hide factor.
func (m Model) CoreTime(instrCycles, stallCycles []float64) float64 {
	var instr, stall float64
	for _, v := range instrCycles {
		instr += v
	}
	for _, v := range stallCycles {
		stall += v
	}
	return instr + stall*m.HideFactor(len(instrCycles))
}
