package cpu

import (
	"math"
	"testing"
)

func xeonModel() Model {
	return Model{
		FreqHz: 1.86e9, CPI: 0.75,
		L2HitLat: 14, MemLat: 200, TLBMissLat: 30,
		ReadExpose: 0.6, WriteExpose: 0.15,
		SMTHideCoeff: 0, SnoopPerCore: 2,
	}
}

func niagaraModel() Model {
	return Model{
		FreqHz: 1.2e9, CPI: 1.1,
		L2HitLat: 22, MemLat: 130, TLBMissLat: 120,
		ReadExpose: 1.0, WriteExpose: 0.5,
		SMTHideCoeff: 0.85, SnoopPerCore: 0,
	}
}

func TestCountersAddAndDerived(t *testing.T) {
	a := Counters{Instr: 100, L2MissRd: 3, L2MissWr: 2, BusRead: 5, BusWrite: 1, BusPf: 2,
		L2HitRd: 7, L2HitWr: 1}
	b := Counters{Instr: 50, L2MissRd: 1, BusRead: 1}
	a.Add(b)
	if a.Instr != 150 || a.L2MissRd != 4 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if got := a.BusTxns(); got != 9 {
		t.Fatalf("BusTxns = %d, want 9", got)
	}
	if got := a.L2Miss(); got != 6 {
		t.Fatalf("L2Miss = %d, want 6", got)
	}
	if got := a.L2Demand(); got != 14 {
		t.Fatalf("L2Demand = %d, want 14", got)
	}
}

func TestStallCyclesReadVsWrite(t *testing.T) {
	m := xeonModel()
	read := m.StallCycles(Counters{L2MissRd: 100}, 1, 1)
	write := m.StallCycles(Counters{L2MissWr: 100}, 1, 1)
	if read <= write {
		t.Fatalf("read stalls (%g) should exceed write stalls (%g)", read, write)
	}
	wantRead := 100 * 200 * 0.6
	if math.Abs(read-wantRead) > 1e-9 {
		t.Fatalf("read stalls = %g, want %g", read, wantRead)
	}
}

func TestStallCyclesBusMultiplierScalesMemoryOnly(t *testing.T) {
	m := xeonModel()
	c := Counters{L2MissRd: 100, L2HitRd: 100, TLBMiss: 10}
	base := m.StallCycles(c, 1, 1)
	loaded := m.StallCycles(c, 2, 1)
	memPart := 100 * 200 * 0.6
	if math.Abs((loaded-base)-memPart) > 1e-9 {
		t.Fatalf("bus multiplier added %g cycles, want %g (memory part only)", loaded-base, memPart)
	}
}

func TestSnoopGrowsWithActiveCores(t *testing.T) {
	m := xeonModel()
	c := Counters{L2MissRd: 1000}
	t1 := m.StallCycles(c, 1, 1)
	t8 := m.StallCycles(c, 1, 8)
	if t8 <= t1 {
		t.Fatalf("snoop overhead missing: 1 core %g, 8 cores %g", t1, t8)
	}
}

func TestHideFactor(t *testing.T) {
	n := niagaraModel()
	if got := n.HideFactor(1); got != 1 {
		t.Errorf("HideFactor(1) = %g, want 1", got)
	}
	h2, h4 := n.HideFactor(2), n.HideFactor(4)
	if !(h4 < h2 && h2 < 1) {
		t.Errorf("hide factors not decreasing: h2=%g h4=%g", h2, h4)
	}
	x := xeonModel()
	if got := x.HideFactor(4); got != 1 {
		t.Errorf("non-SMT model HideFactor(4) = %g, want 1", got)
	}
}

func TestCoreTimeSMTHidesStallsNotInstructions(t *testing.T) {
	n := niagaraModel()
	instr := []float64{1000, 1000, 1000, 1000}
	stall := []float64{2000, 2000, 2000, 2000}
	got := n.CoreTime(instr, stall)
	// Instructions serialize: at least 4000 cycles.
	if got < 4000 {
		t.Fatalf("CoreTime = %g, below serialized instruction time", got)
	}
	// Stalls must be hidden: far below the 4000+8000 unhidden sum.
	if got > 4000+8000*0.5 {
		t.Fatalf("CoreTime = %g, stalls not hidden", got)
	}
	single := n.CoreTime(instr[:1], stall[:1])
	if single != 3000 {
		t.Fatalf("single-thread CoreTime = %g, want 3000", single)
	}
}

func TestNiagaraExposesMoreStallPerMiss(t *testing.T) {
	c := Counters{L2MissRd: 1000}
	x, n := xeonModel(), niagaraModel()
	xs := x.StallCycles(c, 1, 1) / (1000 * x.MemLat)
	ns := n.StallCycles(c, 1, 1) / (1000 * n.MemLat)
	if ns <= xs {
		t.Fatalf("in-order core should expose more stall per miss: xeon %g, niagara %g", xs, ns)
	}
}
