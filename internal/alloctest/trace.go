package alloctest

import (
	"fmt"

	"webmm/internal/heap"
)

// RunTrace interprets data as a deterministic allocation trace against a
// heap.Checked wrapper of the allocator mk builds, mixing legitimate calls,
// deliberate misuse (double free, invalid free, realloc misuse), and
// injected mapping failures. A shadow model tracks what the wrapper should
// have recorded; any divergence — a missed misuse, a phantom error, a
// duplicate live address — is returned as an error. Panics are not
// recovered: under `go test -fuzz` a panicking allocator is itself the
// finding.
//
// The trace format is byte-oriented and total: every input decodes to some
// trace, so fuzzers can mutate freely. Each step reads an opcode byte
// (interpreted modulo the opcode count) and its operands from the stream;
// a truncated stream ends the trace.
func RunTrace(mk Maker, data []byte) (*heap.Checked, error) {
	env := NewEnv(11)
	c := heap.NewChecked(mk(env))
	c.CheckLeaks = false

	type obj struct {
		p    heap.Ptr
		size uint64
	}
	var live []obj          // wrapper-visible live objects, in birth order
	var freed []heap.Ptr    // freed per-object and not yet reused
	expect := map[heap.ErrKind]uint64{}
	expectTotal := uint64(0)
	misuse := func(k heap.ErrKind) {
		expect[k]++
		expectTotal++
	}
	// shadowMalloc reconciles the shadow model with one successful
	// allocation: the address is live, and if it recycles a freed
	// address that address is no longer "freed".
	shadowMalloc := func(p heap.Ptr, size uint64) error {
		for _, o := range live {
			if o.p == p {
				return fmt.Errorf("malloc returned live address %#x", uint64(p))
			}
		}
		for i, q := range freed {
			if q == p {
				freed = append(freed[:i], freed[i+1:]...)
				break
			}
		}
		live = append(live, obj{p, size})
		return nil
	}

	pos := 0
	next := func() (byte, bool) {
		if pos >= len(data) {
			return 0, false
		}
		b := data[pos]
		pos++
		return b, true
	}
	invalid := heap.Ptr(1 << 42) // beyond the test address space: never allocated

	for {
		op, ok := next()
		if !ok {
			break
		}
		switch op % 10 {
		case 0, 1: // small malloc
			b, _ := next()
			size := uint64(b) + 1
			if p := c.Malloc(size); p != 0 {
				if err := shadowMalloc(p, size); err != nil {
					return c, err
				}
			}
		case 2: // large malloc (up to ~16 MiB: crosses every size-class regime)
			b1, _ := next()
			b2, _ := next()
			size := (uint64(b1)<<8|uint64(b2))*256 + 1
			if p := c.Malloc(size); p != 0 {
				if err := shadowMalloc(p, size); err != nil {
					return c, err
				}
			}
		case 3: // free a live object (clean)
			if len(live) == 0 {
				continue
			}
			b, _ := next()
			i := int(b) % len(live)
			o := live[i]
			c.Free(o.p)
			if c.SupportsFree() {
				// The wrapper retires the object; without per-object
				// free the call is a forwarded no-op and the object
				// stays live in the wrapper's books.
				live = append(live[:i], live[i+1:]...)
				freed = append(freed, o.p)
			}
		case 4: // double free (misuse when the heap has per-object free)
			if len(freed) == 0 || !c.SupportsFree() {
				continue
			}
			b, _ := next()
			c.Free(freed[int(b)%len(freed)])
			misuse(heap.ErrDoubleFree)
		case 5: // free of a never-allocated pointer
			if !c.SupportsFree() {
				continue
			}
			invalid += 64
			c.Free(invalid)
			misuse(heap.ErrInvalidFree)
		case 6: // realloc a live object with the correct oldSize (clean)
			if len(live) == 0 {
				continue
			}
			b, _ := next()
			nb, _ := next()
			i := int(b) % len(live)
			o := live[i]
			newSize := uint64(nb)*16 + 1
			before := len(c.Errors())
			np := c.Realloc(o.p, o.size, newSize)
			if len(c.Errors()) != before {
				return c, fmt.Errorf("clean realloc(%#x, %d, %d) recorded %v",
					uint64(o.p), o.size, newSize, c.Errors()[len(c.Errors())-1])
			}
			if np == 0 {
				continue // OOM: the old object stays valid
			}
			if np != o.p {
				live = append(live[:i], live[i+1:]...)
				if c.SupportsFree() {
					freed = append(freed, o.p)
				}
				if err := shadowMalloc(np, newSize); err != nil {
					return c, err
				}
			} else {
				live[i].size = newSize
			}
		case 7: // realloc with a contradicting oldSize (misuse)
			if len(live) == 0 {
				continue
			}
			b, _ := next()
			o := live[int(b)%len(live)]
			if np := c.Realloc(o.p, o.size+1, o.size); np != 0 {
				return c, fmt.Errorf("realloc with wrong oldSize succeeded: %#x", uint64(np))
			}
			misuse(heap.ErrInvalidRealloc)
		case 8: // bulk free
			if !c.SupportsFreeAll() {
				continue
			}
			c.FreeAll()
			live, freed = nil, nil
		case 9: // arm a one-shot mapping failure: the next Map OOMs
			fired := false
			env.AS.SetFaultInjector(func(uint64) bool {
				if fired {
					return false
				}
				fired = true
				return true
			})
		}
		if len(live) > 4096 {
			// Bound wrapper bookkeeping on adversarial all-malloc inputs.
			if c.SupportsFreeAll() {
				c.FreeAll()
				live, freed = nil, nil
			} else {
				for _, o := range live {
					c.Free(o.p)
					freed = append(freed, o.p)
				}
				live = nil
			}
		}
	}

	// The wrapper must have seen exactly the misuse we committed: every
	// error accounted for (recorded or dropped past the cap), and no
	// phantom detections on the clean calls.
	recorded := uint64(len(c.Errors())) + c.Dropped()
	if recorded != expectTotal {
		return c, fmt.Errorf("recorded %d misuses (dropped %d), expected %d",
			len(c.Errors()), c.Dropped(), expectTotal)
	}
	if c.Dropped() == 0 {
		got := map[heap.ErrKind]uint64{}
		for _, e := range c.Errors() {
			got[e.Kind]++
		}
		for k, want := range expect {
			if got[k] != want {
				return c, fmt.Errorf("misuse kind %v: recorded %d, expected %d", k, got[k], want)
			}
		}
	}
	if c.SupportsFree() && c.LiveObjects() != len(live) {
		return c, fmt.Errorf("wrapper tracks %d live objects, shadow has %d",
			c.LiveObjects(), len(live))
	}
	return c, nil
}
