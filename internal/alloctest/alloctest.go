// Package alloctest provides a conformance suite that every allocator in
// the study must pass. Each allocator package's tests invoke Run with a
// constructor; allocator-specific behaviour (coalescing, scavenging,
// fullness groups, ...) is tested in the allocator's own package.
package alloctest

import (
	"testing"

	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// NewEnv builds a fresh Env for allocator construction in tests.
func NewEnv(seed uint64) *sim.Env {
	as := mem.NewAddressSpace(0, 1<<41, mem.LargePageShiftXeon)
	return sim.NewEnv(as, sim.NewCodeLayout(16*mem.KiB, 128*mem.KiB), seed)
}

// Maker constructs the allocator under test against the given Env.
type Maker func(env *sim.Env) heap.Allocator

// Run executes the conformance suite.
func Run(t *testing.T, mk Maker) {
	t.Run("DistinctLiveAddresses", func(t *testing.T) { distinctLive(t, mk) })
	t.Run("Alignment", func(t *testing.T) { alignment(t, mk) })
	t.Run("StatsCounting", func(t *testing.T) { statsCounting(t, mk) })
	t.Run("ReallocGrowShrink", func(t *testing.T) { reallocGrowShrink(t, mk) })
	t.Run("EmitsAllocatorWork", func(t *testing.T) { emitsWork(t, mk) })
	t.Run("FootprintGrowsAndResets", func(t *testing.T) { footprint(t, mk) })
	t.Run("FreeReuse", func(t *testing.T) { freeReuse(t, mk) })
	t.Run("FreeAllReuse", func(t *testing.T) { freeAllReuse(t, mk) })
	t.Run("SizeSweep", func(t *testing.T) { sizeSweep(t, mk) })
}

func distinctLive(t *testing.T, mk Maker) {
	a := mk(NewEnv(1))
	live := map[heap.Ptr]uint64{}
	rng := sim.NewRNG(2)
	for i := 0; i < 3000; i++ {
		size := rng.Uint64n(1500) + 1
		p := a.Malloc(size)
		if p == 0 {
			t.Fatalf("Malloc(%d) returned null", size)
		}
		if old, dup := live[p]; dup {
			t.Fatalf("address %#x (size %d) already live with size %d", p, size, old)
		}
		live[p] = size
		if a.SupportsFree() && rng.Bool(0.5) && len(live) > 1 {
			for q := range live {
				a.Free(q)
				delete(live, q)
				break
			}
		}
	}
}

func alignment(t *testing.T, mk Maker) {
	a := mk(NewEnv(3))
	for _, size := range []uint64{1, 7, 8, 13, 100, 1000, 5000} {
		p := a.Malloc(size)
		if uint64(p)%8 != 0 {
			t.Errorf("Malloc(%d) = %#x, not 8-byte aligned", size, p)
		}
	}
}

func statsCounting(t *testing.T, mk Maker) {
	a := mk(NewEnv(4))
	p := a.Malloc(100)
	q := a.Malloc(200)
	_ = q
	if a.SupportsFree() {
		a.Free(p)
	}
	s := a.Stats()
	if s.Mallocs < 2 {
		t.Errorf("Mallocs = %d, want >= 2", s.Mallocs)
	}
	if s.BytesRequested < 300 {
		t.Errorf("BytesRequested = %d, want >= 300", s.BytesRequested)
	}
	if s.BytesAllocated < s.BytesRequested {
		t.Errorf("BytesAllocated %d < BytesRequested %d (rounding must not shrink)",
			s.BytesAllocated, s.BytesRequested)
	}
}

func reallocGrowShrink(t *testing.T, mk Maker) {
	a := mk(NewEnv(5))
	p := a.Malloc(64)
	q := a.Realloc(p, 64, 4096)
	if q == 0 {
		t.Fatal("grow realloc returned null")
	}
	r := a.Realloc(q, 4096, 16)
	if r == 0 {
		t.Fatal("shrink realloc returned null")
	}
	if got := a.Stats().Reallocs; got != 2 {
		t.Errorf("Reallocs = %d, want 2", got)
	}
}

func emitsWork(t *testing.T, mk Maker) {
	env := NewEnv(6)
	a := mk(env)
	env.Drain()
	p := a.Malloc(128)
	if a.SupportsFree() {
		a.Free(p)
	}
	instr := env.Instructions()
	if instr[sim.ClassAlloc] == 0 {
		t.Fatal("allocator emitted no ClassAlloc instructions")
	}
	if instr[sim.ClassApp] != 0 {
		t.Fatalf("allocator emitted %d application instructions", instr[sim.ClassApp])
	}
}

func footprint(t *testing.T, mk Maker) {
	a := mk(NewEnv(7))
	a.ResetPeak()
	base := a.PeakFootprint()
	var ptrs []heap.Ptr
	for i := 0; i < 4000; i++ {
		ptrs = append(ptrs, a.Malloc(1024))
	}
	grown := a.PeakFootprint()
	if grown < base+2*mem.MiB {
		t.Errorf("footprint %d -> %d after 4 MiB of allocation", base, grown)
	}
	// Release and reset: peak must not keep growing on its own.
	switch {
	case a.SupportsFreeAll():
		a.FreeAll()
	case a.SupportsFree():
		for _, p := range ptrs {
			a.Free(p)
		}
	}
	a.ResetPeak()
	after := a.PeakFootprint()
	if after > grown {
		t.Errorf("footprint after release/reset = %d > peak %d", after, grown)
	}
}

func freeReuse(t *testing.T, mk Maker) {
	a := mk(NewEnv(8))
	if !a.SupportsFree() {
		t.Skip("allocator has no per-object free")
	}
	// Free then reallocate the same sizes: memory must be reused, not
	// grown (this is the bus-traffic property the paper cares about).
	var ptrs []heap.Ptr
	for i := 0; i < 2000; i++ {
		ptrs = append(ptrs, a.Malloc(256))
	}
	for _, p := range ptrs {
		a.Free(p)
	}
	a.ResetPeak()
	peak := a.PeakFootprint()
	reused := 0
	seen := map[heap.Ptr]bool{}
	for _, p := range ptrs {
		seen[p] = true
	}
	for i := 0; i < 2000; i++ {
		if seen[a.Malloc(256)] {
			reused++
		}
	}
	if reused < 1800 {
		t.Errorf("only %d/2000 freed objects were reused", reused)
	}
	if got := a.PeakFootprint(); got > peak+mem.MiB {
		t.Errorf("footprint grew from %d to %d despite free-list reuse", peak, got)
	}
}

func freeAllReuse(t *testing.T, mk Maker) {
	a := mk(NewEnv(9))
	if !a.SupportsFreeAll() {
		t.Skip("allocator has no bulk free")
	}
	for txn := 0; txn < 5; txn++ {
		for i := 0; i < 1000; i++ {
			if p := a.Malloc(128); p == 0 {
				t.Fatal("null after FreeAll")
			}
		}
		a.FreeAll()
		a.ResetPeak()
	}
	// Footprint must be bounded: transaction 5 must not use 5x the
	// memory of transaction 1.
	for i := 0; i < 1000; i++ {
		a.Malloc(128)
	}
	if fp := a.PeakFootprint(); fp > 64*mem.MiB {
		t.Errorf("footprint %d after repeated FreeAll; heap is leaking across transactions", fp)
	}
}

func sizeSweep(t *testing.T, mk Maker) {
	a := mk(NewEnv(10))
	// Exercise every size regime including large objects.
	for _, size := range []uint64{1, 8, 64, 127, 128, 129, 511, 512, 513,
		1024, 4096, 16 * 1024, 64 * 1024, 300 * 1024} {
		p := a.Malloc(size)
		if p == 0 {
			t.Fatalf("Malloc(%d) = null", size)
		}
		if a.SupportsFree() {
			a.Free(p)
		}
	}
}
