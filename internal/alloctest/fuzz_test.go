package alloctest_test

import (
	"testing"

	"webmm/internal/alloc/dlm"
	"webmm/internal/alloc/hoard"
	"webmm/internal/alloc/nursery"
	"webmm/internal/alloc/obstack"
	"webmm/internal/alloc/reap"
	"webmm/internal/alloc/region"
	"webmm/internal/alloc/tcm"
	"webmm/internal/alloc/zend"
	"webmm/internal/alloctest"
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/mem"
	"webmm/internal/sim"
)

// makers enumerates every allocator family so the trace interpreter (and
// its fuzz targets) exercise each one's Map/Free/Realloc paths.
func makers() map[string]alloctest.Maker {
	return map[string]alloctest.Maker{
		"zend":     func(env *sim.Env) heap.Allocator { return zend.New(env) },
		"dlm":      func(env *sim.Env) heap.Allocator { return dlm.New(env) },
		"tcm":      func(env *sim.Env) heap.Allocator { return tcm.New(env) },
		"hoard":    func(env *sim.Env) heap.Allocator { return hoard.New(env) },
		"reap":     func(env *sim.Env) heap.Allocator { return reap.New(env) },
		"region":   func(env *sim.Env) heap.Allocator { return region.New(env) },
		"obstack":  func(env *sim.Env) heap.Allocator { return obstack.New(env, 0) },
		"ddmalloc": func(env *sim.Env) heap.Allocator { return core.New(env, core.DefaultOptions()) },
		"nursery":  func(env *sim.Env) heap.Allocator { return nursery.New(env, mem.MiB) },
	}
}

// seedTraces are hand-written traces planted in every fuzz corpus: a clean
// churn, a misuse storm, and an OOM-injected run (see RunTrace's opcodes).
func seedTraces() [][]byte {
	return [][]byte{
		// Clean churn: mallocs, frees, reallocs, bulk free.
		{0x00, 0x10, 0x00, 0x80, 0x01, 0xff, 0x02, 0x01, 0x00,
			0x03, 0x00, 0x06, 0x00, 0x20, 0x03, 0x00, 0x08},
		// Misuse storm: double free, invalid free, realloc misuse.
		{0x00, 0x20, 0x00, 0x30, 0x03, 0x00, 0x04, 0x00, 0x05,
			0x07, 0x00, 0x08},
		// Injected OOM around a large allocation and a realloc grow.
		{0x09, 0x02, 0xff, 0xff, 0x00, 0x40, 0x09, 0x06, 0x00, 0xff},
	}
}

func fuzzTrace(f *testing.F, mk alloctest.Maker) {
	for _, seed := range seedTraces() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := alloctest.RunTrace(mk, data); err != nil {
			t.Fatal(err)
		}
	})
}

func FuzzCheckedZend(f *testing.F)     { fuzzTrace(f, makers()["zend"]) }
func FuzzCheckedGlibc(f *testing.F)    { fuzzTrace(f, makers()["dlm"]) }
func FuzzCheckedDDmalloc(f *testing.F) { fuzzTrace(f, makers()["ddmalloc"]) }
func FuzzCheckedRegion(f *testing.F)   { fuzzTrace(f, makers()["region"]) }
func FuzzCheckedNursery(f *testing.F)  { fuzzTrace(f, makers()["nursery"]) }

// TestRunTraceAllFamilies drives every allocator family through the seed
// traces plus deterministic pseudo-random ones, so plain `go test` covers
// the interpreter end to end without the fuzz engine.
func TestRunTraceAllFamilies(t *testing.T) {
	for name, mk := range makers() {
		t.Run(name, func(t *testing.T) {
			for i, seed := range seedTraces() {
				if _, err := alloctest.RunTrace(mk, seed); err != nil {
					t.Errorf("seed %d: %v", i, err)
				}
			}
			rng := sim.NewRNG(42)
			for round := 0; round < 4; round++ {
				data := make([]byte, 2000)
				for i := range data {
					data[i] = byte(rng.Uint64())
				}
				if _, err := alloctest.RunTrace(mk, data); err != nil {
					t.Errorf("random trace %d: %v", round, err)
				}
			}
		})
	}
}
