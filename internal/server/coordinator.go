// Fleet coordinator: `webmm serve -workers http://a,http://b,...` turns an
// instance into a thin dispatcher that plans experiments with the ordinary
// planners and executes every cell remotely over the existing single-cell
// POST /run protocol. The coordinator's Runners keep all their machinery —
// memoization, the shared cell cache, and crucially the singleflight — so a
// thundering herd of identical client requests collapses to ONE upstream
// call per cell fleet-wide, not one per client. Dispatch adds two
// reliability moves on top:
//
//   - failover: a worker that cannot be reached (or turns the request away)
//     costs one immediate retry on the next shard, not a failed cell;
//   - hedging: a cell that exceeds HedgeAfter × the observed p50 cell time
//     (the same webmm_cell_seconds histogram the Retry-After estimate uses)
//     is launched on a second shard and the first answer wins. The loser's
//     HTTP request is cancelled, which the worker propagates into the
//     cell's context — the hedged-away slot frees instead of simulating for
//     nobody.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"net/url"
	"strings"
	"time"

	"webmm/internal/experiments"
	"webmm/internal/telemetry"
)

// fleet is the coordinator's dispatch state.
type fleet struct {
	s          *Server
	workers    []string
	client     *http.Client
	hedgeAfter float64 // multiple of observed p50; <= 0 disables hedging
}

// newFleet validates the worker list. Hedging needs the default filled in
// by Server.New (4× p50) unless the caller disabled it with a negative
// HedgeAfter.
func newFleet(s *Server, workers []string, hedgeAfter float64) (*fleet, error) {
	if len(workers) == 0 {
		return nil, errors.New("coordinator needs at least one worker URL")
	}
	clean := make([]string, 0, len(workers))
	for _, w := range workers {
		w = strings.TrimRight(strings.TrimSpace(w), "/")
		u, err := url.Parse(w)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("bad worker URL %q (want http://host:port)", w)
		}
		clean = append(clean, w)
	}
	return &fleet{
		s:       s,
		workers: clean,
		// No overall client timeout: cells legitimately run for minutes and
		// the per-request context already bounds each dispatch.
		client:     &http.Client{},
		hedgeAfter: hedgeAfter,
	}, nil
}

// pick maps a cell to its home shard by hashing the cell key, so repeated
// requests for one cell land on one worker and hit that worker's memo and
// warm state. Hedges and failovers walk to the next shard.
func (f *fleet) pick(c experiments.Cell) int {
	h := fnv.New32a()
	fmt.Fprint(h, c.Key())
	return int(h.Sum32() % uint32(len(f.workers)))
}

// hedgeDelay derives the hedge trigger from the observed median cell wall
// time. Before any cell has resolved there is no signal (p50 = 0) and no
// hedge — the first cells define "slow". The delay is clamped below so a
// cache-hit-dominated median (sub-millisecond) cannot make the coordinator
// hedge every dispatch reflexively.
func (f *fleet) hedgeDelay() time.Duration {
	if f.hedgeAfter <= 0 {
		return 0
	}
	p50 := f.s.tel.Metrics().Histogram("webmm_cell_seconds", "wall time per resolved cell",
		[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}, nil).Quantile(0.5)
	if p50 <= 0 {
		return 0
	}
	d := time.Duration(f.hedgeAfter * p50 * float64(time.Second))
	if d < 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	if d > 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// remoteFailure is a worker's verdict that the cell itself failed (it ran
// and reported Failed). It is final — retrying a deterministic failure on
// another shard would just fail again — except when the worker marked it
// environmental (its own timeout or cancellation), which unwraps to
// ErrTransient so the coordinator's runner does not memoize it.
type remoteFailure struct {
	worker        string
	msg           string
	environmental bool
}

func (e *remoteFailure) Error() string {
	return fmt.Sprintf("worker %s: %s", e.worker, e.msg)
}

func (e *remoteFailure) Unwrap() error {
	if e.environmental {
		return experiments.ErrTransient
	}
	return nil
}

// workerBody renders the single-cell /run request for one dispatch. The
// cell goes verbatim (the "cell" field — RestartEvery is already scaled,
// Budget already set), and every config field is sent explicitly so the
// worker simulates under the coordinator's configuration, not its own
// defaults. Fidelity spells the zero value out as "full" for the same
// reason.
func (f *fleet) workerBody(k runnerKey, c experiments.Cell) []byte {
	req := runRequest{
		CellSpec:       &c,
		Scale:          k.cfg.Scale,
		Warmup:         k.cfg.Warmup,
		Measure:        k.cfg.Measure,
		Seed:           k.cfg.Seed,
		XeonLargePages: k.cfg.XeonLargePages,
		Fidelity:       k.cfg.Fidelity,
		Faults:         k.faults,
		TimeoutMS:      int(k.timeout / time.Millisecond),
	}
	if req.Fidelity == "" {
		req.Fidelity = experiments.FidelityFull
	}
	body, _ := json.Marshal(req)
	return body
}

// exec is the coordinator Runner's Exec hook: run one cell somewhere on the
// fleet and return its result. The runner above this call still owns
// memoization, the shared cache, and singleflight; exec only moves one
// cell's work to one (or, hedged, two) shards.
func (f *fleet) exec(ctx context.Context, k runnerKey, c experiments.Cell) (experiments.CellResult, error) {
	body := f.workerBody(k, c)
	primary := f.pick(c)
	n := len(f.workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // the losing hedge's request dies with the dispatch

	type answer struct {
		res experiments.CellResult
		err error
		w   int
	}
	ch := make(chan answer, 2) // buffered: a loser's late send never blocks
	met := f.s.tel.Metrics()
	launch := func(w int) {
		met.Counter("webmm_fleet_dispatch_total",
			"cells dispatched to fleet workers", telemetry.Labels{"worker": f.workers[w]}).Inc()
		go func() {
			res, err := f.call(ctx, w, body)
			ch <- answer{res, err, w}
		}()
	}
	launch(primary)
	launched, outstanding := 1, 1

	var hedge <-chan time.Time
	if n > 1 {
		if d := f.hedgeDelay(); d > 0 {
			t := time.NewTimer(d)
			defer t.Stop()
			hedge = t.C
		}
	}

	var lastErr error
	for {
		select {
		case a := <-ch:
			outstanding--
			if a.err == nil {
				if a.w != primary {
					met.Counter("webmm_fleet_hedge_wins_total",
						"hedged or failed-over dispatches answered by the secondary shard", nil).Inc()
				}
				return a.res, nil
			}
			var rf *remoteFailure
			if errors.As(a.err, &rf) {
				// The cell ran and failed; that IS the answer.
				return a.res, a.err
			}
			lastErr = a.err
			// Transport-level failure: fail over to the next shard once.
			if launched < 2 && n > 1 && ctx.Err() == nil {
				launch((primary + 1) % n)
				launched++
				outstanding++
				continue
			}
			if outstanding == 0 {
				return experiments.CellResult{Cell: c, Failed: true},
					fmt.Errorf("%w: %v", experiments.ErrTransient, lastErr)
			}
		case <-hedge:
			hedge = nil
			if launched < 2 {
				met.Counter("webmm_fleet_hedges_total",
					"cells hedged onto a second shard after exceeding the p50-derived delay", nil).Inc()
				launch((primary + 1) % n)
				launched++
				outstanding++
			}
		case <-ctx.Done():
			return experiments.CellResult{Cell: c, Failed: true}, ctx.Err()
		}
	}
}

// call executes one cell on one worker and decodes its NDJSON stream down
// to the final "result" event. Non-200 statuses and truncated streams are
// transport errors (the caller may fail over or hedge); a decoded result
// with Failed set comes back as a remoteFailure.
func (f *fleet) call(ctx context.Context, w int, body []byte) (experiments.CellResult, error) {
	worker := f.workers[w]
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/run", bytes.NewReader(body))
	if err != nil {
		return experiments.CellResult{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return experiments.CellResult{}, fmt.Errorf("worker %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return experiments.CellResult{}, fmt.Errorf("worker %s: HTTP %d", worker, resp.StatusCode)
	}
	var line struct {
		Event         string                  `json:"event"`
		Failed        bool                    `json:"failed"`
		Error         string                  `json:"error"`
		Environmental bool                    `json:"environmental"`
		Result        *experiments.CellResult `json:"result"`
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxCacheEntryLine)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		line.Error, line.Environmental, line.Result = "", false, nil
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return experiments.CellResult{}, fmt.Errorf("worker %s: bad progress line: %w", worker, err)
		}
		if line.Event != "result" || line.Result == nil {
			continue
		}
		res := *line.Result
		if res.Failed {
			msg := line.Error
			if msg == "" {
				msg = "cell failed"
			}
			return res, &remoteFailure{worker: worker, msg: msg, environmental: line.Environmental}
		}
		return res, nil
	}
	if err := sc.Err(); err != nil {
		return experiments.CellResult{}, fmt.Errorf("worker %s: %w", worker, err)
	}
	return experiments.CellResult{}, fmt.Errorf("worker %s: stream ended without a result", worker)
}

// maxCacheEntryLine bounds one NDJSON progress line from a worker; result
// events embed a full CellResult, which is a few KB.
const maxCacheEntryLine = 1 << 20
