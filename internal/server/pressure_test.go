package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"webmm/internal/budget"
	"webmm/internal/experiments"
	"webmm/internal/mem"
	"webmm/internal/workload"
)

// postRunRaw POSTs a /run body and returns the status plus the decoded
// NDJSON lines as raw maps (for events progressLine does not model).
func postRunRaw(t *testing.T, url, body string) (int, []map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
		lines = append(lines, m)
	}
	return resp.StatusCode, lines
}

// TestRetryAfterComputed pins the Retry-After estimate white-box: the work
// ahead of the client times the observed median cell latency, clamped to
// [1, 300], with a 1-second floor before any cell has resolved.
func TestRetryAfterComputed(t *testing.T) {
	s, err := New(Config{Jobs: 1, QueueDepth: 2, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Empty histogram: the floor.
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("empty-history estimate = %ds, want the 1s floor", got)
	}

	// Two 2-second cells: the (1,10] bucket holds both, p50 interpolates to
	// 5.5s. Empty queue → ceil(1 × 5.5) = 6.
	h := s.tel.Metrics().Histogram("webmm_cell_seconds", "", nil, nil)
	h.Observe(2)
	h.Observe(2)
	if got := s.retryAfterSeconds(); got != 6 {
		t.Errorf("estimate = %ds, want 6 (ceil of 1 job x 5.5s p50)", got)
	}

	// Park the worker and put one job in the queue: two jobs ahead of a new
	// client → ceil(2 × 5.5) = 11.
	ctx, release := context.WithCancel(context.Background())
	defer release()
	r, err := s.runnerFor(runnerKey{cfg: s.cfg.Sim})
	if err != nil {
		t.Fatal(err)
	}
	blocker := func() *job {
		return &job{ctx: ctx, r: r,
			cell:   experiments.Cell{Platform: "xeon", Alloc: "region", Workload: workload.PhpBB().Name, Cores: 1},
			events: make(chan event)}
	}
	if !s.enqueue(blocker()) {
		t.Fatal("first blocker rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	if !s.enqueue(blocker()) {
		t.Fatal("second blocker rejected")
	}
	if got := s.retryAfterSeconds(); got != 11 {
		t.Errorf("estimate = %ds, want 11 (ceil of 2 jobs x 5.5s p50)", got)
	}

	// A real rejection carries the computed header: the queue is full (two
	// queued + one running... queue holds 2 of cap 2), so the estimate at
	// rejection time is ceil(3 × 5.5) = 17.
	if !s.enqueue(blocker()) {
		t.Fatal("queue-filling blocker rejected")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "17" {
		t.Errorf("Retry-After = %q, want %q (3 jobs x 5.5s p50)", got, "17")
	}
	release()

	// Slow history clamps at 300s: drown the histogram in 600s cells.
	for i := 0; i < 100; i++ {
		h.Observe(600)
	}
	if got := s.retryAfterSeconds(); got != 300 {
		t.Errorf("estimate = %ds, want the 300s clamp", got)
	}
}

// TestPressureLadderAdmission drives the controller's utilization by hand
// (an external tenant holding mapped bytes) and checks each rung of the
// admission ladder: degrade to sampled fidelity, queue (run-now or come
// back), shed.
func TestPressureLadderAdmission(t *testing.T) {
	s, err := New(Config{Jobs: 1, QueueDepth: 4, Sim: testSim(),
		GlobalBudget: 100 * mem.MiB})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := `{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1}`

	waitPressure := func(min float64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for s.budget.Pressure() < min {
			if time.Now().After(deadline) {
				t.Fatalf("pressure stuck at %.2f, want >= %.2f", s.budget.Pressure(), min)
			}
			time.Sleep(time.Millisecond)
		}
	}
	degradedOf := func(lines []map[string]any) bool {
		for _, l := range lines {
			if l["event"] == "queued" {
				_, ok := l["degraded"]
				return ok
			}
		}
		return false
	}

	// Nominal: served at full fidelity.
	if code, lines := postRunRaw(t, ts.URL, body); code != http.StatusOK || degradedOf(lines) {
		t.Fatalf("nominal request: code %d degraded %v", code, degradedOf(lines))
	}

	// An external tenant maps 75% of the global budget → Degrade.
	as := mem.NewAddressSpace(1<<32, mem.GiB, mem.LargePageShiftXeon)
	as.Map(75*mem.MiB, mem.KiB, mem.SmallPages)
	lease := s.budget.Admit("external-tenant", []*mem.AddressSpace{as})
	defer lease.Release()
	waitPressure(0.70)
	code, lines := postRunRaw(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("degrade-level request: code %d", code)
	}
	if !degradedOf(lines) {
		t.Error("degrade level did not force sampled fidelity")
	}

	// 90% → Queue: an idle worker still takes the request (degraded)...
	as.Map(15*mem.MiB, mem.KiB, mem.SmallPages)
	waitPressure(0.85)
	if code, lines := postRunRaw(t, ts.URL, body); code != http.StatusOK || !degradedOf(lines) {
		t.Fatalf("queue-level request with idle worker: code %d degraded %v", code, degradedOf(lines))
	}
	// ...but with the worker parked, new work is turned away with 503 and a
	// Retry-After instead of growing the queue.
	ctx, release := context.WithCancel(context.Background())
	defer release()
	r, err := s.runnerFor(runnerKey{cfg: s.cfg.Sim})
	if err != nil {
		t.Fatal(err)
	}
	if !s.enqueue(&job{ctx: ctx, r: r,
		cell:   experiments.Cell{Platform: "xeon", Alloc: "region", Workload: workload.PhpBB().Name, Cores: 1},
		events: make(chan event)}) {
		t.Fatal("blocker rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queue-level request with busy worker: code %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	release()
	for s.finished.Load() < 4 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never drained")
		}
		time.Sleep(time.Millisecond)
	}

	// 97% → Shed: refused outright even with every worker idle.
	as.Map(7*mem.MiB, mem.KiB, mem.SmallPages)
	waitPressure(0.95)
	resp, err = http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed-level request: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 429 without Retry-After")
	}

	// /healthz stays green through the whole ladder and reports the rung.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status        string  `json:"status"`
		Pressure      float64 `json:"pressure"`
		PressureLevel string  `json:"pressure_level"`
		BudgetTotal   uint64  `json:"budget_total_bytes"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" {
		t.Errorf("healthz status %q under shed pressure, want ok", health.Status)
	}
	if health.PressureLevel != budget.Shed.String() || health.Pressure < 0.95 {
		t.Errorf("healthz pressure = %.2f %q, want >= 0.95 %q",
			health.Pressure, health.PressureLevel, budget.Shed)
	}
	if health.BudgetTotal != 100*mem.MiB {
		t.Errorf("healthz budget_total_bytes = %d", health.BudgetTotal)
	}

	// Releasing the tenant drops pressure; admissions return to full
	// fidelity.
	lease.Release()
	deadline = time.Now().Add(5 * time.Second)
	for s.budget.Pressure() >= 0.70 {
		if time.Now().After(deadline) {
			t.Fatalf("pressure stuck at %.2f after release", s.budget.Pressure())
		}
		time.Sleep(time.Millisecond)
	}
	if code, lines := postRunRaw(t, ts.URL, body); code != http.StatusOK || degradedOf(lines) {
		t.Errorf("post-release request: code %d degraded %v", code, degradedOf(lines))
	}
}

// TestServeChaosUnderBudgetSqueeze is the robustness acceptance test: a
// server calibrated to half its unconstrained peak live bytes, hammered
// concurrently with mixed PHP and restarting-Ruby work plus injected OOM and
// squeeze faults, must keep /healthz green, never panic, leak no goroutines
// past drain, and return bit-identical results for the cells the budget
// never touched.
func TestServeChaosUnderBudgetSqueeze(t *testing.T) {
	base := runtime.NumGoroutine()

	// Calibrate: one pass under an effectively unlimited budget records the
	// load's unconstrained peak.
	cal, err := New(Config{Jobs: 2, Sim: testSim(), GlobalBudget: 16 * mem.GiB})
	if err != nil {
		t.Fatal(err)
	}
	calTS := httptest.NewServer(cal.Handler())
	phpBody := func(alloc string) string {
		return fmt.Sprintf(`{"platform":"xeon","alloc":%q,"workload":"phpBB","cores":1}`, alloc)
	}
	rubyBody := `{"alloc":"glibc","ruby":true,"restart_every":2,"cores":1}`
	for _, body := range []string{phpBody("default"), phpBody("region"), phpBody("ddmalloc"), rubyBody} {
		if code, _ := postRun(t, calTS.URL, body); code != http.StatusOK {
			t.Fatalf("calibration request: status %d", code)
		}
	}
	peak := cal.budget.PeakLive()
	calTS.Close()
	cal.Close()
	if peak == 0 {
		t.Fatal("calibration observed no live bytes")
	}

	// The squeezed server gets half the unconstrained peak.
	s, err := New(Config{Jobs: 2, QueueDepth: 32, Sim: testSim(), GlobalBudget: peak / 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Health poller: /healthz must answer 200 "ok" for the whole run.
	stopHealth := make(chan struct{})
	healthErr := make(chan error, 1)
	go func() {
		defer close(healthErr)
		for {
			select {
			case <-stopHealth:
				return
			case <-time.After(2 * time.Millisecond):
			}
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				healthErr <- err
				return
			}
			var h struct {
				Status string `json:"status"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || derr != nil || h.Status != "ok" {
				healthErr <- fmt.Errorf("healthz code %d status %q err %v", resp.StatusCode, h.Status, derr)
				return
			}
		}
	}()

	// The chaos mix: clean PHP cells, restarting Ruby, injected OOM, and a
	// mid-run squeeze, all concurrent. Overload answers (429/503) are part
	// of the design; server errors and transport failures are not.
	bodies := []string{
		phpBody("default"), phpBody("region"), phpBody("ddmalloc"),
		rubyBody,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1,"faults":"oom:0.05"}`,
		`{"alloc":"glibc","ruby":true,"restart_every":2,"cores":1,"faults":"oom:0.05"}`,
		`{"alloc":"glibc","ruby":true,"restart_every":2,"cores":1,"faults":"squeeze:0.5"}`,
		`{"platform":"xeon","alloc":"ddmalloc","workload":"phpBB","cores":1,"faults":"squeeze:0.5"}`,
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var overloaded int
	for round := 0; round < 3; round++ {
		for _, body := range bodies {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("POST /run: %v", err)
					return
				}
				defer resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					dec := json.NewDecoder(resp.Body)
					for dec.More() {
						var m map[string]any
						if err := dec.Decode(&m); err != nil {
							t.Errorf("broken NDJSON stream: %v", err)
							return
						}
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					mu.Lock()
					overloaded++
					mu.Unlock()
					if resp.Header.Get("Retry-After") == "" {
						t.Error("overload answer without Retry-After")
					}
				default:
					t.Errorf("chaos request %s: status %d", body, resp.StatusCode)
				}
			}(body)
		}
		wg.Wait()
	}
	t.Logf("chaos: peak %d bytes, budget %d, %d overload answers, %d denials",
		peak, peak/2, overloaded, s.budget.Denials())

	// Determinism: cells the controller never denied are bit-identical to a
	// direct (budget-free) run.
	direct := experiments.NewRunner(testSim())
	for _, alloc := range []string{"default", "region", "ddmalloc"} {
		code, lines := postRun(t, ts.URL, phpBody(alloc))
		if code != http.StatusOK {
			// The mix may still hold the server at queue/shed; these cells'
			// determinism is covered whenever they do get through.
			continue
		}
		res := resultOf(t, lines)
		if res.Pressured {
			continue // the budget touched it; no determinism claim
		}
		want := direct.Run(experiments.Cell{Platform: "xeon", Alloc: alloc,
			Workload: workload.PhpBB().Name, Cores: 1})
		if !reflect.DeepEqual(res, want) {
			t.Errorf("%s: served result differs from direct run under budget", alloc)
		}
	}

	close(stopHealth)
	if err := <-healthErr; err != nil {
		t.Errorf("healthz went red during chaos: %v", err)
	}
	ts.Close()
	s.Close()

	// No goroutines past drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after chaos drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}
