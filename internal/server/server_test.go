package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"webmm/internal/experiments"
	"webmm/internal/workload"
)

// testSim is a cheap simulation config for the service tests.
func testSim() experiments.Config {
	return experiments.Config{Scale: 64, Warmup: 1, Measure: 1, Seed: 7}
}

// progressLine is one decoded NDJSON event from a /run response.
type progressLine struct {
	Event   string          `json:"event"`
	Cell    string          `json:"cell"`
	Failed  bool            `json:"failed"`
	Result  json.RawMessage `json:"result"`
	Tables  []string        `json:"tables"`
	Error   string          `json:"error"`
	Done    int             `json:"done"`
	Total   int             `json:"total"`
	QDepth  *int            `json:"queue_depth"`
	QueueCP int             `json:"queue_cap"`
}

// postRun POSTs a /run body and decodes the whole NDJSON stream.
func postRun(t *testing.T, url, body string) (int, []progressLine) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	var lines []progressLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l progressLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	return resp.StatusCode, lines
}

// resultOf extracts the final "result" event's CellResult.
func resultOf(t *testing.T, lines []progressLine) experiments.CellResult {
	t.Helper()
	for _, l := range lines {
		if l.Event == "result" {
			var res experiments.CellResult
			if err := json.Unmarshal(l.Result, &res); err != nil {
				t.Fatalf("bad result payload: %v", err)
			}
			return res
		}
	}
	t.Fatalf("no result event in %+v", lines)
	return experiments.CellResult{}
}

// TestServeMatchesDirectRun is the service's determinism contract: N
// concurrent requests through the HTTP path must return cell results
// deep-equal to running the same cells directly on a Runner (the CLI path),
// including full JSON round-trip fidelity.
func TestServeMatchesDirectRun(t *testing.T) {
	s, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim(), CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	wl := workload.PhpBB().Name
	cells := []experiments.Cell{
		{Platform: "xeon", Alloc: "default", Workload: wl, Cores: 1},
		{Platform: "xeon", Alloc: "region", Workload: wl, Cores: 2},
		{Platform: "xeon", Alloc: "ddmalloc", Workload: wl, Cores: 1},
		{Platform: "niagara", Alloc: "default", Workload: wl, Cores: 2},
		{Platform: "niagara", Alloc: "ddmalloc", Workload: wl, Cores: 1},
		{Platform: "xeon", Alloc: "default", Workload: wl, Cores: 1}, // duplicate: memo path
	}
	direct := experiments.NewRunner(testSim())

	got := make([]experiments.CellResult, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c experiments.Cell) {
			defer wg.Done()
			body := fmt.Sprintf(`{"platform":%q,"alloc":%q,"workload":%q,"cores":%d}`,
				c.Platform, c.Alloc, c.Workload, c.Cores)
			code, lines := postRun(t, ts.URL, body)
			if code != http.StatusOK {
				t.Errorf("cell %d: status %d", i, code)
				return
			}
			got[i] = resultOf(t, lines)
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, c := range cells {
		want := direct.Run(c)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("cell %s: served result differs from direct Run", c.Key())
		}
	}
}

// TestServeTimeoutAndFaults: a request-level timeout_ms fails its cell
// without disturbing the server, and a fault-injection request runs through
// the same endpoint with the plan applied.
func TestServeTimeoutAndFaults(t *testing.T) {
	s, err := New(Config{Jobs: 2, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Scale 16 runs long enough that a 1ms budget always expires mid-cell.
	code, lines := postRun(t, ts.URL,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1,"scale":16,"timeout_ms":1}`)
	if code != http.StatusOK {
		t.Fatalf("timeout request: status %d", code)
	}
	if res := resultOf(t, lines); !res.Failed {
		t.Error("1ms timeout_ms did not fail the cell")
	}

	// Guaranteed injected panic: the runner retries once, reports failure,
	// and the server keeps serving.
	code, lines = postRun(t, ts.URL,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1,"faults":"panic:1"}`)
	if code != http.StatusOK {
		t.Fatalf("faults request: status %d", code)
	}
	if res := resultOf(t, lines); !res.Failed {
		t.Error("faults=panic:1 did not fail the cell")
	}

	// Probabilistic OOM injection at a survivable rate still completes the
	// request (failed or not is the workload's business).
	code, lines = postRun(t, ts.URL,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1,"faults":"oom:0.05"}`)
	if code != http.StatusOK {
		t.Fatalf("oom faults request: status %d", code)
	}
	resultOf(t, lines)

	// The healthy path still works after all that.
	code, lines = postRun(t, ts.URL,
		`{"platform":"xeon","alloc":"region","workload":"phpBB","cores":1}`)
	if code != http.StatusOK {
		t.Fatalf("post-fault request: status %d", code)
	}
	if res := resultOf(t, lines); res.Failed {
		t.Error("healthy cell failed after fault requests")
	}
}

// TestServeRejectsWhenFull pins the admission contract: with the worker and
// every queue slot occupied, the next request gets 429 + Retry-After, and
// once the pool frees up the same request succeeds.
func TestServeRejectsWhenFull(t *testing.T) {
	s, err := New(Config{Jobs: 1, QueueDepth: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Blocker jobs park their worker inside emit (unbuffered events channel
	// nobody drains) until their context is cancelled — no timing games.
	ctx, release := context.WithCancel(context.Background())
	defer release() // any Fatal below must still unpark the workers for Close
	r, err := s.runnerFor(runnerKey{cfg: s.cfg.Sim})
	if err != nil {
		t.Fatal(err)
	}
	blocker := func() *job {
		return &job{ctx: ctx, r: r,
			cell:   experiments.Cell{Platform: "xeon", Alloc: "region", Workload: workload.PhpBB().Name, Cores: 1},
			events: make(chan event)}
	}
	// First blocker parks the only worker; wait for the pickup (the queue
	// slot must be free again) before the second blocker fills the queue.
	if !s.enqueue(blocker()) {
		t.Fatal("first blocker rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up the blocker: inflight %d", s.inflight.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if !s.enqueue(blocker()) {
		t.Fatal("queue-filling blocker rejected")
	}

	body := `{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1}`
	resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	release() // blockers cancel cooperatively, the pool drains
	deadline = time.Now().Add(5 * time.Second)
	for s.finished.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("blockers never drained after release")
		}
		time.Sleep(time.Millisecond)
	}
	code, lines := postRun(t, ts.URL, body)
	if code != http.StatusOK {
		t.Fatalf("post-release request: status %d", code)
	}
	if res := resultOf(t, lines); res.Failed {
		t.Error("post-release cell failed")
	}
}

// TestServeExperimentStreamsProgress: an experiment request streams one
// "cell" event per planned cell and finishes with rendered tables.
func TestServeExperimentStreamsProgress(t *testing.T) {
	s, err := New(Config{Jobs: 2, Sim: experiments.Config{Scale: 512, Warmup: 1, Measure: 1, Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, lines := postRun(t, ts.URL, `{"experiment":"fig1"}`)
	if code != http.StatusOK {
		t.Fatalf("experiment request: status %d", code)
	}
	var cells, done int
	var tables []string
	for _, l := range lines {
		switch l.Event {
		case "cell":
			cells++
			if l.Total == 0 || l.Cell == "" {
				t.Errorf("cell event missing progress fields: %+v", l)
			}
		case "done":
			done++
			tables = l.Tables
		}
	}
	if cells == 0 {
		t.Error("experiment streamed no per-cell progress")
	}
	if done != 1 || len(tables) == 0 {
		t.Errorf("want one done event with tables, got done=%d tables=%d", done, len(tables))
	}
}

// TestServeBadRequests: malformed and invalid bodies are 400s that never
// consume a queue slot.
func TestServeBadRequests(t *testing.T) {
	s, err := New(Config{Jobs: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{`,
		`{"experiment":"nonsense"}`,
		`{"alloc":"default"}`,
		`{"alloc":"no-such","workload":"phpBB"}`,
		`{"platform":"vax","alloc":"default","workload":"phpBB"}`,
		`{"alloc":"default","workload":"phpBB","scale":3}`,
		`{"alloc":"default","workload":"phpBB","faults":"frobnicate:1"}`,
		`{"alloc":"default","workload":"phpBB","memsched":"fifo"}`,
		`{"alloc":"default","workload":"phpBB","unknown_field":1}`,
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	if got := s.accepted.Load(); got != 0 {
		t.Errorf("bad requests consumed %d queue slots", got)
	}
	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run: status %d, want 405", resp.StatusCode)
	}
}

// TestServeMemSched: a request naming a DRAM scheduling policy runs the cell
// over the banked memory model and its result carries the DRAM stats; the
// same cell without the field stays on the bus (nil stats).
func TestServeMemSched(t *testing.T) {
	s, err := New(Config{Jobs: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, lines := postRun(t, ts.URL,
		`{"alloc":"ddmalloc","workload":"phpBB","cores":2,"memsched":"frfcfs"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	dram := resultOf(t, lines)
	if dram.Failed {
		t.Fatal("DRAM cell failed")
	}
	if dram.Res.Mem == nil || dram.Res.Mem.Policy != "frfcfs" || dram.Res.Mem.Total() == 0 {
		t.Fatalf("DRAM stats missing from served result: %+v", dram.Res.Mem)
	}

	code, lines = postRun(t, ts.URL, `{"alloc":"ddmalloc","workload":"phpBB","cores":2}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if bus := resultOf(t, lines); bus.Res.Mem != nil {
		t.Fatalf("bus cell carries memory-system stats: %+v", bus.Res.Mem)
	}
}

// TestServeMetricsAndHealthz: the observability endpoints serve the shared
// registry and queue status.
func TestServeMetricsAndHealthz(t *testing.T) {
	s, err := New(Config{Jobs: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := postRun(t, ts.URL,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1}`); code != http.StatusOK {
		t.Fatalf("run request: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, metric := range []string{"webmm_cells_total", "webmm_server_requests_total"} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %s:\n%s", metric, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Workers  int    `json:"workers"`
		Accepted uint64 `json:"accepted"`
		Finished uint64 `json:"finished"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Workers != 1 || health.Accepted != 1 || health.Finished != 1 {
		t.Errorf("healthz = %+v", health)
	}
}

// TestServeDrainsOnCancel: ListenAndServe serves real requests over TCP and
// returns nil (clean drain) when its context is cancelled — the SIGTERM path
// without the signal. Afterwards the process is back to its baseline
// goroutine count: the worker pool and listener are gone, nothing leaked.
func TestServeDrainsOnCancel(t *testing.T) {
	base := runtime.NumGoroutine()

	s, err := New(Config{Addr: "127.0.0.1:0", Jobs: 1, Sim: testSim(),
		DrainTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()
	url := "http://" + s.Addr()

	code, lines := postRun(t, url,
		`{"platform":"xeon","alloc":"default","workload":"phpBB","cores":1}`)
	if code != http.StatusOK {
		t.Fatalf("run over TCP: status %d", code)
	}
	if res := resultOf(t, lines); res.Failed {
		t.Error("cell failed over TCP")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ListenAndServe did not return after cancel")
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(time.Millisecond)
	}
}
