package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"webmm/internal/experiments"
)

// newWorker builds one in-process worker instance: a real Server sharing
// the fleet's remote cache, fronted by a middleware that can inject a
// per-worker dispatch delay (the "slow shard"). The delay aborts early when
// the dispatch is cancelled, exactly like a real shard noticing the
// coordinator hung up.
func newWorker(t *testing.T, cacheURL string, delay *atomic.Int64) (*Server, *httptest.Server) {
	t.Helper()
	w, err := New(Config{Jobs: 4, QueueDepth: 16, Sim: testSim(),
		Cache: experiments.NewHTTPBackend(cacheURL)})
	if err != nil {
		t.Fatal(err)
	}
	h := w.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if d := time.Duration(delay.Load()); d > 0 && r.URL.Path == "/run" {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(rw, r)
	}))
	return w, ts
}

// scrapeMetric reads one un-labelled counter from a /metrics exposition.
func scrapeMetric(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v
		}
	}
	return 0
}

// TestFleetMatchesSingleProcess is the fleet's end-to-end contract: a
// coordinator fanning fig1 across two in-process workers (sharing one
// remote cache) must produce cell results and rendered tables DeepEqual to
// a direct single-process Runner — including while one shard is
// artificially slowed so hedging decides cells — and the whole fleet must
// drain back to its goroutine baseline.
func TestFleetMatchesSingleProcess(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// One shared remote cache for the whole fleet.
	cacheMux := http.NewServeMux()
	cacheMux.Handle("/cache/", experiments.CacheHandler(experiments.NewMemBackend()))
	cacheSrv := httptest.NewServer(cacheMux)

	var delays [2]atomic.Int64
	w0, ts0 := newWorker(t, cacheSrv.URL, &delays[0])
	w1, ts1 := newWorker(t, cacheSrv.URL, &delays[1])

	coord, err := New(Config{Jobs: 8, QueueDepth: 32, Sim: testSim(),
		Workers:    []string{ts0.URL, ts1.URL},
		HedgeAfter: 2,
		Cache:      experiments.NewHTTPBackend(cacheSrv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	tsc := httptest.NewServer(coord.Handler())

	// The single-process truth: same config, no cache, no fleet.
	direct := experiments.NewRunner(testSim())
	desc, err := experiments.ExperimentByName("fig1")
	if err != nil {
		t.Fatal(err)
	}
	cells := desc.Cells(direct)
	if len(cells) < 2 {
		t.Fatalf("fig1 planned %d cells, want several", len(cells))
	}

	// Phase 1 — hedging: slow the home shard of one cell far beyond the
	// hedge delay and dispatch that cell. The hedge must launch on the
	// other shard and answer well before the slow shard would have.
	hedged := cells[0]
	primary := coord.fleet.pick(hedged)
	// Seed the p50 estimate (hedgeDelay reads webmm_cell_seconds): four
	// 50ms observations make the hedge fire at 2×50ms = 100ms.
	hist := coord.tel.Metrics().Histogram("webmm_cell_seconds", "wall time per resolved cell",
		[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}, nil)
	for i := 0; i < 4; i++ {
		hist.Observe(0.05)
	}
	delays[primary].Store(int64(3 * time.Second))
	spec, _ := json.Marshal(map[string]any{"cell": hedged})
	start := time.Now()
	code, lines := postRun(t, tsc.URL, string(spec))
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged cell: status %d", code)
	}
	if got, want := resultOf(t, lines), direct.Run(hedged); !reflect.DeepEqual(got, want) {
		t.Fatalf("hedged cell result differs from direct run:\ngot  %+v\nwant %+v", got, want)
	}
	if elapsed >= 2500*time.Millisecond {
		t.Fatalf("hedged cell took %v; the slow shard (3s) was not hedged around", elapsed)
	}
	if n := scrapeMetric(t, tsc.URL, "webmm_fleet_hedges_total"); n < 1 {
		t.Fatalf("webmm_fleet_hedges_total = %v, want >= 1", n)
	}
	if n := scrapeMetric(t, tsc.URL, "webmm_fleet_hedge_wins_total"); n < 1 {
		t.Fatalf("webmm_fleet_hedge_wins_total = %v, want >= 1", n)
	}
	delays[primary].Store(0)

	// Phase 2 — the whole experiment through the coordinator, fanned out
	// across both shards, against the direct single-process run.
	code, lines = postRun(t, tsc.URL, `{"experiment":"fig1"}`)
	if code != http.StatusOK {
		t.Fatalf("experiment: status %d", code)
	}
	var gotTables []string
	var cellEvents int
	for _, l := range lines {
		switch l.Event {
		case "cell":
			cellEvents++
			if l.Failed {
				t.Errorf("fanned-out cell %s failed", l.Cell)
			}
		case "done":
			gotTables = l.Tables
		case "error":
			t.Errorf("experiment error event: %s", l.Error)
		}
	}
	if cellEvents != len(cells) {
		t.Errorf("streamed %d cell events, want %d", cellEvents, len(cells))
	}
	out := desc.Run(direct)
	var wantTables []string
	for _, tb := range out.Tables {
		wantTables = append(wantTables, tb.String())
	}
	for _, ch := range out.Charts {
		wantTables = append(wantTables, ch.String())
	}
	if !reflect.DeepEqual(gotTables, wantTables) {
		t.Fatalf("coordinator tables differ from single-process run:\ngot  %q\nwant %q",
			gotTables, wantTables)
	}

	// Phase 3 — every planned cell one-by-one over the verbatim "cell"
	// protocol, DeepEqual against the direct runner.
	for _, c := range cells {
		spec, _ := json.Marshal(map[string]any{"cell": c})
		code, lines := postRun(t, tsc.URL, string(spec))
		if code != http.StatusOK {
			t.Fatalf("cell %s: status %d", c.Key(), code)
		}
		if got, want := resultOf(t, lines), direct.Run(c); !reflect.DeepEqual(got, want) {
			t.Errorf("cell %s: fleet result differs from direct run", c.Key())
		}
	}

	// Phase 4 — the shared cache really is shared: a brand-new runner
	// pointed at the remote store must hit entries the fleet wrote.
	fresh := experiments.NewRunner(testSim())
	fresh.Cache = experiments.NewCellCacheOn(experiments.NewHTTPBackend(cacheSrv.URL))
	if res := fresh.Run(cells[0]); res.Failed {
		t.Fatal("shared-cache run failed")
	}
	if m := fresh.BuildManifest(nil); m.CacheHits < 1 {
		t.Fatalf("fresh runner saw %d remote cache hits, want >= 1", m.CacheHits)
	}

	// Phase 5 — tear the whole fleet down and require the goroutine
	// baseline back (nothing leaked per dispatch, hedge, or request).
	tsc.Close()
	coord.Close()
	ts0.Close()
	ts1.Close()
	w0.Close()
	w1.Close()
	cacheSrv.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d still above baseline %d after fleet teardown",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetCoalesces: identical in-flight cells from concurrent clients
// must collapse to ONE upstream dispatch — the coordinator's singleflight
// working fleet-wide.
func TestFleetCoalesces(t *testing.T) {
	cacheMux := http.NewServeMux()
	cacheMux.Handle("/cache/", experiments.CacheHandler(experiments.NewMemBackend()))
	cacheSrv := httptest.NewServer(cacheMux)
	defer cacheSrv.Close()

	w, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var hits atomic.Int64
	gate := make(chan struct{})
	h := w.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/run" {
			hits.Add(1)
			select {
			case <-gate:
			case <-time.After(10 * time.Second):
			}
		}
		h.ServeHTTP(rw, r)
	}))
	defer ts.Close()

	coord, err := New(Config{Jobs: 4, QueueDepth: 16, Sim: testSim(),
		Workers: []string{ts.URL}, HedgeAfter: -1,
		Cache: experiments.NewHTTPBackend(cacheSrv.URL)})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	tsc := httptest.NewServer(coord.Handler())
	defer tsc.Close()

	body := `{"platform":"xeon","alloc":"ddmalloc","workload":"phpBB","cores":1}`
	results := make([]experiments.CellResult, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, lines := postRun(t, tsc.URL, body)
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
				return
			}
			results[i] = resultOf(t, lines)
		}(i)
	}
	// Give both requests time to reach the runner (the second must find the
	// first's flight and wait on it), then release the worker.
	time.Sleep(300 * time.Millisecond)
	close(gate)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("2 identical concurrent requests made %d upstream dispatches, want 1", n)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("coalesced requests returned different results")
	}
}

// TestFleetFailsOverDeadShard: a shard that cannot be reached costs one
// transparent retry on the next shard, not a failed cell.
func TestFleetFailsOverDeadShard(t *testing.T) {
	w, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ts := httptest.NewServer(w.Handler())
	defer ts.Close()

	// A URL that refuses connections: bind, note the port, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	// pick depends only on the cell key and the worker count, so place the
	// dead shard at the cell's home index: the dispatch MUST fail over to
	// survive.
	cell := experiments.Cell{Platform: "xeon", Alloc: "ddmalloc", Workload: "phpBB", Cores: 1}
	home := (&fleet{workers: make([]string, 2)}).pick(cell)
	workers := make([]string, 2)
	workers[home], workers[1-home] = deadURL, ts.URL

	coord, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim(),
		Workers: workers, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	tsc := httptest.NewServer(coord.Handler())
	defer tsc.Close()

	if coord.fleet.pick(cell) != home || coord.fleet.workers[home] != deadURL {
		t.Fatal("test setup: home shard is not the dead one")
	}
	spec, _ := json.Marshal(map[string]any{"cell": cell})
	code, lines := postRun(t, tsc.URL, string(spec))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	got := resultOf(t, lines)
	if got.Failed {
		t.Fatal("cell failed despite a live second shard")
	}
	direct := experiments.NewRunner(testSim())
	if want := direct.Run(cell); !reflect.DeepEqual(got, want) {
		t.Fatal("failed-over result differs from direct run")
	}
}

// TestFleetTransientFailureNotPoisoned: when every shard is unreachable the
// cell fails with a transient verdict that is NOT memoized — once shards
// return, the same request succeeds without restarting the coordinator.
func TestFleetTransientFailureNotPoisoned(t *testing.T) {
	w, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var down atomic.Bool
	down.Store(true)
	h := w.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if down.Load() && r.URL.Path == "/run" {
			http.Error(rw, "shard down", http.StatusBadGateway)
			return
		}
		h.ServeHTTP(rw, r)
	}))
	defer ts.Close()

	coord, err := New(Config{Jobs: 2, QueueDepth: 16, Sim: testSim(),
		Workers: []string{ts.URL}, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	tsc := httptest.NewServer(coord.Handler())
	defer tsc.Close()

	body := `{"platform":"xeon","alloc":"ddmalloc","workload":"phpBB","cores":1}`
	code, lines := postRun(t, tsc.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res := resultOf(t, lines); !res.Failed {
		t.Fatal("cell succeeded with every shard down")
	}

	down.Store(false)
	code, lines = postRun(t, tsc.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status %d after recovery", code)
	}
	got := resultOf(t, lines)
	if got.Failed {
		t.Fatal("transient shard outage was memoized: cell still failing after recovery")
	}
	direct := experiments.NewRunner(testSim())
	if want := direct.Run(experiments.Cell{Platform: "xeon", Alloc: "ddmalloc", Workload: "phpBB", Cores: 1}); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered result differs from direct run")
	}
}
