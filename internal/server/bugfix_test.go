package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestAddrUnblocksOnListenFailure: ListenAndServe on an address that cannot
// bind must still release concurrent Addr() callers (returning ""), not
// leave them parked on the ready channel forever.
func TestAddrUnblocksOnListenFailure(t *testing.T) {
	// Occupy a port so the server's listen deterministically fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	s, err := New(Config{Addr: ln.Addr().String(), Jobs: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.ListenAndServe(context.Background()) }()

	addrc := make(chan string, 1)
	go func() { addrc <- s.Addr() }()
	select {
	case addr := <-addrc:
		if addr != "" {
			t.Fatalf("Addr() = %q on a failed listen, want \"\"", addr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Addr() still blocked 5s after the listen failed")
	}
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("ListenAndServe returned nil for an occupied address")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not return")
	}
}

// TestSlowHeaderClientCut: a client that dribbles its request headers (a
// slowloris) must be cut off by ReadHeaderTimeout rather than holding a
// connection open indefinitely.
func TestSlowHeaderClientCut(t *testing.T) {
	s, err := New(Config{Jobs: 1, Sim: testSim(), ReadHeaderTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx) }()
	defer func() {
		cancel()
		<-done
	}()
	addr := s.Addr()
	if addr == "" {
		t.Fatal("server failed to listen")
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request line, then silence: never finish the headers.
	if _, err := io.WriteString(conn, "POST /run HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered a half-sent request")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server left the slow-header connection open past 5s")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("connection closed after %v, want ~ReadHeaderTimeout (200ms)", elapsed)
	}
}

// TestDisconnectFreesWorkerAndGoroutines is the serve-path drain contract
// the fleet depends on: a client that disconnects mid-cell must cancel the
// cell's context (here: a remote dispatch parked on a hung worker), free
// the worker slot, and return the server to its goroutine baseline. Without
// r.Context() propagating into the job, the hung dispatch would pin the
// slot forever.
func TestDisconnectFreesWorkerAndGoroutines(t *testing.T) {
	// A "worker" that accepts the dispatch and then hangs until the request
	// context dies — the worst-case remote cell.
	entered := make(chan struct{}, 8)
	hung := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Consume the body (as the real handleRun does) so the HTTP server
		// starts its background read and can observe the peer vanishing.
		_, _ = io.Copy(io.Discard, r.Body)
		entered <- struct{}{}
		<-r.Context().Done()
	}))
	defer hung.Close()

	s, err := New(Config{Jobs: 1, QueueDepth: 4, Sim: testSim(),
		Workers: []string{hung.URL}, HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	body := `{"platform":"xeon","alloc":"ddmalloc","workload":"phpBB","cores":1}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/run",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait until the cell is actually parked on the hung worker, then
	// disconnect the client.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never reached the worker")
	}
	if got := s.inflight.Load(); got != 1 {
		t.Fatalf("inflight = %d with a parked cell, want 1", got)
	}
	cancel()

	// The worker slot must free: the next request gets served, not queued
	// behind a zombie.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight still %d 5s after client disconnect", s.inflight.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the goroutines the request spawned (handler, job, dispatch, HTTP
	// plumbing) must all unwind to the baseline.
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d still above baseline %d 5s after disconnect",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The server must still serve: the freed slot takes new work (served
	// locally would block on the hung worker again, so just check health).
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Inflight int    `json:"inflight"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Inflight != 0 {
		t.Fatalf("healthz after disconnect: %+v", health)
	}
}

// TestServeConfigTimeoutDefaults pins the hardening defaults so a zero
// Config cannot regress to a server without slowloris or stalled-reader
// protection.
func TestServeConfigTimeoutDefaults(t *testing.T) {
	s, err := New(Config{Jobs: 1, Sim: testSim()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.cfg.ReadHeaderTimeout != 10*time.Second {
		t.Errorf("ReadHeaderTimeout default = %v, want 10s", s.cfg.ReadHeaderTimeout)
	}
	if s.cfg.IdleTimeout != 120*time.Second {
		t.Errorf("IdleTimeout default = %v, want 120s", s.cfg.IdleTimeout)
	}
	if s.cfg.EventWriteTimeout != 30*time.Second {
		t.Errorf("EventWriteTimeout default = %v, want 30s", s.cfg.EventWriteTimeout)
	}
	if s.cfg.HedgeAfter != 4 {
		t.Errorf("HedgeAfter default = %v, want 4", s.cfg.HedgeAfter)
	}
	if fmt.Sprint(s.cfg.Addr) == "" {
		t.Error("Addr default empty")
	}
}
