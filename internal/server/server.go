// Package server runs webmm as a long-lived HTTP experiment service. The
// paper's subject is servers that stay up under heavy concurrent
// transaction load; this package puts the reproduction itself in that
// shape: requests queue cells or whole experiments onto a bounded worker
// pool, every request shares one on-disk cell cache and one telemetry
// registry, progress streams back per cell, and SIGTERM drains in-flight
// work instead of dropping it.
//
// The service only works because cell cancellation is cooperative
// (Runner.RunContext → Machine.RunContext → sim.Checkpoint): a client that
// disconnects, a per-request timeout, or shutdown past the drain budget
// stops the simulation on its own goroutine. Nothing is abandoned, so a
// server that has served a million requests holds exactly its worker-pool
// goroutines.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webmm/internal/apprt"
	"webmm/internal/budget"
	"webmm/internal/experiments"
	"webmm/internal/machine"
	"webmm/internal/memsys"
	"webmm/internal/telemetry"
	"webmm/internal/workload"
)

// Config configures a Server. The zero value is usable: it listens on a
// random localhost port with GOMAXPROCS workers, a 2×workers queue, the
// default simulation configuration, and no cell cache.
type Config struct {
	// Addr is the listen address for ListenAndServe ("host:port";
	// ":0" picks a free port). Default "127.0.0.1:0".
	Addr string
	// Jobs is the number of worker goroutines executing requests.
	// Default GOMAXPROCS.
	Jobs int
	// QueueDepth bounds admissions beyond the running jobs; a request
	// arriving with the queue full is rejected with 429 + Retry-After.
	// Default 2×Jobs.
	QueueDepth int
	// Sim is the default simulation configuration; requests may override
	// scale/warmup/measure/seed per call. Zero fields are filled from
	// experiments.DefaultConfig.
	Sim experiments.Config
	// CacheDir, when non-empty, is the on-disk cell cache shared by every
	// runner the server creates: a cell simulated for one request (or by
	// a previous process) is served from disk for the next.
	CacheDir string
	// Cache, when non-nil, overrides CacheDir with an explicit cache
	// backend — typically experiments.NewHTTPBackend pointed at another
	// instance's /cache route, so a whole fleet shares one
	// content-addressed result store. Whichever backend ends up active is
	// also served back out on this instance's own /cache route.
	Cache experiments.CacheBackend
	// Workers, when non-empty, puts the server in coordinator mode: POST
	// /run plans work with the ordinary planners but executes every cell
	// remotely on these worker base URLs (fanning experiments out in
	// parallel), with failover and hedged retries. The workers are plain
	// webmm serve instances and must be launched with the same simulation
	// defaults as the coordinator.
	Workers []string
	// HedgeAfter is the multiple of the observed p50 cell wall time after
	// which a dispatched cell is hedged onto a second shard (coordinator
	// mode). 0 means the default (4); negative disables hedging.
	HedgeAfter float64
	// CellTimeout bounds each cell attempt's wall time (0 = unbounded).
	// Requests may tighten it per call, never widen it.
	CellTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: when it expires, in-flight
	// requests are cancelled (cooperatively) instead of drained. Default
	// 60s.
	DrainTimeout time.Duration
	// ReadHeaderTimeout bounds how long one connection may take to send
	// its request headers; a slowloris client is cut off instead of
	// pinning a connection through drain forever. Default 10s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections that sit idle. Default
	// 120s.
	IdleTimeout time.Duration
	// EventWriteTimeout bounds each NDJSON progress write. A client that
	// stops reading (without disconnecting) trips it; the connection is
	// abandoned and the request's cell cancelled, so a stalled reader
	// cannot pin a worker slot. Default 30s.
	EventWriteTimeout time.Duration
	// Tel is the telemetry session backing /metrics. nil means a live
	// in-memory session (telemetry.NewLive).
	Tel *telemetry.Telemetry
	// GlobalBudget, when > 0, caps the total bytes the server's concurrent
	// cells may hold mapped. A MemBalancer-style controller apportions it
	// across running cells by allocation rate (see internal/budget) and the
	// admission path degrades gracefully as utilization climbs: new work is
	// forced to sampled fidelity, then queued with a computed Retry-After,
	// then shed with 429. 0 means unlimited (no controller).
	GlobalBudget uint64
	// Pressure tunes the controller's thresholds and cadence; zero fields
	// take the budget.Policy defaults. Ignored without GlobalBudget.
	Pressure budget.Policy
}

// runnerKey identifies one shared Runner. Runners memoize per fixed
// (Config, faults, timeout), so requests agreeing on those share memo and
// singleflight; all runners share the server's cell cache and telemetry.
type runnerKey struct {
	cfg     experiments.Config
	faults  string
	timeout time.Duration
}

// Server is the webmm experiment service. Create with New, serve with
// ListenAndServe (which drains on context cancellation) or mount Handler
// on an existing mux; Close drains the worker pool.
type Server struct {
	cfg     Config
	cache   *experiments.CellCache
	cacheBE experiments.CacheBackend // backing store for /cache, nil when uncached
	tel     *telemetry.Telemetry
	budget  *budget.Controller // nil without Config.GlobalBudget
	fleet   *fleet             // nil outside coordinator mode

	queue chan *job
	wg    sync.WaitGroup

	mu      sync.Mutex
	closed  bool
	runners map[runnerKey]*experiments.Runner

	ready     chan struct{} // closed once ListenAndServe resolves the listener
	readyOnce sync.Once     // ready must close on every exit path, exactly once
	addr      string        // valid after ready; "" when the listen failed

	started  time.Time
	draining atomic.Bool
	inflight atomic.Int64
	accepted atomic.Uint64
	rejected atomic.Uint64
	finished atomic.Uint64
}

// New builds a server and starts its worker pool (so Handler is usable
// without ListenAndServe). Callers must Close it to stop the workers.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Jobs
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 60 * time.Second
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 10 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 120 * time.Second
	}
	if cfg.EventWriteTimeout <= 0 {
		cfg.EventWriteTimeout = 30 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 4
	}
	def := experiments.DefaultConfig()
	if cfg.Sim.Scale == 0 {
		cfg.Sim.Scale = def.Scale
	}
	if cfg.Sim.Scale < 1 || cfg.Sim.Scale&(cfg.Sim.Scale-1) != 0 {
		return nil, fmt.Errorf("server: scale %d must be a power of two", cfg.Sim.Scale)
	}
	if cfg.Sim.Measure == 0 {
		cfg.Sim.Warmup, cfg.Sim.Measure = def.Warmup, def.Measure
	}
	if cfg.Sim.Seed == 0 {
		cfg.Sim.Seed = def.Seed
	}
	fid, err := canonFidelity(cfg.Sim.Fidelity)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	cfg.Sim.Fidelity = fid
	s := &Server{
		cfg:     cfg,
		tel:     cfg.Tel,
		queue:   make(chan *job, cfg.QueueDepth),
		runners: make(map[runnerKey]*experiments.Runner),
		ready:   make(chan struct{}),
		started: time.Now(),
	}
	if s.tel == nil {
		s.tel = telemetry.NewLive()
	}
	be := cfg.Cache
	if be == nil && cfg.CacheDir != "" {
		var err error
		be, err = experiments.NewDiskBackend(cfg.CacheDir)
		if err != nil {
			return nil, fmt.Errorf("server: cell cache: %w", err)
		}
	}
	if be != nil {
		s.cacheBE = be
		s.cache = experiments.NewCellCacheOn(be)
	}
	if len(cfg.Workers) > 0 {
		fl, err := newFleet(s, cfg.Workers, cfg.HedgeAfter)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.fleet = fl
	}
	if cfg.GlobalBudget > 0 {
		s.budget = budget.New(cfg.GlobalBudget, cfg.Pressure)
		s.budget.PublishTo(s.tel.Metrics())
		s.budget.Start()
	}
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.worker()
	}
	return s, nil
}

// canonFidelity validates a measurement-fidelity name before it can
// reach experiments.NewRunner (which panics on unknown names), and maps
// the explicit "full" spelling to the zero value so equivalent
// configurations share one runner in the runnerKey map.
func canonFidelity(name string) (string, error) {
	switch name {
	case "", experiments.FidelityFull:
		return "", nil
	case experiments.FidelitySampled:
		return name, nil
	}
	return "", fmt.Errorf("unknown fidelity %q (want %q or %q)",
		name, experiments.FidelityFull, experiments.FidelitySampled)
}

// Close drains the worker pool: no new jobs are admitted, queued and
// running jobs finish, the workers exit, and the budget controller (if any)
// stops. Idempotent.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.budget != nil {
		s.budget.Close()
	}
}

// runnerFor returns (creating on first use) the shared runner for one
// configuration. Every runner shares the server's cache and telemetry.
func (s *Server) runnerFor(k runnerKey) (*experiments.Runner, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[k]; ok {
		return r, nil
	}
	plan, err := experiments.ParseFaults(k.faults)
	if err != nil {
		return nil, err
	}
	r := experiments.NewRunner(k.cfg)
	r.Cache = s.cache
	r.Tel = s.tel
	r.Faults = plan
	r.Timeout = k.timeout
	r.Budget = s.budget
	if s.fleet != nil {
		// Coordinator mode: the runner keeps its memo, shared cache, and
		// singleflight — identical in-flight cells across concurrent client
		// requests collapse to one upstream call — but execution happens on
		// the fleet.
		k := k
		r.Exec = func(ctx context.Context, c experiments.Cell) (experiments.CellResult, error) {
			return s.fleet.exec(ctx, k, c)
		}
	}
	s.runners[k] = r
	return r, nil
}

// enqueue admits a job, reporting false when the queue is full or the
// server is draining.
func (s *Server) enqueue(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.draining.Load() {
		return false
	}
	select {
	case s.queue <- j:
		return true
	default:
		return false
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.inflight.Add(1)
		j.execute()
		s.inflight.Add(-1)
		s.finished.Add(1)
	}
}

// Addr blocks until ListenAndServe has resolved its listener and returns
// the bound address — or "" when the listen failed (Addr never blocks
// forever on a failed server). Only meaningful with ListenAndServe.
func (s *Server) Addr() string {
	<-s.ready
	return s.addr
}

// ListenAndServe serves HTTP until ctx is cancelled, then shuts down
// gracefully: the listener closes, in-flight requests drain (bounded by
// DrainTimeout, after which their cells are cooperatively cancelled), the
// worker pool stops, and nil is returned for a clean drain.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		// ready must close on every exit path: a concurrent Addr() caller
		// would otherwise block forever on a server that never bound.
		s.readyOnce.Do(func() { close(s.ready) })
		return err
	}
	s.addr = ln.Addr().String()
	s.readyOnce.Do(func() { close(s.ready) })

	srv := &http.Server{
		Handler: s.Handler(),
		// One slowloris client must not pin a connection through drain:
		// headers have a deadline and idle keep-alives are reaped. There
		// is deliberately no WriteTimeout — progress streams legitimately
		// run for minutes; per-write deadlines in handleRun cover stalled
		// readers instead.
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err // listener failed outright
	case <-ctx.Done():
	}
	s.draining.Store(true)
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	serr := srv.Shutdown(dctx)
	if serr != nil {
		// Drain budget exceeded: force-close connections, which cancels
		// the request contexts and (cooperatively) the cells under them.
		_ = srv.Close()
	}
	<-errc // http.ErrServerClosed
	s.Close()
	return serr
}

// Handler returns the service's routes: POST /run (cells and experiments,
// streamed NDJSON progress), GET /metrics (Prometheus text), GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	// The fleet-shared cell store: GET/PUT/DELETE /cache/{key}. Backed by
	// whatever cache this instance uses (disk or remote); without one the
	// handler answers 503.
	mux.Handle("/cache/", experiments.CacheHandler(s.cacheBE))
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/", s.handleIndex)
	return mux
}

// runRequest is the POST /run body. Exactly one of Experiment, CellSpec,
// or (Alloc, Workload) selects the work; zero config fields inherit the
// server's defaults.
type runRequest struct {
	// Experiment names a registered experiment ("fig1", "table4", ...).
	Experiment string `json:"experiment,omitempty"`

	// CellSpec selects one cell verbatim — every field exactly as the
	// experiments.Cell struct, RestartEvery already scaled, Budget
	// included. The fleet coordinator dispatches planned cells this way
	// so nothing is re-derived on the worker; the flat fields below
	// remain the hand-written form (ignored when CellSpec is set).
	CellSpec *experiments.Cell `json:"cell,omitempty"`

	// Cell selection (ignored when Experiment is set).
	Platform string `json:"platform,omitempty"`
	Alloc    string `json:"alloc,omitempty"`
	Workload string `json:"workload,omitempty"`
	Cores    int    `json:"cores,omitempty"`
	Ruby     bool   `json:"ruby,omitempty"`
	// MemSched names a DRAM scheduling policy (memsys registry); the cell
	// then runs over the banked DRAM model instead of the paper's bus.
	// Empty keeps the bus.
	MemSched string `json:"memsched,omitempty"`
	// RestartEvery is the Ruby restart period in the paper's full-scale
	// transactions (0 = never); it is rescaled exactly like the figures.
	RestartEvery int `json:"restart_every,omitempty"`

	// Config overrides (0 = server default).
	Scale          int    `json:"scale,omitempty"`
	Warmup         int    `json:"warmup,omitempty"`
	Measure        int    `json:"measure,omitempty"`
	Seed           uint64 `json:"seed,omitempty"`
	XeonLargePages bool   `json:"xeon_large_pages,omitempty"`
	// Fidelity overrides the server's default measurement fidelity
	// ("full" or "sampled"; empty keeps the default).
	Fidelity string `json:"fidelity,omitempty"`
	// Faults is a fault-injection plan spec (see experiments.ParseFaults);
	// an active plan bypasses the shared cell cache, exactly as the CLI
	// does.
	Faults string `json:"faults,omitempty"`
	// TimeoutMS bounds each cell attempt; it can only tighten the
	// server's CellTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// event is one NDJSON progress line.
type event map[string]any

// job is one admitted request: the worker executes it and streams events
// back to the handler, which owns the connection. events is closed by the
// worker; the handler always drains it, so sends cannot deadlock.
type job struct {
	ctx    context.Context
	r      *experiments.Runner
	cell   experiments.Cell
	desc   experiments.Descriptor
	isExp  bool
	fanout int // concurrent cells for an experiment job (1 = serial)
	events chan event
	cancel context.CancelFunc // set by handleRun; fired when the client stalls
}

// emit hands one progress event to the handler. A dead client's context is
// cancelled, so emission never blocks on a connection nobody reads.
func (j *job) emit(e event) {
	select {
	case j.events <- e:
	case <-j.ctx.Done():
	}
}

func (j *job) execute() {
	defer close(j.events)
	if j.ctx.Err() != nil {
		return // client left while queued; nothing to simulate
	}
	j.emit(event{"event": "running"})
	if !j.isExp {
		res := j.r.RunContext(j.ctx, j.cell)
		e := event{"event": "result", "cell": j.cell.Key(), "failed": res.Failed, "result": res}
		if res.Failed {
			// A fleet coordinator on the other end of this stream needs to
			// know whether the failure was the cell's own (final — retrying
			// elsewhere would fail the same way) or environmental (timeout,
			// cancellation, pressure: worth a fresh attempt).
			if msg, env, ok := j.failure(j.cell); ok {
				e["error"], e["environmental"] = msg, env
			}
		}
		j.emit(e)
		return
	}
	// Experiments run their planned cells up front so each finished cell
	// becomes a progress event; the memo dedups cells shared between
	// requests, and desc.Run below is served entirely from it. A plain
	// server walks the plan serially (cross-request parallelism comes from
	// the worker pool); a coordinator fans it out across the fleet with
	// fanout in flight at once.
	var cells []experiments.Cell
	if j.desc.Cells != nil {
		cells = j.desc.Cells(j.r)
	}
	if j.fanout > 1 && len(cells) > 1 {
		var (
			wg   sync.WaitGroup
			done atomic.Int64
			sem  = make(chan struct{}, j.fanout)
		)
		for _, c := range cells {
			if j.ctx.Err() != nil {
				break
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(c experiments.Cell) {
				defer wg.Done()
				defer func() { <-sem }()
				res := j.r.RunContext(j.ctx, c)
				j.emit(event{"event": "cell", "cell": c.Key(), "failed": res.Failed,
					"done": done.Add(1), "total": len(cells)})
			}(c)
		}
		wg.Wait()
		if j.ctx.Err() != nil {
			j.emit(event{"event": "error", "error": j.ctx.Err().Error()})
			return
		}
	} else {
		for i, c := range cells {
			res := j.r.RunContext(j.ctx, c)
			j.emit(event{"event": "cell", "cell": c.Key(), "failed": res.Failed,
				"done": i + 1, "total": len(cells)})
			if j.ctx.Err() != nil {
				j.emit(event{"event": "error", "error": j.ctx.Err().Error()})
				return
			}
		}
	}
	out := j.desc.Run(j.r)
	var tables []string
	for _, t := range out.Tables {
		tables = append(tables, t.String())
	}
	for _, ch := range out.Charts {
		tables = append(tables, ch.String())
	}
	done := event{"event": "done", "experiment": j.desc.Name, "tables": tables}
	if fails := j.r.Failures(); len(fails) > 0 {
		var msgs []string
		for _, f := range fails {
			msgs = append(msgs, f.Error())
		}
		done["failures"] = msgs
	}
	j.emit(done)
}

// failure finds the recorded CellError for c (most recent first) and
// classifies it: environmental failures — cancellation, deadline, transient
// fleet trouble, budget pressure — are retryable; everything else is the
// cell's own deterministic verdict.
func (j *job) failure(c experiments.Cell) (msg string, environmental bool, ok bool) {
	fails := j.r.Failures()
	for i := len(fails) - 1; i >= 0; i-- {
		f := fails[i]
		if f.Cell != c {
			continue
		}
		env := f.Pressured ||
			errors.Is(f.Err, context.Canceled) ||
			errors.Is(f.Err, context.DeadlineExceeded) ||
			errors.Is(f.Err, experiments.ErrTransient)
		return f.Err.Error(), env, true
	}
	return "", false, false
}

// buildJob validates a request and resolves its runner. Validation happens
// before admission so a bad request costs a 400, never a queue slot.
func (s *Server) buildJob(ctx context.Context, req runRequest) (*job, error) {
	cfg := s.cfg.Sim
	if req.Scale != 0 {
		if req.Scale < 1 || req.Scale&(req.Scale-1) != 0 {
			return nil, fmt.Errorf("scale %d must be a power of two", req.Scale)
		}
		cfg.Scale = req.Scale
	}
	if req.Warmup != 0 {
		cfg.Warmup = req.Warmup
	}
	if req.Measure != 0 {
		if req.Measure < 1 {
			return nil, fmt.Errorf("measure %d must be >= 1", req.Measure)
		}
		cfg.Measure = req.Measure
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if req.XeonLargePages {
		cfg.XeonLargePages = true
	}
	if req.Fidelity != "" {
		cfg.Fidelity = req.Fidelity
	}
	fid, err := canonFidelity(cfg.Fidelity)
	if err != nil {
		return nil, err
	}
	cfg.Fidelity = fid
	timeout := s.cfg.CellTimeout
	if req.TimeoutMS > 0 {
		if d := time.Duration(req.TimeoutMS) * time.Millisecond; timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if _, err := experiments.ParseFaults(req.Faults); err != nil {
		return nil, err
	}
	r, err := s.runnerFor(runnerKey{cfg: cfg, faults: req.Faults, timeout: timeout})
	if err != nil {
		return nil, err
	}
	j := &job{ctx: ctx, r: r, events: make(chan event, 4), fanout: 1}
	if req.Experiment != "" {
		d, err := experiments.ExperimentByName(req.Experiment)
		if err != nil {
			return nil, err
		}
		j.desc, j.isExp = d, true
		if s.fleet != nil {
			// A coordinator fans an experiment's plan out across the fleet
			// instead of walking it serially; two in flight per worker
			// keeps every shard busy while its queue stays shallow.
			j.fanout = 2 * len(s.fleet.workers)
		}
		return j, nil
	}
	if req.CellSpec != nil {
		c := *req.CellSpec
		if c.Platform == "" {
			c.Platform = "xeon"
		}
		if c.Cores == 0 {
			c.Cores = 8
		}
		if err := validateCell(c); err != nil {
			return nil, err
		}
		j.cell = c
		return j, nil
	}
	if req.Alloc == "" || req.Workload == "" && !req.Ruby {
		return nil, errors.New(`request needs "experiment", "cell", or "alloc"+"workload"`)
	}
	if req.Platform == "" {
		req.Platform = "xeon"
	}
	if req.Cores == 0 {
		req.Cores = 8
	}
	if req.Workload == "" && req.Ruby {
		req.Workload = workload.Rails().Name
	}
	restart := 0
	if req.Ruby {
		restart = r.RubyRestartPeriod(req.RestartEvery)
	}
	c := experiments.Cell{
		Platform: req.Platform, Alloc: req.Alloc, Workload: req.Workload,
		Cores: req.Cores, Ruby: req.Ruby, RestartEvery: restart,
		MemSched: req.MemSched,
	}
	if err := validateCell(c); err != nil {
		return nil, err
	}
	j.cell = c
	return j, nil
}

// validateCell rejects cells naming unknown platforms, workloads,
// allocators, or scheduling policies — before admission, so a bad request
// costs a 400, never a queue slot.
func validateCell(c experiments.Cell) error {
	if c.Alloc == "" || c.Workload == "" {
		return errors.New(`cell needs "alloc" and "workload"`)
	}
	if c.Cores < 1 {
		return fmt.Errorf("cores %d must be >= 1", c.Cores)
	}
	if _, err := machine.PlatformByName(c.Platform); err != nil {
		return err
	}
	if _, err := workload.ByName(c.Workload); err != nil {
		return err
	}
	if _, err := apprt.AllocCodeSize(c.Alloc); err != nil {
		return err
	}
	if c.MemSched != "" {
		if _, err := memsys.PolicyByName(memsys.PolicyName(c.MemSched)); err != nil {
			return err
		}
	}
	return nil
}

// pressureLevel is the current rung of the admission ladder; Nominal
// without a budget controller.
func (s *Server) pressureLevel() budget.Level {
	if s.budget == nil {
		return budget.Nominal
	}
	return s.budget.Level()
}

// retryAfterSeconds estimates when a turned-away client should come back:
// the work ahead of it (the queued jobs plus its own) times the observed
// median cell wall time, clamped to [1s, 300s]. Before the first cell
// resolves the histogram is empty and the estimate is the 1-second floor.
func (s *Server) retryAfterSeconds() int {
	p50 := s.tel.Metrics().Histogram("webmm_cell_seconds", "wall time per resolved cell",
		[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}, nil).Quantile(0.5)
	wait := int(math.Ceil(float64(len(s.queue)+1) * p50))
	if wait < 1 {
		wait = 1
	}
	if wait > 300 {
		wait = 300
	}
	return wait
}

// rejectPressure turns a request away with the computed Retry-After.
func (s *Server) rejectPressure(w http.ResponseWriter, code int, msg string) {
	s.rejected.Add(1)
	s.tel.Metrics().Counter("webmm_server_rejected_total",
		"requests rejected because of queue or memory pressure", nil).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	httpError(w, code, msg)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req runRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}

	// The admission ladder (budget.Level): under memory pressure the server
	// degrades before it drops. Degrade forces new work to the cheaper
	// sampled fidelity; Queue stops growing the in-flight set (work is
	// admitted only when a worker can take it now); Shed refuses outright.
	// Each rung keeps /healthz green — pressure never kills the process.
	level := s.pressureLevel()
	if level >= budget.Shed {
		s.tel.Metrics().Counter("webmm_server_shed_total",
			"requests refused because global memory pressure reached the shed threshold", nil).Inc()
		s.rejectPressure(w, http.StatusTooManyRequests,
			fmt.Sprintf("shedding load: memory pressure %.2f; retry later", s.budget.Pressure()))
		return
	}
	if level >= budget.Queue && (len(s.queue) > 0 || s.inflight.Load() >= int64(s.cfg.Jobs)) {
		s.tel.Metrics().Counter("webmm_server_pressure_queued_total",
			"requests turned away at the queue pressure level (no idle worker)", nil).Inc()
		s.rejectPressure(w, http.StatusServiceUnavailable,
			fmt.Sprintf("memory pressure %.2f: not queueing new work; retry later", s.budget.Pressure()))
		return
	}
	degraded := false
	if level >= budget.Degrade && req.Fidelity != experiments.FidelitySampled {
		req.Fidelity = experiments.FidelitySampled
		degraded = true
		s.tel.Metrics().Counter("webmm_server_degraded_total",
			"requests forced to sampled fidelity by memory pressure", nil).Inc()
	}

	// The job runs under its own cancellable child of the request context:
	// a disconnect cancels it via r.Context(), and a client that stalls
	// without disconnecting (below) is cancelled explicitly. Either way the
	// cell stops cooperatively and the worker slot frees.
	jctx, jcancel := context.WithCancel(r.Context())
	defer jcancel()
	j, err := s.buildJob(jctx, req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	j.cancel = jcancel
	if !s.enqueue(j) {
		s.rejectPressure(w, http.StatusTooManyRequests, "admission queue full; retry later")
		return
	}
	s.accepted.Add(1)
	s.tel.Metrics().Counter("webmm_server_requests_total",
		"requests admitted to the worker pool", nil).Inc()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	dead := false
	write := func(e event) {
		if dead {
			return
		}
		// Per-event write deadline: the stream as a whole may legitimately
		// run for minutes (hence no http.Server WriteTimeout), but any
		// single event that cannot be flushed within EventWriteTimeout means
		// the client stopped reading. Cancel the job — a stalled-but-
		// connected reader must not pin a worker slot — and keep draining.
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.EventWriteTimeout))
		if err := enc.Encode(e); err != nil {
			dead = true
			j.cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	queued := event{"event": "queued", "queue_depth": len(s.queue), "queue_cap": cap(s.queue)}
	if degraded {
		queued["degraded"] = "sampled fidelity (memory pressure)"
	}
	write(queued)
	// Drain until the worker closes the channel — unconditionally, so the
	// worker's sends always complete even if the client is gone.
	for e := range j.events {
		write(e)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.tel.Metrics().WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	resp := map[string]any{
		"status":    "ok",
		"uptime_s":  time.Since(s.started).Seconds(),
		"workers":   s.cfg.Jobs,
		"queue":     len(s.queue),
		"queue_cap": cap(s.queue),
		"inflight":  s.inflight.Load(),
		"accepted":  s.accepted.Load(),
		"finished":  s.finished.Load(),
		"rejected":  s.rejected.Load(),
		"draining":  s.draining.Load(),
	}
	if s.budget != nil {
		// Pressure never flips status: degradation is the design, not a
		// failure, so health stays "ok" all the way up the ladder.
		resp["budget_total_bytes"] = s.budget.Total()
		resp["budget_peak_live_bytes"] = s.budget.PeakLive()
		resp["budget_denials"] = s.budget.Denials()
		resp["budget_tenants"] = s.budget.Tenants()
		resp["pressure"] = s.budget.Pressure()
		resp["pressure_level"] = s.budget.Level().String()
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		httpError(w, http.StatusNotFound, "not found")
		return
	}
	fmt.Fprint(w, `webmm experiment service

POST /run          {"platform":"xeon","alloc":"ddmalloc","workload":"phpBB","cores":8}
                   {"experiment":"fig1","scale":64}
                   {"cell":{...}} (verbatim cell; used by fleet coordinators)
                   -> NDJSON progress stream (queued, running, cell..., result|done)
GET  /cache/{key}  fleet-shared cell result store (also PUT, DELETE; 503 without a cache)
GET  /metrics      Prometheus text exposition of the shared telemetry registry
GET  /healthz      queue and worker status

Started with -workers, this instance is a fleet coordinator: it plans
experiments locally and executes every cell remotely, with request
coalescing, failover, and hedged retries.
`)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
