package experiments

import (
	"math"
	"testing"

	"webmm/internal/workload"
)

// TestSampledFidelityIPCError bounds the systematic error of -fidelity
// sampled: on a long measurement phase at scale 4, the sampled IPC must
// stay within 2% of the full-fidelity IPC for the same cell. The sampled
// estimate is unbiased per transaction (counters and transaction counts
// both come from the detail rounds only), so the deviation left is the
// variance of which transactions land in the detail rounds.
func TestSampledFidelityIPCError(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulation pair")
	}
	cell := phpCell("xeon", "default", workload.MediaWikiRW().Name, 2)
	base := Config{Scale: 4, Warmup: 2, Measure: 32, Seed: 20090615}

	full := NewRunner(base).Run(cell)
	if full.Failed {
		t.Fatal("full-fidelity cell failed")
	}
	scfg := base
	scfg.Fidelity = FidelitySampled
	sampled := NewRunner(scfg).Run(cell)
	if sampled.Failed {
		t.Fatal("sampled-fidelity cell failed")
	}

	fullIPC, sampledIPC := full.Res.IPC(), sampled.Res.IPC()
	if fullIPC <= 0 || sampledIPC <= 0 {
		t.Fatalf("non-positive IPC: full=%v sampled=%v", fullIPC, sampledIPC)
	}
	relErr := math.Abs(sampledIPC-fullIPC) / fullIPC
	t.Logf("IPC full=%.6f sampled=%.6f relative error=%.4f%%",
		fullIPC, sampledIPC, 100*relErr)
	if relErr >= 0.02 {
		t.Errorf("sampled IPC deviates %.2f%% from full, want < 2%%", 100*relErr)
	}

	// Sampling must actually skip work: far fewer transactions priced.
	if sampled.TxnsPerStream >= full.TxnsPerStream/2 {
		t.Errorf("sampled measured %.0f txns/stream, full %.0f; sampling should measure far fewer",
			sampled.TxnsPerStream, full.TxnsPerStream)
	}
}

// TestCellCacheFidelityKeying pins the acceptance rule that sampled
// results are keyed separately in the on-disk cell cache: an entry stored
// under one fidelity must never satisfy a lookup under the other.
func TestCellCacheFidelityKeying(t *testing.T) {
	cc, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cell := phpCell("xeon", "default", workload.MediaWikiRW().Name, 8)
	full := Config{Scale: 32, Warmup: 1, Measure: 2, Seed: 1}.normalized()
	sampled := full
	sampled.Fidelity = FidelitySampled

	cc.store(full, cell, CellResult{Cell: cell, TxnsPerStream: 2})
	if _, ok := cc.load(full, cell); !ok {
		t.Fatal("full entry should load for the full config")
	}
	if _, ok := cc.load(sampled, cell); ok {
		t.Fatal("sampled config must not be served a full-fidelity entry")
	}

	cc.store(sampled, cell, CellResult{Cell: cell, TxnsPerStream: 1})
	got, ok := cc.load(sampled, cell)
	if !ok {
		t.Fatal("sampled entry should load for the sampled config")
	}
	if got.TxnsPerStream != 1 {
		t.Fatalf("sampled load returned the wrong entry: %+v", got)
	}
	if got, _ := cc.load(full, cell); got.TxnsPerStream != 2 {
		t.Fatalf("full load returned the wrong entry: %+v", got)
	}
}

// TestFidelitySpellingsShareConfig pins that the explicit "full" spelling
// and the zero value are one configuration (normalized shares cache keys).
func TestFidelitySpellingsShareConfig(t *testing.T) {
	a := Config{Scale: 32, Warmup: 1, Measure: 2, Seed: 1}
	b := a
	b.Fidelity = FidelityFull
	if a.normalized() != b.normalized() {
		t.Fatalf("%+v and %+v should normalize to the same config", a, b)
	}
	if NewRunner(b).Cfg.Fidelity != "" {
		t.Fatal("NewRunner should normalize explicit full fidelity to the zero value")
	}
}
