package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"webmm/internal/telemetry"
	"webmm/internal/workload"
)

// smallCfg is a fast configuration for telemetry plumbing tests; golden
// content tests use goldenCfg instead.
func smallCfg() Config {
	return Config{Scale: 1024, Warmup: 1, Measure: 1, Seed: 7}
}

// TestTelemetryDoesNotPerturbResults is the observation-only contract: a
// cell simulated under full telemetry (trace + metrics + manifest) is
// bit-identical to the same cell simulated with telemetry disabled, and the
// three output files validate.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	cell := phpCell("xeon", "ddmalloc", workload.MediaWikiRO().Name, 2)

	base := NewRunner(smallCfg()).Run(cell)

	dir := t.TempDir()
	opts := telemetry.Options{
		TracePath:    filepath.Join(dir, "trace.jsonl"),
		MetricsPath:  filepath.Join(dir, "metrics.prom"),
		ManifestPath: filepath.Join(dir, "run.json"),
	}
	tel, err := telemetry.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(smallCfg())
	r.Tel = tel
	got := r.Run(cell)
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("telemetry perturbed the simulation:\nbase %+v\ngot  %+v", base, got)
	}

	tel.SetManifest(r.BuildManifest([]string{"cell"}))
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}

	if n, err := telemetry.ValidateTraceFile(opts.TracePath); err != nil || n < 5 {
		t.Errorf("trace invalid or too sparse (cell span + 4 phases): n=%d err=%v", n, err)
	}
	if n, err := telemetry.ValidateMetricsFile(opts.MetricsPath); err != nil || n == 0 {
		t.Errorf("metrics invalid: n=%d err=%v", n, err)
	}
	man, err := telemetry.ValidateManifestFile(opts.ManifestPath)
	if err != nil {
		t.Fatalf("manifest invalid: %v", err)
	}
	if len(man.Cells) != 1 || man.Cells[0].Alloc != "ddmalloc" || man.Cells[0].Failed {
		t.Errorf("manifest cells wrong: %+v", man.Cells)
	}
	if man.Cells[0].Throughput != got.Res.Throughput || man.Cells[0].Txns != got.Res.Txns {
		t.Errorf("manifest cell numbers diverge from the runner's result: %+v vs %+v",
			man.Cells[0], got.Res)
	}

	data, _ := os.ReadFile(opts.MetricsPath)
	for _, want := range []string{
		"webmm_cells_total 1",
		`webmm_class_instr_total{class="mm"}`,
		`webmm_alloc_sizeclass_total{bytes="`,
		"webmm_cell_seconds_count 1",
	} {
		if !containsLine(string(data), want) {
			t.Errorf("metrics missing %q:\n%s", want, data)
		}
	}
}

func containsLine(text, substr string) bool {
	for i := 0; i+len(substr) <= len(text); i++ {
		if text[i:i+len(substr)] == substr {
			return true
		}
	}
	return false
}

// TestManifestAccountsFailuresAndFaults runs a plan under an injected panic
// storm and checks the manifest's failure accounting agrees with the
// runner's.
func TestManifestAccountsFailuresAndFaults(t *testing.T) {
	r := NewRunner(smallCfg())
	r.Faults = FaultPlan{PanicRate: 1} // every simulation attempt panics
	cell := phpCell("xeon", "default", workload.MediaWikiRO().Name, 1)
	res := r.Run(cell)
	if !res.Failed {
		t.Fatal("cell should have failed under PanicRate 1")
	}
	m := r.BuildManifest([]string{"cell"})
	if len(m.Failures) != 1 || m.Failures[0].Attempts != 2 {
		t.Fatalf("manifest failures wrong: %+v", m.Failures)
	}
	if !m.Cells[0].Failed {
		t.Fatalf("manifest cell not marked failed: %+v", m.Cells[0])
	}
	if got := r.faultsPanic.Load(); got != 2 {
		t.Fatalf("counted %d injected panics, want 2 (one per attempt)", got)
	}
}

// TestManifestCacheAccounting checks the disk-cache hit/miss counts and
// ratio recorded in the manifest.
func TestManifestCacheAccounting(t *testing.T) {
	dir := t.TempDir()
	cell := phpCell("xeon", "region", workload.MediaWikiRO().Name, 1)

	cache, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	miss := NewRunner(smallCfg())
	miss.Cache = cache
	miss.Run(cell)
	m := miss.BuildManifest(nil)
	if m.CacheHits != 0 || m.CacheMisses != 1 {
		t.Fatalf("first run: hits=%d misses=%d, want 0/1", m.CacheHits, m.CacheMisses)
	}

	cache2, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	hit := NewRunner(smallCfg())
	hit.Cache = cache2
	hit.Run(cell)
	hit.Run(cell) // memoized, not a cache hit
	m = hit.BuildManifest(nil)
	if m.CacheHits != 1 || m.CacheMisses != 0 || m.CacheHitRatio != 1 {
		t.Fatalf("second run: hits=%d misses=%d ratio=%g, want 1/0/1", m.CacheHits, m.CacheMisses, m.CacheHitRatio)
	}
	if m.MemoHits != 1 {
		t.Fatalf("memo hits %d, want 1", m.MemoHits)
	}
	if !m.Cells[0].Cached {
		t.Fatalf("manifest cell not marked cached: %+v", m.Cells[0])
	}
}

// TestGoldenManifest locks the manifest's deterministic content: a
// seed-fixed Figure 1 run must reproduce the committed canonical manifest
// byte-for-byte (volatile wall-clock fields are canonicalized away).
// Regenerate with -update after an intentional schema or simulator change.
func TestGoldenManifest(t *testing.T) {
	path := filepath.Join("testdata", "golden_manifest.json")

	r := NewRunner(goldenCfg())
	r.RunAll(r.CellsFor("fig1"), 1)
	m := r.BuildManifest([]string{"fig1"}).Canonical()
	// Toolchain version is volatile across dev machines but zeroed by
	// Canonical; nothing else to mask.
	data, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	got := string(data) + "\n"

	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden manifest (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("canonical manifest diverged from %s\ngot:\n%s", path, got)
	}
}
