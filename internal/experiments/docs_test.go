package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webmm/internal/memsys"
)

const (
	expBegin = "<!-- BEGIN GENERATED EXPERIMENTS -->\n"
	expEnd   = "<!-- END GENERATED EXPERIMENTS -->"

	polBegin = "<!-- BEGIN GENERATED MEMSCHED POLICIES -->\n"
	polEnd   = "<!-- END GENERATED MEMSCHED POLICIES -->"
)

// syncGenerated pins one marker-delimited generated block of EXPERIMENTS.md
// to its in-code source of truth; -update rewrites the committed block.
func syncGenerated(t *testing.T, begin, end, want string) {
	t.Helper()
	path := filepath.Join("..", "..", "EXPERIMENTS.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	b := strings.Index(doc, begin)
	e := strings.Index(doc, end)
	if b < 0 || e < 0 || e < b {
		t.Fatalf("EXPERIMENTS.md is missing the generated markers %q ... %q",
			strings.TrimSpace(begin), end)
	}
	got := doc[b+len(begin) : e]
	if got == want {
		return
	}
	if *update {
		out := doc[:b+len(begin)] + want + doc[e:]
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Errorf("EXPERIMENTS.md generated block out of sync (run with -update):\ncommitted:\n%s\nsource:\n%s",
		got, want)
}

// TestExperimentsMarkdownInSync pins the generated experiment catalogue in
// EXPERIMENTS.md to the registry: editing one without the other fails here.
// Regenerate the committed section with -update.
func TestExperimentsMarkdownInSync(t *testing.T) {
	syncGenerated(t, expBegin, expEnd, ExperimentsMarkdown())
}

// TestPoliciesMarkdownInSync pins the memsched policy table in
// EXPERIMENTS.md to the memsys policy registry the same way.
func TestPoliciesMarkdownInSync(t *testing.T) {
	syncGenerated(t, polBegin, polEnd, memsys.PoliciesMarkdown())
}

// TestUsageExperimentsCoversRegistry is a cheap guard that the -h text
// renders one line per experiment plus the two pseudo-experiments.
func TestUsageExperimentsCoversRegistry(t *testing.T) {
	usage := UsageExperiments()
	lines := strings.Count(usage, "\n")
	if want := len(ExperimentNames()) + 2; lines != want {
		t.Errorf("usage text has %d lines, want %d:\n%s", lines, want, usage)
	}
	for _, name := range ExperimentNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("usage text missing experiment %q", name)
		}
	}
}
