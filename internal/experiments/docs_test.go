package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	expBegin = "<!-- BEGIN GENERATED EXPERIMENTS -->\n"
	expEnd   = "<!-- END GENERATED EXPERIMENTS -->"
)

// TestExperimentsMarkdownInSync pins the generated experiment catalogue in
// EXPERIMENTS.md to the registry: editing one without the other fails here.
// Regenerate the committed section with -update.
func TestExperimentsMarkdownInSync(t *testing.T) {
	path := filepath.Join("..", "..", "EXPERIMENTS.md")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	begin := strings.Index(doc, expBegin)
	end := strings.Index(doc, expEnd)
	if begin < 0 || end < 0 || end < begin {
		t.Fatalf("EXPERIMENTS.md is missing the generated-catalogue markers %q ... %q",
			strings.TrimSpace(expBegin), expEnd)
	}
	want := ExperimentsMarkdown()
	got := doc[begin+len(expBegin) : end]
	if got == want {
		return
	}
	if *update {
		out := doc[:begin+len(expBegin)] + want + doc[end:]
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Errorf("EXPERIMENTS.md catalogue out of sync with the registry (run with -update):\ncommitted:\n%s\nregistry:\n%s",
		got, want)
}

// TestUsageExperimentsCoversRegistry is a cheap guard that the -h text
// renders one line per experiment plus the two pseudo-experiments.
func TestUsageExperimentsCoversRegistry(t *testing.T) {
	usage := UsageExperiments()
	lines := strings.Count(usage, "\n")
	if want := len(ExperimentNames()) + 2; lines != want {
		t.Errorf("usage text has %d lines, want %d:\n%s", lines, want, usage)
	}
	for _, name := range ExperimentNames() {
		if !strings.Contains(usage, name) {
			t.Errorf("usage text missing experiment %q", name)
		}
	}
}
