package experiments

import (
	"testing"

	"webmm/internal/machine"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// testRunner uses a coarse scale so the shape assertions run in seconds.
// The committed EXPERIMENTS.md numbers come from finer-scale CLI runs; the
// assertions here are the robust qualitative shapes of the paper.
func testRunner() *Runner {
	return NewRunner(Config{Scale: 32, Warmup: 1, Measure: 2, Seed: 20090615})
}

var testWorkload = workload.MediaWikiRO().Name

func TestOneCoreRegionAndDDBeatDefault(t *testing.T) {
	// Paper Table 4: "Both DDmalloc and the region-based allocator
	// improved the performance of every workload when using only one
	// core on both platforms."
	r := testRunner()
	for _, plat := range []string{"xeon", "niagara"} {
		def := r.Run(phpCell(plat, "default", testWorkload, 1))
		reg := r.Run(phpCell(plat, "region", testWorkload, 1))
		dd := r.Run(phpCell(plat, "ddmalloc", testWorkload, 1))
		if reg.Res.Throughput <= def.Res.Throughput {
			t.Errorf("%s 1 core: region %.1f <= default %.1f", plat,
				reg.Res.Throughput, def.Res.Throughput)
		}
		if dd.Res.Throughput <= def.Res.Throughput {
			t.Errorf("%s 1 core: DDmalloc %.1f <= default %.1f", plat,
				dd.Res.Throughput, def.Res.Throughput)
		}
	}
}

func TestEightCoreXeonDDBestAndRegionCollapses(t *testing.T) {
	// Paper §4.3: DDmalloc has the best 8-core throughput; the region
	// allocator loses its 1-core advantage (and degrades outright for
	// several workloads).
	r := testRunner()
	def := r.Run(phpCell("xeon", "default", testWorkload, 8))
	reg := r.Run(phpCell("xeon", "region", testWorkload, 8))
	dd := r.Run(phpCell("xeon", "ddmalloc", testWorkload, 8))

	if dd.Res.Throughput <= def.Res.Throughput {
		t.Errorf("8-core Xeon: DDmalloc %.1f <= default %.1f",
			dd.Res.Throughput, def.Res.Throughput)
	}
	if dd.Res.Throughput <= reg.Res.Throughput {
		t.Errorf("8-core Xeon: DDmalloc %.1f <= region %.1f",
			dd.Res.Throughput, reg.Res.Throughput)
	}
	// Region's relative standing must collapse from 1 core to 8.
	reg1 := r.Run(phpCell("xeon", "region", testWorkload, 1))
	def1 := r.Run(phpCell("xeon", "default", testWorkload, 1))
	rel1 := reg1.Res.Throughput / def1.Res.Throughput
	rel8 := reg.Res.Throughput / def.Res.Throughput
	if rel8 >= rel1 {
		t.Errorf("region relative throughput grew with cores: %.3f at 1, %.3f at 8", rel1, rel8)
	}
	if rel8 > 1.02 {
		t.Errorf("region still beats default by %.1f%% on 8 Xeon cores; paper shows degradation",
			(rel8-1)*100)
	}
}

func TestRegionBusTrafficExplodesOnXeon(t *testing.T) {
	// Paper Figure 8: region increases L2 misses and bus transactions;
	// DDmalloc reduces bus transactions.
	r := testRunner()
	def := r.Run(phpCell("xeon", "default", testWorkload, 8))
	reg := r.Run(phpCell("xeon", "region", testWorkload, 8))
	dd := r.Run(phpCell("xeon", "ddmalloc", testWorkload, 8))

	defBus := perTxn(def, def.Res.Totals.BusTxns())
	regBus := perTxn(reg, reg.Res.Totals.BusTxns())
	ddBus := perTxn(dd, dd.Res.Totals.BusTxns())
	if regBus <= defBus {
		t.Errorf("region bus txns/txn %.0f <= default %.0f", regBus, defBus)
	}
	if ddBus >= defBus {
		t.Errorf("DDmalloc bus txns/txn %.0f >= default %.0f", ddBus, defBus)
	}
}

func TestRegionCutsAllocatorTimeButInflatesOthers(t *testing.T) {
	// Paper Figure 6: region cuts memory-management CPU by ~85% but
	// slows the rest of the program; DDmalloc cuts it by ~56% without
	// hurting the rest.
	r := testRunner()
	def := r.Run(phpCell("xeon", "default", testWorkload, 8))
	reg := r.Run(phpCell("xeon", "region", testWorkload, 8))
	dd := r.Run(phpCell("xeon", "ddmalloc", testWorkload, 8))

	defMM := def.Res.ClassCyclesPerTxn(sim.ClassAlloc)
	regMM := reg.Res.ClassCyclesPerTxn(sim.ClassAlloc)
	ddMM := dd.Res.ClassCyclesPerTxn(sim.ClassAlloc)
	if regMM > defMM*0.3 {
		t.Errorf("region memory-management time %.0f not <70%% below default %.0f", regMM, defMM)
	}
	if ddMM > defMM*0.6 || ddMM < defMM*0.1 {
		t.Errorf("DDmalloc memory-management time %.0f outside 40-90%% reduction of %.0f", ddMM, defMM)
	}
	defOther := def.Res.CyclesPerTxn() - defMM
	regOther := reg.Res.CyclesPerTxn() - regMM
	ddOther := dd.Res.CyclesPerTxn() - ddMM
	if regOther <= defOther {
		t.Errorf("region 'others' %.0f not slower than default %.0f", regOther, defOther)
	}
	if ddOther > defOther*1.05 {
		t.Errorf("DDmalloc 'others' %.0f slower than default %.0f", ddOther, defOther)
	}
}

func TestFootprintOrderingMatchesFig9(t *testing.T) {
	// Paper Figure 9: DDmalloc ~1.24x default; region ~3x on average,
	// >7x worst case. The exact multiples emerge only at paper scale
	// (allocation granularity — 32 KiB segments, 256 KiB Zend segments
	// — dominates scaled-down footprints), so this test asserts the
	// ordering at a moderate scale; EXPERIMENTS.md records the
	// full-scale ratios.
	r := NewRunner(Config{Scale: 8, Warmup: 1, Measure: 1, Seed: 20090615})
	def := r.Run(phpCell("xeon", "default", testWorkload, 1))
	reg := r.Run(phpCell("xeon", "region", testWorkload, 1))
	dd := r.Run(phpCell("xeon", "ddmalloc", testWorkload, 1))
	if def.Footprint <= 0 {
		t.Fatal("default footprint not measured")
	}
	ddRel := dd.Footprint / def.Footprint
	regRel := reg.Footprint / def.Footprint
	if ddRel < 1.0 || ddRel > 3.0 {
		t.Errorf("DDmalloc footprint %.2fx default, want overhead in (1.0, 3.0) at this scale", ddRel)
	}
	if regRel < 1.5 {
		t.Errorf("region footprint %.2fx default, want a large multiple (paper ~3x)", regRel)
	}
	if regRel < ddRel*0.9 {
		t.Errorf("region footprint (%.2fx) well below DDmalloc (%.2fx)", regRel, ddRel)
	}
}

func TestTable3RegeneratesCalls(t *testing.T) {
	// Scale 8 keeps enough allocation samples per transaction that the
	// size mixture's heavy tail is represented (SPECweb has only ~410
	// mallocs/txn at this scale).
	r := NewRunner(Config{Scale: 8, Warmup: 1, Measure: 2, Seed: 1})
	rows := Table3(r)
	if len(rows) != len(workload.Profiles()) {
		t.Fatalf("Table3 produced %d rows, want %d", len(rows), len(workload.Profiles()))
	}
	for i, p := range workload.Profiles() {
		row := rows[i]
		// Full-scale equivalents must be within the scale-rounding of
		// the paper's counts.
		tol := float64(r.Cfg.Scale)
		if row.Mallocs < float64(p.Mallocs)-tol || row.Mallocs > float64(p.Mallocs)+tol {
			t.Errorf("%s: mallocs %.0f, want ~%d", p.Name, row.Mallocs, p.Mallocs)
		}
		if row.AvgSize < p.AvgSize*0.85 || row.AvgSize > p.AvgSize*1.15 {
			t.Errorf("%s: avg size %.1f, want ~%.1f", p.Name, row.AvgSize, p.AvgSize)
		}
	}
}

func TestFig1RegionShiftsCostToOthers(t *testing.T) {
	r := testRunner()
	// Use the (cheaper) read-only profile shape assertions on the raw
	// cells rather than Fig1's MediaWiki(rw); the rw transaction is 2.7x
	// the work and this is covered by the CLI run.
	def := r.Run(phpCell("xeon", "default", testWorkload, 8))
	reg := r.Run(phpCell("xeon", "region", testWorkload, 8))
	defTotal := def.Res.CyclesPerTxn()
	regMM := reg.Res.ClassCyclesPerTxn(sim.ClassAlloc) / defTotal
	regOther := (reg.Res.CyclesPerTxn() - reg.Res.ClassCyclesPerTxn(sim.ClassAlloc)) / defTotal
	defMM := def.Res.ClassCyclesPerTxn(sim.ClassAlloc) / defTotal
	if regMM >= defMM/2 {
		t.Errorf("Figure 1 shape: region mm %.3f not well below default mm %.3f", regMM, defMM)
	}
	if regOther <= 1-defMM {
		t.Errorf("Figure 1 shape: region others %.3f not above default others %.3f",
			regOther, 1-defMM)
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(Config{Scale: 64, Warmup: 1, Measure: 1, Seed: 1})
	c := phpCell("xeon", "ddmalloc", workload.PhpBB().Name, 1)
	a := r.Run(c)
	b := r.Run(c)
	if a.Res.Throughput != b.Res.Throughput {
		t.Fatal("memoized cell returned a different result")
	}
}

func TestScalePlatformPreservesGeometry(t *testing.T) {
	for _, scale := range []int{1, 2, 8, 64, 1024} {
		for _, name := range []string{"xeon", "niagara"} {
			base, err := machine.PlatformByName(name)
			if err != nil {
				t.Fatal(err)
			}
			p := scalePlatform(base, scale)
			if p.L2.Sets() <= 0 {
				t.Fatalf("%s scale %d: invalid L2 geometry", name, scale)
			}
			if p.TLBEntries < 32 {
				t.Fatalf("%s scale %d: TLB floor violated (%d)", name, scale, p.TLBEntries)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two scale accepted")
		}
	}()
	NewRunner(Config{Scale: 3})
}
