package experiments

import (
	"reflect"
	"testing"

	"webmm/internal/budget"
	"webmm/internal/mem"
	"webmm/internal/workload"
)

// TestControllerUnconstrainedBitIdentical: a cell governed by a controller
// with ample budget is bit-identical to an ungoverned run — the lease only
// observes, and limits that are never hit change nothing.
func TestControllerUnconstrainedBitIdentical(t *testing.T) {
	cfg := faultCfg()
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)

	base := NewRunner(cfg).Run(c)
	if base.Failed {
		t.Fatal("baseline cell failed")
	}

	ctrl := budget.New(4*mem.GiB, budget.Policy{})
	defer ctrl.Close()
	r := NewRunner(cfg)
	r.Budget = ctrl
	got := r.Run(c)

	if got.Pressured {
		t.Error("ample budget must not mark the result pressured")
	}
	if got.BudgetDenials != 0 {
		t.Errorf("ample budget produced %d denials", got.BudgetDenials)
	}
	if !reflect.DeepEqual(base, got) {
		t.Errorf("governed result differs from ungoverned:\nbase %+v\ngot  %+v", base, got)
	}
	if ctrl.PeakLive() == 0 {
		t.Error("controller observed no live bytes")
	}
	if ctrl.Tenants() != 0 {
		t.Errorf("lease not released: %d tenants", ctrl.Tenants())
	}
}

// rubyRestartCell is a Ruby cell that restarts every 2 transactions — the
// one paper configuration that keeps mapping address space in steady state
// (each restart frees and rebuilds the process heap), so dynamic budget
// pressure has something to bite.
func rubyRestartCell() Cell {
	return Cell{Platform: "xeon", Alloc: "glibc", Workload: workload.Rails().Name,
		Cores: 1, Ruby: true, RestartEvery: 2}
}

// TestSqueezeFaultDegradesGracefully: the squeeze fault shrinks budgets at
// the warmup→measure boundary. A PHP cell shrugs it off — the paper's
// allocators recycle and stop mapping after warmup, so a limit below the
// already-mapped footprint is never consulted again. A restarting Ruby cell
// must remap mid-measure, cannot, and becomes a deterministic FAILED row —
// contained to the cell, never a process crash.
func TestSqueezeFaultDegradesGracefully(t *testing.T) {
	cfg := faultCfg()
	run := func(c Cell) (CellResult, *Runner) {
		r := NewRunner(cfg)
		r.Faults = FaultPlan{Squeeze: 0.5}
		return r.Run(c), r
	}

	php, _ := run(phpCell("xeon", "default", workload.PhpBB().Name, 1))
	if php.Failed || php.Pressured {
		t.Errorf("squeezed PHP cell: failed=%v pressured=%v; recycling heaps must ride it out",
			php.Failed, php.Pressured)
	}

	ruby, r := run(rubyRestartCell())
	if !ruby.Failed {
		t.Fatal("squeezed restarting Ruby cell completed; its restart cannot fit 0.5× its footprint")
	}
	if ruby.Pressured {
		t.Error("static squeeze (no controller) must not mark the result pressured")
	}
	if fails := r.Failures(); len(fails) != 1 {
		t.Fatalf("failures = %d, want 1 contained FAILED row", len(fails))
	}
	// Deterministic: the same squeeze fails the same way again.
	again, _ := run(rubyRestartCell())
	if !reflect.DeepEqual(ruby, again) {
		t.Errorf("squeeze fault is not deterministic:\nfirst %+v\nagain %+v", ruby, again)
	}
}

// TestPressuredResultsNotMemoizedOrCached: when a live controller denies a
// cell's mappings — here a starved controller under which a Ruby restart
// cannot remap — the outcome is pressured: returned to the caller (as a
// FAILED row) but never memoized or written to the cell cache, because it
// reflects the pressure of the moment, not the cell.
func TestPressuredResultsNotMemoizedOrCached(t *testing.T) {
	cfg := faultCfg()
	c := rubyRestartCell()

	// A 1-byte total with a 1-byte floor pins every tenant's limit at
	// live+1, so the restart's remapping is denied.
	ctrl := budget.New(1, budget.Policy{Floor: 1})
	defer ctrl.Close()
	r := NewRunner(cfg)
	r.Budget = ctrl
	cache, err := NewCellCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	r.Cache = cache

	got := r.Run(c)
	if !got.Failed || !got.Pressured {
		t.Fatalf("starved run: failed=%v pressured=%v; want a pressured FAILED row",
			got.Failed, got.Pressured)
	}
	if ctrl.Denials() == 0 {
		t.Error("controller recorded no denials")
	}
	if _, ok := cache.load(r.Cfg, c); ok {
		t.Error("pressured result was written to the cell cache")
	}
	r.Run(c)
	r.mu.Lock()
	memo := r.memoHits
	r.mu.Unlock()
	if memo != 0 {
		t.Error("pressured result was memoized")
	}
}

// TestCellBudgetStaticKeyedAndDeterministic: a static Cell.Budget is part
// of the cell identity (distinct key) and its outcome — including the
// FAILED row below the allocator's memory floor — is deterministic and
// memoizable.
func TestCellBudgetStaticKeyedAndDeterministic(t *testing.T) {
	cfg := faultCfg()
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)
	cb := c
	cb.Budget = 1 * mem.MiB
	if c.Key() == cb.Key() {
		t.Fatalf("budgeted cell shares key %q with unbudgeted", c.Key())
	}

	// Above zend's memory floor: completes, with numbers identical to the
	// unbudgeted run (the limit was never hit).
	r := NewRunner(cfg)
	fits := r.Run(cb)
	if fits.Failed || fits.Pressured || fits.BudgetDenials != 0 {
		t.Fatalf("1 MiB zend cell: %+v; want a clean completion", fits)
	}
	clean := NewRunner(cfg).Run(c)
	if !reflect.DeepEqual(fits.Res, clean.Res) {
		t.Error("unexercised budget changed the cell's numbers")
	}

	// Below the floor: construction cannot fit, a deterministic FAILED
	// row — and, unlike pressured failures, it is memoized.
	tiny := c
	tiny.Budget = 256 * mem.KiB
	tr := NewRunner(cfg)
	if got := tr.Run(tiny); !got.Failed {
		t.Fatal("zend cell built inside 256 KiB; expected a FAILED row")
	}
	tr.Run(tiny)
	tr.mu.Lock()
	memo := tr.memoHits
	tr.mu.Unlock()
	if memo != 1 {
		t.Errorf("memoHits = %d; a static-budget FAILED row must be memoized", memo)
	}
}
