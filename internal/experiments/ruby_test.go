package experiments

import "testing"

// rubyTestRunner is coarse enough for quick shape checks; Ruby cells
// internally lengthen their horizons so processes age and restart.
func rubyTestRunner() *Runner {
	return NewRunner(Config{Scale: 128, Warmup: 1, Measure: 2, Seed: 20090615})
}

func TestFig10OrderingMatchesPaper(t *testing.T) {
	// Paper §4.4 / Figure 10: DDmalloc > TCmalloc > Hoard >= glibc.
	r := rubyTestRunner()
	entries := Fig10(r)
	byName := map[string]float64{}
	for _, e := range entries {
		byName[e.Alloc] = e.Throughput
	}
	if byName["ddmalloc"] <= byName["tcmalloc"] {
		t.Errorf("DDmalloc %.1f <= TCmalloc %.1f", byName["ddmalloc"], byName["tcmalloc"])
	}
	if byName["ddmalloc"] <= byName["glibc"] {
		t.Errorf("DDmalloc %.1f <= glibc %.1f", byName["ddmalloc"], byName["glibc"])
	}
	if byName["tcmalloc"] <= byName["glibc"] {
		t.Errorf("TCmalloc %.1f <= glibc %.1f", byName["tcmalloc"], byName["glibc"])
	}
	// The paper's margins: DD +13.6% over glibc, +5.3% over TCmalloc.
	// Shape check: the DD advantage over glibc must be a clear win but
	// not absurd.
	rel := byName["ddmalloc"]/byName["glibc"] - 1
	if rel < 0.02 || rel > 0.60 {
		t.Errorf("DD vs glibc = %+.1f%%, outside plausible band", rel*100)
	}
}

func TestFig11DDSpendsLeastOnMemoryManagement(t *testing.T) {
	r := rubyTestRunner()
	entries := Fig11(r)
	mm := map[string]float64{}
	for _, e := range entries {
		mm[e.Alloc] = e.MMPct
	}
	// Paper Figure 11: "DDmalloc obviously spent the least time on
	// memory operations among the tested allocators."
	for _, other := range []string{"glibc", "hoard", "tcmalloc"} {
		if mm["ddmalloc"] >= mm[other] {
			t.Errorf("DDmalloc mm share %.1f%% >= %s %.1f%%", mm["ddmalloc"], other, mm[other])
		}
	}
	if mm["glibc"] <= 0 {
		t.Fatalf("glibc mm share %.1f%%; breakdown missing", mm["glibc"])
	}
}

func TestFig12RestartMattersMoreForDD(t *testing.T) {
	if testing.Short() {
		t.Skip("restart sweep needs long process horizons")
	}
	r := rubyTestRunner()
	entries := Fig12(r)
	best := map[string]float64{}
	noRestart := map[string]float64{}
	for _, e := range entries {
		if e.Period == 0 {
			noRestart[e.Alloc] = e.Throughput
		}
		if e.Throughput > best[e.Alloc] {
			best[e.Alloc] = e.Throughput
		}
	}
	// Paper Figure 12's robust shape: periodic restarts pay off against
	// heap aging (some period beats never restarting), and the boot cost
	// keeps very frequent restarts from dominating. (The paper's finer
	// claim — DD gaining more than glibc — holds at fine scale only;
	// see EXPERIMENTS.md.)
	for _, alloc := range []string{"glibc", "ddmalloc"} {
		gain := best[alloc]/noRestart[alloc] - 1
		if gain < 0 {
			t.Errorf("%s: best restart period loses to no-restart (%+.2f%%)", alloc, gain*100)
		}
	}
	var at20, atBest float64
	for _, e := range entries {
		if e.Alloc == "ddmalloc" && e.Period == 20 {
			at20 = e.Throughput
		}
	}
	atBest = best["ddmalloc"]
	if at20 > atBest {
		t.Errorf("DD restart@20 (%.1f) beats every longer period (%.1f); boot cost missing", at20, atBest)
	}
}

func TestRubyRestartPeriodScaling(t *testing.T) {
	r := NewRunner(Config{Scale: 8, Warmup: 1, Measure: 1, Seed: 1})
	if got := r.rubyRestart(500); got != 500 {
		t.Errorf("scale 8: rubyRestart(500) = %d, want 500 (paper scale)", got)
	}
	r64 := NewRunner(Config{Scale: 64, Warmup: 1, Measure: 1, Seed: 1})
	if got := r64.rubyRestart(500); got != 62 {
		t.Errorf("scale 64: rubyRestart(500) = %d, want 62", got)
	}
	if got := r64.rubyRestart(0); got != 0 {
		t.Errorf("rubyRestart(0) = %d, want 0 (no restarts)", got)
	}
	if got := r64.rubyRestart(20); got < 2 {
		t.Errorf("rubyRestart(20) = %d, want clamped >= 2", got)
	}
}
