package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The Runner.Exec seam is how a fleet coordinator swaps local simulation
// for remote dispatch while keeping the runner's memo, cell cache, and
// singleflight. These tests pin that contract without any HTTP involved.

func execFixture() (Cell, CellResult) {
	c := Cell{Platform: "xeon", Alloc: "ddmalloc", Workload: "phpBB", Cores: 8}
	return c, CellResult{Cell: c, Footprint: 123.25, TxnsPerStream: 3}
}

// TestExecSingleflightCollapses: concurrent RunContext calls for one cell
// must produce exactly one Exec call — the fleet-wide request-coalescing
// guarantee — and later calls must be served from the memo.
func TestExecSingleflightCollapses(t *testing.T) {
	cell, want := execFixture()
	var calls atomic.Int64
	r := NewRunner(DefaultConfig())
	r.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		calls.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open for the herd
		return want, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := r.RunContext(context.Background(), cell); got != want {
				t.Errorf("got %+v, want %+v", got, want)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("8 concurrent runs made %d Exec calls, want 1", n)
	}
	if got := r.Run(cell); got != want {
		t.Fatalf("memoized run got %+v, want %+v", got, want)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("memoized run re-executed (calls %d)", n)
	}
}

// TestExecTransientNotMemoized: an ErrTransient failure (unreachable shard,
// dropped stream) is environmental — recorded, but the next call gets a
// fresh attempt instead of the poisoned verdict.
func TestExecTransientNotMemoized(t *testing.T) {
	cell, want := execFixture()
	var calls atomic.Int64
	r := NewRunner(DefaultConfig())
	r.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		if calls.Add(1) == 1 {
			return CellResult{}, fmt.Errorf("%w: worker unreachable", ErrTransient)
		}
		return want, nil
	}
	if res := r.Run(cell); !res.Failed {
		t.Fatal("transient failure did not fail the first run")
	}
	if fails := r.Failures(); len(fails) != 1 || !errors.Is(fails[0].Err, ErrTransient) {
		t.Fatalf("failures = %v, want one ErrTransient", fails)
	}
	if res := r.Run(cell); res.Failed {
		t.Fatal("second run still failed: transient verdict was memoized")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("Exec called %d times, want 2 (retry after transient)", n)
	}
}

// TestExecDeterministicFailureMemoized: a remote failure that is the
// cell's own (not transient, not cancellation) memoizes like a local
// simulation failure — retrying it elsewhere would fail the same way.
func TestExecDeterministicFailureMemoized(t *testing.T) {
	cell, _ := execFixture()
	var calls atomic.Int64
	r := NewRunner(DefaultConfig())
	r.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		calls.Add(1)
		return CellResult{}, errors.New("cell panicked on the worker")
	}
	if res := r.Run(cell); !res.Failed {
		t.Fatal("deterministic failure did not fail the run")
	}
	if res := r.Run(cell); !res.Failed {
		t.Fatal("memoized failure lost")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("Exec called %d times, want 1 (failure memoized)", n)
	}
}

// TestExecCancelledContextNotMemoized: cancellation during a remote
// dispatch behaves exactly like local cancellation — failed now, fresh
// attempt later.
func TestExecCancelledContextNotMemoized(t *testing.T) {
	cell, want := execFixture()
	var calls atomic.Int64
	r := NewRunner(DefaultConfig())
	r.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return CellResult{}, ctx.Err()
		}
		return want, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if res := r.RunContext(ctx, cell); !res.Failed {
		t.Fatal("cancelled dispatch did not fail")
	}
	if res := r.Run(cell); res.Failed {
		t.Fatal("cancellation was memoized")
	}
}

// TestExecResultsFeedTheSharedCache: a successful remote result is stored
// through the runner's cache exactly like a local one, so a cell executed
// anywhere in a fleet is a cache hit everywhere; Failed results never are.
func TestExecResultsFeedTheSharedCache(t *testing.T) {
	cell, want := execFixture()
	be := NewMemBackend()
	r := NewRunner(DefaultConfig())
	r.Cache = NewCellCacheOn(be)
	r.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		return want, nil
	}
	if got := r.Run(cell); got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// A second runner sharing the backend (but with no Exec at all) must be
	// served from the cache without simulating.
	r2 := NewRunner(DefaultConfig())
	r2.Cache = NewCellCacheOn(be)
	r2.Exec = func(ctx context.Context, c Cell) (CellResult, error) {
		t.Error("cache-hit cell reached Exec")
		return CellResult{}, errors.New("unreachable")
	}
	if got := r2.Run(cell); got != want {
		t.Fatalf("shared-cache run got %+v, want %+v", got, want)
	}
	if m := r2.BuildManifest(nil); m.CacheHits != 1 {
		t.Fatalf("manifest cache hits = %d, want 1", m.CacheHits)
	}
}
