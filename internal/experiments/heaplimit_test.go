package experiments

import (
	"reflect"
	"testing"

	"webmm/internal/mem"
)

// TestHeapLimitSweep checks the sweep's shape at test scale: every allocator
// has a memory floor — identical throughput above it, a FAILED row below it
// — and the whole table is deterministic.
func TestHeapLimitSweep(t *testing.T) {
	r := NewRunner(faultCfg())
	entries := HeapLimit(r)

	want := len(PHPAllocators()) * len(HeapLimitBudgets)
	if len(entries) != want {
		t.Fatalf("sweep produced %d entries, want %d", len(entries), want)
	}

	byAlloc := map[string][]HeapLimitEntry{}
	for _, e := range entries {
		byAlloc[e.Alloc] = append(byAlloc[e.Alloc], e)
	}
	for _, alloc := range PHPAllocators() {
		es := byAlloc[alloc]
		if len(es) == 0 {
			t.Fatalf("allocator %q missing from the sweep", alloc)
		}
		if es[0].Budget != 0 || es[0].Failed {
			t.Fatalf("%s: first entry must be a clean unlimited baseline, got %+v", alloc, es[0])
		}
		// The ladder descends: once an allocator fails, every smaller
		// budget fails too (the floor is a cliff, not a band).
		failed := false
		for _, e := range es {
			if failed && !e.Failed {
				t.Errorf("%s: completed at %s below a failed larger budget", alloc, budgetLabel(e.Budget))
			}
			failed = failed || e.Failed
			if !e.Failed {
				// Above the floor the limit is free: throughput matches
				// unlimited exactly (the paper's allocators pre-size and
				// recycle, so an unexercised budget changes nothing).
				if e.Throughput != es[0].Throughput {
					t.Errorf("%s @%s: throughput %v differs from unlimited %v",
						alloc, budgetLabel(e.Budget), e.Throughput, es[0].Throughput)
				}
				if e.VsUnlimited != 1 {
					t.Errorf("%s @%s: VsUnlimited = %v, want 1", alloc, budgetLabel(e.Budget), e.VsUnlimited)
				}
			}
		}
		if !failed {
			t.Errorf("%s: no budget in the ladder found the allocator's floor", alloc)
		}
	}

	// The floors spread across allocator families (the experiment's
	// finding): zend arenas fit where region buffers cannot.
	zendAt := func(b uint64) HeapLimitEntry {
		for _, e := range byAlloc["default"] {
			if e.Budget == b {
				return e
			}
		}
		t.Fatalf("budget %d not in sweep", b)
		return HeapLimitEntry{}
	}
	if e := zendAt(2 * mem.MiB); e.Failed {
		t.Error("zend failed at 2MiB; its arenas fit in under 1MiB")
	}
	for _, e := range byAlloc["region"] {
		if e.Budget == 2*mem.MiB && !e.Failed {
			t.Error("region completed at 2MiB; its pre-mapped buffers need hundreds of MiB")
		}
	}

	// Deterministic: a fresh runner reproduces the table exactly.
	again := HeapLimit(NewRunner(faultCfg()))
	if !reflect.DeepEqual(entries, again) {
		t.Error("heap-limit sweep is not deterministic across runners")
	}

	// Renderers accept the entries (smoke: no panics, rows line up).
	if tab := HeapLimitTable(entries); len(tab.Rows) != len(entries) {
		t.Errorf("table has %d rows for %d entries", len(tab.Rows), len(entries))
	}
	HeapLimitChart(entries)
}
