package experiments

import "webmm/internal/workload"

// Cell planners. Each FigNCells/TableNCells method enumerates exactly the
// cells its experiment function will ask the Runner for, in a deterministic
// order, so a scheduler can fan the whole plan out over a worker pool
// (Runner.RunAll) before the figure code renders from the memoized results.
// Planners only enumerate — they never simulate — so they are cheap to call
// and safe to combine; RunAll dedups cells shared between figures.

// Fig1Cells plans Figure 1 (default vs region, MediaWiki rw, 8 Xeon cores).
func (r *Runner) Fig1Cells() []Cell {
	wl := workload.MediaWikiRW().Name
	return []Cell{
		phpCell("xeon", "default", wl, 8),
		phpCell("xeon", "region", wl, 8),
	}
}

// Table3Cells plans Table 3 (every workload on the default allocator).
func (r *Runner) Table3Cells() []Cell {
	var out []Cell
	for _, p := range workload.Profiles() {
		out = append(out, phpCell("xeon", "default", p.Name, 1))
	}
	return out
}

// Fig5Cells plans Figure 5 (all workloads x all PHP allocators, 8 cores,
// both platforms).
func (r *Runner) Fig5Cells() []Cell {
	var out []Cell
	for _, plat := range []string{"xeon", "niagara"} {
		for _, p := range workload.Profiles() {
			for _, alloc := range PHPAllocators() {
				out = append(out, phpCell(plat, alloc, p.Name, 8))
			}
		}
	}
	return out
}

// Fig6Cells plans Figure 6 (CPU-time breakdown on 8 Xeon cores).
func (r *Runner) Fig6Cells() []Cell {
	var out []Cell
	for _, p := range workload.Profiles() {
		for _, alloc := range PHPAllocators() {
			out = append(out, phpCell("xeon", alloc, p.Name, 8))
		}
	}
	return out
}

// Fig7Cells plans Figure 7 (MediaWiki read-only core-count sweep).
func (r *Runner) Fig7Cells() []Cell {
	wl := workload.MediaWikiRO().Name
	var out []Cell
	for _, plat := range []string{"xeon", "niagara"} {
		for _, alloc := range PHPAllocators() {
			for _, cores := range Fig7Cores {
				out = append(out, phpCell(plat, alloc, wl, cores))
			}
		}
	}
	return out
}

// Table4Cells plans Table 4 (1- and 8-core cells for every workload,
// allocator and platform; the default-allocator baselines are among them).
func (r *Runner) Table4Cells() []Cell {
	var out []Cell
	for _, p := range workload.Profiles() {
		for _, plat := range []string{"xeon", "niagara"} {
			for _, alloc := range PHPAllocators() {
				for _, cores := range []int{1, 8} {
					out = append(out, phpCell(plat, alloc, p.Name, cores))
				}
			}
		}
	}
	return out
}

// Fig8Cells plans Figure 8; its event deltas come from the same 8-core
// matrix as Figure 5, so the plans coincide and RunAll dedups them.
func (r *Runner) Fig8Cells() []Cell { return r.Fig5Cells() }

// Fig9Cells plans Figure 9 (per-transaction footprints on one Xeon core).
func (r *Runner) Fig9Cells() []Cell {
	var out []Cell
	for _, p := range workload.Profiles() {
		for _, alloc := range PHPAllocators() {
			out = append(out, phpCell("xeon", alloc, p.Name, 1))
		}
	}
	return out
}

// Fig10Cells plans Figure 10 (Rails allocator comparison at the paper's
// restart period, adjusted for the configured scale).
func (r *Runner) Fig10Cells() []Cell {
	restart := r.rubyRestart(rubyRestartEvery)
	var out []Cell
	for _, alloc := range RubyAllocators() {
		out = append(out, rubyCell(alloc, restart))
	}
	return out
}

// Fig11Cells plans Figure 11, which breaks down the same Rails cells as
// Figure 10.
func (r *Runner) Fig11Cells() []Cell { return r.Fig10Cells() }

// Fig12Cells plans Figure 12 (restart-period sweep for glibc and DDmalloc,
// including the no-restart baselines).
func (r *Runner) Fig12Cells() []Cell {
	var out []Cell
	for _, alloc := range []string{"glibc", "ddmalloc"} {
		out = append(out, rubyCell(alloc, 0))
		for _, period := range Fig12Periods {
			out = append(out, rubyCell(alloc, r.rubyRestart(period)))
		}
	}
	return out
}
