package experiments

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// forEachBackend runs one conformance case against every CacheBackend the
// repo ships: the original disk layout, the in-memory store, and the HTTP
// remote backend layered over each of them (a live httptest server mounting
// CacheHandler, exactly how a fleet shares one store). The cell-level
// guarantees live in CellCache, above the seam, so every backend must pass
// every case identically.
func forEachBackend(t *testing.T, fn func(t *testing.T, be CacheBackend)) {
	t.Helper()
	remote := func(inner CacheBackend) (CacheBackend, func()) {
		mux := http.NewServeMux()
		mux.Handle("/cache/", CacheHandler(inner))
		srv := httptest.NewServer(mux)
		return NewHTTPBackend(srv.URL), srv.Close
	}
	t.Run("disk", func(t *testing.T) {
		be, err := NewDiskBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		fn(t, be)
	})
	t.Run("mem", func(t *testing.T) { fn(t, NewMemBackend()) })
	t.Run("http-disk", func(t *testing.T) {
		inner, err := NewDiskBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		be, stop := remote(inner)
		defer stop()
		fn(t, be)
	})
	t.Run("http-mem", func(t *testing.T) {
		be, stop := remote(NewMemBackend())
		defer stop()
		fn(t, be)
	})
}

func conformanceFixture() (Config, Cell, CellResult) {
	cfg := DefaultConfig()
	cell := Cell{Platform: "xeon", Alloc: "ddmalloc", Workload: "phpBB", Cores: 8}
	res := CellResult{Cell: cell, Footprint: 4242.5, TxnsPerStream: 3}
	return cfg, cell, res
}

func TestCacheBackendRoundtrip(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be CacheBackend) {
		cc := NewCellCacheOn(be)
		cfg, cell, res := conformanceFixture()
		if _, ok := cc.load(cfg, cell); ok {
			t.Fatal("empty cache reported a hit")
		}
		cc.store(cfg, cell, res)
		got, ok := cc.load(cfg, cell)
		if !ok {
			t.Fatal("stored entry missed")
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("loaded %+v, stored %+v", got, res)
		}
		// Any key ingredient changing must miss: the entry is addressed by
		// (version, Config, Cell), not just the cell.
		other := cfg
		other.Seed++
		if _, ok := cc.load(other, cell); ok {
			t.Fatal("entry for a different config hit")
		}
		cc.be.Delete(cc.key(cfg, cell))
		if _, ok := cc.load(cfg, cell); ok {
			t.Fatal("deleted entry still hit")
		}
	})
}

func TestCacheBackendVersionMismatchSelfHeals(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be CacheBackend) {
		cc := NewCellCacheOn(be)
		cfg, cell, res := conformanceFixture()
		// Plant an otherwise-valid entry claiming a stale format version at
		// the current key (simulating a hash collision across versions or a
		// corrupted version field).
		data, err := json.Marshal(cellEntry{
			Version: cellCacheVersion + 1, Cfg: cfg, Cell: cell, Result: res,
		})
		if err != nil {
			t.Fatal(err)
		}
		key := cc.key(cfg, cell)
		be.Store(key, data)
		if _, ok := cc.load(cfg, cell); ok {
			t.Fatal("stale-version entry served")
		}
		if _, ok := be.Load(key); ok {
			t.Fatal("stale-version entry not self-healed away")
		}
	})
}

func TestCacheBackendCorruptEntrySelfHeals(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be CacheBackend) {
		cc := NewCellCacheOn(be)
		cfg, cell, _ := conformanceFixture()
		cc.storeCorrupt(cfg, cell)
		key := cc.key(cfg, cell)
		if _, ok := be.Load(key); !ok {
			t.Fatal("corrupt entry was not written")
		}
		if _, ok := cc.load(cfg, cell); ok {
			t.Fatal("corrupt entry served")
		}
		if _, ok := be.Load(key); ok {
			t.Fatal("corrupt entry not self-healed away")
		}
	})
}

func TestCacheBackendRejectsFailedResults(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be CacheBackend) {
		cc := NewCellCacheOn(be)
		cfg, cell, res := conformanceFixture()
		// Outbound: a Failed result is refused at store time — a failure can
		// be environmental and must never masquerade as the cell's answer.
		res.Failed = true
		cc.store(cfg, cell, res)
		key := cc.key(cfg, cell)
		if _, ok := be.Load(key); ok {
			t.Fatal("Failed result was stored")
		}
		// Inbound: a Failed entry planted by an older writer (or another
		// fleet member) is rejected on load and deleted.
		data, err := json.Marshal(cellEntry{
			Version: cellCacheVersion, Cfg: cfg, Cell: cell, Result: res,
		})
		if err != nil {
			t.Fatal(err)
		}
		be.Store(key, data)
		if _, ok := cc.load(cfg, cell); ok {
			t.Fatal("Failed entry served")
		}
		if _, ok := be.Load(key); ok {
			t.Fatal("Failed entry not self-healed away")
		}
	})
}

func TestCacheBackendConcurrentStore(t *testing.T) {
	forEachBackend(t, func(t *testing.T, be CacheBackend) {
		cc := NewCellCacheOn(be)
		cfg, cell, res := conformanceFixture()
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cc.store(cfg, cell, res)
			}()
		}
		wg.Wait()
		got, ok := cc.load(cfg, cell)
		if !ok {
			t.Fatal("entry missing after concurrent stores")
		}
		if !reflect.DeepEqual(got, res) {
			t.Fatalf("loaded %+v after concurrent stores, want %+v", got, res)
		}
	})
}

func TestValidCacheKey(t *testing.T) {
	for _, tc := range []struct {
		key string
		ok  bool
	}{
		{"0123456789abcdef0123456789abcdef", true},
		{"ab", true},
		{"", false},
		{"ABCDEF", false},                      // upper-case hex is never emitted
		{"..", false},                          // path traversal
		{"0123456789abcdexyz", false},          // non-hex
		{strings.Repeat("a", 64), true},        // max length
		{strings.Repeat("a", 65), false},       // too long
		{"0123456789abcdef/0123456789", false}, // embedded separator
		{"0123456789abcdef.json", false},       // extension injection
	} {
		if got := validCacheKey(tc.key); got != tc.ok {
			t.Errorf("validCacheKey(%q) = %v, want %v", tc.key, got, tc.ok)
		}
	}
}

func TestCacheHandlerProtocol(t *testing.T) {
	mux := http.NewServeMux()
	mux.Handle("/cache/", CacheHandler(NewMemBackend()))
	srv := httptest.NewServer(mux)
	defer srv.Close()

	do := func(method, key string, body string) *http.Response {
		t.Helper()
		var rd *strings.Reader
		if body == "" {
			rd = strings.NewReader("")
		} else {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, srv.URL+"/cache/"+key, rd)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if resp := do(http.MethodGet, "abcd", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET miss: HTTP %d, want 404", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "abcd", `{"x":1}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: HTTP %d, want 204", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "abcd", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET hit: HTTP %d, want 200", resp.StatusCode)
	}
	if resp := do(http.MethodDelete, "abcd", ""); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: HTTP %d, want 204", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "abcd", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: HTTP %d, want 404", resp.StatusCode)
	}
	if resp := do(http.MethodPost, "abcd", "x"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST: HTTP %d, want 405", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "NOT-HEX", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad key: HTTP %d, want 400", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "abcd", strings.Repeat("x", maxCacheEntryBytes+1)); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT: HTTP %d, want 413", resp.StatusCode)
	}
}

func TestCacheHandlerNilBackend(t *testing.T) {
	rec := httptest.NewRecorder()
	CacheHandler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/cache/abcd", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("nil backend: HTTP %d, want 503", rec.Code)
	}
}

// TestDiskLayoutUnchanged pins the on-disk format to the pre-refactor
// layout (dir/<key>.json, raw entry JSON) so cache directories written
// before the CacheBackend seam keep hitting after it.
func TestDiskLayoutUnchanged(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCellCacheOn(be)
	cfg, cell, res := conformanceFixture()
	cc.store(cfg, cell, res)
	key := cc.key(cfg, cell)
	path := fmt.Sprintf("%s/%s.json", dir, key)
	if _, ok := be.Load(key); !ok {
		t.Fatalf("no entry at %s", path)
	}
	// A second CellCache opened the historical way must hit the entry.
	cc2, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cc2.load(cfg, cell); !ok {
		t.Fatal("reopened disk cache missed a stored entry")
	}
}
