package experiments

import (
	"fmt"

	"webmm/internal/memsys"
	"webmm/internal/report"
	"webmm/internal/workload"
)

// ---------------------------------------------------------------------------
// Memory-scheduler sweep: allocator × DRAM scheduling policy × core count,
// the question the paper's bus model cannot ask. The paper attributes the
// region allocator's 8-core collapse to raw bus traffic; swapping the bus
// for the DRAM model (internal/memsys) decomposes that traffic by where it
// lands: region's sequential buffer sweeps enjoy open-row hits, DDmalloc's
// recycled pools revisit rows, and the interleaving of 8 cores' streams at
// the banks is exactly what the scheduling policy arbitrates. The figure
// reports, per (allocator, policy, cores) point, throughput against the
// same allocator on the plain bus and the row-buffer hit/conflict split —
// the allocator × policy interaction the ISSUE's acceptance criterion asks
// to be visible.

// MemSchedCores is the core-count axis: the mid-point and the full machine,
// where inter-core bank interference is strongest.
var MemSchedCores = []int{4, 8}

// memSchedWorkload is the swept workload: MediaWiki(rw) — the paper's
// read/write workload, whose dirty-line writebacks give the banks both
// demand reads and writeback traffic to arbitrate.
func memSchedWorkload() string { return workload.MediaWikiRW().Name }

// MemSchedEntry is one (allocator, policy, cores) point of the sweep.
// Policy "bus" is the paper's flat bus model — the baseline row.
type MemSchedEntry struct {
	Alloc      string
	Policy     string
	Cores      int
	Throughput float64
	// VsBus is throughput relative to the same allocator and core count
	// on the bus model.
	VsBus float64
	// Row-buffer outcome rates (fractions of all DRAM requests); zero for
	// the bus rows, which have no banks.
	RowHitRate      float64
	RowConflictRate float64
	MaxBankQueue    int
	Failed          bool
}

// memSchedCell is one sweep cell: MediaWiki(rw) on Xeon, the platform whose
// bus is the paper's bottleneck. policy "" is the bus baseline.
func memSchedCell(alloc, policy string, cores int) Cell {
	c := phpCell("xeon", alloc, memSchedWorkload(), cores)
	c.MemSched = policy
	return c
}

// MemSched runs the sweep: every PHP allocator × (bus + every registered
// policy) × MemSchedCores.
func MemSched(r *Runner) []MemSchedEntry {
	var out []MemSchedEntry
	for _, alloc := range PHPAllocators() {
		for _, cores := range MemSchedCores {
			base := r.Run(memSchedCell(alloc, "", cores))
			out = append(out, MemSchedEntry{
				Alloc: alloc, Policy: "bus", Cores: cores,
				Throughput: base.Res.Throughput,
				VsBus:      relThroughput(base, base),
				Failed:     base.Failed,
			})
			for _, p := range memsys.PolicyNames() {
				cr := r.Run(memSchedCell(alloc, string(p), cores))
				e := MemSchedEntry{
					Alloc: alloc, Policy: string(p), Cores: cores,
					Throughput: cr.Res.Throughput,
					VsBus:      relThroughput(cr, base),
					Failed:     cr.Failed || base.Failed,
				}
				if ms := cr.Res.Mem; ms != nil {
					e.RowHitRate = ms.RowHitRate()
					e.RowConflictRate = ms.RowConflictRate()
					e.MaxBankQueue = ms.MaxQueueDepth
				}
				out = append(out, e)
			}
		}
	}
	return out
}

// MemSchedTable renders the sweep.
func MemSchedTable(entries []MemSchedEntry) *report.Table {
	t := report.New("Memory-scheduler sweep: allocator x policy x cores (MediaWiki(rw), Xeon)",
		"allocator", "policy", "cores", "transactions/sec", "vs bus", "row hits", "row conflicts", "max bank queue")
	for _, e := range entries {
		if e.Failed {
			t.Add(e.Alloc, e.Policy, fmt.Sprint(e.Cores), "FAILED", "-", "-", "-", "-")
			continue
		}
		hit, conf, q := "-", "-", "-"
		if e.Policy != "bus" {
			hit = report.PctOf(e.RowHitRate)
			conf = report.PctOf(e.RowConflictRate)
			q = fmt.Sprint(e.MaxBankQueue)
		}
		t.Add(e.Alloc, e.Policy, fmt.Sprint(e.Cores), report.F(e.Throughput, 1),
			report.Pct(e.VsBus), hit, conf, q)
	}
	return t
}

// MemSchedChart renders the row-buffer hit rate of every DRAM point — the
// allocator × policy interaction is the spread of these bars: allocators
// whose placement streams rows sit high, and policies reorder the same
// traffic into different hit rates.
func MemSchedChart(entries []MemSchedEntry) *report.Chart {
	ch := report.NewChart("DRAM row-buffer hit rate (%) by allocator x policy x cores")
	for _, e := range entries {
		if e.Policy == "bus" || e.Failed {
			continue
		}
		ch.Add(fmt.Sprintf("%-8s %-7s @%d", e.Alloc, e.Policy, e.Cores), 100*e.RowHitRate)
	}
	return ch
}

// MemSchedCells plans the sweep for the runner's prefetching planner.
func (r *Runner) MemSchedCells() []Cell {
	var out []Cell
	for _, alloc := range PHPAllocators() {
		for _, cores := range MemSchedCores {
			out = append(out, memSchedCell(alloc, "", cores))
			for _, p := range memsys.PolicyNames() {
				out = append(out, memSchedCell(alloc, string(p), cores))
			}
		}
	}
	return out
}
