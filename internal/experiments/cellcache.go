package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cellCacheVersion invalidates every on-disk entry when the simulator or
// the stored result format changes. Bump it whenever a code change can
// alter any cell's numbers; stale-version files are simply never matched
// again (their keys differ) and any that are hit anyway fail the embedded
// version check.
//
// v2: LRU replacement state became counter-free (packed recency
// permutations). Outputs are bit-identical at the scales the repo runs —
// verified against v1 captures — but a paper-scale (scale 1) cell prices
// enough accesses to wrap v1's 32-bit LRU tick, so v1 entries near that
// boundary are not trustworthy and must not be reused. The committed
// fingerprint in testdata/cell_fingerprint.txt is tied to this version;
// regenerate it (go test ./internal/experiments -run Fingerprint -update)
// whenever the version bumps.
const cellCacheVersion = 2

// CellCache persists CellResults on disk so repeated CLI runs skip
// already-simulated cells. Entries are keyed by a hash of (format version,
// Config, Cell): changing any Config field — scale, warmup, measure, seed,
// the large-page variant — produces different keys, so a cache directory
// can safely be shared between configurations. A nil *CellCache is valid
// and caches nothing, which is how the Runner treats "cache disabled".
type CellCache struct {
	dir string
}

// NewCellCache opens (creating if needed) a cache rooted at dir.
func NewCellCache(dir string) (*CellCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	return &CellCache{dir: dir}, nil
}

// cellEntry is the on-disk format. Config and Cell are stored alongside the
// result and re-verified on load, so a hash collision, a stale format, or a
// corrupted file can never satisfy the wrong lookup — it just misses.
type cellEntry struct {
	Version int
	Cfg     Config
	Cell    Cell
	Result  CellResult
}

func (cc *CellCache) path(cfg Config, c Cell) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%+v|%+v", cellCacheVersion, cfg, c)))
	return filepath.Join(cc.dir, hex.EncodeToString(h[:16])+".json")
}

// load returns the cached result for (cfg, c) if present and valid. An
// invalid entry — truncated, corrupted, or recording the wrong key — is
// deleted on the spot, so one bad file costs one re-simulation rather than
// a parse failure on every future run (the cache self-heals).
func (cc *CellCache) load(cfg Config, c Cell) (CellResult, bool) {
	if cc == nil {
		return CellResult{}, false
	}
	path := cc.path(cfg, c)
	data, err := os.ReadFile(path)
	if err != nil {
		return CellResult{}, false
	}
	var e cellEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != cellCacheVersion || e.Cfg != cfg || e.Cell != c ||
		e.Result.Failed {
		_ = os.Remove(path)
		return CellResult{}, false
	}
	return e.Result, true
}

// store persists the result for (cfg, c). Failures are silent: the cache is
// best-effort and a run must never fail because its cache directory did.
// The write-then-rename keeps any concurrent reader from observing partial
// entries, and os.CreateTemp gives every writer its own scratch file: two
// Runners in one process (the server's steady state) or two processes
// storing the same cell never interleave writes — last rename wins, and
// both rename complete entries.
func (cc *CellCache) store(cfg Config, c Cell, res CellResult) {
	if cc == nil {
		return
	}
	data, err := json.Marshal(cellEntry{
		Version: cellCacheVersion, Cfg: cfg, Cell: c, Result: res,
	})
	if err != nil {
		return
	}
	f, err := os.CreateTemp(cc.dir, "cell-*.tmp")
	if err != nil {
		return
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if cerr := f.Close(); werr != nil || cerr != nil {
		_ = os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, cc.path(cfg, c)); err != nil {
		_ = os.Remove(tmp)
	}
}

// storeCorrupt writes a deliberately broken entry for (cfg, c) — fault
// injection for the self-healing load path (FaultPlan.CacheCorrupt). A
// later load must reject it, delete it, and re-simulate.
func (cc *CellCache) storeCorrupt(cfg Config, c Cell) {
	if cc == nil {
		return
	}
	_ = os.WriteFile(cc.path(cfg, c), []byte(`{"Version":`), 0o644)
}
