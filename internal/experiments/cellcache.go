package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// cellCacheVersion invalidates every on-disk entry when the simulator or
// the stored result format changes. Bump it whenever a code change can
// alter any cell's numbers; stale-version files are simply never matched
// again (their keys differ) and any that are hit anyway fail the embedded
// version check.
//
// v2: LRU replacement state became counter-free (packed recency
// permutations). Outputs are bit-identical at the scales the repo runs —
// verified against v1 captures — but a paper-scale (scale 1) cell prices
// enough accesses to wrap v1's 32-bit LRU tick, so v1 entries near that
// boundary are not trustworthy and must not be reused. The committed
// fingerprint in testdata/cell_fingerprint.txt is tied to this version;
// regenerate it (go test ./internal/experiments -run Fingerprint -update)
// whenever the version bumps.
const cellCacheVersion = 2

// CellCache persists CellResults so repeated runs skip already-simulated
// cells. Entries are keyed by a hash of (format version, Config, Cell):
// changing any Config field — scale, warmup, measure, seed, the large-page
// variant — produces different keys, so one store can safely be shared
// between configurations, between processes, and (through an HTTP backend)
// between every instance of a serve fleet. A nil *CellCache is valid and
// caches nothing, which is how the Runner treats "cache disabled".
//
// Storage is pluggable (CacheBackend); the verification that makes sharing
// safe lives here, above the seam, so every backend is equally trustworthy.
type CellCache struct {
	be CacheBackend
}

// NewCellCache opens (creating if needed) a disk-backed cache rooted at
// dir — the original on-disk layout, unchanged.
func NewCellCache(dir string) (*CellCache, error) {
	be, err := NewDiskBackend(dir)
	if err != nil {
		return nil, fmt.Errorf("cellcache: %w", err)
	}
	return &CellCache{be: be}, nil
}

// NewCellCacheOn wraps an arbitrary backend — a remote HTTP store shared
// by a fleet, or an in-memory store for tests. nil yields a nil cache
// (caches nothing).
func NewCellCacheOn(be CacheBackend) *CellCache {
	if be == nil {
		return nil
	}
	return &CellCache{be: be}
}

// cellEntry is the stored format. Config and Cell are stored alongside the
// result and re-verified on load, so a hash collision, a stale format, or a
// corrupted entry can never satisfy the wrong lookup — it just misses.
type cellEntry struct {
	Version int
	Cfg     Config
	Cell    Cell
	Result  CellResult
}

// key is the content address of (cfg, c): the first 16 bytes of a sha256
// over the version and both structs, hex-encoded. Identical to the disk
// cache's historical file naming (minus the ".json" the disk backend adds),
// so pre-refactor cache directories keep hitting.
func (cc *CellCache) key(cfg Config, c Cell) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%+v|%+v", cellCacheVersion, cfg, c)))
	return hex.EncodeToString(h[:16])
}

// load returns the cached result for (cfg, c) if present and valid. An
// invalid entry — truncated, corrupted, recording the wrong key, or
// claiming a Failed result (never trustworthy from a cache) — is deleted
// on the spot, so one bad entry costs one re-simulation rather than a
// parse failure on every future run (the cache self-heals).
func (cc *CellCache) load(cfg Config, c Cell) (CellResult, bool) {
	if cc == nil {
		return CellResult{}, false
	}
	key := cc.key(cfg, c)
	data, ok := cc.be.Load(key)
	if !ok {
		return CellResult{}, false
	}
	var e cellEntry
	if err := json.Unmarshal(data, &e); err != nil ||
		e.Version != cellCacheVersion || e.Cfg != cfg || e.Cell != c ||
		e.Result.Failed {
		cc.be.Delete(key)
		return CellResult{}, false
	}
	return e.Result, true
}

// store persists the result for (cfg, c). Failed results are never stored:
// a failure can be environmental (timeout, remote shard error) and must not
// masquerade as the cell's answer — and load would reject it anyway.
// Everything else is best-effort through the backend: a run must never fail
// because its cache did.
func (cc *CellCache) store(cfg Config, c Cell, res CellResult) {
	if cc == nil || res.Failed {
		return
	}
	data, err := json.Marshal(cellEntry{
		Version: cellCacheVersion, Cfg: cfg, Cell: c, Result: res,
	})
	if err != nil {
		return
	}
	cc.be.Store(cc.key(cfg, c), data)
}

// storeCorrupt writes a deliberately broken entry for (cfg, c) — fault
// injection for the self-healing load path (FaultPlan.CacheCorrupt). A
// later load must reject it, delete it, and re-simulate.
func (cc *CellCache) storeCorrupt(cfg Config, c Cell) {
	if cc == nil {
		return
	}
	cc.be.Store(cc.key(cfg, c), []byte(`{"Version":`))
}
