package experiments

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// CacheBackend is the storage seam under CellCache: an opaque blob store
// keyed by the cache's content-addressed hex keys. The cell-level contract
// — version/config/cell verification, Failed-result rejection, corrupt-
// entry self-healing — lives above the seam in CellCache, so every backend
// behaves identically (see the conformance suite in cachebackend_test.go);
// a backend only moves bytes.
//
// All methods are best-effort, mirroring the original disk cache: a
// backend that is down or full makes every Load a miss and every
// Store/Delete a no-op, and a run must never fail because its cache did.
// Implementations must be safe for concurrent use.
type CacheBackend interface {
	// Load returns the bytes stored under key, or ok=false on a miss.
	Load(key string) (data []byte, ok bool)
	// Store persists data under key, replacing any previous entry.
	// Concurrent stores of the same key must each leave a complete entry
	// (last writer wins); readers never observe a partial one.
	Store(key string, data []byte)
	// Delete removes the entry for key (no-op when absent). CellCache
	// calls it to self-heal entries that fail verification.
	Delete(key string)
}

// maxCacheEntryBytes bounds one cache entry in the HTTP backend and
// handler. Cell entries are a few KB of JSON; 8 MiB is a generous ceiling
// that still stops an errant client from streaming gigabytes at the store.
const maxCacheEntryBytes = 8 << 20

// ---------------------------------------------------------------------------
// Disk backend: the original on-disk layout (dir/<key>.json), unchanged so
// existing cache directories stay valid across the refactor.

type diskBackend struct{ dir string }

// NewDiskBackend opens (creating if needed) a blob store rooted at dir.
func NewDiskBackend(dir string) (CacheBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &diskBackend{dir: dir}, nil
}

func (d *diskBackend) path(key string) string {
	return filepath.Join(d.dir, key+".json")
}

func (d *diskBackend) Load(key string) ([]byte, bool) {
	data, err := os.ReadFile(d.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Store writes via CreateTemp + rename: every writer gets its own scratch
// file, so two processes (or two Runners in one) storing the same key never
// interleave writes — last rename wins, and both rename complete entries.
func (d *diskBackend) Store(key string, data []byte) {
	f, err := os.CreateTemp(d.dir, "cell-*.tmp")
	if err != nil {
		return
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if cerr := f.Close(); werr != nil || cerr != nil {
		_ = os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, d.path(key)); err != nil {
		_ = os.Remove(tmp)
	}
}

func (d *diskBackend) Delete(key string) { _ = os.Remove(d.path(key)) }

// ---------------------------------------------------------------------------
// Memory backend: for tests and cache-serving instances without a disk.

type memBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemBackend returns an in-process blob store. Entries are copied on
// both Store and Load so callers can never alias the stored bytes.
func NewMemBackend() CacheBackend {
	return &memBackend{m: make(map[string][]byte)}
}

func (b *memBackend) Load(key string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.m[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, true
}

func (b *memBackend) Store(key string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.m[key] = cp
	b.mu.Unlock()
}

func (b *memBackend) Delete(key string) {
	b.mu.Lock()
	delete(b.m, key)
	b.mu.Unlock()
}

// ---------------------------------------------------------------------------
// HTTP backend + handler: the fleet-shared remote store. A webmm serve
// instance mounts CacheHandler over its local backend at /cache/, and every
// other instance points an HTTP backend at it, so one content-addressed
// result store serves the whole fleet. Client and server live side by side
// here because they are two halves of one wire protocol:
//
//	GET    /cache/{key} -> 200 + entry bytes | 404
//	PUT    /cache/{key} -> 204 (entry replaced)
//	DELETE /cache/{key} -> 204 (entry gone)

type httpBackend struct {
	base   string
	client *http.Client
}

// NewHTTPBackend returns a backend that stores entries on the webmm
// instance at base (e.g. "http://cache-host:8080"), which must serve the
// /cache/ route. Failures degrade to misses, never errors: a fleet whose
// cache host is down just re-simulates.
func NewHTTPBackend(base string) CacheBackend {
	return &httpBackend{
		base:   strings.TrimRight(base, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (b *httpBackend) url(key string) string { return b.base + "/cache/" + key }

func (b *httpBackend) Load(key string) ([]byte, bool) {
	resp, err := b.client.Get(b.url(key))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCacheEntryBytes))
	if err != nil {
		return nil, false
	}
	return data, true
}

func (b *httpBackend) Store(key string, data []byte) {
	req, err := http.NewRequest(http.MethodPut, b.url(key), strings.NewReader(string(data)))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func (b *httpBackend) Delete(key string) {
	req, err := http.NewRequest(http.MethodDelete, b.url(key), nil)
	if err != nil {
		return
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// validCacheKey accepts exactly the keys CellCache emits: non-empty
// lowercase hex, bounded length. Anything else is rejected before it can
// reach a backend (a disk backend turns keys into file names).
func validCacheKey(key string) bool {
	if len(key) == 0 || len(key) > 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// CacheHandler serves be over the /cache/{key} wire protocol above. A nil
// backend yields 503 for every request, so a server without a cache can
// still mount the route and answer honestly.
func CacheHandler(be CacheBackend) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if be == nil {
			http.Error(w, "no cache configured", http.StatusServiceUnavailable)
			return
		}
		key := r.URL.Path
		if i := strings.LastIndexByte(key, '/'); i >= 0 {
			key = key[i+1:]
		}
		if !validCacheKey(key) {
			http.Error(w, "bad cache key", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			data, ok := be.Load(key)
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
		case http.MethodPut:
			data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCacheEntryBytes))
			if err != nil {
				http.Error(w, "entry too large", http.StatusRequestEntityTooLarge)
				return
			}
			be.Store(key, data)
			w.WriteHeader(http.StatusNoContent)
		case http.MethodDelete:
			be.Delete(key)
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "GET, PUT or DELETE", http.StatusMethodNotAllowed)
		}
	})
}
