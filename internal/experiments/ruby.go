package experiments

import (
	"webmm/internal/report"
	"webmm/internal/sim"
)

// The paper's Ruby on Rails study (§4.4) restarts every runtime process
// once per 500 transactions for all allocators, "because it was beneficial
// for all of the allocators".
const rubyRestartEvery = 500

// rubyRestart returns the restart period adjusted to the configured scale:
// the paper's 500-transaction lifetime is defined against full-size
// transactions, so a scaled-down run shortens the lifetime proportionally
// to keep heap aging per process constant.
func (r *Runner) rubyRestart(period int) int {
	if period == 0 {
		return 0
	}
	p := period * 8 / r.Cfg.Scale
	if p < 2 {
		p = 2
	}
	return p
}

// RubyRestartPeriod converts a restart period expressed in the paper's
// full-scale transactions into this runner's scaled Cell.RestartEvery value
// (0 stays 0, meaning no restarts). The public Study API accepts paper-scale
// periods and converts through here.
func (r *Runner) RubyRestartPeriod(period int) int { return r.rubyRestart(period) }

// ---------------------------------------------------------------------------
// Figure 10: Rails throughput under glibc, Hoard, TCmalloc and DDmalloc on
// 8 Xeon cores.

// Fig10Entry is one bar.
type Fig10Entry struct {
	Alloc      string
	Throughput float64
	RelToGlibc float64
	Failed     bool
}

// Fig10 runs the Ruby allocator comparison.
func Fig10(r *Runner) []Fig10Entry {
	restart := r.rubyRestart(rubyRestartEvery)
	base := r.Run(rubyCell("glibc", restart))
	var out []Fig10Entry
	for _, alloc := range RubyAllocators() {
		cr := r.Run(rubyCell(alloc, restart))
		out = append(out, Fig10Entry{
			Alloc:      alloc,
			Throughput: cr.Res.Throughput,
			RelToGlibc: relThroughput(cr, base),
			Failed:     cr.Failed || base.Failed,
		})
	}
	return out
}

// Fig10Table renders Figure 10.
func Fig10Table(entries []Fig10Entry) *report.Table {
	t := report.New("Figure 10: Ruby on Rails throughput, 8 Xeon cores (restart every 500 txns)",
		"allocator", "transactions/sec", "vs glibc")
	for _, e := range entries {
		if e.Failed {
			t.Add(e.Alloc, "FAILED", "-")
			continue
		}
		t.Add(e.Alloc, report.F(e.Throughput, 1), report.Pct(e.RelToGlibc))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 11: Rails CPU time per transaction breakdown, normalized so glibc
// totals 100%.

// Fig11Entry is one stacked bar.
type Fig11Entry struct {
	Alloc           string
	MMPct, OtherPct float64
	Failed          bool
}

// Fig11 runs the Ruby breakdown.
func Fig11(r *Runner) []Fig11Entry {
	restart := r.rubyRestart(rubyRestartEvery)
	baseCr := r.Run(rubyCell("glibc", restart))
	base := baseCr.Res.CyclesPerTxn()
	var out []Fig11Entry
	for _, alloc := range RubyAllocators() {
		cr := r.Run(rubyCell(alloc, restart))
		if cr.Failed || baseCr.Failed || base == 0 {
			out = append(out, Fig11Entry{Alloc: alloc, Failed: true})
			continue
		}
		mm := cr.Res.ClassCyclesPerTxn(sim.ClassAlloc)
		total := cr.Res.CyclesPerTxn()
		out = append(out, Fig11Entry{
			Alloc:    alloc,
			MMPct:    mm / base * 100,
			OtherPct: (total - mm) / base * 100,
		})
	}
	return out
}

// Fig11Table renders Figure 11.
func Fig11Table(entries []Fig11Entry) *report.Table {
	t := report.New("Figure 11: Rails CPU time per transaction breakdown, 8 Xeon cores (glibc = 100)",
		"allocator", "memory management", "others", "total")
	for _, e := range entries {
		if e.Failed {
			t.Add(e.Alloc, "FAILED", "-", "-")
			continue
		}
		t.Add(e.Alloc, report.F(e.MMPct, 1), report.F(e.OtherPct, 1),
			report.F(e.MMPct+e.OtherPct, 1))
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 12: throughput improvement from restarting the Ruby processes at
// various periods, for glibc and DDmalloc.

// Fig12Periods is the paper's sweep (0 = no restart).
var Fig12Periods = []int{20, 100, 500, 2500, 0}

// Fig12Entry is one curve point.
type Fig12Entry struct {
	Alloc        string
	Period       int // full-scale transactions per process; 0 = no restart
	Throughput   float64
	VsNoRestart  float64 // relative to the same allocator without restarts
	Failed       bool
}

// Fig12 runs the restart-period sweep.
func Fig12(r *Runner) []Fig12Entry {
	var out []Fig12Entry
	for _, alloc := range []string{"glibc", "ddmalloc"} {
		base := r.Run(rubyCell(alloc, 0))
		for _, period := range Fig12Periods {
			cr := r.Run(rubyCell(alloc, r.rubyRestart(period)))
			out = append(out, Fig12Entry{
				Alloc:       alloc,
				Period:      period,
				Throughput:  cr.Res.Throughput,
				VsNoRestart: relThroughput(cr, base),
				Failed:      cr.Failed || base.Failed,
			})
		}
	}
	return out
}

// Fig12Table renders Figure 12.
func Fig12Table(entries []Fig12Entry) *report.Table {
	t := report.New("Figure 12: throughput vs process restart period (Rails, 8 Xeon cores)",
		"allocator", "restart period", "transactions/sec", "vs no restart")
	for _, e := range entries {
		period := "no restart"
		if e.Period > 0 {
			period = report.F(float64(e.Period), 0)
		}
		if e.Failed {
			t.Add(e.Alloc, period, "FAILED", "-")
			continue
		}
		t.Add(e.Alloc, period, report.F(e.Throughput, 1), report.Pct(e.VsNoRestart))
	}
	return t
}
