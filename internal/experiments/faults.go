package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"webmm/internal/mem"
)

// FaultPlan configures deterministic fault injection for a Runner. All
// randomness derives from (Config.Seed, cell, stream, attempt), so a given
// plan reproduces the same failures run after run — a failing cell can be
// re-simulated in isolation with the same flags and fail the same way.
//
// A zero FaultPlan injects nothing and leaves every number bit-identical to
// a Runner without one.
type FaultPlan struct {
	// OOMRate is the per-Map probability that a stream's address space
	// refuses the mapping (TryMap returns an OOMError). Injectors arm
	// after runtime construction, so injected OOM lands on the
	// steady-state allocation paths the bail-out machinery handles.
	OOMRate float64
	// PanicRate is the per-(cell, attempt) probability of a panic thrown
	// inside the simulation, exercising the runner's recover/retry path.
	PanicRate float64
	// Budget caps each stream's address space at this many mapped bytes
	// (0 = unlimited). Unlike OOMRate it is deterministic pressure: the
	// heap that outgrows the budget fails, every time.
	Budget uint64
	// Squeeze, when > 0, shrinks every stream's budget to this factor of
	// its footprint at the warmup→measure boundary — the dynamic analogue
	// of Budget: the limit moves mid-run, the way a pressure controller
	// moves it, instead of standing still. With a budget controller
	// attached (Runner.Budget) the squeeze flows through the controller's
	// rebalance path; otherwise it is applied directly to the address
	// spaces. Factors < 1 force denials on the next arena map.
	Squeeze float64
	// CacheCorrupt makes the Runner write deliberately truncated cell-cache
	// entries, exercising the cache's self-healing load path. It is the
	// one fault that does not bypass the cache (corrupting a cache nobody
	// reads would test nothing).
	CacheCorrupt bool
}

// Active reports whether the plan can perturb simulation results. Active
// plans bypass the cell cache in both directions: perturbed results must
// never be stored where a clean run would load them, and cached clean
// results would mask the injected faults.
func (f FaultPlan) Active() bool {
	return f.OOMRate > 0 || f.PanicRate > 0 || f.Budget > 0 || f.Squeeze > 0
}

// ParseFaults parses a -faults flag value: comma-separated directives
//
//	oom:RATE          inject mapping failures with probability RATE
//	panic:RATE        inject simulation panics with probability RATE
//	budget:SIZE       cap each stream's mapped bytes (e.g. 64MiB, 1GiB)
//	squeeze:FACTOR    shrink budgets to FACTOR × footprint mid-run
//	cachecorrupt      write corrupted cell-cache entries
//
// e.g. "oom:0.01,panic:0.1,budget:64MiB,cachecorrupt". An empty string is
// the zero plan.
func ParseFaults(s string) (FaultPlan, error) {
	var f FaultPlan
	s = strings.TrimSpace(s)
	if s == "" {
		return f, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, ":")
		switch key {
		case "oom", "panic":
			if !hasVal {
				return f, fmt.Errorf("faults: %q needs a rate, e.g. %s:0.01", key, key)
			}
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil || rate < 0 || rate > 1 {
				return f, fmt.Errorf("faults: bad rate %q for %s (want 0..1)", val, key)
			}
			if key == "oom" {
				f.OOMRate = rate
			} else {
				f.PanicRate = rate
			}
		case "budget":
			if !hasVal {
				return f, fmt.Errorf("faults: budget needs a size, e.g. budget:64MiB")
			}
			n, err := ParseSize(val)
			if err != nil {
				return f, fmt.Errorf("faults: %w", err)
			}
			f.Budget = n
		case "squeeze":
			if !hasVal {
				return f, fmt.Errorf("faults: squeeze needs a factor, e.g. squeeze:0.5")
			}
			factor, err := strconv.ParseFloat(val, 64)
			if err != nil || factor <= 0 {
				return f, fmt.Errorf("faults: bad factor %q for squeeze (want > 0)", val)
			}
			f.Squeeze = factor
		case "cachecorrupt":
			if hasVal {
				return f, fmt.Errorf("faults: cachecorrupt takes no value")
			}
			f.CacheCorrupt = true
		case "":
			return f, fmt.Errorf("faults: empty directive in %q", s)
		default:
			return f, fmt.Errorf("faults: unknown directive %q (want oom, panic, budget, squeeze, cachecorrupt)", key)
		}
	}
	return f, nil
}

// ParseSize parses a byte size with an optional KiB/MiB/GiB (or K/M/G)
// suffix, as written in -faults budget: directives and the CLI's budget
// flags.
func ParseSize(s string) (uint64, error) {
	mult := uint64(1)
	for _, suf := range []struct {
		name string
		mult uint64
	}{
		{"KiB", mem.KiB}, {"MiB", mem.MiB}, {"GiB", mem.GiB},
		{"K", mem.KiB}, {"M", mem.MiB}, {"G", mem.GiB},
	} {
		if strings.HasSuffix(s, suf.name) {
			s, mult = strings.TrimSuffix(s, suf.name), suf.mult
			break
		}
	}
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 64MiB, 2G, 4096)", s)
	}
	return n * mult, nil
}
