package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"webmm/internal/workload"
)

// parCfg is a cheap config for the scheduler tests: the phpBB matrix below
// simulates in well under a second per cell at this scale.
func parCfg() Config { return Config{Scale: 64, Warmup: 1, Measure: 1, Seed: 7} }

// parMatrix is a multi-cell plan covering both platforms, every PHP
// allocator, and two core counts.
func parMatrix() []Cell {
	wl := workload.PhpBB().Name
	var cells []Cell
	for _, plat := range []string{"xeon", "niagara"} {
		for _, alloc := range PHPAllocators() {
			for _, cores := range []int{1, 2} {
				cells = append(cells, phpCell(plat, alloc, wl, cores))
			}
		}
	}
	return cells
}

// TestRunAllMatchesSerial is the determinism contract of the scheduler:
// fanning a matrix out over 4 workers must produce CellResults deep-equal
// to the serial Run loop, and RunAll with jobs=1 (the CLI's -jobs 1 path)
// must match as well.
func TestRunAllMatchesSerial(t *testing.T) {
	cells := parMatrix()

	serial := NewRunner(parCfg())
	want := make([]CellResult, len(cells))
	for i, c := range cells {
		want[i] = serial.Run(c)
	}

	par := NewRunner(parCfg())
	got := par.RunAll(cells, 4)
	for i := range cells {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("cell %+v: parallel result differs from serial", cells[i])
		}
	}

	one := NewRunner(parCfg())
	if gotOne := one.RunAll(cells, 1); !reflect.DeepEqual(want, gotOne) {
		t.Error("RunAll(jobs=1) differs from the serial Run loop")
	}
}

// TestConcurrentRunSameCell races many Run calls for one cell; under
// `go test -race` this also proves the memo map and singleflight are
// data-race free.
func TestConcurrentRunSameCell(t *testing.T) {
	r := NewRunner(parCfg())
	c := phpCell("xeon", "ddmalloc", workload.PhpBB().Name, 1)
	const n = 8
	results := make([]CellResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(c)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent Run call %d returned a different result", i)
		}
	}
}

// TestRunAllDedupsDuplicates: duplicate cells in a plan share one
// simulation but still fill every output slot, in order.
func TestRunAllDedupsDuplicates(t *testing.T) {
	r := NewRunner(parCfg())
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)
	d := phpCell("xeon", "region", workload.PhpBB().Name, 1)
	got := r.RunAll([]Cell{c, d, c, c}, 2)
	if len(got) != 4 {
		t.Fatalf("RunAll returned %d results for 4 cells", len(got))
	}
	if !reflect.DeepEqual(got[0], got[2]) || !reflect.DeepEqual(got[0], got[3]) {
		t.Error("duplicate cells returned differing results")
	}
	if got[1].Cell != d {
		t.Error("results not in input order")
	}
}

// TestCellPlannersCoverFigures: every planner yields cells, and a plan must
// cover its figure exactly — running the plan first, the figure function
// may not simulate any cell the planner missed.
func TestCellPlannersCoverFigures(t *testing.T) {
	r := NewRunner(parCfg())
	for _, name := range []string{"fig1", "table3", "fig5", "fig6", "fig7",
		"table4", "fig8", "fig9", "fig10", "fig11", "fig12", "all"} {
		if len(r.CellsFor(name)) == 0 {
			t.Errorf("CellsFor(%q) is empty", name)
		}
	}
	if r.CellsFor("table2") != nil {
		t.Error("table2 simulates nothing but has a cell plan")
	}
	if r.CellsFor("nonsense") != nil {
		t.Error("unknown experiment has a cell plan")
	}

	// Coverage check on the biggest PHP plan (Table 4) and the Ruby sweep
	// (Figure 12), at a coarse scale to stay fast.
	cov := NewRunner(Config{Scale: 1024, Warmup: 1, Measure: 1, Seed: 7})
	cov.RunAll(cov.Table4Cells(), 4)
	before := len(cov.cells)
	Table4(cov)
	if after := len(cov.cells); after != before {
		t.Errorf("Table4 simulated %d cells beyond its plan", after-before)
	}
	cov.RunAll(cov.Fig12Cells(), 4)
	before = len(cov.cells)
	Fig12(cov)
	if after := len(cov.cells); after != before {
		t.Errorf("Fig12 simulated %d cells beyond its plan", after-before)
	}
}

// TestTimeoutLeavesNoGoroutines is the regression test for the old watchdog
// timeout, which returned to the caller while the simulation goroutine kept
// running (burning CPU and writing telemetry) until the cell finished on its
// own. Cancellation is now cooperative on the caller's goroutine, so after a
// forced timeout the process must be back to its baseline goroutine count —
// nothing abandoned, nothing leaked.
func TestTimeoutLeavesNoGoroutines(t *testing.T) {
	// Scale 16 cells run for hundreds of milliseconds; a 1ms budget is
	// guaranteed to expire mid-simulation, never before it starts.
	r := NewRunner(Config{Scale: 16, Warmup: 1, Measure: 1, Seed: 7})
	r.Timeout = time.Millisecond
	wl := workload.PhpBB().Name

	base := runtime.NumGoroutine()
	cells := []Cell{
		phpCell("xeon", "default", wl, 1),
		phpCell("xeon", "region", wl, 1),
		phpCell("niagara", "ddmalloc", wl, 1),
	}
	for _, res := range r.RunAll(cells, 2) {
		if !res.Failed {
			t.Fatal("1ms timeout did not fail the cell")
		}
	}
	if len(r.Failures()) != len(cells) {
		t.Fatalf("want %d recorded timeouts, got %d", len(cells), len(r.Failures()))
	}

	// RunAll's workers and the context timers need a moment to unwind;
	// poll rather than sleep a fixed (flaky) amount.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after timeout: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestCancelledCellNotPoisoned: a cancellation failure is environmental, not
// a property of the cell, so it must not be memoized — the next caller with
// a live context gets a real simulation, bit-identical to an undisturbed run.
func TestCancelledCellNotPoisoned(t *testing.T) {
	cfg := parCfg()
	c := phpCell("xeon", "ddmalloc", workload.PhpBB().Name, 1)

	want := NewRunner(cfg).Run(c)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(cfg)
	if res := r.RunContext(ctx, c); !res.Failed {
		t.Fatal("cancelled context did not fail the cell")
	}
	if len(r.Failures()) != 1 {
		t.Fatalf("want 1 recorded cancellation, got %d", len(r.Failures()))
	}
	got := r.Run(c)
	if got.Failed {
		t.Fatal("cancellation failure was memoized: live re-run still failed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("re-run after cancellation differs from an undisturbed run")
	}
	if len(r.Failures()) != 1 {
		t.Error("successful re-run recorded a spurious failure")
	}
}

// TestCellCacheConcurrentStore: two runners in one process (webmm serve)
// share a cache directory, so store must be atomic under concurrency — a
// torn or cross-linked temp file would corrupt an entry another request is
// loading. Races many stores of the same and distinct cells and checks every
// entry round-trips and no temp files are left behind.
func TestCellCacheConcurrentStore(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg()
	wl := workload.PhpBB().Name
	cells := []Cell{
		phpCell("xeon", "default", wl, 1),
		phpCell("xeon", "region", wl, 2),
		phpCell("niagara", "ddmalloc", wl, 4),
	}
	results := make([]CellResult, len(cells))
	for i, c := range cells {
		results[i] = CellResult{Cell: c, TxnsPerStream: float64(i + 1)}
	}

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				i := (g + rep) % len(cells)
				cc.store(cfg, cells[i], results[i])
			}
		}(g)
	}
	wg.Wait()

	for i, c := range cells {
		got, ok := cc.load(cfg, c)
		if !ok || !reflect.DeepEqual(got, results[i]) {
			t.Errorf("cell %d does not round-trip after concurrent stores", i)
		}
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Errorf("concurrent stores left temp files behind: %v", tmps)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(entries) != len(cells) {
		t.Errorf("want %d cache entries, got %d", len(cells), len(entries))
	}
}

// TestCellCache exercises the on-disk cache: store-on-miss, load in a fresh
// runner, config-keyed invalidation, and corruption tolerance.
func TestCellCache(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg()
	c := phpCell("xeon", "region", workload.PhpBB().Name, 1)

	r1 := NewRunner(cfg)
	r1.Cache = cc
	want := r1.Run(c)

	// The entry must be on disk and loadable directly.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 cache entry, got %d (err %v)", len(entries), err)
	}
	if got, ok := cc.load(cfg, c); !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("cache load does not round-trip the stored result")
	}

	// A fresh runner (a new process, effectively) must serve it from disk
	// and return an identical result.
	r2 := NewRunner(cfg)
	r2.Cache = cc
	if got := r2.Run(c); !reflect.DeepEqual(got, want) {
		t.Error("cached result differs from simulated result")
	}

	// Any config change keys differently: no stale hits.
	cfg2 := cfg
	cfg2.Seed++
	if _, ok := cc.load(cfg2, c); ok {
		t.Error("cache hit across differing configs")
	}

	// A corrupted entry is ignored and the cell re-simulated bit-identically.
	if err := os.WriteFile(entries[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.load(cfg, c); ok {
		t.Error("corrupted cache entry satisfied a load")
	}
	r3 := NewRunner(cfg)
	r3.Cache = cc
	if got := r3.Run(c); !reflect.DeepEqual(got, want) {
		t.Error("re-simulated result after corruption differs")
	}

	// A nil cache is inert.
	var nilCache *CellCache
	if _, ok := nilCache.load(cfg, c); ok {
		t.Error("nil cache returned a hit")
	}
	nilCache.store(cfg, c, want)
}
