package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"webmm/internal/workload"
)

// parCfg is a cheap config for the scheduler tests: the phpBB matrix below
// simulates in well under a second per cell at this scale.
func parCfg() Config { return Config{Scale: 64, Warmup: 1, Measure: 1, Seed: 7} }

// parMatrix is a multi-cell plan covering both platforms, every PHP
// allocator, and two core counts.
func parMatrix() []Cell {
	wl := workload.PhpBB().Name
	var cells []Cell
	for _, plat := range []string{"xeon", "niagara"} {
		for _, alloc := range PHPAllocators() {
			for _, cores := range []int{1, 2} {
				cells = append(cells, phpCell(plat, alloc, wl, cores))
			}
		}
	}
	return cells
}

// TestRunAllMatchesSerial is the determinism contract of the scheduler:
// fanning a matrix out over 4 workers must produce CellResults deep-equal
// to the serial Run loop, and RunAll with jobs=1 (the CLI's -jobs 1 path)
// must match as well.
func TestRunAllMatchesSerial(t *testing.T) {
	cells := parMatrix()

	serial := NewRunner(parCfg())
	want := make([]CellResult, len(cells))
	for i, c := range cells {
		want[i] = serial.Run(c)
	}

	par := NewRunner(parCfg())
	got := par.RunAll(cells, 4)
	for i := range cells {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("cell %+v: parallel result differs from serial", cells[i])
		}
	}

	one := NewRunner(parCfg())
	if gotOne := one.RunAll(cells, 1); !reflect.DeepEqual(want, gotOne) {
		t.Error("RunAll(jobs=1) differs from the serial Run loop")
	}
}

// TestConcurrentRunSameCell races many Run calls for one cell; under
// `go test -race` this also proves the memo map and singleflight are
// data-race free.
func TestConcurrentRunSameCell(t *testing.T) {
	r := NewRunner(parCfg())
	c := phpCell("xeon", "ddmalloc", workload.PhpBB().Name, 1)
	const n = 8
	results := make([]CellResult, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = r.Run(c)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("concurrent Run call %d returned a different result", i)
		}
	}
}

// TestRunAllDedupsDuplicates: duplicate cells in a plan share one
// simulation but still fill every output slot, in order.
func TestRunAllDedupsDuplicates(t *testing.T) {
	r := NewRunner(parCfg())
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)
	d := phpCell("xeon", "region", workload.PhpBB().Name, 1)
	got := r.RunAll([]Cell{c, d, c, c}, 2)
	if len(got) != 4 {
		t.Fatalf("RunAll returned %d results for 4 cells", len(got))
	}
	if !reflect.DeepEqual(got[0], got[2]) || !reflect.DeepEqual(got[0], got[3]) {
		t.Error("duplicate cells returned differing results")
	}
	if got[1].Cell != d {
		t.Error("results not in input order")
	}
}

// TestCellPlannersCoverFigures: every planner yields cells, and a plan must
// cover its figure exactly — running the plan first, the figure function
// may not simulate any cell the planner missed.
func TestCellPlannersCoverFigures(t *testing.T) {
	r := NewRunner(parCfg())
	for _, name := range []string{"fig1", "table3", "fig5", "fig6", "fig7",
		"table4", "fig8", "fig9", "fig10", "fig11", "fig12", "all"} {
		if len(r.CellsFor(name)) == 0 {
			t.Errorf("CellsFor(%q) is empty", name)
		}
	}
	if r.CellsFor("table2") != nil {
		t.Error("table2 simulates nothing but has a cell plan")
	}
	if r.CellsFor("nonsense") != nil {
		t.Error("unknown experiment has a cell plan")
	}

	// Coverage check on the biggest PHP plan (Table 4) and the Ruby sweep
	// (Figure 12), at a coarse scale to stay fast.
	cov := NewRunner(Config{Scale: 1024, Warmup: 1, Measure: 1, Seed: 7})
	cov.RunAll(cov.Table4Cells(), 4)
	before := len(cov.cells)
	Table4(cov)
	if after := len(cov.cells); after != before {
		t.Errorf("Table4 simulated %d cells beyond its plan", after-before)
	}
	cov.RunAll(cov.Fig12Cells(), 4)
	before = len(cov.cells)
	Fig12(cov)
	if after := len(cov.cells); after != before {
		t.Errorf("Fig12 simulated %d cells beyond its plan", after-before)
	}
}

// TestCellCache exercises the on-disk cache: store-on-miss, load in a fresh
// runner, config-keyed invalidation, and corruption tolerance.
func TestCellCache(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := parCfg()
	c := phpCell("xeon", "region", workload.PhpBB().Name, 1)

	r1 := NewRunner(cfg)
	r1.Cache = cc
	want := r1.Run(c)

	// The entry must be on disk and loadable directly.
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("want 1 cache entry, got %d (err %v)", len(entries), err)
	}
	if got, ok := cc.load(cfg, c); !ok || !reflect.DeepEqual(got, want) {
		t.Fatal("cache load does not round-trip the stored result")
	}

	// A fresh runner (a new process, effectively) must serve it from disk
	// and return an identical result.
	r2 := NewRunner(cfg)
	r2.Cache = cc
	if got := r2.Run(c); !reflect.DeepEqual(got, want) {
		t.Error("cached result differs from simulated result")
	}

	// Any config change keys differently: no stale hits.
	cfg2 := cfg
	cfg2.Seed++
	if _, ok := cc.load(cfg2, c); ok {
		t.Error("cache hit across differing configs")
	}

	// A corrupted entry is ignored and the cell re-simulated bit-identically.
	if err := os.WriteFile(entries[0], []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cc.load(cfg, c); ok {
		t.Error("corrupted cache entry satisfied a load")
	}
	r3 := NewRunner(cfg)
	r3.Cache = cc
	if got := r3.Run(c); !reflect.DeepEqual(got, want) {
		t.Error("re-simulated result after corruption differs")
	}

	// A nil cache is inert.
	var nilCache *CellCache
	if _, ok := nilCache.load(cfg, c); ok {
		t.Error("nil cache returned a hit")
	}
	nilCache.store(cfg, c, want)
}
