// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment function runs the necessary
// (platform, allocator, workload, cores) cells through the simulator and
// renders the same rows/series the paper reports; a shared memoizing Runner
// keeps cells that several figures need (e.g. Figure 5 and Table 4) from
// being simulated twice.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"webmm/internal/apprt"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// Config controls simulation scale and measurement length.
type Config struct {
	// Scale divides every workload's Table 3 counts, the platform's L2
	// capacity, and its TLB reach, preserving the pressure ratios that
	// drive the paper's effects (DESIGN.md §5.4). Must be a power of
	// two; 1 is paper scale.
	Scale int
	// Warmup and Measure are transactions per stream.
	Warmup, Measure int
	// Seed derives all randomness.
	Seed uint64
	// XeonLargePages enables DDmalloc's large-page optimization on Xeon
	// (the paper's separate +11.7% experiment; off by default to match
	// the paper's primary Xeon configuration).
	XeonLargePages bool
}

// DefaultConfig is sized for interactive runs; the committed EXPERIMENTS.md
// numbers use Scale 8 (see that file for the exact configurations).
func DefaultConfig() Config {
	return Config{Scale: 32, Warmup: 2, Measure: 3, Seed: 20090615}
}

func (c Config) validate() {
	if c.Scale < 1 || c.Scale&(c.Scale-1) != 0 {
		panic(fmt.Sprintf("experiments: scale %d must be a power of two", c.Scale))
	}
}

// scalePlatform shrinks the capacity-dependent structures with the
// workload: live sets scale with transaction size, so L2 capacity and TLB
// reach scale alongside to preserve the paper's pressure ratios. Per-core
// L1s and hot metadata do not scale (they hold fixed hot structures), and
// bus bandwidth is untouched (bytes/cycle and cycles/txn shrink together,
// leaving utilization invariant).
func scalePlatform(p machine.Platform, scale int) machine.Platform {
	if scale == 1 {
		return p
	}
	sets := p.L2.Sets() / scale
	if sets < 64 {
		sets = 64
	}
	p.L2.Size = uint64(sets) * uint64(p.L2.Ways) * mem.LineSize
	tlb := p.TLBEntries / scale
	if tlb < 32 {
		tlb = 32
	}
	p.TLBEntries = tlb
	return p
}

// Cell identifies one simulated configuration.
type Cell struct {
	Platform string
	Alloc    string
	Workload string
	Cores    int
	// Ruby study extras.
	Ruby         bool
	RestartEvery int
}

// CellResult bundles everything an experiment needs from one run.
type CellResult struct {
	Cell
	Res machine.Result
	// Footprint is the mean per-transaction peak memory consumption
	// averaged over streams (Figure 9).
	Footprint float64
	// Calls is the per-stream-average generator API statistics
	// (Table 3).
	Calls heap.Stats
	// Txns per stream measured.
	TxnsPerStream float64
}

// Runner memoizes cell results for a fixed Config. It is safe for
// concurrent use: racing Run calls for the same cell collapse into a single
// simulation (singleflight), so figures that share cells (e.g. Figure 5 and
// Table 4) never double-simulate even when fanned out in parallel.
type Runner struct {
	Cfg Config
	// Cache, when non-nil, persists cell results on disk so repeated
	// process runs skip already-simulated cells. Set before the first
	// Run.
	Cache *CellCache

	mu       sync.Mutex
	cells    map[Cell]CellResult
	inflight map[Cell]*inflightCell
}

// inflightCell tracks one in-progress simulation so racing callers wait for
// the leader's result instead of simulating the cell again. res is written
// once by the leader before done is closed; the close is the
// happens-before edge that publishes it to waiters.
type inflightCell struct {
	done chan struct{}
	res  CellResult
}

// NewRunner returns a Runner for cfg.
func NewRunner(cfg Config) *Runner {
	cfg.validate()
	return &Runner{
		Cfg:      cfg,
		cells:    make(map[Cell]CellResult),
		inflight: make(map[Cell]*inflightCell),
	}
}

// footprinter lets the runner sample per-transaction footprints from either
// runtime type.
type footprinter interface {
	machine.Driver
	AvgFootprint() float64
	ResetFootprint()
}

// Run simulates (or returns the memoized result of) one cell. Concurrent
// calls are safe; concurrent calls for the same cell run one simulation.
func (r *Runner) Run(c Cell) CellResult {
	r.mu.Lock()
	if got, ok := r.cells[c]; ok {
		r.mu.Unlock()
		return got
	}
	if fl, ok := r.inflight[c]; ok {
		r.mu.Unlock()
		<-fl.done
		return fl.res
	}
	fl := &inflightCell{done: make(chan struct{})}
	r.inflight[c] = fl
	r.mu.Unlock()

	out, cached := r.Cache.load(r.Cfg, c)
	if !cached {
		out = r.simulate(c)
		r.Cache.store(r.Cfg, c, out)
	}

	fl.res = out
	r.mu.Lock()
	r.cells[c] = out
	delete(r.inflight, c)
	r.mu.Unlock()
	close(fl.done)
	return out
}

// RunAll simulates every cell of a plan, fanning the distinct cells out
// over jobs worker goroutines (jobs <= 0 means GOMAXPROCS). Every cell
// derives all of its randomness from Config.Seed and shares no state with
// other cells, so the schedule cannot change any number: RunAll is
// bit-identical to running the same cells serially, and jobs == 1 is
// exactly the serial loop. Results are returned in input order; duplicate
// cells share one simulation.
func (r *Runner) RunAll(cells []Cell, jobs int) []CellResult {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	seen := make(map[Cell]bool, len(cells))
	var uniq []Cell
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	if jobs > len(uniq) {
		jobs = len(uniq)
	}
	if jobs > 1 {
		work := make(chan Cell)
		var wg sync.WaitGroup
		wg.Add(jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				defer wg.Done()
				for c := range work {
					r.Run(c)
				}
			}()
		}
		for _, c := range uniq {
			work <- c
		}
		close(work)
		wg.Wait()
	}
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = r.Run(c)
	}
	return out
}

// simulate runs one cell from scratch. It touches no Runner state beyond
// the (immutable) Cfg, which is what makes parallel fan-out safe.
func (r *Runner) simulate(c Cell) CellResult {
	plat, err := machine.PlatformByName(c.Platform)
	if err != nil {
		panic(err)
	}
	plat = scalePlatform(plat, r.Cfg.Scale)

	prof, err := workload.ByName(c.Workload)
	if err != nil {
		panic(err)
	}
	allocCode, err := apprt.AllocCodeSize(c.Alloc)
	if err != nil {
		panic(err)
	}
	// Interpreter + compiled-script code footprint. Code size is a fixed
	// property of the software, like the allocator's own footprint, so
	// it does not scale with the workload.
	const appCode = 192 * mem.KiB
	m := machine.New(plat, c.Cores, allocCode, appCode, r.Cfg.Seed)

	largePages := plat.Name == "niagara" || (plat.Name == "xeon" && r.Cfg.XeonLargePages)
	drivers := make([]machine.Driver, m.NumStreams())
	fps := make([]footprinter, m.NumStreams())
	gens := make([]*workload.Generator, m.NumStreams())
	for i, s := range m.Streams() {
		opts := apprt.AllocOptions{PID: i, LargePages: largePages}
		if c.Ruby {
			rt, err := apprt.NewRuby(s.Env, c.Alloc, prof, r.Cfg.Scale, c.RestartEvery, opts)
			if err != nil {
				panic(err)
			}
			// The restart *period* is scaled by 8/scale (see
			// rubyRestart), so the restart cost is scaled by the
			// same factor on top of its per-scale default to keep
			// the overhead fraction per unit of work faithful.
			rt.RestartCost = rt.RestartCost * 8 / uint64(r.Cfg.Scale)
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		} else {
			rt, err := apprt.NewPHP(s.Env, c.Alloc, prof, r.Cfg.Scale, opts)
			if err != nil {
				panic(err)
			}
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		}
	}
	warmup, measure := r.Cfg.Warmup, r.Cfg.Measure
	if c.Ruby {
		// Ruby cells must run long enough that processes age, restart
		// on schedule, and the measurement samples a full process
		// lifetime (Figure 12's effect lives on that horizon).
		p500 := r.rubyRestart(rubyRestartEvery)
		if warmup < p500/2 {
			warmup = p500 / 2
		}
		if measure < p500+p500/4 {
			measure = p500 + p500/4
		}
	}
	m.PriceSetup()
	m.Run(drivers, warmup, 0)
	for _, fp := range fps {
		fp.ResetFootprint()
	}
	callsBefore := make([]heap.Stats, len(gens))
	for i, g := range gens {
		callsBefore[i] = g.Stats()
	}
	m.Run(drivers, 0, measure)

	res := m.Solve()
	out := CellResult{Cell: c, Res: res}
	var fpSum float64
	var calls heap.Stats
	for i := range fps {
		fpSum += fps[i].AvgFootprint()
		after := gens[i].Stats()
		calls.Mallocs += after.Mallocs - callsBefore[i].Mallocs
		calls.Frees += after.Frees - callsBefore[i].Frees
		calls.Reallocs += after.Reallocs - callsBefore[i].Reallocs
		calls.BytesRequested += after.BytesRequested - callsBefore[i].BytesRequested
		calls.BytesAllocated += after.BytesAllocated - callsBefore[i].BytesAllocated
	}
	out.Footprint = fpSum / float64(len(fps))
	out.Calls = calls
	out.TxnsPerStream = float64(res.Txns) / float64(len(fps))
	return out
}

// PHPAllocators are the three allocators of the PHP study, in the paper's
// reporting order.
func PHPAllocators() []string { return []string{"default", "region", "ddmalloc"} }

// RubyAllocators are the four allocators of the Ruby study (Figure 10's
// bar order).
func RubyAllocators() []string { return []string{"glibc", "hoard", "tcmalloc", "ddmalloc"} }

// phpCell is shorthand for a PHP-study cell.
func phpCell(platform, alloc, wl string, cores int) Cell {
	return Cell{Platform: platform, Alloc: alloc, Workload: wl, Cores: cores}
}

// rubyCell is shorthand for a Ruby-study cell.
func rubyCell(alloc string, restart int) Cell {
	return Cell{Platform: "xeon", Alloc: alloc, Workload: workload.Rails().Name,
		Cores: 8, Ruby: true, RestartEvery: restart}
}

// relThroughput returns alloc's throughput relative to the baseline cell's.
func relThroughput(x, base CellResult) float64 {
	if base.Res.Throughput == 0 {
		return 0
	}
	return x.Res.Throughput / base.Res.Throughput
}

// mmShare returns the memory-management share of attributed CPU time.
func mmShare(cr CellResult) float64 {
	mm := cr.Res.ByClass[sim.ClassAlloc].Cycles
	app := cr.Res.ByClass[sim.ClassApp].Cycles
	os := cr.Res.ByClass[sim.ClassOS].Cycles
	total := mm + app + os
	if total == 0 {
		return 0
	}
	return mm / total
}
