// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment function runs the necessary
// (platform, allocator, workload, cores) cells through the simulator and
// renders the same rows/series the paper reports; a shared memoizing Runner
// keeps cells that several figures need (e.g. Figure 5 and Table 4) from
// being simulated twice.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"webmm/internal/apprt"
	"webmm/internal/budget"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/memsys"
	"webmm/internal/sim"
	"webmm/internal/telemetry"
	"webmm/internal/workload"
)

// Config controls simulation scale and measurement length.
type Config struct {
	// Scale divides every workload's Table 3 counts, the platform's L2
	// capacity, and its TLB reach, preserving the pressure ratios that
	// drive the paper's effects (DESIGN.md §5.4). Must be a power of
	// two; 1 is paper scale.
	Scale int
	// Warmup and Measure are transactions per stream.
	Warmup, Measure int
	// Seed derives all randomness.
	Seed uint64
	// XeonLargePages enables DDmalloc's large-page optimization on Xeon
	// (the paper's separate +11.7% experiment; off by default to match
	// the paper's primary Xeon configuration).
	XeonLargePages bool
	// Fidelity selects how the measurement phase executes: FidelityFull
	// (the default; the empty string means the same) prices every
	// transaction, FidelitySampled prices a SMARTS-style sample of the
	// measured rounds (machine.DefaultSamplePlan) — much faster on long
	// measurement runs, with per-transaction statistics accurate to a
	// couple of percent. The field participates in the cell-cache key,
	// so full-fidelity cache entries are never served to sampled runs or
	// vice versa.
	Fidelity string
}

// The fidelity modes. FidelityFull is normalized to the empty string inside
// the runner so "full" and "" configurations share cache keys.
const (
	FidelityFull    = "full"
	FidelitySampled = "sampled"
)

// normalized canonicalizes spelling variants that must not produce distinct
// cache keys.
func (c Config) normalized() Config {
	if c.Fidelity == FidelityFull {
		c.Fidelity = ""
	}
	return c
}

// DefaultConfig is sized for interactive runs; the committed EXPERIMENTS.md
// numbers use Scale 8 (see that file for the exact configurations).
func DefaultConfig() Config {
	return Config{Scale: 32, Warmup: 2, Measure: 3, Seed: 20090615}
}

func (c Config) validate() {
	if c.Scale < 1 || c.Scale&(c.Scale-1) != 0 {
		panic(fmt.Sprintf("experiments: scale %d must be a power of two", c.Scale))
	}
	switch c.Fidelity {
	case "", FidelityFull, FidelitySampled:
	default:
		panic(fmt.Sprintf("experiments: unknown fidelity %q", c.Fidelity))
	}
}

// scalePlatform shrinks the capacity-dependent structures with the
// workload: live sets scale with transaction size, so L2 capacity and TLB
// reach scale alongside to preserve the paper's pressure ratios. Per-core
// L1s and hot metadata do not scale (they hold fixed hot structures), and
// bus bandwidth is untouched (bytes/cycle and cycles/txn shrink together,
// leaving utilization invariant).
func scalePlatform(p machine.Platform, scale int) machine.Platform {
	if scale == 1 {
		return p
	}
	sets := p.L2.Sets() / scale
	if sets < 64 {
		sets = 64
	}
	p.L2.Size = uint64(sets) * uint64(p.L2.Ways) * mem.LineSize
	tlb := p.TLBEntries / scale
	if tlb < 32 {
		tlb = 32
	}
	p.TLBEntries = tlb
	return p
}

// Cell identifies one simulated configuration.
type Cell struct {
	Platform string
	Alloc    string
	Workload string
	Cores    int
	// Ruby study extras.
	Ruby         bool
	RestartEvery int
	// Budget caps each stream's mapped bytes for this cell (0 =
	// unlimited). Unlike a controller-pushed limit it is static, so the
	// cell's outcome — including its bailouts and FAILED status — is
	// deterministic and cacheable; the heap-limit sweep is built on it.
	// omitempty keeps fingerprints of unbudgeted cells byte-identical to
	// builds that predate the field.
	Budget uint64 `json:",omitempty"`
	// MemSched, when non-empty, replaces the platform's bus memory system
	// with the DRAM model running the named scheduling policy (see
	// internal/memsys). Empty keeps the paper's bus model; omitempty
	// keeps bus-cell fingerprints byte-identical to builds that predate
	// the field.
	MemSched string `json:",omitempty"`
}

// CellResult bundles everything an experiment needs from one run.
type CellResult struct {
	Cell
	Res machine.Result
	// Footprint is the mean per-transaction peak memory consumption
	// averaged over streams (Figure 9).
	Footprint float64
	// Calls is the per-stream-average generator API statistics
	// (Table 3).
	Calls heap.Stats
	// Txns per stream measured.
	TxnsPerStream float64
	// Failed marks a cell whose simulation did not complete (panic,
	// timeout, cancellation, or configuration error); every other field
	// is zero and figures must render it as failed rather than as data.
	// omitempty keeps fault-free cache entries and fingerprints
	// byte-identical to builds that predate the field.
	Failed bool `json:",omitempty"`
	// BudgetDenials counts TryMap calls refused by a budget (static
	// Cell.Budget, a -faults budget/squeeze, or a controller-pushed
	// limit) across the cell's streams. Zero for unconstrained cells, so
	// omitempty preserves their fingerprints.
	BudgetDenials uint64 `json:",omitempty"`
	// Pressured marks a result perturbed by *dynamic* budget pressure: a
	// live controller (Runner.Budget) denied at least one mapping while
	// the cell ran. Such results depend on what else was running, so —
	// like cancelled cells — they are never memoized or written to the
	// cell cache. Cells the controller left alone are bit-identical to
	// unconstrained runs and cache as usual.
	Pressured bool `json:",omitempty"`
}

// CellError describes one cell whose simulation failed. The runner isolates
// the failure — a panicking cell cannot take down the process or the other
// cells of the plan — and records it here for the CLI's failure report.
type CellError struct {
	Cell     Cell
	Err      error  // the panic (wrapped), timeout, or configuration error
	Stack    []byte // goroutine stack at the point of a recovered panic
	Attempts int    // how many times the cell was tried
	// Pressured marks a failure that happened while a budget controller
	// was denying the cell's mappings (e.g. a Ruby restart that could not
	// remap under a shrunken limit). Like cancellation it is
	// environmental: the failed result is reported but not memoized.
	Pressured bool
}

func (e *CellError) Error() string {
	return fmt.Sprintf("cell %+v failed after %d attempt(s): %v", e.Cell, e.Attempts, e.Err)
}

// ErrTransient marks a cell failure as environmental — the infrastructure
// failed, not the cell (an unreachable worker shard, a shed request, a
// dropped progress stream). Like a cancellation it is recorded in
// Failures but never memoized: the next caller gets a fresh attempt.
// Remote executors (Runner.Exec) wrap such failures so the distinction
// survives the runner's error handling.
var ErrTransient = errors.New("transient cell failure")

func (e *CellError) Unwrap() error { return e.Err }

// panicError wraps a recovered panic so the retry logic can distinguish
// transient crashes (retried once) from deterministic configuration errors
// and timeouts (not retried).
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("panic: %v", e.val) }

// Runner memoizes cell results for a fixed Config. It is safe for
// concurrent use: racing Run calls for the same cell collapse into a single
// simulation (singleflight), so figures that share cells (e.g. Figure 5 and
// Table 4) never double-simulate even when fanned out in parallel.
type Runner struct {
	Cfg Config
	// Cache, when non-nil, persists cell results on disk so repeated
	// process runs skip already-simulated cells. Set before the first
	// Run.
	Cache *CellCache
	// Faults configures deterministic fault injection (see FaultPlan).
	// Set before the first Run; an Active plan bypasses the cell cache.
	Faults FaultPlan
	// Budget, when non-nil, admits every simulated cell to a shared
	// budget.Controller: the cell's streams get controller-pushed limits
	// and feed its allocation-rate estimates while they run. Results the
	// controller perturbed come back Pressured (see CellResult) and are
	// not memoized or cached. Set before the first Run.
	Budget *budget.Controller
	// Timeout bounds each cell attempt's simulation wall time (0 =
	// unbounded). Cancellation is cooperative: the simulation loops poll
	// their context between pricing rounds and phases (sim.Checkpoint),
	// so a timed-out cell stops on its own goroutine — nothing is
	// abandoned — and is reported failed.
	Timeout time.Duration
	// Exec, when non-nil, replaces local simulation: the singleflight
	// leader calls Exec instead of simulate, so memoization, the
	// singleflight collapse, cache read/write, failure accounting, and
	// the cell-seconds histogram apply identically to remotely executed
	// cells. The serve fleet coordinator sets it to fan cells out over
	// worker instances. An error chain containing context.Canceled,
	// context.DeadlineExceeded, or ErrTransient is environmental — the
	// failure is recorded but never memoized, and singleflight waiters
	// with live contexts take over. Set before the first Run.
	Exec func(ctx context.Context, c Cell) (CellResult, error)
	// Ctx, when non-nil, cancels in-flight and future cells when done.
	Ctx context.Context
	// Tel is the observability layer. The default telemetry.Nop adds no
	// allocations to the simulation paths; a live session traces every
	// cell as a span tree, feeds the metrics registry, and profiles
	// allocation size classes. Telemetry only observes — it never touches
	// simulation randomness — so results are bit-identical either way.
	Tel *telemetry.Telemetry

	mu       sync.Mutex
	cells    map[Cell]CellResult
	inflight map[Cell]*inflightCell
	failures []*CellError

	// Per-cell execution accounting for the run manifest. Kept regardless
	// of telemetry (a map write per simulated cell) so a manifest can be
	// assembled after the fact.
	accounts  map[Cell]cellAccount
	cacheHits, cacheMisses,
	memoHits uint64
	faultsOOM, faultsPanic atomic.Uint64
}

// cellAccount records how one cell was executed (not what it computed).
type cellAccount struct {
	wallMS float64
	cached bool
}

// inflightCell tracks one in-progress simulation so racing callers wait for
// the leader's result instead of simulating the cell again. res and
// cancelled are written once by the leader before done is closed; the close
// is the happens-before edge that publishes them to waiters.
type inflightCell struct {
	done chan struct{}
	res  CellResult
	// cancelled marks a leader that failed only because its own context
	// was cancelled or timed out. Such failures say nothing about the
	// cell, so they are not memoized, and a waiter whose context is still
	// live re-runs the cell instead of inheriting the failure.
	cancelled bool
}

// NewRunner returns a Runner for cfg.
func NewRunner(cfg Config) *Runner {
	cfg.validate()
	cfg = cfg.normalized()
	return &Runner{
		Cfg:      cfg,
		cells:    make(map[Cell]CellResult),
		inflight: make(map[Cell]*inflightCell),
		accounts: make(map[Cell]cellAccount),
	}
}

// footprinter lets the runner sample per-transaction footprints from either
// runtime type.
type footprinter interface {
	machine.Driver
	AvgFootprint() float64
	ResetFootprint()
}

// Run simulates (or returns the memoized result of) one cell. Concurrent
// calls are safe; concurrent calls for the same cell run one simulation.
//
// A cell whose simulation fails — a panic anywhere under simulate, a
// timeout, a cancelled Ctx, or a configuration error — does not crash the
// process: Run returns a zero CellResult with Failed set, records a
// CellError (see Failures), and every other cell keeps running. Recovered
// panics are retried once before the cell is declared failed.
func (r *Runner) Run(c Cell) CellResult {
	return r.RunContext(context.Background(), c)
}

// RunContext is Run bounded by a caller context (typically one server
// request): cancelling ctx cooperatively stops the cell's simulation loops
// and fails the call. Cancellation and timeout failures are environmental,
// not properties of the cell, so they are recorded (Failures) but never
// memoized — a later call with a live context re-simulates the cell. All
// other failures memoize as usual.
func (r *Runner) RunContext(ctx context.Context, c Cell) CellResult {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		r.mu.Lock()
		if got, ok := r.cells[c]; ok {
			r.memoHits++
			r.mu.Unlock()
			r.Tel.Metrics().Counter("webmm_memo_hits_total",
				"Run calls served from the in-process memo", nil).Inc()
			return got
		}
		if fl, ok := r.inflight[c]; ok {
			r.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				// The caller is gone; don't hold its goroutine for a
				// result nobody wants. Not recorded as a cell failure —
				// the leader still owns the cell's fate.
				return CellResult{Cell: c, Failed: true}
			}
			if fl.cancelled && ctx.Err() == nil {
				continue // the leader's context died, not ours: take over
			}
			return fl.res
		}
		fl := &inflightCell{done: make(chan struct{})}
		r.inflight[c] = fl
		r.mu.Unlock()
		return r.lead(ctx, c, fl)
	}
}

// lead runs one cell as the singleflight leader and publishes the result to
// any waiters.
func (r *Runner) lead(ctx context.Context, c Cell, fl *inflightCell) CellResult {
	span := r.Tel.Tracer().StartSpan("cell "+c.Key(), "cell")
	span.Arg("platform", c.Platform)
	span.Arg("alloc", c.Alloc)
	span.Arg("workload", c.Workload)
	span.Arg("cores", c.Cores)
	start := time.Now()

	// The runner-wide Ctx cancels every cell; a per-call ctx only its own.
	// Merge the two when both can fire.
	ctx, stop := joinContext(ctx, r.Ctx)
	defer stop()

	// An active fault plan bypasses the cache in both directions:
	// perturbed results must not poison it and clean entries must not
	// mask the faults.
	useCache := !r.Faults.Active()
	var out CellResult
	cached := false
	cancelled := false
	attempts := 0
	if useCache {
		out, cached = r.Cache.load(r.Cfg, c)
	}
	if !cached {
		res, cerr := r.runCell(ctx, c, span)
		if cerr != nil {
			out = CellResult{Cell: c, Failed: true, Pressured: cerr.Pressured}
			attempts = cerr.Attempts
			cancelled = errors.Is(cerr.Err, context.Canceled) ||
				errors.Is(cerr.Err, context.DeadlineExceeded) ||
				errors.Is(cerr.Err, ErrTransient)
			r.mu.Lock()
			r.failures = append(r.failures, cerr)
			r.mu.Unlock()
		} else {
			out = res
			// A Pressured result reflects what the budget controller did
			// to this particular run, not the cell itself, so it must not
			// poison the cache.
			if useCache && !out.Pressured {
				if r.Faults.CacheCorrupt {
					r.Cache.storeCorrupt(r.Cfg, c)
				} else {
					r.Cache.store(r.Cfg, c, out)
				}
			}
		}
	}
	wall := time.Since(start)

	fl.res = out
	fl.cancelled = cancelled
	r.mu.Lock()
	if !cancelled && !out.Pressured {
		// A cancelled, timed-out, transient-remote, or pressure-perturbed
		// cell is not memoized: the next caller gets a fresh attempt (and,
		// under a controller, a fresh chance at an unconstrained run).
		r.cells[c] = out
		r.accounts[c] = cellAccount{wallMS: float64(wall.Nanoseconds()) / 1e6, cached: cached}
	}
	if useCache && r.Cache != nil && !cancelled {
		if cached {
			r.cacheHits++
		} else {
			r.cacheMisses++
		}
	}
	delete(r.inflight, c)
	r.mu.Unlock()
	close(fl.done)

	span.Arg("cached", cached)
	span.Arg("failed", out.Failed)
	if attempts > 0 {
		span.Arg("attempts", attempts)
	}
	span.End()
	if met := r.Tel.Metrics(); met != nil {
		met.Counter("webmm_cells_total", "cells resolved (simulated, cached, or failed)", nil).Inc()
		if out.Failed {
			met.Counter("webmm_cells_failed_total", "cells whose simulation failed", nil).Inc()
		}
		if out.Pressured {
			met.Counter("webmm_cells_pressured_total",
				"cells perturbed by budget-controller denials (not memoized or cached)", nil).Inc()
		}
		if useCache && r.Cache != nil {
			if cached {
				met.Counter("webmm_cache_hits_total", "cells served from the disk cell cache", nil).Inc()
			} else {
				met.Counter("webmm_cache_misses_total", "cells missing from the disk cell cache", nil).Inc()
			}
		}
		met.Histogram("webmm_cell_seconds", "wall time per resolved cell",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600}, nil).Observe(wall.Seconds())
	}
	return out
}

// joinContext returns a context that is cancelled when either input is.
// Whenever one side cannot fire the other is returned as-is, which is every
// CLI configuration; the merged context (one context.AfterFunc) only exists
// when a per-request context and a runner-wide Ctx are both cancellable.
func joinContext(ctx, extra context.Context) (context.Context, func()) {
	nop := func() {}
	if extra == nil || extra.Done() == nil {
		return ctx, nop
	}
	if ctx.Done() == nil {
		return extra, nop
	}
	merged, cancel := context.WithCancelCause(ctx)
	stop := context.AfterFunc(extra, func() { cancel(extra.Err()) })
	return merged, func() { stop(); cancel(nil) }
}

// Key renders the cell as the compact platform/alloc/workload/cores path
// used in span names, failure reports, and the server's progress events.
func (c Cell) Key() string { return cellKey(c) }

// cellKey renders a cell as the compact path used in span names and failure
// reports.
func cellKey(c Cell) string {
	k := fmt.Sprintf("%s/%s/%s/%d", c.Platform, c.Alloc, c.Workload, c.Cores)
	if c.Ruby {
		k += fmt.Sprintf("/ruby:%d", c.RestartEvery)
	}
	if c.Budget > 0 {
		k += fmt.Sprintf("/budget:%d", c.Budget)
	}
	if c.MemSched != "" {
		k += "/memsched:" + c.MemSched
	}
	return k
}

// Failures returns the cells that failed so far, in failure order.
func (r *Runner) Failures() []*CellError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*CellError, len(r.failures))
	copy(out, r.failures)
	return out
}

// classLabels are the short per-class metric label values, indexed by
// sim.Class.
var classLabels = [sim.NumClasses]string{
	sim.ClassAlloc: "mm", sim.ClassApp: "app", sim.ClassOS: "os",
}

// attachTelemetry wires a freshly built machine into the telemetry layer:
// every stream Env reports allocation sizes to the shared profile, and the
// machine's round sampler feeds per-class counters to the metrics registry
// and, when tracing, per-round counter tracks under the cell's span. With
// telemetry disabled the machine is left untouched.
func (r *Runner) attachTelemetry(m *machine.Machine, plat machine.Platform, span *telemetry.Span) {
	if !r.Tel.Enabled() {
		return
	}
	if ap := r.Tel.AllocSizes(); ap != nil {
		for _, s := range m.Streams() {
			s.Env.AllocRec = ap
		}
	}
	// Resolve the per-class instruments once per cell so the sampler body
	// does atomic adds, not registry lookups.
	met := r.Tel.Metrics()
	var instr, l2miss [sim.NumClasses]*telemetry.Counter
	for cls := 0; cls < sim.NumClasses; cls++ {
		lbl := telemetry.Labels{"class": classLabels[cls]}
		instr[cls] = met.Counter("webmm_class_instr_total",
			"retired instructions by event class over measured rounds", lbl)
		l2miss[cls] = met.Counter("webmm_class_l2_miss_total",
			"demand L2 misses by event class over measured rounds", lbl)
	}
	tr := r.Tel.Tracer()
	tid := span.TID()
	cores := m.NCores
	m.Sampler = func(s machine.RoundSample) {
		if !s.Measuring {
			return
		}
		for cls := 0; cls < sim.NumClasses; cls++ {
			instr[cls].Add(s.ByClass[cls].Instr)
			l2miss[cls].Add(s.ByClass[cls].L2Miss())
		}
		if tr == nil {
			return
		}
		// Per-round attribution tracks: the single-stream cycle estimate
		// (bus contention is not yet solved at sampling time, so the
		// multiplier is 1) and the demand L2 misses, both by class.
		cyc := make(map[string]float64, sim.NumClasses)
		miss := make(map[string]float64, sim.NumClasses)
		for cls := 0; cls < sim.NumClasses; cls++ {
			d := s.ByClass[cls]
			cyc[classLabels[cls]] = plat.Core.InstrCycles(d) + plat.Core.StallCycles(d, 1.0, cores)
			miss[classLabels[cls]] = float64(d.L2Miss())
		}
		tr.Counter(tid, "cycles (est)", cyc)
		tr.Counter(tid, "l2 misses", miss)
	}
}

// BuildManifest assembles the run manifest from the runner's accounting:
// every resolved cell with its wall time, cache provenance and headline
// numbers, the cache and memo hit counts, and the failure reports. Cells and
// failures are sorted by cell key so the manifest is deterministic under
// parallel fan-out. The caller owns the CLI-level Config fields the runner
// cannot see (Jobs, Faults, Timeout, CellCacheDir) and the wall-clock Stamp.
func (r *Runner) BuildManifest(experiments []string) *telemetry.Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	cells := make([]Cell, 0, len(r.cells))
	for c := range r.cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cellKey(cells[i]) < cellKey(cells[j]) })

	m := &telemetry.Manifest{
		Tool:          "webmm",
		FormatVersion: telemetry.ManifestFormatVersion,
		SimVersion:    cellCacheVersion,
		GoVersion:     runtime.Version(),
		Config: telemetry.ManifestConfig{
			Scale:          r.Cfg.Scale,
			Warmup:         r.Cfg.Warmup,
			Measure:        r.Cfg.Measure,
			Seed:           r.Cfg.Seed,
			XeonLargePages: r.Cfg.XeonLargePages,
			Fidelity:       r.Cfg.Fidelity,
		},
		Experiments: experiments,
		Cells:       make([]telemetry.ManifestCell, 0, len(cells)),
		CacheHits:   r.cacheHits,
		CacheMisses: r.cacheMisses,
		MemoHits:    r.memoHits,
	}
	if total := r.cacheHits + r.cacheMisses; total > 0 {
		m.CacheHitRatio = float64(r.cacheHits) / float64(total)
	}
	for _, c := range cells {
		res := r.cells[c]
		acct := r.accounts[c]
		m.Cells = append(m.Cells, telemetry.ManifestCell{
			Platform:     c.Platform,
			Alloc:        c.Alloc,
			Workload:     c.Workload,
			Cores:        c.Cores,
			Ruby:         c.Ruby,
			RestartEvery: c.RestartEvery,
			WallMS:       acct.wallMS,
			Cached:       acct.cached,
			Failed:       res.Failed,
			Throughput:   res.Res.Throughput,
			Txns:         res.Res.Txns,
		})
	}
	for _, fe := range r.failures {
		m.Failures = append(m.Failures, telemetry.ManifestFailure{
			Cell: cellKey(fe.Cell), Error: fe.Err.Error(), Attempts: fe.Attempts,
		})
	}
	sort.Slice(m.Failures, func(i, j int) bool { return m.Failures[i].Cell < m.Failures[j].Cell })
	return m
}

// runCell runs one cell with panic isolation, retrying once when the
// failure was a recovered panic (possibly transient under random fault
// injection). Timeouts, cancellation, and configuration errors are
// deterministic and not retried.
func (r *Runner) runCell(ctx context.Context, c Cell, span *telemetry.Span) (CellResult, *CellError) {
	if r.Exec != nil {
		if err := ctx.Err(); err != nil {
			return CellResult{}, &CellError{Cell: c, Err: err, Attempts: 1}
		}
		res, err := r.Exec(ctx, c)
		if err != nil {
			// A remote failure may still describe the result (a worker
			// that reported the cell Failed under pressure); keep the
			// Pressured bit so the memoization rules stay right.
			return CellResult{}, &CellError{Cell: c, Err: err, Attempts: 1, Pressured: res.Pressured}
		}
		return res, nil
	}
	var lastErr error
	var stack []byte
	var pressured bool
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return CellResult{}, &CellError{Cell: c, Err: err, Attempts: attempt + 1, Pressured: pressured}
		}
		out, err := r.simulateGuarded(ctx, c, attempt, span, &pressured)
		if err == nil {
			return out, nil
		}
		lastErr, stack = err, nil
		var pe *panicError
		if !errors.As(err, &pe) {
			return CellResult{}, &CellError{Cell: c, Err: err, Attempts: attempt + 1, Pressured: pressured}
		}
		stack = pe.stack
	}
	return CellResult{}, &CellError{Cell: c, Err: lastErr, Stack: stack, Attempts: 2, Pressured: pressured}
}

// simulateGuarded runs one simulate attempt with panics recovered into
// errors and, when a Timeout is configured, a per-attempt deadline on the
// context. Cancellation is cooperative — the simulation polls the context
// between phases and pricing rounds and returns on its own goroutine — so
// there is no watchdog and nothing to abandon: when simulateGuarded
// returns, no simulation work for the cell is running anywhere.
func (r *Runner) simulateGuarded(ctx context.Context, c Cell, attempt int, span *telemetry.Span, pressured *bool) (out CellResult, err error) {
	if r.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.Timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{val: p, stack: debug.Stack()}
		}
		if err != nil && r.Timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("simulation exceeded timeout %v: %w", r.Timeout, err)
		}
	}()
	return r.simulate(ctx, c, attempt, span, pressured)
}

// ctxErr is a deadline-aware ctx.Err: context.WithTimeout only reports an
// error once its runtime timer has been serviced, which a tight simulation
// loop can delay past the whole cell. Phase boundaries check the clock
// against the deadline directly so an expired budget fails the cell
// deterministically.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// faultSeed derives the fault-injection RNG seed for one (cell, stream,
// attempt). It is independent of Config.Seed's other consumers — the
// simulation draws from per-stream RNGs seeded elsewhere — and distinct per
// retry, so a cell that failed under random injection gets fresh draws on
// its second attempt.
func faultSeed(seed uint64, c Cell, stream, attempt int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%+v|%d|%d", seed, c, stream, attempt)
	s := h.Sum64()
	if s == 0 {
		s = 1
	}
	return s
}

// RunAll simulates every cell of a plan, fanning the distinct cells out
// over jobs worker goroutines (jobs <= 0 means GOMAXPROCS). Every cell
// derives all of its randomness from Config.Seed and shares no state with
// other cells, so the schedule cannot change any number: RunAll is
// bit-identical to running the same cells serially, and jobs == 1 is
// exactly the serial loop. Results are returned in input order; duplicate
// cells share one simulation.
func (r *Runner) RunAll(cells []Cell, jobs int) []CellResult {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	seen := make(map[Cell]bool, len(cells))
	var uniq []Cell
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	if jobs > len(uniq) {
		jobs = len(uniq)
	}
	// Results are collected as the workers produce them, not re-requested
	// afterwards: a cell whose failure is not memoized (timeout or
	// cancellation) must not be simulated a second time just to fill its
	// output slot.
	results := make(map[Cell]CellResult, len(uniq))
	if jobs > 1 {
		work := make(chan Cell)
		var wg sync.WaitGroup
		var mu sync.Mutex
		wg.Add(jobs)
		for w := 0; w < jobs; w++ {
			go func() {
				defer wg.Done()
				for c := range work {
					res := r.Run(c)
					mu.Lock()
					results[c] = res
					mu.Unlock()
				}
			}()
		}
		for _, c := range uniq {
			work <- c
		}
		close(work)
		wg.Wait()
	} else {
		for _, c := range uniq {
			results[c] = r.Run(c)
		}
	}
	out := make([]CellResult, len(cells))
	for i, c := range cells {
		out[i] = results[c]
	}
	return out
}

// simulate runs one cell from scratch. It touches no Runner state beyond
// the (immutable) Cfg and Faults, which is what makes parallel fan-out
// safe. attempt distinguishes the retry's fault-injection draws from the
// first try's; with an empty FaultPlan it has no effect at all.
//
// Cancellation checkpoints: ctx is polled between the construct/warmup/
// measure/solve phases here, per stream during construction, and between
// pricing rounds inside Machine.RunContext. Every checkpoint ends the
// phase span it is in before returning, so a cancelled cell's trace is
// still well formed.
func (r *Runner) simulate(ctx context.Context, c Cell, attempt int, span *telemetry.Span, pressured *bool) (CellResult, error) {
	if err := ctxErr(ctx); err != nil {
		return CellResult{}, err
	}
	if r.Faults.PanicRate > 0 {
		rng := sim.NewRNG(faultSeed(r.Cfg.Seed, c, -1, attempt))
		if rng.Bool(r.Faults.PanicRate) {
			r.faultsPanic.Add(1)
			r.Tel.Metrics().Counter("webmm_faults_injected_total",
				"deterministic fault injections by kind", telemetry.Labels{"kind": "panic"}).Inc()
			panic(fmt.Sprintf("injected fault: cell %+v attempt %d", c, attempt))
		}
	}
	construct := span.Child("construct", "phase")
	plat, err := machine.PlatformByName(c.Platform)
	if err != nil {
		construct.End()
		return CellResult{}, err
	}
	plat = scalePlatform(plat, r.Cfg.Scale)
	if c.MemSched != "" {
		// The DRAM model sits behind the same transfer link the platform's
		// bus prices, so the aggregate bandwidth story is unchanged; what
		// the swap adds is row-buffer economics and per-core scheduling.
		dram, err := memsys.NewDRAM(
			memsys.DRAMConfig{Policy: memsys.PolicyName(c.MemSched)},
			plat.Mem.Link(), c.Cores)
		if err != nil {
			construct.End()
			return CellResult{}, err
		}
		plat.Mem = dram
	}

	prof, err := workload.ByName(c.Workload)
	if err != nil {
		construct.End()
		return CellResult{}, err
	}
	allocCode, err := apprt.AllocCodeSize(c.Alloc)
	if err != nil {
		construct.End()
		return CellResult{}, err
	}
	// Interpreter + compiled-script code footprint. Code size is a fixed
	// property of the software, like the allocator's own footprint, so
	// it does not scale with the workload.
	const appCode = 192 * mem.KiB
	m := machine.New(plat, c.Cores, allocCode, appCode, r.Cfg.Seed)
	r.attachTelemetry(m, plat, span)

	// A static Cell.Budget arms before construction: it models the total
	// memory the tenant was given, so an allocator whose footprint cannot
	// fit it fails to build (a deterministic FAILED row — the heap-limit
	// sweep's cliff), and one that fits keeps the cap for its steady-state
	// map traffic. Fault budgets (below) stay post-construction: they are
	// steady-state perturbations, not sizing.
	if c.Budget > 0 {
		for _, s := range m.Streams() {
			s.Env.AS.SetBudget(c.Budget)
		}
	}

	largePages := plat.Name == "niagara" || (plat.Name == "xeon" && r.Cfg.XeonLargePages)
	drivers := make([]machine.Driver, m.NumStreams())
	fps := make([]footprinter, m.NumStreams())
	gens := make([]*workload.Generator, m.NumStreams())
	for i, s := range m.Streams() {
		if err := ctxErr(ctx); err != nil {
			construct.End()
			return CellResult{}, err
		}
		opts := apprt.AllocOptions{PID: i, LargePages: largePages}
		if c.Ruby {
			rt, err := apprt.NewRuby(s.Env, c.Alloc, prof, r.Cfg.Scale, c.RestartEvery, opts)
			if err != nil {
				construct.End()
				return CellResult{}, err
			}
			// The restart *period* is scaled by 8/scale (see
			// rubyRestart), so the restart cost is scaled by the
			// same factor on top of its per-scale default to keep
			// the overhead fraction per unit of work faithful.
			rt.RestartCost = rt.RestartCost * 8 / uint64(r.Cfg.Scale)
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		} else {
			rt, err := apprt.NewPHP(s.Env, c.Alloc, prof, r.Cfg.Scale, opts)
			if err != nil {
				construct.End()
				return CellResult{}, err
			}
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		}
	}
	spaces := make([]*mem.AddressSpace, m.NumStreams())
	for i, s := range m.Streams() {
		spaces[i] = s.Env.AS
	}
	// Arm fault injection after construction so denials and injected OOM
	// land on the steady-state Map paths the runtimes' bail-out machinery
	// handles (construction failure is a panic, isolated one level up).
	// The injector RNGs are the streams' own, seeded apart from all
	// simulation randomness, so an empty plan changes nothing.
	if r.Faults.OOMRate > 0 || r.Faults.Budget > 0 {
		for i, s := range m.Streams() {
			as := s.Env.AS
			if r.Faults.Budget > 0 {
				as.SetBudget(r.Faults.Budget)
			}
			if rate := r.Faults.OOMRate; rate > 0 {
				rng := sim.NewRNG(faultSeed(r.Cfg.Seed, c, i, attempt))
				as.SetFaultInjector(func(size uint64) bool {
					if !rng.Bool(rate) {
						return false
					}
					r.faultsOOM.Add(1)
					r.Tel.Metrics().Counter("webmm_faults_injected_total",
						"deterministic fault injections by kind", telemetry.Labels{"kind": "oom"}).Inc()
					return true
				})
			}
		}
	}
	// Admit the cell to the budget controller (if any) once it exists:
	// from here on the controller samples its footprint, estimates its
	// allocation rate through the lease's profile, and retargets the
	// streams' budgets mid-run. Controller-pushed limits override any
	// static budget armed above — an admitted tenant is governed.
	var lease *budget.Lease
	if r.Budget != nil {
		lease = r.Budget.Admit(cellKey(c), spaces)
		defer func() {
			// Read the denial tally before releasing so a panic that
			// unwinds through here (a restart that could not remap under
			// a shrunken limit) is still attributed to pressure — the
			// resulting FAILED row must not be memoized.
			if lease.Denials() > 0 {
				*pressured = true
			}
			lease.Release()
		}()
		for _, s := range m.Streams() {
			if prev := s.Env.AllocRec; prev != nil {
				s.Env.AllocRec = teeRecorder{prev, lease}
			} else {
				s.Env.AllocRec = lease
			}
		}
	}
	warmup, measure := r.Cfg.Warmup, r.Cfg.Measure
	if c.Ruby {
		// Ruby cells must run long enough that processes age, restart
		// on schedule, and the measurement samples a full process
		// lifetime (Figure 12's effect lives on that horizon).
		p500 := r.rubyRestart(rubyRestartEvery)
		if warmup < p500/2 {
			warmup = p500 / 2
		}
		if measure < p500+p500/4 {
			measure = p500 + p500/4
		}
	}
	construct.End()
	warm := span.Child("warmup", "phase")
	m.PriceSetup()
	err = m.RunContext(ctx, drivers, warmup, 0)
	warm.End()
	if err != nil {
		return CellResult{}, err
	}
	// The squeeze fault fires at the warmup→measure boundary: budgets
	// shrink to a factor of the footprint the warm cell actually reached,
	// so the measured phase runs under moving pressure. Through the
	// controller when one governs the cell; directly otherwise — the
	// direct path reads only the spaces' own state, so it is as
	// deterministic as a static budget.
	if f := r.Faults.Squeeze; f > 0 {
		r.Tel.Metrics().Counter("webmm_faults_injected_total",
			"deterministic fault injections by kind", telemetry.Labels{"kind": "squeeze"}).Inc()
		if lease != nil {
			lease.Squeeze(f)
		} else {
			budget.SqueezeSpaces(spaces, f)
		}
	}
	for _, fp := range fps {
		fp.ResetFootprint()
	}
	callsBefore := make([]heap.Stats, len(gens))
	for i, g := range gens {
		callsBefore[i] = g.Stats()
	}
	meas := span.Child("measure", "phase")
	if r.Cfg.Fidelity == FidelitySampled {
		err = m.RunSampled(ctx, drivers, measure, machine.DefaultSamplePlan())
	} else {
		err = m.RunContext(ctx, drivers, 0, measure)
	}
	meas.End()
	if err != nil {
		return CellResult{}, err
	}

	if err := ctxErr(ctx); err != nil {
		return CellResult{}, err
	}
	slv := span.Child("solve", "phase")
	res := m.Solve()
	slv.End()
	if ms := res.Mem; ms != nil && r.Tel.Enabled() {
		met := r.Tel.Metrics()
		lbl := telemetry.Labels{"policy": ms.Policy}
		met.Counter("webmm_dram_row_hits_total",
			"DRAM requests served from an open row, by scheduling policy", lbl).Add(ms.RowHits)
		met.Counter("webmm_dram_row_conflicts_total",
			"DRAM requests that closed another bank row first, by scheduling policy", lbl).Add(ms.RowConflicts)
		met.Counter("webmm_dram_row_closed_total",
			"DRAM requests that found their bank precharged, by scheduling policy", lbl).Add(ms.RowClosed)
		met.Gauge("webmm_dram_bank_queue_depth_max",
			"deepest per-bank request queue observed in the last DRAM-backed cell", lbl).Set(float64(ms.MaxQueueDepth))
	}
	out := CellResult{Cell: c, Res: res}
	var fpSum float64
	var calls heap.Stats
	for i := range fps {
		fpSum += fps[i].AvgFootprint()
		after := gens[i].Stats()
		calls.Mallocs += after.Mallocs - callsBefore[i].Mallocs
		calls.Frees += after.Frees - callsBefore[i].Frees
		calls.Reallocs += after.Reallocs - callsBefore[i].Reallocs
		calls.BytesRequested += after.BytesRequested - callsBefore[i].BytesRequested
		calls.BytesAllocated += after.BytesAllocated - callsBefore[i].BytesAllocated
		calls.Bailouts += after.Bailouts - callsBefore[i].Bailouts
	}
	out.Footprint = fpSum / float64(len(fps))
	out.Calls = calls
	out.TxnsPerStream = float64(res.Txns) / float64(len(fps))
	for _, as := range spaces {
		out.BudgetDenials += as.BudgetDenials()
	}
	// Only a live controller makes a result pressure-dependent; static
	// budget denials (Cell.Budget, -faults budget/squeeze without a
	// controller) are deterministic properties of the cell.
	out.Pressured = lease != nil && lease.Denials() > 0
	return out, nil
}

// teeRecorder fans one stream's allocation-size reports out to both the
// telemetry profile and the budget lease.
type teeRecorder struct{ a, b sim.AllocRecorder }

func (t teeRecorder) RecordAlloc(size uint64) {
	t.a.RecordAlloc(size)
	t.b.RecordAlloc(size)
}

// PHPAllocators are the three allocators of the PHP study, in the paper's
// reporting order.
func PHPAllocators() []string { return []string{"default", "region", "ddmalloc"} }

// RubyAllocators are the four allocators of the Ruby study (Figure 10's
// bar order).
func RubyAllocators() []string { return []string{"glibc", "hoard", "tcmalloc", "ddmalloc"} }

// phpCell is shorthand for a PHP-study cell.
func phpCell(platform, alloc, wl string, cores int) Cell {
	return Cell{Platform: platform, Alloc: alloc, Workload: wl, Cores: cores}
}

// rubyCell is shorthand for a Ruby-study cell.
func rubyCell(alloc string, restart int) Cell {
	return Cell{Platform: "xeon", Alloc: alloc, Workload: workload.Rails().Name,
		Cores: 8, Ruby: true, RestartEvery: restart}
}

// relThroughput returns alloc's throughput relative to the baseline cell's.
func relThroughput(x, base CellResult) float64 {
	if base.Res.Throughput == 0 {
		return 0
	}
	return x.Res.Throughput / base.Res.Throughput
}

// mmShare returns the memory-management share of attributed CPU time.
func mmShare(cr CellResult) float64 {
	mm := cr.Res.ByClass[sim.ClassAlloc].Cycles
	app := cr.Res.ByClass[sim.ClassApp].Cycles
	os := cr.Res.ByClass[sim.ClassOS].Cycles
	total := mm + app + os
	if total == 0 {
		return 0
	}
	return mm / total
}
