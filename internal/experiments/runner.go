// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each experiment function runs the necessary
// (platform, allocator, workload, cores) cells through the simulator and
// renders the same rows/series the paper reports; a shared memoizing Runner
// keeps cells that several figures need (e.g. Figure 5 and Table 4) from
// being simulated twice.
package experiments

import (
	"fmt"

	"webmm/internal/apprt"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// Config controls simulation scale and measurement length.
type Config struct {
	// Scale divides every workload's Table 3 counts, the platform's L2
	// capacity, and its TLB reach, preserving the pressure ratios that
	// drive the paper's effects (DESIGN.md §5.4). Must be a power of
	// two; 1 is paper scale.
	Scale int
	// Warmup and Measure are transactions per stream.
	Warmup, Measure int
	// Seed derives all randomness.
	Seed uint64
	// XeonLargePages enables DDmalloc's large-page optimization on Xeon
	// (the paper's separate +11.7% experiment; off by default to match
	// the paper's primary Xeon configuration).
	XeonLargePages bool
}

// DefaultConfig is sized for interactive runs; the committed EXPERIMENTS.md
// numbers use Scale 8 (see that file for the exact configurations).
func DefaultConfig() Config {
	return Config{Scale: 32, Warmup: 2, Measure: 3, Seed: 20090615}
}

func (c Config) validate() {
	if c.Scale < 1 || c.Scale&(c.Scale-1) != 0 {
		panic(fmt.Sprintf("experiments: scale %d must be a power of two", c.Scale))
	}
}

// scalePlatform shrinks the capacity-dependent structures with the
// workload: live sets scale with transaction size, so L2 capacity and TLB
// reach scale alongside to preserve the paper's pressure ratios. Per-core
// L1s and hot metadata do not scale (they hold fixed hot structures), and
// bus bandwidth is untouched (bytes/cycle and cycles/txn shrink together,
// leaving utilization invariant).
func scalePlatform(p machine.Platform, scale int) machine.Platform {
	if scale == 1 {
		return p
	}
	sets := p.L2.Sets() / scale
	if sets < 64 {
		sets = 64
	}
	p.L2.Size = uint64(sets) * uint64(p.L2.Ways) * mem.LineSize
	tlb := p.TLBEntries / scale
	if tlb < 32 {
		tlb = 32
	}
	p.TLBEntries = tlb
	return p
}

// Cell identifies one simulated configuration.
type Cell struct {
	Platform string
	Alloc    string
	Workload string
	Cores    int
	// Ruby study extras.
	Ruby         bool
	RestartEvery int
}

// CellResult bundles everything an experiment needs from one run.
type CellResult struct {
	Cell
	Res machine.Result
	// Footprint is the mean per-transaction peak memory consumption
	// averaged over streams (Figure 9).
	Footprint float64
	// Calls is the per-stream-average generator API statistics
	// (Table 3).
	Calls heap.Stats
	// Txns per stream measured.
	TxnsPerStream float64
}

// Runner memoizes cell results for a fixed Config.
type Runner struct {
	Cfg   Config
	cells map[Cell]CellResult
}

// NewRunner returns a Runner for cfg.
func NewRunner(cfg Config) *Runner {
	cfg.validate()
	return &Runner{Cfg: cfg, cells: make(map[Cell]CellResult)}
}

// footprinter lets the runner sample per-transaction footprints from either
// runtime type.
type footprinter interface {
	machine.Driver
	AvgFootprint() float64
	ResetFootprint()
}

// Run simulates (or returns the memoized result of) one cell.
func (r *Runner) Run(c Cell) CellResult {
	if got, ok := r.cells[c]; ok {
		return got
	}
	plat, err := machine.PlatformByName(c.Platform)
	if err != nil {
		panic(err)
	}
	plat = scalePlatform(plat, r.Cfg.Scale)

	prof, err := workload.ByName(c.Workload)
	if err != nil {
		panic(err)
	}
	allocCode, err := apprt.AllocCodeSize(c.Alloc)
	if err != nil {
		panic(err)
	}
	// Interpreter + compiled-script code footprint. Code size is a fixed
	// property of the software, like the allocator's own footprint, so
	// it does not scale with the workload.
	const appCode = 192 * mem.KiB
	m := machine.New(plat, c.Cores, allocCode, appCode, r.Cfg.Seed)

	largePages := plat.Name == "niagara" || (plat.Name == "xeon" && r.Cfg.XeonLargePages)
	drivers := make([]machine.Driver, m.NumStreams())
	fps := make([]footprinter, m.NumStreams())
	gens := make([]*workload.Generator, m.NumStreams())
	for i, s := range m.Streams() {
		opts := apprt.AllocOptions{PID: i, LargePages: largePages}
		if c.Ruby {
			rt, err := apprt.NewRuby(s.Env, c.Alloc, prof, r.Cfg.Scale, c.RestartEvery, opts)
			if err != nil {
				panic(err)
			}
			// The restart *period* is scaled by 8/scale (see
			// rubyRestart), so the restart cost is scaled by the
			// same factor on top of its per-scale default to keep
			// the overhead fraction per unit of work faithful.
			rt.RestartCost = rt.RestartCost * 8 / uint64(r.Cfg.Scale)
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		} else {
			rt, err := apprt.NewPHP(s.Env, c.Alloc, prof, r.Cfg.Scale, opts)
			if err != nil {
				panic(err)
			}
			drivers[i], fps[i], gens[i] = rt, rt, rt.Generator()
		}
	}
	warmup, measure := r.Cfg.Warmup, r.Cfg.Measure
	if c.Ruby {
		// Ruby cells must run long enough that processes age, restart
		// on schedule, and the measurement samples a full process
		// lifetime (Figure 12's effect lives on that horizon).
		p500 := r.rubyRestart(rubyRestartEvery)
		if warmup < p500/2 {
			warmup = p500 / 2
		}
		if measure < p500+p500/4 {
			measure = p500 + p500/4
		}
	}
	m.PriceSetup()
	m.Run(drivers, warmup, 0)
	for _, fp := range fps {
		fp.ResetFootprint()
	}
	callsBefore := make([]heap.Stats, len(gens))
	for i, g := range gens {
		callsBefore[i] = g.Stats()
	}
	m.Run(drivers, 0, measure)

	res := m.Solve()
	out := CellResult{Cell: c, Res: res}
	var fpSum float64
	var calls heap.Stats
	for i := range fps {
		fpSum += fps[i].AvgFootprint()
		after := gens[i].Stats()
		calls.Mallocs += after.Mallocs - callsBefore[i].Mallocs
		calls.Frees += after.Frees - callsBefore[i].Frees
		calls.Reallocs += after.Reallocs - callsBefore[i].Reallocs
		calls.BytesRequested += after.BytesRequested - callsBefore[i].BytesRequested
		calls.BytesAllocated += after.BytesAllocated - callsBefore[i].BytesAllocated
	}
	out.Footprint = fpSum / float64(len(fps))
	out.Calls = calls
	out.TxnsPerStream = float64(res.Txns) / float64(len(fps))
	r.cells[c] = out
	return out
}

// PHPAllocators are the three allocators of the PHP study, in the paper's
// reporting order.
func PHPAllocators() []string { return []string{"default", "region", "ddmalloc"} }

// RubyAllocators are the four allocators of the Ruby study (Figure 10's
// bar order).
func RubyAllocators() []string { return []string{"glibc", "hoard", "tcmalloc", "ddmalloc"} }

// phpCell is shorthand for a PHP-study cell.
func phpCell(platform, alloc, wl string, cores int) Cell {
	return Cell{Platform: platform, Alloc: alloc, Workload: wl, Cores: cores}
}

// rubyCell is shorthand for a Ruby-study cell.
func rubyCell(alloc string, restart int) Cell {
	return Cell{Platform: "xeon", Alloc: alloc, Workload: workload.Rails().Name,
		Cores: 8, Ruby: true, RestartEvery: restart}
}

// relThroughput returns alloc's throughput relative to the baseline cell's.
func relThroughput(x, base CellResult) float64 {
	if base.Res.Throughput == 0 {
		return 0
	}
	return x.Res.Throughput / base.Res.Throughput
}

// mmShare returns the memory-management share of attributed CPU time.
func mmShare(cr CellResult) float64 {
	mm := cr.Res.ByClass[sim.ClassAlloc].Cycles
	app := cr.Res.ByClass[sim.ClassApp].Cycles
	os := cr.Res.ByClass[sim.ClassOS].Cycles
	total := mm + app + os
	if total == 0 {
		return 0
	}
	return mm / total
}
