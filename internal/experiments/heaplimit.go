package experiments

import (
	"fmt"

	"webmm/internal/mem"
	"webmm/internal/report"
	"webmm/internal/workload"
)

// ---------------------------------------------------------------------------
// Heap-limit sweep: throughput vs per-stream memory budget for the PHP
// allocators, mirroring the paper's Ruby restart-period sweep (Figure 12)
// with the budget on the x-axis. "Optimal Heap Limits for Reducing Browser
// Memory Use" asks how small a heap limit can get before it costs
// throughput; this simulator answers sharply: the paper's allocators
// pre-size their pools and recycle, so each one has a hard memory *floor* —
// above it the limit is free (throughput identical to unlimited), below it
// the tenant cannot even build (a FAILED row, the graceful-degradation path
// webmm serve relies on when a controller shrinks a tenant's limit). The
// spread of the floors is the experiment's finding: zend-style arenas fit
// in hundreds of KiB where region buffers and DDmalloc's recycled pools
// demand hundreds of MiB of address space per stream.

// HeapLimitBudgets is the per-stream budget ladder, largest first (0 =
// unlimited). Chosen to bracket every PHP allocator family's floor: region
// (~hundreds of MiB of pre-mapped buffer space), DDmalloc (~tens of MiB of
// recycled pools), and zend arenas (<1 MiB).
var HeapLimitBudgets = []uint64{0, 512 * mem.MiB, 128 * mem.MiB, 32 * mem.MiB,
	8 * mem.MiB, 2 * mem.MiB, 512 * mem.KiB}

// HeapLimitEntry is one (allocator, budget) point of the sweep.
type HeapLimitEntry struct {
	Alloc       string
	Budget      uint64 // per-stream bytes; 0 = unlimited
	Throughput  float64
	VsUnlimited float64 // relative to the same allocator unlimited
	Denials     uint64  // budget-refused mappings during the run
	Bailouts    uint64  // transactions served as error pages
	Failed      bool    // OOM: the allocator could not fit the budget
}

// heapLimitCell is one sweep cell: phpBB on one Xeon core — the same
// configuration as the Figure 9 footprint study, which is the unconstrained
// baseline this sweep pressures.
func heapLimitCell(alloc string, budgetBytes uint64) Cell {
	c := phpCell("xeon", alloc, workload.PhpBB().Name, 1)
	c.Budget = budgetBytes
	return c
}

// HeapLimit runs the sweep.
func HeapLimit(r *Runner) []HeapLimitEntry {
	var out []HeapLimitEntry
	for _, alloc := range PHPAllocators() {
		base := r.Run(heapLimitCell(alloc, 0))
		for _, b := range HeapLimitBudgets {
			cr := r.Run(heapLimitCell(alloc, b))
			out = append(out, HeapLimitEntry{
				Alloc:       alloc,
				Budget:      b,
				Throughput:  cr.Res.Throughput,
				VsUnlimited: relThroughput(cr, base),
				Denials:     cr.BudgetDenials,
				Bailouts:    cr.Calls.Bailouts,
				Failed:      cr.Failed || base.Failed,
			})
		}
	}
	return out
}

// budgetLabel renders a budget for the table and chart rows.
func budgetLabel(b uint64) string {
	switch {
	case b == 0:
		return "unlimited"
	case b >= mem.MiB:
		return fmt.Sprintf("%dMiB", b/mem.MiB)
	default:
		return fmt.Sprintf("%dKiB", b/mem.KiB)
	}
}

// HeapLimitTable renders the sweep. FAILED rows mark budgets below the
// allocator's memory floor (the cell could not be built — the OOM outcome).
func HeapLimitTable(entries []HeapLimitEntry) *report.Table {
	t := report.New("Heap-limit sweep: throughput vs per-stream budget (phpBB, 1 Xeon core)",
		"allocator", "budget", "transactions/sec", "vs unlimited", "denials", "bailouts")
	for _, e := range entries {
		if e.Failed {
			t.Add(e.Alloc, budgetLabel(e.Budget), "FAILED (OOM)", "-", "-", "-")
			continue
		}
		t.Add(e.Alloc, budgetLabel(e.Budget), report.F(e.Throughput, 1),
			report.Pct(e.VsUnlimited), report.F(float64(e.Denials), 0),
			report.F(float64(e.Bailouts), 0))
	}
	return t
}

// HeapLimitChart renders the sweep as one bar group per allocator, budgets
// largest→smallest; failed points draw as zero-height bars so the cliff is
// visible in the chart itself.
func HeapLimitChart(entries []HeapLimitEntry) *report.Chart {
	ch := report.NewChart("Throughput vs per-stream heap limit (0 bar = OOM)")
	for _, e := range entries {
		tput := e.Throughput
		if e.Failed {
			tput = 0
		}
		ch.Add(fmt.Sprintf("%-8s @%s", e.Alloc, budgetLabel(e.Budget)), tput)
	}
	return ch
}

// HeapLimitCells plans the sweep (every allocator × the budget ladder plus
// the unlimited baselines, which the ladder already contains).
func (r *Runner) HeapLimitCells() []Cell {
	var out []Cell
	for _, alloc := range PHPAllocators() {
		for _, b := range HeapLimitBudgets {
			out = append(out, heapLimitCell(alloc, b))
		}
	}
	return out
}
