package experiments

import (
	"fmt"
	"strings"

	"webmm/internal/report"
)

// Output is everything one experiment renders: one or more tables, plus
// optional bar charts (shown by the CLI in table mode only).
type Output struct {
	Tables []*report.Table
	Charts []*report.Chart
}

// Descriptor describes one experiment of the paper's evaluation. The
// registry below is the single source of truth for experiment selection:
// the CLI's -exp flag, its usage text, the generated EXPERIMENTS.md section,
// and the public webmm API all enumerate it rather than keeping their own
// name lists.
type Descriptor struct {
	// Name is the selection key, e.g. "fig5".
	Name string
	// Ref is the paper artifact it reproduces, e.g. "Figure 5".
	Ref string
	// Doc is a one-line description of what the experiment shows.
	Doc string
	// Example is a one-line CLI invocation.
	Example string
	// Cells enumerates the experiment's simulation plan without
	// simulating (nil-safe: some experiments, like Table 2, simulate
	// nothing).
	Cells func(r *Runner) []Cell
	// Run simulates (via the memoizing Runner) and renders.
	Run func(r *Runner) Output
	// Extra marks an extension beyond the paper's evaluation. "all" skips
	// extras — partly so the paper's reporting output stays byte-identical
	// across versions, partly because an extra may fail cells by design
	// (the heap-limit sweep's below-floor FAILED rows would turn every
	// "all" run into exit status 1). Extras run when named explicitly.
	Extra bool
}

func tables(ts ...*report.Table) Output { return Output{Tables: ts} }

// registry lists the experiments in the paper's reporting order.
var registry = []Descriptor{
	{
		Name: "fig1", Ref: "Figure 1",
		Doc:     "normalized CPU time per transaction, default vs region-based (MediaWiki rw, 8 Xeon cores)",
		Example: "webmm -exp fig1 -scale 8",
		Cells:   (*Runner).Fig1Cells,
		Run:     func(r *Runner) Output { return tables(Fig1(r).Table()) },
	},
	{
		Name: "table2", Ref: "Table 2",
		Doc:     "the workloads used in the measurements (no simulation)",
		Example: "webmm -exp table2",
		Run:     func(r *Runner) Output { return tables(Table2()) },
	},
	{
		Name: "table3", Ref: "Table 3",
		Doc:     "allocator calls per transaction and mean allocation size, per workload",
		Example: "webmm -exp table3 -scale 8",
		Cells:   (*Runner).Table3Cells,
		Run:     func(r *Runner) Output { return tables(Table3Table(Table3(r))) },
	},
	{
		Name: "fig5", Ref: "Figure 5",
		Doc:     "relative throughput over the default allocator, all workloads, 8 cores, both platforms",
		Example: "webmm -exp fig5 -jobs 8",
		Cells:   (*Runner).Fig5Cells,
		Run: func(r *Runner) Output {
			entries := Fig5(r)
			out := tables(Fig5Table(entries))
			for _, plat := range []string{"xeon", "niagara"} {
				ch := report.NewChart(fmt.Sprintf("Relative throughput on %s (| = default)", plat))
				ch.SetBaseline(1.0)
				for _, e := range entries {
					if e.Platform == plat {
						ch.Add(e.Workload+" region", e.Region)
						ch.Add(e.Workload+" DDmalloc", e.DD)
					}
				}
				out.Charts = append(out.Charts, ch)
			}
			return out
		},
	},
	{
		Name: "fig6", Ref: "Figure 6",
		Doc:     "CPU time per transaction broken into memory management and others, 8 Xeon cores",
		Example: "webmm -exp fig6 -jobs 8",
		Cells:   (*Runner).Fig6Cells,
		Run:     func(r *Runner) Output { return tables(Fig6Table(Fig6(r))) },
	},
	{
		Name: "fig7", Ref: "Figure 7",
		Doc:     "MediaWiki (read-only) throughput scaling with core count, both platforms",
		Example: "webmm -exp fig7 -jobs 8",
		Cells:   (*Runner).Fig7Cells,
		Run: func(r *Runner) Output {
			points := Fig7(r)
			out := tables(Fig7Table(points))
			for _, plat := range []string{"xeon", "niagara"} {
				ch := report.NewChart(fmt.Sprintf("MediaWiki(ro) on %s, txns/sec by cores", plat))
				for _, p := range points {
					if p.Platform == plat {
						ch.Add(fmt.Sprintf("%-8s @%d", p.Alloc, p.Cores), p.Throughput)
					}
				}
				out.Charts = append(out.Charts, ch)
			}
			return out
		},
	},
	{
		Name: "table4", Ref: "Table 4",
		Doc:     "1- and 8-core throughput and speedups for every workload, allocator, and platform",
		Example: "webmm -exp table4 -jobs 8 -fidelity sampled -cellcache .webmm-cache",
		Cells:   (*Runner).Table4Cells,
		Run:     func(r *Runner) Output { return tables(Table4Table(Table4(r))) },
	},
	{
		Name: "fig8", Ref: "Figure 8",
		Doc:     "change in hardware events per transaction vs the default allocator, 8 cores",
		Example: "webmm -exp fig8 -jobs 8",
		Cells:   (*Runner).Fig8Cells,
		Run:     func(r *Runner) Output { return tables(Fig8Table(Fig8(r))) },
	},
	{
		Name: "fig9", Ref: "Figure 9",
		Doc:     "memory consumed per transaction, per workload and allocator",
		Example: "webmm -exp fig9",
		Cells:   (*Runner).Fig9Cells,
		Run:     func(r *Runner) Output { return tables(Fig9Table(Fig9(r))) },
	},
	{
		Name: "fig10", Ref: "Figure 10",
		Doc:     "Rails throughput under glibc, Hoard, TCMalloc and DDmalloc with periodic restarts",
		Example: "webmm -exp fig10",
		Cells:   (*Runner).Fig10Cells,
		Run:     func(r *Runner) Output { return tables(Fig10Table(Fig10(r))) },
	},
	{
		Name: "fig11", Ref: "Figure 11",
		Doc:     "Rails CPU time breakdown (memory management, restart, others)",
		Example: "webmm -exp fig11",
		Cells:   (*Runner).Fig11Cells,
		Run:     func(r *Runner) Output { return tables(Fig11Table(Fig11(r))) },
	},
	{
		Name: "fig12", Ref: "Figure 12",
		Doc:     "Rails throughput vs process restart period, glibc and DDmalloc",
		Example: "webmm -exp fig12",
		Cells:   (*Runner).Fig12Cells,
		Run:     func(r *Runner) Output { return tables(Fig12Table(Fig12(r))) },
	},
	{
		Name: "heaplimit", Ref: "Extension", Extra: true,
		Doc:     "throughput vs per-stream heap limit for the PHP allocators; FAILED rows mark each allocator's memory floor",
		Example: "webmm -exp heaplimit -scale 8",
		Cells:   (*Runner).HeapLimitCells,
		Run: func(r *Runner) Output {
			entries := HeapLimit(r)
			out := tables(HeapLimitTable(entries))
			out.Charts = append(out.Charts, HeapLimitChart(entries))
			return out
		},
	},
	{
		Name: "memsched", Ref: "Extension", Extra: true,
		Doc:     "allocator x DRAM scheduling policy x cores: throughput vs the bus model and row-buffer hit/conflict rates",
		Example: "webmm -exp memsched -scale 64 -jobs 8",
		Cells:   (*Runner).MemSchedCells,
		Run: func(r *Runner) Output {
			entries := MemSched(r)
			out := tables(MemSchedTable(entries))
			out.Charts = append(out.Charts, MemSchedChart(entries))
			return out
		},
	},
}

// Experiments returns the experiment descriptors in the paper's reporting
// order. The slice is a copy; the registry itself is immutable.
func Experiments() []Descriptor {
	out := make([]Descriptor, len(registry))
	copy(out, registry)
	return out
}

// ExperimentByName looks an experiment up by its selection key.
func ExperimentByName(name string) (Descriptor, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Descriptor{}, fmt.Errorf("experiments: unknown experiment %q (valid: %s, all, cell)",
		name, strings.Join(ExperimentNames(), ", "))
}

// ExperimentNames lists the registered experiment names in order.
func ExperimentNames() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// PaperExperimentNames lists the experiments of the paper's evaluation —
// what "all" runs — excluding extensions (Descriptor.Extra).
func PaperExperimentNames() []string {
	var out []string
	for _, d := range registry {
		if !d.Extra {
			out = append(out, d.Name)
		}
	}
	return out
}

// CellsFor returns the cell plan of the named experiment, or nil for
// experiments that simulate nothing (table2) and unknown names. "all"
// returns the union of every plan (duplicates included; RunAll dedups).
func (r *Runner) CellsFor(name string) []Cell {
	if name == "all" {
		var out []Cell
		for _, d := range registry {
			if d.Cells != nil && !d.Extra {
				out = append(out, d.Cells(r)...)
			}
		}
		return out
	}
	d, err := ExperimentByName(name)
	if err != nil || d.Cells == nil {
		return nil
	}
	return d.Cells(r)
}

// ExperimentsMarkdown renders the registry as the generated experiment
// catalogue of EXPERIMENTS.md (one table row per experiment, with the
// one-line example invocations). A docs test keeps the committed file in
// sync with this output.
func ExperimentsMarkdown() string {
	var b strings.Builder
	b.WriteString("| name | reproduces | what it shows | example |\n")
	b.WriteString("|------|------------|---------------|---------|\n")
	for _, d := range registry {
		fmt.Fprintf(&b, "| %s | %s | %s | `%s` |\n", d.Name, d.Ref, d.Doc, d.Example)
	}
	return b.String()
}

// UsageExperiments renders the experiment list for the CLI's -h output,
// sorted lists aside, in registry order.
func UsageExperiments() string {
	var b strings.Builder
	for _, d := range registry {
		fmt.Fprintf(&b, "  %-7s %s: %s\n", d.Name, d.Ref, d.Doc)
	}
	b.WriteString("  all     every paper experiment above, in order (extensions run by name)\n")
	b.WriteString("  cell    one (platform, allocator, workload, cores) cell; see -platform/-alloc/-workload/-cores\n")
	return b.String()
}
