package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"webmm/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden files in testdata")

// goldenCfg pins the configuration of the committed golden outputs. Any
// knob here is part of the golden contract: changing one requires
// regenerating testdata with -update.
func goldenCfg() Config {
	return Config{Scale: 256, Warmup: 1, Measure: 1, Seed: 20090615}
}

// renderFig1Table3 renders Figure 1 and Table 3 the way cmd/webmm does.
func renderFig1Table3(r *Runner) string {
	var b strings.Builder
	b.WriteString(Fig1(r).Table().String())
	b.WriteString("\n")
	b.WriteString(Table3Table(Table3(r)).String())
	b.WriteString("\n")
	return b.String()
}

// TestGoldenFig1Table3Deterministic is the determinism lock on rendered
// results: Figure 1 and Table 3 at the golden scale must reproduce the
// committed testdata byte-for-byte, from both the serial Run loop and the
// parallel RunAll fan-out. An intentional simulator change regenerates the
// file with -update (and, if cell numbers moved, bumps cellCacheVersion).
func TestGoldenFig1Table3Deterministic(t *testing.T) {
	path := filepath.Join("testdata", "golden_fig1_table3.txt")

	serial := NewRunner(goldenCfg())
	got := renderFig1Table3(serial)

	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("serial Fig1+Table3 output diverged from %s\ngot:\n%s", path, got)
	}

	par := NewRunner(goldenCfg())
	par.RunAll(append(par.CellsFor("fig1"), par.CellsFor("table3")...), 4)
	if gotPar := renderFig1Table3(par); gotPar != string(want) {
		t.Errorf("parallel Fig1+Table3 output diverged from %s\ngot:\n%s", path, gotPar)
	}
}

// TestCellFingerprint ties one cell's full CellResult — every counter, not
// just the rendered columns — to the cell-cache format version. The
// committed file records "v<cellCacheVersion> <sha256 of the result JSON>";
// if a change moves any number in the result, this fails until the author
// both bumps cellCacheVersion (so stale disk caches cannot serve the old
// numbers) and regenerates the fingerprint with -update.
func TestCellFingerprint(t *testing.T) {
	path := filepath.Join("testdata", "cell_fingerprint.txt")

	r := NewRunner(goldenCfg())
	res := r.Run(phpCell("xeon", "ddmalloc", workload.MediaWikiRO().Name, 2))
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	got := fmt.Sprintf("v%d %s\n", cellCacheVersion, hex.EncodeToString(sum[:]))

	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fingerprint file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("cell fingerprint mismatch:\n got %swant %s"+
			"(simulator outputs changed: bump cellCacheVersion and rerun with -update)",
			got, want)
	}
}
