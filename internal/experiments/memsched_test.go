package experiments

import (
	"reflect"
	"testing"

	"webmm/internal/memsys"
)

// memSchedCfg is small enough for per-policy runs in CI but large enough
// that 8 cores generate real bank traffic.
func memSchedCfg() Config {
	return Config{Scale: 256, Warmup: 1, Measure: 1, Seed: 20090615}
}

// The default (bus) path must carry no memory-system stats: Result.Mem is
// the only new result field, and nil there means the JSON encoding — and
// therefore every committed fingerprint — is byte-identical to pre-seam
// builds. (The golden and fingerprint tests are the cross-build half of
// this differential check; this pins the mechanism.)
func TestBusCellHasNoMemStats(t *testing.T) {
	r := NewRunner(memSchedCfg())
	cr := r.Run(memSchedCell("ddmalloc", "", 2))
	if cr.Failed {
		t.Fatal("bus cell failed")
	}
	if cr.Res.Mem != nil {
		t.Fatalf("bus cell carries memory-system stats: %+v", cr.Res.Mem)
	}
}

// Every scheduling policy must be deterministic: the same seed in a fresh
// runner reproduces the entire cell result, stats included.
func TestMemSchedDeterministicPerPolicy(t *testing.T) {
	for _, p := range memsys.PolicyNames() {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			a := NewRunner(memSchedCfg()).Run(memSchedCell("region", string(p), 2))
			b := NewRunner(memSchedCfg()).Run(memSchedCell("region", string(p), 2))
			if a.Failed || b.Failed {
				t.Fatal("cell failed")
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("policy %s not deterministic:\n%+v\n%+v", p, a, b)
			}
			if a.Res.Mem == nil || a.Res.Mem.Total() == 0 {
				t.Errorf("policy %s recorded no DRAM traffic", p)
			}
		})
	}
}

// A DRAM cell and its bus twin must never share a cache identity: the keys
// (and the Cell structs the cache re-verifies against) differ in MemSched.
func TestMemSchedCellKeysDistinct(t *testing.T) {
	bus := memSchedCell("default", "", 4)
	seen := map[string]bool{cellKey(bus): true}
	for _, p := range memsys.PolicyNames() {
		k := cellKey(memSchedCell("default", string(p), 4))
		if seen[k] {
			t.Fatalf("cache key %q collides", k)
		}
		seen[k] = true
	}
	if k := cellKey(memSchedCell("default", "frfcfs", 4)); k == cellKey(bus) {
		t.Fatalf("bus and DRAM cells share key %q", k)
	}
}

// An unknown policy must fail the cell with the registry's helpful error,
// not panic or silently fall back to the bus.
func TestMemSchedUnknownPolicyFails(t *testing.T) {
	r := NewRunner(memSchedCfg())
	cr := r.Run(memSchedCell("default", "roundrobin", 1))
	if !cr.Failed {
		t.Fatal("unknown policy did not fail the cell")
	}
}

// The acceptance criterion: at 8 cores the row-buffer hit rate must spread
// across allocators (placement matters to the banks) — the allocator ×
// policy interaction the memsched figure reports.
func TestMemSchedAllocatorPolicyInteraction(t *testing.T) {
	r := NewRunner(memSchedCfg())
	hitRates := map[string]float64{}
	for _, alloc := range PHPAllocators() {
		cr := r.Run(memSchedCell(alloc, string(memsys.PolicyFRFCFS), 8))
		if cr.Failed {
			t.Fatalf("%s cell failed", alloc)
		}
		ms := cr.Res.Mem
		if ms == nil || ms.Total() == 0 {
			t.Fatalf("%s: no DRAM traffic at 8 cores", alloc)
		}
		hitRates[alloc] = ms.RowHitRate()
	}
	min, max := 1.0, 0.0
	for _, h := range hitRates {
		if h < min {
			min = h
		}
		if h > max {
			max = h
		}
	}
	if max-min < 0.01 {
		t.Errorf("row-buffer hit rate spread %v across allocators is not measurable: %v", max-min, hitRates)
	}
}
