package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"webmm/internal/mem"
	"webmm/internal/workload"
)

// faultCfg is a cheap config for the failure-path tests.
func faultCfg() Config { return Config{Scale: 256, Warmup: 1, Measure: 1, Seed: 7} }

func TestParseFaults(t *testing.T) {
	cases := []struct {
		in   string
		want FaultPlan
	}{
		{"", FaultPlan{}},
		{"oom:0.01", FaultPlan{OOMRate: 0.01}},
		{"panic:1", FaultPlan{PanicRate: 1}},
		{"budget:64MiB", FaultPlan{Budget: 64 * mem.MiB}},
		{"budget:2G", FaultPlan{Budget: 2 * mem.GiB}},
		{"budget:4096", FaultPlan{Budget: 4096}},
		{"cachecorrupt", FaultPlan{CacheCorrupt: true}},
		{"squeeze:0.5", FaultPlan{Squeeze: 0.5}},
		{"oom:0.5, panic:0.25, budget:1KiB, squeeze:0.75, cachecorrupt",
			FaultPlan{OOMRate: 0.5, PanicRate: 0.25, Budget: mem.KiB, Squeeze: 0.75, CacheCorrupt: true}},
	}
	for _, tc := range cases {
		got, err := ParseFaults(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFaults(%q) = %+v, %v; want %+v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"oom", "oom:2", "oom:x", "panic:-1", "budget:",
		"budget:12.5MiB", "cachecorrupt:yes", "frobnicate:1", "oom:0.1,,panic:0.1",
		"squeeze", "squeeze:0", "squeeze:-1", "squeeze:x"} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted invalid input", bad)
		}
	}
	if (FaultPlan{CacheCorrupt: true}).Active() {
		t.Error("CacheCorrupt alone must not bypass the cache (Active)")
	}
	if !(FaultPlan{OOMRate: 0.01}).Active() || !(FaultPlan{Budget: 1}).Active() ||
		!(FaultPlan{Squeeze: 0.5}).Active() {
		t.Error("oom/budget/squeeze plans must be Active")
	}
}

// TestInjectedPanicIsolated: with PanicRate 1 every attempt panics; the
// panic must be recovered, retried once, reported via Failures, and the
// process (and other cells) must keep running.
func TestInjectedPanicIsolated(t *testing.T) {
	r := NewRunner(faultCfg())
	r.Faults = FaultPlan{PanicRate: 1}
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)

	res := r.Run(c)
	if !res.Failed {
		t.Fatal("cell with guaranteed panic did not report Failed")
	}
	fails := r.Failures()
	if len(fails) != 1 {
		t.Fatalf("want 1 recorded failure, got %d", len(fails))
	}
	f := fails[0]
	if f.Cell != c || f.Attempts != 2 {
		t.Errorf("failure = %+v; want cell %+v after 2 attempts", f, c)
	}
	if !strings.Contains(f.Err.Error(), "injected fault") {
		t.Errorf("failure error %q does not identify the injected panic", f.Err)
	}
	if len(f.Stack) == 0 {
		t.Error("recovered panic carries no stack")
	}

	// The failed result is memoized: no second round of attempts.
	if again := r.Run(c); !again.Failed {
		t.Error("memoized failed cell lost its Failed mark")
	}
	if len(r.Failures()) != 1 {
		t.Error("re-running a failed cell recorded a duplicate failure")
	}
}

// TestConfigErrorNotRetried: deterministic configuration errors fail on the
// first attempt, without a retry and without a panic stack.
func TestConfigErrorNotRetried(t *testing.T) {
	r := NewRunner(faultCfg())
	res := r.Run(Cell{Platform: "vax", Alloc: "default",
		Workload: workload.PhpBB().Name, Cores: 1})
	if !res.Failed {
		t.Fatal("unknown platform did not fail the cell")
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Attempts != 1 {
		t.Fatalf("config error retried: %+v", fails)
	}
	if len(fails[0].Stack) != 0 {
		t.Error("config error recorded a panic stack")
	}
}

// TestRunAllSurvivesFailures: a failing cell inside a parallel plan must not
// sink the other cells.
func TestRunAllSurvivesFailures(t *testing.T) {
	r := NewRunner(faultCfg())
	wl := workload.PhpBB().Name
	cells := []Cell{
		phpCell("xeon", "default", wl, 1),
		{Platform: "xeon", Alloc: "no-such-alloc", Workload: wl, Cores: 1},
		phpCell("xeon", "region", wl, 1),
	}
	got := r.RunAll(cells, 2)
	if got[0].Failed || got[2].Failed {
		t.Error("healthy cells failed alongside a broken one")
	}
	if !got[1].Failed {
		t.Error("broken cell did not report Failed")
	}
	if len(r.Failures()) != 1 {
		t.Errorf("want 1 failure, got %d", len(r.Failures()))
	}
}

func TestCellTimeout(t *testing.T) {
	r := NewRunner(faultCfg())
	r.Timeout = time.Nanosecond
	res := r.Run(phpCell("xeon", "default", workload.PhpBB().Name, 1))
	if !res.Failed {
		t.Fatal("1ns timeout did not fail the cell")
	}
	fails := r.Failures()
	if len(fails) != 1 || fails[0].Attempts != 1 {
		t.Fatalf("timeout must not be retried: %+v", fails)
	}
	if !strings.Contains(fails[0].Err.Error(), "timeout") {
		t.Errorf("timeout error = %q", fails[0].Err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(faultCfg())
	r.Ctx = ctx
	res := r.Run(phpCell("xeon", "default", workload.PhpBB().Name, 1))
	if !res.Failed {
		t.Fatal("cancelled context did not fail the cell")
	}
	if fails := r.Failures(); len(fails) != 1 || fails[0].Err != context.Canceled {
		t.Fatalf("want context.Canceled, got %+v", fails)
	}
}

// TestOOMInjectionSurvivesRubyRestart: with every Map failing, the Ruby
// runtime's process restart cannot remap its data and panics; the runner
// must contain that to one failed cell.
func TestOOMInjectionSurvivesRubyRestart(t *testing.T) {
	r := NewRunner(faultCfg())
	r.Faults = FaultPlan{OOMRate: 1}
	c := Cell{Platform: "xeon", Alloc: "glibc", Workload: workload.Rails().Name,
		Cores: 1, Ruby: true, RestartEvery: 2}
	res := r.Run(c)
	if !res.Failed {
		t.Fatal("total OOM injection did not fail the Ruby cell")
	}
	if fails := r.Failures(); len(fails) != 1 || fails[0].Attempts != 2 {
		t.Fatalf("recovered panic should be retried once: %+v", fails)
	}
}

// TestActiveFaultsBypassCache: an active plan must neither load from nor
// store to the cell cache.
func TestActiveFaultsBypassCache(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg()
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)

	// Seed the cache with a clean result.
	clean := NewRunner(cfg)
	clean.Cache = cc
	clean.Run(c)

	r := NewRunner(cfg)
	r.Cache = cc
	r.Faults = FaultPlan{PanicRate: 1}
	if res := r.Run(c); !res.Failed {
		t.Fatal("cached clean result masked the injected faults")
	}
	// The clean entry must survive untouched for fault-free runs.
	entries, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(entries) != 1 {
		t.Fatalf("fault run disturbed the cache: %d entries", len(entries))
	}
	if _, ok := cc.load(cfg, c); !ok {
		t.Error("clean cache entry was damaged by the fault run")
	}
}

// TestCacheCorruptionSelfHeals: a CacheCorrupt run plants a broken entry;
// the next fault-free run must reject it, delete it, re-simulate, and leave
// a valid entry behind.
func TestCacheCorruptionSelfHeals(t *testing.T) {
	dir := t.TempDir()
	cc, err := NewCellCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultCfg()
	c := phpCell("xeon", "default", workload.PhpBB().Name, 1)

	r1 := NewRunner(cfg)
	r1.Cache = cc
	r1.Faults = FaultPlan{CacheCorrupt: true}
	want := r1.Run(c)
	if want.Failed {
		t.Fatal("CacheCorrupt must not perturb the simulation itself")
	}

	// The planted entry is invalid; load must miss and remove it.
	if _, ok := cc.load(cfg, c); ok {
		t.Fatal("corrupted entry satisfied a load")
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(entries) != 0 {
		t.Fatalf("corrupted entry not deleted: %v", entries)
	}

	// A fresh fault-free runner re-simulates and stores a valid entry.
	r2 := NewRunner(cfg)
	r2.Cache = cc
	got := r2.Run(c)
	if got.Failed || !reflect.DeepEqual(got, want) {
		t.Error("re-simulated result differs after cache corruption")
	}
	if _, ok := cc.load(cfg, c); !ok {
		t.Error("healed cache entry is not loadable")
	}
}
