package cache

import "fmt"

// Prefetcher models the hardware stream prefetcher of the Xeon (Clovertown)
// memory subsystem. Niagara has none, which the paper identifies as the
// reason the region allocator's bus-transaction increase is so much larger
// on Xeon: the prefetcher chases the region allocator's sequentially growing
// bump pointer and fetches lines for objects that will die before reuse,
// amplifying bus traffic while hiding some latency.
//
// The model detects ascending unit-stride miss streams within a page-like
// window and, once a stream is confirmed, prefetches Depth lines ahead of
// each miss.
//
// Tracker state is struct-of-arrays: the match loop — run on every L2 demand
// miss — scans only the contiguous nextLine array, one unsigned compare per
// tracker, with confidence bytes held separately and touched only on a
// match. Idle trackers carry the trackerIdle sentinel so the same compare
// rejects them without a validity check. Replacement uses the same packed
// recency permutation as the caches (see Cache): trackers are totally
// ordered by last use, so one nibble-packed word replaces a per-tracker
// timestamp and its eviction scan, and there is no clock to wrap.
type Prefetcher struct {
	// Depth is how many lines are fetched ahead once a stream locks on.
	Depth int

	// next is each tracker's predicted next line, or trackerIdle.
	next []uint64
	// conf is each tracker's confidence; 0 means the tracker is idle.
	conf  []uint8
	order uint64 // recency permutation of tracker indices, MRU nibble lowest
	fill  int    // trackers in use; == len(next) once warm

	// out is the scratch slice OnMiss returns, reused across calls so a
	// confirmed stream costs no allocation per miss.
	out []uint64

	// Issued counts lines the prefetcher asked to fetch.
	Issued uint64
}

// trackerIdle marks an unused tracker. It sits far above any reachable line
// number (line 2^63 would be address 2^69), so the windowed match
// line-next < 4 can never select an idle tracker.
const trackerIdle = uint64(1) << 63

// NewPrefetcher returns a prefetcher with the given number of concurrent
// stream trackers and prefetch depth.
func NewPrefetcher(trackers, depth int) *Prefetcher {
	if trackers > 16 {
		panic(fmt.Sprintf("prefetcher: %d trackers overflow the packed recency word", trackers))
	}
	p := &Prefetcher{
		Depth: depth,
		next:  make([]uint64, trackers),
		conf:  make([]uint8, trackers),
		order: identityOrder,
		out:   make([]uint64, 0, depth),
	}
	for i := range p.next {
		p.next[i] = trackerIdle
	}
	return p
}

// OnMiss observes a demand miss on line and returns the lines to prefetch
// (possibly none). Detection requires two consecutive misses on adjacent
// ascending lines. The returned slice is owned by the Prefetcher and only
// valid until the next OnMiss call.
func (p *Prefetcher) OnMiss(line uint64) []uint64 {
	if p == nil {
		return nil
	}
	// Try to match an existing stream. The demand stream is allowed to be
	// at, or slightly past, the predicted next line (the core can outrun
	// the tracker): line in [next, next+4), which the unsigned subtraction
	// tests in one compare — idle trackers' sentinel makes the difference
	// enormous, so they can never match.
	for i, nl := range p.next {
		if line-nl < 4 {
			p.order = promote(p.order, i)
			p.next[i] = line + 1
			c := p.conf[i]
			if c < 4 {
				c++
				p.conf[i] = c
			}
			if c >= 2 {
				out := p.out[:0]
				for d := 1; d <= p.Depth; d++ {
					out = append(out, line+uint64(d))
				}
				p.out = out
				p.Issued += uint64(len(out))
				return out
			}
			return nil
		}
	}
	// Allocate a new tracker for this potential stream. While trackers
	// remain free the first idle index wins, as the original scan's
	// validity check chose; once warm the victim is the recency tail —
	// exactly the least-recently-used tracker the timestamp scan picked,
	// since per-tracker last-use times are distinct.
	victim := 0
	if p.fill == len(p.next) {
		victim = int(p.order >> (uint(len(p.next)-1) * 4) & 0xF)
	} else {
		for i, c := range p.conf {
			if c == 0 {
				victim = i
				break
			}
		}
		p.fill++
	}
	p.next[victim] = line + 1
	p.conf[victim] = 1
	p.order = promote(p.order, victim)
	return nil
}

// Reset clears all stream trackers and counters.
func (p *Prefetcher) Reset() {
	if p == nil {
		return
	}
	for i := range p.next {
		p.next[i] = trackerIdle
		p.conf[i] = 0
	}
	p.order = identityOrder
	p.fill = 0
	p.Issued = 0
}
