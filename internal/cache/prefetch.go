package cache

// Prefetcher models the hardware stream prefetcher of the Xeon (Clovertown)
// memory subsystem. Niagara has none, which the paper identifies as the
// reason the region allocator's bus-transaction increase is so much larger
// on Xeon: the prefetcher chases the region allocator's sequentially growing
// bump pointer and fetches lines for objects that will die before reuse,
// amplifying bus traffic while hiding some latency.
//
// The model detects ascending unit-stride miss streams within a page-like
// window and, once a stream is confirmed, prefetches Depth lines ahead of
// each miss.
type Prefetcher struct {
	// Depth is how many lines are fetched ahead once a stream locks on.
	Depth int

	streams []stream
	clock   uint32

	// Issued counts lines the prefetcher asked to fetch.
	Issued uint64
}

type stream struct {
	nextLine uint64
	conf     uint8
	lastUse  uint32
	valid    bool
}

// NewPrefetcher returns a prefetcher with the given number of concurrent
// stream trackers and prefetch depth.
func NewPrefetcher(trackers, depth int) *Prefetcher {
	return &Prefetcher{Depth: depth, streams: make([]stream, trackers)}
}

// OnMiss observes a demand miss on line and returns the lines to prefetch
// (possibly none). Detection requires two consecutive misses on adjacent
// ascending lines.
func (p *Prefetcher) OnMiss(line uint64) []uint64 {
	if p == nil {
		return nil
	}
	p.clock++
	// Try to match an existing stream.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		// Allow the demand stream to be at, or slightly past, the
		// predicted next line (the core can outrun the tracker).
		if line >= s.nextLine && line < s.nextLine+4 {
			s.lastUse = p.clock
			s.nextLine = line + 1
			if s.conf < 4 {
				s.conf++
			}
			if s.conf >= 2 {
				out := make([]uint64, 0, p.Depth)
				for d := 1; d <= p.Depth; d++ {
					out = append(out, line+uint64(d))
				}
				p.Issued += uint64(len(out))
				s.nextLine = line + 1
				return out
			}
			return nil
		}
	}
	// Allocate a new tracker for this potential stream, evicting the LRU.
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lastUse < p.streams[victim].lastUse {
			victim = i
		}
	}
	p.streams[victim] = stream{nextLine: line + 1, conf: 1, lastUse: p.clock, valid: true}
	return nil
}

// Reset clears all stream trackers and counters.
func (p *Prefetcher) Reset() {
	if p == nil {
		return
	}
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.clock = 0
	p.Issued = 0
}
