package cache

import "fmt"

// Prefetcher models the hardware stream prefetcher of the Xeon (Clovertown)
// memory subsystem. Niagara has none, which the paper identifies as the
// reason the region allocator's bus-transaction increase is so much larger
// on Xeon: the prefetcher chases the region allocator's sequentially growing
// bump pointer and fetches lines for objects that will die before reuse,
// amplifying bus traffic while hiding some latency.
//
// The model detects ascending unit-stride miss streams within a page-like
// window and, once a stream is confirmed, prefetches Depth lines ahead of
// each miss.
//
// Tracker replacement uses the same packed recency permutation as the
// caches (see Cache): trackers are totally ordered by last use, so one
// nibble-packed word replaces a per-tracker timestamp and its eviction
// scan, and there is no clock to wrap.
type Prefetcher struct {
	// Depth is how many lines are fetched ahead once a stream locks on.
	Depth int

	streams []stream
	order   uint64 // recency permutation of tracker indices, MRU nibble lowest
	fill    int    // trackers in use; == len(streams) once warm

	// out is the scratch slice OnMiss returns, reused across calls so a
	// confirmed stream costs no allocation per miss.
	out []uint64

	// Issued counts lines the prefetcher asked to fetch.
	Issued uint64
}

// stream is one tracker.
type stream struct {
	nextLine uint64
	conf     uint8
	valid    bool
}

// NewPrefetcher returns a prefetcher with the given number of concurrent
// stream trackers and prefetch depth.
func NewPrefetcher(trackers, depth int) *Prefetcher {
	if trackers > 16 {
		panic(fmt.Sprintf("prefetcher: %d trackers overflow the packed recency word", trackers))
	}
	return &Prefetcher{
		Depth:   depth,
		streams: make([]stream, trackers),
		order:   identityOrder,
		out:     make([]uint64, 0, depth),
	}
}

// OnMiss observes a demand miss on line and returns the lines to prefetch
// (possibly none). Detection requires two consecutive misses on adjacent
// ascending lines. The returned slice is owned by the Prefetcher and only
// valid until the next OnMiss call.
func (p *Prefetcher) OnMiss(line uint64) []uint64 {
	if p == nil {
		return nil
	}
	// Try to match an existing stream.
	for i := range p.streams {
		s := &p.streams[i]
		if !s.valid {
			continue
		}
		// Allow the demand stream to be at, or slightly past, the
		// predicted next line (the core can outrun the tracker).
		if line >= s.nextLine && line < s.nextLine+4 {
			p.order = promote(p.order, i)
			s.nextLine = line + 1
			if s.conf < 4 {
				s.conf++
			}
			if s.conf >= 2 {
				out := p.out[:0]
				for d := 1; d <= p.Depth; d++ {
					out = append(out, line+uint64(d))
				}
				p.out = out
				p.Issued += uint64(len(out))
				s.nextLine = line + 1
				return out
			}
			return nil
		}
	}
	// Allocate a new tracker for this potential stream. While trackers
	// remain free the first invalid index wins, as the original scan's
	// valid check chose; once warm the victim is the recency tail —
	// exactly the least-recently-used tracker the timestamp scan picked,
	// since per-tracker last-use times are distinct.
	victim := 0
	if p.fill == len(p.streams) {
		victim = int(p.order >> (uint(len(p.streams)-1) * 4) & 0xF)
	} else {
		for i := range p.streams {
			if !p.streams[i].valid {
				victim = i
				break
			}
		}
		p.fill++
	}
	p.streams[victim] = stream{nextLine: line + 1, conf: 1, valid: true}
	p.order = promote(p.order, victim)
	return nil
}

// Reset clears all stream trackers and counters.
func (p *Prefetcher) Reset() {
	if p == nil {
		return
	}
	for i := range p.streams {
		p.streams[i] = stream{}
	}
	p.order = identityOrder
	p.fill = 0
	p.Issued = 0
}
