package cache

import (
	"testing"

	"webmm/internal/mem"
)

// benchLines builds a deterministic access stream with the locality shape the
// simulator produces: long sequential runs (fetch runs, large copies)
// interleaved with re-touches of a small hot set, plus an occasional cold
// line. The mix keeps the hit rate high — the regime way prediction targets —
// without being a pure single-line loop.
func benchLines(n int) []uint64 {
	lines := make([]uint64, 0, n)
	const hot = 64
	cold := uint64(1 << 20)
	for len(lines) < n {
		base := uint64(1024 + (len(lines)%hot)*7)
		for r := uint64(0); r < 8; r++ { // sequential run
			lines = append(lines, base+r)
		}
		lines = append(lines, base) // immediate re-touch (MRU hit)
		if len(lines)%97 == 0 {     // occasional cold miss
			cold += 513
			lines = append(lines, cold)
		}
	}
	return lines[:n]
}

// BenchmarkCacheAccess measures the demand-access path of the
// set-associative cache model, the innermost call of Machine.price.
func BenchmarkCacheAccess(b *testing.B) {
	for _, cfg := range []Config{
		{Name: "L1D", Size: 32 * mem.KiB, Ways: 8},
		{Name: "L2", Size: 4 * mem.MiB, Ways: 16},
	} {
		b.Run(cfg.Name, func(b *testing.B) {
			c := New(cfg)
			lines := benchLines(8192)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Access(lines[i%len(lines)], i%4 == 0)
			}
			b.ReportMetric(float64(c.Hits)/float64(c.Hits+c.Misses), "hit_rate")
		})
	}
}

// BenchmarkCacheContains measures the read-only residency probe used by the
// coherence paths.
func BenchmarkCacheContains(b *testing.B) {
	c := New(Config{Name: "L2", Size: 4 * mem.MiB, Ways: 16})
	lines := benchLines(8192)
	for _, l := range lines {
		c.Access(l, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Contains(lines[i%len(lines)])
	}
}
