package cache

import "testing"

// This file is the regression suite for the LRU replacement-state redesign.
//
// The seed implementation kept a per-way timestamp stamped from a 32-bit
// tick. A paper-scale cell prices more than 2^32 accesses, so the tick
// wrapped and newly-touched lines suddenly stamped *older* than stale ones,
// silently inverting LRU order mid-run. The fix replaces timestamps with
// packed recency permutations, which have no counter at all; these tests
// pin the implementation to a reference model that uses unbounded (64-bit)
// timestamps *started beyond the old 32-bit boundary*, so the sequences
// exercised here are exactly the regime where the seed implementation went
// wrong — TestLRUWrapRegressionHasTeeth proves a 32-bit-stamped model does
// diverge on the same inputs.

// refCache is the executable specification: explicit per-way uint64 stamps,
// scanned the way the seed code did. tick starts just below 2^32 so every
// sequence crosses the old wraparound boundary.
type refCache struct {
	sets, ways int
	tags       []uint64
	stamp      []uint64
	dirty      []bool
	pf         []bool
	tick       uint64
	trunc32    bool // stamp through uint32 truncation: reproduce the seed bug

	hits, misses, wbs, pfInstalls, pfUseful uint64
}

func newRefCache(sets, ways int, startTick uint64, trunc32 bool) *refCache {
	n := sets * ways
	return &refCache{
		sets: sets, ways: ways,
		tags: make([]uint64, n), stamp: make([]uint64, n),
		dirty: make([]bool, n), pf: make([]bool, n),
		tick: startTick, trunc32: trunc32,
	}
}

func (r *refCache) now() uint64 {
	r.tick++
	if r.trunc32 {
		return r.tick & 0xFFFFFFFF
	}
	return r.tick
}

func (r *refCache) find(line uint64) int {
	sn := int(line) % r.sets
	for w := 0; w < r.ways; w++ {
		if r.tags[sn*r.ways+w] == line {
			return sn*r.ways + w
		}
	}
	return -1
}

// victim implements the documented choice: the first invalid way at index
// >= 1 wins, else way 0 if invalid, else the way with the smallest stamp
// (earliest index on the impossible tie).
func (r *refCache) victim(sn int) int {
	base := sn * r.ways
	for w := 1; w < r.ways; w++ {
		if r.tags[base+w] == 0 {
			return base + w
		}
	}
	if r.tags[base] == 0 {
		return base
	}
	oldest := base
	for w := 1; w < r.ways; w++ {
		if r.stamp[base+w] < r.stamp[oldest] {
			oldest = base + w
		}
	}
	return oldest
}

func (r *refCache) install(line uint64, dirty, pf bool) Victim {
	sn := int(line) % r.sets
	i := r.victim(sn)
	var v Victim
	if r.tags[i] != 0 {
		v = Victim{Line: r.tags[i], Dirty: r.dirty[i], Valid: true}
		if v.Dirty {
			r.wbs++
		}
	}
	r.tags[i] = line
	r.stamp[i] = r.now()
	r.dirty[i] = dirty
	r.pf[i] = pf
	return v
}

func (r *refCache) Access(line uint64, write bool) (bool, bool, Victim) {
	if i := r.find(line); i >= 0 {
		r.hits++
		r.stamp[i] = r.now()
		if write {
			r.dirty[i] = true
		}
		if r.pf[i] {
			r.pf[i] = false
			r.pfUseful++
			return true, true, Victim{}
		}
		return true, false, Victim{}
	}
	r.misses++
	return false, false, r.install(line, write, false)
}

func (r *refCache) Install(line uint64, pf bool) (bool, Victim) {
	if r.find(line) >= 0 {
		return false, Victim{}
	}
	if pf {
		r.pfInstalls++
	}
	return true, r.install(line, false, pf)
}

func (r *refCache) WriteBack(line uint64) Victim {
	if i := r.find(line); i >= 0 {
		r.dirty[i] = true // a writeback hit does not refresh recency
		return Victim{}
	}
	return r.install(line, true, false)
}

func (r *refCache) Invalidate(line uint64) bool {
	i := r.find(line)
	if i < 0 {
		return false
	}
	d := r.dirty[i]
	r.tags[i] = 0
	r.dirty[i] = false
	r.pf[i] = false
	return d
}

// lruOps drives the same pseudo-random operation stream against any
// cache-shaped implementation and returns a trace of every observable
// result. 12 distinct lines per set against 4-8 ways forces constant
// eviction churn.
type cacheOps interface {
	Access(line uint64, write bool) (bool, bool, Victim)
	Install(line uint64, pf bool) (bool, Victim)
	WriteBack(line uint64) Victim
	Invalidate(line uint64) bool
}

func lruTrace(c cacheOps, sets int, n int) []uint64 {
	var trace []uint64
	rec := func(vs ...uint64) { trace = append(trace, vs...) }
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < n; i++ {
		r := next()
		line := (r>>8)%uint64(12*sets) + 1 // line 0 is reserved
		switch r % 16 {
		case 0, 1, 2:
			_, v := c.Install(line, true)
			rec(v.Line, b2u(v.Dirty), b2u(v.Valid))
		case 3, 4:
			v := c.WriteBack(line)
			rec(v.Line, b2u(v.Dirty), b2u(v.Valid))
		case 5:
			rec(b2u(c.Invalidate(line)))
		default:
			hit, pf, v := c.Access(line, r%3 == 0)
			rec(b2u(hit), b2u(pf), v.Line, b2u(v.Dirty), b2u(v.Valid))
		}
	}
	return trace
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// TestCacheMatchesReferenceModelAcrossWrapBoundary: the permutation-based
// Cache must produce the exact hit/miss/victim trace of the 64-bit
// reference model whose clock crosses the old 2^32 tick boundary
// mid-sequence — replacement behaviour is independent of how many accesses
// the cache has already served.
func TestCacheMatchesReferenceModelAcrossWrapBoundary(t *testing.T) {
	for _, ways := range []int{4, 8, 16} {
		sets := 8
		c := New(Config{Name: "t", Size: uint64(sets * ways * 64), Ways: ways})
		ref := newRefCache(sets, ways, 1<<32-2000, false)

		got := lruTrace(c, sets, 20000)
		want := lruTrace(ref, sets, 20000)
		if len(got) != len(want) {
			t.Fatalf("ways=%d: trace lengths differ", ways)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("ways=%d: trace diverges at %d: got %d want %d", ways, i, got[i], want[i])
			}
		}
		if c.Hits != ref.hits || c.Misses != ref.misses || c.Writebacks != ref.wbs ||
			c.PrefetchInstalls != ref.pfInstalls || c.PrefetchUsefulHits != ref.pfUseful {
			t.Fatalf("ways=%d: counters diverge: got %d/%d/%d/%d/%d want %d/%d/%d/%d/%d",
				ways, c.Hits, c.Misses, c.Writebacks, c.PrefetchInstalls, c.PrefetchUsefulHits,
				ref.hits, ref.misses, ref.wbs, ref.pfInstalls, ref.pfUseful)
		}
	}
}

// TestLRUWrapRegressionHasTeeth proves the trace above actually covers the
// seed bug: the same reference model stamped through uint32 truncation —
// the seed's 32-bit tick — must diverge from the correct model on the same
// inputs. If this ever passes without divergence the equivalence test has
// stopped crossing the boundary and needs its clock moved.
func TestLRUWrapRegressionHasTeeth(t *testing.T) {
	sets, ways := 8, 8
	good := newRefCache(sets, ways, 1<<32-2000, false)
	bad := newRefCache(sets, ways, 1<<32-2000, true)
	g := lruTrace(good, sets, 20000)
	b := lruTrace(bad, sets, 20000)
	for i := range g {
		if g[i] != b[i] {
			return // wrapped model diverged, as the real bug did
		}
	}
	t.Fatal("uint32-wrapped model did not diverge; wrap regression no longer exercised")
}

// TestPromoteMaintainsPermutation pins the SWAR move-to-front against a
// plain slice model, for every way count the packed word supports.
func TestPromoteMaintainsPermutation(t *testing.T) {
	for ways := 1; ways <= 16; ways++ {
		order := uint64(identityOrder)
		ref := make([]int, 16)
		for i := range ref {
			ref[i] = i
		}
		rng := uint64(12345)
		for step := 0; step < 2000; step++ {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			w := int(rng % uint64(ways))
			order = promote(order, w)
			pos := 0
			for ref[pos] != w {
				pos++
			}
			copy(ref[1:pos+1], ref[:pos])
			ref[0] = w
			for i := 0; i < 16; i++ {
				if got := int(order >> (uint(i) * 4) & 0xF); got != ref[i] {
					t.Fatalf("ways=%d step=%d nibble %d: got %d want %d (order %#x)",
						ways, step, i, got, ref[i], order)
				}
			}
		}
	}
}

// refTLB is the fully-associative analogue: unbounded stamps, clock started
// past the old 32-bit boundary, first-free-slot fill, min-stamp eviction.
type refTLB struct {
	keys  []uint64
	stamp []uint64
	tick  uint64

	hits, misses uint64
}

func (t *refTLB) Access(key uint64) bool {
	t.tick++
	free := -1
	for i, k := range t.keys {
		if k == key {
			t.hits++
			t.stamp[i] = t.tick
			return true
		}
		if k == 0 && free < 0 {
			free = i
		}
	}
	t.misses++
	slot := free
	if slot < 0 {
		slot = 0
		for i := range t.stamp {
			if t.stamp[i] < t.stamp[slot] {
				slot = i
			}
		}
	}
	t.keys[slot] = key
	t.stamp[slot] = t.tick
	return false
}

// TestTLBMatchesReferenceModelAcrossWrapBoundary: the list-based TLB must
// report the exact hit/miss sequence of the stamp model for a churning key
// stream, independent of accumulated access count.
func TestTLBMatchesReferenceModelAcrossWrapBoundary(t *testing.T) {
	const entries = 16
	tlb := NewTLB(entries)
	ref := &refTLB{
		keys:  make([]uint64, entries),
		stamp: make([]uint64, entries),
		tick:  1<<32 - 2000,
	}
	rng := uint64(0xDEADBEEFCAFE)
	for i := 0; i < 50000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		// Skewed universe of 48 keys over 16 entries: plenty of hits on
		// hot keys, constant eviction pressure from the tail.
		key := Key(rng%48*4096, 12)
		if got, want := tlb.Access(key), ref.Access(key); got != want {
			t.Fatalf("access %d (key %#x): got hit=%v want %v", i, key, got, want)
		}
	}
	if tlb.Hits != ref.hits || tlb.Misses != ref.misses {
		t.Fatalf("counters diverge: got %d/%d want %d/%d", tlb.Hits, tlb.Misses, ref.hits, ref.misses)
	}
}

// refPrefetcher mirrors the seed's timestamped tracker eviction with an
// unbounded clock.
type refPrefetcher struct {
	depth    int
	nextLine []uint64
	lastUse  []uint64
	conf     []uint8
	valid    []bool
	clock    uint64
	issued   uint64
}

func (p *refPrefetcher) OnMiss(line uint64) []uint64 {
	p.clock++
	for i := range p.nextLine {
		if !p.valid[i] {
			continue
		}
		if line >= p.nextLine[i] && line < p.nextLine[i]+4 {
			p.lastUse[i] = p.clock
			p.nextLine[i] = line + 1
			if p.conf[i] < 4 {
				p.conf[i]++
			}
			if p.conf[i] >= 2 {
				var out []uint64
				for d := 1; d <= p.depth; d++ {
					out = append(out, line+uint64(d))
				}
				p.issued += uint64(len(out))
				return out
			}
			return nil
		}
	}
	victim := 0
	for i := range p.nextLine {
		if !p.valid[i] {
			victim = i
			break
		}
		if p.lastUse[i] < p.lastUse[victim] {
			victim = i
		}
	}
	p.nextLine[victim] = line + 1
	p.conf[victim] = 1
	p.lastUse[victim] = p.clock
	p.valid[victim] = true
	return nil
}

// TestPrefetcherMatchesReferenceModel: tracker matching and LRU eviction
// must reproduce the timestamp model — including which tracker a new
// stream evicts — for interleaved ascending streams plus noise.
func TestPrefetcherMatchesReferenceModel(t *testing.T) {
	const trackers, depth = 8, 4
	p := NewPrefetcher(trackers, depth)
	ref := &refPrefetcher{
		depth:    depth,
		nextLine: make([]uint64, trackers),
		lastUse:  make([]uint64, trackers),
		conf:     make([]uint8, trackers),
		valid:    make([]bool, trackers),
		clock:    1<<32 - 3000,
	}
	streams := make([]uint64, 12)
	for i := range streams {
		streams[i] = uint64(1+i) << 20
	}
	rng := uint64(777)
	for i := 0; i < 30000; i++ {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		var line uint64
		if rng%8 == 0 {
			line = rng >> 16 // random noise miss
		} else {
			s := rng % uint64(len(streams))
			streams[s]++ // advance one of the interleaved streams
			line = streams[s]
		}
		got := p.OnMiss(line)
		want := ref.OnMiss(line)
		if len(got) != len(want) {
			t.Fatalf("miss %d (line %#x): got %d prefetches, want %d", i, line, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("miss %d: prefetch %d: got %#x want %#x", i, j, got[j], want[j])
			}
		}
	}
	if p.Issued != ref.issued {
		t.Fatalf("Issued diverges: got %d want %d", p.Issued, ref.issued)
	}
}
