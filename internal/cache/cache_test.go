package cache

import (
	"testing"
	"testing/quick"
)

func testCache(size uint64, ways int) *Cache {
	return New(Config{Name: "test", Size: size, Ways: ways})
}

func TestAccessHitAfterMiss(t *testing.T) {
	c := testCache(4096, 4) // 16 sets
	hit, _, _ := c.Access(100, false)
	if hit {
		t.Fatal("first access hit an empty cache")
	}
	hit, _, _ = c.Access(100, false)
	if !hit {
		t.Fatal("second access to same line missed")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("counters hits=%d misses=%d, want 1/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := testCache(4096, 4) // 16 sets: lines mapping to set 0 are multiples of 16
	lines := []uint64{16, 32, 48, 64} // fill all 4 ways of set 0
	for _, l := range lines {
		c.Access(l, false)
	}
	c.Access(16, false) // touch line 16: now 32 is LRU
	_, _, victim := c.Access(80, false)
	if !victim.Valid || victim.Line != 32 {
		t.Fatalf("evicted %+v, want line 32", victim)
	}
	if !c.Contains(16) || c.Contains(32) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := testCache(4096, 2) // 32 sets
	c.Access(32, true)      // dirty line in set 0
	c.Access(64, false)
	_, _, victim := c.Access(96, false) // evicts LRU = 32 (dirty)
	if !victim.Valid || victim.Line != 32 || !victim.Dirty {
		t.Fatalf("victim = %+v, want dirty line 32", victim)
	}
	if c.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", c.Writebacks)
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := testCache(4096, 2)
	c.Access(32, false) // clean install
	c.Access(32, true)  // write hit dirties it
	c.Access(64, false)
	_, _, victim := c.Access(96, false)
	if !victim.Dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestInstallPrefetchTracking(t *testing.T) {
	c := testCache(4096, 4)
	c.Install(100, true)
	if c.PrefetchInstalls != 1 {
		t.Fatalf("PrefetchInstalls = %d, want 1", c.PrefetchInstalls)
	}
	hit, wasPrefetched, _ := c.Access(100, false)
	if !hit || !wasPrefetched {
		t.Fatalf("access to prefetched line: hit=%v prefetched=%v", hit, wasPrefetched)
	}
	// The prefetched bit is consumed by first use.
	hit, wasPrefetched, _ = c.Access(100, false)
	if !hit || wasPrefetched {
		t.Fatalf("second access: hit=%v prefetched=%v, want hit, not prefetched", hit, wasPrefetched)
	}
	if c.PrefetchUsefulHits != 1 {
		t.Fatalf("PrefetchUsefulHits = %d, want 1", c.PrefetchUsefulHits)
	}
}

func TestInstallExistingLineIsNoop(t *testing.T) {
	c := testCache(4096, 2)
	c.Access(32, true)
	installed, v := c.Install(32, true)
	if installed || v.Valid {
		t.Fatalf("install of resident line: installed=%v, victim %+v", installed, v)
	}
	// Line must still be dirty (install must not clear flags).
	c.Access(64, false)
	_, _, victim := c.Access(96, false)
	if !victim.Dirty {
		t.Fatal("re-install cleared the dirty bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := testCache(4096, 2)
	c.Access(32, true)
	if dirty := c.Invalidate(32); !dirty {
		t.Fatal("Invalidate of dirty line returned clean")
	}
	if c.Contains(32) {
		t.Fatal("line still resident after Invalidate")
	}
	if dirty := c.Invalidate(32); dirty {
		t.Fatal("Invalidate of absent line returned dirty")
	}
}

func TestCapacityWorkingSetProperty(t *testing.T) {
	// A working set that fits in the cache must have a near-perfect hit
	// rate after warmup; one that is 4x the capacity must thrash.
	c := testCache(32*1024, 8) // 512 lines
	fits := func(lines uint64) float64 {
		c.Reset()
		for pass := 0; pass < 8; pass++ {
			for l := uint64(1); l <= lines; l++ {
				c.Access(l, false)
			}
		}
		return float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	small := fits(256)  // half capacity
	large := fits(2048) // 4x capacity
	if small < 0.85 {
		t.Errorf("fitting working set hit rate %.3f, want > 0.85", small)
	}
	if large > 0.10 {
		t.Errorf("thrashing working set hit rate %.3f, want < 0.10 (LRU on a cyclic scan)", large)
	}
}

func TestCacheDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		c := testCache(16*1024, 4)
		state := uint64(12345)
		for i := 0; i < 20000; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			c.Access(state%4096+1, state&1 == 0)
		}
		return c.Hits, c.Misses
	}
	h1, m1 := run()
	h2, m2 := run()
	if h1 != h2 || m1 != m2 {
		t.Fatalf("nondeterministic: run1 %d/%d, run2 %d/%d", h1, m1, h2, m2)
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tlb := NewTLB(4)
	keys := []uint64{Key(0x1000, 12), Key(0x2000, 12), Key(0x3000, 12), Key(0x4000, 12)}
	for _, k := range keys {
		if tlb.Access(k) {
			t.Fatal("cold TLB access hit")
		}
	}
	for _, k := range keys {
		if !tlb.Access(k) {
			t.Fatal("warm TLB access missed")
		}
	}
	// Insert a fifth key: evicts LRU (keys[0], refreshed order above means
	// keys[0] is the oldest touched).
	tlb.Access(Key(0x9000, 12))
	if tlb.Access(keys[0]) {
		t.Fatal("evicted entry still hit")
	}
}

func TestTLBLargePagesCoverMoreAddresses(t *testing.T) {
	misses := func(shift uint8) uint64 {
		tlb := NewTLB(16)
		// Touch 4 MiB of addresses at 4 KiB strides, twice.
		for pass := 0; pass < 2; pass++ {
			for a := uint64(0x10000000); a < 0x10000000+4<<20; a += 4096 {
				tlb.Access(Key(a, shift))
			}
		}
		return tlb.Misses
	}
	small := misses(12) // 1024 distinct 4 KiB pages >> 16 entries: thrash
	large := misses(22) // 1 distinct 4 MiB page: 1 miss
	if large >= small/100 {
		t.Fatalf("large-page misses %d vs small-page %d: want >100x reduction", large, small)
	}
}

func TestKeyDistinguishesPageSizes(t *testing.T) {
	f := func(addr uint64) bool {
		return Key(addr, 12) != Key(addr, 22) || addr>>12 == 0 && addr>>22 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefetcherLocksOntoAscendingStream(t *testing.T) {
	p := NewPrefetcher(8, 4)
	var issued []uint64
	for l := uint64(100); l < 110; l++ {
		issued = append(issued, p.OnMiss(l)...)
	}
	if len(issued) == 0 {
		t.Fatal("ascending miss stream triggered no prefetches")
	}
	// Prefetches must be ahead of the miss stream.
	for _, l := range issued {
		if l <= 100 {
			t.Fatalf("prefetched line %d is behind the stream", l)
		}
	}
}

func TestPrefetcherIgnoresRandomMisses(t *testing.T) {
	p := NewPrefetcher(8, 4)
	state := uint64(99)
	total := 0
	for i := 0; i < 1000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		total += len(p.OnMiss(state % (1 << 30)))
	}
	if total > 20 {
		t.Fatalf("random misses triggered %d prefetches, want ~0", total)
	}
}

func TestPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewPrefetcher(8, 2)
	got := 0
	for i := uint64(0); i < 20; i++ {
		got += len(p.OnMiss(1000 + i))
		got += len(p.OnMiss(500000 + i))
	}
	if got < 30 {
		t.Fatalf("two interleaved streams produced only %d prefetches", got)
	}
}

func TestNilPrefetcherIsSafe(t *testing.T) {
	var p *Prefetcher
	if lines := p.OnMiss(42); lines != nil {
		t.Fatalf("nil prefetcher returned %v", lines)
	}
	p.Reset() // must not panic
}
