package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// The batched AccessRun promises bit-identical behaviour to the per-line
// Access loop: same hit/miss outcomes, same victims (including dirtiness),
// same counters, same replacement state afterwards. These differential
// tests drive a batched cache and a per-line reference cache through the
// same random traces and require exact agreement, across both the general
// run loop and the clean fast path (accessRunClean), and across geometries
// with full and partial signature words (8, 16 and 12/4 ways).

// accessSeq is the per-line reference for AccessRun: Access on every line,
// collecting misses in RunMiss form.
func accessSeq(c *Cache, first, n uint64, write bool, buf []RunMiss) []RunMiss {
	for line, end := first, first+n; line < end; line++ {
		hit, _, victim := c.Access(line, write)
		if !hit {
			buf = append(buf, RunMiss{Line: line, Victim: victim})
		}
	}
	return buf
}

// diffState reports the first state divergence between two caches, or "".
func diffState(a, b *Cache) string {
	switch {
	case a.Hits != b.Hits || a.Misses != b.Misses:
		return fmt.Sprintf("counters: %d/%d hits, %d/%d misses", a.Hits, b.Hits, a.Misses, b.Misses)
	case a.Writebacks != b.Writebacks:
		return fmt.Sprintf("writebacks: %d vs %d", a.Writebacks, b.Writebacks)
	case a.PrefetchInstalls != b.PrefetchInstalls || a.PrefetchUsefulHits != b.PrefetchUsefulHits:
		return fmt.Sprintf("prefetch counters: %d/%d installs, %d/%d useful",
			a.PrefetchInstalls, b.PrefetchInstalls, a.PrefetchUsefulHits, b.PrefetchUsefulHits)
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] {
			return fmt.Sprintf("tags[%d]: %#x vs %#x", i, a.tags[i], b.tags[i])
		}
		if a.flags[i] != b.flags[i] {
			return fmt.Sprintf("flags[%d]: %#x vs %#x", i, a.flags[i], b.flags[i])
		}
	}
	for sn := range a.order {
		if a.order[sn] != b.order[sn] {
			return fmt.Sprintf("order[%d]: %#x vs %#x", sn, a.order[sn], b.order[sn])
		}
		if a.fill[sn] != b.fill[sn] {
			return fmt.Sprintf("fill[%d]: %d vs %d", sn, a.fill[sn], b.fill[sn])
		}
		if a.mru[sn] != b.mru[sn] {
			return fmt.Sprintf("mru[%d]: %d vs %d", sn, a.mru[sn], b.mru[sn])
		}
	}
	for i := range a.sigw {
		if a.sigw[i] != b.sigw[i] {
			return fmt.Sprintf("sigw[%d]: %#x vs %#x", i, a.sigw[i], b.sigw[i])
		}
	}
	return ""
}

func sameMisses(got, want []RunMiss) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d misses vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("miss %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	return ""
}

func TestAccessRunDifferential(t *testing.T) {
	geoms := []Config{
		{Name: "tiny4w", Size: 4096, Ways: 4},      // 16 sets, heavy conflicts
		{Name: "l1d8w", Size: 32 << 10, Ways: 8},   // Xeon L1, one full sig word
		{Name: "l2n12w", Size: 24 << 10, Ways: 12}, // Niagara ways: partial second sig word
		{Name: "l2x16w", Size: 64 << 10, Ways: 16}, // two full sig words
	}
	// ops mixes name what each trace may do beyond read runs; "clean" keeps
	// the cache on the accessRunClean fast path for its whole life.
	modes := []string{"clean", "writes", "prefetch", "everything"}
	for _, cfg := range geoms {
		for _, mode := range modes {
			t.Run(cfg.Name+"/"+mode, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(cfg.Size) + int64(len(mode))))
				run, ref := New(cfg), New(cfg)
				sets := uint64(cfg.Sets())
				span := sets * uint64(cfg.Ways) * 3 // enough aliasing to evict
				var gotBuf []RunMiss
				for op := 0; op < 4000; op++ {
					switch k := rng.Intn(10); {
					case k < 7: // a run; length may wrap the set index
						first := 1 + rng.Uint64()%span
						n := 1 + rng.Uint64()%(sets+5)
						write := mode != "clean" && mode != "prefetch" && rng.Intn(3) == 0
						gotBuf = run.AccessRun(first, n, write, gotBuf[:0])
						want := accessSeq(ref, first, n, write, nil)
						if d := sameMisses(gotBuf, want); d != "" {
							t.Fatalf("op %d AccessRun(%d,%d,%v) diverged: %s", op, first, n, write, d)
						}
					case k < 8: // single accesses interleave with runs
						line := 1 + rng.Uint64()%span
						write := mode == "writes" || mode == "everything"
						h1, p1, v1 := run.Access(line, write)
						h2, p2, v2 := ref.Access(line, write)
						if h1 != h2 || p1 != p2 || v1 != v2 {
							t.Fatalf("op %d Access(%d) diverged", op, line)
						}
					case k < 9:
						if mode == "prefetch" || mode == "everything" {
							line := 1 + rng.Uint64()%span
							i1, v1 := run.Install(line, true)
							i2, v2 := ref.Install(line, true)
							if i1 != i2 || v1 != v2 {
								t.Fatalf("op %d Install(%d) diverged", op, line)
							}
						}
					default:
						if mode == "everything" {
							line := 1 + rng.Uint64()%span
							if run.WriteBack(line) != ref.WriteBack(line) {
								t.Fatalf("op %d WriteBack(%d) diverged", op, line)
							}
						}
					}
					if d := diffState(run, ref); d != "" {
						t.Fatalf("op %d (%s): state diverged: %s", op, mode, d)
					}
				}
			})
		}
	}
}

// FuzzAccessRun decodes arbitrary bytes into a trace and requires the
// batched and per-line forms to agree exactly, on a tiny cache where every
// operation lands in one of four sets.
func FuzzAccessRun(f *testing.F) {
	f.Add([]byte{0, 1, 4, 1, 9, 3, 2, 17, 0, 3, 9, 0, 0, 200, 9})
	f.Add([]byte{1, 255, 16, 0, 3, 3, 3, 3, 3, 2, 7, 1, 1, 7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{Name: "fuzz", Size: 1024, Ways: 4} // 4 sets
		run, ref := New(cfg), New(cfg)
		var gotBuf []RunMiss
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i]&3, uint64(data[i+1]), uint64(data[i+2])
			line := 1 + a%64
			switch op {
			case 0, 1: // read run, write run
				n := 1 + b%9 // up to 2x the set count: wraps twice
				write := op == 1
				gotBuf = run.AccessRun(line, n, write, gotBuf[:0])
				want := accessSeq(ref, line, n, write, nil)
				if d := sameMisses(gotBuf, want); d != "" {
					t.Fatalf("AccessRun(%d,%d,%v): %s", line, n, write, d)
				}
			case 2:
				i1, v1 := run.Install(line, b&1 == 1)
				i2, v2 := ref.Install(line, b&1 == 1)
				if i1 != i2 || v1 != v2 {
					t.Fatalf("Install(%d) diverged", line)
				}
			case 3:
				if run.WriteBack(line) != ref.WriteBack(line) {
					t.Fatalf("WriteBack(%d) diverged", line)
				}
			}
			if d := diffState(run, ref); d != "" {
				t.Fatalf("state diverged after op %d: %s", i/3, d)
			}
		}
	})
}
