package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// The batched AccessRun promises bit-identical behaviour to the per-line
// Access loop: same hit/miss outcomes, same victims (including dirtiness),
// same counters, same replacement state afterwards. These differential
// tests drive a batched cache and a per-line reference cache through the
// same random traces and require exact agreement, across both the general
// run loop and the clean fast path (accessRunClean), and across geometries
// with full and partial signature words (8, 16 and 12/4 ways).
//
// The two sides also deliberately differ in memo configuration: the batched
// cache runs with its line→way memo enabled, the reference without. The
// memo promises to change only how a resident way is found, never the
// outcome, so every observable — results, counters, tags, flags,
// replacement state — must still match exactly, including across installs,
// writebacks and invalidations that silently strand stale memo entries.

// accessSeq is the per-line reference for AccessRun: Access on every line,
// collecting misses in RunMiss form.
func accessSeq(c *Cache, first, n uint64, write bool, buf []RunMiss) []RunMiss {
	for line, end := first, first+n; line < end; line++ {
		hit, _, victim := c.Access(line, write)
		if !hit {
			buf = append(buf, RunMiss{Line: line, Victim: victim})
		}
	}
	return buf
}

// diffState reports the first state divergence between two caches, or "".
func diffState(a, b *Cache) string {
	switch {
	case a.Hits != b.Hits || a.Misses != b.Misses:
		return fmt.Sprintf("counters: %d/%d hits, %d/%d misses", a.Hits, b.Hits, a.Misses, b.Misses)
	case a.Writebacks != b.Writebacks:
		return fmt.Sprintf("writebacks: %d vs %d", a.Writebacks, b.Writebacks)
	case a.PrefetchInstalls != b.PrefetchInstalls || a.PrefetchUsefulHits != b.PrefetchUsefulHits:
		return fmt.Sprintf("prefetch counters: %d/%d installs, %d/%d useful",
			a.PrefetchInstalls, b.PrefetchInstalls, a.PrefetchUsefulHits, b.PrefetchUsefulHits)
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] {
			return fmt.Sprintf("tags[%d]: %#x vs %#x", i, a.tags[i], b.tags[i])
		}
	}
	for sn := range a.meta {
		am, bm := &a.meta[sn], &b.meta[sn]
		if am.order != bm.order {
			return fmt.Sprintf("order[%d]: %#x vs %#x", sn, am.order, bm.order)
		}
		if am.fill != bm.fill {
			return fmt.Sprintf("fill[%d]: %d vs %d", sn, am.fill, bm.fill)
		}
		if am.mru != bm.mru {
			return fmt.Sprintf("mru[%d]: %d vs %d", sn, am.mru, bm.mru)
		}
		if am.sig0 != bm.sig0 || am.sig1 != bm.sig1 {
			return fmt.Sprintf("sig[%d]: %#x,%#x vs %#x,%#x", sn, am.sig0, am.sig1, bm.sig0, bm.sig1)
		}
	}
	return ""
}

// checkMemo verifies the memo's one invariant: an entry may be arbitrarily
// stale, but whenever it *validates* (the recorded way's tag holds the
// recorded line) it must name exactly the way the signature scan would
// find. Self-validation makes a violation impossible short of an
// out-of-range way, which is exactly what this guards.
func checkMemo(c *Cache) string {
	for i, e := range c.memo {
		if e == 0 {
			continue
		}
		line := e & memoLineMask
		w := int(e >> memoWayShift)
		if w >= c.ways {
			return fmt.Sprintf("memo[%d]: way %d out of range", i, w)
		}
		sn := int(line & c.setMask)
		base := sn * c.ways
		tags := c.tags[base : base+c.ways]
		if tags[w]&tagLineMask == line {
			if fw := c.findWay(&c.meta[sn], line, tags); fw != w {
				return fmt.Sprintf("memo[%d]: validates way %d for line %#x but findWay says %d", i, w, line, fw)
			}
		}
	}
	return ""
}

func sameMisses(got, want []RunMiss) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d misses vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Sprintf("miss %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	return ""
}

func TestAccessRunDifferential(t *testing.T) {
	geoms := []Config{
		{Name: "tiny4w", Size: 4096, Ways: 4, WayMemo: 16},      // 16 sets, heavy conflicts
		{Name: "l1d8w", Size: 32 << 10, Ways: 8, WayMemo: 128},  // Xeon L1, one full sig word
		{Name: "l2n12w", Size: 24 << 10, Ways: 12, WayMemo: 64}, // Niagara ways: partial second sig word
		{Name: "l2x16w", Size: 64 << 10, Ways: 16, WayMemo: 32}, // two full sig words, tiny memo (heavy slot reuse)
	}
	// ops mixes name what each trace may do beyond read runs; "clean" keeps
	// the cache on the accessRunClean fast path for its whole life.
	modes := []string{"clean", "writes", "prefetch", "everything"}
	for _, cfg := range geoms {
		for _, mode := range modes {
			t.Run(cfg.Name+"/"+mode, func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(cfg.Size) + int64(len(mode))))
				refCfg := cfg
				refCfg.WayMemo = 0 // the reference runs memo-free
				run, ref := New(cfg), New(refCfg)
				sets := uint64(cfg.Sets())
				span := sets * uint64(cfg.Ways) * 3 // enough aliasing to evict
				var gotBuf []RunMiss
				for op := 0; op < 4000; op++ {
					switch k := rng.Intn(10); {
					case k < 7: // a run; length may wrap the set index
						first := 1 + rng.Uint64()%span
						n := 1 + rng.Uint64()%(sets+5)
						write := mode != "clean" && mode != "prefetch" && rng.Intn(3) == 0
						gotBuf = run.AccessRun(first, n, write, gotBuf[:0])
						want := accessSeq(ref, first, n, write, nil)
						if d := sameMisses(gotBuf, want); d != "" {
							t.Fatalf("op %d AccessRun(%d,%d,%v) diverged: %s", op, first, n, write, d)
						}
					case k < 8: // single accesses interleave with runs
						line := 1 + rng.Uint64()%span
						write := mode == "writes" || mode == "everything"
						h1, p1, v1 := run.Access(line, write)
						h2, p2, v2 := ref.Access(line, write)
						if h1 != h2 || p1 != p2 || v1 != v2 {
							t.Fatalf("op %d Access(%d) diverged", op, line)
						}
						if h1 && rng.Intn(2) == 0 {
							// The line is now the MRU way on both sides, which
							// is exactly HitAgain's precondition.
							again := mode == "writes" || mode == "everything"
							run.HitAgain(line, again)
							ref.HitAgain(line, again)
						}
					case k < 9:
						if mode == "prefetch" || mode == "everything" {
							line := 1 + rng.Uint64()%span
							i1, v1 := run.Install(line, true)
							i2, v2 := ref.Install(line, true)
							if i1 != i2 || v1 != v2 {
								t.Fatalf("op %d Install(%d) diverged", op, line)
							}
						}
					default:
						if mode == "everything" {
							line := 1 + rng.Uint64()%span
							if rng.Intn(4) == 0 {
								// Invalidate strands the line's memo entry;
								// nothing may ever validate it again.
								if run.Invalidate(line) != ref.Invalidate(line) {
									t.Fatalf("op %d Invalidate(%d) diverged", op, line)
								}
							} else if run.WriteBack(line) != ref.WriteBack(line) {
								t.Fatalf("op %d WriteBack(%d) diverged", op, line)
							}
						}
					}
					if d := diffState(run, ref); d != "" {
						t.Fatalf("op %d (%s): state diverged: %s", op, mode, d)
					}
					if d := checkMemo(run); d != "" {
						t.Fatalf("op %d (%s): %s", op, mode, d)
					}
				}
			})
		}
	}
}

// FuzzAccessRun decodes arbitrary bytes into a trace and requires the
// batched and per-line forms to agree exactly, on a tiny cache where every
// operation lands in one of four sets.
func FuzzAccessRun(f *testing.F) {
	f.Add([]byte{0, 1, 4, 1, 9, 3, 2, 17, 0, 3, 9, 0, 0, 200, 9})
	f.Add([]byte{1, 255, 16, 0, 3, 3, 3, 3, 3, 2, 7, 1, 1, 7, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		// The memo'd side uses an 8-slot memo over a 64-line space: slot
		// collisions and stale entries on every few ops.
		cfg := Config{Name: "fuzz", Size: 1024, Ways: 4, WayMemo: 8} // 4 sets
		run, ref := New(cfg), New(Config{Name: "fuzz", Size: 1024, Ways: 4})
		var gotBuf []RunMiss
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i]&3, uint64(data[i+1]), uint64(data[i+2])
			line := 1 + a%64
			switch op {
			case 0, 1: // read run, write run
				n := 1 + b%9 // up to 2x the set count: wraps twice
				write := op == 1
				gotBuf = run.AccessRun(line, n, write, gotBuf[:0])
				want := accessSeq(ref, line, n, write, nil)
				if d := sameMisses(gotBuf, want); d != "" {
					t.Fatalf("AccessRun(%d,%d,%v): %s", line, n, write, d)
				}
			case 2:
				i1, v1 := run.Install(line, b&1 == 1)
				i2, v2 := ref.Install(line, b&1 == 1)
				if i1 != i2 || v1 != v2 {
					t.Fatalf("Install(%d) diverged", line)
				}
			case 3:
				if b&1 == 1 {
					if run.Invalidate(line) != ref.Invalidate(line) {
						t.Fatalf("Invalidate(%d) diverged", line)
					}
				} else if run.WriteBack(line) != ref.WriteBack(line) {
					t.Fatalf("WriteBack(%d) diverged", line)
				}
			}
			if d := diffState(run, ref); d != "" {
				t.Fatalf("state diverged after op %d: %s", i/3, d)
			}
			if d := checkMemo(run); d != "" {
				t.Fatalf("after op %d: %s", i/3, d)
			}
		}
	})
}
