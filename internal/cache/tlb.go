package cache

// TLB models a fully-associative data TLB with LRU replacement.
//
// The paper reports D-TLB misses per web transaction (Figure 8) and a >60 %
// D-TLB miss reduction from DDmalloc's large-page optimization. Entries are
// keyed by (page number, page shift) so 4 KiB and large pages coexist; a
// large page covers 512-1024x the address range of a small one, which is the
// entire mechanism behind the optimization.
//
// Recency is an intrusive move-to-front list threaded through prev/next
// index arrays around a sentinel, not a timestamp per entry: the LRU victim
// is the list tail, read in O(1), and there is no access counter to wrap
// (a 32-bit tick wraps inside a paper-scale cell and would silently invert
// LRU order). Entry stamps are strictly monotonic and distinct, so the list
// order carries exactly the information the stamps did — hit/miss outcomes
// and victim choices are bit-identical to a stamp scan.
//
// Lookups walk the list from the MRU end: a key match is unique, so search
// order cannot change outcomes, and recency order finds the hot pages of a
// temporally-local access stream in a handful of steps instead of scanning
// half the entries.
type TLB struct {
	entries int
	keys    []uint64 // entries+1; index entries is the sentinel (key 0)
	prev    []uint16
	next    []uint16
	fill    int // entries holding a key; == entries once warm

	Hits, Misses uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	t := &TLB{
		entries: entries,
		keys:    make([]uint64, entries+1),
		prev:    make([]uint16, entries+1),
		next:    make([]uint16, entries+1),
	}
	s := uint16(entries)
	t.prev[s], t.next[s] = s, s
	return t
}

// Key builds the lookup key for an address with the given page shift.
func Key(addr uint64, pageShift uint8) uint64 {
	// Shift occupies the low 6 bits; page numbers fit comfortably above.
	return (addr>>pageShift)<<6 | uint64(pageShift)
}

// moveToFront unlinks entry i and reinserts it behind the sentinel.
func (t *TLB) moveToFront(i uint16) {
	p, n := t.prev[i], t.next[i]
	t.next[p], t.prev[n] = n, p
	s := uint16(t.entries)
	h := t.next[s]
	t.next[s], t.prev[i] = i, s
	t.next[i], t.prev[h] = h, i
}

// Access looks up key, filling the TLB on a miss, and reports a hit.
func (t *TLB) Access(key uint64) bool {
	s := uint16(t.entries)
	keys := t.keys
	next := t.next
	h := next[s]
	if keys[h] == key { // MRU entry; sentinel's key 0 never matches
		t.Hits++
		return true
	}
	for i := next[h]; i != s; i = next[i] {
		if keys[i] == key {
			t.Hits++
			t.moveToFront(i)
			return true
		}
	}
	t.Misses++
	var slot uint16
	if t.fill == t.entries {
		slot = t.prev[s] // LRU tail
		t.moveToFront(slot)
	} else {
		// Entries are never invalidated, so free slots are exactly the
		// indices not yet filled; taking them in index order matches the
		// first-free-slot choice of the original scan.
		slot = uint16(t.fill)
		t.fill++
		h := next[s]
		t.next[s], t.prev[slot] = slot, s
		t.next[slot], t.prev[h] = h, slot
	}
	keys[slot] = key
	return false
}

// Reset empties the TLB and clears its counters.
func (t *TLB) Reset() {
	for i := range t.keys {
		t.keys[i] = 0
	}
	s := uint16(t.entries)
	t.prev[s], t.next[s] = s, s
	t.fill = 0
	t.Hits, t.Misses = 0, 0
}
