package cache

// TLB models a fully-associative data TLB with LRU replacement.
//
// The paper reports D-TLB misses per web transaction (Figure 8) and a >60 %
// D-TLB miss reduction from DDmalloc's large-page optimization. Entries are
// keyed by (page number, page shift) so 4 KiB and large pages coexist; a
// large page covers 512-1024x the address range of a small one, which is the
// entire mechanism behind the optimization.
//
// Recency is a 64-bit last-use stamp per entry (a 64-bit tick cannot wrap
// within any reachable simulation). Stamps make the hit path — the
// overwhelmingly common one on a temporally-local access stream — a single
// store, where an intrusive move-to-front list paid four pointer updates per
// hit; the miss path pays an argmin scan over the stamps instead, and misses
// are what the TLB exists to make rare. Stamps are strictly monotonic and
// distinct, so the argmin victim is exactly the entry a move-to-front list
// would have held at its tail: hit/miss outcomes and victim choices are
// bit-identical.
//
// Lookups go through a small open-addressing index (hash of key → slot), so
// a hit costs one or two probes regardless of TLB size. Key matches are
// unique, so lookup strategy cannot change hit/miss outcomes.
type TLB struct {
	entries int
	keys    []uint64
	stamps  []uint64
	tick    uint64
	mru     int
	fill    int // entries holding a key; == entries once warm

	// slots maps hash(key) → slot+1 by linear probing (0 = empty). It is
	// sized at 4x entries so probe chains stay short even when full.
	slots    []int32
	slotMask uint64

	// memo is the TLB's direct-mapped key→slot memo, the same structure
	// as the caches' line memo: slot (key>>6)&memoMask (the key's
	// page-number bits index directly, so neighbouring pages never
	// collide) remembers where a recently-hit key lived. An entry is
	// validated against the key array itself — keys[slot] either still
	// holds key or the entry is stale — so eviction needs no memo
	// bookkeeping, and a validated hit skips the hash multiply and the
	// probe chain and goes straight to the stamp refresh.
	memo     []tlbMemoEnt
	memoMask uint64

	Hits, Misses uint64
}

// tlbMemoEnt is one TLB memo slot: the key and the slot index it was last
// found in.
type tlbMemoEnt struct {
	key  uint64
	slot int32
	_    int32
}

// tlbMemoOn compiles the TLB's key→slot memo in or out. The memo is a pure
// lookup accelerator (outcome-invariant, see Access), so this is strictly a
// host-performance knob: on the benchmarked host the memo's extra
// randomly-indexed table costs more than the one or two probe steps it
// skips, so it ships disabled; the structure and its differential tests
// stay, and the constant documents exactly where to re-enable it on hosts
// with more cache headroom.
const tlbMemoOn = false

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	tabSize := 4
	for tabSize < 4*entries {
		tabSize *= 2
	}
	t := &TLB{
		entries:  entries,
		keys:     make([]uint64, entries),
		stamps:   make([]uint64, entries),
		slots:    make([]int32, tabSize),
		slotMask: uint64(tabSize - 1),
	}
	if tlbMemoOn {
		t.memo = make([]tlbMemoEnt, tabSize)
		t.memoMask = uint64(tabSize - 1)
	}
	return t
}

// Key builds the lookup key for an address with the given page shift.
func Key(addr uint64, pageShift uint8) uint64 {
	// Shift occupies the low 6 bits; page numbers fit comfortably above.
	return (addr>>pageShift)<<6 | uint64(pageShift)
}

func (t *TLB) slotIdx(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15 >> 32) & t.slotMask
}

// indexDel removes key from the slot index, compacting the probe chain
// behind it (backward-shift deletion).
func (t *TLB) indexDel(key uint64) {
	i := t.slotIdx(key)
	for {
		s := t.slots[i]
		if s == 0 {
			return
		}
		if t.keys[s-1] == key {
			break
		}
		i = (i + 1) & t.slotMask
	}
	t.slots[i] = 0
	for j := (i + 1) & t.slotMask; t.slots[j] != 0; j = (j + 1) & t.slotMask {
		h := t.slotIdx(t.keys[t.slots[j]-1])
		if (j-h)&t.slotMask >= (j-i)&t.slotMask {
			t.slots[i] = t.slots[j]
			t.slots[j] = 0
			i = j
		}
	}
}

// indexPut records key → slot in the slot index.
func (t *TLB) indexPut(key uint64, slot int) {
	i := t.slotIdx(key)
	for t.slots[i] != 0 {
		i = (i + 1) & t.slotMask
	}
	t.slots[i] = int32(slot + 1)
}

// Access looks up key, filling the TLB on a miss, and reports a hit.
func (t *TLB) Access(key uint64) bool {
	keys := t.keys
	if m := t.mru; keys[m] == key { // no key is ever 0, so slot 0 is safe
		// The MRU entry already carries the newest stamp; repeat hits
		// need no recency update at all.
		t.Hits++
		return true
	}
	// Memo probe: an entry still naming key's slot pins it without the
	// hash multiply or the probe chain. The stamp refresh is identical to
	// the indexed path's, so lookup strategy cannot change outcomes.
	if tlbMemoOn {
		if e := &t.memo[(key>>6)&t.memoMask]; e.key == key {
			if si := int(e.slot); keys[si] == key {
				t.Hits++
				t.tick++
				t.stamps[si] = t.tick
				t.mru = si
				return true
			}
		}
	}
	for i := t.slotIdx(key); ; i = (i + 1) & t.slotMask {
		s := t.slots[i]
		if s == 0 {
			break
		}
		if si := int(s - 1); keys[si] == key {
			t.Hits++
			t.tick++
			t.stamps[si] = t.tick
			t.mru = si
			if tlbMemoOn {
				t.memo[(key>>6)&t.memoMask] = tlbMemoEnt{key: key, slot: int32(si)}
			}
			return true
		}
	}
	t.Misses++
	slot := 0
	if t.fill == t.entries {
		// Evict the least-recently-used entry: the minimum stamp.
		// Stamps are distinct, so the argmin is unique.
		stamps := t.stamps
		min := stamps[0]
		for i := 1; i < len(stamps); i++ {
			if stamps[i] < min {
				min, slot = stamps[i], i
			}
		}
		t.indexDel(keys[slot])
	} else {
		// Entries are never invalidated, so free slots are exactly the
		// indices not yet filled; taking them in index order matches the
		// first-free-slot choice of the original scan.
		slot = t.fill
		t.fill++
	}
	keys[slot] = key
	t.indexPut(key, slot)
	t.tick++
	t.stamps[slot] = t.tick
	t.mru = slot
	if tlbMemoOn {
		t.memo[(key>>6)&t.memoMask] = tlbMemoEnt{key: key, slot: int32(slot)}
	}
	return false
}

// Reset empties the TLB and clears its counters.
func (t *TLB) Reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.stamps[i] = 0
	}
	for i := range t.slots {
		t.slots[i] = 0
	}
	for i := range t.memo {
		t.memo[i] = tlbMemoEnt{}
	}
	t.tick = 0
	t.mru = 0
	t.fill = 0
	t.Hits, t.Misses = 0, 0
}
