package cache

// TLB models a fully-associative data TLB with LRU replacement.
//
// The paper reports D-TLB misses per web transaction (Figure 8) and a >60 %
// D-TLB miss reduction from DDmalloc's large-page optimization. Entries are
// keyed by (page number, page shift) so 4 KiB and large pages coexist; a
// large page covers 512-1024x the address range of a small one, which is the
// entire mechanism behind the optimization.
type TLB struct {
	entries int
	keys    []uint64
	stamp   []uint32
	tick    uint32

	Hits, Misses uint64
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	return &TLB{
		entries: entries,
		keys:    make([]uint64, entries),
		stamp:   make([]uint32, entries),
	}
}

// Key builds the lookup key for an address with the given page shift.
func Key(addr uint64, pageShift uint8) uint64 {
	// Shift occupies the low 6 bits; page numbers fit comfortably above.
	return (addr>>pageShift)<<6 | uint64(pageShift)
}

// Access looks up key, filling the TLB on a miss, and reports a hit.
func (t *TLB) Access(key uint64) bool {
	t.tick++
	free, lru := -1, -1
	for i := 0; i < t.entries; i++ {
		switch {
		case t.keys[i] == key:
			t.Hits++
			t.stamp[i] = t.tick
			return true
		case t.keys[i] == 0:
			if free < 0 {
				free = i
			}
		case lru < 0 || t.stamp[i] < t.stamp[lru]:
			lru = i
		}
	}
	t.Misses++
	slot := free
	if slot < 0 {
		slot = lru
	}
	t.keys[slot] = key
	t.stamp[slot] = t.tick
	return false
}

// Reset empties the TLB and clears its counters.
func (t *TLB) Reset() {
	for i := range t.keys {
		t.keys[i] = 0
		t.stamp[i] = 0
	}
	t.tick = 0
	t.Hits, t.Misses = 0, 0
}
