// Package cache implements the hardware models of the memory hierarchy:
// set-associative write-back caches, a data TLB, and a stream prefetcher.
//
// These are the substrate the paper measures *on*: its central result — the
// region allocator's bus-traffic blow-up on eight cores versus DDmalloc's
// cache reuse — is an interaction between allocator address behaviour and
// exactly these structures. The models are trace-driven and deterministic:
// they classify each access (hit, L2 hit, memory) and report evictions; all
// latency pricing happens in internal/machine.
package cache

import (
	"fmt"
	"math/bits"

	"webmm/internal/mem"
)

// Victim describes a line evicted by an install.
type Victim struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Config sizes a cache.
type Config struct {
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// Ways is the associativity.
	Ways int
	// WayMemo, when nonzero, sizes the cache's line→way memo table in
	// slots (rounded up to a power of two, capped at memoMaxEntries).
	// Zero disables the memo. See the memo field for the design and
	// DESIGN.md §5 for when it pays.
	WayMemo int
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int {
	sets := int(c.Size) / mem.LineSize / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (size %d, ways %d) is not a power of two",
			c.Name, sets, c.Size, c.Ways))
	}
	return sets
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. Tags are full line numbers, so distinct simulated addresses
// never alias.
//
// The hot-path state is laid out for the *host's* caches — the simulator
// prices hundreds of millions of accesses, each a handful of randomly
// indexed loads, so the number of distinct host cache lines touched per
// simulated access dominates wall-clock time (the paper's own lesson,
// applied to the tool that reproduces it):
//
//   - All per-set lookup metadata — signature words, recency permutation,
//     MRU hint, fill count — lives in one 32-byte setMeta record, so a
//     lookup touches one metadata line instead of four parallel arrays.
//   - A line's dirty and prefetched flags live in the top bits of its tag
//     word (line numbers are addresses >> 6 and stay far below 2^62), so
//     the flags ride along with the tag compare and there is no flags
//     array at all.
//
// Replacement state is a packed recency permutation, not timestamps: each
// set keeps one 64-bit word holding its way indices as nibbles ordered
// most- to least-recently used. A hit moves its way to the front of the
// word; a full set's victim is read off the tail nibble. Because LRU
// timestamps within a set are strictly monotonic and distinct, the
// permutation carries exactly the same information — the victim choice is
// bit-identical to a stamp scan — while costing one word of state per set.
// It also removes the access-counter wraparound hazard outright: a 32-bit
// tick wraps after 4 G accesses — a paper-scale cell prices more — silently
// inverting LRU order mid-run, and a permutation has no counter to wrap.
//
// Lookups probe the set's most-recently-hit way, then the optional line→way
// memo, before scanning: both probes only change *search order*, never
// which way matches or which way LRU evicts.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	setMask  uint64
	lruShift uint // (ways-1)*4: tail-nibble position in an order word

	tags []uint64 // sets*ways; line | flag bits; 0 means invalid
	meta []setMeta

	sigStride   int    // signature words per set (1 for ways <= 8, else 2)
	sigLastMask uint64 // high-bit mask covering the last word's real ways

	// memo is a small direct-mapped line→way lookup table: slot
	// line&memoMask remembers the way a recently-found line occupied,
	// packed into the line word's spare top byte. A probe is validated
	// against the tag it names — the entry claims (line, way), and the
	// way's tag either still holds line or the entry is stale — so the
	// memo needs no invalidation hooks anywhere and can never change a
	// lookup's outcome, only skip the signature scan that would have
	// produced it. It extends the per-set MRU probe the way that probe
	// extends findWay: mru catches a set's immediate repeats, the memo
	// catches recently-found lines that interleaved access streams rotate
	// through. Sized by Config.WayMemo; empty (mask 0, always misses)
	// when disabled.
	memo     []uint64
	memoMask uint64

	// Counters are cumulative for the life of the cache (Reset clears).
	Hits, Misses       uint64
	Writebacks         uint64
	PrefetchInstalls   uint64
	PrefetchUsefulHits uint64

	// everDirty and everPf record whether any line was ever marked dirty
	// or installed by a prefetcher. While both are false — true for the
	// whole life of an L1 I-cache — every tag word is a bare line number,
	// and AccessRun takes a lean loop that never inspects flag bits and
	// never reports dirty victims.
	everDirty, everPf bool
}

// setMeta is one set's lookup metadata, packed into a single 32-byte record
// so a set probe touches one host cache line: the signature words (sig1
// unused for ways <= 8), the packed recency permutation, the MRU way hint
// and the fill count.
type setMeta struct {
	sig0  uint64
	sig1  uint64
	order uint64
	mru   uint16
	fill  uint16
	_     uint32
}

const (
	// flagDirty and flagPrefetched occupy the top bits of a tag word,
	// above any reachable line number (addresses stay below 2^56, lines
	// below 2^50). tagLineMask strips them for compares.
	flagDirty      = uint64(1) << 62
	flagPrefetched = uint64(1) << 63
	tagLineMask    = flagDirty - 1

	// identityOrder packs way indices 15..0 as nibbles: the initial
	// recency permutation. Ways the cache doesn't have sit inert in the
	// high nibbles and are never promoted past a real way.
	identityOrder = 0xFEDCBA9876543210

	// memoWayShift packs a memo entry's way into the top byte of its line
	// word; line numbers never reach 2^56, so the byte is always free.
	memoWayShift = 56
	memoLineMask = uint64(1)<<memoWayShift - 1

	// memoMaxEntries caps the memo's footprint (8192 slots = 64 KiB):
	// beyond the cap extra slots stop paying for their host-cache
	// pressure.
	memoMaxEntries = 8192
)

// promote moves way w to the MRU front of a packed recency word: the nibble
// holding w is located with a SWAR zero-nibble scan (order is a permutation,
// so exactly one nibble matches), the nibbles below it shift up one
// position, and w lands in nibble 0. Branch-free.
func promote(order uint64, w int) uint64 {
	x := order ^ (uint64(w) * 0x1111111111111111)
	m := (x - 0x1111111111111111) & ^x & 0x8888888888888888
	shift := uint(bits.TrailingZeros64(m)) &^ 3 // 4 * nibble position of w
	low := order & (uint64(1)<<shift - 1)
	return order&^(uint64(1)<<(shift+4)-1) | low<<4 | uint64(w)
}

// sigOf returns line's one-byte signature. The multiply folds the line's
// high bits — within a set, lines share their low (index) bits — into a byte
// with a near-uniform distribution.
func sigOf(line uint64) uint64 {
	return line * 0x9e3779b97f4a7c15 >> 56
}

// findWay returns the way of set sn (metadata record m) holding line, or -1.
// tags must be the set's tag slice. The signature words narrow the search to
// ways whose signature byte matches; each candidate is verified against the
// full tag, and tags within a set are distinct, so the result is exactly
// what a linear scan would find. (The SWAR byte-match can flag a false extra
// candidate above a genuinely matching byte; the tag verify discards it.)
func (c *Cache) findWay(m *setMeta, line uint64, tags []uint64) int {
	pat := sigOf(line) * 0x0101010101010101
	x := m.sig0 ^ pat
	if c.sigStride == 1 {
		// One signature word covers every way (ways <= 8: both platforms'
		// L1s): straight-line SWAR with no loop overhead.
		h := (x - 0x0101010101010101) &^ x & c.sigLastMask
		for ; h != 0; h &= h - 1 {
			w := bits.TrailingZeros64(h) >> 3
			if tags[w]&tagLineMask == line {
				return w
			}
		}
		return -1
	}
	h := (x - 0x0101010101010101) &^ x & 0x8080808080808080
	for ; h != 0; h &= h - 1 {
		w := bits.TrailingZeros64(h) >> 3
		if tags[w]&tagLineMask == line {
			return w
		}
	}
	x = m.sig1 ^ pat
	h = (x - 0x0101010101010101) &^ x & c.sigLastMask
	for ; h != 0; h &= h - 1 {
		w := 8 + bits.TrailingZeros64(h)>>3
		if tags[w]&tagLineMask == line {
			return w
		}
	}
	return -1
}

// memoWay returns the memo's validated way for line in the set whose tags
// are given, or -1. The recorded way's tag is the validator: it either still
// holds line (the entry is live) or it does not (the entry is stale and is
// ignored). Entry zero never validates — line 0 is never accessed.
func (c *Cache) memoWay(line uint64, tags []uint64) int {
	e := c.memo[line&c.memoMask]
	if e&memoLineMask == line {
		if w := int(e >> memoWayShift); tags[w]&tagLineMask == line {
			return w
		}
	}
	return -1
}

// memoRecord remembers that line was found at way w. With the memo disabled
// the mask is 0 and slot 0 absorbs every store; callers on paths that
// already branch on memoMask skip the call instead.
func (c *Cache) memoRecord(line uint64, w int) {
	c.memo[line&c.memoMask] = line | uint64(w)<<memoWayShift
}

// setSig records line's signature for way w in metadata record m.
func setSig(m *setMeta, w int, line uint64) {
	shift := uint(w&7) * 8
	if w < 8 {
		m.sig0 = m.sig0&^(0xFF<<shift) | sigOf(line)<<shift
	} else {
		m.sig1 = m.sig1&^(0xFF<<shift) | sigOf(line)<<shift
	}
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if cfg.Ways > 16 {
		panic(fmt.Sprintf("cache %s: %d ways overflow the packed recency word", cfg.Name, cfg.Ways))
	}
	stride := (cfg.Ways + 7) / 8
	lastMask := uint64(0x8080808080808080)
	if r := cfg.Ways % 8; r != 0 {
		lastMask &= uint64(1)<<(8*r) - 1
	}
	memoSize := 1
	if cfg.WayMemo > 0 {
		for memoSize < cfg.WayMemo {
			memoSize *= 2
		}
		if memoSize > memoMaxEntries {
			memoSize = memoMaxEntries
		}
	}
	c := &Cache{
		cfg:         cfg,
		sets:        sets,
		ways:        cfg.Ways,
		setMask:     uint64(sets - 1),
		lruShift:    uint(cfg.Ways-1) * 4,
		tags:        make([]uint64, sets*cfg.Ways),
		meta:        make([]setMeta, sets),
		sigStride:   stride,
		sigLastMask: lastMask,
		memo:        make([]uint64, memoSize),
		memoMask:    uint64(memoSize - 1),
	}
	for i := range c.meta {
		c.meta[i].order = identityOrder
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up line, installing it on a miss. write marks the line dirty.
// It returns whether the access hit, whether the hit line had been brought
// in by the prefetcher and not yet used (the "prefetch hid this miss" case),
// and the victim evicted to make room on a miss.
func (c *Cache) Access(line uint64, write bool) (hit, prefetched bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	m := &c.meta[sn]
	w := int(m.mru)
	if !(w < len(tags) && tags[w]&tagLineMask == line) {
		if c.memoMask != 0 {
			if w = c.memoWay(line, tags); w < 0 {
				if w = c.findWay(m, line, tags); w < 0 {
					c.Misses++
					return false, false, c.install(m, base, line, write, false)
				}
				c.memoRecord(line, w)
			}
		} else if w = c.findWay(m, line, tags); w < 0 {
			c.Misses++
			return false, false, c.install(m, base, line, write, false)
		}
		m.mru = uint16(w)
	}
	c.Hits++
	// Promoting the way that is already at the front is the identity;
	// skipping it makes the repeat-hit path one compare.
	if ord := m.order; ord&0xF != uint64(w) {
		m.order = promote(ord, w)
	}
	t := tags[w]
	if write && t&flagDirty == 0 {
		t |= flagDirty
		tags[w] = t
		c.everDirty = true
	}
	if t&flagPrefetched != 0 {
		tags[w] = t &^ flagPrefetched
		c.PrefetchUsefulHits++
		return true, true, Victim{}
	}
	return true, false, Victim{}
}

// HitAgain re-prices an access to a line the caller knows was this
// cache's previous access in its set — still the set's MRU way, already
// promoted to the recency front, prefetched flag clear. In that state
// Access(line, write) changes nothing but the hit counter and, on a
// write, the dirty bit, so HitAgain performs exactly those and skips the
// probe. Callers must only use it on caches that never receive
// prefetcher installs (the machine's L1D qualifies: the prefetcher feeds
// the L2), since a prefetched-line hit would also need its flag cleared
// and counted.
func (c *Cache) HitAgain(line uint64, write bool) {
	c.Hits++
	if write {
		sn := int(line & c.setMask)
		c.tags[sn*c.ways+int(c.meta[sn].mru)] |= flagDirty
		c.everDirty = true
	}
}

// RunMiss records one miss inside an AccessRun: the missing line and the
// victim its install evicted.
type RunMiss struct {
	Line   uint64
	Victim Victim
}

// AccessRun performs Access(first+i, write) for every i in [0, n), appending
// one RunMiss per miss to buf and returning it. Hit/miss outcomes,
// replacement decisions and counters are bit-identical to the per-line loop;
// the batched form exists because runs of consecutive lines map to
// consecutive sets, so the set index and way base advance incrementally
// instead of being re-derived from the line number, and the call overhead is
// paid once per run instead of once per line. Sequential instruction
// fetches and multi-line data accesses are the simulator's two hottest
// access shapes, and both arrive as exactly such runs.
func (c *Cache) AccessRun(first, n uint64, write bool, buf []RunMiss) []RunMiss {
	if !write && !c.everDirty && !c.everPf {
		return c.accessRunClean(first, n, buf)
	}
	sn := int(first & c.setMask)
	ways := c.ways
	base := sn * ways
	for line, end := first, first+n; line < end; line++ {
		tags := c.tags[base : base+ways]
		m := &c.meta[sn]
		w := int(m.mru)
		hit := w < ways && tags[w]&tagLineMask == line
		if !hit {
			w = -1
			if c.memoMask != 0 {
				w = c.memoWay(line, tags)
			}
			if w < 0 {
				if w = c.findWay(m, line, tags); w >= 0 && c.memoMask != 0 {
					c.memoRecord(line, w)
				}
			}
			if w >= 0 {
				m.mru = uint16(w)
				hit = true
			}
		}
		if hit {
			c.Hits++
			if ord := m.order; ord&0xF != uint64(w) {
				m.order = promote(ord, w)
			}
			t := tags[w]
			if write && t&flagDirty == 0 {
				t |= flagDirty
				tags[w] = t
				c.everDirty = true
			}
			if t&flagPrefetched != 0 {
				tags[w] = t &^ flagPrefetched
				c.PrefetchUsefulHits++
			}
		} else {
			c.Misses++
			buf = append(buf, RunMiss{Line: line, Victim: c.install(m, base, line, write, false)})
		}
		if sn++; sn == c.sets {
			sn, base = 0, 0
		} else {
			base += ways
		}
	}
	return buf
}

// accessRunClean is AccessRun for a cache that has never held a dirty or
// prefetched line, under a read run. Nothing can set a flag bit on this
// path, so every tag word is a bare line number: hits are a probe-or-scan
// plus a recency promote, misses a tag store plus a tail rotation, and
// victims are never dirty. An L1 I-cache stays on this path for its whole
// life, which makes sequential instruction fetch — the simulator's single
// largest access stream — its cheapest shape.
func (c *Cache) accessRunClean(first, n uint64, buf []RunMiss) []RunMiss {
	sn := int(first & c.setMask)
	ways := c.ways
	base := sn * ways
	for line, end := first, first+n; line < end; line++ {
		tags := c.tags[base : base+ways]
		m := &c.meta[sn]
		w := int(m.mru)
		hit := w < ways && tags[w] == line
		if !hit {
			w = -1
			if c.memoMask != 0 {
				w = c.memoWay(line, tags)
			}
			if w < 0 {
				if w = c.findWay(m, line, tags); w >= 0 && c.memoMask != 0 {
					c.memoRecord(line, w)
				}
			}
			if w >= 0 {
				m.mru = uint16(w)
				hit = true
			}
		}
		if hit {
			c.Hits++
			if ord := m.order; ord&0xF != uint64(w) {
				m.order = promote(ord, w)
			}
		} else {
			c.Misses++
			ord := m.order
			var oldest int
			var victim Victim
			if int(m.fill) == ways {
				oldest = int(ord >> c.lruShift & 0xF)
				victim = Victim{Line: tags[oldest], Valid: true}
				low := uint64(1)<<c.lruShift - 1
				ord = ord&^(low<<4|0xF) | (ord&low)<<4 | uint64(oldest)
			} else {
				for x := 1; x < ways; x++ {
					if tags[x] == 0 {
						oldest = x
						break
					}
				}
				m.fill++
				ord = promote(ord, oldest)
			}
			tags[oldest] = line
			setSig(m, oldest, line)
			if c.memoMask != 0 {
				c.memoRecord(line, oldest)
			}
			m.order = ord
			m.mru = uint16(oldest)
			buf = append(buf, RunMiss{Line: line, Victim: victim})
		}
		if sn++; sn == c.sets {
			sn, base = 0, 0
		} else {
			base += ways
		}
	}
	return buf
}

// Install brings line into the cache without counting a demand access; the
// prefetcher uses it. It reports whether the line was actually installed
// (false if already resident — no bus transfer happens then) and the victim
// evicted to make room.
func (c *Cache) Install(line uint64, prefetch bool) (installed bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	m := &c.meta[sn]
	if w := int(m.mru); w < len(tags) && tags[w]&tagLineMask == line {
		return false, Victim{}
	}
	// A memo-validated line is resident: the common case for a prefetcher
	// re-issuing lines of an overlapping stream window, and residency is
	// the only question Install asks, so the whole signature scan is
	// skipped without touching any state.
	if c.memoMask != 0 && c.memoWay(line, tags) >= 0 {
		return false, Victim{}
	}
	if w := c.findWay(m, line, tags); w >= 0 {
		if c.memoMask != 0 {
			c.memoRecord(line, w)
		}
		return false, Victim{}
	}
	if prefetch {
		c.PrefetchInstalls++
	}
	return true, c.install(m, base, line, false, prefetch)
}

// install picks the set's LRU victim, evicts it, and installs line as the
// set's most recent. base is sn*ways. Once a set has filled — the steady
// state for every set after warmup — the victim is simply the tail nibble
// of the set's recency word: no scan at all. While the set is still
// filling, the first invalid way at index >= 1 wins, else way 0 (which must
// then be the invalid one) — the same choice the original stamp scan made,
// since untouched ways carried stamp 0 and could never lose a
// strictly-less comparison.
func (c *Cache) install(m *setMeta, base int, line uint64, write, prefetch bool) Victim {
	if write {
		c.everDirty = true
	}
	if prefetch {
		c.everPf = true
	}
	ord := m.order
	var oldest int
	var victim Victim
	if int(m.fill) == c.ways {
		oldest = int(ord >> c.lruShift & 0xF)
		t := c.tags[base+oldest]
		victim = Victim{
			Line:  t & tagLineMask,
			Dirty: t&flagDirty != 0,
			Valid: true,
		}
		if victim.Dirty {
			c.Writebacks++
		}
		// Promoting the tail nibble is a rotation of the low ways
		// nibbles — cheaper than the general SWAR promote, and installs
		// into full sets are the steady state of every miss.
		low := uint64(1)<<c.lruShift - 1
		ord = ord&^(low<<4|0xF) | (ord&low)<<4 | uint64(oldest)
	} else {
		tags := c.tags[base : base+c.ways]
		for w := 1; w < len(tags); w++ {
			if tags[w] == 0 {
				oldest = w
				break
			}
		}
		m.fill++
		ord = promote(ord, oldest)
	}
	t := line
	if write {
		t |= flagDirty
	}
	if prefetch {
		t |= flagPrefetched
	}
	c.tags[base+oldest] = t
	setSig(m, oldest, line)
	if c.memoMask != 0 {
		c.memoRecord(line, oldest)
	}
	m.order = ord
	m.mru = uint16(oldest)
	return victim
}

// WriteBack absorbs a dirty line evicted from an upper-level cache: if the
// line is resident it is marked dirty; otherwise it is installed dirty. The
// returned victim may itself be dirty, propagating the writeback downward.
// WriteBack does not count as a demand hit or miss, and a writeback hit does
// not refresh the line's recency.
func (c *Cache) WriteBack(line uint64) Victim {
	c.everDirty = true
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	m := &c.meta[sn]
	if w := int(m.mru); w < len(tags) && tags[w]&tagLineMask == line {
		tags[w] |= flagDirty
		return Victim{}
	}
	if c.memoMask != 0 {
		if w := c.memoWay(line, tags); w >= 0 {
			m.mru = uint16(w)
			tags[w] |= flagDirty
			return Victim{}
		}
	}
	if w := c.findWay(m, line, tags); w >= 0 {
		if c.memoMask != 0 {
			c.memoRecord(line, w)
		}
		m.mru = uint16(w)
		tags[w] |= flagDirty
		return Victim{}
	}
	return c.install(m, base, line, true, false)
}

// Contains reports whether line is resident (no state change).
func (c *Cache) Contains(line uint64) bool {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.meta[sn].mru); w < len(tags) && tags[w]&tagLineMask == line {
		return true
	}
	for _, t := range tags {
		if t&tagLineMask == line {
			return true
		}
	}
	return false
}

// Invalidate drops line if resident, returning whether it was dirty. The
// way keeps its slot in the recency permutation; because the set is no
// longer full, the next install re-fills it via the invalid-way scan. The
// line's memo entry, if any, goes stale and stops validating the moment the
// tag is cleared — no memo bookkeeping is needed.
func (c *Cache) Invalidate(line uint64) (wasDirty bool) {
	sn := int(line & c.setMask)
	set := sn * c.ways
	m := &c.meta[sn]
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i]&tagLineMask == line {
			wasDirty = c.tags[i]&flagDirty != 0
			c.tags[i] = 0
			shift := uint(w&7) * 8
			if w < 8 {
				m.sig0 &^= 0xFF << shift
			} else {
				m.sig1 &^= 0xFF << shift
			}
			m.fill--
			return wasDirty
		}
	}
	return false
}

// Reset empties the cache and clears its counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	for i := range c.meta {
		c.meta[i] = setMeta{order: identityOrder}
	}
	for i := range c.memo {
		c.memo[i] = 0
	}
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
	c.PrefetchInstalls, c.PrefetchUsefulHits = 0, 0
	c.everDirty, c.everPf = false, false
}
