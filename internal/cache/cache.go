// Package cache implements the hardware models of the memory hierarchy:
// set-associative write-back caches, a data TLB, and a stream prefetcher.
//
// These are the substrate the paper measures *on*: its central result — the
// region allocator's bus-traffic blow-up on eight cores versus DDmalloc's
// cache reuse — is an interaction between allocator address behaviour and
// exactly these structures. The models are trace-driven and deterministic:
// they classify each access (hit, L2 hit, memory) and report evictions; all
// latency pricing happens in internal/machine.
package cache

import (
	"fmt"

	"webmm/internal/mem"
)

// Victim describes a line evicted by an install.
type Victim struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Config sizes a cache.
type Config struct {
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int {
	sets := int(c.Size) / mem.LineSize / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (size %d, ways %d) is not a power of two",
			c.Name, sets, c.Size, c.Ways))
	}
	return sets
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. Tags are full line numbers, so distinct simulated addresses
// never alias.
type Cache struct {
	cfg     Config
	sets    int
	ways    int
	setMask uint64

	tags  []uint64 // sets*ways; 0 means invalid (line 0 is never used)
	stamp []uint32 // LRU stamps
	flags []uint8  // bit 0 dirty, bit 1 prefetched-not-yet-used
	tick  uint32

	// Counters are cumulative for the life of the cache (Reset clears).
	Hits, Misses       uint64
	Writebacks         uint64
	PrefetchInstalls   uint64
	PrefetchUsefulHits uint64
}

const (
	flagDirty      = 1 << 0
	flagPrefetched = 1 << 1
)

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	return &Cache{
		cfg:     cfg,
		sets:    sets,
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, n),
		stamp:   make([]uint32, n),
		flags:   make([]uint8, n),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up line, installing it on a miss. write marks the line dirty.
// It returns whether the access hit, whether the hit line had been brought
// in by the prefetcher and not yet used (the "prefetch hid this miss" case),
// and the victim evicted to make room on a miss.
func (c *Cache) Access(line uint64, write bool) (hit, prefetched bool, victim Victim) {
	set := int(line&c.setMask) * c.ways
	c.tick++
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			c.Hits++
			c.stamp[i] = c.tick
			if write {
				c.flags[i] |= flagDirty
			}
			if c.flags[i]&flagPrefetched != 0 {
				c.flags[i] &^= flagPrefetched
				c.PrefetchUsefulHits++
				return true, true, Victim{}
			}
			return true, false, Victim{}
		}
	}
	c.Misses++
	victim = c.install(set, line, write, false)
	return false, false, victim
}

// Install brings line into the cache without counting a demand access; the
// prefetcher uses it. It reports whether the line was actually installed
// (false if already resident — no bus transfer happens then) and the victim
// evicted to make room.
func (c *Cache) Install(line uint64, prefetch bool) (installed bool, victim Victim) {
	set := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == line {
			return false, Victim{}
		}
	}
	if prefetch {
		c.PrefetchInstalls++
	}
	return true, c.install(set, line, false, prefetch)
}

func (c *Cache) install(set int, line uint64, write, prefetch bool) Victim {
	c.tick++
	oldest := set
	for w := 1; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == 0 {
			oldest = i
			break
		}
		if c.stamp[i] < c.stamp[oldest] {
			oldest = i
		}
	}
	var victim Victim
	if c.tags[oldest] != 0 {
		victim = Victim{
			Line:  c.tags[oldest],
			Dirty: c.flags[oldest]&flagDirty != 0,
			Valid: true,
		}
		if victim.Dirty {
			c.Writebacks++
		}
	}
	c.tags[oldest] = line
	c.stamp[oldest] = c.tick
	var f uint8
	if write {
		f |= flagDirty
	}
	if prefetch {
		f |= flagPrefetched
	}
	c.flags[oldest] = f
	return victim
}

// WriteBack absorbs a dirty line evicted from an upper-level cache: if the
// line is resident it is marked dirty; otherwise it is installed dirty. The
// returned victim may itself be dirty, propagating the writeback downward.
// WriteBack does not count as a demand hit or miss.
func (c *Cache) WriteBack(line uint64) Victim {
	set := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			c.flags[i] |= flagDirty
			return Victim{}
		}
	}
	return c.install(set, line, true, false)
}

// Contains reports whether line is resident (no state change).
func (c *Cache) Contains(line uint64) bool {
	set := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[set+w] == line {
			return true
		}
	}
	return false
}

// Invalidate drops line if resident, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (wasDirty bool) {
	set := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			wasDirty = c.flags[i]&flagDirty != 0
			c.tags[i] = 0
			c.flags[i] = 0
			return wasDirty
		}
	}
	return false
}

// Reset empties the cache and clears its counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamp[i] = 0
		c.flags[i] = 0
	}
	c.tick = 0
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
	c.PrefetchInstalls, c.PrefetchUsefulHits = 0, 0
}
