// Package cache implements the hardware models of the memory hierarchy:
// set-associative write-back caches, a data TLB, and a stream prefetcher.
//
// These are the substrate the paper measures *on*: its central result — the
// region allocator's bus-traffic blow-up on eight cores versus DDmalloc's
// cache reuse — is an interaction between allocator address behaviour and
// exactly these structures. The models are trace-driven and deterministic:
// they classify each access (hit, L2 hit, memory) and report evictions; all
// latency pricing happens in internal/machine.
package cache

import (
	"fmt"
	"math/bits"

	"webmm/internal/mem"
)

// Victim describes a line evicted by an install.
type Victim struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Config sizes a cache.
type Config struct {
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int {
	sets := int(c.Size) / mem.LineSize / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (size %d, ways %d) is not a power of two",
			c.Name, sets, c.Size, c.Ways))
	}
	return sets
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. Tags are full line numbers, so distinct simulated addresses
// never alias.
//
// Replacement state is a packed recency permutation, not timestamps: each
// set keeps one 64-bit word holding its way indices as nibbles ordered
// most- to least-recently used. A hit moves its way to the front of the
// word; a full set's victim is read off the tail nibble. Because LRU
// timestamps within a set are strictly monotonic and distinct, the
// permutation carries exactly the same information — the victim choice is
// bit-identical to a stamp scan — while costing one word of state per set
// (the whole order table for a 4 MiB L2 fits in 32 KiB) instead of a
// per-way stamp array that a victim scan must walk. It also removes the
// access-counter wraparound hazard outright: a 32-bit tick wraps after 4 G
// accesses — a paper-scale cell prices more — silently inverting LRU order
// mid-run, and a permutation has no counter to wrap.
//
// Lookups probe the set's most-recently-hit way before scanning: the probe
// only changes *search order*, never which way matches or which way LRU
// evicts.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	setMask  uint64
	lruShift uint // (ways-1)*4: tail-nibble position in an order word

	tags  []uint64 // sets*ways; 0 means invalid (line 0 is never used)
	flags []uint8  // bit 0 dirty, bit 1 prefetched-not-yet-used
	order []uint64 // per-set recency permutation, MRU nibble lowest
	mru   []uint8  // per-set way of the last hit or install (prediction only)
	fill  []uint16 // per-set count of valid ways; ways == full

	// sigw holds one signature byte per way, packed eight ways to a word,
	// sigStride words per set: a lookup compares eight ways with one XOR
	// and only tag-verifies the bytes that match the probe signature.
	// Signatures are a pure lookup accelerator — every candidate is
	// confirmed against the full tag, so outcomes cannot change.
	sigw        []uint64
	sigStride   int
	sigLastMask uint64 // high-bit mask covering the last word's real ways

	// Counters are cumulative for the life of the cache (Reset clears).
	Hits, Misses       uint64
	Writebacks         uint64
	PrefetchInstalls   uint64
	PrefetchUsefulHits uint64

	// everDirty and everPf record whether any line was ever marked dirty
	// or installed by a prefetcher. While both are false — true for the
	// whole life of an L1 I-cache — every flags byte is zero, and
	// AccessRun takes a lean loop that never touches the flags array and
	// never reports dirty victims.
	everDirty, everPf bool
}

const (
	flagDirty      = 1 << 0
	flagPrefetched = 1 << 1

	// identityOrder packs way indices 15..0 as nibbles: the initial
	// recency permutation. Ways the cache doesn't have sit inert in the
	// high nibbles and are never promoted past a real way.
	identityOrder = 0xFEDCBA9876543210
)

// promote moves way w to the MRU front of a packed recency word: the nibble
// holding w is located with a SWAR zero-nibble scan (order is a permutation,
// so exactly one nibble matches), the nibbles below it shift up one
// position, and w lands in nibble 0. Branch-free.
func promote(order uint64, w int) uint64 {
	x := order ^ (uint64(w) * 0x1111111111111111)
	m := (x - 0x1111111111111111) & ^x & 0x8888888888888888
	shift := uint(bits.TrailingZeros64(m)) &^ 3 // 4 * nibble position of w
	low := order & (uint64(1)<<shift - 1)
	return order&^(uint64(1)<<(shift+4)-1) | low<<4 | uint64(w)
}

// sigOf returns line's one-byte signature. The multiply folds the line's
// high bits — within a set, lines share their low (index) bits — into a byte
// with a near-uniform distribution.
func sigOf(line uint64) uint64 {
	return line * 0x9e3779b97f4a7c15 >> 56
}

// findWay returns the way of set sn holding line, or -1. tags must be the
// set's tag slice. The signature words narrow the search to ways whose
// signature byte matches; each candidate is verified against the full tag,
// and tags within a set are distinct, so the result is exactly what a linear
// scan would find. (The SWAR byte-match can flag a false extra candidate
// above a genuinely matching byte; the tag verify discards it.)
func (c *Cache) findWay(sn int, line uint64, tags []uint64) int {
	pat := sigOf(line) * 0x0101010101010101
	sw := sn * c.sigStride
	for k := 0; k < c.sigStride; k++ {
		x := c.sigw[sw+k] ^ pat
		m := (x - 0x0101010101010101) &^ x & 0x8080808080808080
		if k == c.sigStride-1 {
			m &= c.sigLastMask
		}
		for ; m != 0; m &= m - 1 {
			w := k<<3 + bits.TrailingZeros64(m)>>3
			if tags[w] == line {
				return w
			}
		}
	}
	return -1
}

// setSig records line's signature for way w of set sn.
func (c *Cache) setSig(sn, w int, line uint64) {
	shift := uint(w&7) * 8
	j := sn*c.sigStride + w>>3
	c.sigw[j] = c.sigw[j]&^(0xFF<<shift) | sigOf(line)<<shift
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if cfg.Ways > 16 {
		panic(fmt.Sprintf("cache %s: %d ways overflow the packed recency word", cfg.Name, cfg.Ways))
	}
	n := sets * cfg.Ways
	stride := (cfg.Ways + 7) / 8
	lastMask := uint64(0x8080808080808080)
	if r := cfg.Ways % 8; r != 0 {
		lastMask &= uint64(1)<<(8*r) - 1
	}
	c := &Cache{
		cfg:         cfg,
		sets:        sets,
		ways:        cfg.Ways,
		setMask:     uint64(sets - 1),
		lruShift:    uint(cfg.Ways-1) * 4,
		tags:        make([]uint64, n),
		flags:       make([]uint8, n),
		order:       make([]uint64, sets),
		mru:         make([]uint8, sets),
		fill:        make([]uint16, sets),
		sigw:        make([]uint64, sets*stride),
		sigStride:   stride,
		sigLastMask: lastMask,
	}
	for i := range c.order {
		c.order[i] = identityOrder
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up line, installing it on a miss. write marks the line dirty.
// It returns whether the access hit, whether the hit line had been brought
// in by the prefetcher and not yet used (the "prefetch hid this miss" case),
// and the victim evicted to make room on a miss.
func (c *Cache) Access(line uint64, write bool) (hit, prefetched bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	w := int(c.mru[sn])
	if !(w < len(tags) && tags[w] == line) {
		w = c.findWay(sn, line, tags)
		if w < 0 {
			c.Misses++
			victim = c.install(sn, base, line, write, false)
			return false, false, victim
		}
		c.mru[sn] = uint8(w)
	}
	c.Hits++
	// Promoting the way that is already at the front is the identity;
	// skipping it makes the repeat-hit path one compare.
	if ord := c.order[sn]; ord&0xF != uint64(w) {
		c.order[sn] = promote(ord, w)
	}
	i := base + w
	fl := c.flags[i]
	if write {
		fl |= flagDirty
		c.flags[i] = fl
		c.everDirty = true
	}
	if fl&flagPrefetched != 0 {
		c.flags[i] = fl &^ flagPrefetched
		c.PrefetchUsefulHits++
		return true, true, Victim{}
	}
	return true, false, Victim{}
}

// HitAgain re-prices an access to a line the caller knows was this
// cache's previous access in its set — still the set's MRU way, already
// promoted to the recency front, prefetched flag clear. In that state
// Access(line, write) changes nothing but the hit counter and, on a
// write, the dirty bit, so HitAgain performs exactly those and skips the
// probe. Callers must only use it on caches that never receive
// prefetcher installs (the machine's L1D qualifies: the prefetcher feeds
// the L2), since a prefetched-line hit would also need its flag cleared
// and counted.
func (c *Cache) HitAgain(line uint64, write bool) {
	c.Hits++
	if write {
		sn := int(line & c.setMask)
		c.flags[sn*c.ways+int(c.mru[sn])] |= flagDirty
		c.everDirty = true
	}
}

// RunMiss records one miss inside an AccessRun: the missing line and the
// victim its install evicted.
type RunMiss struct {
	Line   uint64
	Victim Victim
}

// AccessRun performs Access(first+i, write) for every i in [0, n), appending
// one RunMiss per miss to buf and returning it. Hit/miss outcomes,
// replacement decisions and counters are bit-identical to the per-line loop;
// the batched form exists because runs of consecutive lines map to
// consecutive sets, so the set index and way base advance incrementally
// instead of being re-derived from the line number, and the call overhead is
// paid once per run instead of once per line. Sequential instruction
// fetches and multi-line data accesses are the simulator's two hottest
// access shapes, and both arrive as exactly such runs.
func (c *Cache) AccessRun(first, n uint64, write bool, buf []RunMiss) []RunMiss {
	if !write && !c.everDirty && !c.everPf {
		return c.accessRunClean(first, n, buf)
	}
	sn := int(first & c.setMask)
	ways := c.ways
	base := sn * ways
	for line, end := first, first+n; line < end; line++ {
		tags := c.tags[base : base+ways]
		w := int(c.mru[sn])
		hit := w < ways && tags[w] == line
		if !hit {
			if w = c.findWay(sn, line, tags); w >= 0 {
				c.mru[sn] = uint8(w)
				hit = true
			}
		}
		if hit {
			c.Hits++
			if ord := c.order[sn]; ord&0xF != uint64(w) {
				c.order[sn] = promote(ord, w)
			}
			i := base + w
			fl := c.flags[i]
			if write {
				fl |= flagDirty
				c.flags[i] = fl
				c.everDirty = true
			}
			if fl&flagPrefetched != 0 {
				c.flags[i] = fl &^ flagPrefetched
				c.PrefetchUsefulHits++
			}
		} else {
			c.Misses++
			buf = append(buf, RunMiss{Line: line, Victim: c.install(sn, base, line, write, false)})
		}
		if sn++; sn == c.sets {
			sn, base = 0, 0
		} else {
			base += ways
		}
	}
	return buf
}

// accessRunClean is AccessRun for a cache whose flags bytes are all zero —
// no line dirty, none prefetched — under a read run. Nothing can set a flag
// on this path, so the loop skips the flags array entirely: hits are a
// probe-or-scan plus a recency promote, misses a tag store plus a tail
// rotation, and victims are never dirty. An L1 I-cache stays on this path
// for its whole life, which makes sequential instruction fetch — the
// simulator's single largest access stream — its cheapest shape.
func (c *Cache) accessRunClean(first, n uint64, buf []RunMiss) []RunMiss {
	sn := int(first & c.setMask)
	ways := c.ways
	base := sn * ways
	for line, end := first, first+n; line < end; line++ {
		tags := c.tags[base : base+ways]
		w := int(c.mru[sn])
		hit := w < ways && tags[w] == line
		if !hit {
			if w = c.findWay(sn, line, tags); w >= 0 {
				c.mru[sn] = uint8(w)
				hit = true
			}
		}
		if hit {
			c.Hits++
			if ord := c.order[sn]; ord&0xF != uint64(w) {
				c.order[sn] = promote(ord, w)
			}
		} else {
			c.Misses++
			ord := c.order[sn]
			var oldest int
			var victim Victim
			if int(c.fill[sn]) == ways {
				oldest = int(ord >> c.lruShift & 0xF)
				victim = Victim{Line: tags[oldest], Valid: true}
				low := uint64(1)<<c.lruShift - 1
				ord = ord&^(low<<4|0xF) | (ord&low)<<4 | uint64(oldest)
			} else {
				for x := 1; x < ways; x++ {
					if tags[x] == 0 {
						oldest = x
						break
					}
				}
				c.fill[sn]++
				ord = promote(ord, oldest)
			}
			tags[oldest] = line
			c.setSig(sn, oldest, line)
			c.order[sn] = ord
			c.mru[sn] = uint8(oldest)
			buf = append(buf, RunMiss{Line: line, Victim: victim})
		}
		if sn++; sn == c.sets {
			sn, base = 0, 0
		} else {
			base += ways
		}
	}
	return buf
}

// Install brings line into the cache without counting a demand access; the
// prefetcher uses it. It reports whether the line was actually installed
// (false if already resident — no bus transfer happens then) and the victim
// evicted to make room.
func (c *Cache) Install(line uint64, prefetch bool) (installed bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		return false, Victim{}
	}
	if c.findWay(sn, line, tags) >= 0 {
		return false, Victim{}
	}
	if prefetch {
		c.PrefetchInstalls++
	}
	return true, c.install(sn, base, line, false, prefetch)
}

// install picks the set's LRU victim, evicts it, and installs line as the
// set's most recent. base is sn*ways. Once a set has filled — the steady
// state for every set after warmup — the victim is simply the tail nibble
// of the set's recency word: no scan at all. While the set is still
// filling, the first invalid way at index >= 1 wins, else way 0 (which must
// then be the invalid one) — the same choice the original stamp scan made,
// since untouched ways carried stamp 0 and could never lose a
// strictly-less comparison.
func (c *Cache) install(sn, base int, line uint64, write, prefetch bool) Victim {
	if write {
		c.everDirty = true
	}
	if prefetch {
		c.everPf = true
	}
	ord := c.order[sn]
	var oldest int
	var victim Victim
	if int(c.fill[sn]) == c.ways {
		oldest = int(ord >> c.lruShift & 0xF)
		i := base + oldest
		victim = Victim{
			Line:  c.tags[i],
			Dirty: c.flags[i]&flagDirty != 0,
			Valid: true,
		}
		if victim.Dirty {
			c.Writebacks++
		}
		// Promoting the tail nibble is a rotation of the low ways
		// nibbles — cheaper than the general SWAR promote, and installs
		// into full sets are the steady state of every miss.
		low := uint64(1)<<c.lruShift - 1
		ord = ord&^(low<<4|0xF) | (ord&low)<<4 | uint64(oldest)
	} else {
		tags := c.tags[base : base+c.ways]
		for w := 1; w < len(tags); w++ {
			if tags[w] == 0 {
				oldest = w
				break
			}
		}
		c.fill[sn]++
		ord = promote(ord, oldest)
	}
	i := base + oldest
	c.tags[i] = line
	c.setSig(sn, oldest, line)
	c.order[sn] = ord
	var f uint8
	if write {
		f |= flagDirty
	}
	if prefetch {
		f |= flagPrefetched
	}
	c.flags[i] = f
	c.mru[sn] = uint8(oldest)
	return victim
}

// WriteBack absorbs a dirty line evicted from an upper-level cache: if the
// line is resident it is marked dirty; otherwise it is installed dirty. The
// returned victim may itself be dirty, propagating the writeback downward.
// WriteBack does not count as a demand hit or miss, and a writeback hit does
// not refresh the line's recency.
func (c *Cache) WriteBack(line uint64) Victim {
	c.everDirty = true
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		c.flags[base+w] |= flagDirty
		return Victim{}
	}
	if w := c.findWay(sn, line, tags); w >= 0 {
		c.mru[sn] = uint8(w)
		c.flags[base+w] |= flagDirty
		return Victim{}
	}
	return c.install(sn, base, line, true, false)
}

// Contains reports whether line is resident (no state change).
func (c *Cache) Contains(line uint64) bool {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		return true
	}
	for _, t := range tags {
		if t == line {
			return true
		}
	}
	return false
}

// Invalidate drops line if resident, returning whether it was dirty. The
// way keeps its slot in the recency permutation; because the set is no
// longer full, the next install re-fills it via the invalid-way scan.
func (c *Cache) Invalidate(line uint64) (wasDirty bool) {
	sn := int(line & c.setMask)
	set := sn * c.ways
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			wasDirty = c.flags[i]&flagDirty != 0
			c.tags[i] = 0
			c.flags[i] = 0
			shift := uint(w&7) * 8
			c.sigw[sn*c.sigStride+w>>3] &^= 0xFF << shift
			c.fill[sn]--
			return wasDirty
		}
	}
	return false
}

// Reset empties the cache and clears its counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.flags[i] = 0
	}
	for i := range c.order {
		c.order[i] = identityOrder
		c.mru[i] = 0
		c.fill[i] = 0
	}
	for i := range c.sigw {
		c.sigw[i] = 0
	}
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
	c.PrefetchInstalls, c.PrefetchUsefulHits = 0, 0
	c.everDirty, c.everPf = false, false
}
