// Package cache implements the hardware models of the memory hierarchy:
// set-associative write-back caches, a data TLB, and a stream prefetcher.
//
// These are the substrate the paper measures *on*: its central result — the
// region allocator's bus-traffic blow-up on eight cores versus DDmalloc's
// cache reuse — is an interaction between allocator address behaviour and
// exactly these structures. The models are trace-driven and deterministic:
// they classify each access (hit, L2 hit, memory) and report evictions; all
// latency pricing happens in internal/machine.
package cache

import (
	"fmt"
	"math/bits"

	"webmm/internal/mem"
)

// Victim describes a line evicted by an install.
type Victim struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Config sizes a cache.
type Config struct {
	Name string
	// Size is the capacity in bytes.
	Size uint64
	// Ways is the associativity.
	Ways int
}

// Sets returns the number of sets implied by the config.
func (c Config) Sets() int {
	sets := int(c.Size) / mem.LineSize / c.Ways
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets (size %d, ways %d) is not a power of two",
			c.Name, sets, c.Size, c.Ways))
	}
	return sets
}

// Cache is a set-associative, write-back, write-allocate cache with LRU
// replacement. Tags are full line numbers, so distinct simulated addresses
// never alias.
//
// Replacement state is a packed recency permutation, not timestamps: each
// set keeps one 64-bit word holding its way indices as nibbles ordered
// most- to least-recently used. A hit moves its way to the front of the
// word; a full set's victim is read off the tail nibble. Because LRU
// timestamps within a set are strictly monotonic and distinct, the
// permutation carries exactly the same information — the victim choice is
// bit-identical to a stamp scan — while costing one word of state per set
// (the whole order table for a 4 MiB L2 fits in 32 KiB) instead of a
// per-way stamp array that a victim scan must walk. It also removes the
// access-counter wraparound hazard outright: a 32-bit tick wraps after 4 G
// accesses — a paper-scale cell prices more — silently inverting LRU order
// mid-run, and a permutation has no counter to wrap.
//
// Lookups probe the set's most-recently-hit way before scanning: the probe
// only changes *search order*, never which way matches or which way LRU
// evicts.
type Cache struct {
	cfg      Config
	sets     int
	ways     int
	setMask  uint64
	lruShift uint // (ways-1)*4: tail-nibble position in an order word

	tags  []uint64 // sets*ways; 0 means invalid (line 0 is never used)
	flags []uint8  // bit 0 dirty, bit 1 prefetched-not-yet-used
	order []uint64 // per-set recency permutation, MRU nibble lowest
	mru   []uint8  // per-set way of the last hit or install (prediction only)
	fill  []uint16 // per-set count of valid ways; ways == full

	// Counters are cumulative for the life of the cache (Reset clears).
	Hits, Misses       uint64
	Writebacks         uint64
	PrefetchInstalls   uint64
	PrefetchUsefulHits uint64
}

const (
	flagDirty      = 1 << 0
	flagPrefetched = 1 << 1

	// identityOrder packs way indices 15..0 as nibbles: the initial
	// recency permutation. Ways the cache doesn't have sit inert in the
	// high nibbles and are never promoted past a real way.
	identityOrder = 0xFEDCBA9876543210
)

// promote moves way w to the MRU front of a packed recency word: the nibble
// holding w is located with a SWAR zero-nibble scan (order is a permutation,
// so exactly one nibble matches), the nibbles below it shift up one
// position, and w lands in nibble 0. Branch-free.
func promote(order uint64, w int) uint64 {
	x := order ^ (uint64(w) * 0x1111111111111111)
	m := (x - 0x1111111111111111) & ^x & 0x8888888888888888
	shift := uint(bits.TrailingZeros64(m)) &^ 3 // 4 * nibble position of w
	low := order & (uint64(1)<<shift - 1)
	return order&^(uint64(1)<<(shift+4)-1) | low<<4 | uint64(w)
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	sets := cfg.Sets()
	if cfg.Ways > 16 {
		panic(fmt.Sprintf("cache %s: %d ways overflow the packed recency word", cfg.Name, cfg.Ways))
	}
	n := sets * cfg.Ways
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		ways:     cfg.Ways,
		setMask:  uint64(sets - 1),
		lruShift: uint(cfg.Ways-1) * 4,
		tags:     make([]uint64, n),
		flags:    make([]uint8, n),
		order:    make([]uint64, sets),
		mru:      make([]uint8, sets),
		fill:     make([]uint16, sets),
	}
	for i := range c.order {
		c.order[i] = identityOrder
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Access looks up line, installing it on a miss. write marks the line dirty.
// It returns whether the access hit, whether the hit line had been brought
// in by the prefetcher and not yet used (the "prefetch hid this miss" case),
// and the victim evicted to make room on a miss.
func (c *Cache) Access(line uint64, write bool) (hit, prefetched bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	w := int(c.mru[sn])
	if !(w < len(tags) && tags[w] == line) {
		w = -1
		for x := range tags {
			if tags[x] == line {
				w = x
				c.mru[sn] = uint8(x)
				break
			}
		}
		if w < 0 {
			c.Misses++
			victim = c.install(sn, base, line, write, false)
			return false, false, victim
		}
	}
	c.Hits++
	// Promoting the way that is already at the front is the identity;
	// skipping it makes the repeat-hit path one compare.
	if ord := c.order[sn]; ord&0xF != uint64(w) {
		c.order[sn] = promote(ord, w)
	}
	i := base + w
	fl := c.flags[i]
	if write {
		fl |= flagDirty
		c.flags[i] = fl
	}
	if fl&flagPrefetched != 0 {
		c.flags[i] = fl &^ flagPrefetched
		c.PrefetchUsefulHits++
		return true, true, Victim{}
	}
	return true, false, Victim{}
}

// Install brings line into the cache without counting a demand access; the
// prefetcher uses it. It reports whether the line was actually installed
// (false if already resident — no bus transfer happens then) and the victim
// evicted to make room.
func (c *Cache) Install(line uint64, prefetch bool) (installed bool, victim Victim) {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		return false, Victim{}
	}
	for w := range tags {
		if tags[w] == line {
			return false, Victim{}
		}
	}
	if prefetch {
		c.PrefetchInstalls++
	}
	return true, c.install(sn, base, line, false, prefetch)
}

// install picks the set's LRU victim, evicts it, and installs line as the
// set's most recent. base is sn*ways. Once a set has filled — the steady
// state for every set after warmup — the victim is simply the tail nibble
// of the set's recency word: no scan at all. While the set is still
// filling, the first invalid way at index >= 1 wins, else way 0 (which must
// then be the invalid one) — the same choice the original stamp scan made,
// since untouched ways carried stamp 0 and could never lose a
// strictly-less comparison.
func (c *Cache) install(sn, base int, line uint64, write, prefetch bool) Victim {
	ord := c.order[sn]
	var oldest int
	var victim Victim
	if int(c.fill[sn]) == c.ways {
		oldest = int(ord >> c.lruShift & 0xF)
		i := base + oldest
		victim = Victim{
			Line:  c.tags[i],
			Dirty: c.flags[i]&flagDirty != 0,
			Valid: true,
		}
		if victim.Dirty {
			c.Writebacks++
		}
	} else {
		tags := c.tags[base : base+c.ways]
		for w := 1; w < len(tags); w++ {
			if tags[w] == 0 {
				oldest = w
				break
			}
		}
		c.fill[sn]++
	}
	i := base + oldest
	c.tags[i] = line
	c.order[sn] = promote(ord, oldest)
	var f uint8
	if write {
		f |= flagDirty
	}
	if prefetch {
		f |= flagPrefetched
	}
	c.flags[i] = f
	c.mru[sn] = uint8(oldest)
	return victim
}

// WriteBack absorbs a dirty line evicted from an upper-level cache: if the
// line is resident it is marked dirty; otherwise it is installed dirty. The
// returned victim may itself be dirty, propagating the writeback downward.
// WriteBack does not count as a demand hit or miss, and a writeback hit does
// not refresh the line's recency.
func (c *Cache) WriteBack(line uint64) Victim {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		c.flags[base+w] |= flagDirty
		return Victim{}
	}
	for w := range tags {
		if tags[w] == line {
			c.mru[sn] = uint8(w)
			c.flags[base+w] |= flagDirty
			return Victim{}
		}
	}
	return c.install(sn, base, line, true, false)
}

// Contains reports whether line is resident (no state change).
func (c *Cache) Contains(line uint64) bool {
	sn := int(line & c.setMask)
	base := sn * c.ways
	tags := c.tags[base : base+c.ways]
	if w := int(c.mru[sn]); w < len(tags) && tags[w] == line {
		return true
	}
	for _, t := range tags {
		if t == line {
			return true
		}
	}
	return false
}

// Invalidate drops line if resident, returning whether it was dirty. The
// way keeps its slot in the recency permutation; because the set is no
// longer full, the next install re-fills it via the invalid-way scan.
func (c *Cache) Invalidate(line uint64) (wasDirty bool) {
	sn := int(line & c.setMask)
	set := sn * c.ways
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.tags[i] == line {
			wasDirty = c.flags[i]&flagDirty != 0
			c.tags[i] = 0
			c.flags[i] = 0
			c.fill[sn]--
			return wasDirty
		}
	}
	return false
}

// Reset empties the cache and clears its counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.flags[i] = 0
	}
	for i := range c.order {
		c.order[i] = identityOrder
		c.mru[i] = 0
		c.fill[i] = 0
	}
	c.Hits, c.Misses, c.Writebacks = 0, 0, 0
	c.PrefetchInstalls, c.PrefetchUsefulHits = 0, 0
}
