// Package report renders the experiment results as aligned text tables and
// CSV, in the same row/column layout as the paper's tables and figure data.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// New returns a table with the given title and column header.
func New(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends one row.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			for i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Pct formats a ratio as a signed percentage change ("+7.2%", "-24.9%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }

// PctOf formats a plain percentage ("85.0%").
func PctOf(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// MB formats bytes as mebibytes.
func MB(bytes float64) string { return fmt.Sprintf("%.1fMB", bytes/(1<<20)) }

// X formats a speedup ("6.4x").
func X(v float64) string { return fmt.Sprintf("%.1fx", v) }
