package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("Demo", "name", "value")
	tb.Add("alpha", "1")
	tb.Add("b", "22222")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, underline, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	// Columns align: "value" starts at the same offset in every row.
	idx := strings.Index(lines[2], "value")
	if strings.Index(lines[4], "1") != idx {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := New("", "a", "b")
	tb.Add(`x,y`, `he said "hi"`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{F(3.14159, 2), "3.14"},
		{Pct(1.072), "+7.2%"},
		{Pct(0.751), "-24.9%"},
		{PctOf(0.85), "85.0%"},
		{MB(3 << 20), "3.0MB"},
		{X(6.42), "6.4x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q, want %q", c.got, c.want)
		}
	}
}
