package report

import (
	"fmt"
	"strings"
)

// Chart renders a horizontal ASCII bar chart, used by cmd/webmm to plot the
// paper's figures next to their tables.
type Chart struct {
	Title string
	rows  []chartRow
	// Baseline draws a reference mark at this value (e.g. 1.0 for
	// relative-throughput charts); nil for none.
	Baseline *float64
}

type chartRow struct {
	label string
	value float64
}

// NewChart creates a chart with a title.
func NewChart(title string) *Chart { return &Chart{Title: title} }

// Add appends one bar.
func (c *Chart) Add(label string, value float64) {
	c.rows = append(c.rows, chartRow{label, value})
}

// SetBaseline draws a '|' reference at v on every bar's scale.
func (c *Chart) SetBaseline(v float64) { c.Baseline = &v }

// String renders the chart with bars scaled to the maximum value.
func (c *Chart) String() string {
	const width = 50
	var max float64
	labelW := 0
	for _, r := range c.rows {
		if r.value > max {
			max = r.value
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	if c.Baseline != nil && *c.Baseline > max {
		max = *c.Baseline
	}
	if max <= 0 {
		max = 1
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	basePos := -1
	if c.Baseline != nil {
		basePos = int(*c.Baseline / max * width)
	}
	for _, r := range c.rows {
		n := int(r.value / max * width)
		bar := make([]byte, width+1)
		for i := range bar {
			switch {
			case i < n:
				bar[i] = '#'
			case i == basePos:
				bar[i] = '|'
			default:
				bar[i] = ' '
			}
		}
		fmt.Fprintf(&b, "  %s  %s %s\n", pad(r.label, labelW),
			strings.TrimRight(string(bar), " "), F(r.value, 1))
	}
	return b.String()
}
