package report

import (
	"strings"
	"testing"
)

func TestChartBarsScaleToMax(t *testing.T) {
	c := NewChart("demo")
	c.Add("half", 50)
	c.Add("full", 100)
	out := c.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	halfBars := strings.Count(lines[1], "#")
	fullBars := strings.Count(lines[2], "#")
	if fullBars != 50 {
		t.Errorf("full bar has %d marks, want 50", fullBars)
	}
	if halfBars < 24 || halfBars > 26 {
		t.Errorf("half bar has %d marks, want ~25", halfBars)
	}
}

func TestChartBaselineMark(t *testing.T) {
	c := NewChart("")
	c.SetBaseline(1.0)
	c.Add("below", 0.5)
	c.Add("above", 1.2)
	out := c.String()
	if !strings.Contains(out, "|") {
		t.Fatalf("baseline mark missing:\n%s", out)
	}
	// The below-baseline bar must show the reference past its bars.
	first := strings.Split(out, "\n")[0]
	if strings.Index(first, "|") < strings.LastIndex(first, "#") {
		t.Errorf("baseline before bar end on a below-baseline row:\n%s", out)
	}
}

func TestChartEmptyAndZero(t *testing.T) {
	c := NewChart("z")
	c.Add("zero", 0)
	if out := c.String(); !strings.Contains(out, "zero") {
		t.Fatalf("zero-value chart broken:\n%s", out)
	}
}
