package webmm

import (
	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/sim"
)

// DDOptions configure a DDmalloc heap created through the facade. The zero
// value selects the paper's configuration (32 KiB segments, small pages, no
// metadata displacement).
type DDOptions struct {
	// SegmentSize is the segment granule in bytes (power of two;
	// 0 selects the paper's 32 KiB).
	SegmentSize uint64
	// LargePages backs the heap with large pages (the paper's §3.3
	// optimization 2).
	LargePages bool
	// PID displaces the metadata block between processes (§3.3
	// optimization 1).
	PID int
}

// SizeClasses returns DDmalloc's size-class table (the paper's §3.2
// rounding rule: multiples of 8 below 128 bytes, multiples of 32 below 512,
// powers of two up to half a segment).
func SizeClasses() []uint64 {
	out := make([]uint64, heap.NumClasses)
	for c := range out {
		out[c] = heap.ClassSize(c)
	}
	return out
}

// RoundedSize returns the allocation size DDmalloc serves for a request.
func RoundedSize(request uint64) uint64 { return heap.RoundedSize(request) }

func newDD(env *sim.Env, opts DDOptions) heap.Allocator {
	o := core.DefaultOptions()
	if opts.SegmentSize != 0 {
		o.SegmentSize = opts.SegmentSize
	}
	o.LargePages = opts.LargePages
	o.PID = opts.PID
	return core.New(env, o)
}
