// Command heapmap renders an ASCII occupancy map of a DDmalloc heap under a
// workload, mid-transaction: one character per segment, keyed by size
// class. It makes the paper's Figure 2/3 heap structure tangible — segments
// dedicated to one class each, carved in place, with freeAll returning the
// whole picture to blank.
//
//	heapmap -workload 'MediaWiki(ro)' -scale 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"webmm/internal/core"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "MediaWiki(ro)", "workload profile name")
		scale  = flag.Int("scale", 16, "workload scale divisor")
		frac   = flag.Float64("at", 0.8, "fraction of the transaction to run before mapping")
	)
	flag.Parse()

	prof, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	m := machine.New(machine.Xeon(), 1, 16*mem.KiB, 192*mem.KiB, 7)
	env := m.Streams()[0].Env
	dd := core.New(env, core.DefaultOptions())
	gen := workload.NewGenerator(env, dd, prof, *scale)

	// Run a warmup transaction, then stop the second one mid-flight.
	for !gen.RunSlice(1 << 20) {
	}
	gen.EndTransaction(true)
	dd.FreeAll()
	env.Drain()

	steps := int(float64(gen.StepsPerTransaction()) * *frac)
	gen.RunSlice(steps)
	env.Drain()

	fmt.Printf("DDmalloc heap, %s at %.0f%% of a transaction (scale 1/%d)\n",
		prof.Name, *frac*100, *scale)
	fmt.Printf("segments in use: %d (%.2f MiB + metadata)\n\n",
		dd.UsedSegments(), float64(dd.UsedSegments())*32/1024)

	classes := dd.SegmentClasses()
	// Trim the unused tail.
	last := 0
	for i, c := range classes {
		if c != -1 {
			last = i
		}
	}
	classes = classes[:last+1]

	const perRow = 64
	legendUsed := map[int16]bool{}
	for row := 0; row*perRow < len(classes); row++ {
		var b strings.Builder
		fmt.Fprintf(&b, "%4d  ", row*perRow)
		for i := row * perRow; i < (row+1)*perRow && i < len(classes); i++ {
			b.WriteByte(glyph(classes[i]))
			legendUsed[classes[i]] = true
		}
		fmt.Println(b.String())
	}

	fmt.Println("\nlegend: . unused   @ large object")
	var rows []string
	for c := int16(0); c < int16(heap.NumClasses); c++ {
		if legendUsed[c] {
			rows = append(rows, fmt.Sprintf("%c %dB", glyph(c), heap.ClassSize(int(c))))
		}
	}
	for i := 0; i < len(rows); i += 6 {
		end := i + 6
		if end > len(rows) {
			end = len(rows)
		}
		fmt.Println("  " + strings.Join(rows[i:end], "   "))
	}
}

// glyph maps a size class to a display character: digits for the 8-byte
// classes, letters upward.
func glyph(class int16) byte {
	switch {
	case class == -1:
		return '.'
	case class == -2:
		return '@'
	case class < 10:
		return byte('0' + class)
	case class < 36:
		return byte('a' + class - 10)
	default:
		return byte('A' + (class-36)%26)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heapmap:", err)
	os.Exit(2)
}
