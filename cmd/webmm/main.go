// Command webmm regenerates the paper's tables and figures on the
// simulated Xeon and Niagara machines.
//
// Usage:
//
//	webmm -exp all                 # every table and figure
//	webmm -exp fig5 -scale 8       # one experiment at 1/8 scale
//	webmm -exp table4 -jobs 8      # fan the cell matrix out over 8 workers
//	webmm -exp all -cellcache .webmm-cache   # persist cells across runs
//	webmm -exp cell -platform xeon -alloc ddmalloc -workload 'MediaWiki(ro)' -cores 8
//	webmm -exp fig1 -cpuprofile cpu.pprof    # profile the simulator hot path
//	webmm -exp all -faults oom:0.05 -timeout 30s   # fault-injection run
//	webmm -exp fig1 -trace t.jsonl -metrics m.prom -manifest run.json
//	webmm -list                    # the experiment and allocator catalogues
//	webmm serve -addr :8080        # long-running HTTP experiment service
//
// Run webmm -h for the full experiment list (generated from the registry
// that also drives -exp parsing and EXPERIMENTS.md), and webmm serve -h for
// the service flags.
//
// webmm serve turns the runner into a long-lived service: POST /run queues
// cells or whole experiments onto a bounded worker pool (queue overflow is
// rejected with 429 + Retry-After), progress streams back as NDJSON, every
// request shares one on-disk cell cache and one live /metrics registry,
// and SIGTERM drains in-flight cells before exiting 0. Cell cancellation
// is cooperative end to end — a disconnecting client, per-request timeout,
// or shutdown stops the simulation loops at their next checkpoint instead
// of abandoning goroutines.
//
// Interactive runs cancel the same way: SIGINT/SIGTERM fails in-flight
// cells cooperatively, the failure report prints, and the process exits
// nonzero instead of dying mid-table.
//
// With -trace/-metrics/-manifest, the run writes its telemetry: a Chrome
// Trace Event (JSONL) span log of every cell and phase (load it in
// chrome://tracing or Perfetto), a Prometheus text (or .csv) metrics dump,
// and a JSON manifest recording configuration, per-cell wall time and
// throughput, cache behaviour, and failures. Telemetry observes only — the
// simulated results are bit-identical with and without it.
//
// With -faults, injected failures (OOM on fresh mappings, panics, a static
// memory budget, a mid-run budget squeeze, cache corruption) stress the
// recovery paths: failed cells render as FAILED rows, the run completes, a
// failure report goes to stderr, and the exit status is 1. The cell cache
// is bypassed whenever the plan perturbs simulation results. With -budget,
// a cell runs under a static per-stream heap limit (the heap-limit sweep's
// x-axis); a budget below the allocator's memory floor is a deterministic
// FAILED row. webmm serve additionally takes -global-budget, a dynamic
// MemBalancer-style budget apportioned across concurrent cells with a
// graceful-degradation admission ladder.
//
// Each experiment's cells are enumerated by its planner and simulated by a
// worker pool of -jobs goroutines before the tables render; cells are
// independently seeded, so the parallel results are bit-identical to
// -jobs 1, which runs exactly the historical serial loop. With -cellcache,
// finished cells are persisted (keyed by config and simulator version) and
// reloaded by later runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"webmm/internal/apprt"
	"webmm/internal/experiments"
	"webmm/internal/machine"
	"webmm/internal/memsys"
	"webmm/internal/report"
	"webmm/internal/sim"
	"webmm/internal/telemetry"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(serveCmd(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see the list below)")
		scale    = flag.Int("scale", 32, "workload scale divisor (power of two; 1 = paper scale)")
		warmup   = flag.Int("warmup", 2, "warmup transactions per stream")
		measure  = flag.Int("measure", 3, "measured transactions per stream")
		seed     = flag.Uint64("seed", 20090615, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers for the cell fan-out (1 = serial)")
		cellDir  = flag.String("cellcache", "", "directory of the on-disk cell-result cache (empty = disabled)")
		xeonLP   = flag.Bool("xeon-large-pages", false, "enable DDmalloc large pages on Xeon (paper's +11.7% variant)")
		fidelity = flag.String("fidelity", "full", "measurement fidelity: full (bit-reproducible) or sampled (SMARTS-style sampling; much faster on long -measure runs)")
		platform = flag.String("platform", "xeon", "cell: platform ("+strings.Join(machine.PlatformNames(), ", ")+")")
		alloc    = flag.String("alloc", "ddmalloc", "cell: allocator (see the list below)")
		wl       = flag.String("workload", "MediaWiki(ro)", "cell: workload name")
		cores    = flag.Int("cores", 8, "cell: active cores")
		memsched = flag.String("memsched", "", "cell: DRAM scheduling policy (see the list below; empty = the paper's bus model)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		faults   = flag.String("faults", "", "fault plan, e.g. 'oom:0.01,panic:0.1,budget:512MiB,squeeze:0.5,cachecorrupt' (see ParseFaults)")
		budgetFl = flag.String("budget", "", "cell: static per-stream heap limit, e.g. 64MiB (empty = unlimited; the heap-limit sweep's x-axis)")
		timeout  = flag.Duration("timeout", 0, "per-cell wall-clock budget (0 = unlimited); exceeding it fails the cell")

		tracePath    = flag.String("trace", "", "write a Chrome Trace Event (JSONL) span log to this file")
		metricsPath  = flag.String("metrics", "", "write metrics to this file on exit (Prometheus text; .csv suffix selects CSV)")
		manifestPath = flag.String("manifest", "", "write the run manifest (JSON) to this file on exit")
		list         = flag.Bool("list", false, "print the experiment and allocator catalogues and exit")
		validateTel  = flag.Bool("validate-telemetry", false, "after the run, validate the files written by -trace/-metrics/-manifest")
	)
	flag.Usage = usage
	flag.Parse()

	if *list {
		printCatalogues()
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			return 2
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "webmm:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	started := time.Now()
	tel, err := telemetry.New(telemetry.Options{
		TracePath:    *tracePath,
		MetricsPath:  *metricsPath,
		ManifestPath: *manifestPath,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "webmm:", err)
		return 2
	}

	switch *fidelity {
	case "", experiments.FidelityFull, experiments.FidelitySampled:
	default:
		fmt.Fprintf(os.Stderr, "webmm: unknown -fidelity %q (want full or sampled)\n", *fidelity)
		return 2
	}
	cfg := experiments.Config{
		Scale: *scale, Warmup: *warmup, Measure: *measure,
		Seed: *seed, XeonLargePages: *xeonLP, Fidelity: *fidelity,
	}
	// SIGINT/SIGTERM cancels in-flight cells cooperatively: they fail,
	// the failure report prints, and the run exits nonzero — no abandoned
	// simulation work.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	r := experiments.NewRunner(cfg)
	r.Tel = tel
	r.Ctx = ctx
	plan, err := experiments.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webmm:", err)
		return 2
	}
	r.Faults = plan
	r.Timeout = *timeout
	if *cellDir != "" {
		cc, err := experiments.NewCellCache(*cellDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			return 2
		}
		r.Cache = cc
	}

	var cellBudget uint64
	if *budgetFl != "" {
		cellBudget, err = experiments.ParseSize(*budgetFl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webmm: -budget:", err)
			return 2
		}
	}
	if *memsched != "" {
		if _, err := memsys.PolicyByName(memsys.PolicyName(*memsched)); err != nil {
			fmt.Fprintln(os.Stderr, "webmm: -memsched:", err)
			return 2
		}
	}

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.PaperExperimentNames()
	}
	var ran []string
	for _, name := range names {
		if err := runExperiment(r, name, *jobs, *csv, *platform, *alloc, *wl, *cores, cellBudget, *memsched); err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			return 2
		}
		ran = append(ran, name)
	}

	status := 0

	// Every experiment rendered (failed cells as FAILED rows); now report
	// what went wrong and signal it in the exit status.
	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "webmm: %d cell(s) failed:\n", len(fails))
		for _, f := range fails {
			lim := ""
			if f.Cell.Budget > 0 {
				lim = fmt.Sprintf(" (budget %d bytes)", f.Cell.Budget)
			}
			fmt.Fprintf(os.Stderr, "  %s/%s/%s/%d cores%s: %v (attempts: %d)\n",
				f.Cell.Platform, f.Cell.Alloc, f.Cell.Workload, f.Cell.Cores,
				lim, f.Err, f.Attempts)
		}
		status = 1
	}

	if tel.Enabled() {
		m := r.BuildManifest(ran)
		m.Config.Jobs = *jobs
		m.Config.Faults = *faults
		if *timeout > 0 {
			m.Config.Timeout = timeout.String()
		}
		m.Config.CellCacheDir = *cellDir
		m.Stamp(started)
		tel.SetManifest(m)
		if err := tel.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			return 2
		}
	}
	if *validateTel {
		if err := validateTelemetry(*tracePath, *metricsPath, *manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "webmm: telemetry validation:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "webmm: telemetry validated")
	}
	return status
}

// runExperiment fans the named experiment's cell plan out over the worker
// pool, then renders its tables (and, in table mode, charts) from the
// memoized results. "cell" is the one experiment outside the registry: a
// single cell selected by the -platform/-alloc/-workload/-cores flags.
func runExperiment(r *experiments.Runner, name string, jobs int, csv bool,
	platform, alloc, wl string, cores int, budget uint64, memsched string) error {
	if name == "cell" {
		cr := r.Run(experiments.Cell{
			Platform: platform, Alloc: alloc, Workload: wl, Cores: cores,
			Budget: budget, MemSched: memsched,
		})
		printCell(cr)
		return nil
	}
	d, err := experiments.ExperimentByName(name)
	if err != nil {
		return err
	}
	if d.Cells != nil && jobs != 1 {
		if cells := d.Cells(r); len(cells) > 0 {
			r.RunAll(cells, jobs)
		}
	}
	out := d.Run(r)
	for _, t := range out.Tables {
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}
	if !csv {
		for _, ch := range out.Charts {
			fmt.Println(ch.String())
		}
	}
	return nil
}

func validateTelemetry(tracePath, metricsPath, manifestPath string) error {
	if tracePath == "" && metricsPath == "" && manifestPath == "" {
		return fmt.Errorf("nothing to validate: give -trace, -metrics, or -manifest")
	}
	if tracePath != "" {
		n, err := telemetry.ValidateTraceFile(tracePath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "webmm: trace ok (%d events)\n", n)
	}
	if metricsPath != "" {
		n, err := telemetry.ValidateMetricsFile(metricsPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "webmm: metrics ok (%d samples)\n", n)
	}
	if manifestPath != "" {
		m, err := telemetry.ValidateManifestFile(manifestPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "webmm: manifest ok (%d cells, %d failures)\n",
			len(m.Cells), len(m.Failures))
	}
	return nil
}

// usage prints the flag help plus the experiment and allocator lists, both
// generated from the registries so they cannot drift from -exp and -alloc
// parsing.
func usage() {
	fmt.Fprintf(flag.CommandLine.Output(),
		"webmm regenerates the tables and figures of the paper's evaluation.\n\nUsage: webmm [flags]\n       webmm serve [flags]   (long-running HTTP experiment service; webmm serve -h)\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(flag.CommandLine.Output(), "\nExperiments (-exp):\n%s", experiments.UsageExperiments())
	fmt.Fprintf(flag.CommandLine.Output(), "\nAllocators (-alloc):\n")
	for _, d := range apprt.Allocators() {
		fmt.Fprintf(flag.CommandLine.Output(), "  %-8s [%s] %s\n", d.Name, d.Study, d.Doc)
	}
	fmt.Fprintf(flag.CommandLine.Output(), "\nPlatforms (-platform):\n%s", machine.UsagePlatforms())
	fmt.Fprintf(flag.CommandLine.Output(), "\nMemory scheduling policies (-memsched; DRAM model, see -exp memsched):\n%s", memsys.UsagePolicies())
}

func printCatalogues() {
	fmt.Println("Experiments:")
	for _, d := range experiments.Experiments() {
		fmt.Printf("  %-7s %-9s %s\n          example: %s\n", d.Name, d.Ref, d.Doc, d.Example)
	}
	fmt.Println("\nAllocators:")
	for _, d := range apprt.Allocators() {
		fmt.Printf("  %-8s [%-5s] %s\n", d.Name, d.Study, d.Doc)
	}
	fmt.Println("\nPlatforms:")
	for _, d := range machine.Platforms() {
		fmt.Printf("  %-8s %s\n", d.Name, d.Doc)
	}
	fmt.Println("\nMemory scheduling policies (-memsched):")
	for _, d := range memsys.Policies() {
		fmt.Printf("  %-8s [%s] %s\n", d.Name, d.Ref, d.Doc)
	}
}

func printCell(cr experiments.CellResult) {
	if cr.Failed {
		fmt.Printf("Cell: %s / %s / %s / %d cores: FAILED (see stderr)\n",
			cr.Platform, cr.Alloc, cr.Workload, cr.Cores)
		return
	}
	t := report.New(fmt.Sprintf("Cell: %s / %s / %s / %d cores",
		cr.Platform, cr.Alloc, cr.Workload, cr.Cores), "metric", "value")
	res := cr.Res
	t.Add("throughput (txn/s)", report.F(res.Throughput, 2))
	t.Add("wall seconds", report.F(res.WallSeconds, 4))
	t.Add("bus utilization", report.PctOf(res.BusUtil))
	t.Add("bus latency multiplier", report.F(res.BusMult, 2))
	if ms := res.Mem; ms != nil {
		t.Add("memory system", fmt.Sprintf("%s/%s (%d banks)", ms.Model, ms.Policy, ms.Banks))
		t.Add("DRAM row hits", report.PctOf(ms.RowHitRate()))
		t.Add("DRAM row conflicts", report.PctOf(ms.RowConflictRate()))
		t.Add("DRAM row factor", report.F(ms.RowFactor, 3))
		t.Add("DRAM bank queue (avg/max)", fmt.Sprintf("%s / %d",
			report.F(ms.AvgQueueDepth, 1), ms.MaxQueueDepth))
	}
	t.Add("cycles/txn", report.F(res.CyclesPerTxn(), 0))
	mm := res.ClassCyclesPerTxn(sim.ClassAlloc)
	mmShare := 0.0
	if cpt := res.CyclesPerTxn(); cpt > 0 {
		mmShare = mm / cpt
	}
	t.Add("  memory management", fmt.Sprintf("%s (%s)",
		report.F(mm, 0), report.PctOf(mmShare)))
	t.Add("instructions/txn", report.F(res.PerTxn(res.Totals.Instr), 0))
	t.Add("L1I misses/txn", report.F(res.PerTxn(res.Totals.L1IMiss), 0))
	t.Add("L1D misses/txn", report.F(res.PerTxn(res.Totals.L1DMiss), 0))
	t.Add("D-TLB misses/txn", report.F(res.PerTxn(res.Totals.TLBMiss), 0))
	t.Add("L2 misses/txn", report.F(res.PerTxn(res.Totals.L2Miss()), 0))
	t.Add("bus txns/txn", report.F(res.PerTxn(res.Totals.BusTxns()), 0))
	t.Add("  demand fills", report.F(res.PerTxn(res.Totals.BusRead), 0))
	t.Add("  writebacks", report.F(res.PerTxn(res.Totals.BusWrite), 0))
	t.Add("  prefetch fills", report.F(res.PerTxn(res.Totals.BusPf), 0))
	for cls := 0; cls < sim.NumClasses; cls++ {
		c := res.ClassTotals[cls]
		t.Add(fmt.Sprintf("  class %q", sim.Class(cls)),
			fmt.Sprintf("L2miss=%.0f bus=%.0f L1D=%.0f L1I=%.0f pf=%.0f wb=%.0f rd=%.0f",
				res.PerTxn(c.L2Miss()), res.PerTxn(c.BusTxns()), res.PerTxn(c.L1DMiss),
				res.PerTxn(c.L1IMiss), res.PerTxn(c.BusPf), res.PerTxn(c.BusWrite), res.PerTxn(c.BusRead)))
	}
	t.Add("footprint/txn", report.MB(cr.Footprint))
	fmt.Println(t.String())
	txns := float64(res.Txns)
	if txns == 0 {
		txns = 1
	}
	tail := strings.Builder{}
	fmt.Fprintf(&tail, "calls/txn: malloc=%.0f free=%.0f realloc=%.0f avg=%.1fB\n",
		float64(cr.Calls.Mallocs)/txns,
		float64(cr.Calls.Frees)/txns,
		float64(cr.Calls.Reallocs)/txns,
		cr.Calls.AvgAllocSize())
	fmt.Print(tail.String())
}
