// Command webmm regenerates the paper's tables and figures on the
// simulated Xeon and Niagara machines.
//
// Usage:
//
//	webmm -exp all                 # every table and figure
//	webmm -exp fig5 -scale 8       # one experiment at 1/8 scale
//	webmm -exp table4 -jobs 8      # fan the cell matrix out over 8 workers
//	webmm -exp all -cellcache .webmm-cache   # persist cells across runs
//	webmm -exp cell -platform xeon -alloc ddmalloc -workload 'MediaWiki(ro)' -cores 8
//	webmm -exp fig1 -cpuprofile cpu.pprof    # profile the simulator hot path
//	webmm -exp all -faults oom:0.05 -timeout 30s   # fault-injection run
//
// Experiments: fig1 table2 table3 fig5 fig6 fig7 table4 fig8 fig9 fig10
// fig11 fig12 all cell.
//
// With -faults, injected failures (OOM on fresh mappings, panics, a global
// memory budget, cache corruption) stress the recovery paths: failed cells
// render as FAILED rows, the run completes, a failure report goes to
// stderr, and the exit status is 1. The cell cache is bypassed whenever
// the plan perturbs simulation results.
//
// Each experiment's cells are enumerated by its planner and simulated by a
// worker pool of -jobs goroutines before the tables render; cells are
// independently seeded, so the parallel results are bit-identical to
// -jobs 1, which runs exactly the historical serial loop. With -cellcache,
// finished cells are persisted (keyed by config and simulator version) and
// reloaded by later runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"webmm/internal/experiments"
	"webmm/internal/report"
	"webmm/internal/sim"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (fig1,table2,table3,fig5,fig6,fig7,table4,fig8,fig9,fig10,fig11,fig12,all,cell)")
		scale    = flag.Int("scale", 32, "workload scale divisor (power of two; 1 = paper scale)")
		warmup   = flag.Int("warmup", 2, "warmup transactions per stream")
		measure  = flag.Int("measure", 3, "measured transactions per stream")
		seed     = flag.Uint64("seed", 20090615, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		jobs     = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers for the cell fan-out (1 = serial)")
		cellDir  = flag.String("cellcache", "", "directory of the on-disk cell-result cache (empty = disabled)")
		xeonLP   = flag.Bool("xeon-large-pages", false, "enable DDmalloc large pages on Xeon (paper's +11.7% variant)")
		platform = flag.String("platform", "xeon", "cell: platform (xeon, niagara)")
		alloc    = flag.String("alloc", "ddmalloc", "cell: allocator")
		wl       = flag.String("workload", "MediaWiki(ro)", "cell: workload name")
		cores    = flag.Int("cores", 8, "cell: active cores")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		faults   = flag.String("faults", "", "fault plan, e.g. 'oom:0.01,panic:0.1,budget:512MiB,cachecorrupt' (see ParseFaults)")
		timeout  = flag.Duration("timeout", 0, "per-cell wall-clock budget (0 = unlimited); exceeding it fails the cell")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "webmm:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			_ = pprof.Lookup("allocs").WriteTo(f, 0)
		}()
	}

	cfg := experiments.Config{
		Scale: *scale, Warmup: *warmup, Measure: *measure,
		Seed: *seed, XeonLargePages: *xeonLP,
	}
	r := experiments.NewRunner(cfg)
	plan, err := experiments.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webmm:", err)
		os.Exit(2)
	}
	r.Faults = plan
	r.Timeout = *timeout
	if *cellDir != "" {
		cc, err := experiments.NewCellCache(*cellDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			os.Exit(2)
		}
		r.Cache = cc
	}

	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
	}

	run := func(name string) error {
		// Fan the experiment's cell plan out over the worker pool first;
		// the figure code below then renders from memoized results. With
		// -jobs 1 the fan-out is skipped and the figure loops run their
		// historical serial order.
		if cells := r.CellsFor(name); len(cells) > 0 && *jobs != 1 {
			r.RunAll(cells, *jobs)
		}
		switch name {
		case "fig1":
			emit(experiments.Fig1(r).Table())
		case "table2":
			emit(experiments.Table2())
		case "table3":
			emit(experiments.Table3Table(experiments.Table3(r)))
		case "fig5":
			entries := experiments.Fig5(r)
			emit(experiments.Fig5Table(entries))
			if !*csv {
				for _, plat := range []string{"xeon", "niagara"} {
					ch := report.NewChart(fmt.Sprintf("Relative throughput on %s (| = default)", plat))
					ch.SetBaseline(1.0)
					for _, e := range entries {
						if e.Platform == plat {
							ch.Add(e.Workload+" region", e.Region)
							ch.Add(e.Workload+" DDmalloc", e.DD)
						}
					}
					fmt.Println(ch.String())
				}
			}
		case "fig6":
			emit(experiments.Fig6Table(experiments.Fig6(r)))
		case "fig7":
			points := experiments.Fig7(r)
			emit(experiments.Fig7Table(points))
			if !*csv {
				for _, plat := range []string{"xeon", "niagara"} {
					ch := report.NewChart(fmt.Sprintf("MediaWiki(ro) on %s, txns/sec by cores", plat))
					for _, p := range points {
						if p.Platform == plat {
							ch.Add(fmt.Sprintf("%-8s @%d", p.Alloc, p.Cores), p.Throughput)
						}
					}
					fmt.Println(ch.String())
				}
			}
		case "table4":
			emit(experiments.Table4Table(experiments.Table4(r)))
		case "fig8":
			emit(experiments.Fig8Table(experiments.Fig8(r)))
		case "fig9":
			emit(experiments.Fig9Table(experiments.Fig9(r)))
		case "fig10":
			emit(experiments.Fig10Table(experiments.Fig10(r)))
		case "fig11":
			emit(experiments.Fig11Table(experiments.Fig11(r)))
		case "fig12":
			emit(experiments.Fig12Table(experiments.Fig12(r)))
		case "cell":
			cr := r.Run(experiments.Cell{
				Platform: *platform, Alloc: *alloc, Workload: *wl, Cores: *cores,
			})
			printCell(cr)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"table2", "table3", "fig1", "fig5", "fig6", "fig7",
			"table4", "fig8", "fig9", "fig10", "fig11", "fig12"}
	}
	for _, name := range names {
		if err := run(name); err != nil {
			fmt.Fprintln(os.Stderr, "webmm:", err)
			os.Exit(2)
		}
	}

	// Every experiment rendered (failed cells as FAILED rows); now report
	// what went wrong and signal it in the exit status.
	if fails := r.Failures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "webmm: %d cell(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "  %s/%s/%s/%d cores: %v (attempts: %d)\n",
				f.Cell.Platform, f.Cell.Alloc, f.Cell.Workload, f.Cell.Cores,
				f.Err, f.Attempts)
		}
		os.Exit(1)
	}
}

func printCell(cr experiments.CellResult) {
	if cr.Failed {
		fmt.Printf("Cell: %s / %s / %s / %d cores: FAILED (see stderr)\n",
			cr.Platform, cr.Alloc, cr.Workload, cr.Cores)
		return
	}
	t := report.New(fmt.Sprintf("Cell: %s / %s / %s / %d cores",
		cr.Platform, cr.Alloc, cr.Workload, cr.Cores), "metric", "value")
	res := cr.Res
	t.Add("throughput (txn/s)", report.F(res.Throughput, 2))
	t.Add("wall seconds", report.F(res.WallSeconds, 4))
	t.Add("bus utilization", report.PctOf(res.BusUtil))
	t.Add("bus latency multiplier", report.F(res.BusMult, 2))
	t.Add("cycles/txn", report.F(res.CyclesPerTxn(), 0))
	mm := res.ClassCyclesPerTxn(sim.ClassAlloc)
	mmShare := 0.0
	if cpt := res.CyclesPerTxn(); cpt > 0 {
		mmShare = mm / cpt
	}
	t.Add("  memory management", fmt.Sprintf("%s (%s)",
		report.F(mm, 0), report.PctOf(mmShare)))
	t.Add("instructions/txn", report.F(res.PerTxn(res.Totals.Instr), 0))
	t.Add("L1I misses/txn", report.F(res.PerTxn(res.Totals.L1IMiss), 0))
	t.Add("L1D misses/txn", report.F(res.PerTxn(res.Totals.L1DMiss), 0))
	t.Add("D-TLB misses/txn", report.F(res.PerTxn(res.Totals.TLBMiss), 0))
	t.Add("L2 misses/txn", report.F(res.PerTxn(res.Totals.L2Miss()), 0))
	t.Add("bus txns/txn", report.F(res.PerTxn(res.Totals.BusTxns()), 0))
	t.Add("  demand fills", report.F(res.PerTxn(res.Totals.BusRead), 0))
	t.Add("  writebacks", report.F(res.PerTxn(res.Totals.BusWrite), 0))
	t.Add("  prefetch fills", report.F(res.PerTxn(res.Totals.BusPf), 0))
	for cls := 0; cls < sim.NumClasses; cls++ {
		c := res.ClassTotals[cls]
		t.Add(fmt.Sprintf("  class %q", sim.Class(cls)),
			fmt.Sprintf("L2miss=%.0f bus=%.0f L1D=%.0f L1I=%.0f pf=%.0f wb=%.0f rd=%.0f",
				res.PerTxn(c.L2Miss()), res.PerTxn(c.BusTxns()), res.PerTxn(c.L1DMiss),
				res.PerTxn(c.L1IMiss), res.PerTxn(c.BusPf), res.PerTxn(c.BusWrite), res.PerTxn(c.BusRead)))
	}
	t.Add("footprint/txn", report.MB(cr.Footprint))
	fmt.Println(t.String())
	txns := float64(res.Txns)
	if txns == 0 {
		txns = 1
	}
	tail := strings.Builder{}
	fmt.Fprintf(&tail, "calls/txn: malloc=%.0f free=%.0f realloc=%.0f avg=%.1fB\n",
		float64(cr.Calls.Mallocs)/txns,
		float64(cr.Calls.Frees)/txns,
		float64(cr.Calls.Reallocs)/txns,
		cr.Calls.AvgAllocSize())
	fmt.Print(tail.String())
}
