package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"webmm/internal/budget"
	"webmm/internal/experiments"
	"webmm/internal/server"
)

// serveCmd implements `webmm serve`: the long-running experiment service.
// It serves until SIGINT/SIGTERM, then drains in-flight cells and exits 0.
func serveCmd(args []string) int {
	fs := flag.NewFlagSet("webmm serve", flag.ExitOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (\":0\" picks a free port)")
		jobs     = fs.Int("jobs", runtime.GOMAXPROCS(0), "worker goroutines executing requests")
		queue    = fs.Int("queue", 0, "admission queue depth beyond the workers (0 = 2×jobs); overflow returns 429")
		scale    = fs.Int("scale", 32, "default workload scale divisor (power of two; requests may override)")
		warmup   = fs.Int("warmup", 2, "default warmup transactions per stream")
		measure  = fs.Int("measure", 3, "default measured transactions per stream")
		seed     = fs.Uint64("seed", 20090615, "default random seed")
		fidelity = fs.String("fidelity", "full", "default measurement fidelity: full or sampled")
		cellDir  = fs.String("cellcache", "", "on-disk cell cache shared by all requests (empty = disabled)")
		remCache = fs.String("remote-cache", "", "base URL of another webmm instance whose /cache route backs the cell cache (overrides -cellcache); the whole fleet then shares one result store")
		workers  = fs.String("workers", "", "comma-separated worker base URLs; with this set the instance is a fleet coordinator that plans locally and executes every cell remotely (with coalescing, failover, and hedging)")
		hedge    = fs.Float64("hedge", 4, "coordinator mode: hedge a cell onto a second shard after this multiple of the observed p50 cell time (<0 disables)")
		timeout  = fs.Duration("timeout", 0, "per-cell wall-clock budget (0 = unlimited); requests may tighten it")
		drain    = fs.Duration("drain-timeout", 60*time.Second, "graceful-shutdown budget before in-flight cells are cancelled")
		gbudget  = fs.String("global-budget", "", "global memory budget shared by all running cells, e.g. 2GiB (empty = unlimited); a controller apportions it by allocation rate and admission degrades under pressure")
		pressure = fs.String("pressure", "", "pressure-ladder thresholds DEGRADE,QUEUE,SHED as utilization fractions (default 0.70,0.85,0.95); needs -global-budget")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(),
			"webmm serve runs the experiment runner as an HTTP service.\n\nUsage: webmm serve [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), `
Endpoints:
  POST /run          a cell ({"platform","alloc","workload","cores",...}) or an
                     experiment ({"experiment":"fig1"}); streams NDJSON progress
  GET  /cache/{key}  fleet-shared cell result store (also PUT, DELETE)
  GET  /metrics      live Prometheus metrics of the shared telemetry registry
  GET  /healthz      queue, worker, and memory-pressure status

With -workers, the instance becomes a fleet coordinator: experiments are
planned with the ordinary planners but every cell executes remotely over
POST /run on the listed workers (which must share the coordinator's
simulation defaults). Identical in-flight cells across clients coalesce to
one upstream call; unreachable shards fail over; cells slower than -hedge ×
the observed median are hedged onto a second shard and the first answer
wins. Point every instance at one store with -remote-cache and a cell
simulated anywhere is a cache hit everywhere.

With -global-budget, a MemBalancer-style controller splits the budget
across running cells by allocation rate, and admission walks a pressure
ladder instead of failing: new work degrades to sampled fidelity, then is
turned away with a computed Retry-After, then shed with 429. /healthz stays
green throughout.

SIGTERM drains in-flight cells (bounded by -drain-timeout) and exits 0.
`)
	}
	_ = fs.Parse(args)

	var globalBudget uint64
	if *gbudget != "" {
		n, err := experiments.ParseSize(*gbudget)
		if err != nil || n == 0 {
			fmt.Fprintf(os.Stderr, "webmm serve: bad -global-budget %q\n", *gbudget)
			return 2
		}
		globalBudget = n
	}
	policy, err := parsePressure(*pressure)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webmm serve:", err)
		return 2
	}
	if *pressure != "" && globalBudget == 0 {
		fmt.Fprintln(os.Stderr, "webmm serve: -pressure needs -global-budget")
		return 2
	}

	var cacheBE experiments.CacheBackend
	if *remCache != "" {
		cacheBE = experiments.NewHTTPBackend(*remCache)
	}
	var workerList []string
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerList = append(workerList, w)
			}
		}
	}

	srv, err := server.New(server.Config{
		Addr:       *addr,
		Jobs:       *jobs,
		QueueDepth: *queue,
		Sim: experiments.Config{
			Scale: *scale, Warmup: *warmup, Measure: *measure, Seed: *seed,
			Fidelity: *fidelity,
		},
		CacheDir:     *cellDir,
		Cache:        cacheBE,
		Workers:      workerList,
		HedgeAfter:   *hedge,
		CellTimeout:  *timeout,
		DrainTimeout: *drain,
		GlobalBudget: globalBudget,
		Pressure:     policy,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "webmm serve:", err)
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	qd := *queue
	if qd <= 0 {
		qd = 2 * *jobs
	}
	go func() {
		fmt.Fprintf(os.Stderr, "webmm serve: listening on http://%s (%d workers, queue %d)\n",
			srv.Addr(), *jobs, qd)
	}()
	if err := srv.ListenAndServe(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "webmm serve:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "webmm serve: drained, shutting down cleanly")
	return 0
}

// parsePressure parses the -pressure flag: three comma-separated ascending
// utilization fractions in (0,1], e.g. "0.70,0.85,0.95". Empty means the
// defaults.
func parsePressure(s string) (budget.Policy, error) {
	var p budget.Policy
	if s == "" {
		return p, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return p, fmt.Errorf("bad -pressure %q (want DEGRADE,QUEUE,SHED, e.g. 0.70,0.85,0.95)", s)
	}
	vals := make([]float64, 3)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 || v > 1 {
			return p, fmt.Errorf("bad -pressure threshold %q (want a fraction in (0,1])", part)
		}
		vals[i] = v
	}
	if !(vals[0] < vals[1] && vals[1] < vals[2]) {
		return p, fmt.Errorf("bad -pressure %q (thresholds must ascend)", s)
	}
	p.DegradeAt, p.QueueAt, p.ShedAt = vals[0], vals[1], vals[2]
	return p, nil
}
