// Command alloctrace characterizes a workload's allocator traffic: the
// Table 3 statistics plus the request-size mixture, measured by running the
// workload generator against a chosen allocator on one simulated core.
//
//	alloctrace -workload 'MediaWiki(ro)' -alloc ddmalloc -scale 16
package main

import (
	"flag"
	"fmt"
	"os"

	"webmm/internal/apprt"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/report"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "MediaWiki(ro)", "workload profile name")
		alloc  = flag.String("alloc", "default", "allocator")
		scale  = flag.Int("scale", 16, "workload scale divisor")
		txns   = flag.Int("txns", 3, "transactions to trace")
		seed   = flag.Uint64("seed", 1, "random seed")
		ruby   = flag.Bool("ruby", false, "per-object cleanup instead of freeAll")
	)
	flag.Parse()

	prof, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	m := machine.New(machine.Xeon(), 1, 16*mem.KiB, 192*mem.KiB, *seed)
	env := m.Streams()[0].Env
	a, err := apprt.NewAllocator(*alloc, env, apprt.AllocOptions{})
	if err != nil {
		fatal(err)
	}
	if !*ruby && !a.SupportsFreeAll() {
		fatal(fmt.Errorf("allocator %q has no freeAll; use -ruby", *alloc))
	}
	gen := workload.NewGenerator(env, a, prof, *scale)

	for t := 0; t < *txns; t++ {
		for !gen.RunSlice(4096) {
			env.Drain()
		}
		gen.EndTransaction(!*ruby)
		if !*ruby {
			a.FreeAll()
		}
		env.Drain()
	}

	s := gen.Stats()
	perTxn := func(v uint64) float64 { return float64(v) / float64(*txns) }
	fs := float64(*scale)

	t := report.New(fmt.Sprintf("Allocator trace: %s on %q (scale 1/%d, %d txns)",
		prof.Name, *alloc, *scale, *txns), "metric", "per txn", "full-scale equiv")
	t.Add("malloc calls", report.F(perTxn(s.Mallocs), 0), report.F(perTxn(s.Mallocs)*fs, 0))
	t.Add("free calls", report.F(perTxn(s.Frees), 0), report.F(perTxn(s.Frees)*fs, 0))
	t.Add("realloc calls", report.F(perTxn(s.Reallocs), 0), report.F(perTxn(s.Reallocs)*fs, 0))
	t.Add("mean request", report.F(s.AvgAllocSize(), 1)+"B", "same")
	t.Add("bytes requested", report.MB(perTxn(s.BytesRequested)), report.MB(perTxn(s.BytesRequested)*fs))
	t.Add("bytes allocated", report.MB(perTxn(s.BytesAllocated)), report.MB(perTxn(s.BytesAllocated)*fs))
	t.Add("peak footprint", report.MB(float64(a.PeakFootprint())), "-")
	fmt.Println(t.String())

	fmt.Println(sizeHistogram(prof).String())
}

// sizeHistogram renders the profile's calibrated request-size mixture (the
// same mixture the generator draws from; see internal/workload).
func sizeHistogram(prof workload.Profile) *report.Table {
	a := prof.AvgSize
	analytic := 0.80*(4+a/2) + 0.1695*2*a + 0.03*11.5*a + 0.0005*(4096+65536)/2
	scaleF := a / analytic
	rng := sim.NewRNG(12345)

	type band struct {
		label string
		max   uint64
	}
	bands := []band{
		{"1-16B", 16}, {"17-64B", 64}, {"65-128B", 128}, {"129-512B", 512},
		{"513B-4KiB", 4096}, {"4KiB-64KiB", 65536}, {">64KiB", 1 << 40},
	}
	counts := make([]float64, len(bands))
	const n = 200000
	for i := 0; i < n; i++ {
		u := rng.Float64()
		var v float64
		switch {
		case u < 0.80:
			v = 8 + rng.Float64()*(a-8)
		case u < 0.80+0.1695:
			v = a + rng.Float64()*2*a
		case u < 0.80+0.1695+0.03:
			v = 3*a + rng.Float64()*17*a
		default:
			v = 4096 + rng.Float64()*(65536-4096)
		}
		size := uint64(v * scaleF)
		if size == 0 {
			size = 1
		}
		for bi := range bands {
			if size <= bands[bi].max {
				counts[bi]++
				break
			}
		}
	}
	t := report.New(fmt.Sprintf("Request-size mixture (mean %.1fB, Table 3 calibration)", a),
		"band", "share")
	for i, b := range bands {
		t.Add(b.label, report.PctOf(counts[i]/n))
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alloctrace:", err)
	os.Exit(2)
}
