// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus allocator micro-benchmarks.
//
// Each BenchmarkFigN/BenchmarkTableN runs the corresponding experiment at a
// reduced scale (the committed full-fidelity numbers live in EXPERIMENTS.md,
// produced with cmd/webmm at finer scale) and reports the experiment's
// headline quantities as custom metrics, so `go test -bench .` both
// exercises the harness end-to-end and prints the paper's shapes.
//
// Run with: go test -bench . -benchmem   (one iteration per bench is normal;
// an experiment takes longer than the default benchtime).
package webmm_test

import (
	"runtime"
	"testing"

	"webmm"
	"webmm/internal/experiments"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// benchRunner builds a fresh experiment runner at bench scale.
func benchRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{
		Scale: 64, Warmup: 1, Measure: 2, Seed: 20090615,
	})
}

// ---------------------------------------------------------------------------
// Allocator micro-benchmarks: the simulator-side cost of the allocator
// models themselves (Go time per simulated malloc/free pair).

func benchAllocator(b *testing.B, name webmm.AllocatorName) {
	b.Helper()
	sb := webmm.NewSandbox(webmm.Xeon(), 1)
	a, err := sb.NewAllocator(name)
	if err != nil {
		b.Fatal(err)
	}
	ptrs := make([]webmm.Ptr, 0, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ptrs = ptrs[:0]
		for j := 0; j < 128; j++ {
			ptrs = append(ptrs, a.Malloc(uint64(16+j%240)))
		}
		if a.SupportsFree() {
			for _, p := range ptrs {
				a.Free(p)
			}
		} else if a.SupportsFreeAll() {
			a.FreeAll()
		}
		if i%64 == 0 {
			sb.Warm() // drain the event buffer
		}
	}
}

func BenchmarkAllocDDmalloc(b *testing.B) { benchAllocator(b, "ddmalloc") }
func BenchmarkAllocRegion(b *testing.B)   { benchAllocator(b, "region") }
func BenchmarkAllocDefault(b *testing.B)  { benchAllocator(b, "default") }
func BenchmarkAllocGlibc(b *testing.B)    { benchAllocator(b, "glibc") }
func BenchmarkAllocHoard(b *testing.B)    { benchAllocator(b, "hoard") }
func BenchmarkAllocTCmalloc(b *testing.B) { benchAllocator(b, "tcmalloc") }
func BenchmarkAllocObstack(b *testing.B)  { benchAllocator(b, "obstack") }

// ---------------------------------------------------------------------------
// Experiment scheduler: serial vs parallel wall-clock over a fixed cell
// matrix (both platforms, all PHP allocators, 1 and 8 cores on MediaWiki
// read-only — 12 independent cells). The parallel variant fans out over
// GOMAXPROCS workers; results are bit-identical by construction, so the
// delta is pure scheduling.

func benchCellMatrix() []experiments.Cell {
	wl := workload.MediaWikiRO().Name
	var cells []experiments.Cell
	for _, plat := range []string{"xeon", "niagara"} {
		for _, alloc := range experiments.PHPAllocators() {
			for _, cores := range []int{1, 8} {
				cells = append(cells, experiments.Cell{
					Platform: plat, Alloc: alloc, Workload: wl, Cores: cores,
				})
			}
		}
	}
	return cells
}

func BenchmarkRunnerSerial(b *testing.B) {
	cells := benchCellMatrix()
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.RunAll(cells, 1)
	}
}

func BenchmarkRunnerParallel(b *testing.B) {
	cells := benchCellMatrix()
	jobs := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(jobs), "jobs")
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		r.RunAll(cells, jobs)
	}
}

// ---------------------------------------------------------------------------
// Figure 1: normalized CPU time per transaction, default vs region.

// BenchmarkFig1Cell simulates exactly one Figure 1 cell (MediaWiki
// read/write, default allocator, 8 Xeon cores) from a cold runner. This is
// the single-cell hot-path benchmark: ns/op here is the wall time every
// experiment pays per cell, dominated by Machine.price and Cache.Access.
func BenchmarkFig1Cell(b *testing.B) {
	wl := workload.MediaWikiRW().Name
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		cr := r.Run(experiments.Cell{
			Platform: "xeon", Alloc: "default", Workload: wl, Cores: 8,
		})
		b.ReportMetric(cr.Res.Throughput, "tps")
	}
}

// BenchmarkDRAMCell is BenchmarkFig1Cell with the banked DRAM model
// (FR-FCFS) in place of the bus: the delta over Fig1Cell is the full cost
// of recording every measured bus transaction and replaying the per-bank
// queues — the overhead a -memsched cell pays.
func BenchmarkDRAMCell(b *testing.B) {
	wl := workload.MediaWikiRW().Name
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		cr := r.Run(experiments.Cell{
			Platform: "xeon", Alloc: "default", Workload: wl, Cores: 8,
			MemSched: "frfcfs",
		})
		b.ReportMetric(cr.Res.Throughput, "tps")
	}
}

// BenchmarkCellL2Heavy simulates one 8-core Niagara cell. Niagara's L1s are
// a quarter the size of Xeon's (8 KiB D / 16 KiB I, 4-way) with no
// prefetcher, so a far larger share of accesses falls through to the shared
// 12-way L2: this is the benchmark that moves when L2 lookup or install
// costs change, where BenchmarkFig1Cell is dominated by L1 hits.
func BenchmarkCellL2Heavy(b *testing.B) {
	wl := workload.MediaWikiRW().Name
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		cr := r.Run(experiments.Cell{
			Platform: "niagara", Alloc: "default", Workload: wl, Cores: 8,
		})
		b.ReportMetric(cr.Res.Throughput, "tps")
	}
}

// BenchmarkFig1CellFullLong / BenchmarkFig1CellSampled run the Figure 1
// cell with a long measurement phase (-measure 64 at -scale 32) under both
// fidelity modes. The pair demonstrates the sampled mode's speedup on the
// long runs it exists for: with the default plan (period 16, 1 detail + 1
// warming round per period) sampled executes 9 of the 65 round-units full
// does, so sampled should run >= 5x faster at matching IPC (the <2%% error
// bound is pinned by TestSampledFidelityIPCError).
func benchFidelityCell(b *testing.B, fidelity string) {
	b.Helper()
	wl := workload.MediaWikiRW().Name
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(experiments.Config{
			Scale: 32, Warmup: 1, Measure: 64, Seed: 20090615, Fidelity: fidelity,
		})
		cr := r.Run(experiments.Cell{
			Platform: "xeon", Alloc: "default", Workload: wl, Cores: 8,
		})
		if cr.Failed {
			b.Fatal("cell failed")
		}
		b.ReportMetric(cr.Res.IPC(), "ipc")
	}
}

func BenchmarkFig1CellFullLong(b *testing.B) { benchFidelityCell(b, "full") }
func BenchmarkFig1CellSampled(b *testing.B)  { benchFidelityCell(b, "sampled") }

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		f := experiments.Fig1(r)
		b.ReportMetric(f.RegionMM+f.RegionOther, "region_cpu_rel")
		b.ReportMetric(f.DefaultMM, "default_mm_share")
	}
}

// ---------------------------------------------------------------------------
// Table 3: allocator calls per transaction.

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rows := experiments.Table3(r)
		b.ReportMetric(rows[0].Mallocs, "mediawiki_ro_mallocs")
		b.ReportMetric(rows[0].AvgSize, "mediawiki_ro_avg_bytes")
	}
}

// ---------------------------------------------------------------------------
// Figure 5: relative throughput, 8 cores, both platforms.

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		entries := experiments.Fig5(r)
		var ddSum, regSum float64
		for _, e := range entries {
			ddSum += e.DD
			regSum += e.Region
		}
		n := float64(len(entries))
		b.ReportMetric((ddSum/n-1)*100, "dd_avg_gain_pct")
		b.ReportMetric((regSum/n-1)*100, "region_avg_gain_pct")
	}
}

// ---------------------------------------------------------------------------
// Figure 6: CPU-time breakdown on 8 Xeon cores.

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		entries := experiments.Fig6(r)
		var defMM, regMM, ddMM, n float64
		for _, e := range entries {
			switch e.Alloc {
			case "default":
				defMM += e.MMPct
				n++
			case "region":
				regMM += e.MMPct
			case "ddmalloc":
				ddMM += e.MMPct
			}
		}
		b.ReportMetric(defMM/n, "default_mm_pct")
		b.ReportMetric(100*(1-regMM/defMM), "region_mm_cut_pct")
		b.ReportMetric(100*(1-ddMM/defMM), "dd_mm_cut_pct")
	}
}

// ---------------------------------------------------------------------------
// Figure 7: MediaWiki (read-only) scaling with core count.

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		points := experiments.Fig7(r)
		for _, p := range points {
			if p.Platform == "xeon" && p.Cores == 8 {
				switch p.Alloc {
				case "region":
					b.ReportMetric(p.Throughput, "xeon8_region_tps")
				case "ddmalloc":
					b.ReportMetric(p.Throughput, "xeon8_dd_tps")
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 4: speedups with 8 cores.

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rows := experiments.Table4(r)
		var ddSpeedup, n float64
		for _, row := range rows {
			if row.Alloc == "ddmalloc" && row.Platform == "xeon" {
				ddSpeedup += row.Speedup
				n++
			}
		}
		b.ReportMetric(ddSpeedup/n, "dd_xeon_avg_speedup")
	}
}

// ---------------------------------------------------------------------------
// Figure 8: hardware-event deltas vs the default allocator.

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		entries := experiments.Fig8(r)
		var regBus, ddBus, n float64
		for _, e := range entries {
			if e.Platform != "xeon" {
				continue
			}
			switch e.Alloc {
			case "region":
				regBus += e.DBusTxn
				n++
			case "ddmalloc":
				ddBus += e.DBusTxn
			}
		}
		b.ReportMetric(regBus/n, "region_bus_delta_pct")
		b.ReportMetric(ddBus/n, "dd_bus_delta_pct")
	}
}

// ---------------------------------------------------------------------------
// Figure 9: memory consumption.

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		entries := experiments.Fig9(r)
		var def, reg, dd float64
		for _, e := range entries {
			if e.Workload != workload.MediaWikiRO().Name {
				continue
			}
			switch e.Alloc {
			case "default":
				def = e.Bytes
			case "region":
				reg = e.Bytes
			case "ddmalloc":
				dd = e.Bytes
			}
		}
		b.ReportMetric(reg/def, "region_footprint_x")
		b.ReportMetric(dd/def, "dd_footprint_x")
	}
}

// ---------------------------------------------------------------------------
// Figures 10-12: the Ruby on Rails study. Coarser scale: the Ruby cells run
// hundreds of scaled transactions so processes age and restart on schedule.

func benchRubyRunner() *experiments.Runner {
	return experiments.NewRunner(experiments.Config{
		Scale: 128, Warmup: 1, Measure: 2, Seed: 20090615,
	})
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRubyRunner()
		entries := experiments.Fig10(r)
		for _, e := range entries {
			if e.Alloc == "ddmalloc" {
				b.ReportMetric((e.RelToGlibc-1)*100, "dd_vs_glibc_pct")
			}
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRubyRunner()
		entries := experiments.Fig11(r)
		for _, e := range entries {
			if e.Alloc == "glibc" {
				b.ReportMetric(e.MMPct, "glibc_mm_pct")
			}
			if e.Alloc == "ddmalloc" {
				b.ReportMetric(e.MMPct, "dd_mm_pct")
			}
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRubyRunner()
		entries := experiments.Fig12(r)
		for _, e := range entries {
			if e.Alloc == "ddmalloc" && e.Period == 20 {
				b.ReportMetric((e.VsNoRestart-1)*100, "dd_restart20_pct")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationSegmentSize sweeps DDmalloc's segment size (the paper's
// §3.2 tunable: larger segments cost fewer instructions but more memory and
// cache misses).
func BenchmarkAblationSegmentSize(b *testing.B) {
	for _, segKiB := range []uint64{8, 32, 128} {
		b.Run(bname("seg", segKiB), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sb := webmm.NewSandbox(webmm.Xeon(), 1)
				dd := sb.NewDDmalloc(webmm.DDOptions{SegmentSize: segKiB * 1024})
				var ptrs []webmm.Ptr
				for j := 0; j < 20000; j++ {
					p := dd.Malloc(uint64(16 + j%500))
					sb.Touch(p, 32, true)
					ptrs = append(ptrs, p)
					if len(ptrs) > 64 {
						dd.Free(ptrs[0])
						ptrs = ptrs[1:]
					}
				}
				dd.FreeAll()
				sb.Measure()
				res := sb.Result()
				b.ReportMetric(res.PerTxn(res.Totals.L2Miss()), "l2_misses")
				b.ReportMetric(float64(dd.PeakFootprint()), "peak_bytes")
			}
		})
	}
}

// BenchmarkAblationObstackVsRegion compares the two region-style allocators
// (the paper kept its own because it outperformed obstack).
func BenchmarkAblationObstackVsRegion(b *testing.B) {
	for _, name := range []webmm.AllocatorName{"region", "obstack"} {
		b.Run(string(name), func(b *testing.B) {
			sb := webmm.NewSandbox(webmm.Xeon(), 1)
			a, err := sb.NewAllocator(name)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 256; j++ {
					a.Malloc(64)
				}
				a.FreeAll()
				if i%32 == 0 {
					sb.Warm()
				}
			}
		})
	}
}

// BenchmarkAblationReapVsNeighbours places Reaps (the paper's related-work
// hybrid) between the region allocator and DDmalloc on one workload: it
// keeps region's bump allocation and bulk free but pays Lea-style costs on
// per-object free — the paper's argument for why defrag-dodging beats
// "custom region + general free".
func BenchmarkAblationReapVsNeighbours(b *testing.B) {
	for _, alloc := range []string{"region", "reap", "ddmalloc"} {
		b.Run(alloc, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				cr := r.Run(experiments.Cell{Platform: "xeon", Alloc: alloc,
					Workload: workload.MediaWikiRO().Name, Cores: 8})
				b.ReportMetric(cr.Res.Throughput, "tps")
				b.ReportMetric(cr.Res.ClassCyclesPerTxn(sim.ClassAlloc), "mm_cycles_per_txn")
			}
		})
	}
}

// BenchmarkSimulatorEventThroughput measures the raw pricing speed of the
// cache hierarchy (simulator events per second), the quantity that bounds
// every experiment's wall time.
func BenchmarkSimulatorEventThroughput(b *testing.B) {
	sb := webmm.NewSandbox(webmm.Xeon(), 1)
	dd := sb.NewDDmalloc(webmm.DDOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := dd.Malloc(64)
		sb.Touch(p, 64, true)
		dd.Free(p)
		if i%1024 == 0 {
			sb.Warm()
		}
	}
}

func bname(prefix string, v uint64) string {
	return prefix + "_" + itoa(v) + "KiB"
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Silence unused-import guards if figure sets shrink during refactors.
var _ = sim.ClassAlloc
