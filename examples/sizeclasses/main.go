// sizeclasses prints DDmalloc's size-class table (the paper's §3.2 rounding
// rule) and demonstrates the space trade-off of segregated storage against
// the default allocator's 16-byte boundary tags: headerless segments waste
// rounding slack, boundary tags waste a constant per object.
//
//	go run ./examples/sizeclasses
package main

import (
	"fmt"

	"webmm"
)

func main() {
	fmt.Println("DDmalloc size classes (32 KiB segments, no per-object headers)")
	fmt.Println()
	fmt.Printf("%8s %10s %14s %12s\n", "class", "size", "objects/seg", "worst slack")
	classes := webmm.SizeClasses()
	for i, size := range classes {
		objs := 32 * 1024 / size
		// Worst-case internal fragmentation: a request one byte above
		// the previous class.
		var slack uint64
		if i > 0 {
			slack = size - (classes[i-1] + 1)
		} else {
			slack = size - 1
		}
		fmt.Printf("%8d %9dB %14d %11dB\n", i, size, objs, slack)
	}

	fmt.Println()
	fmt.Println("Space per object, DDmalloc rounding vs default's 16-byte header:")
	fmt.Printf("%10s %12s %12s\n", "request", "DDmalloc", "default")
	for _, req := range []uint64{8, 24, 62, 100, 129, 500, 513, 4000} {
		fmt.Printf("%9dB %11dB %11dB\n", req, webmm.RoundedSize(req), (req+16+7)&^7)
	}
	fmt.Println()
	fmt.Println("The paper measured DDmalloc at +24% memory vs the default")
	fmt.Println("(Figure 9): rounding slack costs more than headers for PHP's")
	fmt.Println("small objects, the price of headerless segments and O(1) free.")
}
