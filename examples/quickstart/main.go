// Quickstart: create the paper's DDmalloc allocator on a simulated Xeon,
// exercise it with a short transaction-shaped workload, and print the
// allocator statistics and the hardware events the memory-system simulator
// priced.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"webmm"
)

func main() {
	// A sandbox is one simulated Xeon core with its caches and bus.
	sb := webmm.NewSandbox(webmm.Xeon(), 42)

	// DDmalloc with the paper's configuration: 32 KiB segments, no
	// per-object headers, LIFO free lists, freeAll.
	dd := sb.NewDDmalloc(webmm.DDOptions{})

	// Simulate three PHP-style transactions: allocate transaction-scoped
	// objects, use them, free most per-object, then bulk-free the rest.
	for txn := 0; txn < 3; txn++ {
		var live []webmm.Ptr
		for i := 0; i < 10000; i++ {
			size := uint64(16 + (i*13)%240)
			p := dd.Malloc(size)
			sb.Touch(p, size, true) // constructor fills the object
			live = append(live, p)

			sb.Work(300) // the script interprets some opcodes

			// Free the oldest live object 85% of the time
			// (the paper's per-object free rate).
			if i%20 != 0 && len(live) > 4 {
				victim := live[len(live)-3]
				live = append(live[:len(live)-3], live[len(live)-2:]...)
				sb.Touch(victim, 8, false) // destructor reads it
				dd.Free(victim)
			}
		}
		// End of request: everything left dies at once.
		dd.FreeAll()

		if txn == 0 {
			sb.Warm() // first transaction warms the caches
		} else {
			sb.Measure()
		}
	}

	stats := dd.Stats()
	fmt.Printf("DDmalloc after 3 transactions:\n")
	fmt.Printf("  mallocs            %d\n", stats.Mallocs)
	fmt.Printf("  frees              %d\n", stats.Frees)
	fmt.Printf("  freeAlls           %d\n", stats.FreeAlls)
	fmt.Printf("  mean request       %.1f bytes\n", stats.AvgAllocSize())
	fmt.Printf("  peak footprint     %.2f MiB\n\n", float64(dd.PeakFootprint())/(1<<20))

	res := sb.Result()
	fmt.Printf("Simulated Xeon core (2 measured transactions):\n")
	fmt.Printf("  cycles/txn         %.0f\n", res.CyclesPerTxn())
	fmt.Printf("  instructions/txn   %.0f\n", res.PerTxn(res.Totals.Instr))
	fmt.Printf("  L1D misses/txn     %.0f\n", res.PerTxn(res.Totals.L1DMiss))
	fmt.Printf("  L2 misses/txn      %.0f\n", res.PerTxn(res.Totals.L2Miss()))
	fmt.Printf("  bus txns/txn       %.0f\n", res.PerTxn(res.Totals.BusTxns()))
	fmt.Printf("  bus utilization    %.1f%%\n", res.BusUtil*100)
}
