// rubyrestart reruns the paper's §4.4 Ruby on Rails study in miniature:
// Rails processes that never bulk-free, compared across allocators, plus
// the Figure 12 restart-period trade-off — restarting a process pays an
// interpreter-boot cost but resets the heap fragmentation that accumulates
// because Ruby has no freeAll.
//
//	go run ./examples/rubyrestart
package main

import (
	"fmt"
	"log"

	"webmm"
)

func main() {
	const scale = 64
	study, err := webmm.NewStudy(webmm.WithScale(scale))
	if err != nil {
		log.Fatal(err)
	}
	rails := func(alloc webmm.AllocatorName, restartEvery int) webmm.MachineResult {
		out, err := study.Cell(webmm.CellSpec{
			Alloc: alloc, Ruby: true, RestartEvery: restartEvery,
		})
		if err != nil {
			log.Fatal(err)
		}
		return out.Machine
	}

	fmt.Printf("Ruby on Rails, simulated 8-core Xeon, scale 1/%d\n\n", scale)

	// Figure 10 in miniature: allocator comparison with the paper's
	// restart-every-500-transactions configuration (CellSpec takes the
	// paper-scale period; the study rescales it for us).
	const restart = 500
	t := webmm.NewReportTable("Allocator comparison (restart every 500 txns)",
		"allocator", "txns/sec", "vs glibc")
	base := rails(webmm.AllocGlibc, restart)
	for _, alloc := range []webmm.AllocatorName{
		webmm.AllocGlibc, webmm.AllocHoard, webmm.AllocTCMalloc, webmm.AllocDDmalloc,
	} {
		res := rails(alloc, restart)
		t.Add(string(alloc), fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%+.1f%%", (res.Throughput/base.Throughput-1)*100))
	}
	fmt.Println(t.String())

	// Figure 12 in miniature: the restart-period sweep for DDmalloc.
	t2 := webmm.NewReportTable("DDmalloc restart-period sweep",
		"restart period", "txns/sec")
	for _, period := range []int{20, 100, 500, 0} {
		res := rails(webmm.AllocDDmalloc, period)
		label := "no restart"
		if period > 0 {
			label = fmt.Sprintf("every %d", period)
		}
		t2.Add(label, fmt.Sprintf("%.1f", res.Throughput))
	}
	fmt.Println(t2.String())
}
