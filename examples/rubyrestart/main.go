// rubyrestart reruns the paper's §4.4 Ruby on Rails study in miniature:
// Rails processes that never bulk-free, compared across allocators, plus
// the Figure 12 restart-period trade-off — restarting a process pays an
// interpreter-boot cost but resets the heap fragmentation that accumulates
// because Ruby has no freeAll.
//
//	go run ./examples/rubyrestart
package main

import (
	"fmt"

	"webmm"
)

func main() {
	cfg := webmm.DefaultStudyConfig()
	cfg.Scale = 64
	study := webmm.NewStudy(cfg)

	fmt.Printf("Ruby on Rails, simulated 8-core Xeon, scale 1/%d\n\n", cfg.Scale)

	// Figure 10 in miniature: allocator comparison with the paper's
	// restart-every-500-transactions configuration.
	t := webmm.NewReportTable("Allocator comparison (restart every 500 txns)",
		"allocator", "txns/sec", "vs glibc")
	base := study.RunRubyCell("glibc", 500)
	for _, alloc := range []string{"glibc", "hoard", "tcmalloc", "ddmalloc"} {
		res := study.RunRubyCell(alloc, 500)
		t.Add(alloc, fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%+.1f%%", (res.Throughput/base.Throughput-1)*100))
	}
	fmt.Println(t.String())

	// Figure 12 in miniature: the restart-period sweep for DDmalloc.
	t2 := webmm.NewReportTable("DDmalloc restart-period sweep",
		"restart period", "txns/sec")
	for _, period := range []int{20, 100, 500, 0} {
		res := study.RunRubyCell("ddmalloc", period)
		label := "no restart"
		if period > 0 {
			label = fmt.Sprintf("every %d", period)
		}
		t2.Add(label, fmt.Sprintf("%.1f", res.Throughput))
	}
	fmt.Println(t2.String())
}
