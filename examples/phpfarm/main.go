// phpfarm reruns the paper's headline experiment in miniature: MediaWiki
// (read-only) on the 8-core Xeon under the three PHP-study allocators — the
// runtime's default, the region-based allocator, and DDmalloc — and prints
// the Figure 5-style relative throughputs together with the Figure 6-style
// CPU-time breakdown.
//
// This is the paper's core observation in one screen: the region allocator's
// near-zero malloc cost does not survive eight cores, because its dead
// objects saturate the front-side bus; defrag-dodging keeps the cheap
// allocation *and* the memory reuse.
//
//	go run ./examples/phpfarm
package main

import (
	"fmt"

	"webmm"
)

func main() {
	cfg := webmm.DefaultStudyConfig()
	cfg.Scale = 64 // keep the example snappy; shapes survive scaling
	study := webmm.NewStudy(cfg)

	const wl = "MediaWiki(ro)"
	fmt.Printf("MediaWiki (read-only), simulated 8-core Xeon, scale 1/%d\n\n", cfg.Scale)

	table := webmm.NewReportTable("", "allocator", "txns/sec", "vs default",
		"alloc CPU share", "bus util")
	base := study.RunCell("xeon", "default", wl, 8)
	for _, alloc := range []string{"default", "region", "ddmalloc"} {
		res := study.RunCell("xeon", alloc, wl, 8)
		mmShare := 0.0
		if total := res.CyclesPerTxn(); total > 0 {
			mmShare = res.ClassCyclesPerTxn(0) / total // class 0 = memory management
		}
		table.Add(alloc,
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%+.1f%%", (res.Throughput/base.Throughput-1)*100),
			fmt.Sprintf("%.1f%%", mmShare*100),
			fmt.Sprintf("%.1f%%", res.BusUtil*100))
	}
	fmt.Println(table.String())

	fmt.Println("For the full matrix (all workloads, both platforms, every")
	fmt.Println("table and figure of the paper): go run ./cmd/webmm -exp all")
}
