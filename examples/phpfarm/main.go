// phpfarm reruns the paper's headline experiment in miniature: MediaWiki
// (read-only) on the 8-core Xeon under the three PHP-study allocators — the
// runtime's default, the region-based allocator, and DDmalloc — and prints
// the Figure 5-style relative throughputs together with the Figure 6-style
// CPU-time breakdown.
//
// This is the paper's core observation in one screen: the region allocator's
// near-zero malloc cost does not survive eight cores, because its dead
// objects saturate the front-side bus; defrag-dodging keeps the cheap
// allocation *and* the memory reuse.
//
//	go run ./examples/phpfarm
package main

import (
	"fmt"
	"log"

	"webmm"
)

func main() {
	const scale = 64 // keep the example snappy; shapes survive scaling
	study, err := webmm.NewStudy(webmm.WithScale(scale))
	if err != nil {
		log.Fatal(err)
	}

	const wl = "MediaWiki(ro)"
	fmt.Printf("MediaWiki (read-only), simulated 8-core Xeon, scale 1/%d\n\n", scale)

	table := webmm.NewReportTable("", "allocator", "txns/sec", "vs default",
		"alloc CPU share", "bus util")
	base, err := study.Cell(webmm.CellSpec{Alloc: webmm.AllocDefault, Workload: wl})
	if err != nil {
		log.Fatal(err)
	}
	for _, alloc := range []webmm.AllocatorName{webmm.AllocDefault, webmm.AllocRegion, webmm.AllocDDmalloc} {
		out, err := study.Cell(webmm.CellSpec{Alloc: alloc, Workload: wl})
		if err != nil {
			log.Fatal(err)
		}
		res := out.Machine
		mmShare := 0.0
		if total := res.CyclesPerTxn(); total > 0 {
			mmShare = res.ClassCyclesPerTxn(0) / total // class 0 = memory management
		}
		table.Add(string(alloc),
			fmt.Sprintf("%.1f", res.Throughput),
			fmt.Sprintf("%+.1f%%", (res.Throughput/base.Machine.Throughput-1)*100),
			fmt.Sprintf("%.1f%%", mmShare*100),
			fmt.Sprintf("%.1f%%", res.BusUtil*100))
	}
	fmt.Println(table.String())

	fmt.Println("For the full matrix (all workloads, both platforms, every")
	fmt.Println("table and figure of the paper): go run ./cmd/webmm -exp all")
}
