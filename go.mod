module webmm

go 1.22
