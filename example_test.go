package webmm_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"webmm"
)

// Building a study with functional options and comparing the PHP-study
// allocators on one workload. Everything is seeded, so the relative
// throughputs are reproducible; the default allocator is the baseline.
func ExampleNewStudy() {
	study, err := webmm.NewStudy(
		webmm.WithScale(1024), // tiny transactions: fast, coarse
		webmm.WithRounds(1, 1),
		webmm.WithJobs(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := study.CompareAllocators("phpBB", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(rel), rel[webmm.AllocDefault] == 1.0)
	// Output: 3 true
}

// Running a single simulation cell: DDmalloc serving MediaWiki (read-only)
// on two Xeon cores.
func ExampleStudy_Cell() {
	study, err := webmm.NewStudy(
		webmm.WithScale(1024),
		webmm.WithRounds(1, 1),
		webmm.WithJobs(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	out, err := study.Cell(webmm.CellSpec{
		Alloc:    webmm.AllocDDmalloc,
		Workload: "MediaWiki(ro)",
		Cores:    2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Machine.Throughput > 0, out.Calls.Mallocs > 0)
	// Output: true true
}

// Driving an allocator by hand on a one-core sandbox: the allocator's API
// traffic and the application's memory touches all flow through the cache
// model.
func ExampleNewSandbox() {
	sb := webmm.NewSandbox(webmm.Xeon(), 1)
	dd := sb.NewDDmalloc(webmm.DDOptions{})

	p := dd.Malloc(100)    // size-class rounded
	sb.Touch(p, 100, true) // application write, priced by the caches
	dd.Free(p)             // LIFO free-list push, no defragmentation
	dd.FreeAll()           // end of transaction
	sb.Measure()

	st := dd.Stats()
	fmt.Printf("mallocs=%d frees=%d rounded=%dB\n",
		st.Mallocs, st.Frees, webmm.RoundedSize(100))
	// Output: mallocs=1 frees=1 rounded=104B
}

// The experiment registry drives the CLI's -exp flag, its usage text, and
// EXPERIMENTS.md; the public API exposes the same catalogue.
func ExampleExperiments() {
	for _, e := range webmm.Experiments()[:3] {
		fmt.Printf("%-6s %s\n", e.Name, e.Ref)
	}
	// Output:
	// fig1   Figure 1
	// table2 Table 2
	// table3 Table 3
}

// A telemetry session records spans, metrics, and a run manifest without
// perturbing the simulation; Close flushes the files. (Not executed during
// tests — it writes files.)
func Example_telemetry() {
	dir, err := os.MkdirTemp("", "webmm")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	tel, err := webmm.NewTelemetry(webmm.TelemetryOptions{
		TracePath:    filepath.Join(dir, "trace.jsonl"),
		MetricsPath:  filepath.Join(dir, "metrics.prom"),
		ManifestPath: filepath.Join(dir, "run.json"),
	})
	if err != nil {
		log.Fatal(err)
	}
	study, err := webmm.NewStudy(
		webmm.WithScale(1024),
		webmm.WithRounds(1, 1),
		webmm.WithTelemetry(tel),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := study.RunExperiment(webmm.ExpFig1); err != nil {
		log.Fatal(err)
	}
	if err := study.Close(); err != nil { // writes manifest, flushes files
		log.Fatal(err)
	}
}
