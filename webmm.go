// Package webmm is a simulation study of memory management for web-based
// applications on multicore processors, reproducing Inoue, Komatsu &
// Nakatani (PLDI 2009).
//
// The library bundles three things:
//
//   - Allocators: faithful models of the paper's seven allocators — the
//     defrag-dodging DDmalloc (the paper's contribution), a region-based
//     bump allocator, the PHP runtime's default (Zend-like) allocator, a
//     GNU-obstack model, and glibc/Hoard/TCmalloc models for the Ruby
//     study — all operating on a simulated 64-bit address space and
//     emitting every memory touch for pricing.
//
//   - Machines: trace-driven models of the paper's two platforms, an
//     8-core Intel Xeon E5320 (Clovertown) and an 8-core, 32-thread Sun
//     UltraSPARC T1 (Niagara), with set-associative caches, TLBs, a stream
//     prefetcher (Xeon), and a finite-bandwidth shared bus.
//
//   - Workloads and experiments: transaction generators calibrated to the
//     paper's Table 3 for its seven PHP applications plus Ruby on Rails,
//     and runners that regenerate every table and figure of the paper's
//     evaluation (see internal/experiments and cmd/webmm).
//
// Quick use: build a Study with options and run cells or whole experiments,
//
//	study, err := webmm.NewStudy(webmm.WithScale(64), webmm.WithJobs(4))
//	...
//	rel, err := study.CompareAllocators("phpBB", 8)
//
// or build a Sandbox (one simulated core) and exercise an allocator by
// hand. Telemetry (tracing, metrics, a run manifest) attaches to either via
// NewTelemetry and WithTelemetry.
package webmm

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"webmm/internal/apprt"
	"webmm/internal/budget"
	"webmm/internal/cpu"
	"webmm/internal/experiments"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/memsys"
	"webmm/internal/report"
	"webmm/internal/sim"
	"webmm/internal/telemetry"
	"webmm/internal/workload"
)

// Allocator is the allocator interface of the study: Malloc, Free, Realloc,
// FreeAll, capability flags, footprint and statistics. See internal/heap
// for the full contract.
type Allocator = heap.Allocator

// Ptr is a simulated object address (0 is the null pointer).
type Ptr = heap.Ptr

// AllocStats counts allocator API traffic (the paper's Table 3 view).
type AllocStats = heap.Stats

// Platform describes one simulated machine.
type Platform = machine.Platform

// HardwareCounters are the OProfile-style event counts the simulator
// reports (instructions, cache misses, TLB misses, bus transactions).
type HardwareCounters = cpu.Counters

// MachineResult is a solved simulation outcome: throughput, wall time, bus
// utilization, per-component cycle attribution and hardware counters.
type MachineResult = machine.Result

// WorkloadProfile describes one of the paper's workloads (Table 2/3).
type WorkloadProfile = workload.Profile

// Table is an aligned text/CSV report table.
type Table = report.Table

// Chart is a text bar chart (used by fig5/fig7 outputs).
type Chart = report.Chart

// Telemetry is the observability layer: span tracing (Chrome-trace JSONL),
// a metrics registry (Prometheus text/CSV), per-size-class allocation
// profiling, and a run manifest. The zero value of interest is
// telemetry.Nop (a nil pointer), which every simulation path accepts at no
// cost; a live session is created by NewTelemetry.
type Telemetry = telemetry.Telemetry

// TelemetryOptions selects a telemetry session's outputs; empty paths
// disable the corresponding output.
type TelemetryOptions = telemetry.Options

// NewTelemetry opens a telemetry session. All-empty options return the
// disabled (nil) session, which is safe everywhere. Close the session to
// flush its files.
func NewTelemetry(opts TelemetryOptions) (*Telemetry, error) { return telemetry.New(opts) }

// Xeon returns the Intel Xeon E5320 (Clovertown) platform model.
func Xeon() Platform { return machine.Xeon() }

// Niagara returns the Sun UltraSPARC T1 platform model.
func Niagara() Platform { return machine.Niagara() }

// ---------------------------------------------------------------------------
// Typed registries: allocators and experiments.

// AllocatorName names one of the study's allocators. The constants below
// cover every registered allocator; plain string literals convert
// implicitly, so call sites may also write "ddmalloc".
type AllocatorName string

// The study's allocators, PHP comparison first (report order).
const (
	AllocDefault  AllocatorName = "default"
	AllocRegion   AllocatorName = "region"
	AllocDDmalloc AllocatorName = "ddmalloc"
	AllocObstack  AllocatorName = "obstack"
	AllocReap     AllocatorName = "reap"
	AllocGlibc    AllocatorName = "glibc"
	AllocHoard    AllocatorName = "hoard"
	AllocTCMalloc AllocatorName = "tcmalloc"
)

// AllocatorInfo describes one registered allocator.
type AllocatorInfo struct {
	Name AllocatorName
	// Study is "php" (Figures 1, 5-9), "ruby" (Figures 10-12), or
	// "extra" for allocators outside the headline comparisons.
	Study string
	Doc   string
}

// Allocators returns the registered allocators in report order.
func Allocators() []AllocatorInfo {
	var out []AllocatorInfo
	for _, d := range apprt.Allocators() {
		out = append(out, AllocatorInfo{Name: AllocatorName(d.Name), Study: d.Study, Doc: d.Doc})
	}
	return out
}

// AllocatorNames lists the allocator names.
//
// Deprecated: use Allocators, which also carries docs and study membership.
func AllocatorNames() []string { return apprt.AllocatorNames() }

// ExperimentName names one of the paper's tables or figures.
type ExperimentName string

// The paper's experiments, in reporting order.
const (
	ExpFig1   ExperimentName = "fig1"
	ExpTable2 ExperimentName = "table2"
	ExpTable3 ExperimentName = "table3"
	ExpFig5   ExperimentName = "fig5"
	ExpFig6   ExperimentName = "fig6"
	ExpFig7   ExperimentName = "fig7"
	ExpTable4 ExperimentName = "table4"
	ExpFig8   ExperimentName = "fig8"
	ExpFig9   ExperimentName = "fig9"
	ExpFig10  ExperimentName = "fig10"
	ExpFig11  ExperimentName = "fig11"
	ExpFig12  ExperimentName = "fig12"
	// ExpHeapLimit is a study extension: throughput vs per-stream heap
	// limit for the PHP allocators, exposing each allocator's memory
	// floor.
	ExpHeapLimit ExperimentName = "heaplimit"
	// ExpMemSched is a study extension: allocator × DRAM scheduling
	// policy × core count, reporting throughput against the paper's bus
	// model and the row-buffer hit/conflict split.
	ExpMemSched ExperimentName = "memsched"
)

// ExperimentInfo describes one registered experiment.
type ExperimentInfo struct {
	Name ExperimentName
	// Ref is the paper artifact the experiment reproduces ("Figure 5").
	Ref string
	Doc string
	// Example is a one-line cmd/webmm invocation.
	Example string
	// Extra marks an extension beyond the paper's evaluation (run by name,
	// not by "all").
	Extra bool
}

// Experiments returns the registered experiments in the paper's reporting
// order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, d := range experiments.Experiments() {
		out = append(out, ExperimentInfo{
			Name: ExperimentName(d.Name), Ref: d.Ref, Doc: d.Doc, Example: d.Example,
			Extra: d.Extra,
		})
	}
	return out
}

// MemSchedPolicyName names a DRAM scheduling policy of the memory-system
// registry (internal/memsys).
type MemSchedPolicyName = memsys.PolicyName

// The registered DRAM scheduling policies.
const (
	MemSchedFRFCFS = memsys.PolicyFRFCFS
	MemSchedATLAS  = memsys.PolicyATLAS
	MemSchedTCM    = memsys.PolicyTCM
	MemSchedBLISS  = memsys.PolicyBLISS
)

// MemSchedPolicyInfo describes one registered DRAM scheduling policy.
type MemSchedPolicyInfo struct {
	Name MemSchedPolicyName
	// Ref cites the paper the policy comes from.
	Ref string
	Doc string
}

// MemSchedPolicies returns the registered DRAM scheduling policies in
// presentation order.
func MemSchedPolicies() []MemSchedPolicyInfo {
	var out []MemSchedPolicyInfo
	for _, d := range memsys.Policies() {
		out = append(out, MemSchedPolicyInfo{Name: d.Name, Ref: d.Ref, Doc: d.Doc})
	}
	return out
}

// Workloads returns the paper's PHP workload profiles in Table 2 order.
func Workloads() []WorkloadProfile { return workload.Profiles() }

// WorkloadByName looks a profile up by its report name.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// ---------------------------------------------------------------------------
// Sandbox: hand-driven single-core simulation.

// Sandbox is a single-core simulated machine for exercising allocators
// directly: create allocators on it, run malloc/free traffic, then Measure
// to price the recorded accesses through the cache hierarchy.
type Sandbox struct {
	m   *machine.Machine
	env *sim.Env
}

// SandboxOption configures a Sandbox at construction.
type SandboxOption func(*Sandbox)

// WithSandboxTelemetry attaches a telemetry session: allocator traffic
// flows into its per-size-class allocation profile. The disabled (nil)
// session is accepted and ignored.
func WithSandboxTelemetry(tel *Telemetry) SandboxOption {
	return func(s *Sandbox) {
		if ap := tel.AllocSizes(); ap != nil {
			s.env.AllocRec = ap
		}
	}
}

// NewSandbox builds a one-core sandbox of the platform.
func NewSandbox(p Platform, seed uint64, opts ...SandboxOption) *Sandbox {
	m := machine.New(p, 1, 16*mem.KiB, 192*mem.KiB, seed)
	s := &Sandbox{m: m, env: m.Streams()[0].Env}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// NewAllocator constructs a named allocator on the sandbox's address space.
func (s *Sandbox) NewAllocator(name AllocatorName) (Allocator, error) {
	return apprt.NewAllocator(string(name), s.env, apprt.AllocOptions{})
}

// NewDDmalloc constructs the paper's allocator with explicit options
// (segment size, large pages, metadata displacement).
func (s *Sandbox) NewDDmalloc(opts DDOptions) Allocator {
	return newDD(s.env, opts)
}

// Touch records an application read or write of size bytes at p, so object
// usage (not just allocator work) flows through the cache model.
func (s *Sandbox) Touch(p Ptr, size uint64, write bool) {
	if write {
		s.env.Write(p, size, sim.ClassApp)
	} else {
		s.env.Read(p, size, sim.ClassApp)
	}
}

// Work records n application instructions.
func (s *Sandbox) Work(n uint64) { s.env.Instr(n, sim.ClassApp) }

// Warm prices all recorded events without measuring them (cache warmup).
func (s *Sandbox) Warm() { s.m.PriceSetup() }

// Measure prices all recorded events into the measured counters and marks
// the end of one logical transaction.
func (s *Sandbox) Measure() { s.m.PriceMeasured() }

// Result solves the timing model for everything measured so far.
func (s *Sandbox) Result() MachineResult { return s.m.Solve() }

// ---------------------------------------------------------------------------
// Study: the paper's experiments behind a builder API.

// Study runs the paper's experiments. Build one with NewStudy and
// functional options; the zero Study is not valid.
type Study struct {
	r        *experiments.Runner
	platform string
	memsched string
	jobs     int
	tel      *Telemetry
	budget   *budget.Controller // nil without WithGlobalBudget
	started  time.Time
	ran      []string
}

// StudyOption configures a Study at construction.
type StudyOption func(*studyConfig) error

type studyConfig struct {
	cfg      experiments.Config
	platform string
	memsched string
	jobs     int
	cacheDir string
	faults   string
	timeout  time.Duration
	ctx      context.Context
	tel      *Telemetry
	budget   uint64
	pressure PressurePolicy
}

// WithPlatform sets the default platform ("xeon" or "niagara") for Cell
// and CompareAllocators. The default is "xeon".
func WithPlatform(name string) StudyOption {
	return func(c *studyConfig) error {
		if _, err := machine.PlatformByName(name); err != nil {
			return err
		}
		c.platform = name
		return nil
	}
}

// WithMemorySystem sets the default memory system for Cell and
// CompareAllocators: "bus" (the paper's shared-bus queueing model, the
// default) or "dram" (the bank-level model of internal/memsys under its
// default scheduling policy). Use WithMemSchedPolicy to pick a specific
// policy.
func WithMemorySystem(name string) StudyOption {
	return func(c *studyConfig) error {
		switch name {
		case "bus":
			c.memsched = ""
		case "dram":
			c.memsched = string(memsys.DefaultPolicy)
		default:
			return fmt.Errorf("webmm: unknown memory system %q (valid: [bus dram])", name)
		}
		return nil
	}
}

// WithMemSchedPolicy sets the default memory system to the DRAM model under
// the named scheduling policy (see MemSchedPolicies for the registry).
func WithMemSchedPolicy(name MemSchedPolicyName) StudyOption {
	return func(c *studyConfig) error {
		if _, err := memsys.PolicyByName(name); err != nil {
			return err
		}
		c.memsched = string(name)
		return nil
	}
}

// WithScale sets the workload scale divisor (a power of two; 1 is paper
// scale, larger is faster and coarser). The default is 32.
func WithScale(scale int) StudyOption {
	return func(c *studyConfig) error {
		if scale < 1 || scale&(scale-1) != 0 {
			return fmt.Errorf("webmm: scale %d must be a power of two", scale)
		}
		c.cfg.Scale = scale
		return nil
	}
}

// WithSeed sets the seed all simulation randomness derives from.
func WithSeed(seed uint64) StudyOption {
	return func(c *studyConfig) error { c.cfg.Seed = seed; return nil }
}

// WithRounds sets warmup and measured transactions per stream.
func WithRounds(warmup, measure int) StudyOption {
	return func(c *studyConfig) error {
		if warmup < 0 || measure < 1 {
			return fmt.Errorf("webmm: invalid rounds warmup=%d measure=%d", warmup, measure)
		}
		c.cfg.Warmup, c.cfg.Measure = warmup, measure
		return nil
	}
}

// WithJobs sets the worker count for experiment cell fan-out (1 = serial;
// results are bit-identical either way). The default is GOMAXPROCS.
func WithJobs(jobs int) StudyOption {
	return func(c *studyConfig) error { c.jobs = jobs; return nil }
}

// WithCellCache persists finished cells under dir, keyed by configuration
// and simulator version, so repeated studies skip simulated cells.
func WithCellCache(dir string) StudyOption {
	return func(c *studyConfig) error { c.cacheDir = dir; return nil }
}

// WithFaults enables deterministic fault injection from a plan spec such as
// "oom:0.01,panic:0.1,budget:512MiB,cachecorrupt" (see the -faults flag).
func WithFaults(spec string) StudyOption {
	return func(c *studyConfig) error { c.faults = spec; return nil }
}

// WithTimeout bounds each cell's simulation wall time; an exceeded cell is
// reported failed instead of stalling the study. Cancellation is
// cooperative — the simulation stops at its next checkpoint on its own
// goroutine; nothing is abandoned — so a timed-out cell costs no residual
// CPU, memory, or telemetry writes.
func WithTimeout(d time.Duration) StudyOption {
	return func(c *studyConfig) error { c.timeout = d; return nil }
}

// WithContext attaches a context to the study: cancelling it cooperatively
// stops in-flight cells (they are reported failed) and fails future ones.
// Use it to bound a whole study by a deadline or to wire the study into a
// server request's lifetime.
func WithContext(ctx context.Context) StudyOption {
	return func(c *studyConfig) error { c.ctx = ctx; return nil }
}

// WithFidelity selects the measurement fidelity: "full" (or "") prices
// every measured transaction — the default, bit-reproducible mode every
// golden number is produced with — while "sampled" prices a SMARTS-style
// sample of the measured rounds (detailed windows separated by skipped
// rounds, with cache-warming rounds before each window). Sampled runs are
// much faster on long measurement phases and keep per-transaction statistics
// accurate to within a couple of percent; they are cache-keyed separately
// from full runs, so the two modes never serve each other stale results.
func WithFidelity(name string) StudyOption {
	return func(c *studyConfig) error {
		switch name {
		case "", experiments.FidelityFull, experiments.FidelitySampled:
			c.cfg.Fidelity = name
			return nil
		default:
			return fmt.Errorf("webmm: unknown fidelity %q (want %q or %q)",
				name, experiments.FidelityFull, experiments.FidelitySampled)
		}
	}
}

// WithXeonLargePages enables DDmalloc's large-page optimization on Xeon
// (the paper's separate +11.7% variant).
func WithXeonLargePages(on bool) StudyOption {
	return func(c *studyConfig) error { c.cfg.XeonLargePages = on; return nil }
}

// WithTelemetry attaches a telemetry session to the study: every cell is
// traced, metrics accumulate, and Close writes the study's manifest into
// it. The disabled (nil) session is accepted at no cost.
func WithTelemetry(tel *Telemetry) StudyOption {
	return func(c *studyConfig) error { c.tel = tel; return nil }
}

// PressurePolicy tunes the global-budget controller: the pressure-ladder
// thresholds, the rebalance interval, the per-tenant floor, and the
// allocation-rate smoothing. The zero value means the defaults.
type PressurePolicy = budget.Policy

// WithGlobalBudget puts the study's concurrently running cells under one
// global byte budget: a MemBalancer-style controller (see internal/budget)
// apportions it across cells by allocation rate, moving each cell's
// address-space limits mid-run. Cells the controller never denies stay
// bit-identical to unbudgeted runs (and cache as usual); cells it does deny
// are marked pressured and excluded from memoization. 0 means unlimited.
func WithGlobalBudget(bytes uint64) StudyOption {
	return func(c *studyConfig) error { c.budget = bytes; return nil }
}

// WithPressurePolicy tunes the global-budget controller; ignored without
// WithGlobalBudget.
func WithPressurePolicy(p PressurePolicy) StudyOption {
	return func(c *studyConfig) error { c.pressure = p; return nil }
}

// NewStudy builds a study runner from options; the defaults are the
// interactive configuration (scale 32, 2 warmup + 3 measured transactions,
// the paper's seed, Xeon, GOMAXPROCS jobs, no cache, no faults, telemetry
// off).
func NewStudy(opts ...StudyOption) (*Study, error) {
	c := studyConfig{
		cfg:      experiments.DefaultConfig(),
		platform: "xeon",
		jobs:     runtime.GOMAXPROCS(0),
	}
	for _, opt := range opts {
		if err := opt(&c); err != nil {
			return nil, err
		}
	}
	r := experiments.NewRunner(c.cfg)
	if c.cacheDir != "" {
		cache, err := experiments.NewCellCache(c.cacheDir)
		if err != nil {
			return nil, err
		}
		r.Cache = cache
	}
	if c.faults != "" {
		plan, err := experiments.ParseFaults(c.faults)
		if err != nil {
			return nil, err
		}
		r.Faults = plan
	}
	r.Timeout = c.timeout
	r.Ctx = c.ctx
	r.Tel = c.tel
	s := &Study{
		r:        r,
		platform: c.platform,
		memsched: c.memsched,
		jobs:     c.jobs,
		tel:      c.tel,
		started:  time.Now(),
	}
	if c.budget > 0 {
		s.budget = budget.New(c.budget, c.pressure)
		s.budget.PublishTo(c.tel.Metrics())
		s.budget.Start()
		r.Budget = s.budget
	}
	return s, nil
}

// CellSpec selects one simulation cell. Platform defaults to the study's
// platform and Cores to 8 (the paper's headline core count).
type CellSpec struct {
	Platform string
	Alloc    AllocatorName
	Workload string
	Cores    int
	// Ruby selects the Ruby runtime (long-lived processes, no freeAll);
	// RestartEvery is its restart period in the paper's full-scale
	// transactions (0 = never restart) — the study rescales it like the
	// figures do, so 500 means the paper's configuration at any scale.
	Ruby         bool
	RestartEvery int
	// Budget, when > 0, caps each of the cell's per-stream address spaces
	// at this many mapped bytes for the whole run (the heap-limit sweep's
	// x-axis). Unlike WithGlobalBudget this is static and deterministic: a
	// budget below the allocator's memory floor fails the cell the same way
	// every time, and the outcome is memoized and cached.
	Budget uint64
	// MemSched selects the cell's memory system: empty inherits the
	// study's default (WithMemorySystem / WithMemSchedPolicy), "bus"
	// forces the paper's bus model, and a policy name from
	// MemSchedPolicies runs the DRAM model under that policy.
	MemSched string
}

// CellOutcome is everything one simulated cell reports.
type CellOutcome struct {
	// Machine is the solved timing result.
	Machine MachineResult
	// Footprint is the mean per-transaction peak memory consumption.
	Footprint float64
	// Calls is the per-stream-average allocator API traffic.
	Calls AllocStats
}

// Cell simulates one cell (memoized within the study). A cell whose
// simulation fails — panic, timeout, configuration error — is surfaced as
// an error rather than zeros.
func (s *Study) Cell(spec CellSpec) (CellOutcome, error) {
	if spec.Platform == "" {
		spec.Platform = s.platform
	}
	if spec.Cores == 0 {
		spec.Cores = 8
	}
	if spec.Workload == "" && spec.Ruby {
		spec.Workload = workload.Rails().Name
	}
	restart := 0
	if spec.Ruby {
		restart = s.r.RubyRestartPeriod(spec.RestartEvery)
	}
	memsched := spec.MemSched
	switch memsched {
	case "":
		memsched = s.memsched
	case "bus":
		memsched = ""
	default:
		if _, err := memsys.PolicyByName(memsys.PolicyName(memsched)); err != nil {
			return CellOutcome{}, err
		}
	}
	cell := experiments.Cell{
		Platform: spec.Platform, Alloc: string(spec.Alloc), Workload: spec.Workload,
		Cores: spec.Cores, Ruby: spec.Ruby, RestartEvery: restart,
		Budget: spec.Budget, MemSched: memsched,
	}
	cr := s.r.Run(cell)
	if cr.Failed {
		for _, f := range s.r.Failures() {
			if f.Cell == cell {
				return CellOutcome{}, f
			}
		}
		return CellOutcome{}, fmt.Errorf("webmm: cell %+v failed", cell)
	}
	return CellOutcome{Machine: cr.Res, Footprint: cr.Footprint, Calls: cr.Calls}, nil
}

// CompareAllocators runs one workload across the PHP-study allocators at
// the given core count on the study's platform, returning throughput
// relative to the default allocator, keyed by allocator name.
func (s *Study) CompareAllocators(workloadName string, cores int) (map[AllocatorName]float64, error) {
	base, err := s.Cell(CellSpec{Alloc: AllocDefault, Workload: workloadName, Cores: cores})
	if err != nil {
		return nil, err
	}
	out := make(map[AllocatorName]float64)
	for _, alloc := range experiments.PHPAllocators() {
		cr, err := s.Cell(CellSpec{Alloc: AllocatorName(alloc), Workload: workloadName, Cores: cores})
		if err != nil {
			return nil, err
		}
		if base.Machine.Throughput > 0 {
			out[AllocatorName(alloc)] = cr.Machine.Throughput / base.Machine.Throughput
		}
	}
	return out, nil
}

// ExperimentOutput is one experiment's rendered result.
type ExperimentOutput struct {
	Tables []*Table
	Charts []*Chart
}

// RunExperiment reproduces one of the paper's tables or figures: the cell
// plan is fanned out over the study's workers, then the tables (and, for
// fig5/fig7, charts) are rendered from the memoized results. Failed cells
// render as FAILED rows; inspect Failures for their errors.
func (s *Study) RunExperiment(name ExperimentName) (ExperimentOutput, error) {
	d, err := experiments.ExperimentByName(string(name))
	if err != nil {
		return ExperimentOutput{}, err
	}
	if d.Cells != nil && s.jobs != 1 {
		if cells := d.Cells(s.r); len(cells) > 0 {
			s.r.RunAll(cells, s.jobs)
		}
	}
	out := d.Run(s.r)
	s.ran = append(s.ran, d.Name)
	return ExperimentOutput{Tables: out.Tables, Charts: out.Charts}, nil
}

// Failures returns the cells that failed so far.
func (s *Study) Failures() []error {
	var out []error
	for _, f := range s.r.Failures() {
		out = append(out, f)
	}
	return out
}

// Runner exposes the underlying experiment runner for figure-level APIs
// (experiments.Fig5, experiments.Table4, ...).
func (s *Study) Runner() *experiments.Runner { return s.r }

// Close stops the study's budget controller (if any) and finalizes its
// telemetry: it assembles the run manifest (experiments run, per-cell
// accounting, cache behaviour, failures), stamps it, and closes the
// attached session, flushing its files. Without telemetry or a budget,
// Close is a no-op. The study itself stays usable (budget-free).
func (s *Study) Close() error {
	if s.budget != nil {
		s.budget.Close()
	}
	if !s.tel.Enabled() {
		return nil
	}
	m := s.r.BuildManifest(s.ran)
	m.Stamp(s.started)
	s.tel.SetManifest(m)
	return s.tel.Close()
}

// ---------------------------------------------------------------------------
// Deprecated surface. The PR-4 study shims (NewStudyFromConfig, Compare,
// RunCell, RunRubyCell) have been removed — build a Study with NewStudy and
// use Cell/CompareAllocators. The raw configuration type remains for
// callers that inspect defaults.

// StudyConfig controls simulation scale and measurement length; see
// internal/experiments.Config.
//
// Deprecated: configure a Study with NewStudy options instead.
type StudyConfig = experiments.Config

// DefaultStudyConfig is sized for interactive use (coarse scale).
//
// Deprecated: NewStudy() with no options is the same configuration.
func DefaultStudyConfig() StudyConfig { return experiments.DefaultConfig() }

// NewReportTable creates an aligned text/CSV table (re-exported for
// examples and tools building custom reports).
func NewReportTable(title string, header ...string) *Table {
	return report.New(title, header...)
}
