// Package webmm is a simulation study of memory management for web-based
// applications on multicore processors, reproducing Inoue, Komatsu &
// Nakatani (PLDI 2009).
//
// The library bundles three things:
//
//   - Allocators: faithful models of the paper's seven allocators — the
//     defrag-dodging DDmalloc (the paper's contribution), a region-based
//     bump allocator, the PHP runtime's default (Zend-like) allocator, a
//     GNU-obstack model, and glibc/Hoard/TCmalloc models for the Ruby
//     study — all operating on a simulated 64-bit address space and
//     emitting every memory touch for pricing.
//
//   - Machines: trace-driven models of the paper's two platforms, an
//     8-core Intel Xeon E5320 (Clovertown) and an 8-core, 32-thread Sun
//     UltraSPARC T1 (Niagara), with set-associative caches, TLBs, a stream
//     prefetcher (Xeon), and a finite-bandwidth shared bus.
//
//   - Workloads and experiments: transaction generators calibrated to the
//     paper's Table 3 for its seven PHP applications plus Ruby on Rails,
//     and runners that regenerate every table and figure of the paper's
//     evaluation (see internal/experiments and cmd/webmm).
//
// Quick use: build a Sandbox (one simulated core), create an allocator on
// it, and exercise it; or use Study to run the paper's experiments.
package webmm

import (
	"webmm/internal/apprt"
	"webmm/internal/cpu"
	"webmm/internal/experiments"
	"webmm/internal/heap"
	"webmm/internal/machine"
	"webmm/internal/mem"
	"webmm/internal/report"
	"webmm/internal/sim"
	"webmm/internal/workload"
)

// Allocator is the allocator interface of the study: Malloc, Free, Realloc,
// FreeAll, capability flags, footprint and statistics. See internal/heap
// for the full contract.
type Allocator = heap.Allocator

// Ptr is a simulated object address (0 is the null pointer).
type Ptr = heap.Ptr

// AllocStats counts allocator API traffic (the paper's Table 3 view).
type AllocStats = heap.Stats

// Platform describes one simulated machine.
type Platform = machine.Platform

// HardwareCounters are the OProfile-style event counts the simulator
// reports (instructions, cache misses, TLB misses, bus transactions).
type HardwareCounters = cpu.Counters

// MachineResult is a solved simulation outcome: throughput, wall time, bus
// utilization, per-component cycle attribution and hardware counters.
type MachineResult = machine.Result

// WorkloadProfile describes one of the paper's workloads (Table 2/3).
type WorkloadProfile = workload.Profile

// Xeon returns the Intel Xeon E5320 (Clovertown) platform model.
func Xeon() Platform { return machine.Xeon() }

// Niagara returns the Sun UltraSPARC T1 platform model.
func Niagara() Platform { return machine.Niagara() }

// AllocatorNames lists the allocators available to NewAllocator:
// "default", "region", "ddmalloc", "obstack", "glibc", "hoard", "tcmalloc".
func AllocatorNames() []string { return apprt.AllocatorNames() }

// Workloads returns the paper's PHP workload profiles in Table 2 order.
func Workloads() []WorkloadProfile { return workload.Profiles() }

// WorkloadByName looks a profile up by its report name.
func WorkloadByName(name string) (WorkloadProfile, error) { return workload.ByName(name) }

// Sandbox is a single-core simulated machine for exercising allocators
// directly: create allocators on it, run malloc/free traffic, then Measure
// to price the recorded accesses through the cache hierarchy.
type Sandbox struct {
	m   *machine.Machine
	env *sim.Env
}

// NewSandbox builds a one-core sandbox of the platform. allocCode is the
// simulated code footprint used for allocator instructions (pass 0 for a
// reasonable default).
func NewSandbox(p Platform, seed uint64) *Sandbox {
	m := machine.New(p, 1, 16*mem.KiB, 192*mem.KiB, seed)
	return &Sandbox{m: m, env: m.Streams()[0].Env}
}

// NewAllocator constructs a named allocator on the sandbox's address space.
func (s *Sandbox) NewAllocator(name string) (Allocator, error) {
	return apprt.NewAllocator(name, s.env, apprt.AllocOptions{})
}

// NewDDmalloc constructs the paper's allocator with explicit options
// (segment size, large pages, metadata displacement).
func (s *Sandbox) NewDDmalloc(opts DDOptions) Allocator {
	return newDD(s.env, opts)
}

// Touch records an application read or write of size bytes at p, so object
// usage (not just allocator work) flows through the cache model.
func (s *Sandbox) Touch(p Ptr, size uint64, write bool) {
	if write {
		s.env.Write(p, size, sim.ClassApp)
	} else {
		s.env.Read(p, size, sim.ClassApp)
	}
}

// Work records n application instructions.
func (s *Sandbox) Work(n uint64) { s.env.Instr(n, sim.ClassApp) }

// Warm prices all recorded events without measuring them (cache warmup).
func (s *Sandbox) Warm() { s.m.PriceSetup() }

// Measure prices all recorded events into the measured counters and marks
// the end of one logical transaction.
func (s *Sandbox) Measure() { s.m.PriceMeasured() }

// Result solves the timing model for everything measured so far.
func (s *Sandbox) Result() MachineResult { return s.m.Solve() }

// Study runs the paper's experiments. The zero Config is not valid; use
// DefaultStudyConfig or fill the fields explicitly.
type Study struct{ r *experiments.Runner }

// StudyConfig controls simulation scale and measurement length; see
// internal/experiments.Config.
type StudyConfig = experiments.Config

// DefaultStudyConfig is sized for interactive use (coarse scale).
func DefaultStudyConfig() StudyConfig { return experiments.DefaultConfig() }

// NewStudy builds a study runner.
func NewStudy(cfg StudyConfig) *Study { return &Study{r: experiments.NewRunner(cfg)} }

// Compare runs one workload on one platform across the PHP-study allocators
// at the given core count and returns throughput relative to the default
// allocator, keyed by allocator name.
func (s *Study) Compare(platform, workloadName string, cores int) map[string]float64 {
	base := s.r.Run(experiments.Cell{Platform: platform, Alloc: "default",
		Workload: workloadName, Cores: cores})
	out := make(map[string]float64)
	for _, alloc := range experiments.PHPAllocators() {
		cr := s.r.Run(experiments.Cell{Platform: platform, Alloc: alloc,
			Workload: workloadName, Cores: cores})
		if base.Res.Throughput > 0 {
			out[alloc] = cr.Res.Throughput / base.Res.Throughput
		}
	}
	return out
}

// RunCell simulates one (platform, allocator, workload, cores) cell and
// returns the solved machine result.
func (s *Study) RunCell(platform, alloc, workloadName string, cores int) MachineResult {
	return s.r.Run(experiments.Cell{Platform: platform, Alloc: alloc,
		Workload: workloadName, Cores: cores}).Res
}

// RunRubyCell simulates one Ruby-study cell (Rails on 8 Xeon cores with the
// given allocator and restart period in full-scale transactions; 0 disables
// restarts).
func (s *Study) RunRubyCell(alloc string, restartEvery int) MachineResult {
	return s.r.Run(experiments.Cell{Platform: "xeon", Alloc: alloc,
		Workload: workload.Rails().Name, Cores: 8,
		Ruby: true, RestartEvery: restartEvery}).Res
}

// Runner exposes the underlying experiment runner for figure-level APIs
// (experiments.Fig5, experiments.Table4, ...).
func (s *Study) Runner() *experiments.Runner { return s.r }

// NewReportTable creates an aligned text/CSV table (re-exported for
// examples and tools building custom reports).
func NewReportTable(title string, header ...string) *report.Table {
	return report.New(title, header...)
}
